// Command reduxsel explores adaptive reduction-scheme selection on a
// synthetic pattern given from the command line.
package main

import (
	"flag"
	"fmt"

	"repro/internal/adapt"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

func main() {
	dim := flag.Int("dim", 100000, "reduction array dimension")
	sp := flag.Float64("sp", 10, "sparsity percent (touched fraction)")
	chr := flag.Float64("chr", 0.5, "contention ratio (refs / (8*dim))")
	mo := flag.Int("mo", 2, "mobility (reduction refs per iteration)")
	locality := flag.Float64("locality", 0.8, "iteration-space locality 0..1")
	skew := flag.Float64("skew", 0.5, "hot-spot skew")
	procs := flag.Int("procs", 8, "processor count")
	flag.Parse()

	l := workloads.Generate("cli", workloads.PatternSpec{
		Dim: *dim, SPPercent: *sp, CHR: *chr, MO: *mo,
		Locality: *locality, Skew: *skew, Work: 30, Invocations: 50, Seed: 1,
	}, 1)
	sel := adapt.Select(l, *procs, vtime.Config{})
	fmt.Printf("profile: %v\n", sel.Profile)
	fmt.Printf("recommended: %s — %s\n", sel.Recommendation.Scheme, sel.Recommendation.Why)
	fmt.Println("measured ranking (virtual time):")
	for _, m := range sel.Ranking {
		fmt.Printf("  %-5s speedup %.2f  (%v)\n", m.Scheme, m.Speedup, m.Breakdown)
	}
	if sel.Hit {
		fmt.Println("the model's recommendation matched the measured winner")
	} else {
		fmt.Println("the model's recommendation did NOT match the measured winner")
	}
}
