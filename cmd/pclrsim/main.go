// Command pclrsim drives the CC-NUMA PCLR simulator on one application.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "Equake", "application: Euler|Equake|Vml|Charmm|Nbf")
	nodes := flag.Int("nodes", 16, "node count")
	scale := flag.Float64("scale", 0.15, "input scale (1 = paper size)")
	flag.Parse()
	for _, a := range workloads.PCLRApps() {
		if a.Name == *app {
			r := experiments.RunPCLRApp(a, *nodes, *scale)
			fmt.Print(experiments.FormatFig6([]experiments.PCLRAppResult{r}))
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
	os.Exit(2)
}
