// Command doccheck enforces the godoc contract on the packages named on
// the command line: every exported top-level identifier — functions,
// methods on exported types, types, constants, variables — and every
// exported struct field and interface method must carry a doc comment.
// It exits non-zero listing each gap, which is how the CI docs job keeps
// the network-facing packages (wire, client, server, cluster) fully
// documented as they grow.
//
//	go run ./cmd/doccheck ./internal/wire ./internal/cluster
//
// Grouped declarations follow the godoc convention: a comment on the
// group (`// Sentinel errors.` above a const/var block) covers its
// members, so idiomatic enum blocks do not need per-line comments.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				bad += checkFile(fset, file)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkFile reports every undocumented exported identifier in one file.
func checkFile(fset *token.FileSet, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), what, name)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), kindOf(d), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					// A single-spec declaration may carry its comment on
					// the decl ("type Foo ..."), a grouped one on the spec.
					if d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					checkTypeBody(s, report)
				case *ast.ValueSpec:
					covered := d.Doc != nil || s.Doc != nil || s.Comment != nil
					for _, name := range s.Names {
						if name.IsExported() && !covered {
							report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// checkTypeBody descends into an exported type: exported struct fields
// and interface methods are part of the package's documented surface
// too. A line comment (`Field int // meaning`) counts.
func checkTypeBody(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					report(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), "method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// kindOf distinguishes methods from functions in reports.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// exportedRecv reports whether a declaration's receiver type (if any) is
// exported; methods on unexported types are not part of the godoc
// surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}
