// Command reduxgw is the reduction gateway: it speaks the same wire
// protocol as reduxd on its listening side (clients cannot tell the
// difference, except for the gateway capability bit in HELLO) and routes
// every submission onward to a pool of reduxd backends by consistent-
// hashing the access-pattern fingerprint (internal/cluster). Equal
// patterns always land on the same backend, so batch fusion and the
// decision cache keep paying off at cluster scale.
//
//	reduxd  -addr 127.0.0.1:9071 &
//	reduxd  -addr 127.0.0.1:9072 &
//	reduxgw -addr 127.0.0.1:9070 -backends 127.0.0.1:9071,127.0.0.1:9072
//
// The bound address is printed as "reduxgw: listening on <addr>" once
// the listener is up (use port 0 to let the kernel pick;
// scripts/loadtest.sh scrapes this line). Backends that are down at
// startup are admitted unhealthy and probed every -health-interval until
// they answer. SIGINT/SIGTERM drain gracefully: the listener closes,
// in-flight jobs finish on their backends and flush to clients, then the
// backend clients close and a final aggregate report is printed.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9070", "TCP listen address (port 0 picks a free port)")
	backends := flag.String("backends", "", "comma-separated reduxd addresses to route across (required)")
	conns := flag.Int("conns", 2, "connections per backend")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "probe period for unhealthy backends")
	busyRetries := flag.Int("busy-retries", 2, "same-backend retries after BUSY before spilling to the next backend (negative: spill immediately)")
	legTimeout := flag.Duration("leg-timeout", 30*time.Second, "max backend silence per dispatched job before it is re-placed")
	maxInflight := flag.Int("max-inflight", 64, "in-flight job budget per client connection (beyond it: BUSY)")
	maxGlobal := flag.Int("max-global", 4096, "in-flight job budget across all client connections")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listen address serving /metrics, /tracez, /healthz and /debug/pprof (empty: disabled)")
	traceSlow := flag.Duration("trace-slow", 0, "latency above which a job's stage timeline is kept for /tracez (0: 10ms default, negative: every job)")
	tenantsFlag := flag.String("tenants", "", "front-door tenant quotas: name[:weight[:rate[:burst[:quota]]]],... (admission only; backends run their own tenant config)")
	flag.Parse()

	tenants, err := server.ParseTenantSpecs(*tenantsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxgw:", err)
		os.Exit(2)
	}

	addrs := strings.Split(*backends, ",")
	var cleaned []string
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			cleaned = append(cleaned, a)
		}
	}
	if len(cleaned) == 0 {
		fmt.Fprintln(os.Stderr, "reduxgw: -backends is required (comma-separated reduxd addresses)")
		os.Exit(2)
	}

	pool, err := cluster.New(cluster.Config{
		Backends:       cleaned,
		Conns:          *conns,
		HealthInterval: *healthInterval,
		BusyRetries:    *busyRetries,
		LegTimeout:     *legTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxgw:", err)
		os.Exit(2)
	}

	srv := server.NewWithDispatcher(pool, server.Config{
		MaxInflightPerConn: *maxInflight,
		MaxInflightGlobal:  *maxGlobal,
		TraceSlow:          *traceSlow,
		Tenants:            tenants,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxgw:", err)
		os.Exit(1)
	}
	fmt.Printf("reduxgw: listening on %s fronting %d backends (%d in-flight/conn, %d global)\n",
		ln.Addr(), len(cleaned), *maxInflight, *maxGlobal)

	if *debugAddr != "" {
		mux := obs.NewDebugMux("reduxgw", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			// The engine series are the tier-wide aggregate of every healthy
			// backend's STATS answer; a tier with no backend up scrapes the
			// gateway-local series only.
			if agg, err := pool.Stats(); err == nil {
				srv.MergeTenantBusy(&agg)
				if err := metrics.WriteEngineStats(w, agg); err != nil {
					return
				}
			}
			if err := metrics.WriteServerStats(w, srv); err != nil {
				return
			}
			metrics.WritePoolStats(w, pool.PoolStats())
		}), srv.Traces)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxgw: debug listener:", err)
			os.Exit(1)
		}
		fmt.Printf("reduxgw: debug listening on %s\n", dln.Addr())
		go http.Serve(dln, mux)
		defer dln.Close()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("reduxgw: %v, draining\n", sig)
	case err := <-serveDone:
		fmt.Fprintln(os.Stderr, "reduxgw: serve:", err)
		pool.Close()
		os.Exit(1)
	}

	if err := srv.Shutdown(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "reduxgw:", err)
	}
	<-serveDone
	agg, aggErr := pool.Stats()
	if aggErr == nil {
		srv.MergeTenantBusy(&agg)
	}
	report(agg, aggErr, pool.PoolStats(), srv.Stats())
	pool.Close()
}

// report prints the lifetime aggregate on shutdown: cluster-wide engine
// counters, per-backend routing, failover counters and the gateway's own
// admission/intern figures.
func report(agg engine.Stats, aggErr error, ps cluster.PoolStats, ss server.Stats) {
	if aggErr != nil {
		fmt.Fprintln(os.Stderr, "reduxgw: aggregate stats unavailable:", aggErr)
	} else {
		fmt.Printf("reduxgw: tier served %d jobs in %d batches (%d coalesced), cache %d hits / %d misses, %d distinct patterns\n",
			agg.Jobs, agg.Batches, agg.Coalesced, agg.CacheHits, agg.CacheMisses, agg.CacheEntries)
		fmt.Printf("reduxgw: tier recalibration: %d re-inspections, %d scheme switches\n",
			agg.Recalibrations, agg.SchemeSwitches)
		if agg.SimplifiedBatches != 0 || agg.SimplifyFallbacks != 0 {
			fmt.Printf("reduxgw: tier simplification: %d batches (%d declined), segments %d computed / %d reused\n",
				agg.SimplifiedBatches, agg.SimplifyFallbacks, agg.SegsComputed, agg.SegsReused)
		}
		if agg.SessionOpens != 0 {
			// Sessions opened directly against the backends; the gateway
			// itself answers OPEN_SESSION with "sessions unsupported".
			fmt.Printf("reduxgw: tier sessions: %d opened, %d delta batches, segments %d recomputed / %d reused\n",
				agg.SessionOpens, agg.SessionJobs, agg.SessionSegsComputed, agg.SessionSegsReused)
		}
		for _, t := range agg.Tenants {
			fmt.Printf("reduxgw: tenant %s (weight %d): %d jobs tier-wide, %d busy rejections at the front door\n",
				t.Name, t.Weight, t.Jobs, t.Busy)
		}
		if len(agg.Schemes) > 0 {
			names := make([]string, 0, len(agg.Schemes))
			for name := range agg.Schemes {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Print("reduxgw: scheme mix:")
			for _, name := range names {
				fmt.Printf(" %s:%d", name, agg.Schemes[name])
			}
			fmt.Println()
		}
	}
	for _, b := range ps.Backends {
		state := "healthy"
		if !b.Healthy {
			state = "down"
		}
		fmt.Printf("reduxgw: backend %s: %s, %d jobs routed\n", b.Addr, state, b.Jobs)
	}
	fmt.Printf("reduxgw: failover: %d rerouted, %d timed out, %d busy retries, %d busy spills, %d exhausted\n",
		ps.Rerouted, ps.TimedOut, ps.BusyRetries, ps.BusySpills, ps.Exhausted)
	fmt.Printf("reduxgw: admission: %d busy rejections; intern: %d hits, %d resident loops\n",
		ss.Busy, ss.InternHits, ss.InternedLoops)
}
