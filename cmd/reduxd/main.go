// Command reduxd is the reduction daemon: one long-lived adaptive engine
// behind a TCP front end speaking the wire protocol (docs/PROTOCOL.md).
// Many clients connect, pipeline reduction jobs, and share the engine's
// decision cache, feedback schedules, buffer pools and batch fusion — the
// paper's runtime turned into a network service.
//
//	reduxd -addr 127.0.0.1:9070 -workers 4 -procs 8
//
// The bound address is printed as "reduxd: listening on <addr>" once the
// listener is up (use -addr 127.0.0.1:0 to let the kernel pick a port;
// scripts/loadtest.sh scrapes this line). SIGINT/SIGTERM drain
// gracefully: listeners close, in-flight jobs finish and flush, the
// engine closes, and a final stats summary is printed.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9070", "TCP listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 4, "concurrent batches in the engine's pool")
	procs := flag.Int("procs", 8, "goroutines per reduction execution")
	queue := flag.Int("queue", 0, "submission queue depth in batches (0 = 2*workers)")
	maxBatch := flag.Int("max-batch", 0, "max jobs fused per execution (0 = default 32)")
	nocoalesce := flag.Bool("nocoalesce", false, "disable batch coalescing")
	cold := flag.Bool("cold", false, "disable buffer pooling and feedback scheduling")
	driftRatio := flag.Float64("drift-ratio", 0, "cost-drift ratio marking a cached decision stale (0 = default 1.5)")
	recalEvery := flag.Int("recal-every", 0, "executions between sampled re-profiles of a cached decision (0 = default 256)")
	recalConfirm := flag.Int("recal-confirm", 0, "consecutive confirming re-inspections before a scheme switch (0 = default 2)")
	norecal := flag.Bool("norecal", false, "disable online recalibration of cached decisions")
	maxInflight := flag.Int("max-inflight", 64, "in-flight job budget per connection (beyond it: BUSY)")
	maxGlobal := flag.Int("max-global", 1024, "in-flight job budget across all connections")
	maxSessions := flag.Int("max-sessions", 0, "resident streaming-session budget (0 = default 256; beyond it: evict or BUSY)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle streaming-session expiry (0 = default 2m)")
	sessionBytes := flag.Int64("session-bytes", 0, "resident session state budget in bytes (0 = default 64 MiB)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listen address serving /metrics, /tracez, /healthz and /debug/pprof (empty: disabled)")
	traceSlow := flag.Duration("trace-slow", 0, "latency above which a job's stage timeline is kept for /tracez (0: 10ms default, negative: every job)")
	tenantsFlag := flag.String("tenants", "", "tenant QoS config: name[:weight[:rate[:burst[:quota]]]],... (empty: single-tenant)")
	flag.Parse()

	if *procs < 1 || *procs > 64 {
		fmt.Fprintf(os.Stderr, "reduxd: -procs must be in [1,64], got %d\n", *procs)
		os.Exit(2)
	}
	tenants, err := server.ParseTenantSpecs(*tenantsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxd:", err)
		os.Exit(2)
	}

	eng, err := engine.New(engine.Config{
		Workers:         *workers,
		Platform:        core.DefaultPlatform(*procs),
		QueueDepth:      *queue,
		MaxBatch:        *maxBatch,
		DisableCoalesce: *nocoalesce,
		DisablePool:     *cold,
		DisableFeedback: *cold,
		DriftRatio:      *driftRatio,
		RecalEvery:      *recalEvery,
		RecalConfirm:    *recalConfirm,
		DisableRecal:    *norecal,
		Tenants:         server.EngineTenants(tenants),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxd:", err)
		os.Exit(2)
	}

	srv := server.New(eng, server.Config{
		MaxInflightPerConn: *maxInflight,
		MaxInflightGlobal:  *maxGlobal,
		MaxSessions:        *maxSessions,
		SessionTTL:         *sessionTTL,
		MaxSessionBytes:    *sessionBytes,
		TraceSlow:          *traceSlow,
		Tenants:            tenants,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxd:", err)
		os.Exit(1)
	}
	fmt.Printf("reduxd: listening on %s (%d workers x %d procs, %d in-flight/conn, %d global)\n",
		ln.Addr(), *workers, *procs, *maxInflight, *maxGlobal)

	if *debugAddr != "" {
		mux := obs.NewDebugMux("reduxd", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			stats := eng.Stats()
			srv.MergeTenantBusy(&stats)
			if err := metrics.WriteEngineStats(w, stats); err != nil {
				return
			}
			metrics.WriteServerStats(w, srv)
		}), srv.Traces)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxd: debug listener:", err)
			os.Exit(1)
		}
		fmt.Printf("reduxd: debug listening on %s\n", dln.Addr())
		go http.Serve(dln, mux)
		defer dln.Close()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("reduxd: %v, draining\n", sig)
	case err := <-serveDone:
		fmt.Fprintln(os.Stderr, "reduxd: serve:", err)
		eng.Close()
		os.Exit(1)
	}

	if err := srv.Shutdown(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "reduxd:", err)
	}
	<-serveDone
	eng.Close()
	final := eng.Stats()
	srv.MergeTenantBusy(&final)
	report(final, srv.Stats())
}

// report prints the lifetime counters on shutdown.
func report(s engine.Stats, ss server.Stats) {
	fmt.Printf("reduxd: served %d jobs in %d batches (%d coalesced), cache %d hits / %d misses, %d evictions\n",
		s.Jobs, s.Batches, s.Coalesced, s.CacheHits, s.CacheMisses, s.CacheEvictions)
	fmt.Printf("reduxd: admission: %d busy rejections; intern: %d hits, %d resident loops\n",
		ss.Busy, ss.InternHits, ss.InternedLoops)
	fmt.Printf("reduxd: recalibration: %d re-inspections, %d scheme switches\n",
		s.Recalibrations, s.SchemeSwitches)
	if s.SimplifiedBatches != 0 || s.SimplifyFallbacks != 0 {
		fmt.Printf("reduxd: simplification: %d batches (%d declined), segments %d computed / %d reused\n",
			s.SimplifiedBatches, s.SimplifyFallbacks, s.SegsComputed, s.SegsReused)
	}
	if s.SessionOpens != 0 || ss.SessionEvictions != 0 {
		fmt.Printf("reduxd: sessions: %d opened (%d still resident, %d evicted), %d delta batches, segments %d recomputed / %d reused\n",
			s.SessionOpens, ss.Sessions, ss.SessionEvictions, s.SessionJobs, s.SessionSegsComputed, s.SessionSegsReused)
	}
	for _, t := range s.Tenants {
		fmt.Printf("reduxd: tenant %s (weight %d): %d jobs in %d batches, %d busy rejections\n",
			t.Name, t.Weight, t.Jobs, t.Batches, t.Busy)
	}
	if len(s.Schemes) > 0 {
		names := make([]string, 0, len(s.Schemes))
		for name := range s.Schemes {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Print("reduxd: scheme mix:")
		for _, name := range names {
			fmt.Printf(" %s:%d", name, s.Schemes[name])
		}
		fmt.Println()
	}
}
