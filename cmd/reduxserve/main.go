// Command reduxserve hammers the concurrent adaptive reduction engine with
// a stream of reduction jobs — the production-service shape of the paper's
// runtime: many clients, one long-lived engine, decisions, schedules and
// buffers amortized across jobs, and same-pattern jobs fused into batches.
//
// Two workload shapes are built in: the mixed regime stream (default,
// round-robin over six patterns) and a Zipf-skewed hot-key stream (-zipf)
// in which a few patterns dominate the traffic the way production services
// see repeats of a few hot requests — the regime where batch coalescing
// pays. It reports throughput, per-job latency percentiles, the batch
// occupancy histogram, the decision cache's hit/eviction counters, the
// scheme mix, measured load imbalance, and the allocation footprint per
// job; run with -cold or -nocoalesce to feel what each layer buys.
//
// By default the engine runs in-process. With -remote addr the same
// streams drive a reduxd server over the network instead (cmd/reduxd),
// exercising the wire protocol, the server's admission control and the
// loop interning that lets batch fusion engage across the hop; engine
// counters then come from the server via STATS frames. With -gateway N
// the binary spawns N reduxd backends on loopback behind an in-process
// reduxgw-style gateway and drives the load through the full routed
// path (client → gateway → pattern-affinity routing → backends) — the
// self-contained way to feel the cluster tier without juggling
// processes; engine-shape flags configure each spawned backend. With
// -json the final report is machine-readable JSON on stdout
// (scripts/loadtest.sh and the CI smoke test parse it).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"net"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// backend abstracts where jobs execute: the in-process engine or a remote
// reduxd. Both expose the engine-shaped submit call, the streaming
// session open, and a counters snapshot, so the streaming and reporting
// code is identical.
type backend interface {
	SubmitInto(l *trace.Loop, dst []float64) (engine.Result, error)
	OpenSession(l *trace.Loop) (sessionHandle, engine.Result, error)
	Stats() (engine.Stats, error)
	Close()
}

// sessionHandle is the common surface of engine.Session and
// client.Session the -sessions driver streams through.
type sessionHandle interface {
	Apply(deltas []reduction.RefDelta, dst []float64) (engine.Result, error)
	Close() error
	Gen() uint64
}

type localBackend struct{ e *engine.Engine }

func (b localBackend) SubmitInto(l *trace.Loop, dst []float64) (engine.Result, error) {
	return b.e.SubmitInto(l, dst)
}
func (b localBackend) OpenSession(l *trace.Loop) (sessionHandle, engine.Result, error) {
	s, res, err := b.e.OpenSession(l, 0, nil)
	if err != nil {
		return nil, res, err
	}
	return s, res, nil
}
func (b localBackend) Stats() (engine.Stats, error) { return b.e.Stats(), nil }
func (b localBackend) Close()                       { b.e.Close() }

// tenantBackend is one tenant's submit surface over the shared
// in-process engine — the local-mode counterpart of a HELLO-bound
// client. The engine is owned (and closed) by the localBackend the
// driver keeps for stats, so Close here is a no-op.
type tenantBackend struct {
	e      *engine.Engine
	tenant int
}

func (b tenantBackend) SubmitInto(l *trace.Loop, dst []float64) (engine.Result, error) {
	h, err := b.e.SubmitAsyncIntoTenant(l, dst, b.tenant)
	if err != nil {
		return engine.Result{}, err
	}
	return h.Wait(), nil
}
func (b tenantBackend) OpenSession(l *trace.Loop) (sessionHandle, engine.Result, error) {
	s, res, err := b.e.OpenSessionTenant(l, 0, nil, b.tenant)
	if err != nil {
		return nil, res, err
	}
	return s, res, nil
}
func (b tenantBackend) Stats() (engine.Stats, error) { return b.e.Stats(), nil }
func (b tenantBackend) Close()                       {}

type remoteBackend struct{ c *client.Client }

func (b remoteBackend) SubmitInto(l *trace.Loop, dst []float64) (engine.Result, error) {
	return b.c.SubmitInto(l, dst)
}
func (b remoteBackend) OpenSession(l *trace.Loop) (sessionHandle, engine.Result, error) {
	s, res, err := b.c.OpenSession(l)
	if err != nil {
		return nil, res, err
	}
	return remoteSession{s}, res, nil
}
func (b remoteBackend) Stats() (engine.Stats, error) { return b.c.Stats() }
func (b remoteBackend) Close()                       { b.c.Close() }

// remoteSession renames client.Session's SubmitDeltaInto to the
// engine-shaped Apply the driver calls.
type remoteSession struct{ s *client.Session }

func (r remoteSession) Apply(deltas []reduction.RefDelta, dst []float64) (engine.Result, error) {
	return r.s.SubmitDeltaInto(deltas, dst)
}
func (r remoteSession) Close() error { return r.s.Close() }
func (r remoteSession) Gen() uint64  { return r.s.Gen() }

// report is the run summary, printable as text or JSON.
type report struct {
	Mode         string            `json:"mode"`
	Remote       string            `json:"remote,omitempty"`
	Gateway      int               `json:"gateway_backends,omitempty"`
	Workers      int               `json:"workers,omitempty"`
	Procs        int               `json:"procs,omitempty"`
	Clients      int               `json:"clients"`
	Jobs         int               `json:"jobs"`
	Failures     int64             `json:"failures"`
	Verified     bool              `json:"verified"`
	ElapsedNs    int64             `json:"elapsed_ns"`
	JobsPerSec   float64           `json:"jobs_per_sec"`
	LatP50Ns     int64             `json:"latency_p50_ns"`
	LatP95Ns     int64             `json:"latency_p95_ns"`
	LatP99Ns     int64             `json:"latency_p99_ns"`
	LatMaxNs     int64             `json:"latency_max_ns"`
	Batches      uint64            `json:"batches"`
	Coalesced    uint64            `json:"coalesced"`
	JobsPerBatch float64           `json:"jobs_per_batch"`
	Occupancy    []uint64          `json:"batch_occupancy"`
	CacheHits    uint64            `json:"cache_hits"`
	CacheMisses  uint64            `json:"cache_misses"`
	CacheEntries int               `json:"cache_entries"`
	CacheEvicts  uint64            `json:"cache_evictions"`
	Recals       uint64            `json:"recalibrations"`
	Switches     uint64            `json:"scheme_switches"`
	SimpBatches  uint64            `json:"simplified_batches"`
	SimpFalls    uint64            `json:"simplify_fallbacks"`
	SegsComputed uint64            `json:"segments_computed"`
	SegsReused   uint64            `json:"segments_reused"`
	Sessions     int               `json:"sessions,omitempty"`
	SessOpens    uint64            `json:"session_opens,omitempty"`
	SessJobs     uint64            `json:"session_jobs,omitempty"`
	SessComputed uint64            `json:"session_segments_computed,omitempty"`
	SessReused   uint64            `json:"session_segments_reused,omitempty"`
	ShadowChecks int64             `json:"shadow_checks,omitempty"`
	AllocPerJob  float64           `json:"client_alloc_bytes_per_job"`
	Imbalance    float64           `json:"mean_imbalance"`
	ImbalanceN   int64             `json:"imbalance_jobs"`
	Schemes      map[string]uint64 `json:"schemes"`
	Tenants      []tenantReport    `json:"tenants,omitempty"`
}

// tenantReport is one tenant's slice of a -tenants run: what the driver
// offered under that identity and what the serving tier attributed.
type tenantReport struct {
	Name    string `json:"name"`
	Weight  int    `json:"weight"`
	Offered int    `json:"offered_jobs"`
	Jobs    uint64 `json:"server_jobs"`
	Busy    uint64 `json:"busy"`
}

func main() {
	workers := flag.Int("workers", 4, "concurrent batches in the engine's pool (local mode)")
	procs := flag.Int("procs", 8, "goroutines per reduction execution (local mode)")
	jobs := flag.Int("jobs", 400, "total jobs to submit")
	clients := flag.Int("clients", 8, "concurrent submitting goroutines")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	zipf := flag.Bool("zipf", false, "serve the Zipf-skewed hot-key stream instead of the mixed round-robin")
	patterns := flag.Int("patterns", 24, "distinct patterns in the -zipf / -drift population")
	zipfS := flag.Float64("zipf-s", 1.4, "Zipf exponent for -zipf / -drift (must be > 1)")
	drift := flag.Bool("drift", false, "serve the phase-drifting Zipf stream: hot keys keep their fingerprints but shift pattern regime at phase boundaries")
	driftPhase := flag.Int("drift-phase", 0, "jobs per drift phase (0 = jobs/4)")
	driftRatio := flag.Float64("drift-ratio", 0, "engine cost-drift ratio marking cached decisions stale (local mode, 0 = default 1.5)")
	recalEvery := flag.Int("recal-every", 0, "engine executions between sampled re-profiles (local mode, 0 = default 256)")
	recalConfirm := flag.Int("recal-confirm", 0, "consecutive confirming re-inspections before a scheme switch (local mode, 0 = default 2)")
	norecal := flag.Bool("norecal", false, "disable online recalibration (local mode)")
	cold := flag.Bool("cold", false, "disable buffer pooling and feedback scheduling (per-job cold path)")
	nocoalesce := flag.Bool("nocoalesce", false, "disable batch coalescing (per-job execution path)")
	queue := flag.Int("queue", 0, "submission queue depth in batches (0 = 2*workers)")
	verify := flag.Bool("verify", true, "check a sample of results against the sequential reference")
	sessions := flag.Int("sessions", 0, "drive this many concurrent streaming sessions (OPEN_SESSION + SUBMIT_DELTA) instead of the one-shot job stream; -jobs counts delta batches across all sessions")
	remote := flag.String("remote", "", "drive a reduxd server at this address instead of an in-process engine")
	gateway := flag.Int("gateway", 0, "spawn this many in-process reduxd backends behind a pattern-routing gateway and drive it")
	conns := flag.Int("conns", 4, "client connection pool size (remote mode)")
	jsonOut := flag.Bool("json", false, "emit the final report as JSON on stdout")
	tenantsFlag := flag.String("tenants", "", "drive per-tenant job streams: name[:weight[:rate[:burst[:quota]]]],... — weights set each tenant's share of -jobs; remote mode binds each tenant's clients via HELLO, local mode runs a multi-tenant engine (rate/burst/quota are reduxd-side knobs, ignored by the driver)")
	flag.Parse()

	tspecs, err := server.ParseTenantSpecs(*tenantsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxserve:", err)
		os.Exit(2)
	}
	tenantMode := len(tspecs) > 0

	switch {
	case *procs < 1 || *procs > 64:
		fmt.Fprintf(os.Stderr, "reduxserve: -procs must be in [1,64], got %d\n", *procs)
		os.Exit(2)
	case *scale <= 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -scale must be positive, got %g\n", *scale)
		os.Exit(2)
	case *jobs < 1 || *clients < 1 || *workers < 1 || *conns < 1:
		fmt.Fprintf(os.Stderr, "reduxserve: -jobs, -clients, -workers and -conns must be at least 1\n")
		os.Exit(2)
	case (*zipf || *drift) && (*patterns < 1 || *zipfS <= 1):
		fmt.Fprintf(os.Stderr, "reduxserve: -zipf/-drift need -patterns >= 1 and -zipf-s > 1\n")
		os.Exit(2)
	case *zipf && *drift:
		fmt.Fprintf(os.Stderr, "reduxserve: -zipf and -drift are exclusive stream shapes\n")
		os.Exit(2)
	case *driftPhase < 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -drift-phase must be non-negative, got %d\n", *driftPhase)
		os.Exit(2)
	case *gateway < 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -gateway must be non-negative, got %d\n", *gateway)
		os.Exit(2)
	case *gateway > 0 && *remote != "":
		fmt.Fprintf(os.Stderr, "reduxserve: -gateway spawns its own backends; it cannot be combined with -remote\n")
		os.Exit(2)
	case *sessions < 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -sessions must be non-negative, got %d\n", *sessions)
		os.Exit(2)
	case *sessions > 0 && (*zipf || *drift):
		fmt.Fprintf(os.Stderr, "reduxserve: -sessions is its own stream shape; it cannot be combined with -zipf or -drift\n")
		os.Exit(2)
	case *sessions > 0 && *gateway > 0:
		fmt.Fprintf(os.Stderr, "reduxserve: the gateway tier does not forward sessions; drive reduxd directly\n")
		os.Exit(2)
	case *sessions > *jobs:
		fmt.Fprintf(os.Stderr, "reduxserve: -sessions (%d) needs at least one delta batch each, but -jobs is %d\n", *sessions, *jobs)
		os.Exit(2)
	case tenantMode && (*zipf || *drift || *sessions > 0):
		fmt.Fprintf(os.Stderr, "reduxserve: -tenants is its own stream shape; it cannot be combined with -zipf, -drift or -sessions\n")
		os.Exit(2)
	case tenantMode && *gateway > 0:
		fmt.Fprintf(os.Stderr, "reduxserve: the gateway forwards jobs under the default identity; drive reduxd directly in tenant mode\n")
		os.Exit(2)
	case tenantMode && *patterns < 1:
		fmt.Fprintf(os.Stderr, "reduxserve: -tenants needs -patterns >= 1\n")
		os.Exit(2)
	}
	if *remote != "" {
		// Engine-shape flags configure the in-process engine only; in
		// remote mode the server was configured at reduxd startup, so an
		// explicitly-set one signals a misunderstanding — reject it
		// rather than silently benchmark a differently-shaped server.
		engineFlags := map[string]bool{
			"workers": true, "procs": true, "queue": true, "cold": true, "nocoalesce": true,
			"drift-ratio": true, "recal-every": true, "recal-confirm": true, "norecal": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if engineFlags[f.Name] {
				fmt.Fprintf(os.Stderr, "reduxserve: -%s configures the in-process engine; set it on reduxd in remote mode\n", f.Name)
				os.Exit(2)
			}
		})
	}

	// Build the pattern population and the job stream over it. loops is
	// the warmup population (phase 0 for the drift stream: later phases
	// must be discovered by recalibration, not pre-decided); verifyLoops
	// covers everything the stream can submit.
	var loops []*trace.Loop
	var stream []*trace.Loop
	var verifyLoops []*trace.Loop
	var tenantStreams [][]*trace.Loop
	var tenantJobs []int
	phaseLen := *driftPhase
	switch {
	case *sessions > 0:
		// Session mode builds per-session DeltaStreams in the measured
		// phase itself; there is no one-shot population to warm or verify.
	case tenantMode:
		// One Zipf-skewed stream per tenant over disjoint pattern
		// populations, each sized by the tenant's weight share of -jobs;
		// each population is warmed through its own tenant identity below.
		tenantJobs = tenantShares(tspecs, *jobs)
		tenantStreams = workloads.TenantMixStream(tenantJobs, *patterns, *scale, 1)
		seen := map[*trace.Loop]bool{}
		for _, ts := range tenantStreams {
			for _, l := range ts {
				if !seen[l] {
					seen[l] = true
					verifyLoops = append(verifyLoops, l)
				}
			}
		}
	case *zipf:
		loops = workloads.HotKeySet(*patterns, *scale)
		stream = workloads.ZipfStream(loops, *jobs, *zipfS, 1)
		verifyLoops = loops
	case *drift:
		if phaseLen == 0 {
			phaseLen = (*jobs + 3) / 4
		}
		nphases := (*jobs + phaseLen - 1) / phaseLen
		ds := workloads.NewDriftStream(*patterns, nphases, phaseLen, *zipfS, *scale, 1)
		loops = ds.Phases[0]
		stream = ds.Stream[:*jobs]
		for _, phase := range ds.Phases {
			verifyLoops = append(verifyLoops, phase...)
		}
	default:
		loops = workloads.MixedSet(*scale)
		stream = make([]*trace.Loop, *jobs)
		for i := range stream {
			stream[i] = loops[i%len(loops)]
		}
		verifyLoops = loops
	}
	refs := make(map[*trace.Loop][]float64, len(verifyLoops))
	if *verify {
		for _, l := range verifyLoops {
			refs[l] = l.RunSequential()
		}
	}

	ecfg := engine.Config{
		Workers:         *workers,
		Platform:        core.DefaultPlatform(*procs),
		QueueDepth:      *queue,
		DisablePool:     *cold,
		DisableFeedback: *cold,
		DisableCoalesce: *nocoalesce,
		DriftRatio:      *driftRatio,
		RecalEvery:      *recalEvery,
		RecalConfirm:    *recalConfirm,
		DisableRecal:    *norecal,
	}
	var be backend
	var tenantBEs []backend
	where := "in-process engine"
	switch {
	case *remote != "" && tenantMode:
		// One client per tenant: the HELLO binding is per connection, so
		// each tenant's stream needs its own pool.
		for _, ts := range tspecs {
			c, err := client.Dial(*remote, client.Config{Conns: *conns, Tenant: ts.Name})
			if err != nil {
				fmt.Fprintln(os.Stderr, "reduxserve:", err)
				os.Exit(1)
			}
			tenantBEs = append(tenantBEs, remoteBackend{c})
		}
		be = tenantBEs[0]
		for _, tb := range tenantBEs[1:] {
			defer tb.Close()
		}
		where = fmt.Sprintf("reduxd at %s under %d tenant identities", *remote, len(tspecs))
	case tenantMode:
		ecfg.Tenants = server.EngineTenants(tspecs)
		e, err := engine.New(ecfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxserve:", err)
			os.Exit(2)
		}
		for _, ts := range tspecs {
			tenantBEs = append(tenantBEs, tenantBackend{e, e.TenantIndex(ts.Name)})
		}
		be = localBackend{e}
		where = fmt.Sprintf("in-process engine with %d tenants", len(tspecs))
	case *remote != "":
		c, err := client.Dial(*remote, client.Config{Conns: *conns})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxserve:", err)
			os.Exit(1)
		}
		be = remoteBackend{c}
		where = "reduxd at " + *remote
	case *gateway > 0:
		addr, stop, err := startGatewayStack(*gateway, ecfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxserve:", err)
			os.Exit(1)
		}
		defer stop()
		c, err := client.Dial(addr, client.Config{Conns: *conns})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxserve:", err)
			os.Exit(1)
		}
		be = remoteBackend{c}
		where = fmt.Sprintf("gateway over %d in-process backends", *gateway)
	default:
		e, err := engine.New(ecfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reduxserve:", err)
			os.Exit(2)
		}
		be = localBackend{e}
	}
	defer be.Close()

	rep := report{
		Mode:    "mixed",
		Remote:  *remote,
		Gateway: *gateway,
		Clients: *clients,
		Jobs:    *jobs,
	}
	if *zipf {
		rep.Mode = fmt.Sprintf("zipf(s=%g, %d patterns)", *zipfS, *patterns)
	}
	if *drift {
		rep.Mode = fmt.Sprintf("drift(s=%g, %d patterns, %d-job phases)", *zipfS, *patterns, phaseLen)
	}
	if *sessions > 0 {
		rep.Mode = fmt.Sprintf("sessions(%d streams, %d deltas/batch)", *sessions, sessionDeltaBatch)
		rep.Sessions = *sessions
	}
	if tenantMode {
		rep.Mode = fmt.Sprintf("tenants(%d streams, %d patterns each)", len(tspecs), *patterns)
	}
	if *remote == "" {
		rep.Workers, rep.Procs = *workers, *procs
	}
	progressf := func(format string, args ...any) {
		// In -json mode stdout carries only the JSON document; narration
		// moves to stderr so pipelines stay parseable.
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		fmt.Fprintf(w, format, args...)
	}
	progressf("%s: %d jobs from %d clients, %s stream (cold=%v, coalesce=%v)\n",
		where, *jobs, *clients, rep.Mode, *cold, !*nocoalesce)

	// Warm the cache and pools with one pass over the pattern population
	// so the measured phase is the steady state a long-lived service runs
	// in. BUSY here means the server is loaded by someone else — retry,
	// same as the measured loop.
	for _, l := range loops {
		if _, err := submitWithBusyRetry(be, l, nil); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			os.Exit(1)
		}
	}
	// Tenant mode warms each tenant's own population through its own
	// identity, so decision-cache state lands under the right attribution
	// and rate-limited tenants pace their warmup like real traffic.
	for t, tb := range tenantBEs {
		warmed := map[*trace.Loop]bool{}
		for _, l := range tenantStreams[t] {
			if warmed[l] {
				continue
			}
			warmed[l] = true
			if _, err := submitWithBusyRetry(tb, l, nil); err != nil {
				fmt.Fprintf(os.Stderr, "warmup: tenant %s: %v\n", tspecs[t].Name, err)
				os.Exit(1)
			}
		}
	}

	// Snapshot counters after warmup so every reported figure covers the
	// measured phase only (the warmup pass is all misses and singletons).
	warm, err := be.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var submitted atomic.Int64
	var failures atomic.Int64
	var shadowChecks atomic.Int64
	var imbalanceSum atomic.Int64 // milli-units, summed over measured jobs
	var imbalanceN atomic.Int64
	// One shared log-bucketed histogram replaces the per-client latency
	// slices: recording is a few atomic adds, and memory stays fixed no
	// matter how many jobs the run drives (the old sorted-slice percentile
	// path grew with -jobs). Quantiles come from the bucket walk, with
	// bounded relative error instead of a full sort.
	var latHist obs.Histogram
	start := time.Now()
	var wg sync.WaitGroup
	if *sessions > 0 {
		base, extra := *jobs / *sessions, *jobs%*sessions
		for s := 0; s < *sessions; s++ {
			steps := base
			if s < extra {
				steps++
			}
			wg.Add(1)
			go func(s, steps int) {
				defer wg.Done()
				if !runSession(be, s, steps, *scale, *verify, &latHist, &shadowChecks) {
					failures.Add(1)
				}
			}(s, steps)
		}
	} else if tenantMode {
		// Each tenant runs its own closed loop over its own stream, so
		// the offered mix tracks the configured weights exactly and one
		// tenant's BUSY backoff never slows another's submissions.
		nG := *clients / len(tenantBEs)
		if nG < 1 {
			nG = 1
		}
		idxs := make([]atomic.Int64, len(tenantBEs))
		for t := range tenantBEs {
			for g := 0; g < nG; g++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					tb, ts := tenantBEs[t], tenantStreams[t]
					var dst []float64
					for {
						n := int(idxs[t].Add(1)) - 1
						if n >= len(ts) {
							break
						}
						l := ts[n]
						t0 := time.Now()
						res, err := submitWithBusyRetry(tb, l, dst)
						if err != nil {
							fmt.Fprintf(os.Stderr, "submit: tenant %s: %v\n", tspecs[t].Name, err)
							failures.Add(1)
							break
						}
						latHist.Observe(time.Since(t0))
						dst = res.Values
						if res.Imbalance > 0 {
							imbalanceSum.Add(int64(res.Imbalance * 1000))
							imbalanceN.Add(1)
						}
						if *verify && n < 4*nG && !matches(res.Values, refs[l]) {
							fmt.Fprintf(os.Stderr, "verify: tenant %s: %s diverged from sequential reference\n", tspecs[t].Name, l.Name)
							failures.Add(1)
							break
						}
					}
				}(t)
			}
		}
	} else {
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var dst []float64
				for {
					n := int(submitted.Add(1)) - 1
					if n >= *jobs {
						break
					}
					l := stream[n]
					t0 := time.Now()
					// Latency keeps accruing from t0 across BUSY retries, so
					// overload shows up in the tail rather than as failures.
					res, err := submitWithBusyRetry(be, l, dst)
					if err != nil {
						fmt.Fprintln(os.Stderr, "submit:", err)
						failures.Add(1)
						break
					}
					latHist.Observe(time.Since(t0))
					dst = res.Values
					if res.Imbalance > 0 {
						imbalanceSum.Add(int64(res.Imbalance * 1000))
						imbalanceN.Add(1)
					}
					if *verify && n < 4**clients && !matches(res.Values, refs[l]) {
						fmt.Fprintf(os.Stderr, "verify: %s diverged from sequential reference\n", l.Name)
						failures.Add(1)
						break
					}
				}
			}(c)
		}
	}
	wg.Wait()
	rep.ElapsedNs = int64(time.Since(start))

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	rep.Failures = failures.Load()
	rep.Verified = *verify && rep.Failures == 0

	now, err := be.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}
	s := statsDelta(now, warm)
	if snap := latHist.Snapshot(); snap.Count > 0 {
		rep.LatP50Ns = int64(snap.Quantile(0.50))
		rep.LatP95Ns = int64(snap.Quantile(0.95))
		rep.LatP99Ns = int64(snap.Quantile(0.99))
		rep.LatMaxNs = int64(snap.MaxNs)
	}
	rep.JobsPerSec = float64(*jobs) / (float64(rep.ElapsedNs) / 1e9)
	rep.Batches = s.Batches
	rep.Coalesced = s.Coalesced
	if s.Batches > 0 {
		rep.JobsPerBatch = float64(s.Jobs) / float64(s.Batches)
	}
	rep.Occupancy = s.BatchOccupancy
	rep.CacheHits = s.CacheHits
	rep.CacheMisses = s.CacheMisses
	rep.CacheEntries = s.CacheEntries
	rep.CacheEvicts = s.CacheEvictions
	rep.Recals = s.Recalibrations
	rep.Switches = s.SchemeSwitches
	rep.SimpBatches = s.SimplifiedBatches
	rep.SimpFalls = s.SimplifyFallbacks
	rep.SegsComputed = s.SegsComputed
	rep.SegsReused = s.SegsReused
	rep.SessOpens = s.SessionOpens
	rep.SessJobs = s.SessionJobs
	rep.SessComputed = s.SessionSegsComputed
	rep.SessReused = s.SessionSegsReused
	rep.ShadowChecks = shadowChecks.Load()
	rep.AllocPerJob = float64(after.TotalAlloc-before.TotalAlloc) / float64(*jobs)
	if n := imbalanceN.Load(); n > 0 {
		rep.Imbalance = float64(imbalanceSum.Load()) / 1000 / float64(n)
		rep.ImbalanceN = n
	}
	rep.Schemes = s.Schemes
	if tenantMode {
		rows := map[string]engine.TenantStats{}
		for _, row := range s.Tenants {
			rows[row.Name] = row
		}
		for i, ts := range tspecs {
			row := rows[ts.Name]
			rep.Tenants = append(rep.Tenants, tenantReport{
				Name:    ts.Name,
				Weight:  ts.Weight,
				Offered: tenantJobs[i],
				Jobs:    row.Jobs,
				Busy:    row.Busy,
			})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	} else {
		printHuman(rep)
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "%d clients failed\n", rep.Failures)
		os.Exit(1)
	}
}

// sessionDeltaBatch is the delta count per SUBMIT_DELTA batch in
// -sessions mode, and shadowEvery is how many batches ride between
// shadow full-recompute checks (every session also checks its final
// step, so short streams still verify).
const (
	sessionDeltaBatch = 16
	shadowEvery       = 8
)

// runSession drives one streaming session end to end: open a
// deterministic DeltaStream over the backend, submit every batch, and
// shadow-verify the rolling result against a privately mirrored loop's
// from-scratch sequential reduction — the end-to-end version of the
// property the session test suites pin (the mirror is rebuilt by the
// driver, so a server that quietly dropped a delta or served a stale
// segment sum cannot agree with it). Returns false after printing the
// reason on any failure.
func runSession(be backend, id, steps int, scale float64, verify bool, latHist *obs.Histogram, shadowChecks *atomic.Int64) bool {
	ds := workloads.NewDeltaStream(steps, sessionDeltaBatch, scale, int64(1000+id))
	sess, res, err := openSessionWithBusyRetry(be, ds.Base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "session %d: open: %v\n", id, err)
		return false
	}
	defer sess.Close()
	if verify && !matches(res.Values, ds.Base.RunSequential()) {
		fmt.Fprintf(os.Stderr, "session %d: initial reduction diverged from sequential reference\n", id)
		return false
	}
	mirror := ds.Base.Clone()
	dst := res.Values
	for i, batch := range ds.Batches {
		t0 := time.Now()
		r, err := applyWithBusyRetry(sess, batch, dst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "session %d: delta %d: %v\n", id, i+1, err)
			return false
		}
		latHist.Observe(time.Since(t0))
		dst = r.Values
		workloads.ApplyDeltas(mirror, batch)
		if verify && (i%shadowEvery == shadowEvery-1 || i == len(ds.Batches)-1) {
			if !matches(r.Values, mirror.RunSequential()) {
				fmt.Fprintf(os.Stderr, "session %d: step %d diverged from shadow full recompute\n", id, i+1)
				return false
			}
			shadowChecks.Add(1)
		}
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "session %d: close: %v\n", id, err)
		return false
	}
	return true
}

// openSessionWithBusyRetry and applyWithBusyRetry are the session-mode
// analogues of submitWithBusyRetry: BUSY (including the session budget)
// is pacing, not failure.
func openSessionWithBusyRetry(be backend, l *trace.Loop) (sessionHandle, engine.Result, error) {
	sess, res, err := be.OpenSession(l)
	for backoff := time.Millisecond; errors.Is(err, client.ErrBusy); {
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
		sess, res, err = be.OpenSession(l)
	}
	return sess, res, err
}

func applyWithBusyRetry(sess sessionHandle, deltas []reduction.RefDelta, dst []float64) (engine.Result, error) {
	res, err := sess.Apply(deltas, dst)
	for backoff := time.Millisecond; errors.Is(err, client.ErrBusy); {
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
		res, err = sess.Apply(deltas, dst)
	}
	return res, err
}

// startGatewayStack boots n reduxd-shaped backends (each its own engine
// behind a server) on loopback listeners, plus a pattern-routing gateway
// in front of them, all in-process. It returns the gateway's dial
// address and a teardown that drains the gateway before the backends so
// no in-flight job is cut.
func startGatewayStack(n int, ecfg engine.Config) (string, func(), error) {
	type stack struct {
		eng  *engine.Engine
		srv  *server.Server
		done chan error
	}
	var backends []stack
	var addrs []string
	var pool *cluster.Pool
	var gwSrv *server.Server
	var gwDone chan error
	stop := func() {
		if gwSrv != nil {
			gwSrv.Shutdown(30 * time.Second)
			<-gwDone
		}
		if pool != nil {
			pool.Close()
		}
		for _, b := range backends {
			b.srv.Shutdown(30 * time.Second)
			<-b.done
			b.eng.Close()
		}
	}
	for i := 0; i < n; i++ {
		eng, err := engine.New(ecfg)
		if err != nil {
			stop()
			return "", nil, err
		}
		srv := server.New(eng, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eng.Close()
			stop()
			return "", nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		backends = append(backends, stack{eng, srv, done})
		addrs = append(addrs, ln.Addr().String())
	}
	pool, err := cluster.New(cluster.Config{Backends: addrs})
	if err != nil {
		stop()
		return "", nil, err
	}
	gwSrv = server.NewWithDispatcher(pool, server.Config{MaxInflightGlobal: 4096})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	gwDone = make(chan error, 1)
	go func() { gwDone <- gwSrv.Serve(gln) }()
	return gln.Addr().String(), stop, nil
}

// submitWithBusyRetry is SubmitInto with exponential backoff on BUSY:
// the server's admission control is pacing, not failure, so the load
// generator resubmits instead of dying. Only remote backends ever return
// ErrBusy.
func submitWithBusyRetry(be backend, l *trace.Loop, dst []float64) (engine.Result, error) {
	res, err := be.SubmitInto(l, dst)
	for backoff := time.Millisecond; errors.Is(err, client.ErrBusy); {
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
		res, err = be.SubmitInto(l, dst)
	}
	return res, err
}

// printHuman renders the report in the traditional text form.
func printHuman(rep report) {
	fmt.Printf("\n%d jobs in %v  (%.0f jobs/s)\n", rep.Jobs,
		time.Duration(rep.ElapsedNs).Round(time.Millisecond), rep.JobsPerSec)
	fmt.Printf("job latency: p50 %v  p95 %v  p99 %v  max %v\n",
		time.Duration(rep.LatP50Ns).Round(time.Microsecond),
		time.Duration(rep.LatP95Ns).Round(time.Microsecond),
		time.Duration(rep.LatP99Ns).Round(time.Microsecond),
		time.Duration(rep.LatMaxNs).Round(time.Microsecond))
	fmt.Printf("batches: %d executed for %d jobs (%.2f jobs/batch, %d coalesced)\n",
		rep.Batches, rep.Jobs, rep.JobsPerBatch, rep.Coalesced)
	fmt.Print("batch occupancy:")
	for size, count := range rep.Occupancy {
		if count > 0 {
			fmt.Printf("  %dx:%d", size, count)
		}
	}
	fmt.Println()
	fmt.Printf("decision cache: %d entries (%d evictions), %d hits / %d misses (%.1f%% hit rate)\n",
		rep.CacheEntries, rep.CacheEvicts, rep.CacheHits, rep.CacheMisses,
		100*float64(rep.CacheHits)/float64(rep.CacheHits+rep.CacheMisses))
	if rep.Recals > 0 || rep.Switches > 0 {
		fmt.Printf("recalibration: %d re-inspections, %d scheme switches\n", rep.Recals, rep.Switches)
	}
	if rep.Sessions > 0 {
		fmt.Printf("sessions: %d opened, %d delta batches, segments %d recomputed / %d reused, %d shadow checks\n",
			rep.SessOpens, rep.SessJobs, rep.SessComputed, rep.SessReused, rep.ShadowChecks)
	}
	if rep.SimpBatches > 0 || rep.SimpFalls > 0 {
		fmt.Printf("simplification: %d batches (%d declined), segments %d computed / %d reused\n",
			rep.SimpBatches, rep.SimpFalls, rep.SegsComputed, rep.SegsReused)
	}
	fmt.Printf("alloc: %.1f KB/job client-side\n", rep.AllocPerJob/1024)
	if rep.ImbalanceN > 0 {
		fmt.Printf("mean measured imbalance: %.2fx over %d feedback-scheduled jobs\n",
			rep.Imbalance, rep.ImbalanceN)
	}
	for _, t := range rep.Tenants {
		fmt.Printf("tenant %s (weight %d): offered %d jobs, server attributed %d, %d busy rejections\n",
			t.Name, t.Weight, t.Offered, t.Jobs, t.Busy)
	}
	fmt.Println("scheme mix:")
	names := make([]string, 0, len(rep.Schemes))
	for name := range rep.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-6s %d jobs\n", name, rep.Schemes[name])
	}
}

// tenantShares splits total jobs across tenants proportionally to their
// weights, by cumulative rounding so the shares sum to exactly total.
func tenantShares(specs []server.TenantSpec, total int) []int {
	var sumW int64
	for _, s := range specs {
		sumW += int64(s.Weight)
	}
	out := make([]int, len(specs))
	var cum int64
	prev := 0
	for i, s := range specs {
		cum += int64(s.Weight)
		end := int(int64(total) * cum / sumW)
		out[i] = end - prev
		prev = end
	}
	return out
}

// statsDelta returns the counters accumulated since the warm snapshot.
// CacheEntries stays absolute (it is a residency count, not a counter).
func statsDelta(now, warm engine.Stats) engine.Stats {
	d := engine.Stats{
		Jobs:           now.Jobs - warm.Jobs,
		CacheHits:      now.CacheHits - warm.CacheHits,
		CacheMisses:    now.CacheMisses - warm.CacheMisses,
		Batches:        now.Batches - warm.Batches,
		Coalesced:      now.Coalesced - warm.Coalesced,
		CacheEntries:   now.CacheEntries,
		CacheEvictions: now.CacheEvictions - warm.CacheEvictions,
		Recalibrations: now.Recalibrations - warm.Recalibrations,
		SchemeSwitches: now.SchemeSwitches - warm.SchemeSwitches,

		SimplifiedBatches: now.SimplifiedBatches - warm.SimplifiedBatches,
		SimplifyFallbacks: now.SimplifyFallbacks - warm.SimplifyFallbacks,
		SegsComputed:      now.SegsComputed - warm.SegsComputed,
		SegsReused:        now.SegsReused - warm.SegsReused,

		SessionOpens:        now.SessionOpens - warm.SessionOpens,
		SessionJobs:         now.SessionJobs - warm.SessionJobs,
		SessionSegsComputed: now.SessionSegsComputed - warm.SessionSegsComputed,
		SessionSegsReused:   now.SessionSegsReused - warm.SessionSegsReused,
		Schemes:             make(map[string]uint64),
		BatchOccupancy:      make([]uint64, len(now.BatchOccupancy)),
	}
	for k, v := range now.Schemes {
		if v -= warm.Schemes[k]; v > 0 {
			d.Schemes[k] = v
		}
	}
	// Per-tenant rows: counters delta against the warm row of the same
	// name; Weight is a gauge and QueueWait an absolute snapshot, both
	// carried as-is.
	if len(now.Tenants) > 0 {
		warmRows := make(map[string]engine.TenantStats, len(warm.Tenants))
		for _, row := range warm.Tenants {
			warmRows[row.Name] = row
		}
		for _, row := range now.Tenants {
			w := warmRows[row.Name]
			row.Jobs -= w.Jobs
			row.Batches -= w.Batches
			row.Busy -= w.Busy
			row.Recalibrations -= w.Recalibrations
			row.SchemeSwitches -= w.SchemeSwitches
			d.Tenants = append(d.Tenants, row)
		}
	}
	for k, v := range now.BatchOccupancy {
		if k < len(warm.BatchOccupancy) {
			v -= warm.BatchOccupancy[k]
		}
		d.BatchOccupancy[k] = v
	}
	return d
}

func matches(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			return false
		}
	}
	return true
}
