// Command reduxserve hammers the concurrent adaptive reduction engine with
// a stream of reduction jobs — the production-service shape of the paper's
// runtime: many clients, one long-lived engine, decisions, schedules and
// buffers amortized across jobs, and same-pattern jobs fused into batches.
//
// Two workload shapes are built in: the mixed regime stream (default,
// round-robin over six patterns) and a Zipf-skewed hot-key stream (-zipf)
// in which a few patterns dominate the traffic the way production services
// see repeats of a few hot requests — the regime where batch coalescing
// pays. It reports throughput, per-job latency percentiles, the batch
// occupancy histogram, the decision cache's hit/eviction counters, the
// scheme mix, measured load imbalance, and the allocation footprint per
// job; run with -cold or -nocoalesce to feel what each layer buys.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 4, "concurrent batches in the engine's pool")
	procs := flag.Int("procs", 8, "goroutines per reduction execution")
	jobs := flag.Int("jobs", 400, "total jobs to submit")
	clients := flag.Int("clients", 8, "concurrent submitting goroutines")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	zipf := flag.Bool("zipf", false, "serve the Zipf-skewed hot-key stream instead of the mixed round-robin")
	patterns := flag.Int("patterns", 24, "distinct patterns in the -zipf population")
	zipfS := flag.Float64("zipf-s", 1.4, "Zipf exponent for -zipf (must be > 1)")
	cold := flag.Bool("cold", false, "disable buffer pooling and feedback scheduling (per-job cold path)")
	nocoalesce := flag.Bool("nocoalesce", false, "disable batch coalescing (per-job execution path)")
	queue := flag.Int("queue", 0, "submission queue depth in batches (0 = 2*workers)")
	verify := flag.Bool("verify", true, "check a sample of results against the sequential reference")
	flag.Parse()

	switch {
	case *procs < 1 || *procs > 64:
		fmt.Fprintf(os.Stderr, "reduxserve: -procs must be in [1,64], got %d\n", *procs)
		os.Exit(2)
	case *scale <= 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -scale must be positive, got %g\n", *scale)
		os.Exit(2)
	case *jobs < 1 || *clients < 1 || *workers < 1:
		fmt.Fprintf(os.Stderr, "reduxserve: -jobs, -clients and -workers must be at least 1\n")
		os.Exit(2)
	case *zipf && (*patterns < 1 || *zipfS <= 1):
		fmt.Fprintf(os.Stderr, "reduxserve: -zipf needs -patterns >= 1 and -zipf-s > 1\n")
		os.Exit(2)
	}

	// Build the pattern population and the job stream over it.
	var loops []*trace.Loop
	var stream []*trace.Loop
	if *zipf {
		loops = workloads.HotKeySet(*patterns, *scale)
		stream = workloads.ZipfStream(loops, *jobs, *zipfS, 1)
	} else {
		loops = workloads.MixedSet(*scale)
		stream = make([]*trace.Loop, *jobs)
		for i := range stream {
			stream[i] = loops[i%len(loops)]
		}
	}
	refs := make(map[*trace.Loop][]float64, len(loops))
	if *verify {
		for _, l := range loops {
			refs[l] = l.RunSequential()
		}
	}

	e, err := engine.New(engine.Config{
		Workers:         *workers,
		Platform:        core.DefaultPlatform(*procs),
		QueueDepth:      *queue,
		DisablePool:     *cold,
		DisableFeedback: *cold,
		DisableCoalesce: *nocoalesce,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduxserve:", err)
		os.Exit(2)
	}
	defer e.Close()

	mode := "mixed"
	if *zipf {
		mode = fmt.Sprintf("zipf(s=%g, %d patterns)", *zipfS, *patterns)
	}
	fmt.Printf("engine: %d workers x %d procs, %d jobs from %d clients, %s stream (cold=%v, coalesce=%v)\n",
		*workers, *procs, *jobs, *clients, mode, *cold, !*nocoalesce)

	// Warm the cache and pools with one pass over the pattern population
	// so the measured phase is the steady state a long-lived service runs
	// in.
	for _, l := range loops {
		if _, err := e.Submit(l); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			os.Exit(1)
		}
	}

	// Snapshot counters after warmup so every reported figure covers the
	// measured phase only (the warmup pass is all misses and singletons).
	warm := e.Stats()

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var submitted atomic.Int64
	var failures atomic.Int64
	var imbalanceSum atomic.Int64 // milli-units, summed over measured jobs
	var imbalanceN atomic.Int64
	latencies := make([][]time.Duration, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var dst []float64
			lat := make([]time.Duration, 0, *jobs / *clients + 1)
			for {
				n := int(submitted.Add(1)) - 1
				if n >= *jobs {
					break
				}
				l := stream[n]
				t0 := time.Now()
				res, err := e.SubmitInto(l, dst)
				if err != nil {
					fmt.Fprintln(os.Stderr, "submit:", err)
					failures.Add(1)
					break
				}
				lat = append(lat, time.Since(t0))
				dst = res.Values
				if res.Imbalance > 0 {
					imbalanceSum.Add(int64(res.Imbalance * 1000))
					imbalanceN.Add(1)
				}
				if *verify && n < 4**clients && !matches(res.Values, refs[l]) {
					fmt.Fprintf(os.Stderr, "verify: %s diverged from sequential reference\n", l.Name)
					failures.Add(1)
					break
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d clients failed\n", n)
		os.Exit(1)
	}

	s := statsDelta(e.Stats(), warm)
	fmt.Printf("\n%d jobs in %v  (%.0f jobs/s)\n", *jobs, elapsed.Round(time.Millisecond),
		float64(*jobs)/elapsed.Seconds())

	all := make([]time.Duration, 0, *jobs)
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		fmt.Printf("job latency: p50 %v  p95 %v  p99 %v  max %v\n",
			percentile(all, 50).Round(time.Microsecond),
			percentile(all, 95).Round(time.Microsecond),
			percentile(all, 99).Round(time.Microsecond),
			all[len(all)-1].Round(time.Microsecond))
	}

	fmt.Printf("batches: %d executed for %d jobs (%.2f jobs/batch, %d coalesced)\n",
		s.Batches, s.Jobs, float64(s.Jobs)/float64(s.Batches), s.Coalesced)
	fmt.Print("batch occupancy:")
	for size, count := range s.BatchOccupancy {
		if count > 0 {
			fmt.Printf("  %dx:%d", size, count)
		}
	}
	fmt.Println()
	fmt.Printf("decision cache: %d entries (%d evictions), %d hits / %d misses (%.1f%% hit rate)\n",
		s.CacheEntries, s.CacheEvictions, s.CacheHits, s.CacheMisses,
		100*float64(s.CacheHits)/float64(s.CacheHits+s.CacheMisses))
	fmt.Printf("alloc: %.1f KB/job (%d bytes total during measured phase)\n",
		float64(after.TotalAlloc-before.TotalAlloc)/1024/float64(*jobs),
		after.TotalAlloc-before.TotalAlloc)
	if n := imbalanceN.Load(); n > 0 {
		fmt.Printf("mean measured imbalance: %.2fx over %d feedback-scheduled jobs\n",
			float64(imbalanceSum.Load())/1000/float64(n), n)
	}
	fmt.Println("scheme mix:")
	names := make([]string, 0, len(s.Schemes))
	for name := range s.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-6s %d jobs\n", name, s.Schemes[name])
	}
}

// statsDelta returns the counters accumulated since the warm snapshot.
// CacheEntries stays absolute (it is a residency count, not a counter).
func statsDelta(now, warm engine.Stats) engine.Stats {
	d := engine.Stats{
		Jobs:           now.Jobs - warm.Jobs,
		CacheHits:      now.CacheHits - warm.CacheHits,
		CacheMisses:    now.CacheMisses - warm.CacheMisses,
		Batches:        now.Batches - warm.Batches,
		Coalesced:      now.Coalesced - warm.Coalesced,
		CacheEntries:   now.CacheEntries,
		CacheEvictions: now.CacheEvictions - warm.CacheEvictions,
		Schemes:        make(map[string]uint64),
		BatchOccupancy: make([]uint64, len(now.BatchOccupancy)),
	}
	for k, v := range now.Schemes {
		if v -= warm.Schemes[k]; v > 0 {
			d.Schemes[k] = v
		}
	}
	for k, v := range now.BatchOccupancy {
		if k < len(warm.BatchOccupancy) {
			v -= warm.BatchOccupancy[k]
		}
		d.BatchOccupancy[k] = v
	}
	return d
}

// percentile returns the p-th percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func matches(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			return false
		}
	}
	return true
}
