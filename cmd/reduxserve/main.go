// Command reduxserve hammers the concurrent adaptive reduction engine with
// a mixed stream of dense, sparse, clustered and skewed workloads — the
// production-service shape of the paper's runtime: many clients, one
// long-lived engine, decisions and buffers amortized across jobs.
//
// It reports throughput, the decision cache's hit rate, the scheme mix the
// adaptive selector chose, measured load imbalance, and the allocation
// footprint per job; run with -cold to feel what the pooling and caching
// buy (every job then re-inspects and allocates from scratch).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 4, "concurrent jobs in the engine's pool")
	procs := flag.Int("procs", 8, "goroutines per reduction execution")
	jobs := flag.Int("jobs", 400, "total jobs to submit")
	clients := flag.Int("clients", 8, "concurrent submitting goroutines")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	cold := flag.Bool("cold", false, "disable buffer pooling and feedback scheduling (per-job cold path)")
	verify := flag.Bool("verify", true, "check a sample of results against the sequential reference")
	flag.Parse()

	switch {
	case *procs < 1 || *procs > 64:
		fmt.Fprintf(os.Stderr, "reduxserve: -procs must be in [1,64], got %d\n", *procs)
		os.Exit(2)
	case *scale <= 0:
		fmt.Fprintf(os.Stderr, "reduxserve: -scale must be positive, got %g\n", *scale)
		os.Exit(2)
	case *jobs < 1 || *clients < 1 || *workers < 1:
		fmt.Fprintf(os.Stderr, "reduxserve: -jobs, -clients and -workers must be at least 1\n")
		os.Exit(2)
	}

	loops := workloads.MixedSet(*scale)
	refs := make([][]float64, len(loops))
	if *verify {
		for i, l := range loops {
			refs[i] = l.RunSequential()
		}
	}

	e := engine.New(engine.Config{
		Workers:         *workers,
		Platform:        core.DefaultPlatform(*procs),
		DisablePool:     *cold,
		DisableFeedback: *cold,
	})
	defer e.Close()

	fmt.Printf("engine: %d workers x %d procs, %d jobs from %d clients over %d patterns (cold=%v)\n",
		*workers, *procs, *jobs, *clients, len(loops), *cold)

	// Warm the cache and pools with one pass so the measured phase is the
	// steady state a long-lived service runs in.
	for _, l := range loops {
		if _, err := e.Submit(l); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			os.Exit(1)
		}
	}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var submitted atomic.Int64
	var failures atomic.Int64
	var imbalanceSum atomic.Int64 // milli-units, summed over measured jobs
	var imbalanceN atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var dst []float64
			for {
				n := int(submitted.Add(1)) - 1
				if n >= *jobs {
					return
				}
				i := n % len(loops)
				res, err := e.SubmitInto(loops[i], dst)
				if err != nil {
					fmt.Fprintln(os.Stderr, "submit:", err)
					failures.Add(1)
					return
				}
				dst = res.Values
				if res.Imbalance > 0 {
					imbalanceSum.Add(int64(res.Imbalance * 1000))
					imbalanceN.Add(1)
				}
				if *verify && n < 4**clients && !matches(res.Values, refs[i]) {
					fmt.Fprintf(os.Stderr, "verify: %s diverged from sequential reference\n", loops[i].Name)
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d clients failed\n", n)
		os.Exit(1)
	}

	s := e.Stats()
	fmt.Printf("\n%d jobs in %v  (%.0f jobs/s)\n", *jobs, elapsed.Round(time.Millisecond),
		float64(*jobs)/elapsed.Seconds())
	fmt.Printf("decision cache: %d entries, %d hits / %d misses (%.1f%% hit rate)\n",
		s.CacheEntries, s.CacheHits, s.CacheMisses,
		100*float64(s.CacheHits)/float64(s.CacheHits+s.CacheMisses))
	fmt.Printf("alloc: %.1f KB/job (%d bytes total during measured phase)\n",
		float64(after.TotalAlloc-before.TotalAlloc)/1024/float64(*jobs),
		after.TotalAlloc-before.TotalAlloc)
	if n := imbalanceN.Load(); n > 0 {
		fmt.Printf("mean measured imbalance: %.2fx over %d feedback-scheduled jobs\n",
			float64(imbalanceSum.Load())/1000/float64(n), n)
	}
	fmt.Println("scheme mix:")
	names := make([]string, 0, len(s.Schemes))
	for name := range s.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-6s %d jobs\n", name, s.Schemes[name])
	}
}

func matches(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			return false
		}
	}
	return true
}
