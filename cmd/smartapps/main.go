// Command smartapps regenerates the tables and figures of the paper's
// evaluation: fig3 (adaptive software reduction selection), table1 (the
// modeled CC-NUMA architecture), table2 (PCLR application
// characteristics), fig6 (Sw/Hw/Flex execution-time comparison at 16
// nodes), fig7 (scalability at 4/8/16 nodes) and rlrpd (the Section 3
// speculative-parallelization demonstration).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/simarch"
)

func main() {
	scale := flag.Float64("scale", 0.15, "fraction of the paper's input sizes (caches scale alongside); 1 = full size")
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	switch cmd {
	case "fig3":
		fig3(*scale)
	case "table1":
		table1()
	case "table2":
		table2(*scale)
	case "fig6":
		fig6(*scale)
	case "fig7":
		fig7(*scale)
	case "rlrpd":
		rlrpd()
	case "all":
		table1()
		fig3(*scale)
		table2(*scale)
		fig6(*scale)
		fig7(*scale)
		rlrpd()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (want fig3|table1|table2|fig6|fig7|rlrpd|all)\n", cmd)
		os.Exit(2)
	}
}

func fig3(scale float64) {
	fmt.Println("== Figure 3: adaptive reduction algorithm selection (8 processors) ==")
	sc := experiments.DefaultFig3Scale()
	sc.Dense = scale
	if sc.Sparse < scale {
		sc.Sparse = scale
	}
	fmt.Print(experiments.FormatFig3(experiments.RunFig3(sc)))
	fmt.Println()
}

func table1() {
	fmt.Println("== Table 1: modeled CC-NUMA architecture ==")
	fmt.Print(simarch.DefaultConfig(16).FormatTable1())
	fmt.Println()
}

func table2(scale float64) {
	fmt.Println("== Table 2: application characteristics (16-node PCLR simulation) ==")
	fmt.Print(experiments.FormatTable2(experiments.RunPCLRApps(16, scale)))
	fmt.Println()
}

func fig6(scale float64) {
	fmt.Println("== Figure 6: execution time under Sw / Hw / Flex, 16 nodes ==")
	fmt.Print(experiments.FormatFig6(experiments.RunPCLRApps(16, scale)))
	fmt.Println()
}

func rlrpd() {
	fmt.Println("== Section 3: Recursive LRPD on a TRACK-like partially parallel loop (8 processors) ==")
	fmt.Print(experiments.FormatRLRPD(experiments.RunRLRPD(4000, 8)))
	fmt.Println()
}

func fig7(scale float64) {
	fmt.Println("== Figure 7: speedup scalability (harmonic mean over the 5 applications) ==")
	fmt.Print(experiments.FormatFig7(experiments.RunFig7(scale)))
	fmt.Println()
}
