#!/bin/sh
# Validates a /metrics dump against two contracts:
#
#  1. Prometheus text exposition format (0.0.4): every sample's family
#     has a preceding # HELP and # TYPE line, TYPE is a known kind,
#     sample values are numeric, and every histogram family is complete —
#     its _bucket series end with le="+Inf", and _sum and _count are
#     present with _count equal to the +Inf bucket.
#
#  2. Engine-counter coverage: every field of engine.Stats (parsed from
#     internal/engine/stats.go) appears as a series in the dump, via the
#     field -> series mapping below (kept in lockstep with
#     internal/metrics/metrics.go, whose reflection test enforces the
#     same completeness from the Go side). A counter added to the engine
#     without a series therefore fails CI twice — once here, once there.
#
# usage: metrics_lint.sh <metrics-dump-file>
set -eu

cd "$(dirname "$0")/.."

[ $# -eq 1 ] || { echo "usage: metrics_lint.sh <metrics-dump-file>" >&2; exit 2; }
dump="$1"
[ -s "$dump" ] || { echo "metrics_lint: $dump missing or empty" >&2; exit 1; }

# --- 1. exposition format ---------------------------------------------------
awk '
function fam(name) {
    # The family of a histogram child series is the name minus the
    # _bucket/_sum/_count suffix, when that family was declared a
    # histogram.
    if (name ~ /_(bucket|sum|count)$/) {
        base = name
        sub(/_(bucket|sum|count)$/, "", base)
        if (type[base] == "histogram") return base
    }
    return name
}
/^# HELP / { help[$3] = 1; next }
/^# TYPE / {
    type[$3] = $4
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram" && $4 != "summary" && $4 != "untyped") {
        printf "metrics_lint: line %d: unknown TYPE %s for %s\n", NR, $4, $3; bad++
    }
    next
}
/^#/ { next }
/^$/ { next }
{
    # A sample line: name{labels} value  or  name value.
    name = $1
    sub(/\{.*/, "", name)
    f = fam(name)
    if (!(f in type)) { printf "metrics_lint: line %d: sample %s has no TYPE\n", NR, name; bad++ }
    if (!(f in help)) { printf "metrics_lint: line %d: sample %s has no HELP\n", NR, name; bad++ }
    if ($NF !~ /^[-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$/ && $NF !~ /^[-+]?Inf$/ && $NF != "NaN") {
        printf "metrics_lint: line %d: non-numeric value %s\n", NR, $NF; bad++
    }

    if (f != name) {
        # Histogram child series: key on family + labels minus the le
        # pair, so each labelled histogram is checked independently.
        labels = $1
        if (match(labels, /\{.*\}/)) { labels = substr(labels, RSTART, RLENGTH) } else labels = ""
        gsub(/le="[^"]*",?/, "", labels)
        gsub(/,\}/, "}", labels); gsub(/\{\}/, "", labels)
        k = f labels
        if (name ~ /_bucket$/) {
            nbuckets[k]++
            if ($1 ~ /le="\+Inf"/) { hasinf[k] = 1; infval[k] = $NF }
        }
        if (name ~ /_sum$/)   hassum[k] = 1
        if (name ~ /_count$/) { hascount[k] = 1; countval[k] = $NF }
    }
}
END {
    for (k in nbuckets) {
        if (!(k in hasinf))   { printf "metrics_lint: histogram %s has no +Inf bucket\n", k; bad++ }
        if (!(k in hassum))   { printf "metrics_lint: histogram %s has no _sum\n", k; bad++ }
        if (!(k in hascount)) { printf "metrics_lint: histogram %s has no _count\n", k; bad++ }
        if ((k in hasinf) && (k in hascount) && infval[k] != countval[k]) {
            printf "metrics_lint: histogram %s: +Inf bucket %s != _count %s\n", k, infval[k], countval[k]; bad++
        }
    }
    if (bad) { printf "metrics_lint: %d exposition-format error(s)\n", bad; exit 1 }
}' "$dump"

# --- 2. engine.Stats coverage -----------------------------------------------
# Parse the exported field names of engine.Stats straight from the
# source, so the check tracks the struct without a hand-kept list.
fields=$(awk '
/^type Stats struct/ { instruct = 1; next }
instruct && /^}/ { exit }
instruct && /^\t[A-Z]/ {
    line = $0
    sub(/\/\/.*/, "", line)          # strip trailing comment
    sub(/\t/, "", line)
    n = split(line, parts, /,?[ \t]+/)
    for (i = 1; i < n; i++)          # last part is the type
        if (parts[i] ~ /^[A-Z]/) print parts[i]
    # single "Name Type" declarations: the loop above already printed
    # the name and stopped before the type.
}' internal/engine/stats.go)

[ -n "$fields" ] || { echo "metrics_lint: failed to parse engine.Stats fields" >&2; exit 1; }

series_for() {
    case "$1" in
        Jobs)              echo redux_engine_jobs_total ;;
        CacheHits)         echo redux_engine_cache_hits_total ;;
        CacheMisses)       echo redux_engine_cache_misses_total ;;
        Batches)           echo redux_engine_batches_total ;;
        Coalesced)         echo redux_engine_coalesced_jobs_total ;;
        CacheEntries)      echo redux_engine_cache_entries ;;
        CacheEvictions)    echo redux_engine_cache_evictions_total ;;
        Recalibrations)    echo redux_engine_recalibrations_total ;;
        SchemeSwitches)    echo redux_engine_scheme_switches_total ;;
        SimplifiedBatches) echo redux_engine_simplified_batches_total ;;
        SimplifyFallbacks) echo redux_engine_simplify_fallbacks_total ;;
        SegsComputed)      echo redux_engine_segments_computed_total ;;
        SegsReused)        echo redux_engine_segments_reused_total ;;
        SessionOpens)        echo redux_engine_session_opens_total ;;
        SessionJobs)         echo redux_engine_session_jobs_total ;;
        SessionSegsComputed) echo redux_engine_session_segments_computed_total ;;
        SessionSegsReused)   echo redux_engine_session_segments_reused_total ;;
        Schemes)           echo redux_engine_scheme_jobs_total ;;
        BatchOccupancy)    echo redux_engine_batch_occupancy_total ;;
        Stages)            echo redux_engine_stage_latency_seconds ;;
        Tenants)           echo redux_engine_tenant_jobs_total ;;
        *)                 echo "" ;;
    esac
}

missing=""
for f in $fields; do
    s=$(series_for "$f")
    if [ -z "$s" ]; then
        echo "metrics_lint: engine.Stats.$f has no series mapping — update metrics_lint.sh and internal/metrics" >&2
        missing="$missing $f"
        continue
    fi
    if ! grep -q "^# TYPE $s " "$dump"; then
        echo "metrics_lint: engine.Stats.$f: series $s not declared in $dump" >&2
        missing="$missing $f"
    fi
done

if [ -n "$missing" ]; then
    echo "metrics_lint: FAIL: unscraped engine.Stats fields:$missing" >&2
    exit 1
fi

echo "metrics_lint: OK ($(grep -c '^# TYPE ' "$dump") families, all engine.Stats fields covered)"
