#!/bin/sh
# Runs the engine throughput benchmarks and writes BENCH_engine.json so the
# repository's performance trajectory is recorded run over run.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_engine.json

raw=$(go test -bench 'Engine|Scheme' -benchmem -run '^$' -benchtime 1s . )
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    iters[n] = $2; ns[n] = $3; bytes[n] = $5; allocs[n] = $7; names[n] = name
    n++
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' > "$out"

echo "wrote $out"
