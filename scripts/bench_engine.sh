#!/bin/sh
# Runs the engine throughput benchmarks and writes BENCH_engine.json so the
# repository's performance trajectory is recorded run over run.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_engine.json

raw=$(go test -bench 'Engine|Scheme|Remote|Gateway|Drift|Simplify|Session|Tenant' -benchmem -run '^$' -benchtime 1s . )
echo "$raw"

# Per-kernel microbenchmarks (reduction package): every scheme's RunInto,
# pooled and cold, dense and sparse — so the normalized regression gate in
# bench_compare.sh covers each kernel individually, not just the engine
# aggregate. Shorter benchtime: 20+ sub-benchmarks, each already stable at
# a few hundred iterations.
rawk=$(go test -bench 'Kernel' -benchmem -run '^$' -benchtime 300ms ./internal/reduction/ )
echo "$rawk"
raw=$(printf '%s\n%s' "$raw" "$rawk")

# Parse benchmark lines by unit, not by column position, so custom
# metrics (e.g. BenchmarkRemoteZipf's jobs/batch) don't shift the
# standard fields.
echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    names[n] = name; iters[n] = $2
    ns[n] = ""; bytes[n] = ""; allocs[n] = ""; jpb[n] = ""; rpct[n] = ""; rjobs[n] = ""; ipct[n] = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns[n] = $i
        else if ($(i+1) == "B/op") bytes[n] = $i
        else if ($(i+1) == "allocs/op") allocs[n] = $i
        else if ($(i+1) == "jobs/batch") jpb[n] = $i
        else if ($(i+1) == "recovery%") rpct[n] = $i
        else if ($(i+1) == "recovery-jobs") rjobs[n] = $i
        else if ($(i+1) == "isolation%") ipct[n] = $i
    }
    n++
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            names[i], iters[i], ns[i], bytes[i], allocs[i]
        if (jpb[i] != "") printf ", \"jobs_per_batch\": %s", jpb[i]
        if (rpct[i] != "") printf ", \"recovery_p95_pct\": %s", rpct[i]
        if (rjobs[i] != "") printf ", \"recovery_jobs\": %s", rjobs[i]
        if (ipct[i] != "") printf ", \"isolation_p95_pct\": %s", ipct[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' > "$out"

echo "wrote $out"
