#!/bin/sh
# End-to-end load test of the network serving subsystem: boots reduxd on a
# loopback port, drives LOADTEST_JOBS (default 2000) Zipf-skewed jobs
# through the pooled client via `reduxserve -remote -json`, drains the
# server, and checks the machine-readable report — every job must succeed,
# results must verify against the sequential reference, and batch
# coalescing must have engaged across the network hop (coalesced > 0).
#
# Set GATEWAY=N (N >= 1) to test the cluster tier instead: N reduxd
# backends are booted behind a reduxgw gateway and the same stream is
# driven through the gateway — proving pattern-affinity routing keeps
# coalescing alive across the extra hop.
#
# Set SESSIONS=N (N >= 1) to drive N concurrent streaming sessions
# (OPEN_SESSION + SUBMIT_DELTA over workloads.DeltaStream) instead of the
# one-shot Zipf stream: every session's rolling result is shadow-verified
# by the driver against a full recompute of a mirrored loop, and the
# report must show every delta batch served through the session path.
# Sessions are daemon-scoped, so SESSIONS combines with RACE but not
# with GATEWAY.
#
# Set TENANTS=N (N >= 2) to drive the multi-tenant QoS path instead:
# reduxd boots with N tenants at descending weights, the last one behind
# a tight token bucket (rate 200/s, burst 16) plus an in-flight quota of
# 1 (so the BUSY path triggers on concurrency alone, independent of how
# fast the machine drains the bucket — -race builds run several times
# slower), and reduxserve offers each tenant its weight-proportional
# share of the jobs under its own HELLO identity. The report must show every tenant's server-side attribution
# equal to its offered share, and the rate-limited tenant must have drawn
# BUSY rejections that surface in /metrics. Tenants are daemon-scoped
# (the gateway forwards under the default identity), so TENANTS combines
# with RACE but not with GATEWAY or SESSIONS.
#
# Set RACE=1 to build the binaries with the race detector (CI does).
set -eu

cd "$(dirname "$0")/.."

jobs="${LOADTEST_JOBS:-2000}"
clients="${LOADTEST_CLIENTS:-16}"
gateway="${GATEWAY:-0}"
sessions="${SESSIONS:-0}"
tenants="${TENANTS:-0}"
if [ "$sessions" -gt 0 ] && [ "$gateway" -gt 0 ]; then
    echo "loadtest: SESSIONS and GATEWAY are exclusive (the gateway does not forward sessions)" >&2
    exit 2
fi
if [ "$tenants" -gt 0 ] && { [ "$gateway" -gt 0 ] || [ "$sessions" -gt 0 ]; }; then
    echo "loadtest: TENANTS is exclusive with GATEWAY and SESSIONS (tenants are daemon-scoped)" >&2
    exit 2
fi

# The generated tenant config: descending weights, the last tenant capped
# by a tight token bucket plus an in-flight quota of 1 so the BUSY path
# is exercised for real at any machine speed.
tspec=""
tenant_flags=""
if [ "$tenants" -gt 0 ]; then
    i=1
    while [ "$i" -le "$tenants" ]; do
        w=$((tenants - i + 1))
        if [ "$i" -eq "$tenants" ]; then
            tspec="$tspec,capped:$w:200:16:1"
        else
            tspec="$tspec,t$i:$w"
        fi
        i=$((i + 1))
    done
    tspec=${tspec#,}
    tenant_flags="-tenants $tspec"
fi
build_flags=""
[ -n "${RACE:-}" ] && build_flags="-race"

work=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT

go build $build_flags -o "$work/reduxd" ./cmd/reduxd
go build $build_flags -o "$work/reduxserve" ./cmd/reduxserve
[ "$gateway" -gt 0 ] && go build $build_flags -o "$work/reduxgw" ./cmd/reduxgw

# wait_addr LOGFILE PID: scrape "listening on <addr>" from a daemon's log
# (both reduxd and reduxgw print it once their listener is up). The debug
# listener prints its own "debug listening on" line, excluded here and
# scraped by wait_debug below.
wait_addr() {
    log="$1"; pid="$2"; addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(awk '/listening on/ && !/debug/ {print $4; exit}' "$log" 2>/dev/null || true)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "loadtest: $(basename "$log" .log) exited before listening:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "loadtest: $(basename "$log" .log) never reported its address" >&2
        cat "$log" >&2
        exit 1
    fi
}

# wait_debug LOGFILE: scrape "debug listening on <addr>" (printed right
# after the main listener line, so no liveness loop is needed by then).
wait_debug() {
    i=0; dbg=""
    while [ $i -lt 100 ]; do
        dbg=$(awk '/debug listening on/ {print $NF; exit}' "$1" 2>/dev/null || true)
        [ -n "$dbg" ] && return
        sleep 0.1
        i=$((i + 1))
    done
    echo "loadtest: $(basename "$1" .log) never reported its debug address" >&2
    exit 1
}

# Every daemon gets a debug listener and traces every job (-trace-slow
# negative), so the run doubles as the end-to-end check of the
# observability surface: /metrics, /tracez and pprof are curled below.
backend_addrs=""
backend_dbgs=""
n=0
while [ $n -lt "$gateway" ] || { [ "$gateway" -eq 0 ] && [ $n -lt 1 ]; }; do
    "$work/reduxd" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -trace-slow -1ns $tenant_flags > "$work/reduxd$n.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    wait_addr "$work/reduxd$n.log" "$pid"
    wait_debug "$work/reduxd$n.log"
    backend_addrs="$backend_addrs,$addr"
    backend_dbgs="$backend_dbgs $dbg"
    n=$((n + 1))
done
backend_addrs=${backend_addrs#,}

if [ "$gateway" -gt 0 ]; then
    "$work/reduxgw" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -trace-slow -1ns \
        -backends "$backend_addrs" > "$work/reduxgw.log" 2>&1 &
    gw_pid=$!
    pids="$pids $gw_pid"
    wait_addr "$work/reduxgw.log" "$gw_pid"
    wait_debug "$work/reduxgw.log"
    target="$addr"
    front_dbg="$dbg"
    echo "loadtest: reduxgw on $target fronting $gateway backends ($backend_addrs), driving $jobs jobs from $clients clients"
else
    target="$backend_addrs"
    front_dbg="${backend_dbgs# }"
    if [ "$sessions" -gt 0 ]; then
        echo "loadtest: reduxd on $target, streaming $jobs delta batches through $sessions sessions"
    elif [ "$tenants" -gt 0 ]; then
        echo "loadtest: reduxd on $target, driving $jobs jobs from $clients clients as $tenants tenants ($tspec)"
    else
        echo "loadtest: reduxd on $target, driving $jobs jobs from $clients clients"
    fi
fi

stream_flags="-zipf"
[ "$sessions" -gt 0 ] && stream_flags="-sessions $sessions"
[ "$tenants" -gt 0 ] && stream_flags="$tenant_flags"
"$work/reduxserve" -remote "$target" -jobs "$jobs" -clients "$clients" \
    $stream_flags -scale 0.3 -json > "$work/report.json" &
serve_pid=$!

# Mid-run observability: scrape /metrics and take a 1-second CPU profile
# while traffic is flowing (the profile outlives short runs — the daemon
# stays up until the drain below, so the curls can never miss).
curl -fsS "http://$front_dbg/metrics" > "$work/metrics_midrun.txt" \
    || { echo "loadtest: FAIL: mid-run /metrics scrape" >&2; exit 1; }
curl -fsS -o "$work/profile.pb.gz" "http://$front_dbg/debug/pprof/profile?seconds=1" \
    || { echo "loadtest: FAIL: mid-run pprof profile" >&2; exit 1; }
[ -s "$work/profile.pb.gz" ] || { echo "loadtest: FAIL: empty pprof profile" >&2; exit 1; }

wait "$serve_pid" || { echo "loadtest: reduxserve failed" >&2; exit 1; }

# Post-run, pre-drain: the rings are frozen. Lint the full /metrics page
# and check cross-tier trace stitching on the real wire path.
curl -fsS "http://$front_dbg/metrics" > "$work/metrics.txt"
scripts/metrics_lint.sh "$work/metrics.txt"

if [ "$tenants" -gt 0 ]; then
    # The per-tenant series must carry real labeled samples, and the
    # capped tenant's rejections must have reached the exported counter
    # (server busy counts merged into the engine rows).
    grep -q 'redux_engine_tenant_jobs_total{tenant="t1"}' "$work/metrics.txt" \
        || { echo "loadtest: FAIL: per-tenant job series missing from /metrics" >&2; exit 1; }
    grep -Eq 'redux_engine_tenant_busy_total\{tenant="capped"\} [1-9]' "$work/metrics.txt" \
        || { echo "loadtest: FAIL: capped tenant drew no busy rejections in /metrics" >&2; exit 1; }
fi

curl -fsS "http://$front_dbg/tracez" > "$work/tracez.json"
grep -q '"trace_id"' "$work/tracez.json" \
    || { echo "loadtest: FAIL: /tracez has no traces despite -trace-slow -1ns" >&2; exit 1; }

if [ "$gateway" -gt 0 ]; then
    # A recent gateway trace's backend leg must sit in the owning
    # backend's ring under the same forwarded trace ID. Ring adds drop
    # under write contention (TryLock sampling), so try the newest few
    # gateway IDs rather than demanding exactly the newest survived on
    # both tiers.
    for d in $backend_dbgs; do
        curl -fsS "http://$d/tracez" > "$work/tracez-backend-${d##*:}.json"
    done
    found=""
    for tid in $(awk -F'[:,]' '/"trace_id"/ {gsub(/ /, "", $2); print $2}' "$work/tracez.json" | head -10); do
        if grep -q "\"trace_id\": $tid" "$work"/tracez-backend-*.json; then
            found=$tid
            break
        fi
    done
    [ -n "$found" ] || { echo "loadtest: FAIL: none of the gateway's newest traces found on any backend" >&2; exit 1; }
    echo "loadtest: trace $found stitched across gateway and backend tiers"
fi

# Graceful drain, front tier first: TERM each daemon and wait; each
# prints its lifetime stats.
rev=""
for pid in $pids; do rev="$pid $rev"; done
for pid in $rev; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" || { echo "loadtest: daemon $pid exited non-zero" >&2; exit 1; }
done
pids=""
cat "$work"/redux*.log

# Validate the JSON report (pretty-printed, one field per line). In
# session mode the one-shot coalescing check is replaced by the session
# accounting: every delta batch must have been served through a session
# (session_jobs == jobs, so none fell back to one-shot submits), every
# stream must have opened (session_opens == SESSIONS), and the driver's
# shadow full-recompute verification must actually have run.
awk -v jobs="$jobs" -v sessions="$sessions" -v tenants="$tenants" '
function val(line) { gsub(/[^0-9.]/, "", line); return line + 0 }
/"jobs":/          { got_jobs = val($2) }
/"failures":/      { failures = val($2) }
/"verified":/      { verified = ($2 ~ /true/) }
/"coalesced":/     { coalesced = val($2) }
/"session_opens":/ { opens = val($2) }
/"session_jobs":/  { sjobs = val($2) }
/"shadow_checks":/ { shadow = val($2) }
# Tenant rows are the only objects in the report with a "name" field;
# the fields that follow one belong to that tenant until the next.
/"name":/          { gsub(/[", ]/, "", $2); cur = $2 }
/"offered_jobs":/  { offered[cur] = val($2) }
/"server_jobs":/   { served[cur] = val($2) }
/"busy":/          { tbusy[cur] = val($2) }
END {
    if (sessions > 0) {
        printf "loadtest: jobs=%d failures=%d verified=%d session_opens=%d session_jobs=%d shadow_checks=%d\n", \
            got_jobs, failures, verified, opens, sjobs, shadow
    } else {
        printf "loadtest: jobs=%d failures=%d verified=%d coalesced=%d\n", got_jobs, failures, verified, coalesced
    }
    if (got_jobs != jobs) { print "loadtest: FAIL: job count mismatch"; exit 1 }
    if (failures != 0)    { print "loadtest: FAIL: client failures"; exit 1 }
    if (!verified)        { print "loadtest: FAIL: results not verified"; exit 1 }
    if (sessions > 0) {
        if (opens != sessions) { print "loadtest: FAIL: session open count mismatch"; exit 1 }
        if (sjobs != jobs)     { print "loadtest: FAIL: delta batches not all served through sessions"; exit 1 }
        if (shadow <= 0)       { print "loadtest: FAIL: shadow full-recompute verification never ran"; exit 1 }
    } else if (tenants > 0) {
        # Closed-loop offers with BUSY retry mean every tenant completes
        # exactly its weight-proportional share; the server rows must
        # attribute them back without loss or cross-charging.
        nrows = 0; bad = 0
        for (name in offered) {
            nrows++
            printf "loadtest: tenant %s: offered=%d server=%d busy=%d\n", \
                name, offered[name], served[name], tbusy[name]
            if (served[name] != offered[name]) {
                printf "loadtest: FAIL: tenant %s server attribution != offered share\n", name; bad = 1
            }
        }
        if (nrows != tenants)   { print "loadtest: FAIL: tenant row count mismatch"; bad = 1 }
        if (tbusy["capped"] <= 0) { print "loadtest: FAIL: capped tenant drew no busy rejections"; bad = 1 }
        if (bad) exit 1
    } else if (coalesced <= 0) {
        print "loadtest: FAIL: no batch coalescing across the network"; exit 1
    }
}' "$work/report.json"

echo "loadtest: OK"
