#!/bin/sh
# End-to-end load test of the network serving subsystem: boots reduxd on a
# loopback port, drives LOADTEST_JOBS (default 2000) Zipf-skewed jobs
# through the pooled client via `reduxserve -remote -json`, drains the
# server, and checks the machine-readable report — every job must succeed,
# results must verify against the sequential reference, and batch
# coalescing must have engaged across the network hop (coalesced > 0).
#
# Set RACE=1 to build both binaries with the race detector (CI does).
set -eu

cd "$(dirname "$0")/.."

jobs="${LOADTEST_JOBS:-2000}"
clients="${LOADTEST_CLIENTS:-16}"
build_flags=""
[ -n "${RACE:-}" ] && build_flags="-race"

work=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

go build $build_flags -o "$work/reduxd" ./cmd/reduxd
go build $build_flags -o "$work/reduxserve" ./cmd/reduxserve

"$work/reduxd" -addr 127.0.0.1:0 > "$work/reduxd.log" 2>&1 &
server_pid=$!

# reduxd prints "reduxd: listening on <addr> ..." once the listener is up.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(awk '/listening on/ {print $4; exit}' "$work/reduxd.log" 2>/dev/null || true)
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "loadtest: reduxd exited before listening:" >&2
        cat "$work/reduxd.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "loadtest: reduxd never reported its address" >&2
    cat "$work/reduxd.log" >&2
    exit 1
fi
echo "loadtest: reduxd on $addr, driving $jobs jobs from $clients clients"

"$work/reduxserve" -remote "$addr" -jobs "$jobs" -clients "$clients" \
    -zipf -scale 0.3 -json > "$work/report.json"

# Graceful drain: TERM, then wait; the server prints its lifetime stats.
kill -TERM "$server_pid"
wait "$server_pid" || { echo "loadtest: reduxd exited non-zero" >&2; exit 1; }
server_pid=""
cat "$work/reduxd.log"

# Validate the JSON report (pretty-printed, one field per line).
awk -v jobs="$jobs" '
function val(line) { gsub(/[^0-9.]/, "", line); return line + 0 }
/"jobs":/      { got_jobs = val($2) }
/"failures":/  { failures = val($2) }
/"verified":/  { verified = ($2 ~ /true/) }
/"coalesced":/ { coalesced = val($2) }
END {
    printf "loadtest: jobs=%d failures=%d verified=%d coalesced=%d\n", got_jobs, failures, verified, coalesced
    if (got_jobs != jobs) { print "loadtest: FAIL: job count mismatch"; exit 1 }
    if (failures != 0)    { print "loadtest: FAIL: client failures"; exit 1 }
    if (!verified)        { print "loadtest: FAIL: results not verified"; exit 1 }
    if (coalesced <= 0)   { print "loadtest: FAIL: no batch coalescing across the network"; exit 1 }
}' "$work/report.json"

echo "loadtest: OK"
