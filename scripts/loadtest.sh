#!/bin/sh
# End-to-end load test of the network serving subsystem: boots reduxd on a
# loopback port, drives LOADTEST_JOBS (default 2000) Zipf-skewed jobs
# through the pooled client via `reduxserve -remote -json`, drains the
# server, and checks the machine-readable report — every job must succeed,
# results must verify against the sequential reference, and batch
# coalescing must have engaged across the network hop (coalesced > 0).
#
# Set GATEWAY=N (N >= 1) to test the cluster tier instead: N reduxd
# backends are booted behind a reduxgw gateway and the same stream is
# driven through the gateway — proving pattern-affinity routing keeps
# coalescing alive across the extra hop.
#
# Set RACE=1 to build the binaries with the race detector (CI does).
set -eu

cd "$(dirname "$0")/.."

jobs="${LOADTEST_JOBS:-2000}"
clients="${LOADTEST_CLIENTS:-16}"
gateway="${GATEWAY:-0}"
build_flags=""
[ -n "${RACE:-}" ] && build_flags="-race"

work=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT

go build $build_flags -o "$work/reduxd" ./cmd/reduxd
go build $build_flags -o "$work/reduxserve" ./cmd/reduxserve
[ "$gateway" -gt 0 ] && go build $build_flags -o "$work/reduxgw" ./cmd/reduxgw

# wait_addr LOGFILE PID: scrape "listening on <addr>" from a daemon's log
# (both reduxd and reduxgw print it once their listener is up).
wait_addr() {
    log="$1"; pid="$2"; addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(awk '/listening on/ {print $4; exit}' "$log" 2>/dev/null || true)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "loadtest: $(basename "$log" .log) exited before listening:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "loadtest: $(basename "$log" .log) never reported its address" >&2
        cat "$log" >&2
        exit 1
    fi
}

backend_addrs=""
n=0
while [ $n -lt "$gateway" ] || { [ "$gateway" -eq 0 ] && [ $n -lt 1 ]; }; do
    "$work/reduxd" -addr 127.0.0.1:0 > "$work/reduxd$n.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    wait_addr "$work/reduxd$n.log" "$pid"
    backend_addrs="$backend_addrs,$addr"
    n=$((n + 1))
done
backend_addrs=${backend_addrs#,}

if [ "$gateway" -gt 0 ]; then
    "$work/reduxgw" -addr 127.0.0.1:0 -backends "$backend_addrs" > "$work/reduxgw.log" 2>&1 &
    gw_pid=$!
    pids="$pids $gw_pid"
    wait_addr "$work/reduxgw.log" "$gw_pid"
    target="$addr"
    echo "loadtest: reduxgw on $target fronting $gateway backends ($backend_addrs), driving $jobs jobs from $clients clients"
else
    target="$backend_addrs"
    echo "loadtest: reduxd on $target, driving $jobs jobs from $clients clients"
fi

"$work/reduxserve" -remote "$target" -jobs "$jobs" -clients "$clients" \
    -zipf -scale 0.3 -json > "$work/report.json"

# Graceful drain, front tier first: TERM each daemon and wait; each
# prints its lifetime stats.
rev=""
for pid in $pids; do rev="$pid $rev"; done
for pid in $rev; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" || { echo "loadtest: daemon $pid exited non-zero" >&2; exit 1; }
done
pids=""
cat "$work"/redux*.log

# Validate the JSON report (pretty-printed, one field per line).
awk -v jobs="$jobs" '
function val(line) { gsub(/[^0-9.]/, "", line); return line + 0 }
/"jobs":/      { got_jobs = val($2) }
/"failures":/  { failures = val($2) }
/"verified":/  { verified = ($2 ~ /true/) }
/"coalesced":/ { coalesced = val($2) }
END {
    printf "loadtest: jobs=%d failures=%d verified=%d coalesced=%d\n", got_jobs, failures, verified, coalesced
    if (got_jobs != jobs) { print "loadtest: FAIL: job count mismatch"; exit 1 }
    if (failures != 0)    { print "loadtest: FAIL: client failures"; exit 1 }
    if (!verified)        { print "loadtest: FAIL: results not verified"; exit 1 }
    if (coalesced <= 0)   { print "loadtest: FAIL: no batch coalescing across the network"; exit 1 }
}' "$work/report.json"

echo "loadtest: OK"
