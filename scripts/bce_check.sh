#!/bin/sh
# Codegen gate for the optimized reduction kernels: compiles the package
# with the compiler's bounds-check diagnostic (-d=ssa/check_bce) and fails
# when a bounds check appears in a gated file on a line that is not
# explicitly intentional. The kernels are written so the prove pass
# discharges every check except the data-dependent gathers (w[idx]
# with a runtime subscript — the in-range proof lives in trace.Loop
# validation, outside the compiler's view); an unmarked check reappearing
# means a refactor broke a BCE idiom and the hot loop silently slowed down.
#
# Gated files: the accumulation kernels (kernels.go) and the segment
# combine tree (segtree.go) the simplified execution plan folds partial
# sums through.
#
# A check is intentional when either
#   - its source line carries a //bce: marker (//bce:gather for
#     data-dependent element accesses, //bce:slice for block sub-slicing), or
#   - scripts/bce_allow.txt lists its "file:line" (for checks the marker
#     cannot sit on, e.g. multi-line statements) with a trailing comment
#     saying why.
#
# usage: bce_check.sh
#
# Go >= 1.21 replays compiler diagnostics from the build cache, so repeat
# runs stay fast; the script fails loudly if the expected diagnostics are
# missing entirely for any gated file (a cache or toolchain anomaly would
# otherwise read as a false pass, since the gathers guarantee at least
# one check per file).
set -eu

cd "$(dirname "$0")/.."
gates="internal/reduction/kernels.go internal/reduction/segtree.go"
allow=scripts/bce_allow.txt

if ! diag=$(go build -gcflags='-d=ssa/check_bce' ./internal/reduction/ 2>&1); then
    echo "$diag"
    echo "bce_check: go build failed" >&2
    exit 2
fi

echo "$diag" | awk -v gates="$gates" -v allow="$allow" '
BEGIN {
    # Lines of each gated file carrying a //bce: marker are intentional.
    ngates = split(gates, gate, " ")
    for (g = 1; g <= ngates; g++) {
        f = gate[g]
        isGate[f] = 1
        n = 0
        while ((getline line < f) > 0) {
            n++
            if (line ~ /\/\/bce:/) marked[f ":" n] = 1
        }
        close(f)
        if (n == 0) { print "bce_check: cannot read " f; exit 2 }
    }
    # Allowlisted "file:line" entries ("#" comments and blanks ignored).
    while ((getline line < allow) > 0) {
        sub(/[ \t]*#.*/, "", line)
        gsub(/[ \t]/, "", line)
        if (line != "") allowed[line] = 1
    }
    close(allow)
}
/ Found Is(Slice)?InBounds$/ {
    split($1, loc, ":")
    file = loc[1]; lineno = loc[2]
    if (!(file in isGate)) next
    total[file]++
    if (marked[file ":" lineno] || (file ":" lineno in allowed)) { ok[file]++; next }
    bad++
    print "bce_check: UNMARKED bounds check at " file ":" lineno ":" loc[3]
}
END {
    for (g = 1; g <= ngates; g++) {
        f = gate[g]
        if (total[f] == 0) {
            print "bce_check: no bounds-check diagnostics for " f " at all;"
            print "bce_check: the gather checks make that impossible — stale build"
            print "bce_check: cache or toolchain change. Try: go clean -cache"
            exit 2
        }
        printf "bce_check: %d bounds check(s) in %s, %d intentional, %d unmarked\n", total[f], f, ok[f], total[f] - ok[f]
    }
    if (bad) {
        print "bce_check: FAIL: restore the BCE idiom (see kernels.go header),"
        print "bce_check: or mark the line //bce:gather if the check is truly"
        print "bce_check: data-dependent (or add file:line to " allow ")."
        exit 1
    }
}'
