#!/bin/sh
# Compares a candidate BENCH_engine.json against a baseline and fails when
# any benchmark's ns_per_op regressed by more than BENCH_TOLERANCE_PCT
# (default 25). Benchmarks present in only one file are reported but not
# gated, so adding or renaming benchmarks never breaks the gate.
#
# Every gate below runs even after an earlier one fails; the script
# reports all failing gates for the run and exits nonzero if any failed,
# so one broken floor never hides another.
#
# usage: bench_compare.sh [baseline.json [candidate.json]]
#
# With no baseline argument the committed HEAD version of BENCH_engine.json
# is used; if HEAD has none the comparison is skipped (first run).
#
# Absolute ns/op is only comparable on the machine that recorded the
# baseline. On different hardware (CI runners), set
# BENCH_NORMALIZE=<benchmark name> to divide every ns_per_op by that
# benchmark's ns_per_op from the same file before comparing: machine speed
# cancels to first order and the gate checks *relative* regressions (e.g.
# the engine getting slower relative to the cold per-call path).
set -eu

cd "$(dirname "$0")/.."
tol="${BENCH_TOLERANCE_PCT:-25}"
norm="${BENCH_NORMALIZE:-}"
cand="${2:-BENCH_engine.json}"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

if [ "${1:-}" ]; then
    base="$1"
else
    base="$tmpdir/baseline.json"
    if ! git show HEAD:BENCH_engine.json > "$base" 2>/dev/null; then
        echo "bench_compare: no committed baseline (HEAD:BENCH_engine.json); skipping"
        exit 0
    fi
fi

[ -f "$cand" ] || { echo "bench_compare: candidate $cand not found" >&2; exit 2; }

# Extract "name ns_per_op" pairs from the one-benchmark-per-line JSON that
# bench_engine.sh writes, optionally normalized to the reference
# benchmark's ns_per_op from the same file. A record without an ns_per_op
# value (a benchmark that errored out, or a hand-edited baseline) is
# reported by name and skipped rather than silently dropped — a missing
# key must never surface later as an inscrutable awk failure.
extract() {
    awk -F'"' -v norm="$norm" '
    /"name":/ {
        name = $4
        if (match($0, /"ns_per_op": *[0-9]+/)) {
            v = substr($0, RSTART, RLENGTH)
            gsub(/[^0-9]/, "", v)
            names[++n] = name; vals[n] = v
            if (name == norm) ref = v
        } else {
            printf "bench_compare: %s in %s has no ns_per_op value; skipping it\n", name, FILENAME > "/dev/stderr"
        }
    }
    END {
        if (norm != "" && ref + 0 <= 0) {
            printf "bench_compare: normalization benchmark %s has no ns_per_op in %s\n", norm, FILENAME > "/dev/stderr"
            exit 2
        }
        for (i = 1; i <= n; i++)
            print names[i], (norm == "" ? vals[i] : vals[i] / ref)
    }' "$1"
}

extract "$base" > "$tmpdir/base"
extract "$cand" > "$tmpdir/cand"

# failed accumulates the names of failing gates so every floor is
# checked and reported in one run.
failed=""

unit="ns/op"
[ -n "$norm" ] && unit="x $norm"

awk -v tol="$tol" -v unit="$unit" '
NR == FNR { base[$1] = $2; next }
{
    seen[$1] = 1
    if (!($1 in base)) { printf "NEW        %-45s %12.6g %s\n", $1, $2, unit; next }
    if (base[$1] <= 0) next
    pct = ($2 / base[$1] - 1) * 100
    flag = "ok"
    if (pct > tol) { flag = "REGRESSED"; bad++ }
    printf "%-10s %-45s %12.6g -> %12.6g %s  (%+.1f%%)\n", flag, $1, base[$1], $2, unit, pct
}
END {
    for (n in base) if (!(n in seen)) printf "DROPPED    %-45s\n", n
    if (bad) {
        printf "bench_compare: %d benchmark(s) regressed more than %d%%\n", bad, tol
        exit 1
    }
}' "$tmpdir/base" "$tmpdir/cand" && \
    echo "bench_compare: throughput within ${tol}% of baseline (${unit})" || \
    failed="$failed throughput"

# Kernel-coverage check: the candidate must carry the per-scheme kernel
# microbenchmarks (Kernel/<scheme>/...) for all five schemes, so a bench
# suite edit cannot silently drop a kernel from the regression gate. The
# check is skipped only when the baseline predates the kernel suite (no
# Kernel entries at all) AND the candidate has none either — i.e. on
# historical comparisons, not on fresh runs.
awk -v cand="$cand" '
FILENAME == cand && /"name": "Kernel\// {
    split($0, q, "\"")
    split(q[4], parts, "/")
    if (!(parts[2] in seen)) nseen++
    seen[parts[2]] = 1
}
END {
    split("rep ll sel lw hash", want, " ")
    missing = ""
    for (i in want) if (!(want[i] in seen)) missing = missing " " want[i]
    if (nseen == 0 && missing != "") {
        printf "bench_compare: kernel coverage skipped: no Kernel benchmarks in %s (pre-kernel-suite run)\n", cand
        exit 0
    }
    if (missing != "") {
        printf "bench_compare: FAIL: kernel microbenchmarks missing for:%s\n", missing
        exit 1
    }
    print "bench_compare: kernel coverage: all five schemes benchmarked"
}' "$cand" || failed="$failed kernel-coverage"

# Pattern-affinity gate: the gateway's measured fusion occupancy
# (GatewayZipf jobs_per_batch) must hold at least AFFINITY_MIN_PCT
# (default 80) percent of the single-daemon figure (RemoteZipf). This is
# the mechanical check behind the claim that rendezvous routing
# preserves batch coalescing at tier scale; it runs whenever the
# candidate carries both metrics, and names the missing metric when it
# cannot.
awk -v minpct="${AFFINITY_MIN_PCT:-80}" -v cand="$cand" '
/"name": "GatewayZipf"/ && match($0, /"jobs_per_batch": *[0-9.]+/) {
    gw = substr($0, RSTART, RLENGTH); gsub(/[^0-9.]/, "", gw)
}
/"name": "RemoteZipf"/ && match($0, /"jobs_per_batch": *[0-9.]+/) {
    remote = substr($0, RSTART, RLENGTH); gsub(/[^0-9.]/, "", remote)
}
END {
    if (gw + 0 <= 0) {
        printf "bench_compare: affinity gate skipped: GatewayZipf jobs_per_batch missing from %s\n", cand
        exit 0
    }
    if (remote + 0 <= 0) {
        printf "bench_compare: affinity gate skipped: RemoteZipf jobs_per_batch missing from %s\n", cand
        exit 0
    }
    pct = 100 * gw / remote
    printf "bench_compare: gateway fusion occupancy %.2f vs single-node %.2f jobs/batch (%.0f%%, floor %d%%)\n", gw, remote, pct, minpct
    if (pct < minpct) {
        print "bench_compare: FAIL: pattern-affinity routing lost too much batch fusion"
        exit 1
    }
}' "$cand" || failed="$failed affinity"

# Drift-recovery gate: after the DriftRecovery phase shift, the measured
# p95 must have returned to within RECOVERY_MAX_PCT (default 125) percent
# of an independently measured steady state, within RECOVERY_MAX_JOBS
# (default 1024) post-shift jobs — the mechanical check behind the
# recalibration subsystem's claim that a stale decision cannot degrade a
# drifted workload indefinitely (the measured figure is ~16 jobs; the
# ceiling leaves room for runner noise, not for a regression to
# thousands). Runs whenever the candidate carries the metric; a baseline
# that has it while the fresh run does not is called out by name (the
# benchmark was dropped or its run was too short to measure a
# trajectory).
awk -v maxpct="${RECOVERY_MAX_PCT:-125}" -v maxjobs="${RECOVERY_MAX_JOBS:-1024}" -v cand="$cand" -v base="$base" '
# field(line, key) returns the numeric value of "key": <num>, or "".
# The key name itself may contain digits (p95), so the prefix is
# stripped explicitly rather than squeezed out character-wise.
function field(line, key,    s) {
    if (!match(line, "\"" key "\": *[0-9.]+")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub("^\"" key "\": *", "", s)
    return s
}
/"name": "DriftRecovery"/ {
    if (FILENAME == cand) {
        pct = field($0, "recovery_p95_pct")
        jobs = field($0, "recovery_jobs")
    }
    if (FILENAME == base && /"recovery_p95_pct"/) inBase = 1
}
END {
    if (pct + 0 <= 0) {
        if (inBase) {
            printf "bench_compare: recovery gate skipped: DriftRecovery recovery_p95_pct in baseline %s but missing from %s\n", base, cand
        } else {
            printf "bench_compare: recovery gate skipped: DriftRecovery recovery_p95_pct missing from %s\n", cand
        }
        exit 0
    }
    printf "bench_compare: drift recovery: post-shift p95 back to %.1f%% of steady state after %.0f jobs (ceilings %d%%, %d jobs)\n", pct, jobs, maxpct, maxjobs
    if (pct + 0 > maxpct + 0) {
        print "bench_compare: FAIL: drifted workload did not recover to steady-state latency"
        exit 1
    }
    if (jobs + 0 > maxjobs + 0) {
        print "bench_compare: FAIL: recovery took more post-shift jobs than the ceiling allows"
        exit 1
    }
}' "$base" "$cand" || failed="$failed drift-recovery"

# Simplification gate: the shared-subrange overlap benchmark
# (SimplifyOverlap/{direct,simplified}-occN) must show at least
# SIMPLIFY_MIN_SPEEDUP (default 1.5) per-job speedup of the simplified
# plan over direct per-member execution at every recorded occupancy —
# the mechanical check behind the claim that shared-segment partial-sum
# reuse wins at batch occupancy >= 4. Both figures come from the same
# file and machine, so no normalization is needed; the gate runs
# whenever the candidate carries a direct/simplified pair and names the
# lone half when it carries only one.
awk -v minx="${SIMPLIFY_MIN_SPEEDUP:-1.5}" -v cand="$cand" '
/"name": "SimplifyOverlap\// && match($0, /"ns_per_op": *[0-9]+/) {
    v = substr($0, RSTART, RLENGTH); gsub(/[^0-9]/, "", v)
    split($0, q, "\"")
    split(q[4], parts, "/")
    if (parts[2] ~ /^direct-/)          { sub(/^direct-/, "", parts[2]); direct[parts[2]] = v }
    else if (parts[2] ~ /^simplified-/) { sub(/^simplified-/, "", parts[2]); simp[parts[2]] = v }
}
END {
    npairs = 0
    for (occ in direct) {
        if (!(occ in simp)) {
            printf "bench_compare: FAIL: SimplifyOverlap/direct-%s has no simplified counterpart in %s\n", occ, cand
            bad++
            continue
        }
        npairs++
        x = direct[occ] / simp[occ]
        printf "bench_compare: simplification %s: %.2fx per-job speedup over direct (floor %.2fx)\n", occ, x, minx
        if (x < minx) {
            printf "bench_compare: FAIL: simplified plan too slow at %s\n", occ
            bad++
        }
    }
    for (occ in simp) if (!(occ in direct)) {
        printf "bench_compare: FAIL: SimplifyOverlap/simplified-%s has no direct counterpart in %s\n", occ, cand
        bad++
    }
    if (npairs == 0 && !bad) {
        printf "bench_compare: simplification gate skipped: no SimplifyOverlap benchmarks in %s\n", cand
        exit 0
    }
    if (bad) exit 1
}' "$cand" || failed="$failed simplification"

# Session gate: incremental re-reduction (SessionDelta/delta) must beat
# re-submitting the whole mutated loop every step (SessionDelta/resubmit)
# by at least SESSION_MIN_SPEEDUP (default 2.0) — the mechanical check
# behind the streaming-session subsystem's claim that touched-segment
# recompute wins over full re-reduction for small update batches. Both
# figures come from the same file and machine, so no normalization is
# needed; the gate runs whenever the candidate carries the pair and
# names the lone half when it carries only one.
awk -v minx="${SESSION_MIN_SPEEDUP:-2.0}" -v cand="$cand" '
/"name": "SessionDelta\// && match($0, /"ns_per_op": *[0-9]+/) {
    v = substr($0, RSTART, RLENGTH); gsub(/[^0-9]/, "", v)
    split($0, q, "\"")
    split(q[4], parts, "/")
    if (parts[2] == "delta") delta = v
    else if (parts[2] == "resubmit") resubmit = v
}
END {
    if (delta + 0 <= 0 && resubmit + 0 <= 0) {
        printf "bench_compare: session gate skipped: no SessionDelta benchmarks in %s\n", cand
        exit 0
    }
    if (delta + 0 <= 0 || resubmit + 0 <= 0) {
        printf "bench_compare: FAIL: SessionDelta has only one of delta/resubmit in %s\n", cand
        exit 1
    }
    x = resubmit / delta
    printf "bench_compare: session delta path %.2fx over full resubmit (floor %.2fx)\n", x, minx
    if (x < minx) {
        print "bench_compare: FAIL: incremental re-reduction too slow vs full resubmit"
        exit 1
    }
}' "$cand" || failed="$failed session"

# Tenant-isolation gate: under a 10x hot-tenant flood, the background
# tenant's p95 (TenantIsolation isolation_p95_pct) must stay within
# TENANT_ISOLATION_MAX_PCT (default 150) percent of its solo baseline —
# the mechanical check behind the weighted-fair scheduler's claim that a
# noisy neighbor's backlog cannot queue ahead of another tenant's jobs
# (a shared FIFO fails this by an order of magnitude). Runs whenever the
# candidate carries the metric; a baseline that has it while the fresh
# run does not is called out by name (the benchmark was dropped or ran
# too few iterations to measure a percentile).
awk -v maxpct="${TENANT_ISOLATION_MAX_PCT:-150}" -v cand="$cand" -v base="$base" '
function field(line, key,    s) {
    if (!match(line, "\"" key "\": *[0-9.]+")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub("^\"" key "\": *", "", s)
    return s
}
/"name": "TenantIsolation"/ {
    if (FILENAME == cand) pct = field($0, "isolation_p95_pct")
    if (FILENAME == base && /"isolation_p95_pct"/) inBase = 1
}
END {
    if (pct + 0 <= 0) {
        if (inBase) {
            printf "bench_compare: isolation gate skipped: TenantIsolation isolation_p95_pct in baseline %s but missing from %s\n", base, cand
        } else {
            printf "bench_compare: isolation gate skipped: TenantIsolation isolation_p95_pct missing from %s\n", cand
        }
        exit 0
    }
    printf "bench_compare: tenant isolation: background p95 at %.1f%% of solo baseline under 10x flood (ceiling %d%%)\n", pct, maxpct
    if (pct + 0 > maxpct + 0) {
        print "bench_compare: FAIL: hot tenant degraded the background tenant past the isolation budget"
        exit 1
    }
}' "$base" "$cand" || failed="$failed tenant-isolation"

# Observability-overhead gate: the pooled steady-state hot path
# (SchemeRunColdVsPooled/pooled) must stay within OBS_MAX_OVERHEAD_PCT
# (default 3) percent of the committed baseline — a much tighter ceiling
# than the general throughput tolerance. This is the budget for the
# stage-latency instrumentation: histograms and timelines must never
# leak measurable cost into the reduction hot path. The gate reuses the
# extracted (possibly normalized) pairs, so it respects BENCH_NORMALIZE
# on foreign hardware.
awk -v maxpct="${OBS_MAX_OVERHEAD_PCT:-3}" '
NR == FNR { if ($1 == "SchemeRunColdVsPooled/pooled") base = $2; next }
$1 == "SchemeRunColdVsPooled/pooled" { cand = $2 }
END {
    if (base + 0 <= 0 || cand + 0 <= 0) {
        print "bench_compare: obs-overhead gate skipped: SchemeRunColdVsPooled/pooled missing from baseline or candidate"
        exit 0
    }
    pct = (cand / base - 1) * 100
    printf "bench_compare: observability overhead on pooled hot path: %+.2f%% (ceiling %s%%)\n", pct, maxpct
    if (pct > maxpct + 0) {
        print "bench_compare: FAIL: instrumentation cost on the pooled hot path exceeds the budget"
        exit 1
    }
}' "$tmpdir/base" "$tmpdir/cand" || failed="$failed obs-overhead"

if [ -n "$failed" ]; then
    echo "bench_compare: FAILED gates:$failed"
    exit 1
fi
echo "bench_compare: all gates passed"
