#!/bin/sh
# Compares a candidate BENCH_engine.json against a baseline and fails when
# any benchmark's ns_per_op regressed by more than BENCH_TOLERANCE_PCT
# (default 25). Benchmarks present in only one file are reported but not
# gated, so adding or renaming benchmarks never breaks the gate.
#
# usage: bench_compare.sh [baseline.json [candidate.json]]
#
# With no baseline argument the committed HEAD version of BENCH_engine.json
# is used; if HEAD has none the comparison is skipped (first run).
#
# Absolute ns/op is only comparable on the machine that recorded the
# baseline. On different hardware (CI runners), set
# BENCH_NORMALIZE=<benchmark name> to divide every ns_per_op by that
# benchmark's ns_per_op from the same file before comparing: machine speed
# cancels to first order and the gate checks *relative* regressions (e.g.
# the engine getting slower relative to the cold per-call path).
set -eu

cd "$(dirname "$0")/.."
tol="${BENCH_TOLERANCE_PCT:-25}"
norm="${BENCH_NORMALIZE:-}"
cand="${2:-BENCH_engine.json}"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

if [ "${1:-}" ]; then
    base="$1"
else
    base="$tmpdir/baseline.json"
    if ! git show HEAD:BENCH_engine.json > "$base" 2>/dev/null; then
        echo "bench_compare: no committed baseline (HEAD:BENCH_engine.json); skipping"
        exit 0
    fi
fi

[ -f "$cand" ] || { echo "bench_compare: candidate $cand not found" >&2; exit 2; }

# Extract "name ns_per_op" pairs from the one-benchmark-per-line JSON that
# bench_engine.sh writes, optionally normalized to the reference
# benchmark's ns_per_op from the same file.
extract() {
    awk -F'"' -v norm="$norm" '
    /"name":/ {
        name = $4
        if (match($0, /"ns_per_op": *[0-9]+/)) {
            v = substr($0, RSTART, RLENGTH)
            gsub(/[^0-9]/, "", v)
            names[++n] = name; vals[n] = v
            if (name == norm) ref = v
        }
    }
    END {
        if (norm != "" && ref + 0 <= 0) {
            printf "bench_compare: normalization benchmark %s not in %s\n", norm, FILENAME > "/dev/stderr"
            exit 2
        }
        for (i = 1; i <= n; i++)
            print names[i], (norm == "" ? vals[i] : vals[i] / ref)
    }' "$1"
}

extract "$base" > "$tmpdir/base"
extract "$cand" > "$tmpdir/cand"

unit="ns/op"
[ -n "$norm" ] && unit="x $norm"

awk -v tol="$tol" -v unit="$unit" '
NR == FNR { base[$1] = $2; next }
{
    seen[$1] = 1
    if (!($1 in base)) { printf "NEW        %-45s %12.6g %s\n", $1, $2, unit; next }
    if (base[$1] <= 0) next
    pct = ($2 / base[$1] - 1) * 100
    flag = "ok"
    if (pct > tol) { flag = "REGRESSED"; bad++ }
    printf "%-10s %-45s %12.6g -> %12.6g %s  (%+.1f%%)\n", flag, $1, base[$1], $2, unit, pct
}
END {
    for (n in base) if (!(n in seen)) printf "DROPPED    %-45s\n", n
    if (bad) {
        printf "bench_compare: %d benchmark(s) regressed more than %d%%\n", bad, tol
        exit 1
    }
}' "$tmpdir/base" "$tmpdir/cand"

echo "bench_compare: throughput within ${tol}% of baseline (${unit})"

# Pattern-affinity gate: the gateway's measured fusion occupancy
# (GatewayZipf jobs_per_batch) must hold at least AFFINITY_MIN_PCT
# (default 80) percent of the single-daemon figure (RemoteZipf). This is
# the mechanical check behind the claim that rendezvous routing
# preserves batch coalescing at tier scale; it runs whenever the
# candidate carries both metrics.
awk -v minpct="${AFFINITY_MIN_PCT:-80}" '
/"name": "GatewayZipf"/ && match($0, /"jobs_per_batch": *[0-9.]+/) {
    gw = substr($0, RSTART, RLENGTH); gsub(/[^0-9.]/, "", gw)
}
/"name": "RemoteZipf"/ && match($0, /"jobs_per_batch": *[0-9.]+/) {
    remote = substr($0, RSTART, RLENGTH); gsub(/[^0-9.]/, "", remote)
}
END {
    if (gw + 0 <= 0 || remote + 0 <= 0) {
        print "bench_compare: affinity gate skipped (jobs_per_batch not in both GatewayZipf and RemoteZipf)"
        exit 0
    }
    pct = 100 * gw / remote
    printf "bench_compare: gateway fusion occupancy %.2f vs single-node %.2f jobs/batch (%.0f%%, floor %d%%)\n", gw, remote, pct, minpct
    if (pct < minpct) {
        print "bench_compare: FAIL: pattern-affinity routing lost too much batch fusion"
        exit 1
    }
}' "$cand"
