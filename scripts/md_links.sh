#!/bin/sh
# Checks every relative markdown link in README.md and docs/*.md: the
# target file must exist (anchors are stripped; external http/mailto
# links are skipped). Fails listing each broken link, so renaming or
# moving a doc cannot silently orphan references — the docs half of
# `make docs-check`.
set -eu

cd "$(dirname "$0")/.."

bad=0
for md in README.md docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Extract inline link targets: [text](target). One per line, tolerant
    # of several links per line.
    targets=$(grep -o '](([^)]*)\|]([^)]*)' "$md" | sed 's/^](//; s/)$//' || true)
    for target in $targets; do
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "md_links: $md links to missing file: $target" >&2
            bad=$((bad + 1))
        fi
    done
done

if [ "$bad" -gt 0 ]; then
    echo "md_links: $bad broken link(s)" >&2
    exit 1
fi
echo "md_links: all relative links resolve"
