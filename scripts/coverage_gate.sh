#!/bin/sh
# Runs go test -coverprofile across ./internal/... and fails when total
# statement coverage drops below the committed floor — a ratchet, not a
# target: when a PR raises the total comfortably above the floor, raise
# the floor here to lock the gain in (keep ~1.5% headroom so timing-
# dependent paths — drain races, reconnect loops — don't flake the gate).
#
# usage: coverage_gate.sh            (floor from the committed default)
#        COVERAGE_FLOOR=85 coverage_gate.sh
#
# The -short suite is measured (what CI runs); the profile is left in
# cover.out for `go tool cover -html=cover.out` spelunking.
set -eu

cd "$(dirname "$0")/.."
floor="${COVERAGE_FLOOR:-85.2}"

# Keep go test's output: a test failure must surface its diagnostics,
# not just a bare nonzero exit from set -e.
log=$(mktemp)
trap 'rm -f "$log"' EXIT
if ! go test -short -coverprofile=cover.out ./internal/... > "$log" 2>&1; then
    cat "$log"
    echo "coverage_gate: tests failed; coverage not evaluated" >&2
    exit 1
fi
total=$(go tool cover -func=cover.out | awk '/^total:/ { gsub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverage_gate: no total in cover.out" >&2
    exit 2
fi

awk -v total="$total" -v floor="$floor" 'BEGIN {
    printf "coverage_gate: %.1f%% of statements covered (floor %.1f%%)\n", total, floor
    if (total + 0 < floor + 0) {
        print "coverage_gate: FAIL: coverage dropped below the committed floor"
        exit 1
    }
}'
