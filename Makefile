GO ?= go

.PHONY: build test test-short race bench bench-smoke fmt vet ci serve loadtest loadtest-gateway fuzz cover docs-check codegen portability

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then echo "needs gofmt:"; echo "$$unformatted"; exit 1; fi

vet:
	$(GO) vet ./...

# bench runs the engine throughput benchmarks, records the perf
# trajectory in BENCH_engine.json (one snapshot per invocation), and gates
# the new numbers against the committed baseline (>25% ns/op regression
# fails; tune with BENCH_TOLERANCE_PCT).
bench:
	./scripts/bench_engine.sh
	./scripts/bench_compare.sh

bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# serve runs the reduxd network server in the foreground (ctrl-C drains
# gracefully and prints lifetime stats).
serve:
	$(GO) run ./cmd/reduxd

# loadtest boots reduxd on loopback, streams 2000 Zipf jobs through the
# pooled client (reduxserve -remote -json) and checks the report: all
# jobs verified, batch coalescing engaged across the network hop.
loadtest:
	./scripts/loadtest.sh

# loadtest-gateway is the same stream driven through the cluster tier:
# two reduxd backends behind a reduxgw gateway, checking that pattern-
# affinity routing keeps coalescing alive across the extra hop.
loadtest-gateway:
	GATEWAY=2 ./scripts/loadtest.sh

# docs-check validates the documentation suite: every relative markdown
# link under README.md and docs/ resolves to a real file/anchorless
# target, and every exported identifier in the network-facing packages
# carries a doc comment (CI runs this as the docs job).
docs-check:
	$(GO) run ./cmd/doccheck ./internal/wire ./internal/client ./internal/server ./internal/cluster ./internal/obs ./internal/metrics
	./scripts/md_links.sh

# fuzz runs the wire-protocol decoder fuzz target for 10s under the race
# detector, starting from the checked-in seed corpus
# (internal/wire/testdata/fuzz): corrupt or truncated frames must error,
# never panic.
fuzz:
	$(GO) test -race -run '^FuzzDecodeFrame$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 10s ./internal/wire

# cover measures -short statement coverage over ./internal/... and fails
# if the total drops below the floor committed in scripts/coverage_gate.sh.
cover:
	./scripts/coverage_gate.sh

# codegen compiles the reduction package with the compiler's bounds-check
# diagnostic and fails when an unmarked check appears in the optimized
# kernels (kernels.go) — the CI codegen job, runnable locally.
codegen:
	./scripts/bce_check.sh

# portability cross-compiles for linux/arm64 and linux/amd64 at the v3
# (AVX2) microarchitecture level, then runs the kernel-bearing packages'
# tests shuffled twice — the CI portability job, runnable locally.
portability:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=amd64 GOAMD64=v3 $(GO) build ./...
	$(GO) test -shuffle=on -count=2 -short ./internal/reduction/ ./internal/engine/

ci: fmt vet build codegen portability race bench-smoke fuzz cover loadtest loadtest-gateway docs-check
