GO ?= go

.PHONY: build test test-short race bench bench-smoke fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then echo "needs gofmt:"; echo "$$unformatted"; exit 1; fi

vet:
	$(GO) vet ./...

# bench runs the engine throughput benchmarks, records the perf
# trajectory in BENCH_engine.json (one snapshot per invocation), and gates
# the new numbers against the committed baseline (>25% ns/op regression
# fails; tune with BENCH_TOLERANCE_PCT).
bench:
	./scripts/bench_engine.sh
	./scripts/bench_compare.sh

bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

ci: fmt vet build race bench-smoke
