package obs

import "time"

// Stage names one leg of a job's path through the stack. The engine owns
// queue-wait/inspect/execute; the serving layer owns decode, intern,
// merge (the fan-out residual) and encode; the gateway adds route,
// backend-wait and retry-backoff legs on top.
type Stage uint8

// The stage taxonomy, in pipeline order.
const (
	// StageDecode is wire-frame decode into the connection's scratch loop.
	StageDecode Stage = iota
	// StageIntern is canonicalization through the server's intern table.
	StageIntern
	// StageQueueWait is the time a job's batch sat in the engine's
	// submission queue before a worker picked it up.
	StageQueueWait
	// StageInspect is pattern characterization plus scheme selection,
	// paid once per cold fingerprint (zero on a decision-cache hit).
	StageInspect
	// StageExecute is the reduction execution itself, batch merge
	// included.
	StageExecute
	// StageMerge is the serving layer's fan-out residual: everything
	// between dispatch and encode not attributed to an engine stage
	// (result hand-off, destination copies, waiter scheduling).
	StageMerge
	// StageEncode is RESULT wire encoding.
	StageEncode
	// StageRoute is gateway backend selection plus submission legs.
	StageRoute
	// StageBackendWait is the gateway's wait on backend RESULT frames,
	// summed across failover attempts.
	StageBackendWait
	// StageRetryWait is gateway backoff sleeps between BUSY retries.
	StageRetryWait

	numStages
)

var stageNames = [numStages]string{
	StageDecode:      "decode",
	StageIntern:      "intern",
	StageQueueWait:   "queue_wait",
	StageInspect:     "inspect",
	StageExecute:     "execute",
	StageMerge:       "merge",
	StageEncode:      "encode",
	StageRoute:       "route",
	StageBackendWait: "backend_wait",
	StageRetryWait:   "retry_backoff",
}

// String returns the stage's wire/metrics label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// NumStages reports how many stages the taxonomy defines.
func NumStages() int { return int(numStages) }

// Timeline accumulates one job's per-stage durations as it moves through
// the stack. It is carried by a single goroutine at a time (the
// connection's read loop hands it to the dispatch waiter), so it needs
// no internal locking; a nil *Timeline is a valid no-op receiver so
// untraced call sites pay nothing.
type Timeline struct {
	// TraceID stitches this job's timelines across tiers; the gateway
	// forwards it to the owning backend on the SUBMIT frame.
	TraceID uint64
	// Retries counts same-backend BUSY retries (gateway only).
	Retries int
	// Failovers counts backend failovers (gateway only).
	Failovers int

	ns [numStages]int64
}

// Add accumulates d into stage s. Negative durations are dropped; a nil
// receiver is a no-op.
func (t *Timeline) Add(s Stage, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.ns[s] += int64(d)
}

// Get returns the accumulated duration of stage s (zero on nil).
func (t *Timeline) Get(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns[s])
}

// TotalNs sums every stage's accumulated nanoseconds.
func (t *Timeline) TotalNs() int64 {
	if t == nil {
		return 0
	}
	var total int64
	for _, v := range t.ns {
		total += v
	}
	return total
}

// Trace freezes the timeline into a JobTrace for the slow-job ring,
// keeping only the stages that actually accumulated time.
func (t *Timeline) Trace(total time.Duration) JobTrace {
	jt := JobTrace{
		TraceID:   t.TraceID,
		TotalNs:   int64(total),
		Retries:   t.Retries,
		Failovers: t.Failovers,
	}
	n := 0
	for _, v := range t.ns {
		if v > 0 {
			n++
		}
	}
	jt.Stages = make([]StageNs, 0, n)
	for s, v := range t.ns {
		if v > 0 {
			jt.Stages = append(jt.Stages, StageNs{Stage: Stage(s).String(), Ns: v})
		}
	}
	return jt
}

// Reset zeroes the timeline for reuse (sync.Pool recycling on the
// serving hot path).
func (t *Timeline) Reset() {
	*t = Timeline{}
}

// StageSet is a fixed array of histograms, one per stage — the
// aggregation target Timelines drain into. The zero value is ready;
// observation is lock-free (see Histogram), so one StageSet can be
// shared by every connection of a server, or embedded per engine worker
// shard and merged on read.
type StageSet struct {
	hists [numStages]Histogram
}

// Observe records d into stage s's histogram.
func (ss *StageSet) Observe(s Stage, d time.Duration) {
	ss.hists[s].Observe(d)
}

// ObserveTimeline records every stage a timeline accumulated time in.
// A nil timeline is a no-op.
func (ss *StageSet) ObserveTimeline(t *Timeline) {
	if t == nil {
		return
	}
	for s, v := range t.ns {
		if v > 0 {
			ss.hists[s].ObserveNs(uint64(v))
		}
	}
}

// Snapshot returns a summary per stage that has at least one
// observation, in pipeline order.
func (ss *StageSet) Snapshot() []StageSummary {
	var out []StageSummary
	for s := range ss.hists {
		snap := ss.hists[s].Snapshot()
		if snap.Count != 0 {
			out = append(out, StageSummary{Name: Stage(s).String(), Snap: snap})
		}
	}
	return out
}

// StageSummary pairs a stage label with its histogram snapshot; it is
// the element engine.Stats and the STATS wire tail carry.
type StageSummary struct {
	// Name is the stage label (Stage.String of a known stage, but
	// summaries decoded off the wire may carry labels this build does
	// not know — they merge by name regardless).
	Name string
	// Snap is the stage's histogram snapshot.
	Snap Snapshot
}

// MergeStageSummaries merges src into dst by stage name (order of first
// appearance preserved) and returns the merged slice.
func MergeStageSummaries(dst, src []StageSummary) []StageSummary {
	for _, s := range src {
		found := false
		for i := range dst {
			if dst[i].Name == s.Name {
				dst[i].Snap.Merge(s.Snap)
				found = true
				break
			}
		}
		if !found {
			cp := s
			cp.Snap.Buckets = append([]uint64(nil), s.Snap.Buckets...)
			dst = append(dst, cp)
		}
	}
	return dst
}
