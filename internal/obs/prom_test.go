package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricWriterBasics(t *testing.T) {
	var sb strings.Builder
	m := NewMetricWriter(&sb)
	m.Family("x_total", "counter", "a counter\nwith newline")
	m.Sample("x_total", 3)
	m.Family("y", "gauge", `back\slash`)
	m.Sample("y", 1.5, "shard", `a"b`)
	m.MapCounter("z_total", "per-key", "key", map[string]uint64{"b": 2, "a": 1})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP x_total a counter\\nwith newline\n",
		"# TYPE x_total counter\n",
		"x_total 3\n",
		`y{shard="a\"b"} 1.5` + "\n",
		"# TYPE z_total counter\n",
		`z_total{key="a"} 1` + "\n",
		`z_total{key="b"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted map keys: a before b.
	if strings.Index(out, `key="a"`) > strings.Index(out, `key="b"`) {
		t.Errorf("map keys not sorted:\n%s", out)
	}
}

func TestMetricWriterHistogram(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	var sb strings.Builder
	m := NewMetricWriter(&sb)
	m.StageSet("stage_seconds", "per-stage latency", []StageSummary{
		{Name: "execute", Snap: h.Snapshot()},
	})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram\n",
		`stage_seconds_bucket{stage="execute",le="+Inf"} 2`,
		`stage_seconds_count{stage="execute"} 2`,
		`stage_seconds_sum{stage="execute"} 0.000100005`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the first emitted bucket holds 1, and
	// every later one holds 2.
	if !strings.Contains(out, `le="5e-09"} 1`) {
		t.Errorf("missing first bucket:\n%s", out)
	}
	// Empty snapshot still emits a closed histogram.
	sb.Reset()
	m = NewMetricWriter(&sb)
	m.Histogram("empty_seconds", Snapshot{})
	out = sb.String()
	if !strings.Contains(out, `empty_seconds_bucket{le="+Inf"} 0`) ||
		!strings.Contains(out, "empty_seconds_count 0") {
		t.Errorf("empty histogram malformed:\n%s", out)
	}
}

func TestMetricWriterStickyError(t *testing.T) {
	m := NewMetricWriter(failWriter{})
	m.Family("a", "counter", "x")
	m.Sample("a", 1)
	if m.Err() == nil {
		t.Fatal("expected sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestDebugMux(t *testing.T) {
	ring := NewTraceRing(4)
	ring.Add(JobTrace{TraceID: 7, TotalNs: 123,
		Stages: []StageNs{{Stage: "execute", Ns: 100}}})
	metrics := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mw := NewMetricWriter(w)
		mw.Family("up", "gauge", "always 1")
		mw.Sample("up", 1)
	})
	mux := NewDebugMux("testd", metrics, ring.Snapshot)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok testd\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up 1") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	code, body := get("/tracez")
	if code != 200 {
		t.Fatalf("tracez: %d", code)
	}
	var traces []JobTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("tracez not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].TraceID != 7 || traces[0].Stages[0].Stage != "execute" {
		t.Fatalf("tracez content wrong: %+v", traces)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("pprof cmdline: %d", code)
	}

	// A mux with no trace source serves an empty list.
	mux2 := NewDebugMux("d", metrics, nil)
	rec := httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil-source tracez = %q, want []", rec.Body.String())
	}
}
