package obs

import (
	"sync"
	"testing"
)

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(3)
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatalf("fresh ring not empty")
	}
	for i := uint64(1); i <= 5; i++ {
		r.Add(JobTrace{TraceID: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []uint64{5, 4, 3} // newest first, oldest evicted
	for i, w := range want {
		if got[i].TraceID != w {
			t.Fatalf("snapshot[%d] = %d, want %d (full: %+v)", i, got[i].TraceID, w, got)
		}
	}
}

func TestTraceRingMinSize(t *testing.T) {
	r := NewTraceRing(0)
	r.Add(JobTrace{TraceID: 1})
	r.Add(JobTrace{TraceID: 2})
	if got := r.Snapshot(); len(got) != 1 || got[0].TraceID != 2 {
		t.Fatalf("min-size ring wrong: %+v", got)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(JobTrace{TraceID: uint64(w*1000 + i)})
				r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	// Contended adds may drop (TryLock), so the concurrent phase only
	// bounds the length; an uncontended fill must then land every trace.
	if n := r.Len(); n > 16 {
		t.Fatalf("len = %d, want <= 16", n)
	}
	for i := 0; i < 16; i++ {
		if !r.Add(JobTrace{TraceID: uint64(9000 + i)}) {
			t.Fatalf("uncontended Add %d dropped", i)
		}
	}
	if r.Len() != 16 {
		t.Fatalf("len = %d after sequential fill, want 16", r.Len())
	}
}

func TestTraceRingAddDropsWhenContended(t *testing.T) {
	r := NewTraceRing(4)
	r.mu.Lock()
	if r.Add(JobTrace{TraceID: 1}) {
		t.Fatal("Add succeeded while the ring lock was held")
	}
	r.mu.Unlock()
	if !r.Add(JobTrace{TraceID: 2}) {
		t.Fatal("Add dropped on a free ring")
	}
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].TraceID != 2 {
		t.Fatalf("snapshot = %+v, want only trace 2", snap)
	}
}
