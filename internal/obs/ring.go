package obs

import "sync"

// StageNs is one stage entry of a recorded job trace.
type StageNs struct {
	// Stage is the stage label.
	Stage string `json:"stage"`
	// Ns is the accumulated time in nanoseconds.
	Ns int64 `json:"ns"`
}

// JobTrace is a frozen job timeline as served by /tracez.
type JobTrace struct {
	// TraceID stitches the trace across tiers.
	TraceID uint64 `json:"trace_id"`
	// TotalNs is the job's end-to-end latency as seen by the recording
	// tier, in nanoseconds.
	TotalNs int64 `json:"total_ns"`
	// Retries counts same-backend BUSY retries (gateway tier).
	Retries int `json:"retries,omitempty"`
	// Failovers counts backend failovers (gateway tier).
	Failovers int `json:"failovers,omitempty"`
	// Stages lists the stages that accumulated time, pipeline order.
	Stages []StageNs `json:"stages"`
}

// TraceRing is a fixed-size ring of recent slow-job traces. Writers
// overwrite the oldest entry; memory is bounded at construction and
// never grows. Add is a TryLock: when writers collide — a saturated
// server where every job crosses the slow threshold — the losing trace
// is dropped rather than serializing job goroutines on the ring. The
// ring is a bounded sample of recent slow jobs either way, so dropping
// under contention changes nothing it promises.
type TraceRing struct {
	mu   sync.Mutex
	buf  []JobTrace
	next int
	n    int
}

// NewTraceRing returns a ring holding up to size traces (minimum 1).
func NewTraceRing(size int) *TraceRing {
	if size < 1 {
		size = 1
	}
	return &TraceRing{buf: make([]JobTrace, size)}
}

// Add records a trace, evicting the oldest when full. When the ring is
// contended the trace is dropped (see the type comment); Add reports
// whether the trace was kept.
func (r *TraceRing) Add(t JobTrace) bool {
	if !r.mu.TryLock() {
		return false
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
	return true
}

// Snapshot returns the recorded traces, newest first.
func (r *TraceRing) Snapshot() []JobTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
