// Package obs is the observability core shared by the engine, the
// server tiers and the load drivers: log-bucketed latency histograms
// cheap enough for the hot path (atomic bucket increments, no locks, no
// allocation per observation), per-job stage timelines that attribute a
// job's latency to pipeline legs (queue wait, inspection, execution,
// encoding, gateway routing…), a fixed-size ring of slow-job traces, and
// the Prometheus text writer plus debug HTTP mux that expose all of it.
//
// The package is a leaf: it imports nothing from the repository, so the
// engine, wire, server and cluster layers can all depend on it without
// cycles.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values 0..15 ns get exact buckets, larger
// values get histSub log-linear sub-buckets per power of two (relative
// error <= 1/histSub within an octave). 64-bit values span octaves
// 4..63, so the bucket count is fixed and small enough to embed.
const (
	histExact   = 16
	histSubBits = 2
	histSub     = 1 << histSubBits

	// NumBuckets is the fixed bucket count covering the full uint64
	// nanosecond range.
	NumBuckets = histExact + (64-histExact/4)*histSub
)

// bucketIndex maps a nanosecond value to its histogram bucket.
func bucketIndex(v uint64) int {
	if v < histExact {
		return int(v)
	}
	o := bits.Len64(v) - 1 // 4..63
	sub := (v >> (uint(o) - histSubBits)) & (histSub - 1)
	return histExact + (o-4)*histSub + int(sub)
}

// BucketBound returns the largest nanosecond value bucket i holds
// (inclusive). The final bucket's bound saturates at MaxUint64.
func BucketBound(i int) uint64 {
	if i < histExact {
		return uint64(i)
	}
	o := uint(4 + (i-histExact)/histSub)
	sub := uint64((i - histExact) % histSub)
	base := uint64(1) << o
	step := uint64(1) << (o - histSubBits)
	return base + step*(sub+1) - 1 // wraps to MaxUint64 for the last bucket
}

// Histogram is a concurrency-safe log-bucketed latency histogram. The
// zero value is ready to use; every observation is a handful of atomic
// adds (no locks, no allocation), so it can sit directly on a serving
// hot path. Readers take Snapshot; a snapshot racing live observations
// may be off by the in-flight handful, which is the usual monitoring
// trade.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveNs(uint64(d))
}

// ObserveNs records one nanosecond value.
func (h *Histogram) ObserveNs(ns uint64) {
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot copies the histogram's current state, trimming trailing empty
// buckets so an idle histogram costs nothing to ship or encode.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	last := -1
	var buckets [NumBuckets]uint64
	for i := range h.buckets {
		if buckets[i] = h.buckets[i].Load(); buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram, the unit that crosses
// package and wire boundaries: it merges with other snapshots (gateway
// aggregation), extracts quantiles, and encodes compactly because
// trailing empty buckets are trimmed.
type Snapshot struct {
	// Count is the number of observations.
	Count uint64
	// SumNs is the sum of all observed values in nanoseconds.
	SumNs uint64
	// MaxNs is the exact largest observed value in nanoseconds.
	MaxNs uint64
	// Buckets holds per-bucket counts (geometry per BucketBound), with
	// trailing zero buckets trimmed; shorter and longer snapshots merge.
	Buckets []uint64
}

// Merge adds o into s, growing the bucket slice to the longer of the
// two — snapshots trimmed at different lengths (or recorded by a future
// revision with more buckets) merge without loss.
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	if len(o.Buckets) > len(s.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, v := range o.Buckets {
		s.Buckets[i] += v
	}
}

// Quantile returns the q-th quantile (0 < q <= 1) in nanoseconds: the
// upper bound of the bucket holding the q*Count-th observation, clamped
// to the exact observed maximum so p99 of a uniform sample never exceeds
// the slowest real event. Returns 0 when the snapshot is empty.
func (s Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, v := range s.Buckets {
		cum += v
		if cum >= rank {
			b := BucketBound(i)
			if b > s.MaxNs {
				b = s.MaxNs
			}
			return b
		}
	}
	return s.MaxNs
}

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (s Snapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
