package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux assembles the debug endpoint both daemons serve behind
// -debug-addr:
//
//	/metrics      — Prometheus text exposition (caller-supplied handler)
//	/healthz      — liveness: 200 "ok <component>\n"
//	/tracez       — recent slow-job traces as JSON, newest first
//	/debug/pprof  — the standard Go profiling handlers
//
// traces may be nil, in which case /tracez serves an empty list. The
// pprof handlers are registered on this private mux rather than
// http.DefaultServeMux so the debug surface only exists when the
// operator asks for it.
func NewDebugMux(component string, metrics http.Handler, traces func() []JobTrace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok " + component + "\n"))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		var ts []JobTrace
		if traces != nil {
			ts = traces()
		}
		if ts == nil {
			ts = []JobTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ts)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
