package obs

import (
	"testing"
	"time"
)

func TestStageStrings(t *testing.T) {
	for s := Stage(0); s < Stage(NumStages()); s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatalf("out-of-range stage should be unknown")
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Add(StageDecode, time.Millisecond) // must not panic
	if tl.Get(StageDecode) != 0 || tl.TotalNs() != 0 {
		t.Fatalf("nil timeline should read zero")
	}
}

func TestTimelineAccumulateAndTrace(t *testing.T) {
	tl := &Timeline{TraceID: 42, Retries: 1, Failovers: 2}
	tl.Add(StageDecode, 10*time.Microsecond)
	tl.Add(StageDecode, 5*time.Microsecond)
	tl.Add(StageExecute, time.Millisecond)
	tl.Add(StageEncode, -time.Second) // dropped
	if got := tl.Get(StageDecode); got != 15*time.Microsecond {
		t.Fatalf("decode = %v, want 15µs", got)
	}
	if tl.TotalNs() != int64(15*time.Microsecond+time.Millisecond) {
		t.Fatalf("total = %d", tl.TotalNs())
	}
	jt := tl.Trace(2 * time.Millisecond)
	if jt.TraceID != 42 || jt.TotalNs != int64(2*time.Millisecond) ||
		jt.Retries != 1 || jt.Failovers != 2 {
		t.Fatalf("trace header wrong: %+v", jt)
	}
	if len(jt.Stages) != 2 || jt.Stages[0].Stage != "decode" || jt.Stages[1].Stage != "execute" {
		t.Fatalf("trace stages wrong: %+v", jt.Stages)
	}
}

func TestStageSetSnapshotAndObserveTimeline(t *testing.T) {
	var ss StageSet
	ss.Observe(StageQueueWait, 100*time.Nanosecond)
	tl := &Timeline{}
	tl.Add(StageQueueWait, 200*time.Nanosecond)
	tl.Add(StageExecute, time.Microsecond)
	ss.ObserveTimeline(tl)
	ss.ObserveTimeline(nil) // no-op

	sums := ss.Snapshot()
	if len(sums) != 2 {
		t.Fatalf("want 2 stage summaries, got %d: %+v", len(sums), sums)
	}
	if sums[0].Name != "queue_wait" || sums[0].Snap.Count != 2 {
		t.Fatalf("queue_wait summary wrong: %+v", sums[0])
	}
	if sums[1].Name != "execute" || sums[1].Snap.Count != 1 {
		t.Fatalf("execute summary wrong: %+v", sums[1])
	}
}

func TestMergeStageSummaries(t *testing.T) {
	var a, b StageSet
	a.Observe(StageExecute, time.Microsecond)
	a.Observe(StageQueueWait, time.Microsecond)
	b.Observe(StageExecute, 2*time.Microsecond)
	b.Observe(StageInspect, time.Microsecond)

	merged := MergeStageSummaries(a.Snapshot(), b.Snapshot())
	byName := map[string]Snapshot{}
	for _, s := range merged {
		byName[s.Name] = s.Snap
	}
	if byName["execute"].Count != 2 {
		t.Fatalf("execute count = %d, want 2", byName["execute"].Count)
	}
	if byName["queue_wait"].Count != 1 || byName["inspect"].Count != 1 {
		t.Fatalf("disjoint stages lost: %+v", byName)
	}

	// Merging into nil clones buckets: mutating the result must not
	// corrupt the source.
	src := b.Snapshot()
	cloned := MergeStageSummaries(nil, src)
	if len(cloned[0].Snap.Buckets) > 0 {
		cloned[0].Snap.Buckets[0] += 99
		if len(src[0].Snap.Buckets) > 0 && src[0].Snap.Buckets[0] == cloned[0].Snap.Buckets[0] {
			t.Fatalf("merge aliased source buckets")
		}
	}
}

func TestNewTraceIDUniqueNonzero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatalf("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %d", id)
		}
		seen[id] = true
	}
}
