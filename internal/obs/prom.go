package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricWriter emits Prometheus text exposition format (version 0.0.4).
// It enforces the ordering the format requires — # HELP and # TYPE for a
// family before any of its samples — by making the family declaration an
// explicit call, and it sticks errors so callers can write a whole page
// and check once at the end.
type MetricWriter struct {
	w   io.Writer
	err error
}

// NewMetricWriter returns a writer emitting to w.
func NewMetricWriter(w io.Writer) *MetricWriter {
	return &MetricWriter{w: w}
}

// Err returns the first write error encountered, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// Family declares a metric family: typ is "counter", "gauge" or
// "histogram". Always call it, even when no samples follow — a family
// that disappears when idle breaks dashboards and the metrics lint.
func (m *MetricWriter) Family(name, typ, help string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample. labels is a flat key, value, key, value...
// list (values are escaped); pass none for an unlabelled sample.
func (m *MetricWriter) Sample(name string, v float64, labels ...string) {
	m.printf("%s%s %s\n", name, labelString(labels), formatValue(v))
}

// Histogram emits a full Prometheus histogram (cumulative _bucket series
// with le in seconds, plus _sum and _count) from a snapshot. Bucket
// bounds come from the snapshot's trimmed bucket list; an explicit +Inf
// bucket always closes the series.
func (m *MetricWriter) Histogram(name string, s Snapshot, labels ...string) {
	var cum uint64
	for i, v := range s.Buckets {
		cum += v
		if v == 0 && i != len(s.Buckets)-1 {
			continue // skip empty interior buckets; cumulative values don't change
		}
		le := strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
		m.printf("%s_bucket%s %d\n", name, labelString(append(labels, "le", le)), cum)
	}
	m.printf("%s_bucket%s %d\n", name, labelString(append(labels, "le", "+Inf")), s.Count)
	m.printf("%s_sum%s %s\n", name, labelString(labels), formatValue(float64(s.SumNs)/1e9))
	m.printf("%s_count%s %d\n", name, labelString(labels), s.Count)
}

// StageSet emits one histogram family with a stage label per summary.
func (m *MetricWriter) StageSet(name, help string, sums []StageSummary) {
	m.Family(name, "histogram", help)
	for _, s := range sums {
		m.Histogram(name, s.Snap, "stage", s.Name)
	}
}

// MapCounter emits one counter family with one sample per map key,
// keys sorted for deterministic output.
func (m *MetricWriter) MapCounter(name, help, label string, vals map[string]uint64) {
	m.Family(name, "counter", help)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m.Sample(name, float64(vals[k]), label, k)
	}
}

func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
