package obs

import (
	"sync/atomic"
	"time"
)

// Trace IDs only need to be unique within a debugging window, not
// cryptographically random: a process-local counter mixed through a
// splitmix64 finalizer gives well-spread nonzero IDs with one atomic add
// per job and no allocation. Zero is reserved to mean "untraced" on the
// wire (the SUBMIT tail is omitted), so NewTraceID never returns it.

var traceCounter atomic.Uint64

var traceBase = uint64(time.Now().UnixNano())

// NewTraceID returns a new nonzero trace ID.
func NewTraceID() uint64 {
	x := traceBase + traceCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}
