package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotonic(t *testing.T) {
	// Exact region.
	for v := uint64(0); v < histExact; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Monotonic over a sweep of magnitudes.
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 19, 20, 31, 32, 63, 64, 100,
		1000, 1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, math.MaxUint64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, NumBuckets)
		}
		prev = idx
	}
	if got := bucketIndex(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", got, NumBuckets-1)
	}
}

func TestBucketBoundContainsValue(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 15, 16, 23, 31, 32, 48, 63, 64, 1000,
		12345, 1 << 30, 1<<50 + 3, math.MaxUint64 / 2, math.MaxUint64} {
		i := bucketIndex(v)
		if b := BucketBound(i); v > b {
			t.Fatalf("value %d exceeds its bucket bound %d (bucket %d)", v, b, i)
		}
		if i > 0 {
			if lower := BucketBound(i - 1); v <= lower {
				t.Fatalf("value %d within previous bucket's bound %d (bucket %d)", v, lower, i)
			}
		}
	}
	if BucketBound(NumBuckets-1) != math.MaxUint64 {
		t.Fatalf("final bucket bound = %d, want MaxUint64", BucketBound(NumBuckets-1))
	}
	// Relative error within an octave is bounded by 1/histSub.
	v := uint64(1_000_000)
	b := BucketBound(bucketIndex(v))
	if float64(b-v)/float64(v) > 1.0/histSub+1e-9 {
		t.Fatalf("bucket bound %d too far above %d", b, v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.MaxNs != 1_000_000 {
		t.Fatalf("max = %d, want 1000000", s.MaxNs)
	}
	checks := []struct {
		q    float64
		want float64 // true value in ns
	}{{0.50, 500_000}, {0.95, 950_000}, {0.99, 990_000}, {1.0, 1_000_000}}
	for _, c := range checks {
		got := float64(s.Quantile(c.q))
		if got < c.want*0.95 || got > c.want*1.30 {
			t.Errorf("q%.2f = %.0f, want within [0.95, 1.30]x of %.0f", c.q, got, c.want)
		}
	}
	if s.Quantile(1.0) > s.MaxNs {
		t.Fatalf("quantile exceeds exact max")
	}
	if (Snapshot{}).Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot quantile should be 0")
	}
	if got := s.MeanNs(); got < 400_000 || got > 700_000 {
		t.Fatalf("mean = %f, want ~500500", got)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != 0 || len(s.Buckets) != 1 {
		t.Fatalf("negative observation not clamped to zero: %+v", s)
	}
}

func TestSnapshotMergeMismatchedBuckets(t *testing.T) {
	var small, large Histogram
	small.ObserveNs(3) // trims to 4 buckets
	large.ObserveNs(1_000_000)
	a, b := small.Snapshot(), large.Snapshot()
	if len(a.Buckets) >= len(b.Buckets) {
		t.Fatalf("test setup: want mismatched lengths, got %d vs %d", len(a.Buckets), len(b.Buckets))
	}

	short := a
	short.Merge(b) // grow
	if short.Count != 2 || short.MaxNs != 1_000_000 || short.SumNs != 1_000_003 {
		t.Fatalf("short.Merge(long) header wrong: %+v", short)
	}
	if len(short.Buckets) != len(b.Buckets) {
		t.Fatalf("short.Merge(long) buckets = %d, want %d", len(short.Buckets), len(b.Buckets))
	}

	long := large.Snapshot()
	long.Merge(small.Snapshot()) // no grow
	if long.Count != 2 || long.Buckets[3] != 1 {
		t.Fatalf("long.Merge(short) lost the small observation: %+v", long)
	}

	// Merging into an empty snapshot yields a copy.
	var empty Snapshot
	empty.Merge(b)
	if empty.Count != 1 || len(empty.Buckets) != len(b.Buckets) {
		t.Fatalf("empty.Merge broken: %+v", empty)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNs(uint64(w*per + i))
			}
		}(w)
	}
	// Snapshot concurrently with writers to catch races under -race.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			h.Snapshot()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.MaxNs != workers*per-1 {
		t.Fatalf("max = %d, want %d", s.MaxNs, workers*per-1)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}
