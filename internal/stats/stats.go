// Package stats provides small numeric helpers used throughout the
// SmartApps reproduction: means, histograms, and speedup/time-breakdown
// bookkeeping that mirrors how the paper reports its results (the paper
// reports averages across applications using the harmonic mean, and
// Figure 6 reports per-application execution time broken into Init, Loop
// and Merge phases).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs. It returns 0 for an empty
// slice and panics if any value is not strictly positive, since a harmonic
// mean of speedups is only meaningful for positive values.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: harmonic mean of non-positive value %g", x))
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArithmeticMean returns the arithmetic mean of xs, or 0 for an empty slice.
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs, or 0 for an empty slice.
// All values must be strictly positive.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %g", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Histogram is an integer-valued frequency count keyed by an integer bin.
// The paper's CH metric ("a histogram which shows the number of elements
// referenced by a certain number of iterations") is an instance of this.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the count of bin by one.
func (h *Histogram) Add(bin int) {
	h.counts[bin]++
	h.total++
}

// AddN increments the count of bin by n.
func (h *Histogram) AddN(bin, n int) {
	h.counts[bin] += n
	h.total += n
}

// Count returns the count recorded for bin.
func (h *Histogram) Count(bin int) int { return h.counts[bin] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Bins returns the sorted list of non-empty bins.
func (h *Histogram) Bins() []int {
	bins := make([]int, 0, len(h.counts))
	for b := range h.counts {
		bins = append(bins, b)
	}
	sort.Ints(bins)
	return bins
}

// Mean returns the observation-weighted mean bin value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for b, c := range h.counts {
		sum += float64(b) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest bin b such that at least q (0..1) of the
// observations fall in bins <= b.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	acc := 0
	for _, b := range h.Bins() {
		acc += h.counts[b]
		if acc >= target {
			return b
		}
	}
	bins := h.Bins()
	return bins[len(bins)-1]
}

// Breakdown records execution time split into the three phases the paper
// uses in Figure 6: initialization of private storage (Init), the parallel
// loop body (Loop), and merging partial results or flushing caches (Merge).
type Breakdown struct {
	Init  float64
	Loop  float64
	Merge float64
}

// Total returns the summed phase time.
func (b Breakdown) Total() float64 { return b.Init + b.Loop + b.Merge }

// Normalized returns the breakdown scaled so that reference maps to 1.0,
// matching Figure 6's bars which are normalized to the Sw scheme.
func (b Breakdown) Normalized(reference float64) Breakdown {
	if reference == 0 {
		return Breakdown{}
	}
	return Breakdown{Init: b.Init / reference, Loop: b.Loop / reference, Merge: b.Merge / reference}
}

// Add returns the phase-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{Init: b.Init + o.Init, Loop: b.Loop + o.Loop, Merge: b.Merge + o.Merge}
}

// Scale returns the breakdown with every phase multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{Init: b.Init * f, Loop: b.Loop * f, Merge: b.Merge * f}
}

// String renders the breakdown in a compact fixed-point form.
func (b Breakdown) String() string {
	return fmt.Sprintf("init=%.3f loop=%.3f merge=%.3f total=%.3f", b.Init, b.Loop, b.Merge, b.Total())
}

// Speedup returns sequential/parallel, guarding against a zero denominator.
func Speedup(sequential, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return sequential / parallel
}

// FormatTable renders rows as a fixed-width text table with the given
// header. It is used by the experiment harness so that `cmd/smartapps`
// prints tables shaped like the paper's.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
