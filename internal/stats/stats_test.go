package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHarmonicMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 2}, 2},
		{[]float64{1, 2}, 4.0 / 3.0},
		{[]float64{4, 4, 4, 4}, 4},
	}
	for _, c := range cases {
		if got := HarmonicMean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("HarmonicMean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestHarmonicMeanEmpty(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %g, want 0", got)
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive input")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestHarmonicLessOrEqualArithmetic(t *testing.T) {
	// Property: HM <= GM <= AM for positive values.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		hm, gm, am := HarmonicMean(xs), GeometricMean(xs), ArithmeticMean(xs)
		return hm <= gm*(1+1e-9) && gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperFig7Average(t *testing.T) {
	// The harmonic mean of the five Hw speedups from Figure 6
	// (4.0, 14.0, 6.1, 9.9, 15.6) should be near the paper's reported
	// average of 7.6 for the 16-node Hw configuration.
	hw := []float64{4.0, 14.0, 6.1, 9.9, 15.6}
	got := HarmonicMean(hw)
	if got < 7.0 || got > 8.2 {
		t.Errorf("harmonic mean of paper Hw speedups = %.2f, expected near 7.6", got)
	}
	sw := []float64{1.3, 7.3, 3.1, 1.9, 9.1}
	gotSw := HarmonicMean(sw)
	if gotSw < 2.3 || gotSw > 3.2 {
		t.Errorf("harmonic mean of paper Sw speedups = %.2f, expected near 2.7", gotSw)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeometricMean(1,4) = %g, want 2", got)
	}
	if got := GeometricMean(nil); got != 0 {
		t.Errorf("GeometricMean(nil) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g, want -1", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("Max/Min of empty slice should be 0")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(5, 2)
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(5) != 2 {
		t.Errorf("unexpected counts: %d %d %d", h.Count(1), h.Count(3), h.Count(5))
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 1 || bins[1] != 3 || bins[2] != 5 {
		t.Errorf("Bins = %v", bins)
	}
	want := (1.0*2 + 3.0*1 + 5.0*2) / 5.0
	if got := h.Mean(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("Quantile(0.5) = %d, want 50", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("Quantile(1.0) = %d, want 100", got)
	}
	if got := h.Quantile(0.01); got != 1 {
		t.Errorf("Quantile(0.01) = %d, want 1", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty = %d, want 0", got)
	}
	if h.Mean() != 0 {
		t.Error("Mean on empty should be 0")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Init: 1, Loop: 6, Merge: 3}
	if b.Total() != 10 {
		t.Fatalf("Total = %g, want 10", b.Total())
	}
	n := b.Normalized(10)
	if !almostEqual(n.Init, 0.1, 1e-12) || !almostEqual(n.Loop, 0.6, 1e-12) || !almostEqual(n.Merge, 0.3, 1e-12) {
		t.Errorf("Normalized = %+v", n)
	}
	if z := b.Normalized(0); z.Total() != 0 {
		t.Errorf("Normalized(0) should be zero, got %+v", z)
	}
	sum := b.Add(Breakdown{Init: 1, Loop: 1, Merge: 1})
	if sum.Init != 2 || sum.Loop != 7 || sum.Merge != 4 {
		t.Errorf("Add = %+v", sum)
	}
	sc := b.Scale(2)
	if sc.Total() != 20 {
		t.Errorf("Scale(2).Total = %g, want 20", sc.Total())
	}
	if s := b.String(); !strings.Contains(s, "loop=6.000") {
		t.Errorf("String = %q", s)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup(10,2) = %g, want 5", got)
	}
	if got := Speedup(10, 0); got != 0 {
		t.Errorf("Speedup(10,0) = %g, want 0", got)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bbbb"}, [][]string{{"xx", "y"}, {"z", "wwwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator line = %q", lines[1])
	}
}

func TestQuickHistogramTotalMatchesAdds(t *testing.T) {
	f := func(bins []uint8) bool {
		h := NewHistogram()
		for _, b := range bins {
			h.Add(int(b))
		}
		sum := 0
		for _, b := range h.Bins() {
			sum += h.Count(b)
		}
		return sum == len(bins) && h.Total() == len(bins)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
