package reduction

import (
	"fmt"

	"repro/internal/trace"
)

// This file is the incremental counterpart of the SegPlan/SegCache
// machinery in plan.go: where a SegPlan discovers sharing *between*
// members of one batch, a DeltaState exploits sharing *across time* for
// one long-lived loop. A streaming session registers its loop once; each
// update batch then mutates a handful of subscripts and re-reduces by
// recomputing only the segments those subscripts fall in, re-combining
// through the same pairwise tree every other path uses.
//
// Correctness rests on the same invariant plan.go documents: segments
// are accumulated in iteration order by the same kernels
// (accumFlatAdd / naiveAccumFlat) and folded in the same fixed tree
// association (combineTreeAdd / combineTreeOp), so an incremental
// recompute of touched segments is bit-for-bit identical to rebuilding
// every segment from scratch — the property delta_test.go pins with
// math.Float64bits across segment-straddling, empty and full-touch
// delta shapes.

// RefDelta is one subscript update: the reference at flat position Pos
// of the session's loop is redirected to element Ref. A delta batch is
// applied atomically between two reads.
type RefDelta struct {
	// Pos indexes the loop's flattened reference stream, in [0, TotalRefs).
	Pos int32
	// Ref is the new reduction element index, in [0, NumElems).
	Ref int32
}

// DeltaState is one streaming session's server-resident reduction state:
// a private mutable copy of the registered loop plus one partial-sum
// buffer per iteration segment, all valid between updates. It is the
// SegCache idea with the cross-batch verification stripped away — the
// state owns its loop, so slot content can never be stale.
//
// A DeltaState is not concurrency-safe; callers serialize Apply (the
// engine's Session mutex does).
type DeltaState struct {
	loop     *trace.Loop
	segIters int
	segs     int
	parts    [][]float64
	dirty    []bool
}

// DeltaStateBytes estimates the resident footprint of a session over l
// under the given segment width (0 picks DefaultSegIters for procs):
// the per-segment sum buffers plus the private copy of the loop's
// iteration structure. The server weighs it against its session memory
// budget before admitting an OPEN_SESSION.
func DeltaStateBytes(l *trace.Loop, segIters, procs int) int {
	if segIters <= 0 {
		segIters = DefaultSegIters(l.NumIters(), procs)
	}
	segs := (l.NumIters() + segIters - 1) / segIters
	return segs*l.NumElems*8 + l.TotalRefs()*4 + (l.NumIters()+1)*4
}

// NewDeltaState registers a session over l: the loop is deep-copied
// (the session mutates it), every segment's partial sum is computed,
// and, when dst is non-nil, the full reduction is combined into it
// (dst must hold NumElems elements). segIters <= 0 picks
// DefaultSegIters for procs. The segment count must fit the combine
// tree (maxSegTreeWidth).
func NewDeltaState(l *trace.Loop, segIters, procs int, ex *Exec, dst []float64) (*DeltaState, error) {
	checkProcs(procs)
	if l.NumElems <= 0 {
		return nil, fmt.Errorf("reduction: session loop %q has non-positive NumElems", l.Name)
	}
	if segIters <= 0 {
		segIters = DefaultSegIters(l.NumIters(), procs)
	}
	segs := (l.NumIters() + segIters - 1) / segIters
	if segs > maxSegTreeWidth {
		return nil, fmt.Errorf("reduction: %d session segments exceed the combine width %d", segs, maxSegTreeWidth)
	}
	s := &DeltaState{
		loop:     l.Clone(),
		segIters: segIters,
		segs:     segs,
		parts:    make([][]float64, segs),
		dirty:    make([]bool, segs),
	}
	for i := range s.parts {
		// Long-lived buffers: never pooled, so no later worker scratch can
		// alias a buffer a future read still combines from.
		s.parts[i] = make([]float64, l.NumElems)
	}
	for i := range s.dirty {
		s.dirty[i] = true
	}
	s.recompute(procs, ex)
	if dst != nil {
		s.combine(procs, ex, dst)
	}
	return s, nil
}

// Loop returns the session's private loop in its current (post-delta)
// state. Callers must not mutate it.
func (s *DeltaState) Loop() *trace.Loop { return s.loop }

// Segments returns the session's segment count.
func (s *DeltaState) Segments() int { return s.segs }

// SegIters returns the session's segment width in iterations.
func (s *DeltaState) SegIters() int { return s.segIters }

// Bytes reports the session's resident footprint (the admission-control
// accounting figure).
func (s *DeltaState) Bytes() int {
	return s.segs*s.loop.NumElems*8 + s.loop.TotalRefs()*4 + (s.loop.NumIters()+1)*4
}

// Apply mutates the session loop with one delta batch, recomputes only
// the segments the batch touched, and combines the rolling reduction
// into dst (length NumElems). Deltas must be sorted by strictly
// increasing Pos with every Pos in [0, TotalRefs) and every Ref in
// [0, NumElems); an invalid batch is rejected before any mutation, so
// the state is never half-updated. An empty batch recomputes nothing
// and re-reads the current state.
//
// The returned stats count segments recomputed fresh vs. reused intact
// — the per-update incremental win the session counters surface.
func (s *DeltaState) Apply(deltas []RefDelta, procs int, ex *Exec, dst []float64) (SegRunStats, error) {
	checkProcs(procs)
	offs, refs := s.loop.Flat()
	prev := int32(-1)
	for i, d := range deltas {
		if d.Pos <= prev {
			return SegRunStats{}, fmt.Errorf("reduction: delta %d position %d not strictly increasing (prev %d)", i, d.Pos, prev)
		}
		if int(d.Pos) >= len(refs) {
			return SegRunStats{}, fmt.Errorf("reduction: delta %d position %d out of range [0,%d)", i, d.Pos, len(refs))
		}
		if int(d.Ref) < 0 || int(d.Ref) >= s.loop.NumElems {
			return SegRunStats{}, fmt.Errorf("reduction: delta %d ref %d out of range [0,%d)", i, d.Ref, s.loop.NumElems)
		}
		prev = d.Pos
	}
	if len(dst) != s.loop.NumElems {
		return SegRunStats{}, fmt.Errorf("reduction: session destination holds %d elements, want %d", len(dst), s.loop.NumElems)
	}

	// Mutate, marking each touched segment. Deltas arrive sorted by
	// position and offsets are monotonic, so one merged forward scan maps
	// every position to its iteration (and segment) in O(deltas + iters).
	iter := 0
	for _, d := range deltas {
		refs[d.Pos] = d.Ref
		for int(offs[iter+1]) <= int(d.Pos) {
			iter++
		}
		s.dirty[iter/s.segIters] = true
	}

	st := s.recompute(procs, ex)
	s.combine(procs, ex, dst)
	return st, nil
}

// recompute re-accumulates every dirty segment in iteration order and
// clears the dirty marks, returning the computed/reused split.
func (s *DeltaState) recompute(procs int, ex *Exec) SegRunStats {
	var st SegRunStats
	for _, d := range s.dirty {
		if d {
			st.Computed++
		} else {
			st.Reused++
		}
	}
	if st.Computed == 0 {
		return st
	}
	fast := ex.fastAdd(s.loop)
	neutral := s.loop.Op.Neutral()
	offs, refs := s.loop.Flat()
	iters := s.loop.NumIters()
	parallelFor(procs, func(pr int) {
		for seg := pr; seg < s.segs; seg += procs {
			if !s.dirty[seg] {
				continue
			}
			buf := s.parts[seg]
			lo := seg * s.segIters
			hi := lo + s.segIters
			if hi > iters {
				hi = iters
			}
			fill(buf, neutral)
			if fast {
				accumFlatAdd(buf, offs, refs, lo, hi)
			} else {
				naiveAccumFlat(buf, s.loop, lo, hi)
			}
		}
	})
	for i := range s.dirty {
		s.dirty[i] = false
	}
	return st
}

// combine folds every segment's partial sum into dst through the
// pairwise tree, in element blocks across procs goroutines. A loop with
// no iterations has no segments and reduces to the neutral array.
func (s *DeltaState) combine(procs int, ex *Exec, dst []float64) {
	if s.segs == 0 {
		fill(dst[:s.loop.NumElems], s.loop.Op.Neutral())
		return
	}
	fast := ex.fastAdd(s.loop)
	parallelFor(procs, func(pr int) {
		lo, hi := blockBounds(s.loop.NumElems, procs, pr)
		if fast {
			combineTreeAdd(dst, s.parts, lo, hi)
		} else {
			combineTreeOp(dst, s.parts, lo, hi, s.loop.Op)
		}
	})
}
