package reduction

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// planLoop builds a deterministic random loop for the plan tests.
func planLoop(name string, dim, iters, refsPerIter int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop(name, dim)
	refs := make([]int32, refsPerIter)
	for i := 0; i < iters; i++ {
		for j := range refs {
			refs[j] = int32(rng.Intn(dim))
		}
		l.AddIter(refs...)
	}
	return l
}

// mutateSegments returns a copy of l whose reference content is
// re-randomized on exactly the segments for which keep(s) is false; the
// kept segments alias-equal content at the same positions.
func mutateSegments(l *trace.Loop, segIters int, seed int64, keep func(s int) bool) *trace.Loop {
	c := l.Clone()
	offs, refs := c.Flat()
	iters := c.NumIters()
	segs := (iters + segIters - 1) / segIters
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < segs; s++ {
		if keep(s) {
			continue
		}
		itHi := (s + 1) * segIters
		if itHi > iters {
			itHi = iters
		}
		for r := offs[s*segIters]; r < offs[itHi]; r++ {
			refs[r] = int32(rng.Intn(c.NumElems))
		}
	}
	return c
}

// segOracle executes one member's segment decomposition entirely with
// the scalar naive kernels and no sharing: per-segment partial sums in
// iteration order, then the pairwise tree across segments. This is the
// bit-for-bit reference the simplified plan must reproduce.
func segOracle(l *trace.Loop, segIters int) []float64 {
	iters := l.NumIters()
	segs := (iters + segIters - 1) / segIters
	parts := make([][]float64, segs)
	neutral := l.Op.Neutral()
	for s := range parts {
		lo := s * segIters
		hi := lo + segIters
		if hi > iters {
			hi = iters
		}
		buf := make([]float64, l.NumElems)
		for i := range buf {
			buf[i] = neutral
		}
		naiveAccumFlat(buf, l, lo, hi)
		parts[s] = buf
	}
	dst := make([]float64, l.NumElems)
	combineTreeOp(dst, parts, 0, l.NumElems, l.Op)
	return dst
}

// planShapes are the overlap structures of the property test. Each
// builds occ members over a common leader; segIters is 16 iterations
// over 128, i.e. 8 segments.
var planShapes = []struct {
	name  string
	build func(lead *trace.Loop, occ, segIters int) []*trace.Loop
}{
	{"full-overlap", func(lead *trace.Loop, occ, segIters int) []*trace.Loop {
		ms := []*trace.Loop{lead}
		for m := 1; m < occ; m++ {
			ms = append(ms, lead.Clone())
		}
		return ms
	}},
	{"disjoint", func(lead *trace.Loop, occ, segIters int) []*trace.Loop {
		ms := []*trace.Loop{lead}
		for m := 1; m < occ; m++ {
			ms = append(ms, mutateSegments(lead, segIters, int64(100+m), func(int) bool { return false }))
		}
		return ms
	}},
	{"staircase", func(lead *trace.Loop, occ, segIters int) []*trace.Loop {
		// Member m keeps the leading 8-m segments.
		ms := []*trace.Loop{lead}
		for m := 1; m < occ; m++ {
			keepUpTo := 8 - m
			ms = append(ms, mutateSegments(lead, segIters, int64(200+m), func(s int) bool { return s < keepUpTo }))
		}
		return ms
	}},
	{"nested", func(lead *trace.Loop, occ, segIters int) []*trace.Loop {
		// Member m keeps the nested window [m/2, 8-(m+1)/2).
		ms := []*trace.Loop{lead}
		for m := 1; m < occ; m++ {
			lo, hi := m/2, 8-(m+1)/2
			ms = append(ms, mutateSegments(lead, segIters, int64(300+m), func(s int) bool { return s >= lo && s < hi }))
		}
		return ms
	}},
}

// TestSegPlanMatchesNaiveOracle is the simplification correctness
// property: across overlap shapes and batch occupancies 1-8, the fast
// simplified execution (shared partial sums, pooled buffers, unrolled
// kernels) produces bit-for-bit the result of running each member's own
// segment decomposition through the scalar naive path — sharing never
// changes a single bit. Results also stay within tolerance of the
// sequential reference.
func TestSegPlanMatchesNaiveOracle(t *testing.T) {
	const dim, iters, rpi, segIters = 192, 128, 4, 16
	pool := NewBufferPool()
	for _, shape := range planShapes {
		for occ := 1; occ <= 8; occ++ {
			t.Run(fmt.Sprintf("%s/occ%d", shape.name, occ), func(t *testing.T) {
				lead := planLoop("lead", dim, iters, rpi, 1)
				members := shape.build(lead, occ, segIters)
				p, err := BuildSegPlan(members, segIters)
				if err != nil {
					t.Fatal(err)
				}
				dsts := make([][]float64, len(members))
				for m := range dsts {
					dsts[m] = make([]float64, dim)
				}
				for _, procs := range []int{1, 3, 8} {
					st := p.Run(procs, &Exec{Pool: pool}, nil, dsts)
					if st.Computed != p.Analysis.Unique || st.Reused != 0 {
						t.Fatalf("procs=%d computed/reused = %d/%d, want %d/0",
							procs, st.Computed, st.Reused, p.Analysis.Unique)
					}
					for m, l := range members {
						want := segOracle(l, segIters)
						for e := range want {
							if math.Float64bits(dsts[m][e]) != math.Float64bits(want[e]) {
								t.Fatalf("procs=%d member %d elem %d = %v, oracle %v",
									procs, m, e, dsts[m][e], want[e])
							}
						}
						assertClose(t, dsts[m], l.RunSequential())
					}
				}
			})
		}
	}
}

// assertClose checks the plan result against the sequential reference to
// the same tolerance the scheme tests use for reassociated reductions.
func assertClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range got {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(math.Abs(want[i]), 1)
		if diff/scale > 1e-9 {
			t.Fatalf("elem %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSegPlanNoOverlapHasNoSharing pins the disjoint case the decision
// boundary falls back on: with fully distinct content every cell is its
// own owner, so a simplified execution would do strictly more work than
// the direct path — the planner reports that via the analysis, and
// adapt.RecommendSimplify (tested in its own package) refuses it.
func TestSegPlanNoOverlapHasNoSharing(t *testing.T) {
	const segIters = 16
	lead := planLoop("lead", 192, 128, 4, 1)
	members := planShapes[1].build(lead, 4, segIters) // disjoint
	p, err := BuildSegPlan(members, segIters)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Analysis
	if a.SharedSegs != 0 || a.OverlapFrac != 0 {
		t.Fatalf("disjoint batch reports sharing: SharedSegs=%d OverlapFrac=%g", a.SharedSegs, a.OverlapFrac)
	}
	if a.Unique != a.Members*a.Segments {
		t.Fatalf("disjoint unique = %d, want %d", a.Unique, a.Members*a.Segments)
	}
}

// TestSegPlanCacheIncremental checks incremental re-reduction: a second
// batch whose stream mutated a single segment recomputes only that
// segment, reuses the rest from the cache, and still matches the naive
// oracle bit-for-bit.
func TestSegPlanCacheIncremental(t *testing.T) {
	const dim, iters, rpi, segIters = 192, 128, 4, 16
	pool := NewBufferPool()
	lead := planLoop("lead", dim, iters, rpi, 1)
	cache := NewSegCache(lead, segIters)

	p0, err := BuildSegPlan([]*trace.Loop{lead}, segIters)
	if err != nil {
		t.Fatal(err)
	}
	dst := [][]float64{make([]float64, dim)}
	st := p0.Run(4, &Exec{Pool: pool}, cache, dst)
	if st.Computed != p0.Analysis.Segments || st.Reused != 0 {
		t.Fatalf("cold run computed/reused = %d/%d, want %d/0", st.Computed, st.Reused, p0.Analysis.Segments)
	}

	// Mutate only segment 3; everything else must come from the cache.
	drift := mutateSegments(lead, segIters, 99, func(s int) bool { return s != 3 })
	p1, err := BuildSegPlan([]*trace.Loop{drift}, segIters)
	if err != nil {
		t.Fatal(err)
	}
	st = p1.Run(4, &Exec{Pool: pool}, cache, dst)
	if st.Computed != 1 || st.Reused != p1.Analysis.Segments-1 {
		t.Fatalf("incremental run computed/reused = %d/%d, want 1/%d", st.Computed, st.Reused, p1.Analysis.Segments-1)
	}
	want := segOracle(drift, segIters)
	for e := range want {
		if math.Float64bits(dst[0][e]) != math.Float64bits(want[e]) {
			t.Fatalf("incremental elem %d = %v, oracle %v", e, dst[0][e], want[e])
		}
	}

	// A third run with identical content reuses everything.
	st = p1.Run(4, &Exec{Pool: pool}, cache, dst)
	if st.Computed != 0 || st.Reused != p1.Analysis.Segments {
		t.Fatalf("warm run computed/reused = %d/%d, want 0/%d", st.Computed, st.Reused, p1.Analysis.Segments)
	}

	// A mismatched-geometry cache is ignored, not misused.
	other := planLoop("other", dim, iters/2, rpi, 7)
	pOther, err := BuildSegPlan([]*trace.Loop{other}, segIters)
	if err != nil {
		t.Fatal(err)
	}
	dstO := [][]float64{make([]float64, dim)}
	st = pOther.Run(4, &Exec{Pool: pool}, cache, dstO)
	if st.Reused != 0 {
		t.Fatalf("mismatched cache served %d segments", st.Reused)
	}
	wantO := segOracle(other, segIters)
	for e := range wantO {
		if math.Float64bits(dstO[0][e]) != math.Float64bits(wantO[e]) {
			t.Fatalf("mismatched-cache elem %d = %v, oracle %v", e, dstO[0][e], wantO[e])
		}
	}
}

// TestSegPlanNonAddOp runs the naive-kernel path end to end for an
// idempotent operator, where exact equality with the sequential
// reference holds regardless of association.
func TestSegPlanNonAddOp(t *testing.T) {
	const segIters = 16
	lead := planLoop("max", 128, 96, 3, 5)
	lead.Op = trace.OpMax
	members := []*trace.Loop{lead, lead.Clone()}
	p, err := BuildSegPlan(members, segIters)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Analysis.Idempotent {
		t.Error("OpMax plan not flagged idempotent")
	}
	dsts := [][]float64{make([]float64, 128), make([]float64, 128)}
	p.Run(4, nil, nil, dsts)
	want := lead.RunSequential()
	for m := range dsts {
		for e := range want {
			if math.Float64bits(dsts[m][e]) != math.Float64bits(want[e]) {
				t.Fatalf("member %d elem %d = %v, want %v", m, e, dsts[m][e], want[e])
			}
		}
	}
}

func TestDefaultSegIters(t *testing.T) {
	cases := []struct {
		iters, procs int
		wantSegs     int
	}{
		{8192, 8, 8},
		{8192, 16, 16},
		{8192, 1, 8},
		{100, 8, 4}, // 32-iteration floor wins: ceil(100/32)
	}
	for _, c := range cases {
		si := DefaultSegIters(c.iters, c.procs)
		segs := (c.iters + si - 1) / si
		if segs != c.wantSegs {
			t.Errorf("DefaultSegIters(%d,%d) = %d → %d segments, want %d",
				c.iters, c.procs, si, segs, c.wantSegs)
		}
		if segs > maxSegTreeWidth {
			t.Errorf("DefaultSegIters(%d,%d) exceeds combine width", c.iters, c.procs)
		}
	}
}
