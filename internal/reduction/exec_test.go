package reduction

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func assertSameResult(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		if diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
}

// TestRunIntoMatchesRunWithPooledReuse runs every scheme repeatedly through
// one Exec so the second and third executions consume recycled buffers
// (including buffers recycled from *other* schemes and differently sized
// loops), and checks each result against the cold Run path.
func TestRunIntoMatchesRunWithPooledReuse(t *testing.T) {
	loops := []*trace.Loop{
		randomLoop(500, 2000, 3, 1),
		clusteredLoop(900, 1500, 2),
		randomLoop(64, 100, 1, 3),
	}
	ex := &Exec{Pool: NewBufferPool()}
	for round := 0; round < 3; round++ {
		for _, s := range All() {
			for _, l := range loops {
				want := s.Run(l, 4)
				got := s.RunInto(l, 4, ex, nil)
				assertSameResult(t, s.Name(), got, want)
			}
		}
	}
}

// TestRunIntoReusesDst verifies results land in a caller-provided array of
// sufficient capacity, with stale contents fully overwritten.
func TestRunIntoReusesDst(t *testing.T) {
	l := clusteredLoop(300, 800, 5)
	want := l.RunSequential()
	ex := &Exec{Pool: NewBufferPool()}
	dst := make([]float64, 512)
	for i := range dst {
		dst[i] = math.NaN() // poison: any unwritten element fails the check
	}
	for _, s := range All() {
		got := s.RunInto(l, 4, ex, dst)
		if &got[0] != &dst[0] {
			t.Errorf("%s: result does not alias dst", s.Name())
		}
		assertSameResult(t, s.Name(), got, want)
		for i := range dst[:l.NumElems] {
			dst[i] = math.NaN()
		}
	}
}

// TestRunIntoHonorsIterBounds gives the partition-agnostic schemes a
// deliberately skewed custom iteration partition; results must not change.
func TestRunIntoHonorsIterBounds(t *testing.T) {
	l := randomLoop(400, 1000, 2, 9)
	want := l.RunSequential()
	bounds := []int{0, 10, 500, 980, 1000} // 4 procs, very uneven
	for _, s := range All() {
		ex := &Exec{Pool: NewBufferPool(), IterBounds: bounds}
		got := s.RunInto(l, 4, ex, nil)
		assertSameResult(t, s.Name()+"+bounds", got, want)
	}
}

// TestHashSurvivesSkewedIterBounds regresses the table-overflow hazard: a
// feedback schedule may hand one processor nearly every iteration, so its
// table must be sized for the block it actually executes — a table sized
// from the per-processor average would fill up and probe forever.
func TestHashSurvivesSkewedIterBounds(t *testing.T) {
	l := randomLoop(5000, 4000, 2, 31) // ~4800 distinct keys
	want := l.RunSequential()
	// All 4000 iterations land on the last of 4 processors.
	ex := &Exec{IterBounds: []int{0, 0, 0, 0, 4000}}
	got := Hash{}.RunInto(l, 4, ex, nil)
	assertSameResult(t, "hash+skew", got, want)
}

// TestRunIntoRecordsBlockTimes checks the accumulation-phase timer fires
// for every processor.
func TestRunIntoRecordsBlockTimes(t *testing.T) {
	l := randomLoop(400, 4000, 3, 17)
	for _, s := range All() {
		times := []float64{-1, -1, -1, -1}
		ex := &Exec{BlockTimes: times}
		s.RunInto(l, 4, ex, nil)
		for p, v := range times {
			if v < 0 {
				t.Errorf("%s: proc %d time not recorded", s.Name(), p)
			}
		}
	}
}

// TestRunIntoBatchOut runs every scheme with two fused batch destinations
// and verifies each receives an exact copy of the primary result, with
// stale contents fully overwritten.
func TestRunIntoBatchOut(t *testing.T) {
	l := clusteredLoop(300, 800, 5)
	want := l.RunSequential()
	for _, s := range All() {
		t1 := make([]float64, l.NumElems)
		t2 := make([]float64, l.NumElems)
		for i := range t1 {
			t1[i] = math.NaN() // poison: any unwritten element fails the check
			t2[i] = math.NaN()
		}
		ex := &Exec{Pool: NewBufferPool(), BatchOut: [][]float64{t1, t2}}
		got := s.RunInto(l, 4, ex, nil)
		assertSameResult(t, s.Name()+"/primary", got, want)
		assertSameResult(t, s.Name()+"/batch0", t1, want)
		assertSameResult(t, s.Name()+"/batch1", t2, want)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	bp := NewBufferPool()
	f := bp.Float64(100)
	if len(f) != 100 || cap(f) != 128 {
		t.Fatalf("Float64(100): len=%d cap=%d, want 100/128", len(f), cap(f))
	}
	f[0] = 42
	bp.PutFloat64(f)
	g := bp.Float64(90)
	if len(g) != 90 || cap(g) != 128 {
		t.Fatalf("recycled Float64(90): len=%d cap=%d, want 90/128", len(g), cap(g))
	}

	i := bp.Int32(1)
	if len(i) != 1 || cap(i) != 1 {
		t.Fatalf("Int32(1): len=%d cap=%d, want 1/1", len(i), cap(i))
	}
	bp.PutInt32(i)

	// Nil pool degenerates to plain allocation and ignores returns.
	var nilPool *BufferPool
	n := nilPool.Float64(10)
	if len(n) != 10 {
		t.Fatalf("nil pool Float64(10): len=%d", len(n))
	}
	nilPool.PutFloat64(n)
	nilPool.PutInt32(nilPool.Int32(3))
}

func TestSizeClass(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := sizeClass(n); got != want {
			t.Errorf("sizeClass(%d) = %d, want %d", n, got, want)
		}
	}
}
