package reduction

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// kernelSchemes are the five schemes whose RunInto paths dispatch between
// the optimized kernels (kernels.go) and the retained scalar references
// (naive.go).
var kernelSchemes = []Scheme{Rep{}, LinkedList{}, Selective{}, LocalWrite{}, Hash{}}

// remainderLoops builds loops whose per-iteration reference counts
// straddle the 4-way unroll boundary (0, 1, 3, 4, 5, 7, 8, 9 refs) and
// whose element counts straddle the 8-way combine boundary (4095, 4096,
// 4097), plus degenerate shapes: no iterations, a single element, and a
// sparse pattern where most of the array is never touched.
func remainderLoops() []*trace.Loop {
	var loops []*trace.Loop
	for _, refs := range []int{1, 3, 4, 5, 7, 8, 9} {
		loops = append(loops, randomLoop(257, 64, refs, int64(100+refs)))
	}
	for _, elems := range []int{4095, 4096, 4097} {
		loops = append(loops, randomLoop(elems, 300, 4, int64(elems)))
	}
	empty := trace.NewLoop("empty", 16)
	noRefs := trace.NewLoop("norefs", 16)
	for i := 0; i < 8; i++ {
		noRefs.AddIter()
	}
	one := trace.NewLoop("one", 1)
	for i := 0; i < 9; i++ {
		one.AddIter(0, 0, 0)
	}
	sparse := randomLoop(8192, 40, 2, 7)
	loops = append(loops, empty, noRefs, one, sparse, clusteredLoop(1024, 500, 9))
	return loops
}

func bitsEqual(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// TestFastKernelsBitIdenticalToNaive is the kernel equivalence property:
// for every scheme, every remainder-straddling loop shape and several
// processor counts, the optimized OpAdd path must produce bit-for-bit the
// result of the scalar reference — not merely within tolerance. The two
// paths apply contributions in the same element-local order, so any
// divergence is a kernel bug, not FP reassociation.
func TestFastKernelsBitIdenticalToNaive(t *testing.T) {
	pool := NewBufferPool()
	fastEx := &Exec{Pool: pool}
	naiveEx := &Exec{Pool: pool, naive: true}
	for _, l := range remainderLoops() {
		for _, procs := range []int{1, 3, 8} {
			for _, s := range kernelSchemes {
				got := s.RunInto(l, procs, fastEx, nil)
				want := s.RunInto(l, procs, naiveEx, nil)
				if i := bitsEqual(got, want); i != -1 {
					t.Fatalf("%s procs=%d loop=%s(%d elems): fast diverges from naive at element %d: %x vs %x",
						s.Name(), procs, l.Name, l.NumElems, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestCombineAddBitIdenticalToCombineOp exercises the 8-way pairwise
// combine across lengths straddling the unroll width, including
// mismatched dst/src lengths that take the guarded remainder.
func TestCombineAddBitIdenticalToCombineOp(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 4095, 4096, 4097} {
		for _, srcN := range []int{n, n / 2, n + 3} {
			mk := func(ln int, scale float64) []float64 {
				s := make([]float64, ln)
				for i := range s {
					s[i] = scale * float64(i+1) / 3
				}
				return s
			}
			dstFast, dstNaive := mk(n, 1), mk(n, 1)
			src := mk(srcN, 0.125)
			combineAdd(dstFast, src)
			combineOp(dstNaive, src, trace.OpAdd)
			if i := bitsEqual(dstFast, dstNaive); i != -1 {
				t.Fatalf("combineAdd(n=%d, srcN=%d) diverges at %d", n, srcN, i)
			}
		}
	}
}

// TestFastKernelsAliasedDst re-runs each scheme into the same out buffer,
// pre-filled with stale garbage from the previous call; the recycled
// destination must not leak into the new result.
func TestFastKernelsAliasedDst(t *testing.T) {
	pool := NewBufferPool()
	fastEx := &Exec{Pool: pool}
	l := randomLoop(1500, 800, 5, 42)
	for _, s := range kernelSchemes {
		want := s.Run(l, 8)
		out := make([]float64, l.NumElems)
		for i := range out {
			out[i] = math.NaN()
		}
		for round := 0; round < 3; round++ {
			out = s.RunInto(l, 8, fastEx, out)
			if i := bitsEqual(out, want); i != -1 {
				t.Fatalf("%s round %d: aliased dst diverges at element %d", s.Name(), round, i)
			}
		}
	}
}

// TestFastKernelsBatchedFanOut checks that every fused batch destination
// receives bytes identical to the primary result under the fast path.
func TestFastKernelsBatchedFanOut(t *testing.T) {
	pool := NewBufferPool()
	l := randomLoop(900, 600, 4, 17)
	for _, s := range kernelSchemes {
		ex := &Exec{Pool: pool, BatchOut: [][]float64{
			make([]float64, l.NumElems),
			make([]float64, l.NumElems),
			make([]float64, l.NumElems),
		}}
		out := s.RunInto(l, 8, ex, nil)
		for m, dst := range ex.BatchOut {
			if i := bitsEqual(dst, out); i != -1 {
				t.Fatalf("%s: batch member %d diverges from primary at element %d", s.Name(), m, i)
			}
		}
	}
}

// TestMergeBlockInvariance is the tree merge's association property: the
// per-block sizing hook partitions the element space but must not change
// the combine tree's shape within an element, so every block size yields
// bit-identical results.
func TestMergeBlockInvariance(t *testing.T) {
	l := randomLoop(5000, 3000, 4, 23)
	for _, s := range []Scheme{Rep{}, Selective{}} {
		var want []float64
		for _, block := range []int{1, 7, 256, 3640, 1 << 20} {
			ex := &Exec{Pool: NewBufferPool(), MergeBlockElems: block}
			got := s.RunInto(l, 8, ex, nil)
			if want == nil {
				want = got
				continue
			}
			if i := bitsEqual(got, want); i != -1 {
				t.Fatalf("%s: block=%d diverges at element %d", s.Name(), block, i)
			}
		}
	}
}

// TestMergeBlockForCache pins the sizing hook's contract: the paper's
// Table 1 geometry (512 KB L2, 8 procs) yields 3640-element blocks,
// larger caches yield larger blocks, more procs smaller ones, and the
// floor keeps degenerate geometries amortizable.
func TestMergeBlockForCache(t *testing.T) {
	if got := MergeBlockForCache(512<<10, 8); got != 3640 {
		t.Fatalf("paper geometry: got %d, want 3640", got)
	}
	if MergeBlockForCache(1<<20, 8) <= MergeBlockForCache(512<<10, 8) {
		t.Fatal("block size must grow with L2")
	}
	if MergeBlockForCache(512<<10, 16) >= MergeBlockForCache(512<<10, 2) {
		t.Fatal("block size must shrink with procs")
	}
	if got := MergeBlockForCache(1024, 64); got != 256 {
		t.Fatalf("floor: got %d, want 256", got)
	}
	if got := MergeBlockForCache(512<<10, 0); got != MergeBlockForCache(512<<10, 1) {
		t.Fatalf("procs<1 must clamp to 1, got %d", got)
	}
	ex := &Exec{MergeBlockElems: 123}
	if got := ex.mergeBlock(8); got != 123 {
		t.Fatalf("override: got %d, want 123", got)
	}
	var nilEx *Exec
	if got := nilEx.mergeBlock(8); got != MergeBlockForCache(defaultL2Bytes, 8) {
		t.Fatalf("nil Exec default: got %d", got)
	}
}

// TestNonAddOpsTakeNaivePath pins the dispatch contract: only OpAdd runs
// the specialized kernels, and the naive path still matches the
// sequential semantics for every operator.
func TestNonAddOpsTakeNaivePath(t *testing.T) {
	base := randomLoop(700, 500, 4, 31)
	for _, op := range []trace.Op{trace.OpAdd, trace.OpMul, trace.OpMax, trace.OpMin} {
		l := base.Clone()
		l.Op = op
		ex := &Exec{Pool: NewBufferPool()}
		if got, want := ex.fastAdd(l), op == trace.OpAdd; got != want {
			t.Fatalf("fastAdd(%v) = %v, want %v", op, got, want)
		}
		want := l.RunSequential()
		for _, s := range kernelSchemes {
			assertSameResult(t, s.Name()+"/"+op.String(), s.RunInto(l, 8, ex, nil), want)
		}
	}
}
