package reduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// randomLoop builds a loop with a controllable pattern.
func randomLoop(elems, iters, refsPerIter int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("rand", elems)
	l.WorkPerIter = 10
	refs := make([]int32, refsPerIter)
	for i := 0; i < iters; i++ {
		for k := range refs {
			refs[k] = int32(rng.Intn(elems))
		}
		l.AddIter(refs...)
	}
	return l
}

// clusteredLoop makes most iterations touch a small hot set, testing high
// contention paths.
func clusteredLoop(elems, iters int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("clustered", elems)
	hot := elems / 20
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < iters; i++ {
		if rng.Intn(10) < 8 {
			l.AddIter(int32(rng.Intn(hot)), int32(rng.Intn(hot)))
		} else {
			l.AddIter(int32(rng.Intn(elems)))
		}
	}
	return l
}

func assertMatchesSequential(t *testing.T, s Scheme, l *trace.Loop, procs int) {
	t.Helper()
	want := l.RunSequential()
	got := s.Run(l, procs)
	if len(got) != len(want) {
		t.Fatalf("%s: result length %d, want %d", s.Name(), len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		tol := 1e-9 * (1 + math.Abs(want[i]))
		if diff > tol {
			t.Fatalf("%s(procs=%d): element %d = %g, want %g (diff %g)", s.Name(), procs, i, got[i], want[i], diff)
		}
	}
}

func TestAllSchemesMatchSequentialUniform(t *testing.T) {
	l := randomLoop(500, 2000, 3, 42)
	for _, s := range All() {
		for _, procs := range []int{1, 2, 4, 8} {
			assertMatchesSequential(t, s, l, procs)
		}
	}
}

func TestAllSchemesMatchSequentialClustered(t *testing.T) {
	l := clusteredLoop(1000, 3000, 7)
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 8)
	}
}

func TestAllSchemesMatchSequentialSparse(t *testing.T) {
	// Very sparse: 100k elements, only ~200 touched — hash's home turf.
	rng := rand.New(rand.NewSource(3))
	l := trace.NewLoop("sparse", 100000)
	hot := make([]int32, 200)
	for i := range hot {
		hot[i] = int32(rng.Intn(100000))
	}
	for i := 0; i < 5000; i++ {
		l.AddIter(hot[rng.Intn(len(hot))])
	}
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 8)
	}
}

func TestSchemesWithMaxOperator(t *testing.T) {
	l := randomLoop(200, 1000, 2, 9)
	l.Op = trace.OpMax
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 4)
	}
}

func TestSchemesWithMinOperator(t *testing.T) {
	l := randomLoop(200, 1000, 2, 11)
	l.Op = trace.OpMin
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 4)
	}
}

func TestSchemesWithMulOperator(t *testing.T) {
	// Contributions are in (0,1]; products stay bounded. Use few refs per
	// element so products do not underflow.
	l := randomLoop(5000, 300, 1, 13)
	l.Op = trace.OpMul
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 4)
	}
}

func TestEmptyLoop(t *testing.T) {
	l := trace.NewLoop("empty", 10)
	for _, s := range All() {
		got := s.Run(l, 4)
		for i, v := range got {
			if v != 0 {
				t.Errorf("%s: empty loop element %d = %g, want 0", s.Name(), i, v)
			}
		}
	}
}

func TestSingleIteration(t *testing.T) {
	l := trace.NewLoop("one", 8)
	l.AddIter(3, 3, 5)
	for _, s := range All() {
		assertMatchesSequential(t, s, l, 8) // more procs than iterations
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName of unknown scheme should error")
	}
	want := []string{"rep", "ll", "sel", "lw", "hash"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBlockBoundsPartition(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		procs := int(pRaw)%16 + 1
		prevHi := 0
		total := 0
		for p := 0; p < procs; p++ {
			lo, hi := blockBounds(n, procs, p)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockBoundsBalance(t *testing.T) {
	// No block may be more than one iteration larger than another.
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, procs := range []int{1, 3, 8, 16} {
			minSz, maxSz := n, 0
			for p := 0; p < procs; p++ {
				lo, hi := blockBounds(n, procs, p)
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				if hi-lo > maxSz {
					maxSz = hi - lo
				}
			}
			if maxSz-minSz > 1 {
				t.Errorf("n=%d procs=%d: block sizes differ by %d", n, procs, maxSz-minSz)
			}
		}
	}
}

func TestOwnerConsistentWithBlockBounds(t *testing.T) {
	f := func(idxRaw uint16, nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		procs := int(pRaw)%16 + 1
		idx := int32(int(idxRaw) % n)
		o := owner(idx, n, procs)
		lo, hi := blockBounds(n, procs, o)
		return int(idx) >= lo && int(idx) < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalWriteReplicationFactor(t *testing.T) {
	// A loop where every iteration touches one element owned by one
	// processor has replication factor exactly 1.
	l := trace.NewLoop("aligned", 64)
	for i := 0; i < 64; i++ {
		l.AddIter(int32(i))
	}
	var lw LocalWrite
	if rf := lw.ReplicationFactor(l, 8); rf != 1 {
		t.Errorf("aligned replication factor = %g, want 1", rf)
	}
	// A loop where every iteration touches the first element of every
	// processor's partition has replication factor = procs.
	l2 := trace.NewLoop("spread", 64)
	for i := 0; i < 10; i++ {
		l2.AddIter(0, 8, 16, 24, 32, 40, 48, 56)
	}
	if rf := lw.ReplicationFactor(l2, 8); rf != 8 {
		t.Errorf("spread replication factor = %g, want 8", rf)
	}
	if rf := lw.ReplicationFactor(trace.NewLoop("e", 4), 2); rf != 0 {
		t.Errorf("empty loop replication factor = %g, want 0", rf)
	}
}

func TestSelectiveClassify(t *testing.T) {
	// 4 elements, 2 procs, 4 iterations: iterations 0,1 -> proc 0;
	// 2,3 -> proc 1. Element 0 touched by both (conflict), element 1 only
	// by proc 0, element 3 only by proc 1, element 2 untouched.
	l := trace.NewLoop("cls", 4)
	l.AddIter(0, 1)
	l.AddIter(1)
	l.AddIter(0, 3)
	l.AddIter(3)
	remap, n := Selective{}.classify(l, 2, nil)
	if n != 1 {
		t.Fatalf("numConflict = %d, want 1", n)
	}
	if remap[0] != 0 {
		t.Errorf("element 0 should be conflict slot 0, got %d", remap[0])
	}
	for _, e := range []int{1, 2, 3} {
		if remap[e] != -1 {
			t.Errorf("element %d should be exclusive, got remap %d", e, remap[e])
		}
	}
}

func TestHashTableBasics(t *testing.T) {
	ht := newHashTable(4)
	probes, ins := ht.update(42, 1.5, trace.OpAdd)
	if !ins || probes < 1 {
		t.Errorf("first update: probes=%d inserted=%v", probes, ins)
	}
	_, ins = ht.update(42, 2.5, trace.OpAdd)
	if ins {
		t.Error("second update of same key should not insert")
	}
	i, _ := ht.slot(42)
	if ht.vals[i] != 4.0 {
		t.Errorf("accumulated value = %g, want 4.0", ht.vals[i])
	}
	if ht.n != 1 {
		t.Errorf("entry count = %d, want 1", ht.n)
	}
}

func TestHashTableManyKeysNoLoss(t *testing.T) {
	ht := newHashTable(100)
	for k := int32(0); k < 100; k++ {
		ht.update(k, 1, trace.OpAdd)
	}
	for k := int32(0); k < 100; k++ {
		i, _ := ht.slot(k)
		if ht.keys[i] != k || ht.vals[i] != 1 {
			t.Fatalf("key %d lost or wrong: slot key=%d val=%g", k, ht.keys[i], ht.vals[i])
		}
	}
}

func TestSimulateBreakdownShapes(t *testing.T) {
	l := randomLoop(2000, 8000, 2, 21)
	for _, s := range All() {
		m := vtime.NewMachine(8, vtime.DefaultConfig())
		m.EnableSharingTracking()
		b := s.Simulate(l, m)
		if b.Loop <= 0 {
			t.Errorf("%s: Loop phase must be positive, got %g", s.Name(), b.Loop)
		}
		if b.Init < 0 || b.Merge < 0 {
			t.Errorf("%s: negative phase: %+v", s.Name(), b)
		}
		if m.Now() != b.Total() {
			t.Errorf("%s: machine clock %g != breakdown total %g", s.Name(), m.Now(), b.Total())
		}
	}
}

func TestSimulateLocalWriteHasNoMerge(t *testing.T) {
	l := randomLoop(1000, 4000, 2, 5)
	m := vtime.NewMachine(8, vtime.DefaultConfig())
	b := LocalWrite{}.Simulate(l, m)
	if b.Merge != 0 {
		t.Errorf("lw merge = %g, want 0", b.Merge)
	}
}

func TestSimulateRepInitScalesWithArray(t *testing.T) {
	small := randomLoop(1000, 1000, 1, 1)
	big := randomLoop(100000, 1000, 1, 1)
	mS := vtime.NewMachine(4, vtime.DefaultConfig())
	mB := vtime.NewMachine(4, vtime.DefaultConfig())
	bS := Rep{}.Simulate(small, mS)
	bB := Rep{}.Simulate(big, mB)
	if bB.Init < 10*bS.Init {
		t.Errorf("rep Init should scale ~linearly with array size: small=%g big=%g", bS.Init, bB.Init)
	}
}

func TestSimulateHashBeatsRepWhenVerySparse(t *testing.T) {
	// Spice-like: huge array, tiny touched set. hash must beat rep in
	// virtual time (this is the paper's headline qualitative claim for
	// hash reductions).
	rng := rand.New(rand.NewSource(17))
	l := trace.NewLoop("spicey", 200000)
	l.WorkPerIter = 50
	hot := make([]int32, 300)
	for i := range hot {
		hot[i] = int32(rng.Intn(200000))
	}
	for i := 0; i < 4000; i++ {
		l.AddIter(hot[rng.Intn(len(hot))], hot[rng.Intn(len(hot))])
	}
	mh := vtime.NewMachine(8, vtime.DefaultConfig())
	mr := vtime.NewMachine(8, vtime.DefaultConfig())
	th := Hash{}.Simulate(l, mh).Total()
	tr := Rep{}.Simulate(l, mr).Total()
	if th >= tr {
		t.Errorf("hash (%g) should beat rep (%g) on very sparse pattern", th, tr)
	}
}

func TestSimulateRepBeatsHashWhenDense(t *testing.T) {
	// Small dense array with high contention: rep must beat hash.
	l := clusteredLoop(512, 20000, 23)
	l.WorkPerIter = 5
	mh := vtime.NewMachine(8, vtime.DefaultConfig())
	mr := vtime.NewMachine(8, vtime.DefaultConfig())
	th := Hash{}.Simulate(l, mh).Total()
	tr := Rep{}.Simulate(l, mr).Total()
	if tr >= th {
		t.Errorf("rep (%g) should beat hash (%g) on dense contended pattern", tr, th)
	}
}

func TestRunPanicsOnZeroProcs(t *testing.T) {
	l := randomLoop(10, 10, 1, 1)
	for _, s := range All() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for procs=0", s.Name())
				}
			}()
			s.Run(l, 0)
		}()
	}
}

func TestQuickAllSchemesAgree(t *testing.T) {
	// Property: on arbitrary small patterns, every scheme produces the
	// sequential result (within reassociation tolerance).
	f := func(pat []uint16, procsRaw uint8) bool {
		if len(pat) == 0 {
			return true
		}
		procs := int(procsRaw)%8 + 1
		n := 64
		l := trace.NewLoop("q", n)
		for i := 0; i+1 < len(pat); i += 2 {
			l.AddIter(int32(int(pat[i])%n), int32(int(pat[i+1])%n))
		}
		want := l.RunSequential()
		for _, s := range All() {
			got := s.Run(l, procs)
			for e := range want {
				if math.Abs(got[e]-want[e]) > 1e-9*(1+math.Abs(want[e])) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
