package reduction

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/trace"
)

// The delta-path contract is metamorphic: applying a delta stream to a
// DeltaState and reading the rolling result must be bit-for-bit
// (math.Float64bits) identical to mutating a mirror loop the same way
// and rebuilding every segment from scratch through the naive.go
// kernels in the same segment association. The tests below pin that
// across random loops, ops, segment widths, and the three delta shapes
// the issue names: batches straddling segment boundaries, empty
// batches, and full-touch batches degenerating to a full recompute.

// deltaLoop builds a loop with variable-length (including empty)
// iterations so delta positions land on ragged segment boundaries.
func deltaLoop(elems, iters int, op trace.Op, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("delta", elems)
	l.Op = op
	l.WorkPerIter = 10
	var refs []int32
	for i := 0; i < iters; i++ {
		refs = refs[:0]
		for k := rng.Intn(4); k > 0; k-- {
			refs = append(refs, int32(rng.Intn(elems)))
		}
		l.AddIter(refs...)
	}
	return l
}

// randomDeltas draws n distinct positions (sorted, strictly increasing)
// with fresh random refs — the wire-contract shape of one SUBMIT_DELTA.
func randomDeltas(rng *rand.Rand, l *trace.Loop, n int) []RefDelta {
	total := l.TotalRefs()
	if total == 0 {
		return nil
	}
	if n > total {
		n = total
	}
	seen := make(map[int32]bool, n)
	ds := make([]RefDelta, 0, n)
	for len(ds) < n {
		p := int32(rng.Intn(total))
		if seen[p] {
			continue
		}
		seen[p] = true
		ds = append(ds, RefDelta{Pos: p, Ref: int32(rng.Intn(l.NumElems))})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// applyMirror replays a delta batch onto the oracle's mirror loop.
func applyMirror(m *trace.Loop, ds []RefDelta) {
	_, refs := m.Flat()
	for _, d := range ds {
		refs[d.Pos] = d.Ref
	}
}

// oracleRebuild reduces l from scratch through the naive kernels only,
// in the same segment association the delta path uses: per-segment
// accumulation in iteration order, pairwise-tree combine.
func oracleRebuild(l *trace.Loop, segIters int, dst []float64) {
	iters := l.NumIters()
	segs := (iters + segIters - 1) / segIters
	if segs == 0 {
		fill(dst, l.Op.Neutral())
		return
	}
	parts := make([][]float64, segs)
	for s := range parts {
		parts[s] = make([]float64, l.NumElems)
		fill(parts[s], l.Op.Neutral())
		lo := s * segIters
		hi := lo + segIters
		if hi > iters {
			hi = iters
		}
		naiveAccumFlat(parts[s], l, lo, hi)
	}
	combineTreeOp(dst, parts, 0, l.NumElems, l.Op)
}

func requireBitEqual(t *testing.T, want, got []float64, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", ctx, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: elem %d: session %x (%g) != oracle %x (%g)",
				ctx, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// TestDeltaStateMatchesOracle is the core property test: random loops,
// random delta streams, every op, multiple widths and proc counts —
// every read must be bit-identical to the naive from-scratch rebuild.
func TestDeltaStateMatchesOracle(t *testing.T) {
	ops := []trace.Op{trace.OpAdd, trace.OpMul, trace.OpMax, trace.OpMin}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		op := ops[trial%len(ops)]
		elems := 1 + rng.Intn(200)
		iters := rng.Intn(400)
		procs := 1 + rng.Intn(4)
		segIters := 1 + rng.Intn(64)
		if segs := (iters + segIters - 1) / segIters; segs > maxSegTreeWidth {
			segIters = (iters + maxSegTreeWidth - 1) / maxSegTreeWidth
		}
		l := deltaLoop(elems, iters, op, int64(900+trial))
		mirror := l.Clone()

		dst := make([]float64, elems)
		st, err := NewDeltaState(l, segIters, procs, nil, dst)
		if err != nil {
			t.Fatalf("trial %d: NewDeltaState: %v", trial, err)
		}
		want := make([]float64, elems)
		oracleRebuild(mirror, st.SegIters(), want)
		requireBitEqual(t, want, dst, "open read")

		for step := 0; step < 6; step++ {
			ds := randomDeltas(rng, l, rng.Intn(12))
			if _, err := st.Apply(ds, procs, nil, dst); err != nil {
				t.Fatalf("trial %d step %d: Apply: %v", trial, step, err)
			}
			applyMirror(mirror, ds)
			oracleRebuild(mirror, st.SegIters(), want)
			requireBitEqual(t, want, dst, "delta read")
		}
	}
}

// TestDeltaStateStraddlesSegments forces every batch to touch the last
// reference of one segment and the first of the next, so recomputation
// must invalidate both sides of each boundary it straddles.
func TestDeltaStateStraddlesSegments(t *testing.T) {
	const elems, iters, segIters, procs = 64, 120, 16, 2
	l := trace.NewLoop("straddle", elems)
	l.Op = trace.OpAdd
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < iters; i++ {
		l.AddIter(int32(rng.Intn(elems)), int32(rng.Intn(elems)))
	}
	mirror := l.Clone()
	dst := make([]float64, elems)
	st, err := NewDeltaState(l, segIters, procs, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	offs, _ := l.Flat()
	want := make([]float64, elems)
	for seg := 1; seg < st.Segments(); seg++ {
		boundary := offs[seg*segIters] // first ref of segment seg
		ds := []RefDelta{
			{Pos: boundary - 1, Ref: int32(rng.Intn(elems))},
			{Pos: boundary, Ref: int32(rng.Intn(elems))},
		}
		stats, err := st.Apply(ds, procs, nil, dst)
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		if stats.Computed != 2 || stats.Reused != st.Segments()-2 {
			t.Fatalf("segment %d: computed %d reused %d, want exactly the two straddled segments fresh",
				seg, stats.Computed, stats.Reused)
		}
		applyMirror(mirror, ds)
		oracleRebuild(mirror, segIters, want)
		requireBitEqual(t, want, dst, "straddle read")
	}
}

// TestDeltaStateEmptyBatch pins the empty-delta shape: nothing is
// recomputed, every segment is reused, and the read still matches the
// oracle exactly.
func TestDeltaStateEmptyBatch(t *testing.T) {
	l := deltaLoop(50, 90, trace.OpMax, 11)
	dst := make([]float64, 50)
	st, err := NewDeltaState(l, 8, 2, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range [][]RefDelta{nil, {}} {
		stats, err := st.Apply(ds, 2, nil, dst)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Computed != 0 || stats.Reused != st.Segments() {
			t.Fatalf("empty batch: computed %d reused %d, want 0/%d", stats.Computed, stats.Reused, st.Segments())
		}
		want := make([]float64, 50)
		oracleRebuild(l, st.SegIters(), want)
		requireBitEqual(t, want, dst, "empty-batch read")
	}
}

// TestDeltaStateFullTouch pins the degenerate full-recompute shape: a
// batch updating one reference in every segment recomputes all of them,
// and updating every reference is still exact.
func TestDeltaStateFullTouch(t *testing.T) {
	const elems, iters, segIters, procs = 40, 96, 12, 3
	l := trace.NewLoop("fulltouch", elems)
	l.Op = trace.OpAdd
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < iters; i++ {
		l.AddIter(int32(rng.Intn(elems)), int32(rng.Intn(elems)), int32(rng.Intn(elems)))
	}
	mirror := l.Clone()
	dst := make([]float64, elems)
	st, err := NewDeltaState(l, segIters, procs, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	offs, _ := l.Flat()

	// One touch per segment: all segments recompute, none reused.
	var ds []RefDelta
	for seg := 0; seg < st.Segments(); seg++ {
		ds = append(ds, RefDelta{Pos: offs[seg*segIters], Ref: int32(rng.Intn(elems))})
	}
	stats, err := st.Apply(ds, procs, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != st.Segments() || stats.Reused != 0 {
		t.Fatalf("full touch: computed %d reused %d, want %d/0", stats.Computed, stats.Reused, st.Segments())
	}
	applyMirror(mirror, ds)
	want := make([]float64, elems)
	oracleRebuild(mirror, segIters, want)
	requireBitEqual(t, want, dst, "one-per-segment read")

	// Every reference at once: the fully-degenerate batch.
	total := l.TotalRefs()
	ds = ds[:0]
	for p := 0; p < total; p++ {
		ds = append(ds, RefDelta{Pos: int32(p), Ref: int32(rng.Intn(elems))})
	}
	if _, err := st.Apply(ds, procs, nil, dst); err != nil {
		t.Fatal(err)
	}
	applyMirror(mirror, ds)
	oracleRebuild(mirror, segIters, want)
	requireBitEqual(t, want, dst, "all-refs read")
}

// TestDeltaStateRejectsInvalid pins the validation contract: a bad batch
// is rejected before any mutation, so a subsequent valid read is
// unchanged.
func TestDeltaStateRejectsInvalid(t *testing.T) {
	l := deltaLoop(30, 60, trace.OpAdd, 31)
	dst := make([]float64, 30)
	st, err := NewDeltaState(l, 8, 2, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, 30)
	copy(before, dst)
	total := int32(l.TotalRefs())
	bad := [][]RefDelta{
		{{Pos: -1, Ref: 0}},
		{{Pos: total, Ref: 0}},
		{{Pos: 3, Ref: 0}, {Pos: 3, Ref: 1}},         // not strictly increasing
		{{Pos: 5, Ref: 2}, {Pos: 4, Ref: 1}},         // descending
		{{Pos: 0, Ref: 30}},                          // ref out of range
		{{Pos: 0, Ref: -1}},                          //
		{{Pos: 1, Ref: 4}, {Pos: 2, Ref: int32(-7)}}, // valid prefix, bad tail
	}
	for i, ds := range bad {
		if _, err := st.Apply(ds, 2, nil, dst); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	// State must be untouched: an empty apply reads the original sum.
	if _, err := st.Apply(nil, 2, nil, dst); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, before, dst, "post-rejection read")

	if _, err := st.Apply(nil, 2, nil, make([]float64, 7)); err == nil {
		t.Fatal("short destination accepted")
	}
}

// TestDeltaStateZeroIters covers the no-segment edge: a loop with no
// iterations reduces to the neutral array and accepts only empty deltas.
func TestDeltaStateZeroIters(t *testing.T) {
	for _, op := range []trace.Op{trace.OpAdd, trace.OpMul, trace.OpMax, trace.OpMin} {
		l := trace.NewLoop("empty", 5)
		l.Op = op
		dst := make([]float64, 5)
		st, err := NewDeltaState(l, 0, 2, nil, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if math.Float64bits(v) != math.Float64bits(op.Neutral()) {
				t.Fatalf("op %v elem %d: %g, want neutral %g", op, i, v, op.Neutral())
			}
		}
		if _, err := st.Apply(nil, 2, nil, dst); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Apply([]RefDelta{{Pos: 0, Ref: 0}}, 2, nil, dst); err == nil {
			t.Fatal("delta against an empty loop accepted")
		}
	}
}

// TestDeltaStateBytes sanity-checks the admission accounting estimate
// against the live state's own figure.
func TestDeltaStateBytes(t *testing.T) {
	l := deltaLoop(100, 300, trace.OpAdd, 41)
	st, err := NewDeltaState(l, 0, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Bytes(), DeltaStateBytes(l, 0, 4); got != want {
		t.Fatalf("Bytes %d != DeltaStateBytes %d", got, want)
	}
	if st.Bytes() <= 0 {
		t.Fatal("non-positive footprint")
	}
}
