package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Selective implements the paper's selective privatization (sel) scheme.
// An inspector pass classifies each reduction element: elements referenced
// by a single processor (under the block schedule) are written directly in
// the shared array with no synchronization, while elements referenced by
// two or more processors ("conflicting") are privatized into compact
// per-processor arrays addressed through a remap table. Only the compact
// conflicting set is initialized and merged.
//
// sel wins on large arrays with little cross-processor sharing: it avoids
// rep's full-size sweeps and ll's per-access flag checks for the exclusive
// majority, paying only an indirection through the remap table.
type Selective struct{}

// Name returns "sel".
func (Selective) Name() string { return "sel" }

// classify runs the inspector: it returns the remap table (element ->
// compact index, -1 if exclusive) and the number of conflicting elements.
// The remap table is drawn from pool (nil-safe); the caller owns it.
func (Selective) classify(l *trace.Loop, procs int, pool *BufferPool) (remap []int32, numConflict int) {
	// toucher[e] = first processor seen touching e, or -2 if none,
	// -1 if touched by more than one processor.
	toucher := pool.Int32(l.NumElems)
	defer pool.PutInt32(toucher)
	fillInt32(toucher, -2)
	for p := 0; p < procs; p++ {
		lo, hi := blockBounds(l.NumIters(), procs, p)
		for i := lo; i < hi; i++ {
			for _, idx := range l.Iter(i) {
				switch toucher[idx] {
				case -2:
					toucher[idx] = int32(p)
				case int32(p), -1:
				default:
					toucher[idx] = -1
				}
			}
		}
	}
	remap = pool.Int32(l.NumElems)
	for e := range remap {
		if toucher[e] == -1 {
			remap[e] = int32(numConflict)
			numConflict++
		} else {
			remap[e] = -1
		}
	}
	return remap, numConflict
}

// Run executes the loop with selective privatization.
func (s Selective) Run(l *trace.Loop, procs int) []float64 {
	return s.RunInto(l, procs, nil, nil)
}

// RunInto executes the loop with selective privatization; the inspector's
// remap table and the compact conflicting-set arrays come from the
// context's pool. The inspector classifies against the static block
// partition, so sel ignores the context's feedback iteration bounds.
func (s Selective) RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64 {
	checkProcs(procs)
	neutral := l.Op.Neutral()
	pool := ex.pool()
	remap, numConflict := s.classify(l, procs, pool)
	defer pool.PutInt32(remap)
	fast := ex.fastAdd(l)
	offsets, refs := l.Flat()

	out, fresh := ensureOut(out, l.NumElems)
	initNeutral(out, neutral, fresh)
	priv := ex.float64Slots(procs)

	parallelFor(procs, ex.timedBody(procs, func(p int) {
		compact := pool.Float64(numConflict)
		initNeutral(compact, neutral, pool == nil)
		lo, hi := blockBounds(l.NumIters(), procs, p)
		if fast {
			accumSelAdd(out, compact, remap, offsets, refs, lo, hi)
		} else {
			naiveAccumSel(out, compact, remap, l, lo, hi)
		}
		priv[p] = compact
	}))

	// Merge only the conflicting elements: tree-combine the compact
	// arrays in blocks (exact under every operator's neutral, as in rep),
	// then scatter the combined column into the conflicting elements'
	// shared slots, parallel over compact-index ranges.
	if numConflict > 0 {
		// Invert the remap for the conflicting set.
		conflictElems := pool.Int32(numConflict)
		for e, c := range remap {
			if c >= 0 {
				conflictElems[c] = int32(e)
			}
		}
		block := ex.mergeBlock(procs)
		parallelFor(procs, func(p int) {
			lo, hi := blockBounds(numConflict, procs, p)
			treeCombineRange(priv, lo, hi, block, l.Op, fast)
			if fast {
				combined := priv[0]
				for c := lo; c < hi; c++ {
					out[conflictElems[c]] += combined[c]
				}
			} else {
				combined := priv[0]
				for c := lo; c < hi; c++ {
					e := conflictElems[c]
					out[e] = l.Op.Apply(out[e], combined[c])
				}
			}
		})
		pool.PutInt32(conflictElems)
	}
	for p := range priv {
		pool.PutFloat64(priv[p])
	}
	ex.fanOut(out)
	return out
}

// Simulate charges sel's traffic: the inspector pass plus compact-array
// initialization as Init, remap-indirected accesses during Loop, and the
// conflicting-subset combine as Merge.
func (s Selective) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	remap, numConflict := s.classify(l, procs, nil)
	refStart := refOffsets(l, procs)
	var b stats.Breakdown

	// Init, part 1 — the inspector reads every subscript once and writes
	// the toucher/remap tables. Its output depends only on the access
	// pattern, so its cost is amortized over the loop's invocations.
	b.Init = m.ParallelScaled(1/float64(l.InvocationCount()), func(cpu *vtime.CPU) {
		p := cpu.ID()
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		tbase := vtime.PrivateBase(p) + privTable
		for i := lo; i < hi; i++ {
			n := len(l.Iter(i))
			loadIterRefs(cpu, pos, n)
			pos += n
			for _, idx := range l.Iter(i) {
				cpu.Load(tbase + int64(idx)*4) // toucher entry
				cpu.Compute(1)
			}
		}
	})
	// Init, part 2 — per-invocation zeroing of the compact arrays (a
	// sequential sweep).
	b.Init += m.Parallel(func(cpu *vtime.CPU) {
		cbase := vtime.PrivateBase(cpu.ID()) + privArray
		for c := 0; c < numConflict; c++ {
			cpu.StreamStore(cbase + int64(c)*8)
		}
	})

	// Loop: remap load per reference; conflicting refs go to the private
	// compact array, exclusive refs to the shared array in place.
	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		cbase := vtime.PrivateBase(p) + privArray
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			loadIterRefs(cpu, pos, len(refs))
			pos += len(refs)
			for _, idx := range refs {
				cpu.Load(sharedRemapBase + int64(idx)*4) // remap table (shared, read-only)
				// The indirection makes the update a three-deep dependent
				// load chain (subscript -> remap -> value): the extra
				// level cannot be overlapped and serializes the update.
				cpu.Stall(6)
				var addr int64
				if c := remap[idx]; c >= 0 {
					addr = cbase + int64(c)*8
				} else {
					addr = sharedWBase + int64(idx)*8
				}
				cpu.Load(addr)
				cpu.Compute(1)
				cpu.Store(addr)
			}
		}
	})

	// Merge: combine the conflicting subset across processors. The
	// compact arrays are swept sequentially (overlapping misses); the
	// shared-array writes scatter (full latency).
	b.Merge = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		lo, hi := blockBounds(numConflict, procs, p)
		conflictSeen := 0
		for e := 0; e < l.NumElems && conflictSeen < hi; e++ {
			c := remap[e]
			if c < 0 {
				continue
			}
			if int(c) >= lo && int(c) < hi {
				for q := 0; q < procs; q++ {
					cpu.StreamLoad(vtime.PrivateBase(q) + privArray + int64(c)*8)
					cpu.Compute(1)
				}
				cpu.Store(sharedWBase + int64(e)*8)
			}
			conflictSeen++
		}
	})
	return b
}
