package reduction

// This file holds the segment-combine kernel behind the simplified
// execution plan (plan.go): after the per-segment partial sums are
// computed (accumFlatAdd over each segment's iteration range), every
// batch member folds its per-segment parts into its destination with a
// pairwise tree over the segment index — the same stride-doubling
// association treeCombineRange uses across processors, applied across
// segments. Unlike treeCombineRange the fold must NOT destroy its
// inputs: a shared segment's partial sum is read by several members, and
// a cached segment sum outlives the batch. The kernel therefore folds
// each element through a fixed-size register/stack array instead of
// combining the part buffers in place.
//
// The same BCE discipline as kernels.go applies: scripts/bce_check.sh
// compiles this file with -d=ssa/check_bce and fails on any unmarked
// bounds check. The per-part loads carry //bce:gather markers (the proof
// that every part has numElems elements lives in the planner, outside
// the function); the t[] scratch accesses are check-free because the
// width guard pins n to the array's length.

// maxSegTreeWidth bounds how many segment parts one combine folds — and
// therefore how many segments a plan may decompose the iteration space
// into. 64 matches the processor-model limit and keeps the fold scratch
// on the stack.
const maxSegTreeWidth = 64

// combineTreeAdd writes dst[e] = pairwise-tree sum of parts[*][e] for
// every e in [lo, hi). len(parts) must be in [1, maxSegTreeWidth] and
// every part must have at least hi elements; dst is assigned, not
// accumulated into.
func combineTreeAdd(dst []float64, parts [][]float64, lo, hi int) {
	n := len(parts)
	if lo >= hi || n == 0 {
		return
	}
	if n > maxSegTreeWidth {
		panic("reduction: segment combine wider than maxSegTreeWidth")
	}
	if n == 1 {
		copy(dst[lo:hi], parts[0][lo:hi]) //bce:slice
		return
	}
	// The fold scratch is the width guard made visible to the prove
	// pass: slicing the stack array to n lets the loads ride the range
	// condition, and the fold walks a shrinking slice (the kernels.go
	// idiom) because prove abandons induction variables with
	// multiplicative steps — `for q := 0; q+m < n; q += 2*m` keeps its
	// checks, `rest[0] += rest[m]` under `len(rest) > m` does not.
	var scratch [maxSegTreeWidth]float64
	t := scratch[:n] //bce:slice
	for e := lo; e < hi; e++ {
		for k := range t {
			t[k] = parts[k][e] //bce:gather
		}
		for m := 1; m < len(t); m *= 2 {
			// m is in [1, 63] (m < len(t) <= 64), so the mask is the
			// identity — it exists to hand prove the non-negative range
			// the multiplicative induction variable loses.
			mm := m & (maxSegTreeWidth - 1)
			rest := t
			for len(rest) > mm {
				rest[0] += rest[mm]
				if len(rest) <= 2*mm {
					break
				}
				rest = rest[2*mm:]
			}
		}
		dst[e] = t[0] //bce:gather
	}
}
