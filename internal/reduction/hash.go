package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Hash implements the paper's sparse reduction with privatization in hash
// tables. Each processor accumulates into a private open-addressing hash
// table keyed by element index, so private storage is proportional to the
// number of distinct elements the processor touches rather than to the
// array dimension. The merge walks table entries only.
//
// The paper observes that hash wins only for extremely sparse references
// (Spice: SP ~0.1–0.2%): "the hash table reduces the allocated and
// processed space to such an extent that, although the setup of a hash
// table is large, the performance improves dramatically". Every access
// pays the hashing and probing overhead, so for anything but very sparse
// patterns hash loses to the array-based schemes.
type Hash struct{}

// Name returns "hash".
func (Hash) Name() string { return "hash" }

// hashTable is a deterministic open-addressing (linear probing) table.
type hashTable struct {
	keys []int32 // -1 = empty
	vals []float64
	mask int32
	n    int
}

func newHashTable(capacityHint int) *hashTable {
	var t hashTable
	t.init(capacityHint, nil)
	return &t
}

// init sizes the table for capacityHint keys, drawing storage from pool
// (nil-safe) so a recycled table costs only the key-slot reset sweep.
func (t *hashTable) init(capacityHint int, pool *BufferPool) {
	size := 16
	for size < capacityHint*2 {
		size <<= 1
	}
	t.keys = pool.Int32(size)
	t.vals = pool.Float64(size)
	t.mask = int32(size - 1)
	t.n = 0
	fillInt32(t.keys, -1)
}

// release returns the table's storage to the pool.
func (t *hashTable) release(pool *BufferPool) {
	pool.PutInt32(t.keys)
	pool.PutFloat64(t.vals)
	t.keys, t.vals = nil, nil
}

func hashKey(k int32) int32 {
	h := uint32(k) * 0x9E3779B9
	h ^= h >> 16
	return int32(h)
}

// slot returns the table index where key resides or should be inserted,
// and how many probes the lookup took.
func (t *hashTable) slot(key int32) (idx int32, probes int) {
	i := hashKey(key) & t.mask
	probes = 1
	for t.keys[i] != -1 && t.keys[i] != key {
		i = (i + 1) & t.mask
		probes++
	}
	return i, probes
}

// update applies op(contribution) to key's accumulator, inserting with the
// neutral element on first touch. It reports probe count and whether the
// key was newly inserted.
func (t *hashTable) update(key int32, v float64, op trace.Op) (probes int, inserted bool) {
	i, probes := t.slot(key)
	if t.keys[i] == -1 {
		t.keys[i] = key
		t.vals[i] = op.Neutral()
		t.n++
		inserted = true
	}
	t.vals[i] = op.Apply(t.vals[i], v)
	return probes, inserted
}

// Run executes the loop with per-processor hash tables.
func (h Hash) Run(l *trace.Loop, procs int) []float64 {
	return h.RunInto(l, procs, nil, nil)
}

// RunInto executes the loop with per-processor hash tables whose key and
// value arrays come from the context's pool. OpAdd loops run the
// inlined-probe kernel; other operators take the retained scalar
// reference (naive.go). Both build bit-identical table layouts.
func (Hash) RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64 {
	checkProcs(procs)
	neutral := l.Op.Neutral()
	pool := ex.pool()
	tables := ex.hashTableSlots(procs)
	fast := ex.fastAdd(l)
	offsets, refs := l.Flat()

	parallelFor(procs, ex.timedBody(procs, func(p int) {
		t := &tables[p]
		lo, hi := ex.iterBlock(l.NumIters(), procs, p)
		// Size for this block's actual reference count: the block's
		// distinct keys cannot exceed it, so the open-addressing table
		// always keeps a free slot and probing terminates — even when a
		// feedback schedule hands this processor a far larger share of
		// the references than the static partition would.
		t.init(l.RefsInRange(lo, hi)+1, pool)
		if fast {
			t.accumHashAdd(offsets, refs, lo, hi)
		} else {
			t.naiveAccumHash(l, lo, hi)
		}
	}))

	out, fresh := ensureOut(out, l.NumElems)
	initNeutral(out, neutral, fresh)
	for p := range tables {
		t := &tables[p]
		if fast {
			mergeTableAdd(out, t.keys, t.vals)
		} else {
			naiveMergeTable(out, t.keys, t.vals, l.Op)
		}
		t.release(pool)
	}
	ex.fanOut(out)
	return out
}

// Simulate charges hash's traffic: table allocation/zeroing as Init,
// hashed probing per access during Loop (16-byte entries: key + value),
// and an entry walk as Merge.
func (Hash) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	refStart := refOffsets(l, procs)
	var b stats.Breakdown

	// Pre-size tables deterministically from each block's touched count.
	caps := make([]int, procs)
	for p := 0; p < procs; p++ {
		lo, hi := blockBounds(l.NumIters(), procs, p)
		seen := make(map[int32]struct{})
		for i := lo; i < hi; i++ {
			for _, idx := range l.Iter(i) {
				seen[idx] = struct{}{}
			}
		}
		caps[p] = len(seen)
	}

	tables := make([]*hashTable, procs)
	// Init: allocate and zero the (small) tables — a sequential sweep.
	b.Init = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		t := newHashTable(caps[p] + 1)
		tables[p] = t
		base := vtime.PrivateBase(p) + privTable
		for s := 0; s < len(t.keys); s++ {
			cpu.StreamStore(base + int64(s)*16) // zero the key slot of each entry
		}
	})

	// Loop: each access hashes (cheap ALU work) and probes entries.
	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		t := tables[p]
		base := vtime.PrivateBase(p) + privTable
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			loadIterRefs(cpu, pos, len(refs))
			pos += len(refs)
			for k, idx := range refs {
				probes, _ := t.update(idx, trace.Value(i, k, idx), l.Op)
				// Hashing, masking, key compare and branch chain: the
				// paper stresses that "the setup of a hash table is
				// large" — a software hashed update costs tens of
				// instructions, not the 2–3 of an array update.
				cpu.Compute(22)
				slot, _ := t.slot(idx)
				for pr := 0; pr < probes; pr++ {
					// Probe sequence ends at the final slot; previous
					// probes touched preceding entries.
					s := (int64(slot) - int64(probes-1-pr)) & int64(t.mask)
					cpu.Load(base + s*16)
				}
				cpu.Store(base + int64(slot)*16 + 8)
				cpu.Compute(1)
			}
		}
	})

	// Merge: walk table entries sequentially; each occupied entry updates
	// the shared array (scattered writes, coherence charged by the
	// tracker).
	b.Merge = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		t := tables[p]
		base := vtime.PrivateBase(p) + privTable
		for s, key := range t.keys {
			cpu.StreamLoad(base + int64(s)*16)
			if key >= 0 {
				cpu.Load(base + int64(s)*16 + 8)
				cpu.Load(sharedWBase + int64(key)*8)
				cpu.Compute(1)
				cpu.Store(sharedWBase + int64(key)*8)
			}
		}
	})
	return b
}
