package reduction

import "repro/internal/trace"

// This file retains the scalar element-at-a-time reference kernels the
// optimized loops in kernels.go replaced on the hot path. They serve
// three roles:
//
//   - the execution path for the non-add operators (mul/max/min), which
//     the paper's applications never use in anger,
//   - the semantic oracle for the property tests in kernels_test.go:
//     a fast kernel and its naive counterpart apply contributions in the
//     same element-local order with the same operations, so their results
//     must match bit-for-bit on every input,
//   - readable documentation of what each scheme's hot loop computes.
//
// Any change to a kernel in kernels.go that is not mirrored here (or vice
// versa) fails TestKernelsMatchNaive.

// naiveAccumFlat is accumFlatAdd's reference: fold iterations [lo, hi)
// into the private array w under op.
func naiveAccumFlat(w []float64, l *trace.Loop, lo, hi int) {
	op := l.Op
	for i := lo; i < hi; i++ {
		for k, idx := range l.Iter(i) {
			w[idx] = op.Apply(w[idx], trace.Value(i, k, idx))
		}
	}
}

// naiveAccumLazy is accumLazyAdd's reference: lazy first-touch
// initialization threading touched elements onto a private list.
func naiveAccumLazy(v []float64, next []int32, head int32, l *trace.Loop, lo, hi int) int32 {
	op := l.Op
	neutral := op.Neutral()
	for i := lo; i < hi; i++ {
		for k, idx := range l.Iter(i) {
			if next[idx] == -2 {
				v[idx] = neutral
				next[idx] = head
				head = idx
			}
			v[idx] = op.Apply(v[idx], trace.Value(i, k, idx))
		}
	}
	return head
}

// naiveMergeList is mergeListAdd's reference.
func naiveMergeList(out, v []float64, next []int32, head int32, op trace.Op) {
	for e := head; e >= 0; e = next[e] {
		out[e] = op.Apply(out[e], v[e])
	}
}

// naiveAccumSel is accumSelAdd's reference: conflicting elements fold
// into the compact array through the remap table, exclusive elements
// update out in place.
func naiveAccumSel(out, compact []float64, remap []int32, l *trace.Loop, lo, hi int) {
	op := l.Op
	for i := lo; i < hi; i++ {
		for k, idx := range l.Iter(i) {
			v := trace.Value(i, k, idx)
			if c := remap[idx]; c >= 0 {
				compact[c] = op.Apply(compact[c], v)
			} else {
				out[idx] = op.Apply(out[idx], v)
			}
		}
	}
}

// naiveAccumOwned is accumOwnedAdd's reference: execute the replicated
// iteration list, applying only updates to owned elements.
func naiveAccumOwned(out []float64, elemLo, elemHi int, iters []int32, l *trace.Loop) {
	op := l.Op
	for _, it := range iters {
		i := int(it)
		for k, idx := range l.Iter(i) {
			if int(idx) >= elemLo && int(idx) < elemHi {
				out[idx] = op.Apply(out[idx], trace.Value(i, k, idx))
			}
		}
	}
}

// naiveAccumHash is accumHashAdd's reference: the hashTable.update path.
// Same hash function, same linear probe, same insertion order — the
// resulting table layout matches the fast kernel's exactly.
func (t *hashTable) naiveAccumHash(l *trace.Loop, lo, hi int) {
	for i := lo; i < hi; i++ {
		for k, idx := range l.Iter(i) {
			t.update(idx, trace.Value(i, k, idx), l.Op)
		}
	}
}

// naiveMergeTable is mergeTableAdd's reference.
func naiveMergeTable(out []float64, keys []int32, vals []float64, op trace.Op) {
	for s, key := range keys {
		if key >= 0 {
			out[key] = op.Apply(out[key], vals[s])
		}
	}
}

// combineOp is combineAdd's reference: fold src into dst pairwise under
// op.
func combineOp(dst, src []float64, op trace.Op) {
	if len(src) < len(dst) {
		dst = dst[:len(src)]
	}
	for i := range dst {
		dst[i] = op.Apply(dst[i], src[i])
	}
}

// combineTreeOp is combineTreeAdd's reference: fold parts[*][e] into
// dst[e] through the same stride-doubling pairwise tree, element by
// element, under op. Non-destructive on parts, like the fast kernel.
func combineTreeOp(dst []float64, parts [][]float64, lo, hi int, op trace.Op) {
	n := len(parts)
	if lo >= hi || n == 0 {
		return
	}
	if n > maxSegTreeWidth {
		panic("reduction: segment combine wider than maxSegTreeWidth")
	}
	if n == 1 {
		copy(dst[lo:hi], parts[0][lo:hi])
		return
	}
	var t [maxSegTreeWidth]float64
	for e := lo; e < hi; e++ {
		for k := 0; k < n; k++ {
			t[k] = parts[k][e]
		}
		for m := 1; m < n; m *= 2 {
			for q := 0; q+m < n; q += 2 * m {
				t[q] = op.Apply(t[q], t[q+m])
			}
		}
		dst[e] = t[0]
	}
}

// treeCombineRange combines the element range [lo, hi) of the procs
// private copies pairwise into priv[0]: stride-doubling rounds fold
// priv[q+m] into priv[q], so each element's combine is a balanced tree of
// depth ceil(log2(procs)) instead of a procs-deep dependent chain. The
// range is processed in blocks of block elements so that one block of
// every copy stays resident in L2 across all log2(procs) rounds (the
// privatization-block sizing the polyhedral-reduction literature calls
// reuse-aware blocking); the association per element is identical for
// every block size, so blocking never changes results.
//
// The contents of priv[1..procs) inside [lo, hi) are destroyed; callers
// release the buffers to the pool afterwards. fast selects the unrolled
// add kernel; the naive flag in Exec clears it so the property tests can
// hold association constant while swapping every kernel.
func treeCombineRange(priv [][]float64, lo, hi, block int, op trace.Op, fast bool) {
	if lo >= hi {
		return
	}
	if block <= 0 {
		block = hi - lo
	}
	for blo := lo; blo < hi; blo += block {
		bhi := blo + block
		if bhi > hi {
			bhi = hi
		}
		for m := 1; m < len(priv); m *= 2 {
			for q := 0; q+m < len(priv); q += 2 * m {
				if fast {
					combineAdd(priv[q][blo:bhi], priv[q+m][blo:bhi])
				} else {
					combineOp(priv[q][blo:bhi], priv[q+m][blo:bhi], op)
				}
			}
		}
	}
}
