package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Rep is the classic replicated-array reduction ("private accumulation and
// global update in replicated private arrays" in the paper). Every
// processor allocates a full private copy of the reduction array,
// initializes it to the neutral element, accumulates its block of
// iterations privately, and finally all processors cooperatively merge the
// P private copies into the shared array.
//
// Rep wins when the array is small relative to the cache and the
// contention ratio CHR is high (lots of references amortizing the
// initialization and merge sweeps); it loses badly when the array is large
// and sparsely referenced, because Init and Merge sweep P full copies
// regardless of how few elements were touched.
type Rep struct{}

// Name returns "rep".
func (Rep) Name() string { return "rep" }

// Run executes the loop with replicated private arrays on procs goroutines.
func (r Rep) Run(l *trace.Loop, procs int) []float64 {
	return r.RunInto(l, procs, nil, nil)
}

// RunInto executes the loop with replicated private arrays drawn from the
// context's buffer pool; steady-state repeated executions allocate nothing.
// OpAdd loops run the unrolled flat-accumulation kernel; other operators
// take the retained scalar reference (naive.go).
func (Rep) RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64 {
	checkProcs(procs)
	neutral := l.Op.Neutral()
	pool := ex.pool()
	priv := ex.float64Slots(procs)
	fast := ex.fastAdd(l)
	offsets, refs := l.Flat()

	// Init + Loop: each processor fills its private copy.
	parallelFor(procs, ex.timedBody(procs, func(p int) {
		w := pool.Float64(l.NumElems)
		initNeutral(w, neutral, pool == nil)
		lo, hi := ex.iterBlock(l.NumIters(), procs, p)
		if fast {
			accumFlatAdd(w, offsets, refs, lo, hi)
		} else {
			naiveAccumFlat(w, l, lo, hi)
		}
		priv[p] = w
	}))

	// Merge: processors cooperatively tree-combine their element ranges
	// across the P copies in L2-sized blocks (writing every element, so
	// out needs no initialization), then copy the combined block to the
	// primary and fused batch destinations while it is still cache-hot.
	// The neutral element is exact under every operator (0+x, 1*x,
	// max(-Inf,x), min(+Inf,x) all return x bit-for-bit), so the combined
	// copy in priv[0] is the result.
	out, _ = ensureOut(out, l.NumElems)
	targets := ex.batchTargets()
	block := ex.mergeBlock(procs)
	parallelFor(procs, func(p int) {
		lo, hi := blockBounds(l.NumElems, procs, p)
		treeCombineRange(priv, lo, hi, block, l.Op, fast)
		copy(out[lo:hi], priv[0][lo:hi])
		for _, t := range targets {
			copy(t[lo:hi], priv[0][lo:hi])
		}
	})
	for p := range priv {
		pool.PutFloat64(priv[p])
	}
	return out
}

// Simulate charges rep's traffic on the virtual machine: a full private
// sweep at Init, private accumulation during Loop, and a P-way combine
// sweep at Merge (reading every processor's copy, writing the shared
// array).
func (Rep) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	var b stats.Breakdown

	// Init: every processor sweeps its entire private array (a
	// sequential memset — misses overlap).
	b.Init = m.Parallel(func(cpu *vtime.CPU) {
		base := vtime.PrivateBase(cpu.ID()) + privArray
		for e := 0; e < l.NumElems; e++ {
			cpu.StreamStore(base + int64(e)*8)
		}
	})

	// Loop: block-scheduled iterations accumulate privately.
	refStart := refOffsets(l, procs)
	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		base := vtime.PrivateBase(p) + privArray
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			loadIterRefs(cpu, pos, len(refs))
			pos += len(refs)
			for _, idx := range refs {
				addr := base + int64(idx)*8
				cpu.Load(addr)
				cpu.Compute(1) // the reduction operation itself
				cpu.Store(addr)
			}
		}
	})

	// Merge: each processor combines its element range across all copies.
	// The P per-copy streams are sequential, so their misses overlap.
	b.Merge = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		lo, hi := blockBounds(l.NumElems, procs, p)
		for e := lo; e < hi; e++ {
			for q := 0; q < procs; q++ {
				cpu.StreamLoad(vtime.PrivateBase(q) + privArray + int64(e)*8)
				cpu.Compute(1)
			}
			cpu.StreamStore(sharedWBase + int64(e)*8)
		}
	})
	return b
}

// refOffsets returns, for each processor's block start, the global
// reference position where that block begins in the flattened ref stream.
func refOffsets(l *trace.Loop, procs int) []int {
	offs := make([]int, procs)
	pos := 0
	next := 0
	for p := 0; p < procs; p++ {
		lo, _ := blockBounds(l.NumIters(), procs, p)
		for next < lo {
			pos += len(l.Iter(next))
			next++
		}
		offs[p] = pos
	}
	return offs
}
