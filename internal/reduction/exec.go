package reduction

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// defaultL2Bytes is the modeled per-processor L2 capacity (the paper's
// Table 1 machine) used to size merge blocks when the caller installs no
// platform-specific Exec.MergeBlockElems.
var defaultL2Bytes = vtime.DefaultConfig().L2Bytes

// BufferPool recycles the privatization buffers the schemes allocate per
// execution (private replicated arrays, link/flag arrays, remap tables,
// hash-table storage). Buffers are binned by power-of-two capacity class so
// a steady stream of similarly sized loops reuses the same storage instead
// of re-allocating P full arrays per job — the paper's "run-time tuning"
// level of adaptation applied to memory: once a loop shape has been served,
// serving it again costs no allocation.
//
// A BufferPool is safe for concurrent use by multiple goroutines. The nil
// *BufferPool is valid and falls back to plain allocation, so scheme code
// can call it unconditionally.
type BufferPool struct {
	f64 [maxSizeClass]sync.Pool
	i32 [maxSizeClass]sync.Pool
}

// maxSizeClass bounds capacity classes at 2^40 elements, far beyond any
// loop this repository models.
const maxSizeClass = 41

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// sizeClass returns the bin whose capacity 2^class is the smallest power of
// two holding n elements.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Float64 returns a slice of length n with arbitrary contents, drawn from
// the pool when a buffer of the right class is available. Callers must
// initialize every element they read.
func (bp *BufferPool) Float64(n int) []float64 {
	if bp != nil {
		c := sizeClass(n)
		if v := bp.f64[c].Get(); v != nil {
			return (*v.(*[]float64))[:n]
		}
		return make([]float64, n, 1<<c)
	}
	return make([]float64, n)
}

// PutFloat64 returns a buffer to the pool. The slice must not be used
// after the call.
func (bp *BufferPool) PutFloat64(s []float64) {
	if bp == nil || cap(s) == 0 || cap(s) != 1<<sizeClass(cap(s)) {
		return
	}
	s = s[:cap(s)]
	bp.f64[sizeClass(cap(s))].Put(&s)
}

// Int32 is Float64's counterpart for index/flag/link arrays.
func (bp *BufferPool) Int32(n int) []int32 {
	if bp != nil {
		c := sizeClass(n)
		if v := bp.i32[c].Get(); v != nil {
			return (*v.(*[]int32))[:n]
		}
		return make([]int32, n, 1<<c)
	}
	return make([]int32, n)
}

// PutInt32 returns an index buffer to the pool.
func (bp *BufferPool) PutInt32(s []int32) {
	if bp == nil || cap(s) == 0 || cap(s) != 1<<sizeClass(cap(s)) {
		return
	}
	s = s[:cap(s)]
	bp.i32[sizeClass(cap(s))].Put(&s)
}

// Exec is a reusable execution context for running schemes without
// per-call allocation: Scheme.RunInto threads it through the privatization,
// accumulation and merge phases. An Exec must be used by one job at a time
// (its scratch state is not concurrency-safe); the BufferPool it references
// may be shared between many Execs.
//
// The zero Exec and the nil *Exec are both valid and behave like the
// classic Run path (fresh allocations, static block schedule, no timing).
type Exec struct {
	// Pool supplies recycled privatization buffers; nil allocates fresh.
	Pool *BufferPool
	// IterBounds optionally overrides the static block partition of the
	// iteration space with procs+1 ascending offsets (IterBounds[0] == 0,
	// IterBounds[procs] == NumIters), e.g. boundaries produced by
	// sched.FeedbackScheduler. The partition-agnostic schemes (rep, ll,
	// hash) honor it; sel and lw derive their own partitions from inspector
	// results and ignore it.
	IterBounds []int
	// BlockTimes, when it has at least procs entries, receives the
	// wall-clock nanoseconds each processor spent in the accumulation
	// phase — the measurement sched.FeedbackScheduler feeds on.
	BlockTimes []float64
	// BatchOut is the engine's batch-fusion path: additional destination
	// arrays (each of length NumElems) that receive the reduction result
	// alongside the primary out. A batch of jobs over the same loop pays
	// privatization, accumulation and merge once; each fused member's
	// marginal cost is only its result write. Schemes with a full merge
	// sweep (rep) write every member inside the sweep while the combined
	// value is still in a register; the others fan the finished result out
	// with one copy per member.
	BatchOut [][]float64
	// MergeBlockElems overrides the element-block size the blocked tree
	// merge (rep, and sel's conflicting set) processes per round, the
	// per-block privatization sizing hook: a block of every private copy
	// should stay L2-resident across all log2(procs) combine rounds.
	// Zero picks a default from the modeled platform's L2 geometry; the
	// engine sets it from its configured platform via MergeBlockForCache.
	MergeBlockElems int

	// scratch: per-processor slice headers reused across jobs.
	f64Slots  [][]float64
	i32Slots  [][]int32
	hashSlots []hashTable

	// naive forces the retained scalar reference kernels even for OpAdd;
	// the property tests use it to compare fast and naive executions of
	// identical structure. Never set on production paths.
	naive bool
}

// MergeBlockForCache returns the tree-merge block size (in elements) for
// a machine whose per-processor L2 holds l2Bytes: the largest block such
// that procs private copies of it plus the output block fit in half the
// cache (the other half is left to the subscript stream and the batch
// fan-out destinations), floored so tiny caches still amortize the
// per-block round setup.
func MergeBlockForCache(l2Bytes, procs int) int {
	if procs < 1 {
		procs = 1
	}
	block := l2Bytes / 2 / 8 / (procs + 1)
	if block < 256 {
		block = 256
	}
	return block
}

// mergeBlock returns the context's tree-merge block size (nil-safe).
func (ex *Exec) mergeBlock(procs int) int {
	if ex != nil && ex.MergeBlockElems > 0 {
		return ex.MergeBlockElems
	}
	return MergeBlockForCache(defaultL2Bytes, procs)
}

// fastAdd reports whether the loop takes the specialized OpAdd kernels in
// kernels.go; everything else runs the retained references in naive.go.
func (ex *Exec) fastAdd(l *trace.Loop) bool {
	return l.Op == trace.OpAdd && (ex == nil || !ex.naive)
}

// iterBlock returns processor p's iteration range: the custom feedback
// boundaries when installed and consistent with this loop, else the static
// block partition.
func (ex *Exec) iterBlock(n, procs, p int) (lo, hi int) {
	if ex != nil && len(ex.IterBounds) == procs+1 && ex.IterBounds[procs] == n && ex.IterBounds[0] == 0 {
		return ex.IterBounds[p], ex.IterBounds[p+1]
	}
	return blockBounds(n, procs, p)
}

// pool returns the context's buffer pool (nil-safe).
func (ex *Exec) pool() *BufferPool {
	if ex == nil {
		return nil
	}
	return ex.Pool
}

// float64Slots returns a reused [][]float64 of length procs for private
// per-processor buffers.
func (ex *Exec) float64Slots(procs int) [][]float64 {
	if ex == nil {
		return make([][]float64, procs)
	}
	if cap(ex.f64Slots) < procs {
		ex.f64Slots = make([][]float64, procs)
	}
	s := ex.f64Slots[:procs]
	for i := range s {
		s[i] = nil
	}
	return s
}

// int32Slots returns a reused [][]int32 of length procs.
func (ex *Exec) int32Slots(procs int) [][]int32 {
	if ex == nil {
		return make([][]int32, procs)
	}
	if cap(ex.i32Slots) < procs {
		ex.i32Slots = make([][]int32, procs)
	}
	s := ex.i32Slots[:procs]
	for i := range s {
		s[i] = nil
	}
	return s
}

// hashTableSlots returns a reused []hashTable of length procs.
func (ex *Exec) hashTableSlots(procs int) []hashTable {
	if ex == nil {
		return make([]hashTable, procs)
	}
	if cap(ex.hashSlots) < procs {
		ex.hashSlots = make([]hashTable, procs)
	}
	s := ex.hashSlots[:procs]
	for i := range s {
		s[i] = hashTable{}
	}
	return s
}

// batchTargets returns the fused batch destinations (nil-safe).
func (ex *Exec) batchTargets() [][]float64 {
	if ex == nil {
		return nil
	}
	return ex.BatchOut
}

// fanOut copies the finished result into every batch destination — the
// per-member cost of batch fusion for schemes whose result is not produced
// by a single final sweep.
func (ex *Exec) fanOut(out []float64) {
	if ex == nil {
		return
	}
	for _, dst := range ex.BatchOut {
		copy(dst, out)
	}
}

// timedBody wraps body so that processor p's wall-clock time lands in
// BlockTimes[p] when the caller asked for measurements.
func (ex *Exec) timedBody(procs int, body func(p int)) func(p int) {
	if ex == nil || len(ex.BlockTimes) < procs {
		return body
	}
	times := ex.BlockTimes
	return func(p int) {
		start := time.Now()
		body(p)
		times[p] = float64(time.Since(start).Nanoseconds())
	}
}

// ensureOut returns out resized to n when its capacity suffices, else a
// fresh zeroed array; the boolean reports the fresh case. Every scheme
// writes all n elements, so recycled contents never leak into results.
func ensureOut(out []float64, n int) ([]float64, bool) {
	if cap(out) >= n {
		return out[:n], false
	}
	return make([]float64, n), true
}

// initNeutral prepares a buffer as an accumulator: a recycled buffer (or
// a non-zero neutral element) needs the explicit sweep, while a freshly
// allocated one is already zero — the cold path skips the redundant pass.
func initNeutral(s []float64, neutral float64, fresh bool) {
	if !fresh || neutral != 0 {
		fill(s, neutral)
	}
}

// fill sets every element of s to v. The v == 0 case compiles to a memclr.
func fill(s []float64, v float64) {
	if v == 0 {
		for i := range s {
			s[i] = 0
		}
		return
	}
	for i := range s {
		s[i] = v
	}
}

// fillInt32 sets every element of s to v.
func fillInt32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}
