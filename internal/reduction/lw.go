package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// LocalWrite is the paper's local write (lw) scheme, an "owner computes"
// method (Han & Tseng). The reduction array is block-partitioned across
// processors; every iteration is executed by each processor that owns at
// least one element the iteration references, and each executing
// processor applies only the updates to elements it owns. There is no
// private storage, no initialization sweep, and no merge phase — the price
// is iteration replication: an iteration with high mobility (touching
// elements owned by several processors) is re-executed by each of them.
//
// lw wins when iterations mostly stay within one owner's partition
// (low effective mobility) and the array is too large for rep; it loses
// when mobility is high, because the loop body is replicated MO-fold.
// The paper also notes lw is inapplicable when the loop body modifies
// other shared arrays (iteration replication would double-apply those
// writes); callers express that through trace metadata at a higher level.
type LocalWrite struct{}

// Name returns "lw".
func (LocalWrite) Name() string { return "lw" }

// inspect builds, for each processor, the list of iterations it must
// execute (those touching at least one element it owns).
func (LocalWrite) inspect(l *trace.Loop, procs int) [][]int32 {
	iterLists := make([][]int32, procs)
	var ownersSeen [64]bool // procs <= 64 in every configuration we model
	for i := 0; i < l.NumIters(); i++ {
		for j := range ownersSeen[:procs] {
			ownersSeen[j] = false
		}
		for _, idx := range l.Iter(i) {
			o := owner(idx, l.NumElems, procs)
			if !ownersSeen[o] {
				ownersSeen[o] = true
				iterLists[o] = append(iterLists[o], int32(i))
			}
		}
	}
	return iterLists
}

// Run executes the loop under owner-computes with iteration replication.
func (lw LocalWrite) Run(l *trace.Loop, procs int) []float64 {
	checkProcs(procs)
	if procs > 64 {
		panic("reduction: LocalWrite supports at most 64 processors")
	}
	neutral := l.Op.Neutral()
	iterLists := lw.inspect(l, procs)

	out := make([]float64, l.NumElems)
	for i := range out {
		out[i] = neutral
	}
	parallelFor(procs, func(p int) {
		elemLo, elemHi := blockBounds(l.NumElems, procs, p)
		for _, i := range iterLists[p] {
			for k, idx := range l.Iter(int(i)) {
				if int(idx) >= elemLo && int(idx) < elemHi {
					out[idx] = l.Op.Apply(out[idx], trace.Value(int(i), k, idx))
				}
			}
		}
	})
	return out
}

// Simulate charges lw's traffic: the inspector pass as Init (one sweep of
// the subscript stream building per-owner iteration lists), the replicated
// loop execution as Loop, and no Merge.
func (lw LocalWrite) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	iterLists := lw.inspect(l, procs)
	refStart := refOffsets(l, procs)
	var b stats.Breakdown

	// Init: inspector. Every processor scans its block of the subscript
	// stream, computes owners, and appends to the per-owner lists. Like
	// sel's inspector, the lists depend only on the access pattern and
	// are amortized over the loop's invocations.
	b.Init = m.ParallelScaled(1/float64(l.InvocationCount()), func(cpu *vtime.CPU) {
		p := cpu.ID()
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		listBase := vtime.PrivateBase(p) + privTable
		written := 0
		for i := lo; i < hi; i++ {
			n := len(l.Iter(i))
			loadIterRefs(cpu, pos, n)
			pos += n
			cpu.Compute(float64(2 * n)) // owner computation per ref
			// Appending iteration ids to owner lists: charge one
			// sequential store per iteration (the common case at low
			// mobility).
			cpu.StreamStore(listBase + int64(written)*4)
			written++
		}
	})

	// Loop: each processor executes its (replicated) iteration list and
	// updates only owned elements, which live in its contiguous shared
	// block (good locality, no coherence traffic). Iteration lists are
	// ascending, so the subscript re-reads stream.
	cumRefs := make([]int, l.NumIters()+1)
	for i := 0; i < l.NumIters(); i++ {
		cumRefs[i+1] = cumRefs[i] + len(l.Iter(i))
	}
	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		elemLo, elemHi := blockBounds(l.NumElems, procs, p)
		for _, i := range iterLists[p] {
			refs := l.Iter(int(i))
			cpu.Compute(l.WorkPerIter) // full iteration work is replicated
			loadIterRefs(cpu, cumRefs[i], len(refs))
			// Every reference is ownership-tested (compare + branch),
			// owned or not — that is the price of iteration replication.
			cpu.Compute(float64(2 * len(refs)))
			for _, idx := range refs {
				if int(idx) >= elemLo && int(idx) < elemHi {
					addr := sharedWBase + int64(idx)*8
					cpu.Load(addr)
					cpu.Compute(1)
					cpu.Store(addr)
				}
			}
		}
	})

	b.Merge = 0 // owner computes: nothing to merge
	return b
}

// ReplicationFactor reports the average number of processors that execute
// each iteration under lw's inspector — the effective iteration
// replication the paper attributes to mobility. Exposed for the adaptive
// model and for tests.
func (lw LocalWrite) ReplicationFactor(l *trace.Loop, procs int) float64 {
	if l.NumIters() == 0 {
		return 0
	}
	lists := lw.inspect(l, procs)
	total := 0
	for _, lst := range lists {
		total += len(lst)
	}
	return float64(total) / float64(l.NumIters())
}
