package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// LocalWrite is the paper's local write (lw) scheme, an "owner computes"
// method (Han & Tseng). The reduction array is block-partitioned across
// processors; every iteration is executed by each processor that owns at
// least one element the iteration references, and each executing
// processor applies only the updates to elements it owns. There is no
// private storage, no initialization sweep, and no merge phase — the price
// is iteration replication: an iteration with high mobility (touching
// elements owned by several processors) is re-executed by each of them.
//
// lw wins when iterations mostly stay within one owner's partition
// (low effective mobility) and the array is too large for rep; it loses
// when mobility is high, because the loop body is replicated MO-fold.
// The paper also notes lw is inapplicable when the loop body modifies
// other shared arrays (iteration replication would double-apply those
// writes); callers express that through trace metadata at a higher level.
type LocalWrite struct{}

// Name returns "lw".
func (LocalWrite) Name() string { return "lw" }

// inspect builds, for each processor, the list of iterations it must
// execute (those touching at least one element it owns). With an Exec the
// per-owner lists are appended into pooled backing arrays sized for the
// worst case (every iteration replicated to every owner), so repeated
// inspections of same-shaped loops allocate nothing.
func (LocalWrite) inspect(l *trace.Loop, procs int, ex *Exec) [][]int32 {
	pool := ex.pool()
	iterLists := ex.int32Slots(procs)
	if pool != nil {
		// Pre-size from the pool for the worst case (every iteration
		// replicated to every owner) so appends never reallocate; the
		// storage is recycled, so the width is paid once. Without a pool
		// the lists grow on demand, allocating only the actual
		// replicated count (Simulate and ReplicationFactor callers).
		for p := range iterLists {
			iterLists[p] = pool.Int32(l.NumIters())[:0]
		}
	}
	var ownersSeen [64]bool // procs <= 64 in every configuration we model
	for i := 0; i < l.NumIters(); i++ {
		for j := range ownersSeen[:procs] {
			ownersSeen[j] = false
		}
		for _, idx := range l.Iter(i) {
			o := owner(idx, l.NumElems, procs)
			if !ownersSeen[o] {
				ownersSeen[o] = true
				iterLists[o] = append(iterLists[o], int32(i))
			}
		}
	}
	return iterLists
}

// Run executes the loop under owner-computes with iteration replication.
func (lw LocalWrite) Run(l *trace.Loop, procs int) []float64 {
	return lw.RunInto(l, procs, nil, nil)
}

// RunInto executes the loop under owner-computes with iteration
// replication; the inspector's per-owner iteration lists come from the
// context's pool. The element partition fixes which processor executes
// what, so lw ignores the context's feedback iteration bounds.
func (lw LocalWrite) RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64 {
	checkProcs(procs)
	if procs > 64 {
		panic("reduction: LocalWrite supports at most 64 processors")
	}
	neutral := l.Op.Neutral()
	pool := ex.pool()
	iterLists := lw.inspect(l, procs, ex)

	out, fresh := ensureOut(out, l.NumElems)
	initNeutral(out, neutral, fresh)
	fast := ex.fastAdd(l)
	offsets, refs := l.Flat()
	parallelFor(procs, ex.timedBody(procs, func(p int) {
		elemLo, elemHi := blockBounds(l.NumElems, procs, p)
		if fast {
			accumOwnedAdd(out, int32(elemLo), int32(elemHi), iterLists[p], offsets, refs)
		} else {
			naiveAccumOwned(out, elemLo, elemHi, iterLists[p], l)
		}
	}))
	for p := range iterLists {
		pool.PutInt32(iterLists[p])
	}
	ex.fanOut(out)
	return out
}

// Simulate charges lw's traffic: the inspector pass as Init (one sweep of
// the subscript stream building per-owner iteration lists), the replicated
// loop execution as Loop, and no Merge.
func (lw LocalWrite) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	iterLists := lw.inspect(l, procs, nil)
	refStart := refOffsets(l, procs)
	var b stats.Breakdown

	// Init: inspector. Every processor scans its block of the subscript
	// stream, computes owners, and appends to the per-owner lists. Like
	// sel's inspector, the lists depend only on the access pattern and
	// are amortized over the loop's invocations.
	b.Init = m.ParallelScaled(1/float64(l.InvocationCount()), func(cpu *vtime.CPU) {
		p := cpu.ID()
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		listBase := vtime.PrivateBase(p) + privTable
		written := 0
		for i := lo; i < hi; i++ {
			n := len(l.Iter(i))
			loadIterRefs(cpu, pos, n)
			pos += n
			cpu.Compute(float64(2 * n)) // owner computation per ref
			// Appending iteration ids to owner lists: charge one
			// sequential store per iteration (the common case at low
			// mobility).
			cpu.StreamStore(listBase + int64(written)*4)
			written++
		}
	})

	// Loop: each processor executes its (replicated) iteration list and
	// updates only owned elements, which live in its contiguous shared
	// block (good locality, no coherence traffic). Iteration lists are
	// ascending, so the subscript re-reads stream.
	cumRefs := make([]int, l.NumIters()+1)
	for i := 0; i < l.NumIters(); i++ {
		cumRefs[i+1] = cumRefs[i] + len(l.Iter(i))
	}
	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		elemLo, elemHi := blockBounds(l.NumElems, procs, p)
		for _, i := range iterLists[p] {
			refs := l.Iter(int(i))
			cpu.Compute(l.WorkPerIter) // full iteration work is replicated
			loadIterRefs(cpu, cumRefs[i], len(refs))
			// Every reference is ownership-tested (compare + branch),
			// owned or not — that is the price of iteration replication.
			cpu.Compute(float64(2 * len(refs)))
			for _, idx := range refs {
				if int(idx) >= elemLo && int(idx) < elemHi {
					addr := sharedWBase + int64(idx)*8
					cpu.Load(addr)
					cpu.Compute(1)
					cpu.Store(addr)
				}
			}
		}
	})

	b.Merge = 0 // owner computes: nothing to merge
	return b
}

// ReplicationFactor reports the average number of processors that execute
// each iteration under lw's inspector — the effective iteration
// replication the paper attributes to mobility. Exposed for the adaptive
// model and for tests.
func (lw LocalWrite) ReplicationFactor(l *trace.Loop, procs int) float64 {
	if l.NumIters() == 0 {
		return 0
	}
	lists := lw.inspect(l, procs, nil)
	total := 0
	for _, lst := range lists {
		total += len(lst)
	}
	return float64(total) / float64(l.NumIters())
}
