package reduction

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/trace"
)

// A SegPlan is a simplified execution plan for a batch of
// same-fingerprint loops: instead of executing every member's full
// reference stream, the iteration space is cut into segments
// (pattern.AnalyzeSegments), each distinct segment content is
// accumulated into a partial-sum buffer exactly once, and every member
// combines its per-segment parts through the pairwise tree
// (combineTreeAdd). Members whose subscript streams overlap — shared
// prefixes, nested windows, staircases — pay for the shared segments
// once; with a SegCache attached, segments whose content survived from
// an earlier batch are not recomputed at all (incremental
// re-reduction).
//
// The plan preserves bit-for-bit agreement between the fast OpAdd
// kernels and the scalar naive path: both accumulate each segment in
// iteration order (accumFlatAdd vs naiveAccumFlat apply contributions
// identically) and both fold segments in the same tree association, so
// Exec.naive swaps every kernel while holding the arithmetic shape
// constant — the property plan_test.go checks across overlap shapes.
type SegPlan struct {
	// Analysis is the segment decomposition the plan executes.
	Analysis *pattern.SegmentAnalysis

	members  []*trace.Loop
	numElems int
	op       trace.Op
	tasks    []planTask
	// taskOf[m][s] is the index in tasks of the partial sum member m
	// combines for segment s.
	taskOf [][]int
}

// planTask is one distinct partial sum the plan computes (or reuses).
type planTask struct {
	seg, owner     int
	hash           uint64
	refLo, refHi   int
	iterLo, iterHi int

	buf      []float64
	cached   bool // buf is a verified cache slot; skip accumulation
	intoSlot bool // buf is a cache slot this run refreshes
	pooled   bool // buf came from the pool; release after combining
}

// SegRunStats reports what one simplified execution did: Computed
// partial sums were accumulated from the reference stream, Reused were
// served verified from the attached SegCache.
type SegRunStats struct {
	Computed int
	Reused   int
}

// DefaultSegIters picks the segment width for a loop of numIters
// iterations executed with procs processors: enough segments to expose
// sharing and keep the combine tree busy (at least 8, at least the
// processor count rounded up to a power of two) but never more than
// maxSegTreeWidth, and never segments shorter than 32 iterations — a
// segment must amortize its buffer fill and combine column.
func DefaultSegIters(numIters, procs int) int {
	target := 8
	p := 1
	for p < procs {
		p <<= 1
	}
	if p > target {
		target = p
	}
	if target > maxSegTreeWidth {
		target = maxSegTreeWidth
	}
	segIters := (numIters + target - 1) / target
	if segIters < 32 {
		segIters = 32
	}
	return segIters
}

// BuildSegPlan analyzes the members (pattern.AnalyzeSegments) and builds
// the task list of distinct partial sums. members must be non-empty,
// share iteration geometry, and decompose into at most maxSegTreeWidth
// segments; segIters <= 0 picks DefaultSegIters for one processor.
func BuildSegPlan(members []*trace.Loop, segIters int) (*SegPlan, error) {
	return BuildSegPlanProcs(members, segIters, 1)
}

// BuildSegPlanProcs is BuildSegPlan with the analysis sweep spread over
// up to procs goroutines — the form the engine uses, so the inspection
// pass scales with the processors the execution will use anyway.
func BuildSegPlanProcs(members []*trace.Loop, segIters, procs int) (*SegPlan, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("reduction: BuildSegPlan needs at least one member")
	}
	leader := members[0]
	if segIters <= 0 {
		segIters = DefaultSegIters(leader.NumIters(), 1)
	}
	a, err := pattern.AnalyzeSegmentsProcs(members, segIters, procs)
	if err != nil {
		return nil, err
	}
	if a.Segments > maxSegTreeWidth {
		return nil, fmt.Errorf("reduction: %d segments exceed the combine width %d", a.Segments, maxSegTreeWidth)
	}
	p := &SegPlan{
		Analysis: a,
		members:  members,
		numElems: leader.NumElems,
		op:       leader.Op,
		taskOf:   make([][]int, a.Members),
	}
	offs, _ := leader.Flat()
	iters := leader.NumIters()
	// One task per (owner == member) cell, indexed for every member that
	// combines it.
	taskIdx := make(map[[2]int]int, a.Unique)
	for m := range members {
		p.taskOf[m] = make([]int, a.Segments)
		for s := 0; s < a.Segments; s++ {
			owner := a.OwnerOf[m][s]
			key := [2]int{owner, s}
			ti, ok := taskIdx[key]
			if !ok {
				iterLo := s * segIters
				iterHi := iterLo + segIters
				if iterHi > iters {
					iterHi = iters
				}
				p.tasks = append(p.tasks, planTask{
					seg:    s,
					owner:  owner,
					hash:   a.Hashes[owner][s],
					refLo:  int(offs[iterLo]),
					refHi:  int(offs[iterHi]),
					iterLo: iterLo,
					iterHi: iterHi,
				})
				ti = len(p.tasks) - 1
				taskIdx[key] = ti
			}
			p.taskOf[m][s] = ti
		}
	}
	return p, nil
}

// Members returns how many distinct loops the plan covers.
func (p *SegPlan) Members() int { return len(p.members) }

// CachedTasks reports how many of the plan's distinct partial sums the
// cache could serve, by hash probe alone — the optimistic reuse estimate
// the decision boundary weighs before committing to a simplified run.
// Run still verifies slot content against the submitted subscripts
// before trusting it.
func (p *SegPlan) CachedTasks(cache *SegCache) int {
	if cache == nil || !cache.Matches(p.members[0], p.Analysis.SegIters) {
		return 0
	}
	n := 0
	for ti := range p.tasks {
		t := &p.tasks[ti]
		slot := &cache.slots[t.seg]
		if slot.valid && slot.hash == t.hash {
			n++
		}
	}
	return n
}

// SegCache holds one pattern's cached segment partial sums between
// batches, keyed by segment position and verified by content before
// reuse. The engine hangs one off its decision-cache entry; the
// recalibration generation bump invalidates it wholesale (the entry's
// scheme decision changed, so the workload did too). Buffers are owned
// by the cache and never returned to a BufferPool: a pooled buffer
// could be recycled into another worker's scratch while a later batch
// still reads the cached sums.
type SegCache struct {
	numIters, numElems, segIters int
	op                           trace.Op
	slots                        []segSlot
}

// segSlot is one cached segment sum plus the subscript content it was
// computed from. refs aliases the owning loop's storage (loops are
// immutable once submitted); holding it keeps that trace alive, which
// SegCacheBytes accounts for when the engine caps cache size.
type segSlot struct {
	valid bool
	hash  uint64
	refs  []int32
	buf   []float64
}

// NewSegCache builds an empty cache for the loop's geometry under the
// given segment width.
func NewSegCache(l *trace.Loop, segIters int) *SegCache {
	segs := (l.NumIters() + segIters - 1) / segIters
	return &SegCache{
		numIters: l.NumIters(),
		numElems: l.NumElems,
		segIters: segIters,
		op:       l.Op,
		slots:    make([]segSlot, segs),
	}
}

// Matches reports whether the cache's geometry fits the loop under the
// given segment width — the precondition for attaching it to a Run.
func (c *SegCache) Matches(l *trace.Loop, segIters int) bool {
	return c != nil && c.numIters == l.NumIters() && c.numElems == l.NumElems &&
		c.segIters == segIters && c.op == l.Op
}

// SegCacheBytes estimates the resident footprint of a segment cache for
// a loop under the given width: the sum buffers plus the retained
// subscript content. The engine refuses to attach caches beyond its
// budget.
func SegCacheBytes(l *trace.Loop, segIters int) int {
	segs := (l.NumIters() + segIters - 1) / segIters
	return segs*l.NumElems*8 + l.TotalRefs()*4
}

// Run executes the plan on procs goroutines: distinct partial sums are
// accumulated in parallel (skipping any verified in cache), then every
// member's destination is combined from its parts in element blocks.
// dsts must hold one destination of numElems elements per member. cache
// may be nil; a cache whose geometry does not match is ignored. Run is
// not concurrency-safe with respect to the cache: the caller serializes
// cache-attached runs (the engine's per-entry claim does this).
func (p *SegPlan) Run(procs int, ex *Exec, cache *SegCache, dsts [][]float64) SegRunStats {
	checkProcs(procs)
	if len(dsts) != len(p.members) {
		panic(fmt.Sprintf("reduction: SegPlan.Run got %d destinations for %d members", len(dsts), len(p.members)))
	}
	leader := p.members[0]
	if cache != nil && !cache.Matches(leader, p.Analysis.SegIters) {
		cache = nil
	}
	fast := ex.fastAdd(leader)
	neutral := p.op.Neutral()
	var st SegRunStats

	// Probe: serve tasks whose cached content verifies, then pick the
	// member-0 task of every unserved segment to refresh its slot.
	if cache != nil {
		for ti := range p.tasks {
			t := &p.tasks[ti]
			slot := &cache.slots[t.seg]
			if !slot.valid || slot.hash != t.hash {
				continue
			}
			_, refs := p.members[t.owner].Flat()
			if pattern.SameRefs(slot.refs, refs[t.refLo:t.refHi]) {
				t.buf = slot.buf
				t.cached = true
				st.Reused++
			}
		}
		for ti := range p.tasks {
			t := &p.tasks[ti]
			if t.cached || t.owner != 0 {
				continue
			}
			if slotServed(p.tasks, cache, t.seg) {
				continue
			}
			slot := &cache.slots[t.seg]
			if cap(slot.buf) < p.numElems {
				slot.buf = make([]float64, p.numElems)
			}
			t.buf = slot.buf[:p.numElems]
			t.intoSlot = true
		}
	}

	pool := ex.pool()
	for ti := range p.tasks {
		t := &p.tasks[ti]
		if t.buf == nil {
			t.buf = pool.Float64(p.numElems)
			t.pooled = true
		}
	}

	// Accumulation: every uncached task folds its segment's iteration
	// range in iteration order, exactly as the naive reference does.
	parallelFor(procs, func(pr int) {
		for ti := pr; ti < len(p.tasks); ti += procs {
			t := &p.tasks[ti]
			if t.cached {
				continue
			}
			fill(t.buf, neutral)
			owner := p.members[t.owner]
			if fast {
				offs, refs := owner.Flat()
				accumFlatAdd(t.buf, offs, refs, t.iterLo, t.iterHi)
			} else {
				naiveAccumFlat(t.buf, owner, t.iterLo, t.iterHi)
			}
		}
	})
	for ti := range p.tasks {
		t := &p.tasks[ti]
		if t.cached {
			continue
		}
		st.Computed++
		if t.intoSlot {
			slot := &cache.slots[t.seg]
			_, refs := p.members[t.owner].Flat()
			slot.hash = t.hash
			slot.refs = refs[t.refLo:t.refHi]
			slot.valid = true
		}
	}

	// Combine: per member, fold the segment parts through the pairwise
	// tree in element blocks (each processor owns a block, so members
	// share the parts while writing disjoint destinations).
	parts := make([][][]float64, len(p.members))
	for m := range p.members {
		parts[m] = make([][]float64, p.Analysis.Segments)
		for s := 0; s < p.Analysis.Segments; s++ {
			parts[m][s] = p.tasks[p.taskOf[m][s]].buf
		}
	}
	parallelFor(procs, func(pr int) {
		lo, hi := blockBounds(p.numElems, procs, pr)
		for m := range parts {
			if fast {
				combineTreeAdd(dsts[m], parts[m], lo, hi)
			} else {
				combineTreeOp(dsts[m], parts[m], lo, hi, p.op)
			}
		}
	})

	for ti := range p.tasks {
		t := &p.tasks[ti]
		if t.pooled {
			pool.PutFloat64(t.buf)
		}
		t.buf = nil
		t.cached, t.intoSlot, t.pooled = false, false, false
	}
	return st
}

// slotServed reports whether any task of the given segment was served
// from the cache — its slot then keeps the content that matched.
func slotServed(tasks []planTask, cache *SegCache, seg int) bool {
	for i := range tasks {
		if tasks[i].seg == seg && tasks[i].cached {
			return true
		}
	}
	return false
}
