package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// LinkedList is the paper's "replicated buffer with links" (ll) scheme.
// Like rep, every processor owns a full-size private buffer, but the
// buffer is initialized lazily: the first time a processor touches an
// element it initializes that single entry and threads it onto a private
// linked list of touched elements. The merge phase then walks only the
// lists, so Init disappears and Merge is proportional to the number of
// elements each processor actually touched instead of the array size.
//
// ll wins over rep when the reference pattern is sparse enough that most
// of rep's Init/Merge sweeps are wasted, but each access pays a flag check
// and the merge pays pointer-chasing locality.
type LinkedList struct{}

// Name returns "ll".
func (LinkedList) Name() string { return "ll" }

// Run executes the loop with lazily-initialized replicated buffers.
func (LinkedList) Run(l *trace.Loop, procs int) []float64 {
	checkProcs(procs)
	neutral := l.Op.Neutral()

	type buffer struct {
		vals []float64
		next []int32 // link to previously touched element; -2 = untouched
		head int32
	}
	bufs := make([]buffer, procs)

	parallelFor(procs, func(p int) {
		b := buffer{
			vals: make([]float64, l.NumElems),
			next: make([]int32, l.NumElems),
			head: -1,
		}
		for i := range b.next {
			b.next[i] = -2
		}
		lo, hi := blockBounds(l.NumIters(), procs, p)
		for i := lo; i < hi; i++ {
			for k, idx := range l.Iter(i) {
				if b.next[idx] == -2 {
					b.vals[idx] = neutral
					b.next[idx] = b.head
					b.head = idx
				}
				b.vals[idx] = l.Op.Apply(b.vals[idx], trace.Value(i, k, idx))
			}
		}
		bufs[p] = b
	})

	// Merge: walk each processor's touched list. Serialized per processor
	// list but applied concurrently over disjoint output partitions would
	// require per-element locks; instead processors merge their own lists
	// into the shared array one list at a time (lists are short when the
	// pattern is sparse — that is ll's use case). To stay deterministic
	// and race-free we merge sequentially here; Simulate charges the
	// parallel cost model described in the paper.
	out := make([]float64, l.NumElems)
	for i := range out {
		out[i] = neutral
	}
	for p := 0; p < procs; p++ {
		b := bufs[p]
		for e := b.head; e >= 0; e = b.next[e] {
			out[e] = l.Op.Apply(out[e], b.vals[e])
		}
	}
	return out
}

// Simulate charges ll's traffic: no Init phase, a flag check + possible
// lazy initialization per access during Loop, and a Merge that walks each
// processor's touched-element list with poor spatial locality.
//
// First-touch positions and touched lists are precomputed so the phase
// bodies are idempotent (the virtual machine may replay a phase to
// collect sharing information).
func (LinkedList) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	var b stats.Breakdown
	refStart := refOffsets(l, procs)

	// Precompute, per processor: the touched-element list in first-touch
	// order and a parallel-to-refs bitmap of which reference positions are
	// first touches.
	touched := make([][]int32, procs)
	firstTouch := make([][]bool, procs)
	for p := 0; p < procs; p++ {
		seen := make(map[int32]struct{})
		lo, hi := blockBounds(l.NumIters(), procs, p)
		var ft []bool
		for i := lo; i < hi; i++ {
			for _, idx := range l.Iter(i) {
				if _, ok := seen[idx]; !ok {
					seen[idx] = struct{}{}
					touched[p] = append(touched[p], idx)
					ft = append(ft, true)
				} else {
					ft = append(ft, false)
				}
			}
		}
		firstTouch[p] = ft
	}

	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		arr := vtime.PrivateBase(p) + privArray
		flags := vtime.PrivateBase(p) + privFlags
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		local := 0
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			loadIterRefs(cpu, pos, len(refs))
			pos += len(refs)
			for _, idx := range refs {
				// Flag check: one load of the link entry.
				cpu.Load(flags + int64(idx)*4)
				if firstTouch[p][local] {
					// Lazy init: write value + link.
					cpu.Store(arr + int64(idx)*8)
					cpu.Store(flags + int64(idx)*4)
					cpu.Compute(2)
				}
				local++
				addr := arr + int64(idx)*8
				cpu.Load(addr)
				cpu.Compute(1)
				cpu.Store(addr)
			}
		}
	})

	// Merge: processors apply their own lists to the shared array. The
	// lists are in first-touch order (poor locality on the shared side);
	// updates to the shared array from different processors may collide,
	// which the sharing tracker charges as coherence misses.
	b.Merge = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		arr := vtime.PrivateBase(p) + privArray
		flags := vtime.PrivateBase(p) + privFlags
		for _, e := range touched[p] {
			cpu.Load(flags + int64(e)*4) // follow the link
			cpu.Load(arr + int64(e)*8)   // private value
			cpu.Load(sharedWBase + int64(e)*8)
			cpu.Compute(1)
			cpu.Store(sharedWBase + int64(e)*8)
		}
	})
	return b
}
