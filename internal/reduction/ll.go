package reduction

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// LinkedList is the paper's "replicated buffer with links" (ll) scheme.
// Like rep, every processor owns a full-size private buffer, but the
// buffer is initialized lazily: the first time a processor touches an
// element it initializes that single entry and threads it onto a private
// linked list of touched elements. The merge phase then walks only the
// lists, so Init disappears and Merge is proportional to the number of
// elements each processor actually touched instead of the array size.
//
// ll wins over rep when the reference pattern is sparse enough that most
// of rep's Init/Merge sweeps are wasted, but each access pays a flag check
// and the merge pays pointer-chasing locality.
type LinkedList struct{}

// Name returns "ll".
func (LinkedList) Name() string { return "ll" }

// Run executes the loop with lazily-initialized replicated buffers.
func (s LinkedList) Run(l *trace.Loop, procs int) []float64 {
	return s.RunInto(l, procs, nil, nil)
}

// RunInto executes the loop with lazily-initialized replicated buffers
// whose value and link arrays come from the context's pool. OpAdd loops
// run the unrolled lazy-accumulation kernel; other operators take the
// retained scalar reference (naive.go).
func (LinkedList) RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64 {
	checkProcs(procs)
	neutral := l.Op.Neutral()
	pool := ex.pool()
	fast := ex.fastAdd(l)
	offsets, refs := l.Flat()

	vals := ex.float64Slots(procs)
	nexts := ex.int32Slots(procs)
	heads := pool.Int32(procs)
	defer pool.PutInt32(heads)

	parallelFor(procs, ex.timedBody(procs, func(p int) {
		v := pool.Float64(l.NumElems)
		next := pool.Int32(l.NumElems)
		fillInt32(next, -2) // -2 = untouched
		head := int32(-1)
		lo, hi := ex.iterBlock(l.NumIters(), procs, p)
		if fast {
			head = accumLazyAdd(v, next, head, offsets, refs, lo, hi)
		} else {
			head = naiveAccumLazy(v, next, head, l, lo, hi)
		}
		vals[p], nexts[p], heads[p] = v, next, head
	}))

	// Merge: walk each processor's touched list. Serialized per processor
	// list but applied concurrently over disjoint output partitions would
	// require per-element locks; instead processors merge their own lists
	// into the shared array one list at a time (lists are short when the
	// pattern is sparse — that is ll's use case). To stay deterministic
	// and race-free we merge sequentially here; Simulate charges the
	// parallel cost model described in the paper.
	out, fresh := ensureOut(out, l.NumElems)
	initNeutral(out, neutral, fresh)
	// Dense references defeat the list walk's premise: with an eighth or
	// more of the array touched per processor, chasing the first-touch
	// list costs one random miss per element, while a sequential sweep of
	// the link array streams at cache-line speed. The sweep applies the
	// same one-add-per-touched-element in the same processor order, so
	// the result is bit-identical either way.
	denseMerge := fast && len(refs)/procs >= l.NumElems/8
	for p := 0; p < procs; p++ {
		v, next := vals[p], nexts[p]
		switch {
		case denseMerge:
			mergeDenseAdd(out, v, next)
		case fast:
			mergeListAdd(out, v, next, heads[p])
		default:
			naiveMergeList(out, v, next, heads[p], l.Op)
		}
	}
	for p := 0; p < procs; p++ {
		pool.PutFloat64(vals[p])
		pool.PutInt32(nexts[p])
	}
	ex.fanOut(out)
	return out
}

// Simulate charges ll's traffic: no Init phase, a flag check + possible
// lazy initialization per access during Loop, and a Merge that walks each
// processor's touched-element list with poor spatial locality.
//
// First-touch positions and touched lists are precomputed so the phase
// bodies are idempotent (the virtual machine may replay a phase to
// collect sharing information).
func (LinkedList) Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown {
	procs := m.Procs()
	var b stats.Breakdown
	refStart := refOffsets(l, procs)

	// Precompute, per processor: the touched-element list in first-touch
	// order and a parallel-to-refs bitmap of which reference positions are
	// first touches.
	touched := make([][]int32, procs)
	firstTouch := make([][]bool, procs)
	for p := 0; p < procs; p++ {
		seen := make(map[int32]struct{})
		lo, hi := blockBounds(l.NumIters(), procs, p)
		var ft []bool
		for i := lo; i < hi; i++ {
			for _, idx := range l.Iter(i) {
				if _, ok := seen[idx]; !ok {
					seen[idx] = struct{}{}
					touched[p] = append(touched[p], idx)
					ft = append(ft, true)
				} else {
					ft = append(ft, false)
				}
			}
		}
		firstTouch[p] = ft
	}

	b.Loop = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		arr := vtime.PrivateBase(p) + privArray
		flags := vtime.PrivateBase(p) + privFlags
		lo, hi := blockBounds(l.NumIters(), procs, p)
		pos := refStart[p]
		local := 0
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			loadIterRefs(cpu, pos, len(refs))
			pos += len(refs)
			for _, idx := range refs {
				// Flag check: one load of the link entry.
				cpu.Load(flags + int64(idx)*4)
				if firstTouch[p][local] {
					// Lazy init: write value + link.
					cpu.Store(arr + int64(idx)*8)
					cpu.Store(flags + int64(idx)*4)
					cpu.Compute(2)
				}
				local++
				addr := arr + int64(idx)*8
				cpu.Load(addr)
				cpu.Compute(1)
				cpu.Store(addr)
			}
		}
	})

	// Merge: processors apply their own lists to the shared array. The
	// lists are in first-touch order (poor locality on the shared side);
	// updates to the shared array from different processors may collide,
	// which the sharing tracker charges as coherence misses.
	b.Merge = m.Parallel(func(cpu *vtime.CPU) {
		p := cpu.ID()
		arr := vtime.PrivateBase(p) + privArray
		flags := vtime.PrivateBase(p) + privFlags
		for _, e := range touched[p] {
			cpu.Load(flags + int64(e)*4) // follow the link
			cpu.Load(arr + int64(e)*8)   // private value
			cpu.Load(sharedWBase + int64(e)*8)
			cpu.Compute(1)
			cpu.Store(sharedWBase + int64(e)*8)
		}
	})
	return b
}
