// Package reduction implements the paper's library of parallel reduction
// algorithms (Section 4):
//
//   - rep:  private accumulation and global update in replicated private
//     arrays
//   - ll:   replicated buffer with links (lazy initialization, merge only
//     touched elements)
//   - sel:  selective privatization (only cross-processor shared elements
//     are privatized; exclusive elements are written in place)
//   - lw:   local write — an "owner computes" method with iteration
//     replication and no merge phase
//   - hash: sparse reductions with privatization in hash tables
//
// Every scheme offers two executions over the same trace.Loop:
//
//  1. Run: a real parallel execution on goroutines whose result must match
//     the sequential reference (tested to tolerance, since parallel
//     schemes reassociate the reduction operator), and
//  2. Simulate: a deterministic virtual-time replay on a vtime.Machine
//     that charges the memory traffic and computation the scheme performs
//     and returns the Init/Loop/Merge breakdown of Figure 6.
package reduction

import (
	"fmt"
	"sync"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Scheme is one parallel reduction algorithm.
type Scheme interface {
	// Name returns the paper's abbreviation: rep, ll, sel, lw or hash.
	Name() string
	// Run executes the loop in parallel on procs goroutines and returns
	// the reduction array. It is RunInto with a fresh context: every
	// privatization buffer is allocated cold.
	Run(l *trace.Loop, procs int) []float64
	// RunInto executes the loop in parallel on procs goroutines using the
	// execution context's pooled buffers, feedback schedule and phase
	// timers, writing the reduction array into out when its capacity
	// suffices. ex and out may both be nil, which degenerates to Run.
	RunInto(l *trace.Loop, procs int, ex *Exec, out []float64) []float64
	// Simulate replays the scheme's work on the virtual machine and
	// returns the phase breakdown in cycles. The machine's clock advances.
	Simulate(l *trace.Loop, m *vtime.Machine) stats.Breakdown
}

// All returns every scheme in the library, in the paper's order.
func All() []Scheme {
	return []Scheme{Rep{}, LinkedList{}, Selective{}, LocalWrite{}, Hash{}}
}

// ByName returns the scheme with the given paper abbreviation.
func ByName(name string) (Scheme, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("reduction: unknown scheme %q", name)
}

// Names returns the abbreviations of all schemes in library order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name()
	}
	return names
}

// Abstract address-space layout used by Simulate. The shared reduction
// array w, the shared subscript stream x, and each processor's private
// structures occupy disjoint regions (see vtime.PrivateBase). Bases carry
// distinct line-granularity offsets so different arrays do not all alias
// cache set 0 the way raw power-of-two bases would.
const (
	sharedWBase     = int64(1)<<20 + 7*64  // shared reduction array
	sharedXBase     = int64(1)<<32 + 37*64 // shared subscript/index stream (read-only)
	sharedRemapBase = int64(3)<<30 + 53*64 // shared remap table (sel)
	privArray       = int64(0)             // offset of private replicated array
	privFlags       = int64(1)<<34 + 17*64 // offset of private init-flag / link array
	privTable       = int64(2)<<34 + 29*64 // offset of private hash table / remap
)

// blockBounds returns the [lo, hi) iteration range of block p when n
// iterations are block-scheduled over procs processors, matching the
// paper's static block scheduling (Figure 5 splits "0..Nodes" this way).
func blockBounds(n, procs, p int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// owner returns the processor that owns element idx under a block
// partition of numElems elements over procs processors (the partition the
// local-write scheme uses).
func owner(idx int32, numElems, procs int) int {
	lo, hi := 0, procs
	for lo < hi {
		mid := (lo + hi) / 2
		elemLo, elemHi := blockBounds(numElems, procs, mid)
		switch {
		case int(idx) < elemLo:
			hi = mid
		case int(idx) >= elemHi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return lo
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parallelFor runs body(p) for p in [0, procs) on procs goroutines and
// waits for all of them.
func parallelFor(procs int, body func(p int)) {
	var wg sync.WaitGroup
	wg.Add(procs)
	for p := 0; p < procs; p++ {
		go func(p int) {
			defer wg.Done()
			body(p)
		}(p)
	}
	wg.Wait()
}

// loadIterRefs charges the reads of iteration i's subscripts from the
// shared index stream. refPos is the running global reference position so
// that consecutive iterations stream through the same cache lines; the
// stream is sequential, so its misses overlap.
func loadIterRefs(cpu *vtime.CPU, refPos int, n int) {
	for k := 0; k < n; k++ {
		cpu.StreamLoad(sharedXBase + int64(refPos+k)*4)
	}
}

// amortize scales an inspector-phase cost by the loop's invocation count:
// the inspector's result depends only on the access pattern, so a program
// invoking the loop K times pays it once, i.e. 1/K per invocation.
func amortize(cost float64, l *trace.Loop) float64 {
	return cost / float64(l.InvocationCount())
}

// checkProcs panics on a non-positive processor count; all schemes share
// this argument contract.
func checkProcs(procs int) {
	if procs < 1 {
		panic(fmt.Sprintf("reduction: invalid processor count %d", procs))
	}
}
