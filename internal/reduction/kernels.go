package reduction

import "repro/internal/trace"

// This file holds the scalar-optimized hot kernels behind every scheme's
// RunInto fast path. The paper's applications reduce with floating-point
// addition exclusively (trace.Op documents this), so the specialized
// kernels cover trace.OpAdd; the other operators run the retained scalar
// references in naive.go. Each kernel applies contributions in exactly
// the order its naive counterpart does, so fast and naive executions of
// the same loop are bit-for-bit identical (kernels_test.go proves it
// across unroll remainders) — unrolling only widens the independent work
// between the dependent gather updates.
//
// The loops are written so the compiler's prove pass eliminates every
// bounds check it possibly can (idioms verified against go1.24's prove
// pass, which is narrower than one might hope):
//
//   - unrolled bodies index a shrinking slice by constants (rs[0..3],
//     then rs = rs[4:]) guarded by len(rs) >= 4 — the one unroll shape
//     prove reliably discharges; `k+4 <= len(rs)` headers do not work,
//   - adjacent offset pairs read backward (offs[ii-1], offs[ii] under
//     ii < len(offs)) — the forward pair (offs[ii+1] under ii+1 < len)
//     defeats prove,
//   - pairwise combines test both lengths in the loop condition and
//     guard the remainder explicitly,
//   - trace.Value calls (pure ALU, independent across the unroll lanes)
//     are issued before the dependent w[idx] updates — the "split
//     index/value passes" idiom: the value hashes pipeline while the
//     gathers wait on cache.
//
// What cannot be eliminated are the data-dependent accesses themselves:
// w[idx] with a runtime subscript always carries one check, because the
// proof that refs are in range lives in trace.Loop validation, outside
// the function. Those lines carry a //bce:gather marker (//bce:slice for
// the per-block sub-slicing); scripts/bce_check.sh compiles this package
// with -d=ssa/check_bce and fails if a bounds check appears on any
// unmarked line of this file, so the idioms cannot silently rot.

// combineAdd folds src into dst pairwise: dst[i] += src[i] over the
// common prefix. The 8-way unrolled body is check-free because the loop
// condition tests both lengths; every lane is an independent add, so the
// FP units pipeline instead of serializing on a procs-deep accumulate
// chain the way a per-element combine sweep would.
func combineAdd(dst, src []float64) {
	for len(dst) >= 8 && len(src) >= 8 {
		dst[0] += src[0]
		dst[1] += src[1]
		dst[2] += src[2]
		dst[3] += src[3]
		dst[4] += src[4]
		dst[5] += src[5]
		dst[6] += src[6]
		dst[7] += src[7]
		dst = dst[8:]
		src = src[8:]
	}
	for i := range dst {
		if i < len(src) {
			dst[i] += src[i]
		}
	}
}

// accumFlatAdd is rep's accumulation kernel: it folds iterations
// [iterLo, iterHi) of the flattened (offsets, refs) stream into the
// private array w.
func accumFlatAdd(w []float64, offsets, refs []int32, iterLo, iterHi int) {
	if iterLo >= iterHi {
		return
	}
	offs := offsets[iterLo : iterHi+1] //bce:slice
	for ii := 1; ii < len(offs); ii++ {
		o0, o1 := offs[ii-1], offs[ii]
		rs := refs[o0:o1] //bce:slice
		i := iterLo + ii - 1
		k := 0
		for ; len(rs) >= 4; k += 4 {
			i0, i1, i2, i3 := rs[0], rs[1], rs[2], rs[3]
			v0 := trace.Value(i, k, i0)
			v1 := trace.Value(i, k+1, i1)
			v2 := trace.Value(i, k+2, i2)
			v3 := trace.Value(i, k+3, i3)
			w[i0] += v0 //bce:gather
			w[i1] += v1 //bce:gather
			w[i2] += v2 //bce:gather
			w[i3] += v3 //bce:gather
			rs = rs[4:]
		}
		for j, idx := range rs {
			w[idx] += trace.Value(i, k+j, idx) //bce:gather
		}
	}
}

// accumLazyAdd is ll's accumulation kernel: like accumFlatAdd, but every
// first touch of an element initializes its value slot and threads it
// onto the private linked list (next[idx] == -2 means untouched). It
// returns the new list head.
func accumLazyAdd(v []float64, next []int32, head int32, offsets, refs []int32, iterLo, iterHi int) int32 {
	if iterLo >= iterHi {
		return head
	}
	offs := offsets[iterLo : iterHi+1] //bce:slice
	for ii := 1; ii < len(offs); ii++ {
		o0, o1 := offs[ii-1], offs[ii]
		rs := refs[o0:o1] //bce:slice
		i := iterLo + ii - 1
		k := 0
		for ; len(rs) >= 4; k += 4 {
			i0, i1, i2, i3 := rs[0], rs[1], rs[2], rs[3]
			v0 := trace.Value(i, k, i0)
			v1 := trace.Value(i, k+1, i1)
			v2 := trace.Value(i, k+2, i2)
			v3 := trace.Value(i, k+3, i3)
			if next[i0] == -2 { //bce:gather
				v[i0] = 0       //bce:gather
				next[i0] = head //bce:gather
				head = i0
			}
			v[i0] += v0         //bce:gather
			if next[i1] == -2 { //bce:gather
				v[i1] = 0       //bce:gather
				next[i1] = head //bce:gather
				head = i1
			}
			v[i1] += v1         //bce:gather
			if next[i2] == -2 { //bce:gather
				v[i2] = 0       //bce:gather
				next[i2] = head //bce:gather
				head = i2
			}
			v[i2] += v2         //bce:gather
			if next[i3] == -2 { //bce:gather
				v[i3] = 0       //bce:gather
				next[i3] = head //bce:gather
				head = i3
			}
			v[i3] += v3 //bce:gather
			rs = rs[4:]
		}
		for j, idx := range rs {
			val := trace.Value(i, k+j, idx)
			if next[idx] == -2 { //bce:gather
				v[idx] = 0       //bce:gather
				next[idx] = head //bce:gather
				head = idx
			}
			v[idx] += val //bce:gather
		}
	}
	return head
}

// mergeListAdd is ll's merge kernel: it walks one processor's
// first-touch list and folds its private values into out.
func mergeListAdd(out, v []float64, next []int32, head int32) {
	for e := head; e >= 0; e = next[e] { //bce:gather
		out[e] += v[e] //bce:gather
	}
}

// mergeDenseAdd is ll's merge kernel for the dense regime: when a
// processor touched a large fraction of the array, walking the
// first-touch list chases one random pointer per touched element, while
// a linear sweep over the link array streams sequentially and lets the
// branch predictor settle. The result is bit-identical to mergeListAdd
// — each touched element folds into out exactly once, and element order
// never mixes contributions of different elements.
func mergeDenseAdd(out, v []float64, next []int32) {
	v = v[:len(next)]     //bce:slice
	out = out[:len(next)] //bce:slice
	for e, nx := range next {
		if nx != -2 {
			out[e] += v[e]
		}
	}
}

// accumSelAdd is sel's accumulation kernel: conflicting elements
// (remap[idx] >= 0) fold into the compact private array, exclusive
// elements update the shared out in place.
func accumSelAdd(out, compact []float64, remap, offsets, refs []int32, iterLo, iterHi int) {
	if iterLo >= iterHi {
		return
	}
	offs := offsets[iterLo : iterHi+1] //bce:slice
	for ii := 1; ii < len(offs); ii++ {
		o0, o1 := offs[ii-1], offs[ii]
		rs := refs[o0:o1] //bce:slice
		i := iterLo + ii - 1
		k := 0
		for ; len(rs) >= 4; k += 4 {
			i0, i1, i2, i3 := rs[0], rs[1], rs[2], rs[3]
			v0 := trace.Value(i, k, i0)
			v1 := trace.Value(i, k+1, i1)
			v2 := trace.Value(i, k+2, i2)
			v3 := trace.Value(i, k+3, i3)
			if c := remap[i0]; c >= 0 { //bce:gather
				compact[c] += v0 //bce:gather
			} else {
				out[i0] += v0 //bce:gather
			}
			if c := remap[i1]; c >= 0 { //bce:gather
				compact[c] += v1 //bce:gather
			} else {
				out[i1] += v1 //bce:gather
			}
			if c := remap[i2]; c >= 0 { //bce:gather
				compact[c] += v2 //bce:gather
			} else {
				out[i2] += v2 //bce:gather
			}
			if c := remap[i3]; c >= 0 { //bce:gather
				compact[c] += v3 //bce:gather
			} else {
				out[i3] += v3 //bce:gather
			}
			rs = rs[4:]
		}
		for j, idx := range rs {
			val := trace.Value(i, k+j, idx)
			if c := remap[idx]; c >= 0 { //bce:gather
				compact[c] += val //bce:gather
			} else {
				out[idx] += val //bce:gather
			}
		}
	}
}

// accumOwnedAdd is lw's accumulation kernel: it executes the processor's
// replicated iteration list and applies only the updates whose element
// falls inside the owned block [elemLo, elemHi).
func accumOwnedAdd(out []float64, elemLo, elemHi int32, iters, offsets, refs []int32) {
	for _, it := range iters {
		i := int(it)
		o0 := offsets[i]   //bce:gather
		o1 := offsets[i+1] //bce:gather
		rs := refs[o0:o1]  //bce:slice
		k := 0
		for ; len(rs) >= 4; k += 4 {
			i0, i1, i2, i3 := rs[0], rs[1], rs[2], rs[3]
			if i0 >= elemLo && i0 < elemHi {
				out[i0] += trace.Value(i, k, i0) //bce:gather
			}
			if i1 >= elemLo && i1 < elemHi {
				out[i1] += trace.Value(i, k+1, i1) //bce:gather
			}
			if i2 >= elemLo && i2 < elemHi {
				out[i2] += trace.Value(i, k+2, i2) //bce:gather
			}
			if i3 >= elemLo && i3 < elemHi {
				out[i3] += trace.Value(i, k+3, i3) //bce:gather
			}
			rs = rs[4:]
		}
		for j, idx := range rs {
			if idx >= elemLo && idx < elemHi {
				out[idx] += trace.Value(i, k+j, idx) //bce:gather
			}
		}
	}
}

// accumHashAdd is hash's accumulation kernel: the open-addressing update
// loop with the probe sequence inlined (same hash, same linear probing,
// same insertion order as hashTable.update, so the resulting table layout
// is bit-identical to the naive path's).
func (t *hashTable) accumHashAdd(offsets, refs []int32, iterLo, iterHi int) {
	if iterLo >= iterHi {
		return
	}
	keys, vals, mask := t.keys, t.vals, t.mask
	inserted := 0
	offs := offsets[iterLo : iterHi+1] //bce:slice
	for ii := 1; ii < len(offs); ii++ {
		o0, o1 := offs[ii-1], offs[ii]
		rs := refs[o0:o1] //bce:slice
		i := iterLo + ii - 1
		for k, idx := range rs {
			val := trace.Value(i, k, idx)
			s := hashKey(idx) & mask
			for keys[s] != -1 && keys[s] != idx { //bce:gather
				s = (s + 1) & mask
			}
			if keys[s] == -1 { //bce:gather
				keys[s] = idx //bce:gather
				vals[s] = 0   //bce:gather
				inserted++
			}
			vals[s] += val //bce:gather
		}
	}
	t.n += inserted
}

// mergeTableAdd is hash's merge kernel: it walks one table's entries and
// folds the occupied accumulators into out.
func mergeTableAdd(out []float64, keys []int32, vals []float64) {
	for s, key := range keys {
		if key >= 0 && s < len(vals) {
			out[key] += vals[s] //bce:gather
		}
	}
}
