package reduction

import (
	"testing"

	"repro/internal/trace"
)

// benchProcs matches the paper's 8-processor evaluation machine (and the
// engine benchmark suite's processor count, so results are comparable).
const benchProcs = 8

// kernelWorkloads are the microbenchmark iteration spaces: dense vs
// sparse reference patterns at large and small array sizes. The dense
// large shape is the kernel-bound regime the optimized loops target; the
// sparse shape stresses the lazy/compact paths (ll, sel, hash); the small
// shape measures per-call overhead where the unroll bodies barely run.
var kernelWorkloads = []struct {
	name string
	loop func() *trace.Loop
}{
	{"dense-large", func() *trace.Loop { return randomLoop(65536, 20000, 4, 1) }},
	{"sparse-large", func() *trace.Loop { return randomLoop(65536, 3000, 2, 2) }},
	{"dense-small", func() *trace.Loop { return randomLoop(2048, 8000, 4, 3) }},
}

// BenchmarkKernel measures every scheme's full RunInto on each workload,
// pooled (reused Exec, the engine's steady state) and cold (nil Exec,
// fresh allocations) for the dense-large shape. scripts/bench_engine.sh
// records these into BENCH_engine.json, so the normalized regression gate
// covers each kernel individually.
func BenchmarkKernel(b *testing.B) {
	for _, s := range kernelSchemes {
		for _, w := range kernelWorkloads {
			l := w.loop()
			b.Run(s.Name()+"/pooled-"+w.name, func(b *testing.B) {
				ex := &Exec{Pool: NewBufferPool()}
				var out []float64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = s.RunInto(l, benchProcs, ex, out)
				}
			})
		}
		l := kernelWorkloads[0].loop()
		b.Run(s.Name()+"/cold-dense-large", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.Run(l, benchProcs)
			}
		})
	}
}

// BenchmarkKernelNaive runs the retained scalar reference on the
// dense-large shape, pooled — the direct before/after comparison for the
// optimized kernels (same orchestration, scalar inner loops).
func BenchmarkKernelNaive(b *testing.B) {
	for _, s := range kernelSchemes {
		l := kernelWorkloads[0].loop()
		b.Run(s.Name()+"/pooled-dense-large", func(b *testing.B) {
			ex := &Exec{Pool: NewBufferPool(), naive: true}
			var out []float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = s.RunInto(l, benchProcs, ex, out)
			}
		})
	}
}
