// Package simarch defines the modeled CC-NUMA architecture of the paper's
// Section 6.1 (Table 1): per-node processor, two-level write-back cache
// hierarchy, a slice of the shared memory with its directory controller,
// and a DASH-style network with local and 2-hop remote latencies. The
// directory controller carries the PCLR extensions: a double-precision
// floating-point add unit clocked at one third of the processor frequency,
// fully pipelined (one addition every 3 processor cycles, 6-cycle
// latency), in both a hardwired (Hw) and a programmable FLASH/MAGIC-style
// (Flex) implementation.
package simarch

import (
	"fmt"

	"repro/internal/stats"
)

// Controller selects the directory-controller implementation for PCLR.
type Controller int

const (
	// Hardwired is the Hw configuration: dedicated hardware performs the
	// PCLR protocol actions.
	Hardwired Controller = iota
	// Programmable is the Flex configuration: a programmable controller
	// (like the FLASH MAGIC micro-controller) runs protocol handlers in
	// software, adding per-transaction occupancy.
	Programmable
)

// String names the controller configuration as the paper's figures do.
func (c Controller) String() string {
	switch c {
	case Hardwired:
		return "Hw"
	case Programmable:
		return "Flex"
	default:
		return fmt.Sprintf("Controller(%d)", int(c))
	}
}

// Config is the modeled machine. All latencies are in processor cycles and
// mirror Table 1.
type Config struct {
	// Nodes is the processor/node count (up to 16 in the paper).
	Nodes int

	// L1Bytes/L1Assoc and L2Bytes/L2Assoc give the cache geometry
	// (32 KB 2-way and 512 KB 4-way); LineBytes is 64 at both levels.
	L1Bytes, L1Assoc int
	L2Bytes, L2Assoc int
	LineBytes        int

	// L1HitCycles and L2HitCycles are hit latencies (2 and 10).
	L1HitCycles, L2HitCycles float64
	// LocalMemCycles is the contention-free round trip to local memory
	// (104); RemoteMemCycles the 2-hop round trip (297).
	LocalMemCycles, RemoteMemCycles float64

	// CPI charges non-memory instructions (4-issue dynamic superscalar;
	// sustained non-memory IPC ~2 on these codes).
	CPI float64

	// StreamOverlap is the miss overlap factor for sequential sweeps
	// (8 pending loads / 16 pending stores in Table 1).
	StreamOverlap float64

	// DirClockDivisor expresses that the directory controller and its FP
	// unit run at 1/3 of the processor clock.
	DirClockDivisor float64
	// FPAddCyclesDir is the FP adder's initiation interval in directory
	// cycles (fully pipelined: 1); FPAddLatencyDir its latency in
	// directory cycles (2).
	FPAddCyclesDir, FPAddLatencyDir float64

	// DirOccupancyCycles is the processor-cycle occupancy of the
	// hardwired controller per protocol transaction, excluding FP work.
	DirOccupancyCycles float64
	// FlexOccupancyFactor multiplies all directory occupancy when the
	// controller is programmable (software handlers).
	FlexOccupancyFactor float64

	// MemBankOccupancy is the occupancy of a node's memory bank per line
	// access (read or write-back), modeling contention at the memory.
	MemBankOccupancy float64
}

// DefaultConfig returns the Table 1 machine with n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:   n,
		L1Bytes: 32 << 10, L1Assoc: 2,
		L2Bytes: 512 << 10, L2Assoc: 4,
		LineBytes:   64,
		L1HitCycles: 2, L2HitCycles: 10,
		LocalMemCycles: 104, RemoteMemCycles: 297,
		CPI:                 0.5,
		StreamOverlap:       8,
		DirClockDivisor:     3,
		FPAddCyclesDir:      1,
		FPAddLatencyDir:     2,
		DirOccupancyCycles:  18,
		FlexOccupancyFactor: 1.8,
		MemBankOccupancy:    12,
	}
}

// LineElems returns how many 8-byte reduction elements fit a cache line.
func (c Config) LineElems() int { return c.LineBytes / 8 }

// CombineOccupancy returns the processor-cycle occupancy at a directory
// for combining one displaced reduction line (all LineElems elements
// through the FP add pipeline, plus the controller's protocol handling).
func (c Config) CombineOccupancy(ctrl Controller) float64 {
	// The pipelined adder starts one element every FPAddCyclesDir
	// directory cycles; the controller adds fixed protocol occupancy.
	fp := float64(c.LineElems()) * c.FPAddCyclesDir * c.DirClockDivisor
	occ := c.DirOccupancyCycles + fp
	if ctrl == Programmable {
		occ *= c.FlexOccupancyFactor
	}
	return occ
}

// FormatTable1 renders the architectural parameters the way the paper's
// Table 1 presents them.
func (c Config) FormatTable1() string {
	rows := [][]string{
		{"Processor", fmt.Sprintf("4-issue dynamic (CPI %.2g non-memory), %d nodes", c.CPI, c.Nodes)},
		{"L1 cache", fmt.Sprintf("%d KB, %d-way, %d B lines, %.0f-cycle hit", c.L1Bytes>>10, c.L1Assoc, c.LineBytes, c.L1HitCycles)},
		{"L2 cache", fmt.Sprintf("%d KB, %d-way, %d B lines, %.0f-cycle hit", c.L2Bytes>>10, c.L2Assoc, c.LineBytes, c.L2HitCycles)},
		{"Local memory latency", fmt.Sprintf("%.0f cycles (contention-free round trip)", c.LocalMemCycles)},
		{"2-hop memory latency", fmt.Sprintf("%.0f cycles (contention-free round trip)", c.RemoteMemCycles)},
		{"Directory controller", fmt.Sprintf("clocked at 1/%.0f of processor; FP add pipelined, latency %.0f dir cycles", c.DirClockDivisor, c.FPAddLatencyDir)},
		{"PCLR combine occupancy", fmt.Sprintf("Hw %.0f cycles/line, Flex %.0f cycles/line", c.CombineOccupancy(Hardwired), c.CombineOccupancy(Programmable))},
	}
	return stats.FormatTable([]string{"Parameter", "Value"}, rows)
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("simarch: Nodes must be >= 1, got %d", c.Nodes)
	}
	if c.LineBytes < 8 || c.LineBytes%8 != 0 {
		return fmt.Errorf("simarch: LineBytes must be a positive multiple of 8, got %d", c.LineBytes)
	}
	if c.L1Bytes < c.LineBytes || c.L2Bytes < c.LineBytes {
		return fmt.Errorf("simarch: caches must hold at least one line")
	}
	if c.DirClockDivisor <= 0 || c.FlexOccupancyFactor < 1 {
		return fmt.Errorf("simarch: controller timing parameters invalid")
	}
	return nil
}

// Server models a contended resource with an occupancy per request: a
// directory controller, FP unit or memory bank. Requests arrive at a time
// and are serviced FIFO; Serve returns the completion time.
type Server struct {
	busyUntil float64
	demand    float64
	served    int64
}

// Serve enqueues a request arriving at time t with the given occupancy and
// returns when it completes.
func (s *Server) Serve(t, occupancy float64) float64 {
	start := t
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + occupancy
	s.demand += occupancy
	s.served++
	return s.busyUntil
}

// BusyUntil returns the time the server becomes free.
func (s *Server) BusyUntil() float64 { return s.busyUntil }

// Demand returns the total occupancy served so far.
func (s *Server) Demand() float64 { return s.demand }

// Served returns the number of requests served.
func (s *Server) Served() int64 { return s.served }

// Reset clears the server to idle at time 0.
func (s *Server) Reset() { *s = Server{} }
