package simarch

import (
	"strings"
	"testing"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig(16)
	if c.L1Bytes != 32<<10 || c.L1Assoc != 2 {
		t.Errorf("L1 geometry %d/%d, Table 1 says 32KB 2-way", c.L1Bytes, c.L1Assoc)
	}
	if c.L2Bytes != 512<<10 || c.L2Assoc != 4 {
		t.Errorf("L2 geometry %d/%d, Table 1 says 512KB 4-way", c.L2Bytes, c.L2Assoc)
	}
	if c.LineBytes != 64 {
		t.Errorf("line size %d, Table 1 says 64B", c.LineBytes)
	}
	if c.L1HitCycles != 2 || c.L2HitCycles != 10 {
		t.Errorf("hit latencies %g/%g, Table 1 says 2/10", c.L1HitCycles, c.L2HitCycles)
	}
	if c.LocalMemCycles != 104 || c.RemoteMemCycles != 297 {
		t.Errorf("memory latencies %g/%g, Table 1 says 104/297", c.LocalMemCycles, c.RemoteMemCycles)
	}
	if c.DirClockDivisor != 3 {
		t.Errorf("directory clock divisor %g, paper says 1/3 of processor", c.DirClockDivisor)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.LineBytes = 60 },
		func(c *Config) { c.L1Bytes = 8 },
		func(c *Config) { c.FlexOccupancyFactor = 0.5 },
	}
	for i, mutate := range cases {
		c := DefaultConfig(4)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestControllerString(t *testing.T) {
	if Hardwired.String() != "Hw" || Programmable.String() != "Flex" {
		t.Error("controller names must match the paper's figure labels")
	}
}

func TestLineElems(t *testing.T) {
	if got := DefaultConfig(1).LineElems(); got != 8 {
		t.Errorf("LineElems = %d, want 8 (64B line / 8B doubles)", got)
	}
}

func TestCombineOccupancyPipelining(t *testing.T) {
	c := DefaultConfig(1)
	hw := c.CombineOccupancy(Hardwired)
	// The FP pipeline starts one element per directory cycle: 8 elements
	// x 3 processor cycles, plus the protocol occupancy.
	want := c.DirOccupancyCycles + 8*3
	if hw != want {
		t.Errorf("Hw combine occupancy %g, want %g", hw, want)
	}
}

func TestFormatTable1Contents(t *testing.T) {
	s := DefaultConfig(16).FormatTable1()
	for _, needle := range []string{"32 KB", "512 KB", "104", "297", "1/3"} {
		if !strings.Contains(s, needle) {
			t.Errorf("Table 1 output missing %q:\n%s", needle, s)
		}
	}
}

func TestServerFIFO(t *testing.T) {
	var s Server
	if done := s.Serve(10, 5); done != 15 {
		t.Errorf("first request done at %g, want 15", done)
	}
	// Arrives while busy: queues.
	if done := s.Serve(12, 5); done != 20 {
		t.Errorf("queued request done at %g, want 20", done)
	}
	// Arrives after idle: starts immediately.
	if done := s.Serve(100, 5); done != 105 {
		t.Errorf("idle request done at %g, want 105", done)
	}
	if s.Demand() != 15 || s.Served() != 3 {
		t.Errorf("demand/served = %g/%d, want 15/3", s.Demand(), s.Served())
	}
	s.Reset()
	if s.BusyUntil() != 0 || s.Demand() != 0 {
		t.Error("reset must clear the server")
	}
}
