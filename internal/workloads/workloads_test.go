package workloads

import (
	"math"
	"testing"

	"repro/internal/pattern"
)

func TestGenerateMeetsTargets(t *testing.T) {
	spec := PatternSpec{
		Dim: 50000, SPPercent: 10, CHR: 0.5, MO: 2,
		Locality: 0.8, Skew: 0.3, Work: 20, Seed: 1,
	}
	l := Generate("t", spec, 1)
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p := pattern.Characterize(l, 8, 512<<10)
	if math.Abs(p.CHR-0.5)/0.5 > 0.05 {
		t.Errorf("CHR = %g, want ~0.5", p.CHR)
	}
	// Generated SP can fall slightly short of target when the clustered
	// draw misses some hot entries; allow 20%.
	if math.Abs(p.SP-10)/10 > 0.2 {
		t.Errorf("SP = %g%%, want ~10%%", p.SP)
	}
	if p.MO < 1.8 || p.MO > 2.0 {
		t.Errorf("MO = %g, want ~2", p.MO)
	}
	if l.WorkPerIter != 20 {
		t.Errorf("WorkPerIter = %g, want 20", l.WorkPerIter)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := PatternSpec{Dim: 1000, SPPercent: 20, CHR: 0.3, MO: 2, Seed: 5}
	a := Generate("a", spec, 1)
	b := Generate("b", spec, 1)
	if a.NumIters() != b.NumIters() || a.TotalRefs() != b.TotalRefs() {
		t.Fatal("same spec+seed must produce identical shape")
	}
	for i := 0; i < a.NumIters(); i++ {
		ra, rb := a.Iter(i), b.Iter(i)
		for k := range ra {
			if ra[k] != rb[k] {
				t.Fatalf("iteration %d differs", i)
			}
		}
	}
}

func TestGenerateScalePreservesMetrics(t *testing.T) {
	spec := PatternSpec{Dim: 100000, SPPercent: 5, CHR: 0.4, MO: 2, Locality: 0.7, Seed: 9}
	full := pattern.Characterize(Generate("f", spec, 1), 8, 512<<10)
	// Scale the loop by 1/10 and the cache by 1/10: dimensionless metrics
	// must be preserved.
	small := pattern.Characterize(Generate("s", spec, 0.1), 8, 51200)
	if math.Abs(small.CHR-full.CHR)/full.CHR > 0.1 {
		t.Errorf("scaled CHR %g vs full %g", small.CHR, full.CHR)
	}
	if math.Abs(small.SP-full.SP)/full.SP > 0.25 {
		t.Errorf("scaled SP %g vs full %g", small.SP, full.SP)
	}
	if math.Abs(small.DIM-full.DIM)/full.DIM > 0.1 {
		t.Errorf("scaled DIM %g vs full %g", small.DIM, full.DIM)
	}
}

func TestGeneratePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale=0")
		}
	}()
	Generate("x", PatternSpec{Dim: 10, SPPercent: 50, CHR: 0.1, MO: 1}, 0)
}

func TestFig3RowsComplete(t *testing.T) {
	rows := Fig3Rows()
	if len(rows) != 21 {
		t.Fatalf("Fig3Rows returned %d rows, want 21 (paper table)", len(rows))
	}
	apps := map[string]int{}
	for _, r := range rows {
		apps[r.App]++
		if r.PaperRecommend == "" || len(r.PaperOrder) < 3 {
			t.Errorf("%s/%d: missing paper reference data", r.App, r.Spec.Dim)
		}
		// The recommended scheme must appear in the library.
		valid := map[string]bool{"rep": true, "ll": true, "sel": true, "lw": true, "hash": true}
		if !valid[r.PaperRecommend] {
			t.Errorf("%s: invalid recommendation %q", r.App, r.PaperRecommend)
		}
		for _, s := range r.PaperOrder {
			if !valid[s] {
				t.Errorf("%s: invalid scheme %q in order", r.App, s)
			}
		}
	}
	want := map[string]int{"Irreg": 4, "Nbf": 4, "Moldyn": 4, "Spark98": 2, "Charmm": 3, "Spice": 4}
	for app, n := range want {
		if apps[app] != n {
			t.Errorf("app %s has %d rows, want %d", app, apps[app], n)
		}
	}
}

func TestFig3RowGeneratesAtSmallScale(t *testing.T) {
	for _, r := range Fig3Rows() {
		l := r.Generate(0.02)
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", r.App, err)
		}
		if l.NumIters() == 0 {
			t.Errorf("%s: empty loop at small scale", r.App)
		}
	}
}

func TestFig3SpiceTargetsHashRegime(t *testing.T) {
	// The Spice rows must land in the hash regime of the measured
	// profile: SP < 0.5% and MO > 8.
	for _, r := range Fig3Rows() {
		if r.App != "Spice" {
			continue
		}
		l := r.Generate(0.25)
		p := pattern.Characterize(l, 8, 128<<10)
		if p.SP >= 0.5 {
			t.Errorf("Spice dim=%d: measured SP %.3f%%, want < 0.5%%", r.Spec.Dim, p.SP)
		}
		if p.MO <= 8 {
			t.Errorf("Spice dim=%d: measured MO %.1f, want > 8", r.Spec.Dim, p.MO)
		}
	}
}

func TestPCLRAppsMatchTable2(t *testing.T) {
	apps := PCLRApps()
	if len(apps) != 5 {
		t.Fatalf("PCLRApps returned %d apps, want 5", len(apps))
	}
	// Check the published Table 2 averages reproduce from the entries.
	var iters, instr, redops, arrayKB float64
	for _, a := range apps {
		iters += float64(a.Iters)
		instr += a.InstrPerIter
		redops += float64(a.RedOpsPerIter)
		arrayKB += a.ArrayKB
	}
	if avg := iters / 5; math.Abs(avg-61181) > 1 {
		t.Errorf("average iters = %g, paper says 61181", avg)
	}
	if avg := instr / 5; math.Abs(avg-620) > 1 {
		t.Errorf("average instr/iter = %g, paper says 620", avg)
	}
	if avg := redops / 5; math.Abs(avg-59) > 0.5 {
		t.Errorf("average red ops/iter = %g, paper says 59", avg)
	}
	if avg := arrayKB / 5; math.Abs(avg-876.14) > 10 {
		t.Errorf("average array KB = %g, paper says 871 (rounded)", avg)
	}
}

func TestPCLRAppSpecConsistent(t *testing.T) {
	for _, a := range PCLRApps() {
		spec := a.Spec()
		wantRefs := float64(a.Iters * a.RedOpsPerIter)
		gotRefs := spec.CHR * 16 * float64(spec.Dim)
		if math.Abs(gotRefs-wantRefs)/wantRefs > 0.01 {
			t.Errorf("%s: spec encodes %g refs, want %g", a.Name, gotRefs, wantRefs)
		}
		if spec.Work != a.InstrPerIter-float64(a.RedOpsPerIter) {
			t.Errorf("%s: Work = %g", a.Name, spec.Work)
		}
	}
}

func TestPCLRAppGenerateSmallScale(t *testing.T) {
	for _, a := range PCLRApps() {
		l := a.Generate(0.01)
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if l.NumIters() == 0 || l.TotalRefs() == 0 {
			t.Errorf("%s: degenerate loop at small scale", a.Name)
		}
	}
}

func TestPCLRVmlFitsCaches(t *testing.T) {
	// Vml's 40KB array must fit a 512KB L2 even at full size — that is
	// why the paper reports zero displaced lines for it.
	a := PCLRApps()[2]
	if a.Name != "Vml" {
		t.Fatalf("expected Vml at index 2, got %s", a.Name)
	}
	if a.Dim()*8 > 512<<10 {
		t.Errorf("Vml array %d bytes exceeds L2", a.Dim()*8)
	}
}
