package workloads

import "repro/internal/trace"

// TenantMixStream builds one Zipf-skewed job stream per tenant over
// per-tenant disjoint pattern populations: tenant i's patterns use a seed
// block and dimension offset no other tenant touches, so no fingerprint
// collides across tenants and cross-tenant batch fusion is structurally
// impossible. That makes the streams the right input for isolation
// experiments — any throughput a background tenant loses to a hot tenant
// is scheduling interference, never accidental sharing. lengths[i] is
// tenant i's offered job count (the caller scales these by tenant weight
// for a fairness run, or cranks one tenant to 10x for an isolation run);
// patterns is the per-tenant population size.
func TenantMixStream(lengths []int, patterns int, scale float64, seed int64) [][]*trace.Loop {
	streams := make([][]*trace.Loop, len(lengths))
	for i, n := range lengths {
		loops := HotKeySet(patterns, scale)
		for _, l := range loops {
			// Re-shape each pattern into the tenant's disjoint slice of the
			// population: a tenant-specific dimension offset guarantees
			// distinct fingerprints even where seeds alone would not.
			l.NumElems += 128 * (i + 1)
		}
		streams[i] = ZipfStream(loops, n, 1.3, seed+int64(i)*7919)
	}
	return streams
}
