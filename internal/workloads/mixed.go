package workloads

import "repro/internal/trace"

// MixedSet returns one loop per access-pattern regime the decision
// algorithm distinguishes — dense/contended, skewed hot spots, extremely
// sparse (hash territory), clustered, large mostly-exclusive and
// moderate — scaled together. It is the shared job stream of the engine
// tests, the engine throughput benchmarks and cmd/reduxserve, so all
// three exercise the same workloads.
func MixedSet(scale float64) []*trace.Loop {
	specs := []struct {
		name string
		spec PatternSpec
	}{
		{"dense-small", PatternSpec{Dim: 4000, SPPercent: 70, CHR: 0.9, MO: 2, Locality: 0.6, Work: 6, Seed: 101}},
		{"dense-hot", PatternSpec{Dim: 3000, SPPercent: 40, CHR: 0.8, MO: 3, Locality: 0.3, Skew: 2, Work: 5, Seed: 102}},
		{"sparse-hash", PatternSpec{Dim: 120000, SPPercent: 0.2, CHR: 0.03, MO: 10, Locality: 0.1, Work: 12, Seed: 103}},
		{"clustered", PatternSpec{Dim: 16000, SPPercent: 25, CHR: 0.3, MO: 3, Locality: 0.9, Work: 8, Seed: 104}},
		{"large-exclusive", PatternSpec{Dim: 60000, SPPercent: 12, CHR: 0.12, MO: 2, Locality: 0.95, Work: 10, Seed: 105}},
		{"moderate", PatternSpec{Dim: 10000, SPPercent: 35, CHR: 0.3, MO: 2, Locality: 0.5, Work: 7, Seed: 106}},
	}
	loops := make([]*trace.Loop, len(specs))
	for i, s := range specs {
		loops[i] = Generate(s.name, s.spec, scale)
	}
	return loops
}
