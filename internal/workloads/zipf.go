package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// HotKeySet returns n distinct reduction patterns cycling through the
// regime templates of MixedSet, each with its own seed and jittered
// dimension so every pattern has a distinct fingerprint. It is the pattern
// population behind the Zipf-skewed service stream.
func HotKeySet(n int, scale float64) []*trace.Loop {
	templates := []PatternSpec{
		{Dim: 4000, SPPercent: 70, CHR: 0.9, MO: 2, Locality: 0.6, Work: 6},
		{Dim: 3000, SPPercent: 40, CHR: 0.8, MO: 3, Locality: 0.3, Skew: 2, Work: 5},
		{Dim: 16000, SPPercent: 25, CHR: 0.3, MO: 3, Locality: 0.9, Work: 8},
		{Dim: 10000, SPPercent: 35, CHR: 0.3, MO: 2, Locality: 0.5, Work: 7},
	}
	loops := make([]*trace.Loop, n)
	for i := 0; i < n; i++ {
		spec := templates[i%len(templates)]
		// Jitter the dimension so same-template patterns are structurally
		// distinct (different fingerprints), like distinct client datasets
		// of similar shape.
		spec.Dim += 64 * (i / len(templates))
		spec.Seed = int64(1000 + i)
		loops[i] = Generate(fmt.Sprintf("hotkey-%02d", i), spec, scale)
	}
	return loops
}

// ZipfStream returns a job stream of the given length over the pattern
// population: stream[j] points at loops[rank] with ranks drawn from a
// Zipf(s) distribution, so a few hot patterns dominate the traffic — the
// shape of production reduction services, and the regime where the
// engine's batch coalescing becomes visible (hot patterns repeat while
// earlier submissions still sit in the queue). s must be > 1; larger
// values concentrate more of the stream on the hottest patterns.
func ZipfStream(loops []*trace.Loop, length int, s float64, seed int64) []*trace.Loop {
	if len(loops) == 0 {
		panic("workloads: ZipfStream over an empty pattern set")
	}
	if s <= 1 {
		panic(fmt.Sprintf("workloads: Zipf exponent must be > 1, got %g", s))
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(loops)-1))
	stream := make([]*trace.Loop, length)
	for i := range stream {
		stream[i] = loops[z.Uint64()]
	}
	return stream
}
