package workloads

import (
	"testing"

	"repro/internal/pattern"
)

// TestSharedSubrangeFingerprintStable pins the property the engine's
// coalescer depends on: every member of the stream shares one
// fingerprint, so concurrent members fuse into one batch.
func TestSharedSubrangeFingerprintStable(t *testing.T) {
	ss := NewSharedSubrangeStream(6, 12, 0.5, 7)
	want := ss.Members[0].Fingerprint()
	for m, l := range ss.Members {
		if l.Fingerprint() != want {
			t.Fatalf("member %d fingerprint diverged", m)
		}
	}
	if len(ss.Stream) != 12 {
		t.Fatalf("stream length %d, want 12", len(ss.Stream))
	}
	for i, l := range ss.Stream {
		if l != ss.Members[i%len(ss.Members)] {
			t.Fatalf("stream[%d] is not round-robin", i)
		}
	}
}

// TestSharedSubrangeDecomposes proves the members carry the structure the
// stream exists to exercise: a segment decomposition aligned with the
// private windows finds most segments shared and exactly one private
// window per member.
func TestSharedSubrangeDecomposes(t *testing.T) {
	const members = 4
	ss := NewSharedSubrangeStream(members, 0, 0.5, 11)
	segIters := ss.Members[0].NumIters() / sharedWindows
	a, err := pattern.AnalyzeSegments(ss.Members, segIters)
	if err != nil {
		t.Fatal(err)
	}
	if a.Segments != sharedWindows {
		t.Fatalf("got %d segments, want %d", a.Segments, sharedWindows)
	}
	// Member 0 owns every shared segment; member m's only private
	// content is window m, so unique = windows + (members-1) extras.
	want := sharedWindows + members - 1
	if a.Unique != want {
		t.Fatalf("unique segment versions = %d, want %d", a.Unique, want)
	}
	for m := 1; m < members; m++ {
		for s := 0; s < a.Segments; s++ {
			owner := a.OwnerOf[m][s]
			if s == m%sharedWindows {
				if owner != m {
					t.Fatalf("member %d window %d owned by %d, want private", m, s, owner)
				}
			} else if owner != 0 {
				t.Fatalf("member %d segment %d owned by %d, want shared with 0", m, s, owner)
			}
		}
	}
	if a.OverlapFrac < 0.5 {
		t.Fatalf("overlap fraction %.2f, want >= 0.5", a.OverlapFrac)
	}
}

// TestSharedSubrangeDeterministic: same parameters, same stream.
func TestSharedSubrangeDeterministic(t *testing.T) {
	a := NewSharedSubrangeStream(3, 6, 0.5, 13)
	b := NewSharedSubrangeStream(3, 6, 0.5, 13)
	for m := range a.Members {
		af, _ := a.Members[m].Flat()
		bf, _ := b.Members[m].Flat()
		if len(af) != len(bf) {
			t.Fatalf("member %d shape diverged", m)
		}
		ar, br := flatRefs(a.Members[m]), flatRefs(b.Members[m])
		for i := range ar {
			if ar[i] != br[i] {
				t.Fatalf("member %d ref %d diverged", m, i)
			}
		}
	}
}

func flatRefs(l interface{ Flat() ([]int32, []int32) }) []int32 {
	_, refs := l.Flat()
	return refs
}
