package workloads

import (
	"testing"
)

func TestDeltaStreamShape(t *testing.T) {
	ds := NewDeltaStream(12, 16, 0.25, 7)
	if got := len(ds.Batches); got != 12 {
		t.Fatalf("got %d batches, want 12", got)
	}
	total := ds.Base.TotalRefs()
	for b, batch := range ds.Batches {
		if len(batch) != 16 {
			t.Fatalf("batch %d has %d deltas, want 16", b, len(batch))
		}
		for i, d := range batch {
			if d.Pos < 0 || int(d.Pos) >= total {
				t.Fatalf("batch %d delta %d position %d outside [0, %d)", b, i, d.Pos, total)
			}
			if d.Ref < 0 || int(d.Ref) >= ds.Base.NumElems {
				t.Fatalf("batch %d delta %d ref %d outside [0, %d)", b, i, d.Ref, ds.Base.NumElems)
			}
			if i > 0 && d.Pos <= batch[i-1].Pos {
				t.Fatalf("batch %d positions not strictly increasing at %d: %d <= %d", b, i, d.Pos, batch[i-1].Pos)
			}
		}
	}
}

func TestDeltaStreamDeterministic(t *testing.T) {
	a := NewDeltaStream(6, 8, 0.25, 42)
	b := NewDeltaStream(6, 8, 0.25, 42)
	if !a.Base.EqualPattern(b.Base) {
		t.Fatal("same seed produced different base loops")
	}
	for i := range a.Batches {
		if len(a.Batches[i]) != len(b.Batches[i]) {
			t.Fatalf("batch %d lengths differ", i)
		}
		for j := range a.Batches[i] {
			if a.Batches[i][j] != b.Batches[i][j] {
				t.Fatalf("batch %d delta %d differs: %+v vs %+v", i, j, a.Batches[i][j], b.Batches[i][j])
			}
		}
	}
	c := NewDeltaStream(6, 8, 0.25, 43)
	if a.Base.EqualPattern(c.Base) {
		t.Fatal("different seeds produced identical base loops")
	}
}

// TestDeltaStreamMirror checks MirrorAt against incremental application:
// the from-scratch mirror at step k must match a clone that absorbed the
// first k batches one at a time, and the base itself must stay pristine.
func TestDeltaStreamMirror(t *testing.T) {
	ds := NewDeltaStream(5, 10, 0.25, 3)
	pristine := ds.Base.Clone()
	rolling := ds.Base.Clone()
	for step := 0; step <= len(ds.Batches); step++ {
		m := ds.MirrorAt(step)
		if !m.EqualPattern(rolling) {
			t.Fatalf("MirrorAt(%d) != incrementally applied clone", step)
		}
		if step < len(ds.Batches) {
			ApplyDeltas(rolling, ds.Batches[step])
		}
	}
	if !ds.Base.EqualPattern(pristine) {
		t.Fatal("MirrorAt mutated the base loop")
	}
	if ds.MirrorAt(len(ds.Batches)).EqualPattern(ds.Base) {
		t.Fatal("applying every batch left the pattern unchanged — deltas are no-ops")
	}
}
