package workloads

import (
	"testing"

	"repro/internal/trace"
)

func TestHotKeySetDistinctFingerprints(t *testing.T) {
	loops := HotKeySet(12, 0.25)
	if len(loops) != 12 {
		t.Fatalf("len = %d, want 12", len(loops))
	}
	seen := make(map[uint64]string)
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		fp := l.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s and %s share fingerprint %x", prev, l.Name, fp)
		}
		seen[fp] = l.Name
	}
}

func TestZipfStreamIsHotKeySkewed(t *testing.T) {
	loops := HotKeySet(8, 0.25)
	stream := ZipfStream(loops, 2000, 1.4, 42)
	if len(stream) != 2000 {
		t.Fatalf("stream length = %d", len(stream))
	}
	counts := make(map[*trace.Loop]int)
	for _, l := range stream {
		counts[l]++
	}
	for l := range counts {
		found := false
		for _, m := range loops {
			if l == m {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stream contains a loop outside the pattern set: %s", l.Name)
		}
	}
	// Zipf rank 0 must dominate: the hottest pattern carries more traffic
	// than any other and a substantial share of the whole stream.
	hot := counts[loops[0]]
	for i, l := range loops[1:] {
		if counts[l] > hot {
			t.Errorf("rank %d (%d jobs) hotter than rank 0 (%d jobs)", i+1, counts[l], hot)
		}
	}
	if hot < len(stream)/4 {
		t.Errorf("rank 0 carries %d of %d jobs; expected a dominant hot key", hot, len(stream))
	}
	// Same seed, same stream.
	again := ZipfStream(loops, 2000, 1.4, 42)
	for i := range stream {
		if stream[i] != again[i] {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
}
