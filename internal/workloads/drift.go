package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// DriftStream is a deterministic piecewise-Zipf job stream whose hot-key
// population changes pattern regime at phase boundaries — the traffic
// shape of an application whose access pattern drifts mid-run (a moldyn
// neighbor-list rebuild, a mesh refinement): the program keeps submitting
// "the same" reduction loop, but the loop's measured metrics have moved
// into a different scheme's sweet spot.
//
// The crucial property is that every phase variant of one hot key shares
// the key's trace.Fingerprint. The fingerprint samples the subscript
// stream at a fixed stride, so the generator pins the sampled positions
// to a small per-key anchor set that every phase references identically,
// and rewrites only the references between them. The engine's decision
// cache therefore keeps serving the entry it decided in an earlier phase
// — exactly the stale-decision hazard the recalibration subsystem
// (internal/engine) exists to detect — while the loops' measured
// sparsity and mobility genuinely shift across the recommendation
// boundaries of internal/adapt.
type DriftStream struct {
	// Phases[p][k] is hot key k's loop during phase p. For every key,
	// the loops of all phases share one fingerprint; their pattern
	// regime alternates sparse/high-mobility (hash territory) on even
	// phases and dense/low-contention (ll territory) on odd phases.
	Phases [][]*trace.Loop
	// Stream is the job sequence: PhaseLen jobs drawn Zipf-ranked from
	// phase 0's population, then PhaseLen from phase 1's, and so on.
	Stream []*trace.Loop
	// PhaseLen is the number of jobs per phase.
	PhaseLen int
}

// driftRefsPerIter is the reference count per iteration. It is chosen
// above adapt's HashMinMO cut so the sparse phases clear the mobility
// bar for hash.
const driftRefsPerIter = 12

// driftAnchors is the number of fingerprint anchor elements per key.
const driftAnchors = 16

// NewDriftStream builds a drifting hot-key workload: keys distinct
// patterns, phases regime shifts, phaseLen jobs per phase, Zipf exponent
// s (> 1) skewing traffic onto the hottest keys, scale multiplying the
// trace size, and a seed making everything reproducible. The
// construction panics if a phase variant fails to preserve its key's
// fingerprint — that would silently turn the drift scenario into a
// plain cache-miss scenario.
func NewDriftStream(keys, phases, phaseLen int, s float64, scale float64, seed int64) *DriftStream {
	if keys < 1 || phases < 1 || phaseLen < 1 {
		panic(fmt.Sprintf("workloads: DriftStream needs positive keys/phases/phaseLen, got %d/%d/%d", keys, phases, phaseLen))
	}
	if scale <= 0 {
		panic(fmt.Sprintf("workloads: scale must be positive, got %g", scale))
	}
	ds := &DriftStream{
		Phases:   make([][]*trace.Loop, phases),
		PhaseLen: phaseLen,
	}
	for p := range ds.Phases {
		ds.Phases[p] = make([]*trace.Loop, keys)
		for k := 0; k < keys; k++ {
			ds.Phases[p][k] = driftLoop(k, p, scale, seed)
			if p > 0 {
				if got, want := ds.Phases[p][k].Fingerprint(), ds.Phases[0][k].Fingerprint(); got != want {
					panic(fmt.Sprintf("workloads: drift key %d phase %d broke its fingerprint (%x != %x)", k, p, got, want))
				}
			}
		}
	}
	// One Zipf rank sequence for the whole stream: the *traffic* skew is
	// stable, only the patterns underneath it drift.
	rng := rand.New(rand.NewSource(seed))
	var z *rand.Zipf
	if keys > 1 {
		if s <= 1 {
			panic(fmt.Sprintf("workloads: Zipf exponent must be > 1, got %g", s))
		}
		z = rand.NewZipf(rng, s, 1, uint64(keys-1))
	}
	ds.Stream = make([]*trace.Loop, phases*phaseLen)
	for i := range ds.Stream {
		rank := uint64(0)
		if z != nil {
			rank = z.Uint64()
		}
		ds.Stream[i] = ds.Phases[i/phaseLen][rank]
	}
	return ds
}

// driftLoop builds hot key k's loop for phase p. The iteration shape,
// dimensions and total reference count are identical across phases (all
// of them feed the fingerprint); only the subscript values between the
// fingerprint-sampled anchor positions change regime:
//
//   - even phases reference a tiny hot set (~0.45% of the array) with
//     high per-iteration mobility — adapt recommends hash,
//   - odd phases reference a quarter of the array at low contention —
//     adapt recommends ll.
func driftLoop(k, p int, scale float64, seed int64) *trace.Loop {
	// The sparse phases need a hot set big enough for per-iteration
	// mobility to clear HashMinMO while staying under HashMaxSP percent
	// of the array, so the dimension has a floor.
	dim := scaleInt(16000, scale, 10000) + 64*k
	iters := scaleInt(2000, scale, 256)
	total := iters * driftRefsPerIter

	// The fingerprint samples refs at this stride (trace.Fingerprint's
	// samples constant); those positions always hold anchors.
	stride := total / 256
	if stride < 1 {
		stride = 1
	}
	anchors := make([]int32, driftAnchors)
	for j := range anchors {
		anchors[j] = int32(j * dim / driftAnchors)
	}

	rng := rand.New(rand.NewSource(seed + int64(k)*1_000_003 + int64(p)*7919))
	var hotLen int
	if p%2 == 0 {
		// Sparse regime: the hot set plus anchors stays below HashMaxSP
		// (0.5%) of the array while leaving enough distinct elements for
		// 12 draws to exceed HashMinMO (8) distinct references.
		hotLen = dim*45/10000 - driftAnchors
	} else {
		// Dense regime: a quarter of the array, low contention.
		hotLen = dim / 4
	}
	hot := make([]int32, hotLen)
	hotStride := float64(dim) / float64(hotLen)
	for j := range hot {
		hot[j] = int32(float64(j) * hotStride)
	}

	l := trace.NewLoop(fmt.Sprintf("drift-%02d@p%d", k, p), dim)
	l.WorkPerIter = 6
	refs := make([]int32, driftRefsPerIter)
	pos := 0
	for i := 0; i < iters; i++ {
		for j := 0; j < driftRefsPerIter; j++ {
			if pos%stride == 0 {
				refs[j] = anchors[(pos/stride)%driftAnchors]
			} else {
				refs[j] = hot[rng.Intn(hotLen)]
			}
			pos++
		}
		l.AddIter(refs...)
	}
	return l
}
