package workloads

import "testing"

// TestTenantMixStreamDisjoint pins the property isolation experiments
// lean on: no pattern fingerprint appears in two tenants' streams, so
// cross-tenant batch fusion cannot silently couple the tenants a test
// means to keep independent.
func TestTenantMixStreamDisjoint(t *testing.T) {
	lengths := []int{40, 40, 400}
	streams := TenantMixStream(lengths, 6, 0.05, 42)
	if len(streams) != len(lengths) {
		t.Fatalf("got %d streams, want %d", len(streams), len(lengths))
	}
	owner := make(map[uint64]int)
	for i, stream := range streams {
		if len(stream) != lengths[i] {
			t.Fatalf("tenant %d stream length %d, want %d", i, len(stream), lengths[i])
		}
		for _, l := range stream {
			fp := l.Fingerprint()
			if prev, seen := owner[fp]; seen && prev != i {
				t.Fatalf("fingerprint %x shared by tenants %d and %d", fp, prev, i)
			}
			owner[fp] = i
		}
	}
}

// TestTenantMixStreamDeterministic pins that equal seeds reproduce the
// exact stream — the precondition for seeded fairness traces.
func TestTenantMixStreamDeterministic(t *testing.T) {
	a := TenantMixStream([]int{30, 30}, 4, 0.05, 7)
	b := TenantMixStream([]int{30, 30}, 4, 0.05, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j].Fingerprint() != b[i][j].Fingerprint() {
				t.Fatalf("tenant %d position %d differs across equal seeds", i, j)
			}
		}
	}
}
