// Package workloads synthesizes the reduction loops of the paper's
// applications. The originals (Irreg, Nbf/GROMOS, Moldyn, Spark98, Charmm,
// Spice, Euler/HPF-2, Equake/SPECfp2000, Vml/Sparse BLAS) are proprietary
// or unavailable FORTRAN/C codes; what the paper's experiments actually
// depend on is each loop's reduction reference pattern, which the paper
// publishes in full (Figure 3's MO/DIM/SP/CON/CHR columns and Table 2's
// per-loop characteristics). The generators here reproduce those published
// characteristics deterministically (seeded), which is the substitution
// recorded in DESIGN.md.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// PatternSpec parameterizes a synthetic reduction loop by the paper's own
// metrics. Dim, SPPercent, CHR and MO are targets the generated loop meets
// (measured values land within a few percent); CON then follows from them
// rather than being independently controllable — the paper's five columns
// over-determine a trace, and the decision algorithm consumes SP/CHR/MO/DIM.
type PatternSpec struct {
	// Dim is the reduction array dimension (Figure 3's INPUT column).
	Dim int
	// SPPercent is the target sparsity: percent of elements referenced.
	SPPercent float64
	// CHR is the target contention ratio for CHRProcs processors.
	CHR float64
	// CHRProcs is the processor count CHR is defined against (8 in
	// Figure 3, the machine the paper measured on).
	CHRProcs int
	// MO is the number of reduction references per iteration (mobility).
	MO int
	// Locality is the probability that an iteration's references cluster
	// near its position in the iteration space (mesh/pairlist locality).
	// High locality makes a block-scheduled partition mostly exclusive
	// per processor.
	Locality float64
	// Skew concentrates references on low-index hot elements: 0 gives a
	// uniform draw, larger values hotter hot spots (wider CH histogram).
	Skew float64
	// Work is the non-reduction instruction count per iteration.
	Work float64
	// DataRefs is the non-reduction data reference count per iteration
	// (streamed through the caches by the CC-NUMA simulator).
	DataRefs float64
	// Invocations is how many times the program executes this loop with
	// the same pattern (amortizes inspector-based schemes); 0 means 1.
	Invocations int
	// RunLength is the length of the contiguous element runs the touched
	// set is made of. Real touched sets are clustered — mesh node
	// neighborhoods, matrix rows, atom groups — so referenced elements
	// share cache lines, which is what exposes false sharing between
	// processors' in-place updates. 0 means the default of 32.
	RunLength int
	// Seed makes the trace reproducible.
	Seed int64
}

// Generate builds a loop matching the spec. scale multiplies the array
// dimension, touched-set size and reference count together, preserving the
// dimensionless metrics (SP, CHR, MO) exactly; callers that also scale the
// cache geometry preserve DIM too (this is how tests run miniature but
// regime-faithful instances).
func Generate(name string, spec PatternSpec, scale float64) *trace.Loop {
	if scale <= 0 {
		panic(fmt.Sprintf("workloads: scale must be positive, got %g", scale))
	}
	if spec.CHRProcs == 0 {
		spec.CHRProcs = 8
	}
	dim := scaleInt(spec.Dim, scale, 16)
	distinct := scaleInt(int(float64(spec.Dim)*spec.SPPercent/100), scale, 1)
	if distinct > dim {
		distinct = dim
	}
	totalRefs := int(spec.CHR * float64(spec.CHRProcs) * float64(dim))
	mo := spec.MO
	if mo < 1 {
		mo = 1
	}
	iters := totalRefs / mo
	if iters < 1 {
		iters = 1
	}

	rng := rand.New(rand.NewSource(spec.Seed))

	// Hot set: `distinct` element indices grouped into contiguous runs of
	// RunLength, with the runs themselves spread evenly over the array
	// (jittered). Ascending order keeps nearby hot positions nearby in
	// memory (mesh-like numbering after partitioning), and runs put
	// several touched elements on each cache line, as real touched sets
	// do.
	runLen := spec.RunLength
	if runLen <= 0 {
		runLen = 32
	}
	if runLen > distinct {
		runLen = distinct
	}
	hot := make([]int32, 0, distinct)
	numRuns := (distinct + runLen - 1) / runLen
	runStride := float64(dim) / float64(numRuns)
	for r := 0; r < numRuns; r++ {
		n := runLen
		if rem := distinct - len(hot); n > rem {
			n = rem
		}
		lo := int(float64(r) * runStride)
		span := int(runStride) - n
		if span > 0 {
			lo += rng.Intn(span)
		}
		if lo+n > dim {
			lo = dim - n
		}
		for j := 0; j < n; j++ {
			hot = append(hot, int32(lo+j))
		}
	}

	l := trace.NewLoop(name, dim)
	l.WorkPerIter = spec.Work
	l.DataRefsPerIter = spec.DataRefs
	l.Invocations = spec.Invocations
	refs := make([]int32, mo)
	for i := 0; i < iters; i++ {
		// Iteration i's "home" region in the hot set tracks its position
		// in the iteration space, so block scheduling gives each
		// processor a mostly-private element region.
		home := int(float64(i) / float64(iters) * float64(distinct))
		for k := 0; k < mo; k++ {
			var pos int
			if rng.Float64() < spec.Locality {
				// Cluster near home with short-range jitter.
				span := distinct / 64
				if span < 4 {
					span = 4
				}
				pos = home + rng.Intn(2*span+1) - span
			} else {
				// Global draw, optionally skewed toward low indices.
				u := rng.Float64()
				if spec.Skew > 0 {
					u = math.Pow(u, 1+spec.Skew)
				}
				pos = int(u * float64(distinct))
			}
			if pos < 0 {
				pos = 0
			}
			if pos >= distinct {
				pos = distinct - 1
			}
			refs[k] = hot[pos]
		}
		l.AddIter(refs...)
	}
	return l
}

func scaleInt(v int, scale float64, minV int) int {
	s := int(float64(v) * scale)
	if s < minV {
		s = minV
	}
	return s
}
