package workloads

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/pattern"
	"repro/internal/vtime"
)

// TestDriftStreamFingerprintStable pins the property the engine's
// recalibration scenario depends on: every phase variant of a hot key
// decodes to the same fingerprint, so the decision cache keeps serving
// the entry decided in an earlier phase.
func TestDriftStreamFingerprintStable(t *testing.T) {
	ds := NewDriftStream(4, 3, 8, 1.4, 0.5, 7)
	if len(ds.Phases) != 3 || len(ds.Stream) != 24 {
		t.Fatalf("got %d phases, %d stream jobs", len(ds.Phases), len(ds.Stream))
	}
	for k := 0; k < 4; k++ {
		fp := ds.Phases[0][k].Fingerprint()
		for p := 1; p < 3; p++ {
			if got := ds.Phases[p][k].Fingerprint(); got != fp {
				t.Fatalf("key %d phase %d fingerprint %x, want %x", k, p, got, fp)
			}
			if ds.Phases[p][k].EqualPattern(ds.Phases[0][k]) {
				t.Fatalf("key %d phase %d has the phase-0 pattern: nothing drifted", k, p)
			}
		}
	}
	// Distinct keys must still be distinct patterns.
	if ds.Phases[0][0].Fingerprint() == ds.Phases[0][1].Fingerprint() {
		t.Fatal("keys 0 and 1 collide")
	}
}

// TestDriftStreamDeterministic: same parameters, same stream.
func TestDriftStreamDeterministic(t *testing.T) {
	a := NewDriftStream(3, 2, 16, 1.4, 0.5, 11)
	b := NewDriftStream(3, 2, 16, 1.4, 0.5, 11)
	for i := range a.Stream {
		if !a.Stream[i].EqualPattern(b.Stream[i]) || a.Stream[i].Name != b.Stream[i].Name {
			t.Fatalf("stream diverges at %d: %s vs %s", i, a.Stream[i].Name, b.Stream[i].Name)
		}
	}
}

// TestDriftStreamPhasesCrossRecommendationBoundary proves the drift is
// semantically real: characterizing the even-phase loop recommends hash
// (sparse, mobile) while the odd-phase variant of the same key
// recommends ll (dense, low contention) — the metric shift crosses an
// adapt.Thresholds cut-point, which is what makes a phase-0 decision
// stale in phase 1.
func TestDriftStreamPhasesCrossRecommendationBoundary(t *testing.T) {
	ds := NewDriftStream(2, 2, 4, 1.4, 1, 3)
	cache := vtime.DefaultConfig().L2Bytes
	for k := 0; k < 2; k++ {
		sparse := pattern.Characterize(ds.Phases[0][k], 8, cache)
		dense := pattern.Characterize(ds.Phases[1][k], 8, cache)
		if got := adapt.Recommend(sparse).Scheme; got != "hash" {
			t.Errorf("key %d sparse phase: %s -> %s, want hash", k, sparse, got)
		}
		if got := adapt.Recommend(dense).Scheme; got != "ll" {
			t.Errorf("key %d dense phase: %s -> %s, want ll", k, dense, got)
		}
		if d := pattern.Distance(sparse, dense); d < 0.25 {
			t.Errorf("key %d phase distance %.3f too small to trigger re-characterization", k, d)
		}
	}
	// Stream layout: first PhaseLen jobs are phase-0 loops, then phase 1.
	for i, l := range ds.Stream {
		want := ds.Phases[i/ds.PhaseLen]
		found := false
		for _, pl := range want {
			if pl == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("stream job %d (%s) not from phase %d population", i, l.Name, i/ds.PhaseLen)
		}
	}
}
