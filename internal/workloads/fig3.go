package workloads

import "repro/internal/trace"

// Fig3Row is one row of the paper's Figure 3 table: an application/input
// pair with its published pattern metrics, the scheme the paper's model
// recommended, and the measured scheme ordering the paper reports.
type Fig3Row struct {
	// App is the application name; LoopName the paper's loop label.
	App, LoopName string
	// Spec reproduces the row's published metrics.
	Spec PatternSpec
	// PaperCON is the connectivity the paper lists. CON is derived (not
	// independently generatable once SP/CHR/MO are fixed), so the
	// experiment reports both the paper's and the measured value.
	PaperCON float64
	// PaperRecommend is Figure 3's "Recommended Scheme" column.
	PaperRecommend string
	// PaperOrder is Figure 3's "Experimental Result" column: scheme
	// abbreviations in decreasing measured-speedup order. Spice rows list
	// only the three schemes the paper ran.
	PaperOrder []string
}

// Generate builds the row's loop at the given scale.
func (r Fig3Row) Generate(scale float64) *trace.Loop {
	return Generate(r.App+"/"+r.LoopName, r.Spec, scale)
}

// Fig3Rows returns all twenty rows of the paper's Figure 3 table.
//
// Per-application locality and work settings encode what the loops do:
// Irreg and Nbf are partitioned mesh/pairlist kernels (high locality),
// Moldyn's ComputeForces pairlist is rebuilt around moving particles
// (moderate locality), Spark98's smvp follows matrix rows, Charmm's
// bonded-term loop mixes local terms with global scatter, and Spice's
// bjt100 device-model loop scatters into a very sparse matrix with heavy
// per-iteration work.
func Fig3Rows() []Fig3Row {
	// Irreg's four inputs are meshes of decreasing density: the denser
	// the mesh, the more edges cross the block partition (lower
	// locality), which is what takes local write out of contention on
	// the smallest input.
	irreg := func(dim int, sp, chr, con, loc float64, rec string, order []string, seed int64) Fig3Row {
		return Fig3Row{
			App: "Irreg", LoopName: "DO100",
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 2, Locality: loc, Skew: 1.0, Work: 25, Invocations: 50, Seed: seed},
			PaperCON: con, PaperRecommend: rec, PaperOrder: order,
		}
	}
	nbf := func(dim int, sp, chr, con float64, rec string, order []string, seed int64) Fig3Row {
		return Fig3Row{
			App: "Nbf", LoopName: "DO50",
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 1, Locality: 0.85, Skew: 2.2, Work: 60, Invocations: 50, Seed: seed},
			PaperCON: con, PaperRecommend: rec, PaperOrder: order,
		}
	}
	moldyn := func(dim int, sp, chr, con, loc float64, rec string, order []string, seed int64) Fig3Row {
		return Fig3Row{
			App: "Moldyn", LoopName: "ComputeForces",
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 2, Locality: loc, Skew: 1.3, Work: 40, Invocations: 50, Seed: seed},
			PaperCON: con, PaperRecommend: rec, PaperOrder: order,
		}
	}
	spark := func(dim int, sp, chr, con float64, rec string, order []string, seed int64) Fig3Row {
		return Fig3Row{
			App: "Spark98", LoopName: "smvpthread",
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 1, Locality: 0.75, Skew: 1.0, Work: 30, Invocations: 50, Seed: seed},
			PaperCON: con, PaperRecommend: rec, PaperOrder: order,
		}
	}
	charmm := func(dim int, sp, chr, con float64, rec string, order []string, seed int64) Fig3Row {
		return Fig3Row{
			App: "Charmm", LoopName: "DO78",
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 2, Locality: 0.30, Skew: 2.5, Work: 70, Invocations: 50, Seed: seed},
			PaperCON: con, PaperRecommend: rec, PaperOrder: order,
		}
	}
	spice := func(dim int, sp, chr, con float64, seed int64) Fig3Row {
		return Fig3Row{
			App: "Spice", LoopName: "bjt100",
			// Spice's touched elements are scattered matrix entries, not
			// clustered runs (RunLength 2), which is why array-spanning
			// schemes pay the translation-footprint cost hash avoids.
			Spec:     PatternSpec{Dim: dim, SPPercent: sp, CHR: chr, MO: 28, Locality: 0.30, Skew: 1.0, Work: 400, Invocations: 50, RunLength: 2, Seed: seed},
			PaperCON: con, PaperRecommend: "hash", PaperOrder: []string{"hash", "ll", "rep"},
		}
	}

	return []Fig3Row{
		irreg(100000, 25, 0.92, 100, 0.70, "rep", []string{"rep", "ll", "sel", "lw"}, 101),
		irreg(500000, 5, 0.71, 20, 0.93, "lw", []string{"lw", "rep", "ll", "sel"}, 102),
		irreg(1000000, 1.25, 0.40, 5, 0.93, "lw", []string{"lw", "rep", "ll", "sel"}, 103),
		irreg(2000000, 0.25, 0.26, 1, 0.85, "sel", []string{"sel", "lw", "ll", "rep"}, 104),

		nbf(25600, 25, 0.25, 200, "ll", []string{"sel", "ll", "rep", "lw"}, 201),
		nbf(128000, 6.25, 0.25, 50, "sel", []string{"sel", "ll", "rep", "lw"}, 202),
		nbf(256000, 0.625, 0.25, 5, "sel", []string{"sel", "ll", "rep", "lw"}, 203),
		nbf(1280000, 0.25, 0.25, 2, "sel", []string{"sel", "ll", "rep", "lw"}, 204),

		moldyn(16384, 23.94, 0.41, 95.75, 0.55, "rep", []string{"rep", "ll", "sel", "lw"}, 301),
		moldyn(42592, 7.75, 0.36, 31, 0.55, "rep", []string{"rep", "ll", "sel", "lw"}, 302),
		moldyn(70304, 1.69, 0.33, 6.75, 0.65, "ll", []string{"ll", "rep", "sel", "lw"}, 303),
		moldyn(87808, 0.375, 0.29, 1.5, 0.75, "ll", []string{"ll", "rep", "sel", "lw"}, 304),

		spark(30169, 0.625, 0.18, 5, "sel", []string{"sel", "ll", "rep", "lw"}, 401),
		spark(7294, 0.6, 0.2, 4.8, "sel", []string{"ll", "sel", "rep", "lw"}, 402),

		charmm(332288, 35.88, 0.14, 17.9, "sel", []string{"ll", "sel", "rep", "lw"}, 501),
		charmm(332288, 17.94, 0.15, 8.97, "sel", []string{"ll", "sel", "rep", "lw"}, 502),
		charmm(664576, 1.12, 0.13, 4.48, "sel", []string{"ll", "sel", "rep", "lw"}, 503),

		spice(186943, 0.14, 0.125, 0.04, 601),
		spice(99190, 0.20, 0.125, 0.06, 602),
		spice(89925, 0.16, 0.126, 0.05, 603),
		spice(33725, 0.16, 0.126, 0.05, 604),
	}
}
