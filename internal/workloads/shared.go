package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// SharedSubrangeStream is a deterministic job stream whose members share
// most of their subscript stream: every member references the same base
// trace except inside one private window — one eighth of the reference
// positions, at a window offset cycling with the member index. It is the
// traffic shape of a solver family iterating one mesh where each variant
// perturbs a different boundary region: per-member direct execution
// re-reduces the identical interior over and over, while a segment
// decomposition (pattern.AnalyzeSegments) computes each shared segment
// once per batch and each private window once per member.
//
// As in DriftStream, all members share one trace.Fingerprint — the
// private-window rewrite preserves the subscripts at the fingerprint's
// sampled stride positions — so the engine's coalescer fuses concurrent
// members into a single batch, which is what hands the simplification
// layer its occupancy.
type SharedSubrangeStream struct {
	// Members are the distinct loops; Members[m]'s private window is
	// window m % sharedWindows of the reference stream.
	Members []*trace.Loop
	// Stream is the job sequence: length jobs round-robin over Members,
	// so a backlogged engine sees all members in flight together.
	Stream []*trace.Loop
}

const (
	// sharedWindows divides the reference stream into this many equal
	// windows, one private per member. It matches the segment count
	// reduction.DefaultSegIters targets at 8 processors, and every
	// larger power-of-two segment count divides evenly into it, so
	// private windows always align with segment boundaries.
	sharedWindows = 8
	// sharedRefsPerIter is the reference count per iteration.
	sharedRefsPerIter = 8
	// sharedAnchors is the number of fingerprint anchor elements.
	sharedAnchors = 16
)

// NewSharedSubrangeStream builds a shared-subrange workload: members
// distinct loops sharing all but one window each, a stream of length jobs
// round-robin over them, scale multiplying the trace size, and a seed
// making everything reproducible. The construction panics if a member
// fails to preserve the shared fingerprint — that would silently turn
// the overlap-batch scenario into independent singleton batches.
func NewSharedSubrangeStream(members, length int, scale float64, seed int64) *SharedSubrangeStream {
	if members < 1 || length < 0 {
		panic(fmt.Sprintf("workloads: SharedSubrangeStream needs members >= 1 and length >= 0, got %d/%d", members, length))
	}
	if scale <= 0 {
		panic(fmt.Sprintf("workloads: scale must be positive, got %g", scale))
	}
	dim := scaleInt(2048, scale, 256)
	iters := scaleInt(32768, scale, 1024)
	total := iters * sharedRefsPerIter

	// The fingerprint samples refs at this stride (trace.Fingerprint's
	// samples constant); those positions hold anchors in every member.
	stride := total / 256
	if stride < 1 {
		stride = 1
	}
	anchors := make([]int32, sharedAnchors)
	for j := range anchors {
		anchors[j] = int32(j * dim / sharedAnchors)
	}

	// The base reference stream all members start from.
	rng := rand.New(rand.NewSource(seed))
	base := make([]int32, total)
	for pos := range base {
		if pos%stride == 0 {
			base[pos] = anchors[(pos/stride)%sharedAnchors]
		} else {
			base[pos] = int32(rng.Intn(dim))
		}
	}

	ss := &SharedSubrangeStream{Members: make([]*trace.Loop, members)}
	winLen := total / sharedWindows
	for m := range ss.Members {
		refs := base
		if m > 0 {
			// Member 0 keeps the base verbatim, so its window stays the
			// shared version other members' decompositions can reuse.
			refs = append([]int32(nil), base...)
			mrng := rand.New(rand.NewSource(seed + 1_000_003*int64(m)))
			lo := (m % sharedWindows) * winLen
			for pos := lo; pos < lo+winLen; pos++ {
				if pos%stride != 0 {
					refs[pos] = int32(mrng.Intn(dim))
				}
			}
		}
		l := trace.NewLoop(fmt.Sprintf("shared-%02d", m), dim)
		l.WorkPerIter = 4
		for i := 0; i < iters; i++ {
			l.AddIter(refs[i*sharedRefsPerIter : (i+1)*sharedRefsPerIter]...)
		}
		ss.Members[m] = l
		if m > 0 {
			if got, want := l.Fingerprint(), ss.Members[0].Fingerprint(); got != want {
				panic(fmt.Sprintf("workloads: shared member %d broke the fingerprint (%x != %x)", m, got, want))
			}
		}
	}
	ss.Stream = make([]*trace.Loop, length)
	for i := range ss.Stream {
		ss.Stream[i] = ss.Members[i%members]
	}
	return ss
}
