package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/reduction"
	"repro/internal/trace"
)

// deltaRefsPerIter is the reference count per iteration of the base
// loop. Together with the iteration-to-dimension ratio below it fixes
// the stream's reference density at 128 references per element — the
// long-lived-mesh regime (many timesteps of work over one modest
// array) where re-shipping and fully re-reducing the loop on every
// update is most wasteful, i.e. the regime sessions exist for.
const deltaRefsPerIter = 8

// DeltaStream is the streaming-session traffic shape: one long-lived
// reduction loop registered once, then a sequence of small subscript
// update batches — the access-pattern churn of an application whose
// iteration space is stable but whose references drift a little every
// timestep (a moldyn pairlist absorbing particle motion between full
// rebuilds, a mesh smoother relocating a few nodes per sweep). Each
// batch redirects a handful of flat reference positions to new
// elements; everything else is untouched, which is exactly the sharing
// across time that reduction.DeltaState converts into touched-segment
// recomputes instead of full re-reductions.
//
// The stream is deterministic (seeded), so a benchmark, a load test and
// a shadow verifier can all regenerate the identical base loop and
// batches and agree on the expected reduction at every step.
type DeltaStream struct {
	// Base is the loop a session registers at OPEN_SESSION. Consumers
	// must treat it as immutable and Clone before mutating (MirrorAt
	// does).
	Base *trace.Loop
	// Batches are the per-step updates, in submission order. Each batch
	// has strictly increasing positions and distinct-from-current
	// references, matching the wire encoding's invariants.
	Batches [][]reduction.RefDelta
}

// NewDeltaStream builds a session workload: batches update batches of
// batchSize deltas each over a base loop whose size scales with scale,
// all reproducible from seed. Positions are drawn uniformly over the
// flat reference stream and element targets uniformly over the array,
// so successive batches scatter across segments the way uncoordinated
// particle motion does — the worst case for any scheme that hopes
// updates cluster.
func NewDeltaStream(batches, batchSize int, scale float64, seed int64) *DeltaStream {
	if batches < 0 || batchSize < 1 {
		panic(fmt.Sprintf("workloads: DeltaStream needs batches >= 0 and batchSize >= 1, got %d/%d", batches, batchSize))
	}
	if scale <= 0 {
		panic(fmt.Sprintf("workloads: scale must be positive, got %g", scale))
	}
	dim := scaleInt(2048, scale, 256)
	iters := scaleInt(32768, scale, 4096)
	total := iters * deltaRefsPerIter
	if batchSize > total {
		batchSize = total
	}

	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("delta-base", dim)
	l.WorkPerIter = 6
	refs := make([]int32, deltaRefsPerIter)
	for i := 0; i < iters; i++ {
		for j := range refs {
			refs[j] = int32(rng.Intn(dim))
		}
		l.AddIter(refs...)
	}

	ds := &DeltaStream{Base: l, Batches: make([][]reduction.RefDelta, batches)}
	for b := range ds.Batches {
		// Distinct positions, sorted ascending — the order AppendDelta
		// requires and DecodeDelta enforces. References are drawn after
		// the sort so the batch is a pure function of the seed (drawing
		// during map iteration would not be).
		seen := make(map[int32]bool, batchSize)
		pos := make([]int32, 0, batchSize)
		for len(pos) < batchSize {
			p := int32(rng.Intn(total))
			if !seen[p] {
				seen[p] = true
				pos = append(pos, p)
			}
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		batch := make([]reduction.RefDelta, batchSize)
		for i, p := range pos {
			batch[i] = reduction.RefDelta{Pos: p, Ref: int32(rng.Intn(dim))}
		}
		ds.Batches[b] = batch
	}
	return ds
}

// ApplyDeltas applies one update batch to l in place — the mirror-side
// counterpart of what SUBMIT_DELTA does to the server's session state.
// A shadow verifier keeps a private clone of the base loop, applies
// each batch as it is submitted, and checks the session's rolling
// result against the mirror's from-scratch reduction.
func ApplyDeltas(l *trace.Loop, batch []reduction.RefDelta) {
	_, refs := l.Flat()
	for _, d := range batch {
		refs[d.Pos] = d.Ref
	}
}

// MirrorAt returns a fresh clone of the base loop with the first step
// batches applied: the loop a session holds after its step'th
// SUBMIT_DELTA, rebuilt from scratch. This is the oracle side of the
// property the session tests pin — a rolling session result must be
// bit-for-bit equal to a fresh session opened over MirrorAt(step).
func (ds *DeltaStream) MirrorAt(step int) *trace.Loop {
	if step < 0 || step > len(ds.Batches) {
		panic(fmt.Sprintf("workloads: MirrorAt(%d) outside [0, %d]", step, len(ds.Batches)))
	}
	m := ds.Base.Clone()
	for _, b := range ds.Batches[:step] {
		ApplyDeltas(m, b)
	}
	return m
}
