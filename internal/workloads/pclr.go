package workloads

import "repro/internal/trace"

// PCLRApp is one application of the paper's PCLR evaluation (Table 2 and
// Figures 6–7): its published loop characteristics and reference results,
// plus a generator for the loop trace the CC-NUMA simulator replays.
type PCLRApp struct {
	// Name and LoopName identify the application and the simulated loop.
	Name, LoopName string

	// PctTseq is the loop's weight in total sequential execution time.
	PctTseq float64
	// Invocations is how many times the loop runs during the program; the
	// simulator (like the paper's) replays a single invocation.
	Invocations int
	// Iters is the average iteration count per invocation.
	Iters int
	// InstrPerIter is the average instruction count per iteration
	// (including the reduction operations).
	InstrPerIter float64
	// RedOpsPerIter is the average number of reduction operations per
	// iteration.
	RedOpsPerIter int
	// ArrayKB is the reduction array size in KB (8-byte elements).
	ArrayKB float64

	// PaperLinesFlushed and PaperLinesDisplaced are Table 2's last two
	// columns (16-processor simulation, single loop).
	PaperLinesFlushed, PaperLinesDisplaced int

	// PaperSpeedupSw/Hw/Flex are Figure 6's speedups vs sequential on the
	// 16-node machine.
	PaperSpeedupSw, PaperSpeedupHw, PaperSpeedupFlex float64

	// Locality is the generator's iteration-space clustering (see
	// PatternSpec); it controls the working-set behaviour that Table 2's
	// flushed/displaced columns reflect.
	Locality float64
	// Seed makes the generated trace reproducible.
	Seed int64
}

// Dim returns the reduction array dimension in 8-byte elements.
func (a PCLRApp) Dim() int { return int(a.ArrayKB * 1024 / 8) }

// Spec returns the PatternSpec that reproduces the app's loop at the
// paper's 16-processor configuration.
func (a PCLRApp) Spec() PatternSpec {
	dim := a.Dim()
	totalRefs := float64(a.Iters * a.RedOpsPerIter)
	return PatternSpec{
		Dim: dim,
		// PCLR reduction arrays are essentially fully touched; a
		// near-complete touched set leaves CON and the flush volume to
		// the locality parameter.
		SPPercent: 96,
		CHR:       totalRefs / (16 * float64(dim)),
		CHRProcs:  16,
		MO:        a.RedOpsPerIter,
		Locality:  a.Locality,
		Skew:      0.2,
		Work:      a.InstrPerIter - float64(a.RedOpsPerIter),
		// A fraction of the instructions in these loops are non-reduction
		// memory references that stream through the caches.
		DataRefs:    0.12 * a.InstrPerIter,
		Invocations: a.Invocations,
		Seed:        a.Seed,
	}
}

// Generate builds the app's loop trace at the given scale (1 = the
// paper's size).
func (a PCLRApp) Generate(scale float64) *trace.Loop {
	return Generate(a.Name+"/"+a.LoopName, a.Spec(), scale)
}

// PCLRApps returns the five applications of Table 2 with the paper's
// published characteristics and results.
//
// Locality settings encode each loop's documented behaviour: Euler's
// dflux and Equake's smvp stream over partitioned mesh/matrix structures
// (high locality, working set near the partition size); Vml's VecMult is
// a small sparse-BLAS kernel whose 40 KB array fits per-processor caches
// outright (the paper reports zero displaced lines); Charmm's dynamc
// mixes local bonded terms with global scatter; Nbf's GROMOS nonbonded
// loop scatters across the whole force array (the paper reports far more
// lines displaced during the loop than remain to flush at its end).
func PCLRApps() []PCLRApp {
	return []PCLRApp{
		{
			Name: "Euler", LoopName: "dflux_do100",
			PctTseq: 84.7, Invocations: 120, Iters: 59863,
			InstrPerIter: 118, RedOpsPerIter: 14, ArrayKB: 686.6,
			PaperLinesFlushed: 3261, PaperLinesDisplaced: 2117,
			PaperSpeedupSw: 1.3, PaperSpeedupHw: 4.0, PaperSpeedupFlex: 3.5,
			Locality: 0.97, Seed: 701,
		},
		{
			Name: "Equake", LoopName: "smvp",
			PctTseq: 50.0, Invocations: 3855, Iters: 30169,
			InstrPerIter: 550, RedOpsPerIter: 22, ArrayKB: 707.1,
			PaperLinesFlushed: 742, PaperLinesDisplaced: 580,
			PaperSpeedupSw: 7.3, PaperSpeedupHw: 14.0, PaperSpeedupFlex: 10.6,
			Locality: 0.93, Seed: 702,
		},
		{
			Name: "Vml", LoopName: "VecMult_CAB",
			PctTseq: 89.4, Invocations: 1, Iters: 4929,
			InstrPerIter: 135, RedOpsPerIter: 6, ArrayKB: 40.0,
			PaperLinesFlushed: 168, PaperLinesDisplaced: 0,
			PaperSpeedupSw: 3.1, PaperSpeedupHw: 6.1, PaperSpeedupFlex: 5.0,
			Locality: 0.80, Seed: 703,
		},
		{
			Name: "Charmm", LoopName: "dynamc_do",
			PctTseq: 82.8, Invocations: 1, Iters: 82944,
			InstrPerIter: 420, RedOpsPerIter: 54, ArrayKB: 1947.0,
			PaperLinesFlushed: 1849, PaperLinesDisplaced: 330,
			PaperSpeedupSw: 1.9, PaperSpeedupHw: 9.9, PaperSpeedupFlex: 7.7,
			Locality: 0.90, Seed: 704,
		},
		{
			Name: "Nbf", LoopName: "nbf_do50",
			PctTseq: 99.1, Invocations: 1, Iters: 128000,
			InstrPerIter: 1880, RedOpsPerIter: 200, ArrayKB: 1000.0,
			PaperLinesFlushed: 238, PaperLinesDisplaced: 1774,
			PaperSpeedupSw: 9.1, PaperSpeedupHw: 15.6, PaperSpeedupFlex: 14.2,
			Locality: 0.80, Seed: 705,
		},
	}
}
