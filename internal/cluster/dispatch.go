package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Pool implements server.Dispatcher; the assertion keeps the contract
// honest at compile time.
var _ server.Dispatcher = (*Pool)(nil)

// Dispatch places one interned submission on its rendezvous-ranked
// backend and returns a Waiter that carries the bounded failover policy:
// resubmit elsewhere on connection loss, retry-then-spill on BUSY, and
// server.ErrOverloaded when every avenue is exhausted (which the gateway
// front end answers as BUSY(BusyUpstream)). The timeline, when non-nil,
// accumulates the gateway legs (route, backend_wait, retry_backoff) and
// its TraceID rides the SUBMIT frame to the owning backend. The tenant
// name is accepted but not forwarded: identity is HELLO-scoped and the
// pool's backend connections authenticate as the gateway itself, so
// per-tenant quotas bite at the gateway front door while backends see
// the aggregate under the default tenant (a documented limitation —
// forwarding would need per-job tenant attribution on the wire).
func (p *Pool) Dispatch(l *trace.Loop, dst []float64, tl *obs.Timeline, tenant string) (server.Waiter, error) {
	w := &waiter{
		p:        p,
		l:        l,
		dst:      dst,
		fp:       l.Fingerprint(),
		busyLeft: p.cfg.BusyRetries,
		tl:       tl,
	}
	if tl != nil {
		w.traceID = tl.TraceID
	}
	if err := w.submitNext(); err != nil {
		return nil, err
	}
	return w, nil
}

// Stats aggregates engine statistics over every healthy backend
// (engine.Stats.Merge), fetched concurrently under LegTimeout. A
// backend that sits silent past the deadline is skipped and marked
// down — its fetch goroutine is abandoned to resolve whenever the
// connection finally answers or dies (at most one per timed-out
// request, so a wedged backend cannot accumulate them faster than
// stats are asked for). Stats fails only when no backend answered.
func (p *Pool) Stats() (engine.Stats, error) {
	var healthy []*backend
	for _, b := range p.snapshot() {
		if b.healthy.Load() && b.cl.Load() != nil {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return engine.Stats{}, fmt.Errorf("%w: no healthy backend for stats", server.ErrOverloaded)
	}
	type snap struct {
		s   engine.Stats
		err error
	}
	chans := make([]chan snap, len(healthy))
	for i, b := range healthy {
		ch := make(chan snap, 1)
		chans[i] = ch
		go func(b *backend) {
			s, err := b.cl.Load().Stats()
			ch <- snap{s, err}
		}(b)
	}
	deadline := time.NewTimer(p.cfg.LegTimeout)
	defer deadline.Stop()
	var agg engine.Stats
	answered := 0
	expired := false
	var firstErr error
	for i, ch := range chans {
		var sn snap
		var got bool
		if expired {
			// The shared deadline already fired (the timer delivers once);
			// take only answers that are already in hand.
			select {
			case sn = <-ch:
				got = true
			default:
			}
		} else {
			select {
			case sn = <-ch:
				got = true
			case <-deadline.C:
				expired = true
			}
		}
		if !got {
			p.markDown(healthy[i])
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: stats from %s: %w", healthy[i].addr, client.ErrTimeout)
			}
			continue
		}
		if sn.err != nil {
			if firstErr == nil {
				firstErr = sn.err
			}
			continue
		}
		agg.Merge(sn.s)
		answered++
	}
	if answered == 0 {
		return engine.Stats{}, fmt.Errorf("cluster: stats: %w", firstErr)
	}
	return agg, nil
}

// Procs reports the largest per-job fan-out any backend advertised in
// its HELLO — the figure the gateway forwards in its own HELLO.
func (p *Pool) Procs() int {
	procs := 1
	for _, b := range p.snapshot() {
		if n := int(b.procs.Load()); n > procs {
			procs = n
		}
	}
	return procs
}

// HelloFlags advertises the gateway capability bit.
func (p *Pool) HelloFlags() uint64 { return wire.HelloFlagGateway }

// waiter is one job's journey through the backend tier: at most one leg
// in flight at a time, with failover decided at Wait time (connection
// loss may surface only after pipelined submission succeeded). Reduction
// jobs are pure functions of the loop, so resubmitting a
// maybe-already-executed leg is harmless.
type waiter struct {
	p *Pool
	l *trace.Loop
	// dst is the preferred destination array, abandoned (set nil) if a
	// timed-out leg might still write into it.
	dst []float64
	fp  uint64
	// tried records backends whose leg failed, so failover moves on
	// instead of bouncing back. It is allocated lazily: the common
	// single-leg job never pays for the map.
	tried    map[*backend]bool
	busyLeft int

	// tl, when non-nil, receives the gateway-leg stage durations; traceID
	// is forwarded on every backend SUBMIT so both tiers record the job
	// under one ID. Dispatch and Wait touch the timeline sequentially
	// (the connection hands it off), so no locking is needed.
	tl      *obs.Timeline
	traceID uint64

	cur *backend
	h   *client.Handle
}

// markTried commits a backend to the exclusion set (allocated on first
// failure — the happy path never builds it).
func (w *waiter) markTried(b *backend) {
	if w.tried == nil {
		w.tried = make(map[*backend]bool, 2)
	}
	w.tried[b] = true
}

// failover gives up on the current backend and re-places the job.
func (w *waiter) failover() error {
	w.markTried(w.cur)
	if w.tl != nil {
		w.tl.Failovers++
	}
	return w.submitNext()
}

// submitNext places the job on the best remaining backend, marking each
// one that fails at submit time down. When no backend remains the job is
// exhausted: explicit backpressure instead of internal queueing. The
// whole placement — ranking plus however many submit attempts it takes —
// is charged to the route stage.
func (w *waiter) submitNext() error {
	start := time.Now()
	defer func() { w.tl.Add(obs.StageRoute, time.Since(start)) }()
	for {
		b := w.p.pick(w.fp, w.tried)
		if b == nil {
			w.p.exhausted.Add(1)
			return fmt.Errorf("%w: no backend available for %q", server.ErrOverloaded, w.l.Name)
		}
		if w.submitTo(b) {
			return nil
		}
		w.markTried(b)
	}
}

// submitTo attempts one leg on b, reporting success. Submit-time
// failures (dial refused, write on a dead socket) mark b down for the
// prober to revive.
func (w *waiter) submitTo(b *backend) bool {
	cl := b.cl.Load()
	if cl == nil {
		w.p.markDown(b)
		return false
	}
	h, err := cl.SubmitAsyncIntoTraced(w.l, w.dst, w.traceID)
	if err != nil {
		w.p.markDown(b)
		return false
	}
	b.jobs.Add(1)
	w.cur, w.h = b, h
	return true
}

// Wait resolves the job, running the failover policy until a result, a
// permanent job error, or exhaustion. Each leg's wait is bounded by
// LegTimeout so a half-open backend cannot pin the job (and the
// gateway admission slot holding it) forever.
func (w *waiter) Wait() (engine.Result, error) {
	for {
		legStart := time.Now()
		res, err := w.h.WaitTimeout(w.p.cfg.LegTimeout)
		w.tl.Add(obs.StageBackendWait, time.Since(legStart))
		switch {
		case err == nil:
			return res, nil

		case errors.Is(err, client.ErrBusy):
			// Affinity first: retry the same backend with backoff — the
			// pattern's cached decision and open batches live there. Spill
			// to the next-ranked backend only once the budget is spent.
			if w.busyLeft > 0 {
				w.busyLeft--
				w.p.busyRetries.Add(1)
				if w.tl != nil {
					w.tl.Retries++
				}
				// Clamp the exponent, not the product: a large retry budget
				// must saturate the backoff at 64x, not shift it into
				// overflow.
				exp := uint(w.p.cfg.BusyRetries - 1 - w.busyLeft)
				if exp > 6 {
					exp = 6
				}
				backoff := w.p.cfg.BusyBackoff << exp
				time.Sleep(backoff)
				w.tl.Add(obs.StageRetryWait, backoff)
				if w.submitTo(w.cur) {
					continue
				}
			} else {
				w.p.busySpills.Add(1)
			}
			w.busyLeft = w.p.cfg.BusyRetries
			if err := w.failover(); err != nil {
				return engine.Result{}, err
			}

		case errors.Is(err, client.ErrTimeout):
			// The backend sat silent past LegTimeout: half-open, wedged, or
			// unreachable without a TCP reset. Mark it down and re-place
			// the job — but stop sharing the destination array, because the
			// abandoned leg's response may still arrive and be decoded into
			// it (later legs allocate fresh).
			w.p.markDown(w.cur)
			w.p.timedOut.Add(1)
			w.dst = nil
			if err := w.failover(); err != nil {
				return engine.Result{}, err
			}

		case errors.Is(err, client.ErrConnLost) || errors.Is(err, client.ErrClosed):
			// The backend died (or was removed) with this job in flight.
			// Whether it executed is unknown and irrelevant — re-place the
			// job on the surviving backends.
			w.p.markDown(w.cur)
			w.p.rerouted.Add(1)
			if err := w.failover(); err != nil {
				return engine.Result{}, err
			}

		default:
			// A job-scoped server error is deterministic: the same loop
			// would fail anywhere. Surface it.
			return engine.Result{}, err
		}
	}
}
