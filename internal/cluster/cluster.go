// Package cluster turns a set of reduxd daemons into one horizontally
// scaled reduction tier behind a gateway (cmd/reduxgw). It implements
// server.Dispatcher: the gateway's shared connection front end
// (internal/server) decodes and interns submissions exactly as the
// daemon does, then hands them here to be routed onward over the pooled
// pipelining client (internal/client).
//
// The routing rule is the whole point: submissions are placed by
// rendezvous-hashing the loop's pattern fingerprint over the healthy
// backends, so every repetition of one access pattern lands on the same
// reduxd. Batch fusion and the decision cache only pay off when
// equal-pattern jobs share an engine — the paper's application-centric
// locality argument, applied to placement instead of scheduling. Spread
// the same traffic round-robin and each backend would see every pattern:
// N× the cached decisions, 1/N the coalescing opportunities.
//
// Placement is correctness-free, so failure handling can be aggressive:
//
//   - Rendezvous hashing re-homes only the dead backend's patterns on
//     membership change; every other pattern keeps its engine (and its
//     warmed decision cache and feedback schedules).
//   - Reduction jobs are pure functions of the submitted loop, so a job
//     cut off by a connection loss (client.ErrConnLost — executed or
//     not, unknown) is simply resubmitted to the next-ranked backend.
//   - BUSY from a backend is retried on the same backend with backoff
//     (keeping affinity through transient pressure), then spilled to the
//     next-ranked one; when the bounded budget is exhausted the job
//     fails with server.ErrOverloaded, which the gateway's front end
//     turns into BUSY(BusyUpstream) — explicit backpressure to the
//     client rather than unbounded internal queueing.
//
// A background prober revives backends that dropped out: a backend is
// marked unhealthy the moment a dispatch observes its connection die,
// taken out of the rendezvous ranking, and probed every HealthInterval
// until it answers again.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// Config parameterizes a Pool.
type Config struct {
	// Backends is the initial reduxd address list. Unreachable backends
	// are admitted unhealthy and probed until they answer; New fails only
	// when the list is empty.
	Backends []string
	// Conns is each backend client's connection pool size (default 2).
	Conns int
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// MaxFrameBytes caps one response frame (default wire.DefaultMaxFrame).
	MaxFrameBytes int
	// HealthInterval is the probe period for unhealthy backends (default
	// 250ms). Healthy backends are not probed — the data path itself
	// detects their failures.
	HealthInterval time.Duration
	// BusyRetries is how many times a BUSY answer is retried on the same
	// backend, with backoff, before the job spills to the next-ranked
	// one. Zero means the default of 2; negative disables same-backend
	// retries entirely (spill immediately — a latency-over-affinity
	// policy).
	BusyRetries int
	// BusyBackoff is the initial sleep between BUSY retries, doubling per
	// attempt (default 1ms).
	BusyBackoff time.Duration
	// LegTimeout bounds one backend's silence on a dispatched job or a
	// stats fetch (default 30s — engine jobs resolve in microseconds to
	// milliseconds, so expiry means the backend is wedged, not slow). A
	// timed-out backend is marked down and the job re-placed; without
	// this bound a half-open backend — alive at TCP, dead above it —
	// would pin jobs and admission slots forever.
	LegTimeout time.Duration
}

func (c *Config) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.BusyRetries == 0 {
		c.BusyRetries = 2
	} else if c.BusyRetries < 0 {
		c.BusyRetries = 0
	}
	if c.BusyBackoff <= 0 {
		c.BusyBackoff = time.Millisecond
	}
	if c.LegTimeout <= 0 {
		c.LegTimeout = 30 * time.Second
	}
}

// Pool is a health-checked set of reduxd backends with pattern-affinity
// routing. It implements server.Dispatcher; put it behind
// server.NewWithDispatcher to make a gateway. Safe for concurrent use.
type Pool struct {
	cfg Config

	mu       sync.RWMutex
	backends []*backend
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup

	rerouted    atomic.Uint64 // jobs re-placed after their backend's connection died
	timedOut    atomic.Uint64 // jobs re-placed after a backend sat silent past LegTimeout
	busyRetries atomic.Uint64 // same-backend resubmissions after BUSY
	busySpills  atomic.Uint64 // jobs that left their affinity backend because of BUSY
	exhausted   atomic.Uint64 // jobs that ran out of backends (surfaced as ErrOverloaded)
}

// backend is one reduxd in the pool.
type backend struct {
	addr string
	seed uint64 // rendezvous seed, derived from addr

	probeMu sync.Mutex // serializes probe() (Add races the health loop)
	cl      atomic.Pointer[client.Client]
	healthy atomic.Bool
	procs   atomic.Int64 // from the backend's HELLO, for aggregate Procs()
	jobs    atomic.Uint64
}

// New builds a pool over cfg.Backends and starts its health prober.
// Backends that do not answer immediately are admitted unhealthy; the
// pool is usable as soon as any backend is reachable.
func New(cfg Config) (*Pool, error) {
	cfg.fill()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	for _, addr := range cfg.Backends {
		if err := p.Add(addr); err != nil {
			return nil, err
		}
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p, nil
}

// Add registers one backend address, attempting an eager dial (failure
// leaves it unhealthy for the prober to revive). Patterns that rank the
// new backend highest migrate to it; everything else keeps its engine.
func (p *Pool) Add(addr string) error {
	b := &backend{addr: addr, seed: seedFor(addr)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("cluster: pool closed")
	}
	for _, have := range p.backends {
		if have.addr == addr {
			p.mu.Unlock()
			return fmt.Errorf("cluster: backend %s already in pool", addr)
		}
	}
	p.backends = append(p.backends, b)
	p.mu.Unlock()
	p.probe(b)
	return nil
}

// Remove takes the backend at addr out of the pool and closes its
// client, reporting whether it was present. Jobs in flight on it resolve
// with a connection error and re-place onto the surviving backends; its
// patterns re-home by rendezvous ranking.
func (p *Pool) Remove(addr string) bool {
	p.mu.Lock()
	var gone *backend
	// Copy-on-write: snapshot() hands the membership slice to readers
	// that iterate it outside the lock, so removal must build a fresh
	// slice rather than shift the shared backing array in place.
	next := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.addr == addr {
			gone = b
			continue
		}
		next = append(next, b)
	}
	p.backends = next
	p.mu.Unlock()
	if gone == nil {
		return false
	}
	gone.healthy.Store(false)
	if cl := gone.cl.Load(); cl != nil {
		cl.Close()
	}
	return true
}

// Close stops the prober and closes every backend client. Jobs still in
// flight resolve with connection errors.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	backends := append([]*backend(nil), p.backends...)
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	for _, b := range backends {
		b.healthy.Store(false)
		if cl := b.cl.Load(); cl != nil {
			cl.Close()
		}
	}
}

// snapshot returns the current membership without holding the lock.
func (p *Pool) snapshot() []*backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.backends
}

// seedFor hashes a backend address into its rendezvous seed (FNV-1a).
func seedFor(addr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// score mixes a pattern fingerprint with the backend's seed
// (SplitMix64-style finalizer). The backend with the highest score owns
// the pattern; because each backend scores independently, removing one
// re-homes only the patterns it owned — every other pattern keeps its
// warmed engine.
func (b *backend) score(fp uint64) uint64 {
	h := fp ^ b.seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pick returns the highest-scoring healthy backend for fp that tried
// does not exclude, or nil when none remains.
func (p *Pool) pick(fp uint64, tried map[*backend]bool) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range p.snapshot() {
		if tried[b] || !b.healthy.Load() {
			continue
		}
		if s := b.score(fp); best == nil || s > bestScore || (s == bestScore && b.addr < best.addr) {
			best, bestScore = b, s
		}
	}
	return best
}

// markDown records a data-path failure: the backend leaves the
// rendezvous ranking until the prober revives it.
func (p *Pool) markDown(b *backend) { b.healthy.Store(false) }

// healthLoop probes unhealthy backends every HealthInterval.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, b := range p.snapshot() {
				if !b.healthy.Load() {
					p.probe(b)
				}
			}
		}
	}
}

// probe tries to (re)establish b. A backend with no client yet gets an
// eager Dial (which validates address, protocol and version). A backend
// that was marked down is checked with a fresh, deadline-bounded probe
// connection — not the pooled client, whose Hello answers from a cached
// session without network I/O and would revive a dead backend on
// stale evidence. On success the backend rejoins the rendezvous
// ranking; the pooled client redials transparently on the next job.
//
// The mutex serializes concurrent probes of one backend (Add runs one
// synchronously while the health loop ticks): without it two callers
// could both Dial and both Store, leaking the loser's live connections.
func (p *Pool) probe(b *backend) {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if b.cl.Load() == nil {
		fresh, err := client.Dial(b.addr, client.Config{
			Conns:         p.cfg.Conns,
			DialTimeout:   p.cfg.DialTimeout,
			MaxFrameBytes: p.cfg.MaxFrameBytes,
		})
		if err != nil {
			return
		}
		b.cl.Store(fresh)
		if h, err := fresh.Hello(); err == nil {
			b.procs.Store(int64(h.Procs))
			b.healthy.Store(true)
		}
		return
	}
	if h, ok := probeDial(b.addr, p.cfg.DialTimeout, p.cfg.MaxFrameBytes); ok {
		b.procs.Store(int64(h.Procs))
		b.healthy.Store(true)
	}
}

// probeDial performs one real liveness round-trip: dial, preamble, read
// the HELLO, all under the dial timeout. Either the backend proves it is
// serving the protocol right now, or the probe fails.
func probeDial(addr string, timeout time.Duration, maxFrame int) (wire.Hello, bool) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.Hello{}, false
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	if err := wire.WritePreamble(nc); err != nil {
		return wire.Hello{}, false
	}
	f, err := wire.NewReader(bufio.NewReader(nc), maxFrame).Next()
	if err != nil {
		return wire.Hello{}, false
	}
	h, err := f.DecodeHello()
	if err != nil {
		return wire.Hello{}, false
	}
	return h, true
}

// BackendStatus is one backend's slice of PoolStats.
type BackendStatus struct {
	// Addr is the backend's dial address.
	Addr string
	// Healthy reports whether the backend is in the rendezvous ranking.
	Healthy bool
	// Jobs counts submissions this pool dispatched to the backend
	// (including failover legs).
	Jobs uint64
}

// PoolStats is a snapshot of the pool's routing and failover counters —
// the gateway-tier counters reduxgw prints next to the aggregated engine
// statistics.
type PoolStats struct {
	// Backends lists per-backend status in membership order.
	Backends []BackendStatus
	// Rerouted counts jobs re-placed after their backend's connection
	// died mid-flight.
	Rerouted uint64
	// TimedOut counts jobs re-placed after a backend sat silent past
	// LegTimeout (the half-open-backend escape hatch).
	TimedOut uint64
	// BusyRetries counts same-backend resubmissions after BUSY answers.
	BusyRetries uint64
	// BusySpills counts jobs that left their affinity backend because its
	// BUSY retry budget ran out.
	BusySpills uint64
	// Exhausted counts jobs that ran out of backends entirely and were
	// surfaced to the client as BUSY(BusyUpstream).
	Exhausted uint64
}

// PoolStats snapshots the routing counters.
func (p *Pool) PoolStats() PoolStats {
	s := PoolStats{
		Rerouted:    p.rerouted.Load(),
		TimedOut:    p.timedOut.Load(),
		BusyRetries: p.busyRetries.Load(),
		BusySpills:  p.busySpills.Load(),
		Exhausted:   p.exhausted.Load(),
	}
	for _, b := range p.snapshot() {
		s.Backends = append(s.Backends, BackendStatus{
			Addr:    b.addr,
			Healthy: b.healthy.Load(),
			Jobs:    b.jobs.Load(),
		})
	}
	return s
}
