package cluster_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/workloads"
)

func findTrace(traces []obs.JobTrace, id uint64) (obs.JobTrace, bool) {
	for _, tr := range traces {
		if tr.TraceID == id {
			return tr, true
		}
	}
	return obs.JobTrace{}, false
}

// TestCrossTierTraceStitching is the end-to-end tracing acceptance test:
// a traced job submitted through the gateway must appear in BOTH tiers'
// trace rings under the same trace ID — the client-assigned ID rides the
// SUBMIT frame to the gateway and is forwarded on the backend leg. On
// each tier the stage durations sum exactly to that tier's recorded
// total, and the gateway's total (which brackets the whole journey) is
// within the client's observed latency.
func TestCrossTierTraceStitching(t *testing.T) {
	b := startBackend(t, engine.Config{}, server.Config{TraceSlow: -1})
	g := testkit.StartGateway(t, cluster.Config{},
		server.Config{TraceSlow: -1}, b.addr)
	cl := testkit.DialPool(t, g.Addr, client.Config{Conns: 1})

	l := workloads.MixedSet(0.2)[0]
	const wantID = uint64(0x5eed_cafe_f00d)
	start := time.Now()
	h, err := cl.SubmitAsyncIntoTraced(l, nil, wantID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	clientLatency := time.Since(start)

	gwTrace, ok := findTrace(g.Srv.Traces(), wantID)
	if !ok {
		t.Fatalf("trace %#x not in gateway ring: %+v", wantID, g.Srv.Traces())
	}
	beTrace, ok := findTrace(b.d.Srv.Traces(), wantID)
	if !ok {
		t.Fatalf("trace %#x not in backend ring: %+v", wantID, b.d.Srv.Traces())
	}

	check := func(tier string, tr obs.JobTrace) map[string]int64 {
		t.Helper()
		byStage := map[string]int64{}
		var sum int64
		for _, st := range tr.Stages {
			byStage[st.Stage] = st.Ns
			sum += st.Ns
		}
		if sum != tr.TotalNs {
			t.Fatalf("%s: stages sum to %dns, total %dns", tier, sum, tr.TotalNs)
		}
		return byStage
	}
	gwStages := check("gateway", gwTrace)
	beStages := check("backend", beTrace)

	// The gateway's journey includes routing and the backend leg; the
	// backend's includes the engine stages. Each tier records the stages
	// it owns.
	for _, st := range []string{"route", "backend_wait"} {
		if gwStages[st] <= 0 {
			t.Fatalf("gateway trace missing %s leg: %v", st, gwStages)
		}
	}
	for _, st := range []string{"decode", "intern", "execute"} {
		if beStages[st] <= 0 {
			t.Fatalf("backend trace missing %s stage: %v", st, beStages)
		}
	}

	// The gateway total brackets the backend total and sits within the
	// client's observed latency (client adds only encode + socket time on
	// top, so the gateway must account for the bulk of it).
	if gwTrace.TotalNs < beTrace.TotalNs {
		t.Fatalf("gateway total %dns below backend total %dns", gwTrace.TotalNs, beTrace.TotalNs)
	}
	if gwTrace.TotalNs > clientLatency.Nanoseconds() {
		t.Fatalf("gateway total %dns exceeds client latency %dns", gwTrace.TotalNs, clientLatency.Nanoseconds())
	}
}

// TestGatewayRetryLegsTraced pins the retry accounting: a job that draws
// BUSY from a saturated backend and retries records the retry count and
// a retry_backoff leg on its gateway timeline.
func TestGatewayRetryLegsTraced(t *testing.T) {
	// One worker, queue depth 1 and a single in-flight slot make the
	// backend answer BUSY under minimal pressure.
	b := startBackend(t,
		engine.Config{Workers: 1, QueueDepth: 1},
		server.Config{MaxInflightPerConn: 1, MaxInflightGlobal: 1})
	g := testkit.StartGateway(t,
		cluster.Config{BusyRetries: 8, BusyBackoff: time.Millisecond},
		server.Config{TraceSlow: -1, MaxInflightPerConn: 64}, b.addr)
	cl := testkit.DialPool(t, g.Addr, client.Config{Conns: 1})

	loops := workloads.MixedSet(0.2)[:4]
	handles := make([]*client.Handle, 0, 16)
	for i := 0; i < 16; i++ {
		h, err := cl.SubmitAsync(loops[i%len(loops)])
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		// BUSY escaping to the client is fine here — saturation is the
		// point; only successfully retried jobs are inspected below.
		h.Wait()
	}

	var retried bool
	for _, tr := range g.Srv.Traces() {
		if tr.Retries > 0 {
			retried = true
			var backoff int64
			for _, st := range tr.Stages {
				if st.Stage == "retry_backoff" {
					backoff = st.Ns
				}
			}
			if backoff <= 0 {
				t.Fatalf("trace %#x has %d retries but no retry_backoff leg: %+v",
					tr.TraceID, tr.Retries, tr.Stages)
			}
		}
	}
	if !retried {
		t.Skip("no job drew BUSY under this scheduling; retry path not exercised")
	}
}
