package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testPool builds a pool of n healthy in-memory backends without any
// networking, for exercising the rendezvous placement alone.
func testPool(n int) *Pool {
	p := &Pool{}
	for i := 0; i < n; i++ {
		b := &backend{addr: fmt.Sprintf("10.0.0.%d:9070", i+1)}
		b.seed = seedFor(b.addr)
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
	}
	return p
}

// TestRendezvousStable pins the affinity property: the same fingerprint
// always ranks the same backend while membership is unchanged.
func TestRendezvousStable(t *testing.T) {
	p := testPool(5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		fp := rng.Uint64()
		first := p.pick(fp, nil)
		for j := 0; j < 3; j++ {
			if got := p.pick(fp, nil); got != first {
				t.Fatalf("fingerprint %x moved from %s to %s with stable membership", fp, first.addr, got.addr)
			}
		}
	}
}

// TestRendezvousMinimalDisruption is the reason rendezvous hashing is
// used instead of modulo placement: removing one backend may re-home
// only the patterns that backend owned — every other pattern keeps its
// warmed engine.
func TestRendezvousMinimalDisruption(t *testing.T) {
	p := testPool(5)
	gone := p.backends[2]
	rng := rand.New(rand.NewSource(11))
	fps := make([]uint64, 1000)
	owner := make(map[uint64]*backend, len(fps))
	for i := range fps {
		fps[i] = rng.Uint64()
		owner[fps[i]] = p.pick(fps[i], nil)
	}
	if !p.Remove(gone.addr) {
		t.Fatalf("Remove(%s) found nothing", gone.addr)
	}
	moved := 0
	for _, fp := range fps {
		now := p.pick(fp, nil)
		if now == nil {
			t.Fatalf("fingerprint %x has no owner after removal", fp)
		}
		if before := owner[fp]; now != before {
			if before != gone {
				t.Fatalf("fingerprint %x moved from surviving backend %s to %s", fp, before.addr, now.addr)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no fingerprint re-homed: the removed backend owned nothing out of 1000")
	}
}

// TestRendezvousSpreads sanity-checks the placement balance: over 1000
// random fingerprints each of 5 backends should own a material share
// (expected 200 each; 50 is ~11 sigma below, so failure means a broken
// mix, not bad luck).
func TestRendezvousSpreads(t *testing.T) {
	p := testPool(5)
	counts := make(map[*backend]int)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		counts[p.pick(rng.Uint64(), nil)]++
	}
	for _, b := range p.backends {
		if counts[b] < 50 {
			t.Errorf("backend %s owns only %d of 1000 fingerprints", b.addr, counts[b])
		}
	}
}

// TestRendezvousSkipsUnhealthyAndTried pins the failover ordering
// contract: unhealthy backends never rank, tried backends are not
// re-picked, and exhaustion returns nil.
func TestRendezvousSkipsUnhealthyAndTried(t *testing.T) {
	p := testPool(3)
	fp := uint64(0xdeadbeef)
	first := p.pick(fp, nil)
	first.healthy.Store(false)
	second := p.pick(fp, nil)
	if second == first || second == nil {
		t.Fatalf("unhealthy backend still picked")
	}
	tried := map[*backend]bool{second: true}
	third := p.pick(fp, tried)
	if third == first || third == second || third == nil {
		t.Fatalf("tried/unhealthy backend re-picked")
	}
	tried[third] = true
	if got := p.pick(fp, tried); got != nil {
		t.Fatalf("exhausted pick returned %s, want nil", got.addr)
	}
}
