package cluster_test

import (
	"bufio"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// killableListener records accepted connections so a test can simulate
// backend death: close the listener and cut every live socket, leaving
// in-flight jobs to fail with ErrConnLost on the gateway side.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	for _, c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
}

// backendStack is one spawned reduxd-shaped backend with a killable
// listener for failure injection.
type backendStack struct {
	d    *testkit.Daemon
	eng  *engine.Engine
	ln   *killableListener
	addr string
}

func startBackend(t *testing.T, ecfg engine.Config, scfg server.Config) *backendStack {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &killableListener{Listener: raw}
	d := testkit.StartDaemonOn(t, ln, ecfg, scfg)
	return &backendStack{d: d, eng: d.Eng, ln: ln, addr: d.Addr}
}

// kill simulates backend death: the listener closes, every live socket
// is cut, and the testkit teardown is told not to expect a clean Serve
// exit.
func (b *backendStack) kill() {
	b.d.ExpectUncleanServe()
	b.ln.kill()
}

// startGateway puts a pool over the given backends behind a server
// speaking the wire protocol, and returns the pool plus a connected
// client (both torn down via t.Cleanup by testkit).
func startGateway(t *testing.T, ccfg cluster.Config, scfg server.Config, addrs ...string) (*cluster.Pool, *client.Client) {
	t.Helper()
	g := testkit.StartGateway(t, ccfg, scfg, addrs...)
	return g.Pool, testkit.DialPool(t, g.Addr, client.Config{Conns: 2})
}

func assertMatches(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
}

// TestGatewayAffinityAndAggregation drives many repetitions of a pattern
// population through client → gateway → 2 backends and checks the two
// cluster-level invariants: results match the sequential reference, and
// every pattern was characterized on exactly one backend (the sum of the
// backends' decision-cache entries equals the population size — pattern
// affinity held). It also pins the gateway HELLO capability bit and that
// STATS through the gateway is the aggregate of both engines.
func TestGatewayAffinityAndAggregation(t *testing.T) {
	b1 := startBackend(t, engine.Config{}, server.Config{})
	b2 := startBackend(t, engine.Config{}, server.Config{})
	_, cl := startGateway(t, cluster.Config{}, server.Config{}, b1.addr, b2.addr)

	h, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags&wire.HelloFlagGateway == 0 {
		t.Fatalf("gateway HELLO flags %#x missing gateway bit", h.Flags)
	}

	loops := workloads.HotKeySet(16, 0.2)
	refs := make(map[*trace.Loop][]float64, len(loops))
	for _, l := range loops {
		refs[l] = l.RunSequential()
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		handles := make([]*client.Handle, len(loops))
		for i, l := range loops {
			if handles[i], err = cl.SubmitAsync(l); err != nil {
				t.Fatal(err)
			}
		}
		for i, hd := range handles {
			res, err := hd.Wait()
			if err != nil {
				t.Fatal(err)
			}
			assertMatches(t, loops[i].Name, res.Values, refs[loops[i]])
		}
	}

	s1, s2 := b1.eng.Stats(), b2.eng.Stats()
	total := int(s1.Jobs + s2.Jobs)
	if total != rounds*len(loops) {
		t.Fatalf("backends executed %d jobs, want %d", total, rounds*len(loops))
	}
	if s1.Jobs == 0 || s2.Jobs == 0 {
		t.Fatalf("one backend idle (%d/%d jobs): routing did not spread", s1.Jobs, s2.Jobs)
	}
	if got := s1.CacheEntries + s2.CacheEntries; got != len(loops) {
		t.Fatalf("%d decision-cache entries across 2 backends for %d patterns: affinity broke", got, len(loops))
	}

	agg, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Jobs != s1.Jobs+s2.Jobs {
		t.Fatalf("aggregated STATS reports %d jobs, backends hold %d", agg.Jobs, s1.Jobs+s2.Jobs)
	}
	if agg.CacheEntries != s1.CacheEntries+s2.CacheEntries {
		t.Fatalf("aggregated STATS reports %d cache entries, backends hold %d", agg.CacheEntries, s1.CacheEntries+s2.CacheEntries)
	}
}

// TestGatewayBackendDeathReroutes kills a backend with a pipeline of
// jobs in flight on it and requires every one of them to resolve
// correctly anyway: the gateway re-places jobs whose connection died
// onto the survivor (reduction jobs are pure, so resubmission is safe).
func TestGatewayBackendDeathReroutes(t *testing.T) {
	b1 := startBackend(t, engine.Config{Workers: 1}, server.Config{})
	b2 := startBackend(t, engine.Config{Workers: 1}, server.Config{})
	pool, cl := startGateway(t,
		cluster.Config{HealthInterval: time.Hour}, // no mid-test revival
		server.Config{}, b1.addr, b2.addr)

	// Locate the backend that owns this loop's pattern by submitting it
	// once and seeing which engine ran it. The loop is scaled up so a
	// batch takes milliseconds: the burst below must still be in flight
	// when the sockets are cut.
	l := workloads.HotKeySet(1, 2.0)[0]
	want := l.RunSequential()
	res, err := cl.Submit(l)
	if err != nil {
		t.Fatal(err)
	}
	assertMatches(t, l.Name, res.Values, want)
	owner, survivor := b1, b2
	if b2.eng.Stats().Jobs > 0 {
		owner, survivor = b2, b1
	}

	// Pipeline a burst onto the owner, then cut every socket under it.
	const burst = 64
	handles := make([]*client.Handle, burst)
	for i := range handles {
		if handles[i], err = cl.SubmitAsync(l); err != nil {
			t.Fatal(err)
		}
	}
	owner.kill()
	for _, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("job lost to backend death: %v", err)
		}
		assertMatches(t, l.Name, res.Values, want)
	}

	ps := pool.PoolStats()
	if ps.Rerouted == 0 {
		t.Fatal("no job rerouted: the kill raced ahead of the pipeline")
	}
	for _, b := range ps.Backends {
		if b.Addr == owner.addr && b.Healthy {
			t.Fatal("dead backend still marked healthy")
		}
	}
	if survivor.eng.Stats().Jobs == 0 {
		t.Fatal("survivor executed nothing")
	}
}

// busyStub is a protocol-correct backend that answers BUSY(global) to
// every submission — the deterministic way to drive the gateway's retry
// budget to exhaustion.
func busyStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				if _, err := wire.ReadPreamble(br); err != nil {
					return
				}
				buf := wire.GetBuffer()
				buf.B = wire.AppendHello(buf.B, wire.Hello{Version: wire.ProtoVersion, Procs: 4, MaxInflight: 64})
				nc.Write(buf.B)
				buf.Free()
				r := wire.NewReader(br, 0)
				for {
					f, err := r.Next()
					if err != nil {
						return
					}
					out := wire.GetBuffer()
					out.B = wire.AppendBusy(out.B, f.JobID, wire.BusyGlobal)
					nc.Write(out.B)
					out.Free()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestGatewayAllBusySurfacesBusy pins the backpressure contract: when
// every backend answers BUSY past the bounded retry budget, the client
// sees ErrBusy carrying the upstream code — not an error, not a hang.
func TestGatewayAllBusySurfacesBusy(t *testing.T) {
	s1, s2 := busyStub(t), busyStub(t)
	pool, cl := startGateway(t,
		cluster.Config{BusyRetries: 1, BusyBackoff: 100 * time.Microsecond},
		server.Config{}, s1, s2)

	l := workloads.HotKeySet(1, 0.2)[0]
	_, err := cl.Submit(l)
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("all-busy tier returned %v, want ErrBusy", err)
	}
	if !strings.Contains(err.Error(), wire.BusyUpstream.String()) {
		t.Fatalf("busy error %q does not carry the upstream code", err)
	}
	ps := pool.PoolStats()
	if ps.BusyRetries == 0 || ps.Exhausted == 0 {
		t.Fatalf("pool stats %+v: expected busy retries and an exhausted job", ps)
	}
}

// hungStub is a backend that is alive at TCP but dead above it: it
// completes the preamble/HELLO handshake, then reads and discards every
// frame without ever answering — the half-open failure mode that
// produces neither a result nor a connection error.
func hungStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				if _, err := wire.ReadPreamble(br); err != nil {
					return
				}
				buf := wire.GetBuffer()
				buf.B = wire.AppendHello(buf.B, wire.Hello{Version: wire.ProtoVersion, Procs: 4, MaxInflight: 64})
				nc.Write(buf.B)
				buf.Free()
				r := wire.NewReader(br, 0)
				for {
					if _, err := r.Next(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestClientWaitTimeout pins the client-level escape hatch: a job on a
// half-open connection resolves with ErrTimeout once the caller's
// deadline passes, instead of blocking forever.
func TestClientWaitTimeout(t *testing.T) {
	cl, err := client.Dial(hungStub(t), client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.SubmitAsync(workloads.HotKeySet(1, 0.2)[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.WaitTimeout(50 * time.Millisecond); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("wait on hung connection returned %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitTimeout took %v", elapsed)
	}
}

// TestGatewayHungBackendTimesOut pins the tier-level consequence: a
// backend that accepts jobs and never answers cannot pin them (or the
// gateway's admission slots) forever — the leg times out, the backend
// is marked down, and with no alternative the client gets BUSY
// backpressure rather than a hang.
func TestGatewayHungBackendTimesOut(t *testing.T) {
	pool, cl := startGateway(t,
		cluster.Config{LegTimeout: 100 * time.Millisecond, HealthInterval: time.Hour},
		server.Config{}, hungStub(t))

	_, err := cl.Submit(workloads.HotKeySet(1, 0.2)[0])
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("hung tier returned %v, want ErrBusy backpressure", err)
	}
	ps := pool.PoolStats()
	if ps.TimedOut == 0 || ps.Exhausted == 0 {
		t.Fatalf("pool stats %+v: expected a timed-out leg and an exhausted job", ps)
	}
	if ps.Backends[0].Healthy {
		t.Fatal("hung backend still marked healthy")
	}
}

// TestGatewayMembershipRehash grows and then shrinks the pool mid-stream
// and requires every result to stay correct: adding a backend re-homes
// only the patterns that rank it first, removing one re-places its jobs,
// and verification against the sequential reference holds throughout.
func TestGatewayMembershipRehash(t *testing.T) {
	b1 := startBackend(t, engine.Config{}, server.Config{})
	b2 := startBackend(t, engine.Config{}, server.Config{})
	pool, cl := startGateway(t, cluster.Config{}, server.Config{}, b1.addr, b2.addr)

	loops := workloads.HotKeySet(24, 0.2)
	refs := make(map[*trace.Loop][]float64, len(loops))
	for _, l := range loops {
		refs[l] = l.RunSequential()
	}
	round := func() {
		t.Helper()
		for _, l := range loops {
			res, err := cl.Submit(l)
			if err != nil {
				t.Fatal(err)
			}
			assertMatches(t, l.Name, res.Values, refs[l])
		}
	}

	round()

	// Grow: the new backend takes over the patterns that rank it first.
	b3 := startBackend(t, engine.Config{}, server.Config{})
	if err := pool.Add(b3.addr); err != nil {
		t.Fatal(err)
	}
	round()
	round()
	if b3.eng.Stats().Jobs == 0 {
		t.Fatal("grown backend received nothing over 48 placements")
	}

	// Shrink: remove a founding member; its patterns re-home and jobs it
	// held in flight (none here) would re-place.
	if !pool.Remove(b1.addr) {
		t.Fatal("Remove found nothing")
	}
	round()
	before := b1.eng.Stats().Jobs
	round()
	if got := b1.eng.Stats().Jobs; got != before {
		t.Fatalf("removed backend still receiving jobs (%d -> %d)", before, got)
	}
}
