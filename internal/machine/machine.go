// Package machine assembles the simulated CC-NUMA multiprocessor of
// Section 6: per-node processors and cache hierarchies (simcache), a
// first-touch page-placement policy, directory controllers with PCLR
// combine units (simarch.Server), and a simple network model with local
// and 2-hop remote latencies. It executes a reduction loop three ways:
//
//   - RunSequential: the single-processor baseline (all data local);
//   - RunSw: the software-only replicated-array parallelization, with its
//     initialization and merge phases (Figure 6's Sw);
//   - RunPCLR: the PCLR scheme with either the hardwired (Hw) or
//     programmable (Flex) directory controller, where reduction lines are
//     filled with neutral elements locally on miss, combined at their home
//     in the background on displacement, and flushed at loop end.
//
// Replay is per-processor and deterministic; cross-processor contention at
// directories and memory banks is modeled as per-phase bandwidth demand
// (a phase cannot complete before its most-loaded resource drains).
package machine

import (
	"fmt"

	"repro/internal/pclr"
	"repro/internal/simarch"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Address-space layout. Bases carry line-granularity offsets to avoid
// pathological power-of-two set aliasing (see internal/vtime).
const (
	wBase   = int64(1)<<21 + 7*64
	xBase   = int64(1)<<33 + 37*64
	dBase   = int64(3)<<35 + 57*64 // non-reduction data arrays (streamed)
	privReg = int64(1) << 41
)

func privBase(node int) int64 { return privReg*int64(node+1) + int64(node)*101*64 }

// NeutralFillCycles is the latency of a reduction miss serviced by the
// local directory controller with a line of neutral elements: cheaper
// than a local memory round trip because no DRAM access is made.
const NeutralFillCycles = 60

// FlushIssueCycles is the processor-side cost of issuing one reduction
// line's flush write-back (the sends pipeline; combining happens at the
// homes).
const FlushIssueCycles = 12

// PageBytes is the page granularity of first-touch placement.
const PageBytes = 8 << 10

// Result is the outcome of one execution.
type Result struct {
	// Breakdown is the Init/Loop/Merge phase split in processor cycles
	// (for PCLR: ConfigHardware call / loop / cache flush).
	Breakdown stats.Breakdown
	// Stats holds PCLR protocol counters (zero for Sw and sequential).
	Stats pclr.Stats
	// Check is the computed reduction array when value tracking is
	// enabled, nil otherwise.
	Check []float64
}

// Machine is one simulated CC-NUMA configuration.
type Machine struct {
	cfg simarch.Config
	// TrackValues enables functional simulation of PCLR combining so the
	// result can be verified against the sequential reference. Costly on
	// large traces; enabled in tests.
	TrackValues bool

	pageOwner map[int64]int32
	cpus      []*cpu

	// Per-phase resource demand (cycles) at each node's directory/FP
	// unit and memory bank.
	dirDemand []float64
	memDemand []float64

	// Current run's controller flavor and reduction operator.
	ctrl simarch.Controller
	op   trace.Op

	combiner *pclr.Combiner
	runStats pclr.Stats
}

// New builds a machine; cfg.Validate must pass.
func New(cfg simarch.Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:       cfg,
		pageOwner: make(map[int64]int32),
		dirDemand: make([]float64, cfg.Nodes),
		memDemand: make([]float64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.cpus = append(m.cpus, &cpu{
			m: m, id: i,
			hier: simcache.NewHierarchy(cfg.L1Bytes, cfg.L1Assoc, cfg.L2Bytes, cfg.L2Assoc, cfg.LineBytes),
		})
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() simarch.Config { return m.cfg }

type cpu struct {
	m    *Machine
	id   int
	hier *simcache.Hierarchy
	t    float64

	// Value images of resident reduction lines (line -> elements),
	// maintained only when TrackValues is set.
	redLines map[int64][]float64
}

func (c *cpu) compute(instr float64) { c.t += instr * c.m.cfg.CPI }

// owner returns (assigning on first touch by this cpu) the home node of
// the page containing addr.
func (m *Machine) owner(addr int64, toucher int) int {
	page := addr / PageBytes
	if o, ok := m.pageOwner[page]; ok {
		return int(o)
	}
	m.pageOwner[page] = int32(toucher)
	return toucher
}

// access charges one memory access. st selects the install state; stream
// marks sequential sweeps whose misses overlap.
func (c *cpu) access(addr int64, st simcache.State, stream bool) {
	cfg := &c.m.cfg
	line := addr >> lineBits(cfg.LineBytes)
	res := c.hier.Access(line, st)
	overlap := 1.0
	if stream && cfg.StreamOverlap > 1 {
		overlap = cfg.StreamOverlap
	}
	switch res.LevelHit {
	case 1:
		c.t += cfg.L1HitCycles
	case 2:
		c.t += cfg.L2HitCycles / overlap
	default:
		if st == simcache.Reduction {
			// Reduction miss: the local directory returns a line of
			// neutral elements; no memory or remote traffic.
			c.t += NeutralFillCycles / overlap
			c.m.runStats.NeutralFills++
			if c.m.TrackValues {
				c.fillNeutral(line)
			}
		} else {
			home := c.m.owner(addr, c.id)
			lat := cfg.LocalMemCycles
			if home != c.id {
				lat = cfg.RemoteMemCycles
			}
			c.t += lat / overlap
			c.m.memDemand[home] += cfg.MemBankOccupancy
		}
	}
	if res.WriteBack != nil {
		c.writeBack(*res.WriteBack, false)
	}
}

// writeBack routes a displaced line: reduction lines go to their home
// directory for background combining; ordinary dirty lines go to their
// home memory. flush marks end-of-loop flush write-backs.
func (c *cpu) writeBack(ev simcache.Eviction, flush bool) {
	cfg := &c.m.cfg
	addr := ev.Line << lineBits(cfg.LineBytes)
	if ev.State == simcache.Reduction {
		orig := pclr.FromShadow(addr)
		home := c.m.owner(orig, c.id)
		c.m.dirDemand[home] += cfg.CombineOccupancy(c.m.ctrl)
		c.m.runStats.Combines++
		if flush {
			c.m.runStats.LinesFlushed++
		} else {
			c.m.runStats.LinesDisplaced++
		}
		if c.m.TrackValues {
			c.combineLine(ev.Line)
		}
		return
	}
	if ev.State == simcache.Dirty {
		home := c.m.owner(addr, c.id)
		c.m.memDemand[home] += cfg.MemBankOccupancy
	}
}

func lineBits(lineBytes int) uint {
	b := uint(0)
	for 1<<b < lineBytes {
		b++
	}
	return b
}

// ----- value tracking (functional PCLR) -----

func (c *cpu) fillNeutral(line int64) {
	if c.redLines == nil {
		c.redLines = make(map[int64][]float64)
	}
	n := c.m.cfg.LineElems()
	vals := make([]float64, n)
	neutral := c.m.op.Neutral()
	for i := range vals {
		vals[i] = neutral
	}
	c.redLines[line] = vals
}

func (c *cpu) applyReduction(line int64, elemInLine int, v float64) {
	if vals, ok := c.redLines[line]; ok {
		vals[elemInLine] = c.m.op.Apply(vals[elemInLine], v)
	}
}

func (c *cpu) combineLine(line int64) {
	vals, ok := c.redLines[line]
	if !ok {
		return
	}
	delete(c.redLines, line)
	origAddr := pclr.FromShadow(line << lineBits(c.m.cfg.LineBytes))
	firstElem := int((origAddr - wBase) / 8)
	c.m.combiner.CombineLine(firstElem, vals)
}

// streamData charges iteration i's non-reduction data references: a
// sequential stream through the loop's other arrays (coordinates, matrix
// entries, flux arrays). The stream occupies cache capacity and is what
// displaces reduction lines during long loops.
func (c *cpu) streamData(l *trace.Loop, iter int) {
	n := int(l.DataRefsPerIter)
	if n <= 0 {
		return
	}
	base := dBase + int64(iter)*int64(n)*8
	for k := 0; k < n; k++ {
		st := simcache.Clean
		if k%4 == 3 {
			st = simcache.Dirty // roughly a quarter of data refs are stores
		}
		c.access(base+int64(k)*8, st, true)
	}
}

// ----- executions -----

func (m *Machine) resetRun(l *trace.Loop, ctrl simarch.Controller) {
	m.ctrl = ctrl
	m.op = l.Op
	m.runStats = pclr.Stats{}
	for i := range m.dirDemand {
		m.dirDemand[i] = 0
		m.memDemand[i] = 0
	}
	if m.TrackValues {
		m.combiner = pclr.NewCombiner(l.Op, l.NumElems)
	}
	// First-touch page placement (the policy the paper found best for
	// both baseline and PCLR). In the real applications the reduction
	// array is first touched by earlier block-distributed loops, so its
	// pages land block-wise across the nodes; replaying only the
	// reduction loop, we install that placement explicitly.
	procs := m.cfg.Nodes
	for p := 0; p < procs; p++ {
		lo, hi := blockBounds(l.NumElems, procs, p)
		for addr := wBase + int64(lo)*8; addr < wBase+int64(hi)*8; addr += PageBytes {
			page := addr / PageBytes
			if _, ok := m.pageOwner[page]; !ok {
				m.pageOwner[page] = int32(p)
			}
		}
	}
}

// phase runs body per cpu sequentially and returns the wall time: the
// slowest processor or the most-loaded resource whose demand accrued
// during the phase, whichever is longer.
func (m *Machine) phase(body func(c *cpu)) float64 {
	dir0 := append([]float64(nil), m.dirDemand...)
	mem0 := append([]float64(nil), m.memDemand...)
	var maxDelta float64
	for _, c := range m.cpus {
		start := c.t
		body(c)
		if d := c.t - start; d > maxDelta {
			maxDelta = d
		}
	}
	wall := maxDelta
	for i := range m.dirDemand {
		if d := m.dirDemand[i] - dir0[i]; d > wall {
			wall = d
		}
		if d := m.memDemand[i] - mem0[i]; d > wall {
			wall = d
		}
	}
	return wall
}

// blockBounds splits n items over p processors in balanced blocks.
func blockBounds(n, procs, p int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = p*base + minInt(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// refOffsets gives each block's starting position in the flat ref stream.
func refOffsets(l *trace.Loop, procs int) []int {
	offs := make([]int, procs)
	pos, next := 0, 0
	for p := 0; p < procs; p++ {
		lo, _ := blockBounds(l.NumIters(), procs, p)
		for next < lo {
			pos += len(l.Iter(next))
			next++
		}
		offs[p] = pos
	}
	return offs
}

// RunSequential executes the loop on a fresh single-node machine with the
// same per-node parameters and returns its result. All data are placed in
// the single node's memory, matching the paper's sequential baseline.
func RunSequential(cfg simarch.Config, l *trace.Loop) Result {
	seqCfg := cfg
	seqCfg.Nodes = 1
	m := New(seqCfg)
	m.resetRun(l, simarch.Hardwired)
	loop := m.phase(func(c *cpu) {
		pos := 0
		for i := 0; i < l.NumIters(); i++ {
			refs := l.Iter(i)
			c.compute(l.WorkPerIter)
			c.streamData(l, i)
			for k := range refs {
				c.access(xBase+int64(pos+k)*4, simcache.Clean, true)
			}
			pos += len(refs)
			for _, idx := range refs {
				c.access(wBase+int64(idx)*8, simcache.Dirty, false)
				c.compute(1)
			}
		}
	})
	return Result{Breakdown: stats.Breakdown{Loop: loop}}
}

// RunSw executes the software-only replicated-array parallelization.
func (m *Machine) RunSw(l *trace.Loop) Result {
	m.resetRun(l, simarch.Hardwired)
	procs := m.cfg.Nodes
	refStart := refOffsets(l, procs)
	var b stats.Breakdown

	// Init: every processor sweeps its full private copy (local pages).
	b.Init = m.phase(func(c *cpu) {
		base := privBase(c.id)
		for e := 0; e < l.NumElems; e++ {
			c.access(base+int64(e)*8, simcache.Dirty, true)
		}
	})

	// Loop: block-scheduled private accumulation.
	b.Loop = m.phase(func(c *cpu) {
		base := privBase(c.id)
		lo, hi := blockBounds(l.NumIters(), procs, c.id)
		pos := refStart[c.id]
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			c.compute(l.WorkPerIter)
			c.streamData(l, i)
			for k := range refs {
				c.access(xBase+int64(pos+k)*4, simcache.Clean, true)
			}
			pos += len(refs)
			for _, idx := range refs {
				c.access(base+int64(idx)*8, simcache.Dirty, false)
				c.compute(1)
			}
		}
	})

	// Merge: each processor combines its element range across all
	// private copies (P-1 of them remote) and writes the shared array.
	b.Merge = m.phase(func(c *cpu) {
		lo, hi := blockBounds(l.NumElems, procs, c.id)
		for e := lo; e < hi; e++ {
			for q := 0; q < procs; q++ {
				// The accumulator chain serializes these mostly-remote
				// reads; they do not stream the way a memset does.
				c.access(privBase(q)+int64(e)*8, simcache.Clean, false)
				c.compute(1)
			}
			c.access(wBase+int64(e)*8, simcache.Dirty, true)
		}
	})
	return Result{Breakdown: b}
}

// RunPCLR executes the loop under PCLR with the given controller flavor.
func (m *Machine) RunPCLR(l *trace.Loop, ctrl simarch.Controller) (Result, error) {
	hc := pclr.HardwareConfig{Op: l.Op, Controller: ctrl, ElemBytes: 8}
	if err := hc.Validate(); err != nil {
		return Result{}, err
	}
	m.resetRun(l, ctrl)
	procs := m.cfg.Nodes
	refStart := refOffsets(l, procs)
	lb := lineBits(m.cfg.LineBytes)
	elemsPerLine := int64(m.cfg.LineElems())
	var b stats.Breakdown

	// "Init": the ConfigHardware system call on every processor.
	b.Init = m.phase(func(c *cpu) {
		c.t += pclr.ConfigCallCycles
	})

	// Loop: reduction accesses go to shadow addresses in the Reduction
	// state; misses are neutral-filled locally; displacements are
	// combined at the home in the background.
	b.Loop = m.phase(func(c *cpu) {
		lo, hi := blockBounds(l.NumIters(), procs, c.id)
		pos := refStart[c.id]
		for i := lo; i < hi; i++ {
			refs := l.Iter(i)
			c.compute(l.WorkPerIter)
			c.streamData(l, i)
			for k := range refs {
				c.access(xBase+int64(pos+k)*4, simcache.Clean, true)
			}
			pos += len(refs)
			for k, idx := range refs {
				shadow := pclr.ToShadow(wBase + int64(idx)*8)
				c.access(shadow, simcache.Reduction, false)
				c.compute(1)
				if m.TrackValues {
					line := shadow >> lb
					elemInLine := int(((wBase + int64(idx)*8) >> 3) % elemsPerLine)
					c.applyReduction(line, elemInLine, trace.Value(i, k, idx))
				}
			}
		}
	})

	// Merge: flush the reduction lines still cached; each flushed line is
	// combined at its home directory.
	b.Merge = m.phase(func(c *cpu) {
		lines := c.hier.FlushReduction()
		for _, line := range lines {
			c.t += FlushIssueCycles
			c.writeBack(simcache.Eviction{Line: line, State: simcache.Reduction}, true)
		}
		// Tail: the last write-back's round trip.
		if len(lines) > 0 {
			c.t += m.cfg.RemoteMemCycles / m.cfg.StreamOverlap
		}
	})

	res := Result{Breakdown: b, Stats: m.runStats}
	if m.TrackValues {
		res.Check = m.combiner.Memory()
	}
	return res, nil
}

var _ = fmt.Sprintf // fmt is used by future diagnostics; keep the import anchored
