package machine

import (
	"math"
	"testing"

	"repro/internal/simarch"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func smallLoop(dim, iters, mo int, locality float64, seed int64) *trace.Loop {
	return workloads.Generate("t", workloads.PatternSpec{
		Dim: dim, SPPercent: 90, CHR: float64(iters*mo) / (16 * float64(dim)),
		CHRProcs: 16, MO: mo, Locality: locality, Work: 50, Seed: seed,
	}, 1)
}

func TestPCLRFunctionalCorrectness(t *testing.T) {
	// The headline protocol property: neutral-element fill on miss +
	// background combining on displacement + final flush reproduces the
	// sequential reduction exactly. Small caches force many displacements
	// so the background path is genuinely exercised.
	l := smallLoop(4096, 6000, 3, 0.5, 11)
	want := l.RunSequential()

	cfg := simarch.DefaultConfig(4)
	cfg.L1Bytes = 2 << 10 // tiny caches: constant displacement traffic
	cfg.L2Bytes = 8 << 10
	m := New(cfg)
	m.TrackValues = true
	res, err := m.RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LinesDisplaced == 0 {
		t.Fatal("test must exercise displacement combining; got none")
	}
	if res.Stats.LinesFlushed == 0 {
		t.Fatal("flush must find resident reduction lines")
	}
	for i := range want {
		if math.Abs(res.Check[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("element %d: PCLR %g vs sequential %g", i, res.Check[i], want[i])
		}
	}
}

func TestPCLRFunctionalWithMax(t *testing.T) {
	l := smallLoop(1024, 3000, 2, 0.4, 7)
	l.Op = trace.OpMax
	want := l.RunSequential()
	cfg := simarch.DefaultConfig(4)
	cfg.L1Bytes = 2 << 10
	cfg.L2Bytes = 8 << 10
	m := New(cfg)
	m.TrackValues = true
	res, err := m.RunPCLR(l, simarch.Programmable)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Check[i] != want[i] {
			t.Fatalf("max reduction: element %d PCLR %g vs %g", i, res.Check[i], want[i])
		}
	}
}

func TestPCLRRejectsMultiply(t *testing.T) {
	// The directory execution units implement add and compare only; a
	// multiplicative reduction must be rejected, as Section 5.1.3 argues.
	l := smallLoop(256, 100, 1, 0.5, 3)
	l.Op = trace.OpMul
	m := New(simarch.DefaultConfig(4))
	if _, err := m.RunPCLR(l, simarch.Hardwired); err == nil {
		t.Fatal("PCLR must reject FP multiply reductions")
	}
}

func TestPCLREliminatesInitAndShrinksMerge(t *testing.T) {
	// Figure 6's qualitative claim: Sw pays Init and Merge sweeps; PCLR
	// has no Init sweep (only the config call) and a flush bounded by
	// cache size rather than array size.
	l := smallLoop(60000, 40000, 4, 0.85, 5)
	cfg := simarch.DefaultConfig(16)

	sw := New(cfg).RunSw(l)
	hw, err := New(cfg).RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Breakdown.Init >= sw.Breakdown.Init/10 {
		t.Errorf("PCLR Init (%g) should be tiny vs Sw Init (%g)", hw.Breakdown.Init, sw.Breakdown.Init)
	}
	if hw.Breakdown.Merge >= sw.Breakdown.Merge {
		t.Errorf("PCLR flush (%g) should beat Sw merge (%g)", hw.Breakdown.Merge, sw.Breakdown.Merge)
	}
	if hw.Breakdown.Total() >= sw.Breakdown.Total() {
		t.Errorf("PCLR total (%g) should beat Sw total (%g)", hw.Breakdown.Total(), sw.Breakdown.Total())
	}
}

func TestHwBeatsFlexBeatsSw(t *testing.T) {
	l := smallLoop(60000, 40000, 4, 0.85, 9)
	cfg := simarch.DefaultConfig(16)
	sw := New(cfg).RunSw(l)
	hw, err := New(cfg).RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := New(cfg).RunPCLR(l, simarch.Programmable)
	if err != nil {
		t.Fatal(err)
	}
	tHw, tFlex, tSw := hw.Breakdown.Total(), flex.Breakdown.Total(), sw.Breakdown.Total()
	if !(tHw <= tFlex && tFlex <= tSw) {
		t.Errorf("expected Hw <= Flex <= Sw, got %g / %g / %g", tHw, tFlex, tSw)
	}
}

func TestSwMergeDoesNotScale(t *testing.T) {
	// Figure 7's explanation: the Sw merge step's per-processor work is
	// constant in P (each processor reads the whole array across copies),
	// so merge time does not decrease with more processors.
	l := smallLoop(40000, 30000, 2, 0.9, 13)
	m4 := New(simarch.DefaultConfig(4)).RunSw(l)
	m16 := New(simarch.DefaultConfig(16)).RunSw(l)
	if m16.Breakdown.Merge < m4.Breakdown.Merge*0.8 {
		t.Errorf("Sw merge should not shrink with P: 4p=%g 16p=%g",
			m4.Breakdown.Merge, m16.Breakdown.Merge)
	}
	// The loop phase, in contrast, must scale.
	if m16.Breakdown.Loop > m4.Breakdown.Loop*0.5 {
		t.Errorf("Sw loop should scale with P: 4p=%g 16p=%g",
			m4.Breakdown.Loop, m16.Breakdown.Loop)
	}
}

func TestPCLRScales(t *testing.T) {
	l := smallLoop(40000, 30000, 2, 0.9, 17)
	seq := RunSequential(simarch.DefaultConfig(16), l).Breakdown.Total()
	var prev float64
	for _, p := range []int{4, 8, 16} {
		res, err := New(simarch.DefaultConfig(p)).RunPCLR(l, simarch.Hardwired)
		if err != nil {
			t.Fatal(err)
		}
		sp := seq / res.Breakdown.Total()
		if sp <= prev {
			t.Errorf("PCLR speedup must grow with P: at %dp speedup %.2f (prev %.2f)", p, sp, prev)
		}
		prev = sp
	}
	if prev < 4 {
		t.Errorf("16-processor PCLR speedup %.2f is implausibly low", prev)
	}
}

func TestFlushedBoundedByCache(t *testing.T) {
	// "The work is at worst proportional to the size of the cache,
	// rather than to the size of the shared array."
	l := smallLoop(200000, 50000, 2, 0.2, 19)
	cfg := simarch.DefaultConfig(4)
	m := New(cfg)
	res, err := m.RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	cacheLines := (cfg.L1Bytes + cfg.L2Bytes) / cfg.LineBytes
	if res.Stats.LinesFlushed > cfg.Nodes*cacheLines {
		t.Errorf("flushed %d lines exceeds aggregate cache capacity %d",
			res.Stats.LinesFlushed, cfg.Nodes*cacheLines)
	}
}

func TestSmallArrayNoDisplacement(t *testing.T) {
	// A Vml-sized array (fits every cache) must displace nothing — the
	// paper's Table 2 reports 0 displaced lines for Vml.
	l := smallLoop(5000, 4929, 6, 0.8, 21)
	m := New(simarch.DefaultConfig(16))
	res, err := m.RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LinesDisplaced != 0 {
		t.Errorf("small array displaced %d lines, want 0", res.Stats.LinesDisplaced)
	}
}

func TestDeterminism(t *testing.T) {
	l := smallLoop(10000, 8000, 2, 0.7, 23)
	run := func() (float64, int) {
		m := New(simarch.DefaultConfig(8))
		res, err := m.RunPCLR(l, simarch.Hardwired)
		if err != nil {
			t.Fatal(err)
		}
		return res.Breakdown.Total(), res.Stats.LinesDisplaced
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Errorf("simulation must be deterministic: %g/%d vs %g/%d", t1, d1, t2, d2)
	}
}

func TestShadowAddressCodecInMachine(t *testing.T) {
	addr := wBase + 12345*8
	if got := pclrRoundTrip(addr); got != addr {
		t.Errorf("shadow round trip %d -> %d", addr, got)
	}
}

func pclrRoundTrip(addr int64) int64 {
	// exercised via the pclr package directly in its own tests; here we
	// only confirm the machine's bases stay clear of the shadow bit.
	if addr >= int64(1)<<45 {
		return -1
	}
	return addr
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	bad := simarch.DefaultConfig(0)
	New(bad)
}

func TestSequentialSlowerThanParallelLoop(t *testing.T) {
	l := smallLoop(30000, 30000, 2, 0.8, 29)
	cfg := simarch.DefaultConfig(16)
	seq := RunSequential(cfg, l)
	hw, err := New(cfg).RunPCLR(l, simarch.Hardwired)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Breakdown.Total() <= hw.Breakdown.Total() {
		t.Errorf("sequential (%g) should be slower than 16-node PCLR (%g)",
			seq.Breakdown.Total(), hw.Breakdown.Total())
	}
}
