// Package core implements the SmartApps runtime of Sections 1–2: the
// adaptive feedback loop that a compiler would embed into the application
// executable, and the ToolBox it draws on — a performance Evaluator,
// a Predictor, an Optimizer and a Configurer.
//
// The runtime receives reduction loops (the paper's exemplar optimization
// target), characterizes their access pattern with fast sampled methods,
// selects the best implementation from the multi-version library
// (software schemes from package reduction, or PCLR hardware when the
// platform offers it), executes it, monitors the outcome against the
// prediction, and escalates through the paper's nested adaptation levels:
//
//	small deviation  -> run-time tuning (keep the scheme, adjust scheduling)
//	pattern change   -> algorithm re-selection (multi-version dispatch)
//	hardware present -> machine reconfiguration (program the PCLR directory)
package core

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/pattern"
	"repro/internal/pclr"
	"repro/internal/reduction"
	"repro/internal/simarch"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Action is the adaptation level the runtime took on an invocation.
type Action int

const (
	// Kept: the current scheme still matches; no adaptation.
	Kept Action = iota
	// Tuned: small deviation; run-time tuning only (no re-selection).
	Tuned
	// Reselected: the access pattern changed enough to re-run the
	// decision algorithm and switch the multi-version dispatch.
	Reselected
	// Reconfigured: the hardware (PCLR directory controller) was
	// reprogrammed for this loop.
	Reconfigured
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Kept:
		return "kept"
	case Tuned:
		return "tuned"
	case Reselected:
		return "reselected"
	case Reconfigured:
		return "reconfigured"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Predictor estimates the virtual-time cost of running a loop under a
// scheme; it is the ToolBox's performance-model component.
type Predictor struct {
	Procs int
	Cfg   vtime.Config
}

// Predict returns the ranked per-scheme cost estimates.
func (p Predictor) Predict(l *trace.Loop) []adapt.Measured {
	return adapt.Rank(l, p.Procs, p.Cfg)
}

// PredictScheme returns the predicted cycles for one scheme.
func (p Predictor) PredictScheme(l *trace.Loop, scheme string) (float64, error) {
	for _, m := range p.Predict(l) {
		if m.Scheme == scheme {
			return m.Breakdown.Total(), nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", scheme)
}

// Evaluator compares measured performance against predictions; it is the
// ToolBox's monitoring component.
type Evaluator struct {
	// TunePastDeviation and ReselectPastDeviation are the two thresholds
	// of the nested feedback loop: below the first the runtime keeps
	// going, between them it tunes, above the second it re-selects.
	TunePastDeviation     float64
	ReselectPastDeviation float64
}

// DefaultEvaluator returns the calibrated thresholds (10% / 40%).
func DefaultEvaluator() Evaluator {
	return Evaluator{TunePastDeviation: 0.10, ReselectPastDeviation: 0.40}
}

// Deviation returns |measured-predicted| / predicted.
func (Evaluator) Deviation(predicted, measured float64) float64 {
	if predicted <= 0 {
		return 0
	}
	return math.Abs(measured-predicted) / predicted
}

// Judge maps a deviation to the adaptation level it warrants.
func (e Evaluator) Judge(dev float64) Action {
	switch {
	case dev <= e.TunePastDeviation:
		return Kept
	case dev <= e.ReselectPastDeviation:
		return Tuned
	default:
		return Reselected
	}
}

// Platform describes what the executing machine offers; it is the
// system-specific database of the ToolBox.
type Platform struct {
	// Procs is the processor count.
	Procs int
	// Cfg is the cost model of the machine (Table 1 by default).
	Cfg vtime.Config
	// PCLR reports whether the machine's directory controllers implement
	// Private Cache-Line Reduction, and with which controller flavor.
	PCLR           bool
	PCLRController simarch.Controller
}

// DefaultPlatform returns an 8-processor software-only platform.
func DefaultPlatform(procs int) Platform {
	return Platform{Procs: procs, Cfg: vtime.DefaultConfig()}
}

// Configurer turns an optimization decision into a concrete
// configuration: a software scheme or a PCLR hardware programming.
type Configurer struct {
	Platform Platform
}

// Configuration is what the Configurer installs for a loop.
type Configuration struct {
	// UseHardware selects PCLR; otherwise Scheme names the software
	// reduction algorithm.
	UseHardware bool
	Hardware    pclr.HardwareConfig
	Scheme      string
	Why         string
}

// Configure decides between the PCLR hardware path and the recommended
// software scheme. PCLR is preferred whenever the platform has it and the
// loop's operator is supported: it eliminates both the initialization and
// merge phases regardless of the access pattern (Section 5.2); loops the
// directory units cannot combine fall back to software.
func (c Configurer) Configure(l *trace.Loop, rec adapt.Recommendation) Configuration {
	if c.Platform.PCLR {
		hc := pclr.HardwareConfig{Op: l.Op, Controller: c.Platform.PCLRController, ElemBytes: 8}
		if err := hc.Validate(); err == nil {
			return Configuration{
				UseHardware: true,
				Hardware:    hc,
				Why:         "PCLR directory support available and operator supported",
			}
		}
	}
	return Configuration{Scheme: rec.Scheme, Why: rec.Why}
}

// Decision records one invocation's adaptation outcome.
type Decision struct {
	LoopName  string
	Action    Action
	Scheme    string
	Why       string
	Predicted float64
	Measured  float64
	Deviation float64
}

// Runtime is the embedded adaptive run-time system of a SmartApp.
type Runtime struct {
	Platform  Platform
	Evaluator Evaluator
	// SampleStride controls the fast approximate characterization pass.
	SampleStride int

	tracker   pattern.Tracker
	predictor Predictor
	current   reduction.Scheme
	predicted float64
	history   []Decision
	// exec recycles privatization buffers across invocations, the
	// "run-time tuning" adaptation level applied to memory: a loop body
	// invoked K times allocates its private arrays once, not K times.
	exec *reduction.Exec
}

// NewRuntime builds a runtime for the platform.
func NewRuntime(p Platform) *Runtime {
	if p.Procs < 1 {
		panic("core: platform needs at least one processor")
	}
	cfg := p.Cfg
	if cfg.LineBytes == 0 {
		cfg = vtime.DefaultConfig()
	}
	return &Runtime{
		Platform:     Platform{Procs: p.Procs, Cfg: cfg, PCLR: p.PCLR, PCLRController: p.PCLRController},
		Evaluator:    DefaultEvaluator(),
		SampleStride: 8,
		predictor:    Predictor{Procs: p.Procs, Cfg: cfg},
		exec: &reduction.Exec{
			Pool:            reduction.NewBufferPool(),
			MergeBlockElems: reduction.MergeBlockForCache(cfg.L2Bytes, p.Procs),
		},
	}
}

// Outcome is the result of executing one loop invocation adaptively.
type Outcome struct {
	// Result is the reduction array (software path) — always computed,
	// since the runtime's contract is to produce the loop's semantics.
	Result []float64
	// Decision describes what the runtime did and why.
	Decision Decision
	// Configuration is the installed implementation.
	Configuration Configuration
}

// Execute runs one invocation of the loop through the full SmartApps
// pipeline: sampled characterization, change detection, multi-version
// selection (or hardware configuration), execution, and monitoring.
func (r *Runtime) Execute(l *trace.Loop) Outcome {
	prof := pattern.CharacterizeSampled(l, r.Platform.Procs, r.predictor.Cfg.L2Bytes, r.SampleStride)

	var dec Decision
	dec.LoopName = l.Name

	changed := r.tracker.Update(prof)
	rec := adapt.Recommend(prof)
	conf := Configurer{Platform: r.Platform}.Configure(l, rec)

	if changed || r.current == nil {
		if !conf.UseHardware {
			r.current = adapt.SchemeFor(adapt.Recommendation{Scheme: conf.Scheme})
		}
		dec.Action = Reselected
		if conf.UseHardware {
			dec.Action = Reconfigured
		}
		// Predict the selected implementation's cost for monitoring.
		if !conf.UseHardware {
			if p, err := r.predictor.PredictScheme(l, conf.Scheme); err == nil {
				r.predicted = p
			}
		}
	} else {
		dec.Action = Kept
	}

	// Execute. The software path runs the real parallel scheme; the
	// hardware path's semantics are the same reduction (the simulator's
	// functional check lives in package machine), so the runtime
	// produces the result with the fastest software scheme while the
	// "hardware" performs it on the modeled machine.
	var result []float64
	var scheme reduction.Scheme
	if conf.UseHardware {
		scheme = reduction.Rep{} // any correct executor produces the semantics
	} else {
		scheme = r.current
	}
	result = scheme.RunInto(l, r.Platform.Procs, r.exec, nil)

	// Monitor: measure in virtual time and judge the deviation.
	if !conf.UseHardware && r.predicted > 0 {
		m := vtime.NewMachine(r.Platform.Procs, r.predictor.Cfg)
		m.EnableSharingTracking()
		measured := r.current.Simulate(l, m).Total()
		dec.Predicted = r.predicted
		dec.Measured = measured
		dec.Deviation = r.Evaluator.Deviation(r.predicted, measured)
		if dec.Action == Kept {
			dec.Action = r.Evaluator.Judge(dec.Deviation)
			if dec.Action == Reselected {
				// Escalate: force re-characterization next invocation.
				r.tracker = pattern.Tracker{Threshold: r.tracker.Threshold}
			}
		}
	}

	dec.Scheme = conf.Scheme
	if conf.UseHardware {
		dec.Scheme = "pclr-" + conf.Hardware.Controller.String()
	}
	dec.Why = conf.Why
	r.history = append(r.history, dec)
	return Outcome{Result: result, Decision: dec, Configuration: conf}
}

// History returns the adaptation log.
func (r *Runtime) History() []Decision { return r.history }

// CurrentScheme returns the installed software scheme name, or "" when
// the hardware path is installed.
func (r *Runtime) CurrentScheme() string {
	if r.current == nil {
		return ""
	}
	return r.current.Name()
}
