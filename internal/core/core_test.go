package core

import (
	"math"
	"testing"

	"repro/internal/simarch"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func loopWith(spec workloads.PatternSpec, name string) *trace.Loop {
	l := workloads.Generate(name, spec, 1)
	return l
}

func denseSpec() workloads.PatternSpec {
	return workloads.PatternSpec{Dim: 3000, SPPercent: 30, CHR: 0.9, MO: 2, Locality: 0.8, Work: 20, Seed: 1}
}

func sparseSpec() workloads.PatternSpec {
	return workloads.PatternSpec{Dim: 200000, SPPercent: 0.15, CHR: 0.12, MO: 28, Locality: 0.3, Work: 300, RunLength: 2, Seed: 2}
}

func TestRuntimeProducesCorrectResult(t *testing.T) {
	r := NewRuntime(DefaultPlatform(8))
	l := loopWith(denseSpec(), "dense")
	out := r.Execute(l)
	want := l.RunSequential()
	for i := range want {
		if math.Abs(out.Result[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("element %d: %g vs %g", i, out.Result[i], want[i])
		}
	}
	if out.Decision.Action != Reselected {
		t.Errorf("first invocation should select a scheme, got %v", out.Decision.Action)
	}
	if out.Decision.Scheme == "" {
		t.Error("decision must name the installed scheme")
	}
}

func TestRuntimeKeepsSchemeOnStablePattern(t *testing.T) {
	r := NewRuntime(DefaultPlatform(8))
	l := loopWith(denseSpec(), "stable")
	r.Execute(l)
	out := r.Execute(l) // identical pattern: no re-selection
	if out.Decision.Action == Reselected || out.Decision.Action == Reconfigured {
		t.Errorf("stable pattern must not re-select, got %v", out.Decision.Action)
	}
}

func TestRuntimeReselectsOnPhaseChange(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptive pipeline over a phase change (~13s under -race); run without -short")
	}
	r := NewRuntime(DefaultPlatform(8))
	dense := loopWith(denseSpec(), "phase")
	r.Execute(dense)
	first := r.CurrentScheme()

	sparse := loopWith(sparseSpec(), "phase")
	out := r.Execute(sparse)
	if out.Decision.Action != Reselected {
		t.Fatalf("drastic pattern change must re-select, got %v", out.Decision.Action)
	}
	if r.CurrentScheme() == first {
		t.Errorf("scheme should change across the phase change (still %s)", first)
	}
	if r.CurrentScheme() != "hash" {
		t.Errorf("a Spice-like pattern should select hash, got %s", r.CurrentScheme())
	}
}

func TestRuntimeHardwarePath(t *testing.T) {
	p := DefaultPlatform(8)
	p.PCLR = true
	p.PCLRController = simarch.Hardwired
	r := NewRuntime(p)
	l := loopWith(denseSpec(), "hw")
	out := r.Execute(l)
	if !out.Configuration.UseHardware {
		t.Fatal("PCLR platform should configure the hardware path for an add reduction")
	}
	if out.Decision.Action != Reconfigured {
		t.Errorf("hardware installation should be a Reconfigured action, got %v", out.Decision.Action)
	}
	if out.Decision.Scheme != "pclr-Hw" {
		t.Errorf("decision scheme = %q", out.Decision.Scheme)
	}
	// Semantics still hold.
	want := l.RunSequential()
	for i := range want {
		if math.Abs(out.Result[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("hardware path broke semantics at %d", i)
		}
	}
}

func TestRuntimeHardwareFallbackOnUnsupportedOp(t *testing.T) {
	p := DefaultPlatform(4)
	p.PCLR = true
	r := NewRuntime(p)
	l := loopWith(workloads.PatternSpec{Dim: 5000, SPPercent: 30, CHR: 0.3, MO: 1, Locality: 0.8, Work: 10, Seed: 3}, "mul")
	l.Op = trace.OpMul // the directory units cannot combine products
	out := r.Execute(l)
	if out.Configuration.UseHardware {
		t.Fatal("multiply reduction must fall back to software")
	}
	if out.Decision.Scheme == "" {
		t.Error("fallback must install a software scheme")
	}
}

func TestEvaluatorJudgement(t *testing.T) {
	e := DefaultEvaluator()
	if e.Judge(0.05) != Kept {
		t.Error("5% deviation should be Kept")
	}
	if e.Judge(0.2) != Tuned {
		t.Error("20% deviation should be Tuned")
	}
	if e.Judge(0.8) != Reselected {
		t.Error("80% deviation should be Reselected")
	}
	if d := e.Deviation(100, 130); math.Abs(d-0.3) > 1e-12 {
		t.Errorf("Deviation = %g", d)
	}
	if e.Deviation(0, 10) != 0 {
		t.Error("zero prediction deviation should be 0")
	}
}

func TestPredictorRanksAllSchemes(t *testing.T) {
	pred := Predictor{Procs: 8, Cfg: DefaultPlatform(8).Cfg}
	l := loopWith(denseSpec(), "pred")
	ms := pred.Predict(l)
	if len(ms) != 5 {
		t.Fatalf("predicted %d schemes, want 5", len(ms))
	}
	if _, err := pred.PredictScheme(l, "rep"); err != nil {
		t.Errorf("PredictScheme(rep): %v", err)
	}
	if _, err := pred.PredictScheme(l, "nope"); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestHistoryAccumulates(t *testing.T) {
	r := NewRuntime(DefaultPlatform(4))
	l := loopWith(denseSpec(), "hist")
	r.Execute(l)
	r.Execute(l)
	if len(r.History()) != 2 {
		t.Errorf("history length %d, want 2", len(r.History()))
	}
}

func TestActionString(t *testing.T) {
	names := map[Action]string{Kept: "kept", Tuned: "tuned", Reselected: "reselected", Reconfigured: "reconfigured"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestNewRuntimePanicsWithoutProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRuntime(Platform{})
}
