package spec

import "sync"

// RLRPDStats describes how a Recursive LRPD execution unfolded.
type RLRPDStats struct {
	// Passes is how many speculative passes were needed (1 = the loop was
	// fully parallel).
	Passes int
	// IterationsExecuted counts iteration executions including
	// re-executions; IterationsExecuted/NumIters is the replication
	// overhead of speculation.
	IterationsExecuted int
	// CommittedPerPass records how many iterations each pass committed.
	CommittedPerPass []int
}

// RLRPD executes the loop with the Recursive LRPD test on procs
// processors: each pass speculatively executes the remaining iterations
// in parallel blocks with copy-in from the committed state; validation
// finds the earliest cross-block flow dependence sink, commits every
// block before it, and the next pass restarts there. A fully parallel
// suffix commits in one more pass; the worst case degenerates to
// sequential execution while still producing the correct result.
func (l *Loop) RLRPD(init []float64, procs int) ([]float64, RLRPDStats) {
	if procs < 1 {
		panic("spec: procs must be >= 1")
	}
	n := l.NumIters()
	committed := append([]float64(nil), init...)
	start := 0
	var st RLRPDStats

	for start < n {
		st.Passes++
		remaining := n - start
		blocks := procs
		if blocks > remaining {
			blocks = remaining
		}

		type blockResult struct {
			lo, hi   int
			writes   []int32   // elements written, in order
			vals     []float64 // corresponding values
			readSet  map[int32]struct{}
			writeSet map[int32]struct{}
		}
		results := make([]blockResult, blocks)
		var wg sync.WaitGroup
		for b := 0; b < blocks; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				lo, hi := blockBounds(remaining, blocks, b)
				lo += start
				hi += start
				// Copy-in: the block executes against a private copy of
				// the committed state, so intra-block dependences are
				// honored and only cross-block ones need validation.
				priv := append([]float64(nil), committed...)
				br := blockResult{
					lo: lo, hi: hi,
					readSet:  make(map[int32]struct{}),
					writeSet: make(map[int32]struct{}),
				}
				for i := lo; i < hi; i++ {
					accs := l.accesses(i)
					for _, a := range accs {
						if a.Kind == Read {
							// Exposed read: only if not written earlier
							// within this block.
							if _, wr := br.writeSet[a.Elem]; !wr {
								br.readSet[a.Elem] = struct{}{}
							}
						}
					}
					v := body(i, priv, accs)
					for _, a := range accs {
						if a.Kind == Write {
							priv[a.Elem] = v
							br.writeSet[a.Elem] = struct{}{}
							br.writes = append(br.writes, a.Elem)
							br.vals = append(br.vals, v)
						}
					}
				}
				results[b] = br
			}(b)
		}
		wg.Wait()

		// Validation: block s has a dependence sink if it exposed-read or
		// wrote an element some earlier block of this pass wrote (write
		// after write must also be ordered, which commit-in-order handles,
		// but an exposed read of an earlier block's write is a flow
		// violation: the reader saw the stale committed value).
		firstBad := blocks
		writtenBefore := make(map[int32]struct{})
		for b := 0; b < blocks; b++ {
			bad := false
			for e := range results[b].readSet {
				if _, ok := writtenBefore[e]; ok {
					bad = true
					break
				}
			}
			if bad {
				firstBad = b
				break
			}
			for e := range results[b].writeSet {
				writtenBefore[e] = struct{}{}
			}
		}

		// Commit blocks [0, firstBad) in order.
		committedIters := 0
		for b := 0; b < firstBad; b++ {
			br := results[b]
			for i, e := range br.writes {
				committed[e] = br.vals[i]
			}
			committedIters += br.hi - br.lo
			st.IterationsExecuted += br.hi - br.lo
		}
		if firstBad < blocks {
			// The failed blocks' executions are wasted work.
			for b := firstBad; b < blocks; b++ {
				st.IterationsExecuted += results[b].hi - results[b].lo
			}
		}
		st.CommittedPerPass = append(st.CommittedPerPass, committedIters)

		if committedIters == 0 {
			// The very first block of the pass failed internally? It
			// cannot: intra-block dependences are honored by copy-in
			// execution. firstBad == 0 would mean block 0 read something
			// written before it this pass — impossible. Guard anyway.
			br := results[0]
			for i, e := range br.writes {
				committed[e] = br.vals[i]
			}
			st.IterationsExecuted += br.hi - br.lo
			committedIters = br.hi - br.lo
		}
		start += committedIters
	}
	return committed, st
}

// SpeedupEstimate returns the idealized parallel speedup of the observed
// R-LRPD execution: sequential work divided by the critical-path work
// (each pass costs its largest block plus validation, approximated by the
// block size).
func (st RLRPDStats) SpeedupEstimate(numIters, procs int) float64 {
	if numIters == 0 || st.Passes == 0 {
		return 1
	}
	// Each pass executes remaining/blocks iterations per processor.
	critical := 0.0
	remaining := numIters
	for _, c := range st.CommittedPerPass {
		blocks := procs
		if blocks > remaining {
			blocks = remaining
		}
		if blocks < 1 {
			blocks = 1
		}
		critical += float64((remaining + blocks - 1) / blocks)
		remaining -= c
		if remaining <= 0 {
			break
		}
	}
	if critical == 0 {
		return 1
	}
	return float64(numIters) / critical
}
