// Package spec implements the run-time speculative parallelization
// techniques of Section 3: the LRPD test (speculative execution of a loop
// as a DOALL with shadow-array validation) and the Recursive LRPD test
// (R-LRPD), which extracts the maximum available parallelism from
// partially parallel loops: in a block-scheduled loop executed under the
// processor-wise LRPD test with copy-in, the chunks of iterations up to
// the source of the first detected dependence arc are always executed
// correctly, so only the remainder of the work is re-executed.
package spec

import (
	"fmt"
	"sync"
)

// AccessKind distinguishes reads from writes in an iteration's descriptor.
type AccessKind uint8

const (
	// Read is an exposed use of a shared element.
	Read AccessKind = iota
	// Write is a definition of a shared element.
	Write
)

// Access is one shared-array access of an iteration.
type Access struct {
	Elem int32
	Kind AccessKind
}

// Loop is a general (not necessarily parallel) loop over a shared array.
// Iteration semantics are fixed and deterministic: an iteration first
// reads all its Read elements, combines them, and then stores a value
// derived from that combination into each of its Write elements. Flow
// dependences therefore arise exactly when an iteration reads an element
// a lexically earlier iteration writes.
type Loop struct {
	NumElems int
	iters    [][]Access
}

// NewLoop creates an empty loop over numElems shared elements.
func NewLoop(numElems int) *Loop {
	return &Loop{NumElems: numElems}
}

// AddIter appends an iteration with the given accesses.
func (l *Loop) AddIter(accs ...Access) {
	for _, a := range accs {
		if int(a.Elem) < 0 || int(a.Elem) >= l.NumElems {
			panic(fmt.Sprintf("spec: access to element %d out of range", a.Elem))
		}
	}
	l.iters = append(l.iters, accs)
}

// NumIters returns the iteration count.
func (l *Loop) NumIters() int { return len(l.iters) }

// Accesses returns iteration i's access descriptor. The slice aliases
// internal storage and must not be modified.
func (l *Loop) Accesses(i int) []Access { return l.iters[i] }

// ExecIter applies iteration i to arr in place, honoring the loop's fixed
// body semantics. It is exported for the inspector/executor, which runs
// iterations out of lexical order once the inspector has proven them
// independent.
func (l *Loop) ExecIter(i int, arr []float64) { execIter(i, arr, l.iters[i]) }

// accesses is the internal accessor used by the speculation engines.
func (l *Loop) accesses(i int) []Access { return l.iters[i] }

// body computes iteration i's effect given the visible array state:
// it returns the value stored to every written element.
func body(i int, arr []float64, accs []Access) float64 {
	sum := 0.0
	for _, a := range accs {
		if a.Kind == Read {
			sum += arr[a.Elem]
		}
	}
	// A nonlinear, iteration-dependent function so that executing with
	// stale reads produces a detectable wrong answer.
	return 1 + 0.5*sum + float64(i%7)*0.25
}

// execIter applies iteration i to arr in place.
func execIter(i int, arr []float64, accs []Access) {
	v := body(i, arr, accs)
	for _, a := range accs {
		if a.Kind == Write {
			arr[a.Elem] = v
		}
	}
}

// RunSequential executes the loop sequentially from the given initial
// array (copied) and returns the final state — the semantic reference.
func (l *Loop) RunSequential(init []float64) []float64 {
	arr := append([]float64(nil), init...)
	for i := range l.iters {
		execIter(i, arr, l.iters[i])
	}
	return arr
}

// LRPDResult reports the outcome of a speculative DOALL attempt.
type LRPDResult struct {
	// Passed is true when the loop was proven fully parallel.
	Passed bool
	// FirstDependence is the earliest iteration that read an element
	// written by a different earlier iteration (valid when !Passed).
	FirstDependence int
	// Array is the committed result (only when Passed).
	Array []float64
}

// marks are the per-element shadow flags of the LRPD test. Reads are
// tracked as a span (earliest and latest reading iteration): an element is
// safe only if it is never written, or written by exactly one iteration
// that is also its only reader (privatizable).
type marks struct {
	written []int32 // iteration of the last write, -1 if none
	firstWr []int32 // iteration of the first write, -1 if none
	minRead []int32 // earliest reading iteration, -1 if none
	maxRead []int32 // latest reading iteration, -1 if none
	multiWr []bool  // written by more than one iteration
}

func newMarks(n int) *marks {
	m := &marks{
		written: make([]int32, n), firstWr: make([]int32, n),
		minRead: make([]int32, n), maxRead: make([]int32, n),
		multiWr: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.written[i], m.firstWr[i], m.minRead[i], m.maxRead[i] = -1, -1, -1, -1
	}
	return m
}

// LRPD runs the LRPD test on the whole loop: it executes all iterations
// speculatively in parallel on procs goroutines against a privatized copy
// of init, marking shadow flags, and then validates. On success the
// speculative result is committed; on failure the caller must fall back
// (or use the recursive variant).
//
// The speculative execution here is value-correct only when the loop is
// indeed fully parallel — exactly the property the test validates.
func (l *Loop) LRPD(init []float64, procs int) LRPDResult {
	n := l.NumIters()
	if procs < 1 {
		panic("spec: procs must be >= 1")
	}
	sh := newMarks(l.NumElems)
	var mu sync.Mutex

	// Phase 1: parallel marking + speculative execution against the
	// original values (copy-in semantics: reads see init, writes are
	// privatized per iteration and merged by last-writer).
	type writeRec struct {
		iter int32
		elem int32
		val  float64
	}
	perProc := make([][]writeRec, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo, hi := blockBounds(n, procs, p)
			local := newMarks(l.NumElems)
			var recs []writeRec
			for i := lo; i < hi; i++ {
				accs := l.accesses(i)
				v := body(i, init, accs) // copy-in: reads see original values
				for _, a := range accs {
					if a.Kind == Read {
						if local.minRead[a.Elem] == -1 || int32(i) < local.minRead[a.Elem] {
							local.minRead[a.Elem] = int32(i)
						}
						if int32(i) > local.maxRead[a.Elem] {
							local.maxRead[a.Elem] = int32(i)
						}
					} else {
						if local.firstWr[a.Elem] == -1 {
							local.firstWr[a.Elem] = int32(i)
						} else {
							local.multiWr[a.Elem] = true
						}
						local.written[a.Elem] = int32(i)
						recs = append(recs, writeRec{int32(i), a.Elem, v})
					}
				}
			}
			perProc[p] = recs
			mu.Lock()
			mergeMarks(sh, local)
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	// Phase 2: validation. An element is safe when it is never written,
	// or written exactly once by the only iteration that reads it
	// (privatizable). Everything else is a cross-iteration dependence.
	firstDep := -1
	for e := 0; e < l.NumElems; e++ {
		w := sh.firstWr[e]
		if w == -1 {
			continue // read-only element
		}
		rMin, rMax := sh.minRead[e], sh.maxRead[e]
		if !sh.multiWr[e] && (rMin == -1 || (rMin == w && rMax == w)) {
			continue // written once, read only by its writer
		}
		// The dependence sink is the latest involved iteration.
		sink := sh.written[e]
		if rMax > sink {
			sink = rMax
		}
		if firstDep == -1 || int(sink) < firstDep {
			firstDep = int(sink)
		}
	}
	if firstDep >= 0 {
		return LRPDResult{Passed: false, FirstDependence: firstDep}
	}

	// Commit: apply writes in iteration order (last writer wins).
	out := append([]float64(nil), init...)
	lastWriter := make([]int32, l.NumElems)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for _, recs := range perProc {
		for _, r := range recs {
			if r.iter >= lastWriter[r.elem] {
				lastWriter[r.elem] = r.iter
				out[r.elem] = r.val
			}
		}
	}
	return LRPDResult{Passed: true, Array: out}
}

func mergeMarks(dst, src *marks) {
	for e := range dst.written {
		if src.firstWr[e] != -1 {
			if dst.firstWr[e] == -1 {
				dst.firstWr[e] = src.firstWr[e]
			} else {
				dst.multiWr[e] = true
				if src.firstWr[e] < dst.firstWr[e] {
					dst.firstWr[e] = src.firstWr[e]
				}
			}
			if src.multiWr[e] {
				dst.multiWr[e] = true
			}
			if src.written[e] > dst.written[e] {
				dst.written[e] = src.written[e]
			}
		}
		if src.minRead[e] != -1 && (dst.minRead[e] == -1 || src.minRead[e] < dst.minRead[e]) {
			dst.minRead[e] = src.minRead[e]
		}
		if src.maxRead[e] > dst.maxRead[e] {
			dst.maxRead[e] = src.maxRead[e]
		}
	}
}

func blockBounds(n, procs, p int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
