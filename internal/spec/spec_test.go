package spec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// parallelLoop builds a loop with no cross-iteration dependences: each
// iteration reads and writes its own disjoint elements.
func parallelLoop(iters int) *Loop {
	l := NewLoop(iters * 2)
	for i := 0; i < iters; i++ {
		l.AddIter(
			Access{Elem: int32(2 * i), Kind: Read},
			Access{Elem: int32(2*i + 1), Kind: Write},
		)
	}
	return l
}

// trackLike builds a partially parallel loop modeled on the paper's TRACK
// code: most iterations are independent, but a fraction read an element a
// recent earlier iteration wrote (position-dependent interactions).
func trackLike(iters int, depFrac float64, seed int64) *Loop {
	rng := rand.New(rand.NewSource(seed))
	l := NewLoop(iters + 1)
	for i := 0; i < iters; i++ {
		// Independent by default: each iteration updates its own element.
		accs := []Access{
			{Elem: int32(i), Kind: Read},
			{Elem: int32(i), Kind: Write},
		}
		if i > 0 && rng.Float64() < depFrac {
			// Read something a nearby earlier iteration wrote.
			back := 1 + rng.Intn(minI(i, 16))
			accs = append(accs, Access{Elem: int32(i - back), Kind: Read})
		}
		l.AddIter(accs...)
	}
	return l
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func initArray(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%13) * 0.125
	}
	return a
}

func assertSame(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: element %d = %g, want %g", what, i, got[i], want[i])
		}
	}
}

func TestLRPDPassesOnParallelLoop(t *testing.T) {
	l := parallelLoop(200)
	init := initArray(l.NumElems)
	res := l.LRPD(init, 4)
	if !res.Passed {
		t.Fatalf("fully parallel loop failed LRPD at iteration %d", res.FirstDependence)
	}
	assertSame(t, res.Array, l.RunSequential(init), "LRPD commit")
}

func TestLRPDDetectsDependence(t *testing.T) {
	// Iteration 3 reads what iteration 1 writes: a flow dependence.
	l := NewLoop(8)
	l.AddIter(Access{Elem: 0, Kind: Write})
	l.AddIter(Access{Elem: 5, Kind: Write})
	l.AddIter(Access{Elem: 1, Kind: Write})
	l.AddIter(Access{Elem: 5, Kind: Read}, Access{Elem: 2, Kind: Write})
	res := l.LRPD(initArray(8), 2)
	if res.Passed {
		t.Fatal("LRPD must detect the cross-iteration flow dependence")
	}
	if res.FirstDependence != 3 {
		t.Errorf("first dependence sink = %d, want 3", res.FirstDependence)
	}
}

func TestLRPDVariousProcCounts(t *testing.T) {
	l := parallelLoop(100)
	init := initArray(l.NumElems)
	want := l.RunSequential(init)
	for _, procs := range []int{1, 2, 3, 8} {
		res := l.LRPD(init, procs)
		if !res.Passed {
			t.Fatalf("procs=%d: spuriously failed", procs)
		}
		assertSame(t, res.Array, want, "LRPD")
	}
}

func TestRLRPDFullyParallelOnePass(t *testing.T) {
	l := parallelLoop(300)
	init := initArray(l.NumElems)
	got, st := l.RLRPD(init, 8)
	if st.Passes != 1 {
		t.Errorf("fully parallel loop took %d passes, want 1", st.Passes)
	}
	if st.IterationsExecuted != 300 {
		t.Errorf("executed %d iterations, want 300 (no re-execution)", st.IterationsExecuted)
	}
	assertSame(t, got, l.RunSequential(init), "R-LRPD")
}

func TestRLRPDPartiallyParallelCorrect(t *testing.T) {
	for _, depFrac := range []float64{0.01, 0.05, 0.3, 0.9} {
		l := trackLike(400, depFrac, 42)
		init := initArray(l.NumElems)
		got, st := l.RLRPD(init, 8)
		assertSame(t, got, l.RunSequential(init), "R-LRPD partial")
		if st.Passes < 1 {
			t.Errorf("depFrac=%g: %d passes", depFrac, st.Passes)
		}
	}
}

func TestRLRPDSequentialChainWorstCase(t *testing.T) {
	// Every iteration reads its predecessor's write: fully sequential.
	l := NewLoop(64)
	for i := 0; i < 63; i++ {
		l.AddIter(Access{Elem: int32(i), Kind: Read}, Access{Elem: int32(i + 1), Kind: Write})
	}
	init := initArray(64)
	got, st := l.RLRPD(init, 4)
	assertSame(t, got, l.RunSequential(init), "sequential chain")
	if st.Passes < 2 {
		t.Errorf("a dependence chain should take multiple passes, got %d", st.Passes)
	}
}

func TestRLRPDCommitsPrefixMonotonically(t *testing.T) {
	l := trackLike(500, 0.1, 7)
	init := initArray(l.NumElems)
	_, st := l.RLRPD(init, 8)
	total := 0
	for _, c := range st.CommittedPerPass {
		if c <= 0 {
			t.Fatalf("a pass committed %d iterations", c)
		}
		total += c
	}
	if total != 500 {
		t.Errorf("committed %d iterations total, want 500", total)
	}
}

func TestRLRPDBeatsSequentialOnMostlyParallel(t *testing.T) {
	// The paper's headline for TRACK: speedup where speculation
	// previously failed outright.
	l := trackLike(2000, 0.02, 3)
	init := initArray(l.NumElems)
	// Plain LRPD on the whole loop must fail...
	if res := l.LRPD(init, 8); res.Passed {
		t.Skip("random instance happened to be fully parallel")
	}
	// ...but R-LRPD extracts most of the parallelism.
	_, st := l.RLRPD(init, 8)
	sp := st.SpeedupEstimate(2000, 8)
	if sp < 2 {
		t.Errorf("R-LRPD speedup estimate %.2f on a 2%%-dependent loop, want >= 2", sp)
	}
	// Re-execution overhead stays bounded.
	if st.IterationsExecuted > 3*2000 {
		t.Errorf("executed %d iterations for a 2000-iteration loop", st.IterationsExecuted)
	}
}

func TestSpeedupEstimateDegenerate(t *testing.T) {
	var st RLRPDStats
	if got := st.SpeedupEstimate(100, 8); got != 1 {
		t.Errorf("empty stats speedup = %g, want 1", got)
	}
}

func TestAddIterPanicsOnBadElem(t *testing.T) {
	l := NewLoop(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.AddIter(Access{Elem: 9, Kind: Read})
}

func TestQuickRLRPDAlwaysCorrect(t *testing.T) {
	// Property: for random small loops of any dependence structure,
	// R-LRPD's result equals sequential execution.
	f := func(pat []uint8, procsRaw uint8) bool {
		procs := int(procsRaw)%6 + 1
		l := NewLoop(32)
		for j := 0; j+2 < len(pat); j += 3 {
			l.AddIter(
				Access{Elem: int32(pat[j] % 32), Kind: Read},
				Access{Elem: int32(pat[j+1] % 32), Kind: Read},
				Access{Elem: int32(pat[j+2] % 32), Kind: Write},
			)
		}
		if l.NumIters() == 0 {
			return true
		}
		init := initArray(32)
		got, _ := l.RLRPD(init, procs)
		want := l.RunSequential(init)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
