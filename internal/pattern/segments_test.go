package pattern

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// segLoop builds a loop of iters iterations × refsPerIter references over
// dim elements, with content drawn from rng except where override returns
// a non-negative subscript for the given global reference position.
func segLoop(t *testing.T, name string, dim, iters, refsPerIter int, seed int64, override func(pos int) int32) *trace.Loop {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop(name, dim)
	refs := make([]int32, refsPerIter)
	pos := 0
	for i := 0; i < iters; i++ {
		for j := range refs {
			refs[j] = int32(rng.Intn(dim))
			if override != nil {
				if v := override(pos); v >= 0 {
					refs[j] = v
				}
			}
			pos++
		}
		l.AddIter(refs...)
	}
	return l
}

func TestAnalyzeSegmentsFullOverlap(t *testing.T) {
	base := segLoop(t, "base", 256, 64, 4, 1, nil)
	members := []*trace.Loop{base, base.Clone(), base.Clone()}
	a, err := AnalyzeSegments(members, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Segments != 4 || a.Members != 3 {
		t.Fatalf("segments/members = %d/%d, want 4/3", a.Segments, a.Members)
	}
	if a.Unique != 4 {
		t.Errorf("full overlap unique = %d, want 4 (one owner per segment)", a.Unique)
	}
	if a.SharedSegs != 4 {
		t.Errorf("SharedSegs = %d, want 4", a.SharedSegs)
	}
	if want := 2.0 / 3.0; a.OverlapFrac < want-1e-12 || a.OverlapFrac > want+1e-12 {
		t.Errorf("OverlapFrac = %g, want %g", a.OverlapFrac, want)
	}
	for m := range members {
		for s := 0; s < a.Segments; s++ {
			if a.OwnerOf[m][s] != 0 {
				t.Fatalf("OwnerOf[%d][%d] = %d, want 0", m, s, a.OwnerOf[m][s])
			}
		}
	}
}

func TestAnalyzeSegmentsDisjoint(t *testing.T) {
	members := []*trace.Loop{
		segLoop(t, "a", 256, 64, 4, 1, nil),
		segLoop(t, "b", 256, 64, 4, 2, nil),
	}
	a, err := AnalyzeSegments(members, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Unique != 8 || a.SharedSegs != 0 || a.OverlapFrac != 0 {
		t.Errorf("disjoint analysis: unique=%d shared=%d overlap=%g, want 8/0/0",
			a.Unique, a.SharedSegs, a.OverlapFrac)
	}
}

// TestAnalyzeSegmentsSharedPrefix checks the staircase shape: member m
// shares the first 4-m segments with the leader and diverges after.
func TestAnalyzeSegmentsSharedPrefix(t *testing.T) {
	const dim, iters, rpi, segIters = 256, 64, 4, 16
	refsPerSeg := segIters * rpi
	lead := segLoop(t, "lead", dim, iters, rpi, 1, nil)
	_, leadRefs := lead.Flat()
	members := []*trace.Loop{lead}
	for m := 1; m < 3; m++ {
		sharedUpTo := (4 - m) * refsPerSeg
		priv := segLoop(t, "m", dim, iters, rpi, int64(10+m), func(pos int) int32 {
			if pos < sharedUpTo {
				return leadRefs[pos]
			}
			return -1
		})
		members = append(members, priv)
	}
	a, err := AnalyzeSegments(members, segIters)
	if err != nil {
		t.Fatal(err)
	}
	// Member 1 shares segments 0-2, member 2 shares 0-1: unique tasks are
	// leader's 4 + member 1's segment 3 + member 2's segments 2,3.
	if a.Unique != 7 {
		t.Errorf("staircase unique = %d, want 7", a.Unique)
	}
	if a.SharedSegs != 3 {
		t.Errorf("staircase SharedSegs = %d, want 3", a.SharedSegs)
	}
	if a.OwnerOf[1][0] != 0 || a.OwnerOf[1][3] != 1 || a.OwnerOf[2][1] != 0 || a.OwnerOf[2][2] != 2 {
		t.Errorf("staircase ownership wrong: %v", a.OwnerOf)
	}
}

// TestAnalyzeSegmentsTransitiveOwner checks that two members sharing
// content absent from the leader still share one owner.
func TestAnalyzeSegmentsTransitiveOwner(t *testing.T) {
	lead := segLoop(t, "lead", 256, 64, 4, 1, nil)
	twinA := segLoop(t, "twinA", 256, 64, 4, 2, nil)
	twinB := twinA.Clone()
	a, err := AnalyzeSegments([]*trace.Loop{lead, twinA, twinB}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < a.Segments; s++ {
		if a.OwnerOf[2][s] != 1 {
			t.Fatalf("OwnerOf[2][%d] = %d, want 1 (twin ownership)", s, a.OwnerOf[2][s])
		}
	}
	if a.Unique != 8 {
		t.Errorf("unique = %d, want 8", a.Unique)
	}
}

func TestAnalyzeSegmentsConstRunsAndIdempotence(t *testing.T) {
	l := trace.NewLoop("const", 64)
	for i := 0; i < 32; i++ {
		l.AddIter(7, 7, 7, 7)
	}
	l.Op = trace.OpMax
	a, err := AnalyzeSegments([]*trace.Loop{l}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 128 refs, 127 adjacent pairs equal.
	if a.ConstRunFrac < 0.99 {
		t.Errorf("ConstRunFrac = %g, want ~0.99", a.ConstRunFrac)
	}
	if !a.Idempotent {
		t.Error("OpMax loop not flagged idempotent")
	}
	rnd := segLoop(t, "rnd", 256, 64, 4, 3, nil)
	ar, err := AnalyzeSegments([]*trace.Loop{rnd}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ar.ConstRunFrac > 0.05 {
		t.Errorf("random ConstRunFrac = %g, want ~0", ar.ConstRunFrac)
	}
	if ar.Idempotent {
		t.Error("OpAdd loop flagged idempotent")
	}
}

func TestAnalyzeSegmentsRejectsMismatchedGeometry(t *testing.T) {
	a := segLoop(t, "a", 256, 64, 4, 1, nil)
	b := segLoop(t, "b", 256, 64, 5, 1, nil) // different iteration shape
	if _, err := AnalyzeSegments([]*trace.Loop{a, b}, 16); err == nil {
		t.Error("mismatched iteration shape not rejected")
	}
	c := segLoop(t, "c", 128, 64, 4, 1, nil) // different dimension
	if _, err := AnalyzeSegments([]*trace.Loop{a, c}, 16); err == nil {
		t.Error("mismatched NumElems not rejected")
	}
	if _, err := AnalyzeSegments(nil, 16); err == nil {
		t.Error("empty member list not rejected")
	}
	if _, err := AnalyzeSegments([]*trace.Loop{a}, 0); err == nil {
		t.Error("non-positive segment width not rejected")
	}
}
