package pattern

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// Segment analysis is the inspection pass behind the engine's reduction
// simplification (the polyhedral-simplification idea applied online): a
// batch of same-fingerprint loops is split into fixed-width iteration
// segments, and members whose subscript content is identical over a
// segment can share that segment's partial sum. The analysis produces
// exactly what the planner (reduction.BuildSegPlan) needs: a canonical
// owner per (member, segment) cell, the resulting unique-task count, and
// the scalar structure signals (overlap fraction, constant-run fraction,
// operator idempotence) the adapt decision boundary weighs against the
// segment-combine cost.
//
// Content equality is what makes sharing sound: trace.Value mixes the
// absolute iteration index and within-iteration position into every
// contribution, so two members produce bit-identical partial sums over a
// segment exactly when their subscript streams agree at the same
// positions — shared prefixes, nested windows and staircase overlaps all
// qualify; merely referencing the same elements in a different order does
// not, and the analysis correctly refuses to share it.

// SegmentAnalysis is the result of analyzing one batch's members over a
// common segment decomposition of the iteration space.
type SegmentAnalysis struct {
	// SegIters is the segment width in iterations; the last segment may
	// be shorter. Segments is the resulting segment count and Members the
	// number of analyzed loops.
	SegIters int
	Segments int
	Members  int

	// OwnerOf[m][s] is the lowest member index whose segment s subscript
	// content is verified identical to member m's — the canonical owner
	// whose partial sum member m can combine. OwnerOf[m][s] == m means
	// member m computes that segment itself.
	OwnerOf [][]int

	// Hashes[m][s] is the sampled content hash the ownership search used;
	// the planner reuses it to probe the engine's cached segment sums.
	Hashes [][]uint64

	// Unique is the number of distinct (owner == member) cells — the
	// partial sums a simplified execution actually computes. SharedSegs
	// counts the segment positions where at least two members share an
	// owner.
	Unique     int
	SharedSegs int

	// OverlapFrac is the fraction of (member, segment) cells served by
	// another member's computation: 1 - Unique/(Members*Segments). Zero
	// means fully disjoint content; (Members-1)/Members means every
	// member shares every segment.
	OverlapFrac float64

	// ConstRunFrac is the fraction of the leader's references that repeat
	// the immediately preceding subscript — the constant-run signal,
	// estimated from evenly spread sample blocks on long streams. Long
	// runs keep the direct loops' gathers cache-resident, which shrinks
	// the advantage of sharing their work.
	ConstRunFrac float64

	// Idempotent reports an idempotent reduction operator (max/min), for
	// which re-applying a shared segment is harmless — duplicate-tolerant
	// combining needs no exactly-once bookkeeping.
	Idempotent bool
}

// segHashSamples bounds the per-segment hashing cost: at most
// ~64 sampled references per segment feed the hash; candidate sharing is
// then verified by full content comparison, so sampling can only cost a
// missed sharing opportunity, never a wrong one.
const segHashSamples = 64

// constRunSampleBlocks / constRunBlockLen bound the constant-run scan:
// streams longer than their product are sampled in evenly spread blocks.
const (
	constRunSampleBlocks = 32
	constRunBlockLen     = 512
)

// AnalyzeSegments builds the segment decomposition of a batch's members
// on one goroutine; AnalyzeSegmentsProcs spreads the work.
func AnalyzeSegments(members []*trace.Loop, segIters int) (*SegmentAnalysis, error) {
	return AnalyzeSegmentsProcs(members, segIters, 1)
}

// AnalyzeSegmentsProcs builds the segment decomposition of a batch's
// members on up to procs goroutines. Hashing, content verification and
// the ownership search are independent per segment, so the analysis
// sweep scales with the executing processors instead of serializing in
// front of them. All members must share iteration geometry: the same
// NumElems, Op and identical offsets arrays (fingerprint-equal loops
// almost surely do; the check is cheap and makes the contract explicit).
// segIters must be positive.
func AnalyzeSegmentsProcs(members []*trace.Loop, segIters, procs int) (*SegmentAnalysis, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("pattern: AnalyzeSegments needs at least one member")
	}
	if segIters < 1 {
		return nil, fmt.Errorf("pattern: non-positive segment width %d", segIters)
	}
	leader := members[0]
	iters := leader.NumIters()
	if iters == 0 {
		return nil, fmt.Errorf("pattern: loop %q has no iterations", leader.Name)
	}
	leadOffs, leadRefs := leader.Flat()
	for _, m := range members[1:] {
		if m.NumElems != leader.NumElems || m.Op != leader.Op {
			return nil, fmt.Errorf("pattern: member %q geometry differs from leader %q", m.Name, leader.Name)
		}
		offs, _ := m.Flat()
		if !SameRefs(leadOffs, offs) {
			return nil, fmt.Errorf("pattern: member %q iteration shape differs from leader %q", m.Name, leader.Name)
		}
	}

	segs := (iters + segIters - 1) / segIters
	a := &SegmentAnalysis{
		SegIters:   segIters,
		Segments:   segs,
		Members:    len(members),
		OwnerOf:    make([][]int, len(members)),
		Hashes:     make([][]uint64, len(members)),
		Idempotent: leader.Op == trace.OpMax || leader.Op == trace.OpMin,
	}
	for m := range members {
		a.OwnerOf[m] = make([]int, segs)
		a.Hashes[m] = make([]uint64, segs)
	}
	if procs < 1 {
		procs = 1
	}
	if procs > segs {
		procs = segs
	}

	// Hashing and the ownership search: for each cell, the owner is the
	// lowest earlier member with the same hash and verified-equal
	// content. The verification compares the raw subscript slices, so a
	// hash collision degrades to a missed share, never to a wrong one.
	// Segments are independent of each other — each worker owns a stripe
	// of segment positions end to end.
	shared := make([]bool, segs)
	unique := make([]int, procs)
	fanOut(procs, func(pr int) {
		for s := pr; s < segs; s += procs {
			lo, hi := segRefRange(leadOffs, s, segIters, iters)
			for m, l := range members {
				_, refs := l.Flat()
				a.Hashes[m][s] = hashRefs(refs[lo:hi])
				owner := m
				for o := 0; o < m; o++ {
					if a.Hashes[o][s] != a.Hashes[m][s] || a.OwnerOf[o][s] != o {
						continue
					}
					_, orefs := members[o].Flat()
					if SameRefs(refs[lo:hi], orefs[lo:hi]) {
						owner = o
						break
					}
				}
				a.OwnerOf[m][s] = owner
				if owner == m {
					unique[pr]++
				} else {
					shared[s] = true
				}
			}
		}
	})
	for _, u := range unique {
		a.Unique += u
	}
	for _, sh := range shared {
		if sh {
			a.SharedSegs++
		}
	}
	cells := len(members) * segs
	a.OverlapFrac = 1 - float64(a.Unique)/float64(cells)

	// The constant-run signal steers the decision boundary's cost model;
	// it is a statistic, not a correctness input, so long streams are
	// sampled in evenly spread blocks rather than paying a second full
	// pass over the subscripts.
	run, pairs := 0, 0
	total := len(leadRefs)
	if total <= constRunSampleBlocks*constRunBlockLen {
		for i := 1; i < total; i++ {
			if leadRefs[i] == leadRefs[i-1] {
				run++
			}
		}
		pairs = total - 1
	} else {
		stride := total / constRunSampleBlocks
		for blk := 0; blk < constRunSampleBlocks; blk++ {
			lo := blk * stride
			hi := lo + constRunBlockLen
			if hi > total {
				hi = total
			}
			for i := lo + 1; i < hi; i++ {
				if leadRefs[i] == leadRefs[i-1] {
					run++
				}
			}
			pairs += hi - lo - 1
		}
	}
	if pairs > 0 {
		a.ConstRunFrac = float64(run) / float64(pairs)
	}
	return a, nil
}

// fanOut runs fn(0..procs-1) concurrently and waits; procs 1 stays on
// the calling goroutine.
func fanOut(procs int, fn func(pr int)) {
	if procs <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for pr := 1; pr < procs; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			fn(pr)
		}(pr)
	}
	fn(0)
	wg.Wait()
}

// segRefRange returns the [lo, hi) reference range of segment s under the
// common offsets array.
func segRefRange(offs []int32, s, segIters, iters int) (lo, hi int) {
	itLo := s * segIters
	itHi := itLo + segIters
	if itHi > iters {
		itHi = iters
	}
	return int(offs[itLo]), int(offs[itHi])
}

// hashRefs is the sampled FNV content hash of one segment's subscript
// slice. Length and sample positions are mixed in, so a shifted copy of
// the same values hashes differently.
func hashRefs(refs []int32) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	mix(uint64(len(refs)))
	stride := len(refs) / segHashSamples
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(refs); i += stride {
		mix(uint64(uint32(refs[i])) | uint64(i)<<32)
	}
	return h
}

// SameRefs reports element-wise equality of two subscript (or offsets)
// slices with a pointer fast path. The planner uses it to verify cached
// segment sums against the submitted content before reusing them, so it
// runs over every shared segment of every batch: the main loop folds
// eight XORs into one branch per block, keeping the equal case (the
// overwhelmingly common one) free of per-element branches.
func SameRefs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	i := 0
	for ; i+8 <= len(a); i += 8 {
		av, bv := a[i:i+8], b[i:i+8]
		d := (av[0] ^ bv[0]) | (av[1] ^ bv[1]) | (av[2] ^ bv[2]) | (av[3] ^ bv[3]) |
			(av[4] ^ bv[4]) | (av[5] ^ bv[5]) | (av[6] ^ bv[6]) | (av[7] ^ bv[7])
		if d != 0 {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
