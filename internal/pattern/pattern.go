// Package pattern implements the memory-reference characterization of
// Section 4 of the paper. For a reduction loop it computes the paper's
// taxonomy of access-pattern metrics:
//
//   - CH:  histogram of "number of elements referenced by a certain number
//     of iterations"
//   - CHD: the CH distribution (normalized CH)
//   - CHR: ratio of the total number of references to the space needed for
//     per-processor replicated arrays (TotalRefs / (P * NumElems))
//   - CON: connectivity — iterations / distinct referenced elements
//   - MO:  mobility — proportional to the number of distinct elements an
//     iteration references (average distinct refs per iteration)
//   - SP:  sparsity — referenced elements / array dimension (reported in
//     percent, as in the paper's Figure 3)
//   - DIM: reduction array size / cache size
//
// Characterization can be exact (full trace) or sampled ("fast,
// approximative methods" run during an inspector phase). A Tracker supports
// the paper's incremental re-characterization: dynamic codes accumulate
// pattern changes and trigger re-characterization only when the change
// crosses a run-time threshold.
package pattern

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Profile holds the measured characteristics of one reduction loop on a
// machine with a given processor count and cache size.
type Profile struct {
	// LoopName identifies the characterized loop.
	LoopName string
	// Procs is the processor count CHR was computed for.
	Procs int
	// CacheBytes is the per-processor cache capacity DIM was computed for.
	CacheBytes int

	// NumElems is the reduction array dimension.
	NumElems int
	// NumIters is the number of loop iterations observed.
	NumIters int
	// TotalRefs is the total number of reduction references observed.
	TotalRefs int
	// Distinct is the number of distinct reduction elements referenced.
	Distinct int
	// MaxRefsPerElem is the largest number of references any single
	// element receives (the tail of CH; a proxy for contention hot spots).
	MaxRefsPerElem int

	// CH is the contention histogram: CH.Count(k) is the number of
	// elements referenced exactly k times.
	CH *stats.Histogram

	// CHR, CON, MO, SP, DIM are the paper's scalar metrics (SP in percent).
	CHR float64
	CON float64
	MO  float64
	SP  float64
	DIM float64

	// Sampled reports whether the profile was built from a sampled
	// inspector pass rather than the full trace.
	Sampled bool
	// SampleStride is the iteration stride used when Sampled.
	SampleStride int
}

// Characterize computes the exact profile of loop l for a machine with
// procs processors whose per-processor cache holds cacheBytes bytes.
func Characterize(l *trace.Loop, procs, cacheBytes int) *Profile {
	return characterize(l, procs, cacheBytes, 1)
}

// CharacterizeSampled computes an approximate profile by inspecting every
// stride-th iteration and scaling counts back up. It models the paper's
// fast inspector-phase characterization. stride must be >= 1.
func CharacterizeSampled(l *trace.Loop, procs, cacheBytes, stride int) *Profile {
	if stride < 1 {
		stride = 1
	}
	p := characterize(l, procs, cacheBytes, stride)
	p.Sampled = stride > 1
	p.SampleStride = stride
	return p
}

func characterize(l *trace.Loop, procs, cacheBytes, stride int) *Profile {
	if procs < 1 {
		procs = 1
	}
	if cacheBytes < 1 {
		cacheBytes = 1
	}
	perElem := make([]int32, l.NumElems)
	sampledIters := 0
	sampledRefs := 0
	var distinctPerIterSum float64
	seen := make(map[int32]struct{}, 16)
	for i := 0; i < l.NumIters(); i += stride {
		sampledIters++
		refs := l.Iter(i)
		sampledRefs += len(refs)
		if len(refs) <= 1 {
			distinctPerIterSum += float64(len(refs))
			for _, r := range refs {
				perElem[r]++
			}
			continue
		}
		for k := range seen {
			delete(seen, k)
		}
		for _, r := range refs {
			perElem[r]++
			seen[r] = struct{}{}
		}
		distinctPerIterSum += float64(len(seen))
	}

	distinct := 0
	maxPerElem := 0
	ch := stats.NewHistogram()
	for _, c := range perElem {
		if c > 0 {
			distinct++
			// Scale sampled per-element counts back to full-trace
			// magnitude so the CH histogram bins are comparable across
			// sampled and exact profiles.
			ch.Add(int(c) * stride)
			if int(c)*stride > maxPerElem {
				maxPerElem = int(c) * stride
			}
		}
	}

	totalRefs := sampledRefs * stride
	numIters := l.NumIters()

	p := &Profile{
		LoopName:       l.Name,
		Procs:          procs,
		CacheBytes:     cacheBytes,
		NumElems:       l.NumElems,
		NumIters:       numIters,
		TotalRefs:      totalRefs,
		Distinct:       distinct,
		MaxRefsPerElem: maxPerElem,
		CH:             ch,
	}
	p.CHR = float64(totalRefs) / float64(procs*l.NumElems)
	if distinct > 0 {
		p.CON = float64(numIters) / float64(distinct)
	}
	if sampledIters > 0 {
		p.MO = distinctPerIterSum / float64(sampledIters)
	}
	p.SP = 100 * float64(distinct) / float64(l.NumElems)
	if p.Sampled {
		// A sampled pass underestimates the distinct-element count; apply
		// the standard occupancy correction for sampling without
		// replacement approximated as Poisson arrivals.
		p.SP = estimateSparsityFromSample(l.NumElems, distinct, sampledRefs, totalRefs)
		if distinct > 0 {
			est := float64(l.NumElems) * p.SP / 100
			if est > 0 {
				p.CON = float64(numIters) / est
			}
		}
	}
	p.DIM = float64(l.ArrayBytes()) / float64(cacheBytes)
	return p
}

// estimateSparsityFromSample corrects the distinct-element count observed
// in a sampled inspector pass. Under a uniform-contention model, if the
// full trace has R references over d hot elements, a sample with r < R
// references observes each hot element with probability 1-exp(-r/d·…);
// inverting the occupancy formula recovers d.
func estimateSparsityFromSample(numElems, distinctSeen, sampleRefs, totalRefs int) float64 {
	if distinctSeen == 0 || sampleRefs == 0 {
		return 0
	}
	frac := float64(sampleRefs) / float64(totalRefs)
	if frac >= 0.999 {
		return 100 * float64(distinctSeen) / float64(numElems)
	}
	// Solve distinctSeen = d * (1 - exp(-refsPerElem*frac)) where
	// refsPerElem = totalRefs/d, by fixed-point iteration on d.
	d := float64(distinctSeen)
	for iter := 0; iter < 50; iter++ {
		rate := float64(totalRefs) / d * frac
		cov := 1 - math.Exp(-rate)
		if cov < 1e-9 {
			break
		}
		next := float64(distinctSeen) / cov
		if next > float64(numElems) {
			next = float64(numElems)
		}
		if math.Abs(next-d) < 0.5 {
			d = next
			break
		}
		d = next
	}
	return 100 * d / float64(numElems)
}

// CHD returns the CH distribution: the fraction of referenced elements in
// each contention bin, keyed by bin, in ascending bin order.
func (p *Profile) CHD() (bins []int, frac []float64) {
	total := p.CH.Total()
	if total == 0 {
		return nil, nil
	}
	bins = p.CH.Bins()
	frac = make([]float64, len(bins))
	for i, b := range bins {
		frac[i] = float64(p.CH.Count(b)) / float64(total)
	}
	return bins, frac
}

// HighContentionFraction returns the fraction of referenced elements whose
// reference count is at least minRefs. The set of high-contention CHRs is
// the paper's HCHR; this scalar summarizes it.
func (p *Profile) HighContentionFraction(minRefs int) float64 {
	total := p.CH.Total()
	if total == 0 {
		return 0
	}
	n := 0
	for _, b := range p.CH.Bins() {
		if b >= minRefs {
			n += p.CH.Count(b)
		}
	}
	return float64(n) / float64(total)
}

// String renders the scalar metrics in the order of the paper's Figure 3
// columns (MO, DIM as element count, SP, CON, CHR).
func (p *Profile) String() string {
	return fmt.Sprintf("%s: MO=%.2f INPUT=%d SP=%.3g%% CON=%.3g CHR=%.3g DIM=%.3g",
		p.LoopName, p.MO, p.NumElems, p.SP, p.CON, p.CHR, p.DIM)
}

// Distance returns a scale-free measure of how different two profiles are,
// as the maximum relative change across the scalar metrics. It is the
// quantity the paper's dynamic codes compare against a run-time threshold
// to decide whether a re-characterization is needed.
func Distance(a, b *Profile) float64 {
	rel := func(x, y float64) float64 {
		den := math.Max(math.Abs(x), math.Abs(y))
		if den == 0 {
			return 0
		}
		return math.Abs(x-y) / den
	}
	d := rel(a.CHR, b.CHR)
	if v := rel(a.CON, b.CON); v > d {
		d = v
	}
	if v := rel(a.MO, b.MO); v > d {
		d = v
	}
	if v := rel(a.SP, b.SP); v > d {
		d = v
	}
	if v := rel(a.DIM, b.DIM); v > d {
		d = v
	}
	return d
}

// Tracker implements incremental re-characterization for dynamic codes:
// changes in the access pattern are collected incrementally, and when they
// are significant enough (a threshold tested at run time) the Tracker
// reports that a re-characterization is needed.
type Tracker struct {
	// Threshold is the relative-change level above which Update reports
	// that the pattern must be re-characterized. The zero value gets the
	// paper-motivated default of 0.25 on first use.
	Threshold float64

	baseline *Profile
	checks   int
	triggers int
}

// Update offers a freshly measured profile. It returns true when the
// accumulated change relative to the current baseline exceeds the
// threshold, in which case the new profile becomes the baseline.
func (t *Tracker) Update(p *Profile) bool {
	if t.Threshold == 0 {
		t.Threshold = 0.25
	}
	t.checks++
	if t.baseline == nil {
		t.baseline = p
		t.triggers++
		return true
	}
	if Distance(t.baseline, p) > t.Threshold {
		t.baseline = p
		t.triggers++
		return true
	}
	return false
}

// Baseline returns the profile the tracker currently considers current.
func (t *Tracker) Baseline() *Profile { return t.baseline }

// Stats returns how many updates were offered and how many triggered
// re-characterization.
func (t *Tracker) Stats() (checks, triggers int) { return t.checks, t.triggers }
