package pattern

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// uniformLoop builds a loop with iters iterations, each referencing
// refsPerIter elements drawn uniformly from [0, elems).
func uniformLoop(t testing.TB, elems, iters, refsPerIter int, seed int64) *trace.Loop {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("uniform", elems)
	refs := make([]int32, refsPerIter)
	for i := 0; i < iters; i++ {
		for k := range refs {
			refs[k] = int32(rng.Intn(elems))
		}
		l.AddIter(refs...)
	}
	return l
}

func TestCharacterizeKnownPattern(t *testing.T) {
	// 4 elements; element 0 referenced 3 times, element 1 once.
	l := trace.NewLoop("known", 4)
	l.AddIter(0, 0)
	l.AddIter(0, 1)
	p := Characterize(l, 2, 64)

	if p.TotalRefs != 4 {
		t.Errorf("TotalRefs = %d, want 4", p.TotalRefs)
	}
	if p.Distinct != 2 {
		t.Errorf("Distinct = %d, want 2", p.Distinct)
	}
	// CHR = 4 refs / (2 procs * 4 elems) = 0.5
	if math.Abs(p.CHR-0.5) > 1e-12 {
		t.Errorf("CHR = %g, want 0.5", p.CHR)
	}
	// CON = 2 iters / 2 distinct = 1
	if math.Abs(p.CON-1) > 1e-12 {
		t.Errorf("CON = %g, want 1", p.CON)
	}
	// MO: iter0 touches 1 distinct elem, iter1 touches 2 -> 1.5
	if math.Abs(p.MO-1.5) > 1e-12 {
		t.Errorf("MO = %g, want 1.5", p.MO)
	}
	// SP = 2/4 = 50%
	if math.Abs(p.SP-50) > 1e-12 {
		t.Errorf("SP = %g, want 50", p.SP)
	}
	// DIM = 32 bytes / 64 bytes = 0.5
	if math.Abs(p.DIM-0.5) > 1e-12 {
		t.Errorf("DIM = %g, want 0.5", p.DIM)
	}
	// CH: one element with 3 refs, one with 1 ref.
	if p.CH.Count(3) != 1 || p.CH.Count(1) != 1 {
		t.Errorf("CH counts: CH(3)=%d CH(1)=%d", p.CH.Count(3), p.CH.Count(1))
	}
	if p.MaxRefsPerElem != 3 {
		t.Errorf("MaxRefsPerElem = %d, want 3", p.MaxRefsPerElem)
	}
}

func TestCHDSumsToOne(t *testing.T) {
	l := uniformLoop(t, 100, 500, 3, 1)
	p := Characterize(l, 8, 32<<10)
	bins, frac := p.CHD()
	if len(bins) != len(frac) {
		t.Fatal("bins/frac length mismatch")
	}
	var sum float64
	for _, f := range frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("CHD fractions sum to %g, want 1", sum)
	}
}

func TestCHDEmpty(t *testing.T) {
	l := trace.NewLoop("empty", 10)
	p := Characterize(l, 4, 1024)
	if bins, frac := p.CHD(); bins != nil || frac != nil {
		t.Error("CHD of empty loop should be nil, nil")
	}
	if p.CON != 0 || p.MO != 0 || p.SP != 0 {
		t.Errorf("empty loop metrics should be zero: %+v", p)
	}
}

func TestHighContentionFraction(t *testing.T) {
	l := trace.NewLoop("hc", 10)
	// Element 0: 5 refs. Elements 1..4: 1 ref each.
	l.AddIter(0, 0, 0, 0, 0)
	l.AddIter(1, 2, 3, 4)
	p := Characterize(l, 4, 1024)
	if got := p.HighContentionFraction(5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("HighContentionFraction(5) = %g, want 0.2", got)
	}
	if got := p.HighContentionFraction(1); got != 1 {
		t.Errorf("HighContentionFraction(1) = %g, want 1", got)
	}
	if got := p.HighContentionFraction(6); got != 0 {
		t.Errorf("HighContentionFraction(6) = %g, want 0", got)
	}
}

func TestSampledCloseToExact(t *testing.T) {
	l := uniformLoop(t, 2000, 40000, 2, 7)
	exact := Characterize(l, 8, 512<<10)
	sampled := CharacterizeSampled(l, 8, 512<<10, 10)
	if !sampled.Sampled || sampled.SampleStride != 10 {
		t.Fatalf("sampled flags wrong: %+v", sampled)
	}
	relErr := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a)
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	if e := relErr(sampled.CHR, exact.CHR); e > 0.05 {
		t.Errorf("sampled CHR %.4g vs exact %.4g (err %.2f)", sampled.CHR, exact.CHR, e)
	}
	if e := relErr(sampled.MO, exact.MO); e > 0.05 {
		t.Errorf("sampled MO %.4g vs exact %.4g (err %.2f)", sampled.MO, exact.MO, e)
	}
	// Sparsity uses the occupancy correction; allow 15% relative error.
	if e := relErr(sampled.SP, exact.SP); e > 0.15 {
		t.Errorf("sampled SP %.4g vs exact %.4g (err %.2f)", sampled.SP, exact.SP, e)
	}
}

func TestSampledStrideOneMatchesExact(t *testing.T) {
	l := uniformLoop(t, 100, 300, 2, 3)
	exact := Characterize(l, 4, 1024)
	s := CharacterizeSampled(l, 4, 1024, 1)
	if s.Sampled {
		t.Error("stride-1 sampling should not be flagged as sampled")
	}
	if s.CHR != exact.CHR || s.SP != exact.SP || s.CON != exact.CON {
		t.Errorf("stride-1 profile differs from exact: %+v vs %+v", s, exact)
	}
}

func TestDistanceProperties(t *testing.T) {
	l1 := uniformLoop(t, 100, 300, 2, 3)
	l2 := uniformLoop(t, 100, 3000, 2, 4)
	a := Characterize(l1, 8, 1024)
	b := Characterize(l2, 8, 1024)
	if d := Distance(a, a); d != 0 {
		t.Errorf("Distance(a,a) = %g, want 0", d)
	}
	dab, dba := Distance(a, b), Distance(b, a)
	if dab != dba {
		t.Errorf("Distance not symmetric: %g vs %g", dab, dba)
	}
	if dab <= 0 {
		t.Errorf("Distance(a,b) = %g, want > 0 for different loops", dab)
	}
	if dab > 1 {
		t.Errorf("relative distance should be <= 1, got %g", dab)
	}
}

func TestTrackerThreshold(t *testing.T) {
	small := uniformLoop(t, 1000, 10000, 2, 1)
	similar := uniformLoop(t, 1000, 10500, 2, 2) // ~5% more iterations
	veryDiff := uniformLoop(t, 1000, 100000, 2, 3)

	var tr Tracker
	p1 := Characterize(small, 8, 1024)
	if !tr.Update(p1) {
		t.Fatal("first update must trigger characterization")
	}
	p2 := Characterize(similar, 8, 1024)
	if tr.Update(p2) {
		t.Error("a ~5%% change should not exceed the default 25%% threshold")
	}
	if tr.Baseline() != p1 {
		t.Error("baseline should be unchanged after a non-trigger update")
	}
	p3 := Characterize(veryDiff, 8, 1024)
	if !tr.Update(p3) {
		t.Error("a 10x change must trigger re-characterization")
	}
	if tr.Baseline() != p3 {
		t.Error("baseline should advance after a trigger")
	}
	checks, triggers := tr.Stats()
	if checks != 3 || triggers != 2 {
		t.Errorf("Stats = (%d,%d), want (3,2)", checks, triggers)
	}
}

func TestTrackerCustomThreshold(t *testing.T) {
	tr := Tracker{Threshold: 0.01}
	a := uniformLoop(t, 1000, 10000, 2, 1)
	b := uniformLoop(t, 1000, 10500, 2, 2)
	tr.Update(Characterize(a, 8, 1024))
	if !tr.Update(Characterize(b, 8, 1024)) {
		t.Error("5%% change must trigger at a 1%% threshold")
	}
}

func TestCharacterizeDefensiveArgs(t *testing.T) {
	l := uniformLoop(t, 10, 20, 1, 1)
	p := Characterize(l, 0, 0) // invalid procs/cache are clamped
	if p.Procs != 1 || p.CacheBytes != 1 {
		t.Errorf("clamped Procs/CacheBytes = %d/%d, want 1/1", p.Procs, p.CacheBytes)
	}
}

func TestStringContainsMetrics(t *testing.T) {
	l := uniformLoop(t, 10, 20, 1, 1)
	p := Characterize(l, 2, 64)
	s := p.String()
	if len(s) == 0 || s[:7] != "uniform" {
		t.Errorf("String = %q", s)
	}
}

func TestQuickCHTotalEqualsDistinct(t *testing.T) {
	// Property: the CH histogram total equals the distinct element count,
	// and the sum over bins of bin*count equals total references.
	f := func(pattern []uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		l := trace.NewLoop("q", 32)
		for _, p := range pattern {
			l.AddIter(int32(int(p) % 32))
		}
		prof := Characterize(l, 4, 256)
		if prof.CH.Total() != prof.Distinct {
			return false
		}
		sum := 0
		for _, b := range prof.CH.Bins() {
			sum += b * prof.CH.Count(b)
		}
		return sum == prof.TotalRefs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
