// Package inspector implements the inspector/executor wavefront technique
// of Section 3: for a loop whose cross-iteration dependences are
// input-dependent, an inspector pass computes "sequences of mutually
// independent sets of iterations that can be executed in parallel"
// (wavefronts); the executor then runs each wavefront as a parallel phase
// with a barrier between phases.
package inspector

import (
	"fmt"
	"sync"

	"repro/internal/spec"
)

// Wavefronts computes the dependence levels of a spec.Loop: iteration i's
// level is one more than the deepest earlier iteration that writes
// something i reads or writes (flow, anti and output dependences all
// order iterations here, which is conservative but safe for in-place
// execution). Returns the iterations grouped by level.
func Wavefronts(l *spec.Loop) [][]int {
	n := l.NumIters()
	level := make([]int, n)
	// Per element, the deepest level at which it has been written or
	// read so far. Tracking maxima (not just the latest accessor) is
	// essential: iteration levels are not monotone in program order, so
	// a later accessor can sit at a shallower level than an earlier one.
	maxWriterLevel := make(map[int32]int)
	maxReaderLevel := make(map[int32]int)
	maxLevel := 0
	for i := 0; i < n; i++ {
		lv := 0
		for _, a := range l.Accesses(i) {
			if wl, ok := maxWriterLevel[a.Elem]; ok && wl+1 > lv {
				lv = wl + 1 // flow or output dependence
			}
			if a.Kind == spec.Write {
				if rl, ok := maxReaderLevel[a.Elem]; ok && rl+1 > lv {
					lv = rl + 1 // anti dependence
				}
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
		for _, a := range l.Accesses(i) {
			if a.Kind == spec.Write {
				if old, ok := maxWriterLevel[a.Elem]; !ok || lv > old {
					maxWriterLevel[a.Elem] = lv
				}
			} else {
				if old, ok := maxReaderLevel[a.Elem]; !ok || lv > old {
					maxReaderLevel[a.Elem] = lv
				}
			}
		}
	}
	fronts := make([][]int, maxLevel+1)
	for i := 0; i < n; i++ {
		fronts[level[i]] = append(fronts[level[i]], i)
	}
	return fronts
}

// ExecuteWavefronts runs the loop via the inspector/executor schedule on
// procs goroutines: each wavefront's iterations execute concurrently
// (they are mutually independent by construction), with a barrier between
// wavefronts. The result must equal sequential execution.
func ExecuteWavefronts(l *spec.Loop, init []float64, procs int) []float64 {
	if procs < 1 {
		panic(fmt.Sprintf("inspector: invalid procs %d", procs))
	}
	arr := append([]float64(nil), init...)
	fronts := Wavefronts(l)
	for _, front := range fronts {
		// Iterations within a front touch disjoint writer sets relative
		// to each other's reads and writes... flow/anti/output deps all
		// forced distinct levels, so in-place parallel execution is safe
		// except for two iterations in a front writing the same element;
		// the level rule orders those too (output dependence). Partition
		// the front across procs.
		var wg sync.WaitGroup
		chunk := (len(front) + procs - 1) / procs
		for p := 0; p < procs; p++ {
			lo := p * chunk
			if lo >= len(front) {
				break
			}
			hi := lo + chunk
			if hi > len(front) {
				hi = len(front)
			}
			wg.Add(1)
			go func(ids []int) {
				defer wg.Done()
				for _, i := range ids {
					l.ExecIter(i, arr)
				}
			}(front[lo:hi])
		}
		wg.Wait()
	}
	return arr
}

// Parallelism returns the average wavefront width — the speedup an
// idealized executor could achieve.
func Parallelism(fronts [][]int) float64 {
	if len(fronts) == 0 {
		return 1
	}
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	return float64(total) / float64(len(fronts))
}
