package inspector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func initArray(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%7) * 0.5
	}
	return a
}

func TestWavefrontsIndependentLoop(t *testing.T) {
	l := spec.NewLoop(16)
	for i := 0; i < 8; i++ {
		l.AddIter(spec.Access{Elem: int32(i), Kind: spec.Write})
	}
	fronts := Wavefronts(l)
	if len(fronts) != 1 || len(fronts[0]) != 8 {
		t.Fatalf("independent loop should be one wavefront of 8, got %v", fronts)
	}
	if p := Parallelism(fronts); p != 8 {
		t.Errorf("parallelism = %g, want 8", p)
	}
}

func TestWavefrontsChain(t *testing.T) {
	// i reads i-1's output: a full chain -> one iteration per front.
	l := spec.NewLoop(10)
	l.AddIter(spec.Access{Elem: 0, Kind: spec.Write})
	for i := 1; i < 9; i++ {
		l.AddIter(
			spec.Access{Elem: int32(i - 1), Kind: spec.Read},
			spec.Access{Elem: int32(i), Kind: spec.Write},
		)
	}
	fronts := Wavefronts(l)
	if len(fronts) != 9 {
		t.Fatalf("chain of 9 should give 9 wavefronts, got %d", len(fronts))
	}
	for lv, f := range fronts {
		if len(f) != 1 || f[0] != lv {
			t.Errorf("front %d = %v", lv, f)
		}
	}
}

func TestWavefrontsDiamond(t *testing.T) {
	// it0 writes A; it1 and it2 read A (independent of each other);
	// it3 reads both their outputs.
	l := spec.NewLoop(8)
	l.AddIter(spec.Access{Elem: 0, Kind: spec.Write})
	l.AddIter(spec.Access{Elem: 0, Kind: spec.Read}, spec.Access{Elem: 1, Kind: spec.Write})
	l.AddIter(spec.Access{Elem: 0, Kind: spec.Read}, spec.Access{Elem: 2, Kind: spec.Write})
	l.AddIter(spec.Access{Elem: 1, Kind: spec.Read}, spec.Access{Elem: 2, Kind: spec.Read}, spec.Access{Elem: 3, Kind: spec.Write})
	fronts := Wavefronts(l)
	if len(fronts) != 3 {
		t.Fatalf("diamond should give 3 levels, got %d: %v", len(fronts), fronts)
	}
	if len(fronts[1]) != 2 {
		t.Errorf("middle front should hold 2 iterations, got %v", fronts[1])
	}
}

func TestExecuteWavefrontsMatchesSequential(t *testing.T) {
	l := spec.NewLoop(32)
	// A mix: independent updates plus some chains.
	for i := 0; i < 20; i++ {
		if i%5 == 4 {
			l.AddIter(
				spec.Access{Elem: int32(i - 1), Kind: spec.Read},
				spec.Access{Elem: int32(i), Kind: spec.Write},
			)
		} else {
			l.AddIter(
				spec.Access{Elem: int32(i), Kind: spec.Read},
				spec.Access{Elem: int32(i), Kind: spec.Write},
			)
		}
	}
	init := initArray(32)
	want := l.RunSequential(init)
	for _, procs := range []int{1, 2, 4} {
		got := ExecuteWavefronts(l, init, procs)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("procs=%d element %d: %g vs %g", procs, i, got[i], want[i])
			}
		}
	}
}

func TestQuickWavefrontExecutionCorrect(t *testing.T) {
	f := func(pat []uint8) bool {
		l := spec.NewLoop(16)
		for j := 0; j+1 < len(pat); j += 2 {
			l.AddIter(
				spec.Access{Elem: int32(pat[j] % 16), Kind: spec.Read},
				spec.Access{Elem: int32(pat[j+1] % 16), Kind: spec.Write},
			)
		}
		if l.NumIters() == 0 {
			return true
		}
		init := initArray(16)
		want := l.RunSequential(init)
		got := ExecuteWavefronts(l, init, 3)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParallelismEmpty(t *testing.T) {
	if Parallelism(nil) != 1 {
		t.Error("empty fronts parallelism should be 1")
	}
}
