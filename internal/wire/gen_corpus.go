//go:build ignore

// gen_corpus.go regenerates the checked-in seed corpus for
// FuzzDecodeFrame from real encoded frames of every type (run with
// `go run gen_corpus.go` in this directory). The corpus gives the CI
// fuzz run structured starting points — length-prefixed frames with
// valid varint fields, loop payloads and the optional trailing
// extensions (HELLO flags, STATS recalibration pair) — instead of
// making it rediscover the framing from empty input every run.
// TestSeedCorpusDecodes keeps the files honest. The tail variants
// (HELLO flags, SUBMIT trace ID, the RESULT session generation, the
// STATS recal/simplify/histogram/session chain) and the session frames
// (OPEN_SESSION, SUBMIT_DELTA, CLOSE_SESSION) each get their own seed so
// the mutator starts from every frame length the protocol can produce.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	l := trace.NewLoop("corpus", 64)
	l.WorkPerIter = 2.5
	l.Invocations = 3
	l.AddIter(1, 5, 9)
	l.AddIter(5, 5, 63)
	l.AddIter(0)
	l.AddIter(62, 2, 33, 7)

	res := engine.Result{
		Values: []float64{1.5, -2.25, 0, 3e9}, Scheme: "hash",
		Why: "very sparse", CacheHit: true, BatchSize: 3,
		Elapsed: 123456, Imbalance: 1.25,
	}
	stats := engine.Stats{
		Jobs: 100, CacheHits: 80, CacheMisses: 20, Batches: 40, Coalesced: 60,
		CacheEntries: 7, CacheEvictions: 2,
		Schemes:        map[string]uint64{"rep": 60, "ll": 40},
		BatchOccupancy: []uint64{0, 10, 15},
	}
	recal := stats
	recal.Recalibrations, recal.SchemeSwitches = 9, 4
	simp := recal
	simp.SimplifiedBatches, simp.SimplifyFallbacks = 12, 1
	simp.SegsComputed, simp.SegsReused = 30, 18
	hist := simp
	hist.Stages = []obs.StageSummary{
		{Name: "queue_wait", Snap: obs.Snapshot{Count: 90, SumNs: 81000, MaxNs: 4000, Buckets: []uint64{2, 0, 0, 5, 83}}},
		{Name: "execute", Snap: obs.Snapshot{Count: 100, SumNs: 2_500_000, MaxNs: 90_000, Buckets: []uint64{0, 0, 0, 0, 0, 0, 0, 0, 1, 4, 95}}},
	}
	sess := hist
	sess.SessionOpens, sess.SessionJobs = 3, 25
	sess.SessionSegsComputed, sess.SessionSegsReused = 40, 160
	ten := sess
	ten.Tenants = []engine.TenantStats{
		{Name: "default", Weight: 1, Jobs: 30, Batches: 12,
			QueueWait: obs.Snapshot{Count: 30, SumNs: 27000, MaxNs: 1300, Buckets: []uint64{1, 0, 4, 25}}},
		{Name: "acme", Weight: 4, Jobs: 70, Batches: 28, Busy: 5, Recalibrations: 6, SchemeSwitches: 3,
			QueueWait: obs.Snapshot{Count: 60, SumNs: 54000, MaxNs: 2700, Buckets: []uint64{1, 0, 9, 50}}},
	}

	sessRes := res
	sessRes.Scheme, sessRes.SessionGen = "session", 26

	deltas := []reduction.RefDelta{{Pos: 0, Ref: 5}, {Pos: 3, Ref: 0}, {Pos: 9, Ref: 63}}

	seeds := map[string][]byte{
		"hello":          wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Procs: 8, MaxInflight: 64}),
		"hello-flags":    wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Procs: 8, MaxInflight: 64, Flags: wire.HelloFlagGateway}),
		"submit":         wire.AppendSubmit(nil, 1, l),
		"submit-traced":  wire.AppendSubmitTraced(nil, 1, l, 0x9e3779b97f4a7c15),
		"result":         wire.AppendResult(nil, 2, &res),
		"error":          wire.AppendError(nil, 3, "loop rejected"),
		"busy":           wire.AppendBusy(nil, 4, wire.BusyUpstream),
		"statsreq":       wire.AppendStatsReq(nil, 5),
		"stats":          wire.AppendStats(nil, 6, &stats),
		"stats-recal":    wire.AppendStats(nil, 7, &recal),
		"stats-simplify": wire.AppendStats(nil, 8, &simp),
		"stats-hist":     wire.AppendStats(nil, 9, &hist),
		"stats-session":  wire.AppendStats(nil, 10, &sess),
		"open-session":   wire.AppendOpenSession(nil, 11, 1, l),
		"delta":          wire.AppendDelta(nil, 12, 1, deltas),
		"delta-empty":    wire.AppendDelta(nil, 13, 1, nil),
		"close-session":  wire.AppendCloseSession(nil, 14, 1),
		"result-gen":     wire.AppendResult(nil, 15, &sessRes),
		"busy-session":   wire.AppendBusy(nil, 16, wire.BusySession),
		"hello-tenant":   wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Procs: 8, MaxInflight: 64, Tenant: "acme"}),
		"stats-tenant":   wire.AppendStats(nil, 17, &ten),
		"busy-tenant":    wire.AppendBusy(nil, 18, wire.BusyTenant),
	}
	for name, b := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		path := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame", "seed-"+name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
