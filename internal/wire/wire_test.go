package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// randomLoop builds a structurally valid loop with randomized shape: the
// property-test input space for the submit round trip.
func randomLoop(rng *rand.Rand) *trace.Loop {
	numElems := 1 + rng.Intn(2000)
	l := trace.NewLoop("rand", numElems)
	l.ElemBytes = 1 << uint(rng.Intn(5))
	l.Op = trace.Op(rng.Intn(4))
	l.WorkPerIter = rng.Float64() * 20
	l.DataRefsPerIter = rng.Float64() * 4
	l.Invocations = rng.Intn(50)
	iters := rng.Intn(200)
	for i := 0; i < iters; i++ {
		n := rng.Intn(4) // empty iterations included
		refs := make([]int32, n)
		for k := range refs {
			refs[k] = int32(rng.Intn(numElems))
		}
		l.AddIter(refs...)
	}
	return l
}

func TestSubmitRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		l := randomLoop(rng)
		buf := AppendSubmit(nil, uint64(trial)+1, l)
		f, n, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("trial %d: DecodeFrame: %v", trial, err)
		}
		if n != len(buf) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, n, len(buf))
		}
		if f.Type != FrameSubmit || f.JobID != uint64(trial)+1 {
			t.Fatalf("trial %d: frame header %v/%d", trial, f.Type, f.JobID)
		}
		got, err := f.DecodeSubmit(0)
		if err != nil {
			t.Fatalf("trial %d: DecodeSubmit: %v", trial, err)
		}
		if !l.EqualPattern(got) {
			t.Fatalf("trial %d: decoded loop pattern differs", trial)
		}
		if got.Name != l.Name || got.WorkPerIter != l.WorkPerIter ||
			got.DataRefsPerIter != l.DataRefsPerIter {
			t.Fatalf("trial %d: metadata differs: %+v", trial, got)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: decoded loop invalid: %v", trial, err)
		}
	}
}

func TestSubmitDecodeIntoReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var offsets, refs []int32
	l := &trace.Loop{}
	for trial := 0; trial < 50; trial++ {
		want := randomLoop(rng)
		buf := AppendSubmit(nil, 1, want)
		f, _, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		offsets, refs, _, err = f.DecodeSubmitInto(l, offsets, refs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualPattern(l) {
			t.Fatalf("trial %d: scratch decode differs", trial)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		want := engine.Result{
			Values:    make([]float64, rng.Intn(500)),
			Scheme:    "sel",
			Why:       "sparse pattern, high connectivity",
			CacheHit:  rng.Intn(2) == 0,
			BatchSize: 1 + rng.Intn(32),
			Elapsed:   time.Duration(rng.Int63n(int64(time.Second))),
			Imbalance: rng.Float64() * 3,
		}
		for i := range want.Values {
			want.Values[i] = rng.NormFloat64()
		}
		buf := AppendResult(nil, 42, &want)
		f, _, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Alternate between allocation and dst reuse.
		var dst []float64
		if trial%2 == 0 {
			dst = make([]float64, 0, 600)
		}
		got, err := f.DecodeResult(dst)
		if err != nil {
			t.Fatal(err)
		}
		if got.Scheme != want.Scheme || got.Why != want.Why ||
			got.CacheHit != want.CacheHit || got.BatchSize != want.BatchSize ||
			got.Elapsed != want.Elapsed || got.Imbalance != want.Imbalance {
			t.Fatalf("metadata mismatch: %+v vs %+v", got, want)
		}
		if len(got.Values) != len(want.Values) {
			t.Fatalf("value count %d, want %d", len(got.Values), len(want.Values))
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("value %d: %g != %g", i, got.Values[i], want.Values[i])
			}
		}
		if dst != nil && len(want.Values) > 0 && &got.Values[0] != &dst[:1][0] {
			t.Fatal("DecodeResult did not reuse dst with sufficient capacity")
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := engine.Stats{
		Jobs: 100, CacheHits: 80, CacheMisses: 20,
		Batches: 40, Coalesced: 60,
		CacheEntries: 16, CacheEvictions: 3,
		Schemes:        map[string]uint64{"rep": 50, "sel": 30, "pclr-Dir": 20},
		BatchOccupancy: []uint64{0, 10, 5, 0, 25},
	}
	buf := AppendStats(nil, 9, &want)
	f, _, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.DecodeStats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != want.Jobs || got.CacheHits != want.CacheHits ||
		got.CacheMisses != want.CacheMisses || got.Batches != want.Batches ||
		got.Coalesced != want.Coalesced || got.CacheEntries != want.CacheEntries ||
		got.CacheEvictions != want.CacheEvictions {
		t.Fatalf("counters mismatch: %+v", got)
	}
	if len(got.BatchOccupancy) != len(want.BatchOccupancy) {
		t.Fatalf("occupancy length %d", len(got.BatchOccupancy))
	}
	for i, v := range want.BatchOccupancy {
		if got.BatchOccupancy[i] != v {
			t.Fatalf("occupancy[%d] = %d, want %d", i, got.BatchOccupancy[i], v)
		}
	}
	if len(got.Schemes) != len(want.Schemes) {
		t.Fatalf("schemes %v", got.Schemes)
	}
	for k, v := range want.Schemes {
		if got.Schemes[k] != v {
			t.Fatalf("scheme %s = %d, want %d", k, got.Schemes[k], v)
		}
	}
}

// TestStatsRecalCompat pins the optional-trailing-pair rule the
// recalibration counters ride on, mirroring TestHelloFlagsCompat: a
// frame without the tail (what a pre-recalibration peer emits) decodes
// with both counters zero, a tailed frame round-trips, and the encoder
// omits the pair when both are zero so old decoders that reject trailing
// bytes would still accept it.
func TestStatsRecalCompat(t *testing.T) {
	legacy := AppendStats(nil, 9, &engine.Stats{Jobs: 5, Schemes: map[string]uint64{"rep": 5}})
	tailed := AppendStats(nil, 9, &engine.Stats{
		Jobs: 5, Schemes: map[string]uint64{"rep": 5},
		Recalibrations: 7, SchemeSwitches: 2,
	})
	if len(tailed) != len(legacy)+2 {
		t.Fatalf("tailed frame %d bytes vs legacy %d: recal pair not trailing", len(tailed), len(legacy))
	}
	f, _, err := DecodeFrame(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.DecodeStats()
	if err != nil || s.Recalibrations != 0 || s.SchemeSwitches != 0 {
		t.Fatalf("legacy stats decoded to recal %d/%d, err %v (want 0/0)", s.Recalibrations, s.SchemeSwitches, err)
	}
	f, _, err = DecodeFrame(tailed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s, err = f.DecodeStats(); err != nil || s.Recalibrations != 7 || s.SchemeSwitches != 2 {
		t.Fatalf("tailed stats decoded to recal %d/%d, err %v (want 7/2)", s.Recalibrations, s.SchemeSwitches, err)
	}
	// A half-pair (recalibrations without switches) is corrupt.
	f, _, err = DecodeFrame(halfPairStats(legacy), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeStats(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("half recal pair decoded without error: %v", err)
	}
}

// halfPairStats rebuilds a legacy STATS frame with one extra trailing
// uvarint — the invalid half of the recalibration pair.
func halfPairStats(legacy []byte) []byte {
	b := append([]byte(nil), legacy...)
	b = append(b, 7) // one more uvarint in the payload
	n := uint32(len(b) - 4)
	b[0], b[1], b[2], b[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	return b
}

// TestStatsSimplifyCompat pins the second optional tail — the
// simplification quad after the recalibration pair: pair-only frames
// decode with the quad zero, a quad frame round-trips (forcing the pair
// out even when it is zero, since tails decode positionally), and
// legacy frames decode with everything zero.
func TestStatsSimplifyCompat(t *testing.T) {
	base := engine.Stats{Jobs: 5, Schemes: map[string]uint64{"rep": 5}}
	legacy := AppendStats(nil, 9, &base)

	quad := base
	quad.SimplifiedBatches, quad.SimplifyFallbacks = 11, 3
	quad.SegsComputed, quad.SegsReused = 40, 120
	tailed := AppendStats(nil, 9, &quad)
	// Zero recal pair (2 bytes) + four single-byte counters.
	if len(tailed) != len(legacy)+6 {
		t.Fatalf("quad frame %d bytes vs legacy %d: quad not trailing after the pair", len(tailed), len(legacy))
	}
	f, _, err := DecodeFrame(tailed, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.DecodeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.SimplifiedBatches != 11 || s.SimplifyFallbacks != 3 ||
		s.SegsComputed != 40 || s.SegsReused != 120 {
		t.Fatalf("quad round-trip = %d/%d/%d/%d", s.SimplifiedBatches, s.SimplifyFallbacks, s.SegsComputed, s.SegsReused)
	}
	if s.Recalibrations != 0 || s.SchemeSwitches != 0 {
		t.Fatalf("zero recal pair decoded as %d/%d", s.Recalibrations, s.SchemeSwitches)
	}

	// A pair-only frame (a recalibrating peer without simplification)
	// decodes with the quad zero.
	pairOnly := base
	pairOnly.Recalibrations = 7
	f, _, err = DecodeFrame(AppendStats(nil, 9, &pairOnly), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s, err = f.DecodeStats(); err != nil || s.SimplifiedBatches != 0 || s.SegsReused != 0 {
		t.Fatalf("pair-only frame decoded quad %d/%d, err %v", s.SimplifiedBatches, s.SegsReused, err)
	}

	// A partial quad is corrupt.
	f, _, err = DecodeFrame(halfPairStats(AppendStats(nil, 9, &pairOnly)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeStats(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial quad decoded without error: %v", err)
	}
}

// TestSubmitTraceCompat pins the SUBMIT frame's optional trailing trace
// ID on the HELLO-flags rule: untraced frames are byte-identical to the
// pre-trace encoding and decode with trace ID 0; traced frames
// round-trip; a truncated trace ID is corrupt.
func TestSubmitTraceCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := randomLoop(rng)
	legacy := AppendSubmit(nil, 1, l)
	zeroTraced := AppendSubmitTraced(nil, 1, l, 0)
	if !bytes.Equal(legacy, zeroTraced) {
		t.Fatal("zero trace ID changed the SUBMIT encoding")
	}
	traced := AppendSubmitTraced(nil, 1, l, 0xdeadbeef)
	if len(traced) <= len(legacy) {
		t.Fatalf("traced frame (%d bytes) not longer than legacy (%d)", len(traced), len(legacy))
	}

	f, _, err := DecodeFrame(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := &trace.Loop{}
	_, _, id, err := f.DecodeSubmitInto(got, nil, nil, 0)
	if err != nil || id != 0 {
		t.Fatalf("legacy submit decoded trace id %d, err %v (want 0)", id, err)
	}

	f, _, err = DecodeFrame(traced, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, id, err = f.DecodeSubmitInto(got, nil, nil, 0); err != nil || id != 0xdeadbeef {
		t.Fatalf("traced submit decoded trace id %#x, err %v (want 0xdeadbeef)", id, err)
	}
	if !l.EqualPattern(got) {
		t.Fatal("traced submit corrupted the loop pattern")
	}

	// A truncated trace ID (multi-byte uvarint cut before its terminator)
	// is corrupt, not silently zero. 0xdeadbeef encodes to 5 bytes, so
	// dropping the last byte leaves a dangling continuation bit.
	cut := append([]byte(nil), traced[:len(traced)-1]...)
	n := uint32(len(cut) - 4)
	cut[0], cut[1], cut[2], cut[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	f, _, err = DecodeFrame(cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.DecodeSubmitInto(got, nil, nil, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated trace id decoded without error: %v", err)
	}
}

// TestStatsHistCompat pins the third optional STATS tail — the
// stage-latency histogram summary after the simplification quad. The
// matrix: legacy (no tails), pair-only, quad, and hist frames all decode
// with the correct fields zero or present; a hist frame forces the pair
// and quad out even when zero (positional tails); truncated hist tails
// are corrupt.
func TestStatsHistCompat(t *testing.T) {
	base := engine.Stats{Jobs: 5, Schemes: map[string]uint64{"rep": 5}}
	stages := []obs.StageSummary{
		{Name: "execute", Snap: obs.Snapshot{Count: 3, SumNs: 3000, MaxNs: 1500, Buckets: []uint64{0, 1, 2}}},
		{Name: "queue_wait", Snap: obs.Snapshot{Count: 2, SumNs: 10, MaxNs: 7, Buckets: []uint64{1, 0, 0, 1}}},
	}

	legacy := AppendStats(nil, 9, &base)
	withHist := base
	withHist.Stages = stages
	tailed := AppendStats(nil, 9, &withHist)
	if len(tailed) <= len(legacy)+6 {
		t.Fatalf("hist frame %d bytes vs legacy %d: hist tail (and forced pair+quad) missing", len(tailed), len(legacy))
	}

	decode := func(buf []byte) (engine.Stats, error) {
		f, _, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f.DecodeStats()
	}

	// Legacy decodes with no stages.
	s, err := decode(legacy)
	if err != nil || len(s.Stages) != 0 {
		t.Fatalf("legacy stats decoded %d stages, err %v", len(s.Stages), err)
	}
	// Pair-only and quad frames (earlier tails) decode with no stages.
	pairOnly := base
	pairOnly.Recalibrations = 7
	if s, err = decode(AppendStats(nil, 9, &pairOnly)); err != nil || len(s.Stages) != 0 {
		t.Fatalf("pair-only stats decoded %d stages, err %v", len(s.Stages), err)
	}
	quad := base
	quad.SegsReused = 11
	if s, err = decode(AppendStats(nil, 9, &quad)); err != nil || len(s.Stages) != 0 {
		t.Fatalf("quad stats decoded %d stages, err %v", len(s.Stages), err)
	}

	// The hist frame round-trips, zero pair and quad included.
	s, err = decode(tailed)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recalibrations != 0 || s.SimplifiedBatches != 0 {
		t.Fatalf("forced-out zero tails decoded as %d/%d", s.Recalibrations, s.SimplifiedBatches)
	}
	if len(s.Stages) != 2 {
		t.Fatalf("hist round-trip: %d stages", len(s.Stages))
	}
	for i, want := range stages {
		got := s.Stages[i]
		if got.Name != want.Name || got.Snap.Count != want.Snap.Count ||
			got.Snap.SumNs != want.Snap.SumNs || got.Snap.MaxNs != want.Snap.MaxNs {
			t.Fatalf("stage %d = %+v, want %+v", i, got, want)
		}
		if len(got.Snap.Buckets) != len(want.Snap.Buckets) {
			t.Fatalf("stage %d buckets %v, want %v", i, got.Snap.Buckets, want.Snap.Buckets)
		}
		for b := range want.Snap.Buckets {
			if got.Snap.Buckets[b] != want.Snap.Buckets[b] {
				t.Fatalf("stage %d bucket %d = %d, want %d", i, b, got.Snap.Buckets[b], want.Snap.Buckets[b])
			}
		}
	}
	// Every earlier tail rides along undisturbed when also set.
	full := withHist
	full.Recalibrations, full.SegsReused = 7, 11
	if s, err = decode(AppendStats(nil, 9, &full)); err != nil ||
		s.Recalibrations != 7 || s.SegsReused != 11 || len(s.Stages) != 2 {
		t.Fatalf("full-tails frame decoded %d/%d/%d stages, err %v", s.Recalibrations, s.SegsReused, len(s.Stages), err)
	}

	// Truncating the hist tail anywhere inside it is corrupt. The tailed
	// frame's prefix through the forced-out zero tails is the legacy
	// encoding plus 2 bytes of zero pair and 4 of zero quad; cutting
	// exactly there is a valid quad frame, so start one byte past it.
	histStart := len(legacy) + 6
	for n := histStart + 1; n < len(tailed); n++ {
		cut := append([]byte(nil), tailed[:n]...)
		ln := uint32(len(cut) - 4)
		cut[0], cut[1], cut[2], cut[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
		f, _, err := DecodeFrame(cut, 0)
		if err != nil {
			continue // header-level truncation already rejected
		}
		if _, err := f.DecodeStats(); err == nil {
			t.Fatalf("hist tail truncated to %d bytes decoded without error", n)
		}
	}
}

func TestSmallFramesRoundTrip(t *testing.T) {
	buf := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 8, MaxInflight: 64})
	buf = AppendError(buf, 7, "loop rejected")
	buf = AppendBusy(buf, 8, BusyGlobal)
	buf = AppendStatsReq(buf, 9)

	r := NewReader(bytes.NewReader(buf), 0)
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.DecodeHello()
	if err != nil || h.Version != ProtoVersion || h.Procs != 8 || h.MaxInflight != 64 {
		t.Fatalf("hello %+v, err %v", h, err)
	}
	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := f.DecodeError()
	if err != nil || f.JobID != 7 || msg != "loop rejected" {
		t.Fatalf("error frame %q/%d, err %v", msg, f.JobID, err)
	}
	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	code, err := f.DecodeBusy()
	if err != nil || f.JobID != 8 || code != BusyGlobal {
		t.Fatalf("busy frame %d/%d, err %v", code, f.JobID, err)
	}
	f, err = r.Next()
	if err != nil || f.Type != FrameStatsReq || f.JobID != 9 {
		t.Fatalf("statsreq frame %+v, err %v", f, err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

// TestHelloFlagsCompat pins the optional-trailing-field rule HELLO's
// flags ride on: a flagless frame (what a pre-gateway peer emits) decodes
// with Flags == 0, a flagged frame round-trips, and the encoder omits the
// field entirely when flags are zero so old decoders that reject trailing
// bytes would still accept it.
func TestHelloFlagsCompat(t *testing.T) {
	legacy := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 4, MaxInflight: 8})
	flagged := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 4, MaxInflight: 8, Flags: HelloFlagGateway})
	if len(flagged) <= len(legacy) {
		t.Fatalf("flagged frame (%d bytes) not longer than legacy (%d): flags field missing", len(flagged), len(legacy))
	}
	f, _, err := DecodeFrame(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.DecodeHello()
	if err != nil || h.Flags != 0 {
		t.Fatalf("legacy hello decoded to %+v, err %v (want Flags 0)", h, err)
	}
	f, _, err = DecodeFrame(flagged, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h, err = f.DecodeHello(); err != nil || h.Flags != HelloFlagGateway {
		t.Fatalf("flagged hello decoded to %+v, err %v (want gateway flag)", h, err)
	}
}

// TestHelloTenantCompat pins the HELLO frame's optional trailing tenant
// field: tenantless frames are byte-identical to the pre-tenant encoding
// and decode with Tenant empty, a tenant frame forces the flags field out
// (positional tails) and round-trips, flags and tenant ride together, and
// a truncated tenant string is corrupt.
func TestHelloTenantCompat(t *testing.T) {
	legacy := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 4, MaxInflight: 8})
	tenant := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 4, MaxInflight: 8, Tenant: "acme"})
	// Forced-out zero flags (1 byte) + length-prefixed name (1+4 bytes).
	if len(tenant) != len(legacy)+6 {
		t.Fatalf("tenant frame %d bytes vs legacy %d, want +6", len(tenant), len(legacy))
	}

	f, _, err := DecodeFrame(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.DecodeHello()
	if err != nil || h.Tenant != "" {
		t.Fatalf("legacy hello decoded tenant %q, err %v (want empty)", h.Tenant, err)
	}

	f, _, err = DecodeFrame(tenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h, err = f.DecodeHello(); err != nil || h.Tenant != "acme" || h.Flags != 0 {
		t.Fatalf("tenant hello decoded to %+v, err %v", h, err)
	}

	both := AppendHello(nil, Hello{Version: ProtoVersion, Procs: 4, MaxInflight: 8, Flags: HelloFlagGateway, Tenant: "acme"})
	f, _, err = DecodeFrame(both, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h, err = f.DecodeHello(); err != nil || h.Tenant != "acme" || h.Flags != HelloFlagGateway {
		t.Fatalf("flags+tenant hello decoded to %+v, err %v", h, err)
	}

	// Cutting inside the tenant string (after its length prefix) is
	// corrupt, not silently empty.
	cut := append([]byte(nil), tenant[:len(tenant)-2]...)
	ln := uint32(len(cut) - 4)
	cut[0], cut[1], cut[2], cut[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
	f, _, err = DecodeFrame(cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeHello(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated tenant decoded without error: %v", err)
	}
}

// TestStatsTenantCompat pins the fifth optional STATS tail — the
// per-tenant rows after the session quad. The compat matrix: every
// earlier-tail shape (legacy, pair, quad, hist, session) decodes with no
// tenant rows; a tenant frame forces all four earlier tails out (zeros)
// and round-trips names, weights, counters and queue-wait snapshots; all
// tails ride together; truncating anywhere inside the tenant tail is
// corrupt.
func TestStatsTenantCompat(t *testing.T) {
	base := engine.Stats{Jobs: 5, Schemes: map[string]uint64{"rep": 5}}
	legacy := AppendStats(nil, 9, &base)

	tenants := []engine.TenantStats{
		{Name: "default", Weight: 1, Jobs: 3, Batches: 2,
			QueueWait: obs.Snapshot{Count: 2, SumNs: 90, MaxNs: 60, Buckets: []uint64{0, 1, 1}}},
		{Name: "acme", Weight: 4, Jobs: 40, Batches: 10, Busy: 6, Recalibrations: 2, SchemeSwitches: 1,
			QueueWait: obs.Snapshot{Count: 10, SumNs: 5000, MaxNs: 900}},
	}
	tailed := base
	tailed.Tenants = tenants
	buf := AppendStats(nil, 9, &tailed)
	// Forced-out earlier tails: zero pair (2) + zero quad (4) + zero-stage
	// histogram (1) + zero session quad (4) = 11 bytes before the rows.
	if len(buf) <= len(legacy)+11 {
		t.Fatalf("tenant frame %d bytes vs legacy %d: tenant tail missing", len(buf), len(legacy))
	}

	decode := func(b []byte) (engine.Stats, error) {
		f, _, err := DecodeFrame(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f.DecodeStats()
	}

	for name, st := range map[string]engine.Stats{
		"legacy":  base,
		"pair":    {Jobs: 5, Recalibrations: 7},
		"quad":    {Jobs: 5, SegsReused: 11},
		"hist":    {Jobs: 5, Stages: []obs.StageSummary{{Name: "execute", Snap: obs.Snapshot{Count: 1, SumNs: 5, MaxNs: 5, Buckets: []uint64{1}}}}},
		"session": {Jobs: 5, SessionOpens: 2, SessionJobs: 9},
	} {
		s, err := decode(AppendStats(nil, 9, &st))
		if err != nil || len(s.Tenants) != 0 {
			t.Fatalf("%s frame decoded %d tenant rows, err %v (want none)", name, len(s.Tenants), err)
		}
	}

	s, err := decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recalibrations != 0 || s.SimplifiedBatches != 0 || len(s.Stages) != 0 || s.SessionOpens != 0 {
		t.Fatalf("forced-out earlier tails decoded as %d/%d/%d/%d", s.Recalibrations, s.SimplifiedBatches, len(s.Stages), s.SessionOpens)
	}
	if len(s.Tenants) != len(tenants) {
		t.Fatalf("tenant round-trip: %d rows, want %d", len(s.Tenants), len(tenants))
	}
	for i, want := range tenants {
		got := s.Tenants[i]
		if got.Name != want.Name || got.Weight != want.Weight ||
			got.Jobs != want.Jobs || got.Batches != want.Batches || got.Busy != want.Busy ||
			got.Recalibrations != want.Recalibrations || got.SchemeSwitches != want.SchemeSwitches {
			t.Fatalf("tenant %d = %+v, want %+v", i, got, want)
		}
		if got.QueueWait.Count != want.QueueWait.Count || got.QueueWait.SumNs != want.QueueWait.SumNs ||
			got.QueueWait.MaxNs != want.QueueWait.MaxNs || len(got.QueueWait.Buckets) != len(want.QueueWait.Buckets) {
			t.Fatalf("tenant %d queue-wait %+v, want %+v", i, got.QueueWait, want.QueueWait)
		}
		for b := range want.QueueWait.Buckets {
			if got.QueueWait.Buckets[b] != want.QueueWait.Buckets[b] {
				t.Fatalf("tenant %d bucket %d = %d, want %d", i, b, got.QueueWait.Buckets[b], want.QueueWait.Buckets[b])
			}
		}
	}

	// Every earlier tail rides along undisturbed when also set.
	full := tailed
	full.Recalibrations, full.SegsReused, full.SessionJobs = 7, 11, 9
	full.Stages = []obs.StageSummary{{Name: "execute", Snap: obs.Snapshot{Count: 1, SumNs: 5, MaxNs: 5, Buckets: []uint64{1}}}}
	if s, err = decode(AppendStats(nil, 9, &full)); err != nil ||
		s.Recalibrations != 7 || s.SegsReused != 11 || len(s.Stages) != 1 ||
		s.SessionJobs != 9 || len(s.Tenants) != 2 {
		t.Fatalf("full-tails frame decoded %d/%d/%d/%d/%d rows, err %v",
			s.Recalibrations, s.SegsReused, len(s.Stages), s.SessionJobs, len(s.Tenants), err)
	}

	// Truncating inside the tenant tail is corrupt. The tail starts right
	// after the 11 forced-out bytes.
	tenantStart := len(legacy) + 11
	for n := tenantStart + 1; n < len(buf); n++ {
		cut := append([]byte(nil), buf[:n]...)
		ln := uint32(len(cut) - 4)
		cut[0], cut[1], cut[2], cut[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
		f, _, err := DecodeFrame(cut, 0)
		if err != nil {
			continue // header-level truncation already rejected
		}
		if _, err := f.DecodeStats(); err == nil {
			t.Fatalf("tenant tail truncated to %d bytes decoded without error", n)
		}
	}
}

// TestBusyCodes round-trips every defined rejection code and pins that
// out-of-range codes are corrupt, not silently accepted.
func TestBusyCodes(t *testing.T) {
	for _, code := range []BusyCode{BusyConn, BusyGlobal, BusyUpstream, BusySession, BusyTenant} {
		f, _, err := DecodeFrame(AppendBusy(nil, 3, code), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.DecodeBusy()
		if err != nil || got != code {
			t.Fatalf("busy %v round-tripped to %v, err %v", code, got, err)
		}
		if got.String() == "" || got.String() == fmt.Sprintf("BusyCode(%d)", uint8(code)) {
			t.Fatalf("busy %d has no String name", uint8(code))
		}
	}
	f, _, err := DecodeFrame(AppendBusy(nil, 3, BusyCode(6)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeBusy(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown busy code decoded: %v", err)
	}
	if got := BusyCode(6).String(); got != "BusyCode(6)" {
		t.Fatalf("out-of-range BusyCode String = %q", got)
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePreamble(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := ReadPreamble(&buf)
	if err != nil || v != ProtoVersion {
		t.Fatalf("preamble version %d, err %v", v, err)
	}
	if _, err := ReadPreamble(bytes.NewReader([]byte("HTTP/1.1 "))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ReadPreamble(bytes.NewReader([]byte{'R', 'D', 'X', 'P', 99})); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := ReadPreamble(bytes.NewReader([]byte{'R', 'D'})); err == nil {
		t.Fatal("truncated preamble accepted")
	}
}

// TestTruncatedFramesError slices a valid frame at every possible length:
// each prefix must decode to an error, never a panic and never a bogus
// success.
func TestTruncatedFramesError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomLoop(rng)
	res := engine.Result{Values: []float64{1, 2, 3}, Scheme: "rep", BatchSize: 2}
	sres := engine.Result{Values: []float64{4, 5}, Scheme: "session", SessionGen: 9}
	frames := [][]byte{
		AppendSubmit(nil, 1, l),
		AppendResult(nil, 2, &res),
		AppendHello(nil, Hello{Version: 1, Procs: 4, MaxInflight: 8}),
		AppendError(nil, 3, "boom"),
		AppendBusy(nil, 4, BusyConn),
		AppendStats(nil, 5, &engine.Stats{Schemes: map[string]uint64{"ll": 1}, BatchOccupancy: []uint64{0, 1}}),
		AppendOpenSession(nil, 6, 2, l),
		AppendDelta(nil, 7, 2, []reduction.RefDelta{{Pos: 0, Ref: 1}, {Pos: 5, Ref: 0}}),
		AppendCloseSession(nil, 8, 2),
		AppendResult(nil, 9, &sres),
		AppendStats(nil, 10, &engine.Stats{SessionOpens: 1, SessionJobs: 2, Schemes: map[string]uint64{}, BatchOccupancy: []uint64{0}}),
		AppendHello(nil, Hello{Version: 1, Procs: 4, MaxInflight: 8, Tenant: "acme"}),
		AppendBusy(nil, 11, BusyTenant),
		AppendStats(nil, 12, &engine.Stats{Schemes: map[string]uint64{}, BatchOccupancy: []uint64{0},
			Tenants: []engine.TenantStats{{Name: "acme", Weight: 4, Jobs: 7,
				QueueWait: obs.Snapshot{Count: 1, SumNs: 9, MaxNs: 9, Buckets: []uint64{1}}}}}),
	}
	for fi, full := range frames {
		for n := 0; n < len(full); n++ {
			if _, _, err := DecodeFrame(full[:n], 0); err == nil {
				t.Fatalf("frame %d truncated to %d bytes decoded without error", fi, n)
			}
		}
	}
}

// TestReaderTruncatedStream cuts the byte stream mid-frame and checks the
// Reader surfaces io.ErrUnexpectedEOF rather than hanging or panicking.
func TestReaderTruncatedStream(t *testing.T) {
	full := AppendError(nil, 1, "x")
	for n := 1; n < len(full); n++ {
		r := NewReader(bufio.NewReader(bytes.NewReader(full[:n])), 0)
		if _, err := r.Next(); err == nil {
			t.Fatalf("truncation at %d bytes not reported", n)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	buf := AppendError(nil, 1, "this frame is bigger than the tiny limit")
	if _, _, err := DecodeFrame(buf, 8); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	r := NewReader(bytes.NewReader(buf), 8)
	if _, err := r.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("reader oversized frame: %v", err)
	}
}

func TestDecodeRejectsWrongType(t *testing.T) {
	buf := AppendError(nil, 1, "x")
	f, _, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeResult(nil); !errors.Is(err, ErrType) {
		t.Fatalf("DecodeResult on ERROR frame: %v", err)
	}
	if _, err := f.DecodeSubmit(0); !errors.Is(err, ErrType) {
		t.Fatalf("DecodeSubmit on ERROR frame: %v", err)
	}
}

func TestSubmitRejectsOversizedLoop(t *testing.T) {
	l := trace.NewLoop("big", 4096)
	l.AddIter(4095)
	buf := AppendSubmit(nil, 1, l)
	f, _, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeSubmit(1024); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized loop accepted: %v", err)
	}
}

// randomDeltaBatch draws a strictly-increasing-position batch, the shape
// the delta encoding requires (positions gap-encoded, refs delta-coded).
func randomDeltaBatch(rng *rand.Rand, maxPos, maxRef, n int) []reduction.RefDelta {
	ds := make([]reduction.RefDelta, 0, n)
	pos := -1
	for i := 0; i < n; i++ {
		pos += 1 + rng.Intn(maxPos/n+1)
		if pos >= maxPos {
			break
		}
		ds = append(ds, reduction.RefDelta{Pos: int32(pos), Ref: int32(rng.Intn(maxRef))})
	}
	return ds
}

// TestOpenSessionRoundTrip is the submit property test for OPEN_SESSION:
// the frame is a session id plus the SUBMIT loop body, so every loop the
// submit path accepts must survive this path too.
func TestOpenSessionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		l := randomLoop(rng)
		sid := rng.Uint64() + 1
		buf := AppendOpenSession(nil, uint64(trial)+1, sid, l)
		f, n, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("trial %d: DecodeFrame: %v", trial, err)
		}
		if n != len(buf) || f.Type != FrameOpenSession || f.JobID != uint64(trial)+1 {
			t.Fatalf("trial %d: frame header %v/%d (%d of %d bytes)", trial, f.Type, f.JobID, n, len(buf))
		}
		got := &trace.Loop{}
		gotSID, _, _, err := f.DecodeOpenSessionInto(got, nil, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotSID != sid {
			t.Fatalf("trial %d: session id %d, want %d", trial, gotSID, sid)
		}
		if !l.EqualPattern(got) || got.Name != l.Name {
			t.Fatalf("trial %d: decoded loop differs", trial)
		}
	}
}

// TestDeltaRoundTrip covers the SUBMIT_DELTA encoding: gap-coded
// positions, zigzag-delta refs, empty batches, scratch reuse, and the
// invalid shapes (truncation and count overflow) that must be corrupt.
func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var scratch []reduction.RefDelta
	for trial := 0; trial < 200; trial++ {
		want := randomDeltaBatch(rng, 1+rng.Intn(5000), 1+rng.Intn(2000), rng.Intn(40))
		sid := rng.Uint64()
		buf := AppendDelta(nil, 7, sid, want)
		f, n, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("trial %d: DecodeFrame: %v", trial, err)
		}
		if n != len(buf) || f.Type != FrameDelta {
			t.Fatalf("trial %d: frame header %v (%d of %d bytes)", trial, f.Type, n, len(buf))
		}
		var gotSID uint64
		gotSID, scratch, err = f.DecodeDelta(scratch)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotSID != sid || len(scratch) != len(want) {
			t.Fatalf("trial %d: sid %d count %d, want %d and %d", trial, gotSID, len(scratch), sid, len(want))
		}
		for i := range want {
			if scratch[i] != want[i] {
				t.Fatalf("trial %d delta %d: %+v, want %+v", trial, i, scratch[i], want[i])
			}
		}
	}

	// Truncating anywhere inside the frame is an error, never a panic.
	full := AppendDelta(nil, 7, 3, randomDeltaBatch(rng, 100, 50, 10))
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeFrame(full[:n], 0); err == nil {
			t.Fatalf("delta frame truncated to %d bytes decoded without error", n)
		}
	}
	// A delta count exceeding what the remaining payload could hold is
	// corrupt before any allocation.
	f, _, err := DecodeFrame(countBombDelta(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.DecodeDelta(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized delta count decoded: %v", err)
	}
}

// countBombDelta hand-builds a SUBMIT_DELTA frame claiming far more
// deltas than its payload holds.
func countBombDelta() []byte {
	b := AppendCloseSession(nil, 7, 3) // session id 3, right header shape
	b[4] = byte(FrameDelta)
	b = binary.AppendUvarint(b, 1<<30) // delta count with no bytes behind it
	n := uint32(len(b) - 4)
	b[0], b[1], b[2], b[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	return b
}

// TestCloseSessionRoundTrip pins the CLOSE_SESSION frame and its
// trailing-byte strictness.
func TestCloseSessionRoundTrip(t *testing.T) {
	buf := AppendCloseSession(nil, 11, 42)
	f, n, err := DecodeFrame(buf, 0)
	if err != nil || n != len(buf) || f.Type != FrameCloseSession || f.JobID != 11 {
		t.Fatalf("frame %v/%d (%d bytes), err %v", f.Type, f.JobID, n, err)
	}
	sid, err := f.DecodeCloseSession()
	if err != nil || sid != 42 {
		t.Fatalf("session id %d, err %v", sid, err)
	}
	trailing := append(append([]byte(nil), buf...), 0)
	ln := uint32(len(trailing) - 4)
	trailing[0], trailing[1], trailing[2], trailing[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
	f, _, err = DecodeFrame(trailing, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeCloseSession(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestResultSessionGenCompat pins the RESULT frame's optional trailing
// session generation on the HELLO-flags rule: one-shot results are
// byte-identical to the pre-session encoding and decode with generation
// 0, session results round-trip, and a truncated tail is corrupt.
func TestResultSessionGenCompat(t *testing.T) {
	base := engine.Result{Values: []float64{1, 2}, Scheme: "session", BatchSize: 1}
	legacy := AppendResult(nil, 3, &base)
	gen := base
	gen.SessionGen = 300 // two uvarint bytes
	tailed := AppendResult(nil, 3, &gen)
	if len(tailed) != len(legacy)+2 {
		t.Fatalf("tailed result %d bytes vs legacy %d: generation not trailing", len(tailed), len(legacy))
	}
	f, _, err := DecodeFrame(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.DecodeResult(nil)
	if err != nil || r.SessionGen != 0 {
		t.Fatalf("legacy result decoded generation %d, err %v (want 0)", r.SessionGen, err)
	}
	f, _, err = DecodeFrame(tailed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, err = f.DecodeResult(nil); err != nil || r.SessionGen != 300 {
		t.Fatalf("tailed result decoded generation %d, err %v (want 300)", r.SessionGen, err)
	}
	cut := append([]byte(nil), tailed[:len(tailed)-1]...)
	ln := uint32(len(cut) - 4)
	cut[0], cut[1], cut[2], cut[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
	f, _, err = DecodeFrame(cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeResult(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated generation decoded without error: %v", err)
	}
}

// TestStatsSessionCompat pins the fourth optional STATS tail — the
// session quad after the stage histograms. The compat matrix: legacy,
// pair-only, quad, and hist frames (all earlier-tail shapes) decode with
// the session counters zero; a session frame forces every earlier tail
// out (zero pair, zero quad, zero-stage histogram) and round-trips; all
// tails ride together; truncating inside the session tail is corrupt.
func TestStatsSessionCompat(t *testing.T) {
	base := engine.Stats{Jobs: 5, Schemes: map[string]uint64{"rep": 5}}
	legacy := AppendStats(nil, 9, &base)

	sess := base
	sess.SessionOpens, sess.SessionJobs = 2, 9
	sess.SessionSegsComputed, sess.SessionSegsReused = 30, 80
	tailed := AppendStats(nil, 9, &sess)
	// Forced-out earlier tails: zero pair (2) + zero quad (4) + zero-stage
	// histogram (1), then four single-byte session counters.
	if len(tailed) != len(legacy)+11 {
		t.Fatalf("session frame %d bytes vs legacy %d, want +11", len(tailed), len(legacy))
	}

	decode := func(buf []byte) (engine.Stats, error) {
		f, _, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f.DecodeStats()
	}

	for name, st := range map[string]engine.Stats{
		"legacy": base,
		"pair":   {Jobs: 5, Recalibrations: 7},
		"quad":   {Jobs: 5, SegsReused: 11},
		"hist":   {Jobs: 5, Stages: []obs.StageSummary{{Name: "execute", Snap: obs.Snapshot{Count: 1, SumNs: 5, MaxNs: 5, Buckets: []uint64{1}}}}},
	} {
		s, err := decode(AppendStats(nil, 9, &st))
		if err != nil || s.SessionOpens != 0 || s.SessionJobs != 0 ||
			s.SessionSegsComputed != 0 || s.SessionSegsReused != 0 {
			t.Fatalf("%s frame decoded session quad %d/%d/%d/%d, err %v (want zeros)",
				name, s.SessionOpens, s.SessionJobs, s.SessionSegsComputed, s.SessionSegsReused, err)
		}
	}

	s, err := decode(tailed)
	if err != nil {
		t.Fatal(err)
	}
	if s.SessionOpens != 2 || s.SessionJobs != 9 || s.SessionSegsComputed != 30 || s.SessionSegsReused != 80 {
		t.Fatalf("session round-trip = %d/%d/%d/%d", s.SessionOpens, s.SessionJobs, s.SessionSegsComputed, s.SessionSegsReused)
	}
	if s.Recalibrations != 0 || s.SimplifiedBatches != 0 || len(s.Stages) != 0 {
		t.Fatalf("forced-out earlier tails decoded as %d/%d/%d stages", s.Recalibrations, s.SimplifiedBatches, len(s.Stages))
	}

	full := sess
	full.Recalibrations, full.SegsReused = 7, 11
	full.Stages = []obs.StageSummary{{Name: "execute", Snap: obs.Snapshot{Count: 1, SumNs: 5, MaxNs: 5, Buckets: []uint64{1}}}}
	if s, err = decode(AppendStats(nil, 9, &full)); err != nil ||
		s.Recalibrations != 7 || s.SegsReused != 11 || len(s.Stages) != 1 || s.SessionJobs != 9 {
		t.Fatalf("full-tails frame decoded %d/%d/%d/%d, err %v", s.Recalibrations, s.SegsReused, len(s.Stages), s.SessionJobs, err)
	}

	// Truncating inside the session tail (a partial quad) is corrupt. The
	// tail starts right after the forced-out earlier tails.
	sessStart := len(legacy) + 7
	for n := sessStart + 1; n < len(tailed); n++ {
		cut := append([]byte(nil), tailed[:n]...)
		ln := uint32(len(cut) - 4)
		cut[0], cut[1], cut[2], cut[3] = byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24)
		f, _, err := DecodeFrame(cut, 0)
		if err != nil {
			continue
		}
		if _, err := f.DecodeStats(); err == nil {
			t.Fatalf("session tail truncated to %d bytes decoded without error", n)
		}
	}
}

func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer()
	b.B = AppendStatsReq(b.B, 1)
	if len(b.B) == 0 {
		t.Fatal("empty encoding")
	}
	b.Free()
	c := GetBuffer()
	if len(c.B) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	c.Free()
}
