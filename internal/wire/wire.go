// Package wire defines the binary protocol between reduction clients and
// the reduxd server: a compact, length-prefixed frame stream carrying
// varint-encoded trace.Loop access patterns one way and reduction results
// the other.
//
// A connection opens with a fixed 5-byte preamble (magic "RDXP" plus a
// version byte); the server answers with a HELLO frame. After that both
// directions are a sequence of frames:
//
//	u32le payloadLen | byte frameType | uvarint jobID | body
//
// Job IDs are client-assigned, which is what allows the server to answer
// out of order: many submissions can be in flight on one connection and
// each RESULT/ERROR/BUSY frame names the submission it resolves. Frames
// with jobID 0 are connection-scoped (HELLO, fatal ERROR).
//
// The hot path is allocation-conscious end to end: encoders append into
// pooled buffers (GetBuffer/Free), the Reader reuses one payload buffer
// across frames, loop decoding can reuse caller scratch
// (Frame.DecodeSubmitInto) and result decoding writes into a
// caller-provided destination array. Decoding is defensive: every read is
// bounds-checked, sizes are capped before allocation, and corrupt or
// truncated input returns an error — never a panic (see FuzzDecodeFrame).
package wire

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ProtoVersion is the protocol revision this package speaks. The preamble
// and HELLO carry it; see docs/PROTOCOL.md for the compatibility rules.
const ProtoVersion = 1

// Magic opens every connection ("RDXP" — reduction exchange protocol).
var Magic = [4]byte{'R', 'D', 'X', 'P'}

// Defaults for the decode-side resource caps. Both exist so a corrupt or
// hostile frame cannot make a peer allocate unbounded memory.
const (
	// DefaultMaxFrame caps one frame's payload (64 MiB).
	DefaultMaxFrame = 64 << 20
	// DefaultMaxElems caps a submitted loop's reduction array dimension.
	DefaultMaxElems = 1 << 24
	// maxStringLen caps embedded strings (names, scheme labels, errors).
	maxStringLen = 1 << 16
)

// FrameType discriminates the frame body.
type FrameType byte

const (
	// FrameHello is the server's connection greeting (version, platform
	// procs, per-connection in-flight budget). jobID 0.
	FrameHello FrameType = 1
	// FrameSubmit carries one reduction job: a full trace.Loop.
	FrameSubmit FrameType = 2
	// FrameResult resolves a submission with its reduction array and
	// execution metadata.
	FrameResult FrameType = 3
	// FrameError resolves a submission with a failure (jobID != 0) or
	// reports a fatal connection error before close (jobID 0).
	FrameError FrameType = 4
	// FrameBusy rejects a submission under admission control; the client
	// should back off and resubmit.
	FrameBusy FrameType = 5
	// FrameStatsReq asks the server for an engine statistics snapshot.
	FrameStatsReq FrameType = 6
	// FrameStats answers a FrameStatsReq.
	FrameStats FrameType = 7
	// FrameOpenSession registers a server-resident streaming session: a
	// session id plus a full trace.Loop the server keeps between updates.
	// The server answers with a RESULT carrying the initial reduction and
	// the session-generation tail.
	FrameOpenSession FrameType = 8
	// FrameDelta streams one batch of reference updates into an open
	// session and reads back the rolling reduction.
	FrameDelta FrameType = 9
	// FrameCloseSession retires a session, freeing its server-resident
	// state. The server answers with an empty RESULT so the client can
	// await teardown.
	FrameCloseSession FrameType = 10
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameSubmit:
		return "SUBMIT"
	case FrameResult:
		return "RESULT"
	case FrameError:
		return "ERROR"
	case FrameBusy:
		return "BUSY"
	case FrameStatsReq:
		return "STATSREQ"
	case FrameStats:
		return "STATS"
	case FrameOpenSession:
		return "OPEN_SESSION"
	case FrameDelta:
		return "SUBMIT_DELTA"
	case FrameCloseSession:
		return "CLOSE_SESSION"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// BusyCode says which admission-control limit rejected a submission.
type BusyCode uint8

const (
	// BusyConn means the connection's in-flight budget is exhausted.
	BusyConn BusyCode = 1
	// BusyGlobal means the server-wide in-flight budget is exhausted.
	BusyGlobal BusyCode = 2
	// BusyUpstream means a gateway exhausted its bounded retry budget
	// because every healthy backend answered BUSY (or none was healthy):
	// backpressure propagated from the backend tier to the client.
	BusyUpstream BusyCode = 3
	// BusySession means the server's session budget (count or resident
	// bytes) is exhausted and no idle session could be evicted; the client
	// should back off and retry OPEN_SESSION.
	BusySession BusyCode = 4
	// BusyTenant means the submitting tenant's quota rejected the job —
	// its in-flight budget is exhausted or its token bucket is empty —
	// while the connection and the server as a whole still have room. The
	// client should back off and resubmit; other tenants are unaffected.
	BusyTenant BusyCode = 5
)

// String names the rejection code for diagnostics.
func (c BusyCode) String() string {
	switch c {
	case BusyConn:
		return "connection limit"
	case BusyGlobal:
		return "global limit"
	case BusyUpstream:
		return "backend tier busy"
	case BusySession:
		return "session budget exhausted"
	case BusyTenant:
		return "tenant quota"
	default:
		return fmt.Sprintf("BusyCode(%d)", uint8(c))
	}
}

// HELLO capability bits (Hello.Flags). Flags is an optional trailing
// field: peers that predate it decode the shorter frame and see zero.
const (
	// HelloFlagGateway marks the peer as a reduxgw gateway rather than a
	// reduxd daemon: submissions are routed onward by pattern fingerprint
	// and STATS answers are aggregates over the backend tier.
	HelloFlagGateway uint64 = 1 << 0
)

// Hello is the decoded HELLO frame.
type Hello struct {
	// Version is the protocol revision the server speaks.
	Version int
	// Procs is the serving engine's per-job goroutine fan-out (for a
	// gateway: the largest fan-out across its healthy backends).
	Procs int
	// MaxInflight is the per-connection in-flight job budget; submissions
	// beyond it draw BUSY frames.
	MaxInflight int
	// Flags carries capability bits (HelloFlag*). Zero when the peer
	// predates the field — it is an optional trailing extension.
	Flags uint64
	// Tenant is the tenant identity the peer claims, an optional trailing
	// field after Flags. Empty means the default tenant (what legacy
	// peers, which never send it, decode to). Clients send it in their
	// own HELLO frame right after the preamble to scope the connection's
	// submissions to a tenant; unknown names degrade to the default
	// tenant rather than erroring, so config skew cannot reject traffic.
	Tenant string
}

// SessionGonePrefix opens every ERROR message answering a SUBMIT_DELTA
// or CLOSE_SESSION whose session is unknown, expired or evicted. The
// prefix is part of the protocol: clients match it to map the failure to
// a typed session-gone error (and re-open) rather than treating it as a
// generic job failure. An evicted session always answers this — never a
// stale sum.
const SessionGonePrefix = "session gone: "

// Sentinel decode errors. Detail errors wrap one of these, so callers can
// classify with errors.Is.
var (
	// ErrCorrupt marks a structurally invalid frame or body.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrFrameTooLarge marks a frame whose declared payload exceeds the
	// reader's cap.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadMagic marks a connection preamble that is not RDXP.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion marks an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrType marks a frame decoded as the wrong type.
	ErrType = errors.New("wire: wrong frame type")
)

// Frame is one parsed frame. Body aliases the buffer it was parsed from
// and is only valid until that buffer is reused (the next Reader.Next call
// or Buffer.Free).
type Frame struct {
	// Type discriminates the body's grammar.
	Type FrameType
	// JobID names the submission this frame belongs to (0 for
	// connection-scoped frames).
	JobID uint64
	// Body is the type-specific payload, decoded by the Decode* methods.
	Body []byte
}

// Buffer is a pooled byte buffer for frame encoding. Get one, append
// frames to B with the Append* encoders, write B, then Free it.
type Buffer struct {
	// B is the accumulated frame bytes, ready to write to the peer.
	B []byte
}

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Free returns the buffer to the pool. Oversized buffers are dropped so a
// single huge frame does not pin memory forever.
func (b *Buffer) Free() {
	if cap(b.B) <= 4<<20 {
		bufPool.Put(b)
	}
}

// WritePreamble sends the connection opener: magic plus version byte.
func WritePreamble(w io.Writer) error {
	p := [5]byte{Magic[0], Magic[1], Magic[2], Magic[3], ProtoVersion}
	_, err := w.Write(p[:])
	return err
}

// ReadPreamble consumes and validates the connection opener, returning the
// peer's version. The version must be exactly ProtoVersion for now;
// future revisions may negotiate down via HELLO.
func ReadPreamble(r io.Reader) (int, error) {
	var p [5]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return 0, err
	}
	if p[0] != Magic[0] || p[1] != Magic[1] || p[2] != Magic[2] || p[3] != Magic[3] {
		return 0, ErrBadMagic
	}
	v := int(p[4])
	if v != ProtoVersion {
		return v, fmt.Errorf("%w: %d (want %d)", ErrVersion, v, ProtoVersion)
	}
	return v, nil
}

// Reader decodes a frame stream from r, reusing one payload buffer across
// frames. It performs unbuffered reads; wrap r in a bufio.Reader for
// socket use.
type Reader struct {
	r        io.Reader
	buf      []byte
	maxFrame int
}

// NewReader returns a Reader capping payloads at maxFrame bytes
// (DefaultMaxFrame when 0).
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{r: r, maxFrame: maxFrame}
}

// Next reads and parses one frame. The returned frame's Body aliases the
// reader's internal buffer and is invalidated by the next call. io.EOF at
// a frame boundary is returned as io.EOF; a connection cut mid-frame is
// io.ErrUnexpectedEOF.
func (fr *Reader) Next() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	// Compare in uint64 before narrowing: on 32-bit platforms a length
	// >= 2^31 would otherwise convert to a negative int, dodge the cap
	// check, and panic in the reslice below.
	n64 := uint64(hdr[0]) | uint64(hdr[1])<<8 | uint64(hdr[2])<<16 | uint64(hdr[3])<<24
	if n64 > uint64(fr.maxFrame) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n64, fr.maxFrame)
	}
	n := int(n64)
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return ParseFrame(fr.buf)
}

// ParseFrame parses one frame payload (everything after the length
// prefix). The frame's Body aliases payload.
func ParseFrame(payload []byte) (Frame, error) {
	c := cur{b: payload}
	t, err := c.u8()
	if err != nil {
		return Frame{}, fmt.Errorf("%w: missing frame type", ErrCorrupt)
	}
	if t < byte(FrameHello) || t > byte(FrameCloseSession) {
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, t)
	}
	id, err := c.uvarint()
	if err != nil {
		return Frame{}, fmt.Errorf("%w: bad job id", ErrCorrupt)
	}
	return Frame{Type: FrameType(t), JobID: id, Body: c.b}, nil
}

// DecodeFrame parses one length-prefixed frame from b, returning the frame
// and the total bytes consumed. It is the entry point the fuzz harness
// drives: arbitrary input must yield an error, never a panic.
func DecodeFrame(b []byte, maxFrame int) (Frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(b) < 4 {
		return Frame{}, 0, fmt.Errorf("%w: short length prefix", ErrCorrupt)
	}
	// uint64 comparison before narrowing, as in Reader.Next: a 2^31+
	// length must hit the cap, not wrap negative on 32-bit platforms.
	n64 := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	if n64 > uint64(maxFrame) {
		return Frame{}, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n64, maxFrame)
	}
	n := int(n64)
	if len(b)-4 < n {
		return Frame{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrCorrupt, len(b)-4, n)
	}
	f, err := ParseFrame(b[4 : 4+n])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, 4 + n, nil
}
