package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// cur is a bounds-checked read cursor over a frame body. Every accessor
// returns an error instead of panicking on truncated input.
type cur struct{ b []byte }

func (c *cur) remaining() int { return len(c.b) }

func (c *cur) u8() (byte, error) {
	if len(c.b) < 1 {
		return 0, fmt.Errorf("%w: truncated byte", ErrCorrupt)
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v, nil
}

func (c *cur) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cur) varint() (int64, error) {
	v, n := binary.Varint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cur) f64() (float64, error) {
	if len(c.b) < 8 {
		return 0, fmt.Errorf("%w: truncated float64", ErrCorrupt)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v, nil
}

// intField reads a uvarint that must fit a non-negative int bounded by
// max (what counts and dimensions use, keeping 32-bit overflow and
// hostile sizes out of the callers).
func (c *cur) intField(name string, max int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, name)
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("%w: %s %d exceeds limit %d", ErrCorrupt, name, v, max)
	}
	return int(v), nil
}

func (c *cur) str(limit int) (string, error) {
	n, err := c.intField("string length", limit)
	if err != nil {
		return "", err
	}
	if len(c.b) < n {
		return "", fmt.Errorf("%w: truncated string (%d of %d bytes)", ErrCorrupt, len(c.b), n)
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s, nil
}

func (f Frame) expect(t FrameType) error {
	if f.Type != t {
		return fmt.Errorf("%w: got %v, want %v", ErrType, f.Type, t)
	}
	return nil
}

// DecodeHello decodes a HELLO frame.
func (f Frame) DecodeHello() (Hello, error) {
	if err := f.expect(FrameHello); err != nil {
		return Hello{}, err
	}
	c := cur{b: f.Body}
	var h Hello
	var err error
	if h.Version, err = c.intField("version", math.MaxUint8); err != nil {
		return Hello{}, err
	}
	if h.Procs, err = c.intField("procs", 1<<20); err != nil {
		return Hello{}, err
	}
	if h.MaxInflight, err = c.intField("max inflight", math.MaxInt32); err != nil {
		return Hello{}, err
	}
	// Flags is an optional trailing field: a peer that predates it sends
	// the shorter frame, which decodes with Flags == 0.
	if c.remaining() > 0 {
		if h.Flags, err = c.uvarint(); err != nil {
			return Hello{}, fmt.Errorf("%w: hello flags", ErrCorrupt)
		}
	}
	// Tenant extends the tail after Flags, same evolution rule: absent
	// from peers that predate it (or that claim no tenant), which decodes
	// to the empty string — the default tenant.
	if c.remaining() > 0 {
		if h.Tenant, err = c.str(maxStringLen); err != nil {
			return Hello{}, err
		}
	}
	return h, nil
}

// DecodeSubmit decodes a SUBMIT frame into a freshly allocated loop,
// rejecting loops wider than maxElems elements (DefaultMaxElems when 0).
func (f Frame) DecodeSubmit(maxElems int) (*trace.Loop, error) {
	l := &trace.Loop{}
	if _, _, _, err := f.DecodeSubmitInto(l, nil, nil, maxElems); err != nil {
		return nil, err
	}
	return l, nil
}

// DecodeSubmitInto decodes a SUBMIT frame into l, building the iteration
// structure in the provided scratch slices (grown as needed and returned,
// so a connection loop can reuse them frame after frame; l takes
// ownership until the next decode). maxElems caps the loop's reduction
// array dimension; 0 means DefaultMaxElems. The third return is the
// frame's optional trailing trace ID (0 when the submitter sent none).
func (f Frame) DecodeSubmitInto(l *trace.Loop, offsets, refs []int32, maxElems int) ([]int32, []int32, uint64, error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxElems
	}
	if err := f.expect(FrameSubmit); err != nil {
		return offsets, refs, 0, err
	}
	c := cur{b: f.Body}
	offsets, refs, err := decodeLoopBody(&c, l, offsets, refs, maxElems)
	if err != nil {
		return offsets, refs, 0, err
	}
	// Optional trailing trace ID (HELLO-flags evolution rule): absent from
	// peers that predate it, decoded as 0.
	var traceID uint64
	if c.remaining() > 0 {
		if traceID, err = c.uvarint(); err != nil {
			return offsets, refs, 0, fmt.Errorf("%w: trace id", ErrCorrupt)
		}
	}
	if c.remaining() != 0 {
		return offsets, refs, 0, fmt.Errorf("%w: %d trailing bytes after submit body", ErrCorrupt, c.remaining())
	}
	return offsets, refs, traceID, nil
}

// decodeLoopBody decodes the loop grammar shared by SUBMIT and
// OPEN_SESSION bodies into l, leaving the cursor on whatever trailing
// fields follow. It carries all of DecodeSubmitInto's defenses: counts
// bounded by the remaining payload, iteration lengths reconciled against
// NumRefs, every reference bounds-checked.
func decodeLoopBody(c *cur, l *trace.Loop, offsets, refs []int32, maxElems int) ([]int32, []int32, error) {
	name, err := c.str(maxStringLen)
	if err != nil {
		return offsets, refs, err
	}
	numElems, err := c.intField("NumElems", maxElems)
	if err != nil {
		return offsets, refs, err
	}
	if numElems == 0 {
		return offsets, refs, fmt.Errorf("%w: zero NumElems", ErrCorrupt)
	}
	elemBytes, err := c.intField("ElemBytes", 1<<16)
	if err != nil {
		return offsets, refs, err
	}
	op, err := c.intField("Op", int(trace.OpMin))
	if err != nil {
		return offsets, refs, err
	}
	work, err := c.f64()
	if err != nil {
		return offsets, refs, err
	}
	dataRefs, err := c.f64()
	if err != nil {
		return offsets, refs, err
	}
	invocations, err := c.intField("Invocations", math.MaxInt32)
	if err != nil {
		return offsets, refs, err
	}
	// Each iteration length and each reference delta occupies at least one
	// encoded byte, so the remaining payload bounds both counts — a frame
	// cannot make the decoder allocate more than it shipped.
	numIters, err := c.intField("NumIters", c.remaining())
	if err != nil {
		return offsets, refs, err
	}
	numRefs, err := c.intField("NumRefs", c.remaining())
	if err != nil {
		return offsets, refs, err
	}

	if cap(offsets) < numIters+1 {
		offsets = make([]int32, 0, numIters+1)
	}
	offsets = offsets[:0]
	offsets = append(offsets, 0)
	total := 0
	for i := 0; i < numIters; i++ {
		n, err := c.intField("iteration length", numRefs)
		if err != nil {
			return offsets, refs, err
		}
		total += n
		if total > numRefs {
			return offsets, refs, fmt.Errorf("%w: iteration lengths exceed NumRefs %d", ErrCorrupt, numRefs)
		}
		offsets = append(offsets, int32(total))
	}
	if total != numRefs {
		return offsets, refs, fmt.Errorf("%w: iteration lengths sum to %d, want NumRefs %d", ErrCorrupt, total, numRefs)
	}

	if cap(refs) < numRefs {
		refs = make([]int32, 0, numRefs)
	}
	refs = refs[:0]
	prev := int64(0)
	for i := 0; i < numRefs; i++ {
		d, err := c.varint()
		if err != nil {
			return offsets, refs, err
		}
		prev += d
		if prev < 0 || prev >= int64(numElems) {
			return offsets, refs, fmt.Errorf("%w: ref %d out of range [0,%d)", ErrCorrupt, prev, numElems)
		}
		refs = append(refs, int32(prev))
	}

	l.Name = name
	l.NumElems = numElems
	l.ElemBytes = elemBytes
	l.Op = trace.Op(op)
	l.WorkPerIter = work
	l.DataRefsPerIter = dataRefs
	l.Invocations = invocations
	// The loops above already established every Validate invariant
	// (offsets start at 0, grow monotonically to numRefs; refs bounded by
	// numElems), so install without a second O(refs) walk.
	l.SetFlatUnchecked(offsets, refs)
	return offsets, refs, nil
}

// DecodeOpenSessionInto decodes an OPEN_SESSION frame: the
// client-assigned session id, then the loop in the SUBMIT grammar
// (decoded into l with the same scratch-reuse contract as
// DecodeSubmitInto). The caller must clone l before keeping it — the
// session mutates its loop, so it can never share an interned copy.
func (f Frame) DecodeOpenSessionInto(l *trace.Loop, offsets, refs []int32, maxElems int) (uint64, []int32, []int32, error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxElems
	}
	if err := f.expect(FrameOpenSession); err != nil {
		return 0, offsets, refs, err
	}
	c := cur{b: f.Body}
	sid, err := c.uvarint()
	if err != nil {
		return 0, offsets, refs, fmt.Errorf("%w: session id", ErrCorrupt)
	}
	offsets, refs, err = decodeLoopBody(&c, l, offsets, refs, maxElems)
	if err != nil {
		return 0, offsets, refs, err
	}
	if c.remaining() != 0 {
		return 0, offsets, refs, fmt.Errorf("%w: %d trailing bytes after open-session body", ErrCorrupt, c.remaining())
	}
	return sid, offsets, refs, nil
}

// DecodeDelta decodes a SUBMIT_DELTA frame into the provided scratch
// slice (grown as needed and returned). Positions decode strictly
// increasing by construction of the gap encoding; references are checked
// to fit the wire's int32 range here and validated against the session
// loop's bounds where the delta is applied. The update count is bounded
// by the remaining payload (every update costs at least two bytes).
func (f Frame) DecodeDelta(deltas []reduction.RefDelta) (uint64, []reduction.RefDelta, error) {
	if err := f.expect(FrameDelta); err != nil {
		return 0, deltas, err
	}
	c := cur{b: f.Body}
	sid, err := c.uvarint()
	if err != nil {
		return 0, deltas, fmt.Errorf("%w: session id", ErrCorrupt)
	}
	count, err := c.intField("delta count", c.remaining()/2)
	if err != nil {
		return 0, deltas, err
	}
	if cap(deltas) < count {
		deltas = make([]reduction.RefDelta, 0, count)
	}
	deltas = deltas[:0]
	pos := int64(-1)
	ref := int64(0)
	for i := 0; i < count; i++ {
		gap, err := c.uvarint()
		if err != nil {
			return 0, deltas, fmt.Errorf("%w: delta position", ErrCorrupt)
		}
		if gap > math.MaxInt32 {
			return 0, deltas, fmt.Errorf("%w: delta position gap overflow", ErrCorrupt)
		}
		pos += int64(gap) + 1
		if pos > math.MaxInt32 {
			return 0, deltas, fmt.Errorf("%w: delta position overflow", ErrCorrupt)
		}
		d, err := c.varint()
		if err != nil {
			return 0, deltas, fmt.Errorf("%w: delta ref", ErrCorrupt)
		}
		ref += d
		if ref < 0 || ref > math.MaxInt32 {
			return 0, deltas, fmt.Errorf("%w: delta ref %d out of range", ErrCorrupt, ref)
		}
		deltas = append(deltas, reduction.RefDelta{Pos: int32(pos), Ref: int32(ref)})
	}
	if c.remaining() != 0 {
		return 0, deltas, fmt.Errorf("%w: %d trailing bytes after delta body", ErrCorrupt, c.remaining())
	}
	return sid, deltas, nil
}

// DecodeCloseSession decodes a CLOSE_SESSION frame's session id.
func (f Frame) DecodeCloseSession() (uint64, error) {
	if err := f.expect(FrameCloseSession); err != nil {
		return 0, err
	}
	c := cur{b: f.Body}
	sid, err := c.uvarint()
	if err != nil {
		return 0, fmt.Errorf("%w: session id", ErrCorrupt)
	}
	if c.remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after close-session body", ErrCorrupt, c.remaining())
	}
	return sid, nil
}

// DecodeResult decodes a RESULT frame. The reduction array is written
// into dst when it has the capacity (mirroring engine.SubmitInto), else a
// fresh array is allocated.
func (f Frame) DecodeResult(dst []float64) (engine.Result, error) {
	if err := f.expect(FrameResult); err != nil {
		return engine.Result{}, err
	}
	c := cur{b: f.Body}
	var r engine.Result
	flags, err := c.u8()
	if err != nil {
		return engine.Result{}, err
	}
	r.CacheHit = flags&1 != 0
	if r.BatchSize, err = c.intField("batch size", math.MaxInt32); err != nil {
		return engine.Result{}, err
	}
	ns, err := c.uvarint()
	if err != nil {
		return engine.Result{}, fmt.Errorf("%w: elapsed", ErrCorrupt)
	}
	r.Elapsed = elapsedFromWire(ns)
	if r.Imbalance, err = c.f64(); err != nil {
		return engine.Result{}, err
	}
	if r.Scheme, err = c.str(maxStringLen); err != nil {
		return engine.Result{}, err
	}
	if r.Why, err = c.str(maxStringLen); err != nil {
		return engine.Result{}, err
	}
	n, err := c.intField("value count", c.remaining()/8)
	if err != nil {
		return engine.Result{}, err
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if dst[i], err = c.f64(); err != nil {
			return engine.Result{}, err
		}
	}
	// Optional trailing session generation (HELLO-flags evolution rule):
	// session results carry it, one-shot results and older peers omit it.
	if c.remaining() > 0 {
		if r.SessionGen, err = c.uvarint(); err != nil {
			return engine.Result{}, fmt.Errorf("%w: session generation", ErrCorrupt)
		}
	}
	if c.remaining() != 0 {
		return engine.Result{}, fmt.Errorf("%w: %d trailing bytes after result body", ErrCorrupt, c.remaining())
	}
	r.Values = dst
	return r, nil
}

// DecodeError decodes an ERROR frame's message.
func (f Frame) DecodeError() (string, error) {
	if err := f.expect(FrameError); err != nil {
		return "", err
	}
	c := cur{b: f.Body}
	return c.str(maxStringLen)
}

// DecodeBusy decodes a BUSY frame's rejection code.
func (f Frame) DecodeBusy() (BusyCode, error) {
	if err := f.expect(FrameBusy); err != nil {
		return 0, err
	}
	c := cur{b: f.Body}
	code, err := c.u8()
	if err != nil {
		return 0, err
	}
	if code < byte(BusyConn) || code > byte(BusyTenant) {
		return 0, fmt.Errorf("%w: unknown busy code %d", ErrCorrupt, code)
	}
	return BusyCode(code), nil
}

// DecodeStats decodes a STATS frame into an engine statistics snapshot.
func (f Frame) DecodeStats() (engine.Stats, error) {
	if err := f.expect(FrameStats); err != nil {
		return engine.Stats{}, err
	}
	c := cur{b: f.Body}
	var s engine.Stats
	var err error
	fields := []*uint64{&s.Jobs, &s.CacheHits, &s.CacheMisses, &s.Batches, &s.Coalesced}
	for _, p := range fields {
		if *p, err = c.uvarint(); err != nil {
			return engine.Stats{}, fmt.Errorf("%w: stats counter", ErrCorrupt)
		}
	}
	if s.CacheEntries, err = c.intField("cache entries", math.MaxInt32); err != nil {
		return engine.Stats{}, err
	}
	if s.CacheEvictions, err = c.uvarint(); err != nil {
		return engine.Stats{}, fmt.Errorf("%w: evictions", ErrCorrupt)
	}
	occ, err := c.intField("occupancy buckets", c.remaining())
	if err != nil {
		return engine.Stats{}, err
	}
	s.BatchOccupancy = make([]uint64, occ)
	for i := range s.BatchOccupancy {
		if s.BatchOccupancy[i], err = c.uvarint(); err != nil {
			return engine.Stats{}, fmt.Errorf("%w: occupancy bucket", ErrCorrupt)
		}
	}
	schemes, err := c.intField("scheme count", c.remaining())
	if err != nil {
		return engine.Stats{}, err
	}
	s.Schemes = make(map[string]uint64, schemes)
	for i := 0; i < schemes; i++ {
		name, err := c.str(maxStringLen)
		if err != nil {
			return engine.Stats{}, err
		}
		if s.Schemes[name], err = c.uvarint(); err != nil {
			return engine.Stats{}, fmt.Errorf("%w: scheme count", ErrCorrupt)
		}
	}
	// Optional trailing recalibration pair: a peer that predates it sends
	// the shorter frame, which decodes with both counters zero. When the
	// tail is present it must be the complete pair.
	if c.remaining() > 0 {
		if s.Recalibrations, err = c.uvarint(); err != nil {
			return engine.Stats{}, fmt.Errorf("%w: recalibrations", ErrCorrupt)
		}
		if s.SchemeSwitches, err = c.uvarint(); err != nil {
			return engine.Stats{}, fmt.Errorf("%w: scheme switches", ErrCorrupt)
		}
	}
	// Optional simplification quad after the pair, same evolution rule:
	// absent from older peers, complete when present.
	if c.remaining() > 0 {
		simp := []*uint64{&s.SimplifiedBatches, &s.SimplifyFallbacks, &s.SegsComputed, &s.SegsReused}
		for _, p := range simp {
			if *p, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: simplification counter", ErrCorrupt)
			}
		}
	}
	// Optional stage-latency histogram tail, third in the positional
	// chain: stage count, then per stage a name and histogram snapshot.
	if c.remaining() > 0 {
		nstages, err := c.intField("stage count", c.remaining())
		if err != nil {
			return engine.Stats{}, err
		}
		s.Stages = make([]obs.StageSummary, 0, nstages)
		for i := 0; i < nstages; i++ {
			var st obs.StageSummary
			if st.Name, err = c.str(maxStringLen); err != nil {
				return engine.Stats{}, err
			}
			if st.Snap.Count, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: stage observation count", ErrCorrupt)
			}
			if st.Snap.SumNs, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: stage sum", ErrCorrupt)
			}
			if st.Snap.MaxNs, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: stage max", ErrCorrupt)
			}
			nbuckets, err := c.intField("stage bucket count", c.remaining())
			if err != nil {
				return engine.Stats{}, err
			}
			if nbuckets > 0 {
				st.Snap.Buckets = make([]uint64, nbuckets)
				for b := range st.Snap.Buckets {
					if st.Snap.Buckets[b], err = c.uvarint(); err != nil {
						return engine.Stats{}, fmt.Errorf("%w: stage bucket", ErrCorrupt)
					}
				}
			}
			s.Stages = append(s.Stages, st)
		}
	}
	// Optional streaming-session quad, fourth in the positional chain.
	if c.remaining() > 0 {
		sess := []*uint64{&s.SessionOpens, &s.SessionJobs, &s.SessionSegsComputed, &s.SessionSegsReused}
		for _, p := range sess {
			if *p, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: session counter", ErrCorrupt)
			}
		}
	}
	// Optional per-tenant tail, fifth in the positional chain: a tenant
	// count, then per tenant a name, weight, five counters and a
	// queue-wait histogram snapshot.
	if c.remaining() > 0 {
		ntenants, err := c.intField("tenant count", c.remaining())
		if err != nil {
			return engine.Stats{}, err
		}
		s.Tenants = make([]engine.TenantStats, 0, ntenants)
		for i := 0; i < ntenants; i++ {
			var t engine.TenantStats
			if t.Name, err = c.str(maxStringLen); err != nil {
				return engine.Stats{}, err
			}
			if t.Weight, err = c.intField("tenant weight", math.MaxInt32); err != nil {
				return engine.Stats{}, err
			}
			counters := []*uint64{&t.Jobs, &t.Batches, &t.Busy, &t.Recalibrations, &t.SchemeSwitches}
			for _, p := range counters {
				if *p, err = c.uvarint(); err != nil {
					return engine.Stats{}, fmt.Errorf("%w: tenant counter", ErrCorrupt)
				}
			}
			if t.QueueWait.Count, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: tenant queue-wait count", ErrCorrupt)
			}
			if t.QueueWait.SumNs, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: tenant queue-wait sum", ErrCorrupt)
			}
			if t.QueueWait.MaxNs, err = c.uvarint(); err != nil {
				return engine.Stats{}, fmt.Errorf("%w: tenant queue-wait max", ErrCorrupt)
			}
			nbuckets, err := c.intField("tenant bucket count", c.remaining())
			if err != nil {
				return engine.Stats{}, err
			}
			if nbuckets > 0 {
				t.QueueWait.Buckets = make([]uint64, nbuckets)
				for b := range t.QueueWait.Buckets {
					if t.QueueWait.Buckets[b], err = c.uvarint(); err != nil {
						return engine.Stats{}, fmt.Errorf("%w: tenant bucket", ErrCorrupt)
					}
				}
			}
			s.Tenants = append(s.Tenants, t)
		}
	}
	if c.remaining() != 0 {
		return engine.Stats{}, fmt.Errorf("%w: %d trailing bytes after stats body", ErrCorrupt, c.remaining())
	}
	return s, nil
}
