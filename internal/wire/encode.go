package wire

import (
	"encoding/binary"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// The encoders append one complete frame — length prefix included — to
// dst and return the extended slice, so a caller can pack several frames
// into one pooled buffer and issue a single write.

// beginFrame appends the length placeholder, type and job id, returning
// the offset of the placeholder for endFrame to patch.
func beginFrame(dst []byte, t FrameType, jobID uint64) ([]byte, int) {
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(t))
	dst = binary.AppendUvarint(dst, jobID)
	return dst, lenPos
}

// endFrame patches the length prefix once the body is in place.
func endFrame(dst []byte, lenPos int) []byte {
	n := uint32(len(dst) - lenPos - 4)
	dst[lenPos] = byte(n)
	dst[lenPos+1] = byte(n >> 8)
	dst[lenPos+2] = byte(n >> 16)
	dst[lenPos+3] = byte(n >> 24)
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendHello encodes a HELLO greeting (the server's, or a tenant-scoped
// client's). The flags field is emitted only when non-zero, exercising
// the optional-trailing-field evolution rule both decoders must follow
// (docs/PROTOCOL.md "Versioning"); the tenant field extends the tail the
// same way, and since optional tails decode positionally, emitting the
// tenant forces the flags out too (a zero is fine — only the frame
// length carries meaning).
func AppendHello(dst []byte, h Hello) []byte {
	scoped := h.Tenant != ""
	if len(h.Tenant) > maxStringLen {
		h.Tenant = h.Tenant[:maxStringLen]
	}
	dst, p := beginFrame(dst, FrameHello, 0)
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	dst = binary.AppendUvarint(dst, uint64(h.Procs))
	dst = binary.AppendUvarint(dst, uint64(h.MaxInflight))
	if h.Flags != 0 || scoped {
		dst = binary.AppendUvarint(dst, h.Flags)
	}
	if scoped {
		dst = appendString(dst, h.Tenant)
	}
	return endFrame(dst, p)
}

// AppendSubmit encodes one reduction job: the loop's metadata, then the
// per-iteration reference counts, then the subscript stream as
// zigzag-varint deltas — irregular but locality-bearing subscript streams
// (the paper's Table 2 loops) compress to one or two bytes per reference.
func AppendSubmit(dst []byte, jobID uint64, l *trace.Loop) []byte {
	return AppendSubmitTraced(dst, jobID, l, 0)
}

// AppendSubmitTraced is AppendSubmit with an end-to-end trace ID carried
// as an optional trailing field (the HELLO-flags evolution rule: emitted
// only when non-zero, decoded as zero by peers that predate it). The
// gateway uses it to forward a job's trace ID to the owning backend so
// one slow job's timeline can be stitched across tiers.
func AppendSubmitTraced(dst []byte, jobID uint64, l *trace.Loop, traceID uint64) []byte {
	dst, p := beginFrame(dst, FrameSubmit, jobID)
	dst = appendLoopBody(dst, l)
	if traceID != 0 {
		dst = binary.AppendUvarint(dst, traceID)
	}
	return endFrame(dst, p)
}

// appendLoopBody encodes one trace.Loop — the SUBMIT grammar, shared
// verbatim by OPEN_SESSION so a session registration is a submission
// plus a session id.
func appendLoopBody(dst []byte, l *trace.Loop) []byte {
	dst = appendString(dst, l.Name)
	dst = binary.AppendUvarint(dst, uint64(l.NumElems))
	dst = binary.AppendUvarint(dst, uint64(l.ElemBytes))
	dst = binary.AppendUvarint(dst, uint64(l.Op))
	dst = appendF64(dst, l.WorkPerIter)
	dst = appendF64(dst, l.DataRefsPerIter)
	dst = binary.AppendUvarint(dst, uint64(l.InvocationCount()))
	offsets, refs := l.Flat()
	dst = binary.AppendUvarint(dst, uint64(len(offsets)-1))
	dst = binary.AppendUvarint(dst, uint64(len(refs)))
	for i := 1; i < len(offsets); i++ {
		dst = binary.AppendUvarint(dst, uint64(offsets[i]-offsets[i-1]))
	}
	prev := int64(0)
	for _, r := range refs {
		dst = binary.AppendVarint(dst, int64(r)-prev)
		prev = int64(r)
	}
	return dst
}

// AppendOpenSession encodes a session registration: the client-assigned
// session id, then the loop in the SUBMIT body grammar. The server keeps
// the loop resident; subsequent SUBMIT_DELTA frames update it in place.
func AppendOpenSession(dst []byte, jobID, sessionID uint64, l *trace.Loop) []byte {
	dst, p := beginFrame(dst, FrameOpenSession, jobID)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = appendLoopBody(dst, l)
	return endFrame(dst, p)
}

// AppendDelta encodes one delta batch into an open session: the session
// id, the update count, then per update a position gap (positions are
// strictly increasing, so pos-prev-1 is a uvarint; the first gap is the
// absolute position) and the new reference as a zigzag-varint delta from
// the previous update's reference — the same two compression tricks the
// SUBMIT body uses. An empty batch (count 0) is legal and reads the
// session's current rolling result.
func AppendDelta(dst []byte, jobID, sessionID uint64, deltas []reduction.RefDelta) []byte {
	dst, p := beginFrame(dst, FrameDelta, jobID)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, uint64(len(deltas)))
	prevPos := int64(-1)
	prevRef := int64(0)
	for _, d := range deltas {
		dst = binary.AppendUvarint(dst, uint64(int64(d.Pos)-prevPos-1))
		dst = binary.AppendVarint(dst, int64(d.Ref)-prevRef)
		prevPos = int64(d.Pos)
		prevRef = int64(d.Ref)
	}
	return endFrame(dst, p)
}

// AppendCloseSession encodes a session teardown request.
func AppendCloseSession(dst []byte, jobID, sessionID uint64) []byte {
	dst, p := beginFrame(dst, FrameCloseSession, jobID)
	dst = binary.AppendUvarint(dst, sessionID)
	return endFrame(dst, p)
}

// AppendResult encodes a completed job: execution metadata, then the
// reduction array as raw little-endian float64s. Scheme and Why are
// truncated to the decoder's string cap so the encoder can never emit a
// frame its own peer rejects.
func AppendResult(dst []byte, jobID uint64, r *engine.Result) []byte {
	scheme, why := r.Scheme, r.Why
	if len(scheme) > maxStringLen {
		scheme = scheme[:maxStringLen]
	}
	if len(why) > maxStringLen {
		why = why[:maxStringLen]
	}
	dst, p := beginFrame(dst, FrameResult, jobID)
	var flags byte
	if r.CacheHit {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(r.BatchSize))
	elapsed := r.Elapsed
	if elapsed < 0 {
		elapsed = 0
	}
	dst = binary.AppendUvarint(dst, uint64(elapsed))
	dst = appendF64(dst, r.Imbalance)
	dst = appendString(dst, scheme)
	dst = appendString(dst, why)
	dst = binary.AppendUvarint(dst, uint64(len(r.Values)))
	for _, v := range r.Values {
		dst = appendF64(dst, v)
	}
	// The session generation is an optional trailing field under the
	// HELLO-flags evolution rule: session results carry it (generations
	// start at 1), one-shot results omit it, and peers that predate it
	// decode the shorter frame and see zero.
	if r.SessionGen != 0 {
		dst = binary.AppendUvarint(dst, r.SessionGen)
	}
	return endFrame(dst, p)
}

// AppendError encodes a job failure (jobID != 0) or a fatal connection
// error (jobID 0).
func AppendError(dst []byte, jobID uint64, msg string) []byte {
	if len(msg) > maxStringLen {
		msg = msg[:maxStringLen]
	}
	dst, p := beginFrame(dst, FrameError, jobID)
	dst = appendString(dst, msg)
	return endFrame(dst, p)
}

// AppendBusy encodes an admission-control rejection.
func AppendBusy(dst []byte, jobID uint64, code BusyCode) []byte {
	dst, p := beginFrame(dst, FrameBusy, jobID)
	dst = append(dst, byte(code))
	return endFrame(dst, p)
}

// AppendStatsReq encodes a statistics request.
func AppendStatsReq(dst []byte, jobID uint64) []byte {
	dst, p := beginFrame(dst, FrameStatsReq, jobID)
	return endFrame(dst, p)
}

// AppendStats encodes an engine statistics snapshot.
func AppendStats(dst []byte, jobID uint64, s *engine.Stats) []byte {
	dst, p := beginFrame(dst, FrameStats, jobID)
	dst = binary.AppendUvarint(dst, s.Jobs)
	dst = binary.AppendUvarint(dst, s.CacheHits)
	dst = binary.AppendUvarint(dst, s.CacheMisses)
	dst = binary.AppendUvarint(dst, s.Batches)
	dst = binary.AppendUvarint(dst, s.Coalesced)
	dst = binary.AppendUvarint(dst, uint64(s.CacheEntries))
	dst = binary.AppendUvarint(dst, s.CacheEvictions)
	dst = binary.AppendUvarint(dst, uint64(len(s.BatchOccupancy)))
	for _, v := range s.BatchOccupancy {
		dst = binary.AppendUvarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Schemes)))
	for name, count := range s.Schemes {
		dst = appendString(dst, name)
		dst = binary.AppendUvarint(dst, count)
	}
	// Recalibration counters are an optional trailing pair, following the
	// same evolution rule as the HELLO flags field: emitted only when
	// non-zero, decoded as zero by peers that predate them. The
	// simplification quad extends the tail the same way; since optional
	// tails decode positionally, emitting the quad forces the pair out
	// too (zeros are fine — only the frame length carries meaning).
	tenantTail := len(s.Tenants) != 0
	sessTail := s.SessionOpens != 0 || s.SessionJobs != 0 ||
		s.SessionSegsComputed != 0 || s.SessionSegsReused != 0
	simpTail := s.SimplifiedBatches != 0 || s.SimplifyFallbacks != 0 ||
		s.SegsComputed != 0 || s.SegsReused != 0
	histTail := len(s.Stages) != 0
	if tenantTail || sessTail || histTail || simpTail || s.Recalibrations != 0 || s.SchemeSwitches != 0 {
		dst = binary.AppendUvarint(dst, s.Recalibrations)
		dst = binary.AppendUvarint(dst, s.SchemeSwitches)
	}
	if tenantTail || sessTail || histTail || simpTail {
		dst = binary.AppendUvarint(dst, s.SimplifiedBatches)
		dst = binary.AppendUvarint(dst, s.SimplifyFallbacks)
		dst = binary.AppendUvarint(dst, s.SegsComputed)
		dst = binary.AppendUvarint(dst, s.SegsReused)
	}
	// Stage-latency histogram tail, third in the positional chain: a
	// stage count, then per stage its name and histogram snapshot (count,
	// sum, max, then the trimmed bucket list). An engine that has served
	// nothing has no stage summaries and emits no tail — unless the
	// session quad behind it forces the chain out, in which case a zero
	// stage count stands in (the decoder reads nstages=0 and moves on).
	if tenantTail || sessTail || histTail {
		dst = binary.AppendUvarint(dst, uint64(len(s.Stages)))
		for _, st := range s.Stages {
			name := st.Name
			if len(name) > maxStringLen {
				name = name[:maxStringLen]
			}
			dst = appendString(dst, name)
			dst = binary.AppendUvarint(dst, st.Snap.Count)
			dst = binary.AppendUvarint(dst, st.Snap.SumNs)
			dst = binary.AppendUvarint(dst, st.Snap.MaxNs)
			dst = binary.AppendUvarint(dst, uint64(len(st.Snap.Buckets)))
			for _, b := range st.Snap.Buckets {
				dst = binary.AppendUvarint(dst, b)
			}
		}
	}
	// Streaming-session quad, fourth in the chain.
	if tenantTail || sessTail {
		dst = binary.AppendUvarint(dst, s.SessionOpens)
		dst = binary.AppendUvarint(dst, s.SessionJobs)
		dst = binary.AppendUvarint(dst, s.SessionSegsComputed)
		dst = binary.AppendUvarint(dst, s.SessionSegsReused)
	}
	// Per-tenant tail, fifth in the chain: a tenant count, then per tenant
	// its name, weight, counters and queue-wait histogram snapshot. Only
	// multi-tenant engines populate Tenants, so single-tenant deployments
	// never emit it (nor force the earlier tails out) and stay
	// byte-identical to the legacy layout.
	if tenantTail {
		dst = binary.AppendUvarint(dst, uint64(len(s.Tenants)))
		for _, t := range s.Tenants {
			name := t.Name
			if len(name) > maxStringLen {
				name = name[:maxStringLen]
			}
			dst = appendString(dst, name)
			w := t.Weight
			if w < 0 {
				w = 0
			}
			dst = binary.AppendUvarint(dst, uint64(w))
			dst = binary.AppendUvarint(dst, t.Jobs)
			dst = binary.AppendUvarint(dst, t.Batches)
			dst = binary.AppendUvarint(dst, t.Busy)
			dst = binary.AppendUvarint(dst, t.Recalibrations)
			dst = binary.AppendUvarint(dst, t.SchemeSwitches)
			dst = binary.AppendUvarint(dst, t.QueueWait.Count)
			dst = binary.AppendUvarint(dst, t.QueueWait.SumNs)
			dst = binary.AppendUvarint(dst, t.QueueWait.MaxNs)
			dst = binary.AppendUvarint(dst, uint64(len(t.QueueWait.Buckets)))
			for _, b := range t.QueueWait.Buckets {
				dst = binary.AppendUvarint(dst, b)
			}
		}
	}
	return endFrame(dst, p)
}

// elapsedFromWire converts the uvarint nanosecond field back to a
// duration, saturating rather than going negative on overflow.
func elapsedFromWire(ns uint64) time.Duration {
	if ns > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}
