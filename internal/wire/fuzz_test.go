package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

// FuzzDecodeFrame feeds arbitrary bytes through the full decode surface:
// frame parsing, every typed body decoder, and the streaming Reader. The
// invariant under test is that corrupt, truncated or hostile input always
// returns an error — the decoder never panics, never over-allocates past
// its caps, and anything it does accept is a structurally valid frame.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid encoding of every frame type, plus mutations the
	// fuzzer can splice.
	rng := rand.New(rand.NewSource(1))
	l := randomLoop(rng)
	res := engine.Result{Values: []float64{1.5, -2, 0}, Scheme: "hash", Why: "w", BatchSize: 3}
	st := engine.Stats{Jobs: 9, Schemes: map[string]uint64{"rep": 9}, BatchOccupancy: []uint64{0, 9}}
	f.Add(AppendSubmit(nil, 1, l))
	f.Add(AppendResult(nil, 2, &res))
	f.Add(AppendHello(nil, Hello{Version: 1, Procs: 8, MaxInflight: 64}))
	f.Add(AppendError(nil, 3, "e"))
	f.Add(AppendBusy(nil, 4, BusyConn))
	f.Add(AppendStatsReq(nil, 5))
	f.Add(AppendStats(nil, 6, &st))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 20 // keep hostile allocations small under fuzzing
		fr, n, err := DecodeFrame(data, maxFrame)
		if err == nil {
			if n < 4 || n > len(data) {
				t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
			}
			exerciseTypedDecoders(t, fr)
		}
		// The streaming reader must agree with the flat decoder and
		// likewise never panic on a hostile stream.
		r := NewReader(bytes.NewReader(data), maxFrame)
		for {
			fr, err := r.Next()
			if err != nil {
				break
			}
			exerciseTypedDecoders(t, fr)
		}
	})
}

// exerciseTypedDecoders runs every body decoder against the frame; only
// the one matching fr.Type may succeed, and whatever it returns must hold
// the decoder's postconditions.
func exerciseTypedDecoders(t *testing.T, fr Frame) {
	t.Helper()
	if l, err := fr.DecodeSubmit(1 << 16); err == nil {
		if err := l.Validate(); err != nil {
			t.Fatalf("DecodeSubmit accepted an invalid loop: %v", err)
		}
	}
	var scratch trace.Loop
	fr.DecodeSubmitInto(&scratch, nil, nil, 1<<16)
	if r, err := fr.DecodeResult(nil); err == nil {
		if r.BatchSize < 0 || len(r.Values) > len(fr.Body) {
			t.Fatalf("DecodeResult postcondition violated: %+v", r)
		}
	}
	fr.DecodeHello()
	fr.DecodeError()
	fr.DecodeBusy()
	if s, err := fr.DecodeStats(); err == nil {
		if len(s.BatchOccupancy) > len(fr.Body) || len(s.Schemes) > len(fr.Body) {
			t.Fatalf("DecodeStats over-allocated: %+v", s)
		}
	}
}
