package experiments

import (
	"strings"
	"testing"
)

func tinyFig3() Fig3Scale { return Fig3Scale{Dense: 0.04, Sparse: 0.3, Procs: 8} }

func TestFig3RecommendationsAllMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates all 21 Figure 3 rows (~13s); run without -short")
	}
	res := RunFig3(tinyFig3())
	s := Summarize(res)
	if s.Rows != 21 {
		t.Fatalf("rows = %d, want 21", s.Rows)
	}
	if s.RecommendMatches != s.Rows {
		for _, r := range res {
			if !r.RecommendMatchesPaper {
				t.Errorf("%s dim=%d: recommended %s, paper %s (profile %v)",
					r.App, r.Dim, r.Recommended, r.PaperRecommend, r.Profile)
			}
		}
	}
	// The paper's own model hit 16/21; ours should be in the same league
	// on the measured side.
	if s.BestMatches < 7 {
		t.Errorf("measured-winner matches = %d/21, expected at least 7", s.BestMatches)
	}
}

func TestFig3FormatContainsSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates all 21 Figure 3 rows (~13s); run without -short")
	}
	out := FormatFig3(RunFig3(tinyFig3()))
	if !strings.Contains(out, "recommendation-matches-paper=21/21") {
		t.Errorf("summary line missing or wrong:\n%s", out[len(out)-200:])
	}
}

func TestPCLRAppsOrderingInvariant(t *testing.T) {
	res := RunPCLRApps(16, 0.05)
	if len(res) != 5 {
		t.Fatalf("apps = %d", len(res))
	}
	flexBeatsSw := 0
	for _, r := range res {
		if !(r.SpeedupHw >= r.SpeedupFlex) {
			t.Errorf("%s: Hw (%.1f) must beat Flex (%.1f)", r.App.Name, r.SpeedupHw, r.SpeedupFlex)
		}
		if r.SpeedupFlex >= r.SpeedupSw {
			flexBeatsSw++
		}
	}
	// Flex beats Sw for all five apps at the paper's scale; at the tiny
	// test scale the displacement-heaviest app (Nbf) can saturate the
	// programmable controller, so allow one outlier.
	if flexBeatsSw < 4 {
		t.Errorf("Flex beats Sw on only %d/5 apps", flexBeatsSw)
	}
	// Vml must displace nothing (Table 2).
	for _, r := range res {
		if r.App.Name == "Vml" && r.HwStats.LinesDisplaced != 0 {
			t.Errorf("Vml displaced %d lines, paper says 0", r.HwStats.LinesDisplaced)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all 5 apps at 3 machine sizes (~24s under -race); run without -short")
	}
	pts := RunFig7(0.05)
	if len(pts) != 3 || pts[0].Procs != 4 || pts[2].Procs != 16 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	if !(pts[2].Hw > pts[1].Hw && pts[1].Hw > pts[0].Hw) {
		t.Errorf("Hw must scale: %v", []float64{pts[0].Hw, pts[1].Hw, pts[2].Hw})
	}
	// Sw flattens: its 16p/4p ratio must be far below Hw's.
	swGrowth := pts[2].Sw / pts[0].Sw
	hwGrowth := pts[2].Hw / pts[0].Hw
	if swGrowth > 0.8*hwGrowth {
		t.Errorf("Sw should flatten relative to Hw: growth %.2f vs %.2f", swGrowth, hwGrowth)
	}
}

func TestRLRPDExperiment(t *testing.T) {
	res := RunRLRPD(1500, 8)
	if len(res) != 5 {
		t.Fatalf("sweep points = %d", len(res))
	}
	if res[0].DepFraction != 0 || !res[0].PlainLRPDPassed {
		t.Error("the dependence-free case must pass plain LRPD")
	}
	foundFail := false
	for _, r := range res[1:] {
		if !r.PlainLRPDPassed {
			foundFail = true
		}
	}
	if !foundFail {
		t.Error("plain LRPD should fail on dependent instances")
	}
	// Speedup decreases with dependence density.
	if res[1].Speedup < res[len(res)-1].Speedup {
		t.Errorf("speedup should fall with density: %.1f vs %.1f",
			res[1].Speedup, res[len(res)-1].Speedup)
	}
	if !strings.Contains(FormatRLRPD(res), "R-LRPD") {
		t.Error("format output malformed")
	}
}

func TestTable2Format(t *testing.T) {
	out := FormatTable2(RunPCLRApps(16, 0.05))
	for _, needle := range []string{"Euler", "Nbf", "Average", "Flushed"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table 2 output missing %q", needle)
		}
	}
}
