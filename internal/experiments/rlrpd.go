package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
	"repro/internal/stats"
)

// RLRPDResult reproduces the Section 3 claim: the Recursive LRPD test
// extracts speedup from partially parallel loops (the paper applied it to
// the three most important loops of TRACK, "considered sequential" before
// the technique) where the plain LRPD test fails outright.
type RLRPDResult struct {
	DepFraction     float64
	Iters           int
	Procs           int
	PlainLRPDPassed bool
	Passes          int
	Replication     float64 // executed iterations / loop iterations
	Speedup         float64 // critical-path speedup estimate
}

// trackLikeLoop builds a partially parallel loop: every iteration updates
// its own element; a depFraction of iterations additionally read an
// element written by a recent earlier iteration (position-dependent
// interactions, as in TRACK's tracking loops).
func trackLikeLoop(iters int, depFraction float64, seed int64) *spec.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := spec.NewLoop(iters + 1)
	for i := 0; i < iters; i++ {
		accs := []spec.Access{
			{Elem: int32(i), Kind: spec.Read},
			{Elem: int32(i), Kind: spec.Write},
		}
		if i > 0 && rng.Float64() < depFraction {
			back := 1 + rng.Intn(minInt2(i, 16))
			accs = append(accs, spec.Access{Elem: int32(i - back), Kind: spec.Read})
		}
		l.AddIter(accs...)
	}
	return l
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunRLRPD sweeps dependence densities on a TRACK-like loop, verifying
// correctness against sequential execution and reporting the speedups
// R-LRPD extracts.
func RunRLRPD(iters, procs int) []RLRPDResult {
	var out []RLRPDResult
	for i, depFrac := range []float64{0, 0.01, 0.05, 0.2, 0.5} {
		l := trackLikeLoop(iters, depFrac, int64(1000+i))
		init := make([]float64, l.NumElems)
		for j := range init {
			init[j] = float64(j%11) * 0.25
		}
		plain := l.LRPD(init, procs)
		got, st := l.RLRPD(init, procs)
		want := l.RunSequential(init)
		for j := range want {
			if diff := got[j] - want[j]; diff > 1e-9 || diff < -1e-9 {
				panic(fmt.Sprintf("experiments: R-LRPD wrong at %d (depFrac %g)", j, depFrac))
			}
		}
		out = append(out, RLRPDResult{
			DepFraction:     depFrac,
			Iters:           iters,
			Procs:           procs,
			PlainLRPDPassed: plain.Passed,
			Passes:          st.Passes,
			Replication:     float64(st.IterationsExecuted) / float64(iters),
			Speedup:         st.SpeedupEstimate(iters, procs),
		})
	}
	return out
}

// FormatRLRPD renders the sweep.
func FormatRLRPD(results []RLRPDResult) string {
	header := []string{"dep%", "plain-LRPD", "passes", "replication", "speedup"}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		plain := "fails"
		if r.PlainLRPDPassed {
			plain = "passes"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", r.DepFraction*100),
			plain,
			fmt.Sprintf("%d", r.Passes),
			fmt.Sprintf("%.2fx", r.Replication),
			fmt.Sprintf("%.1f", r.Speedup),
		})
	}
	out := stats.FormatTable(header, rows)
	out += "\nplain speculation fails on any dependence; R-LRPD commits the prefix and re-executes only the remainder\n"
	return out
}
