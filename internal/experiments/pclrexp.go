package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pclr"
	"repro/internal/simarch"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// PCLRAppResult is one application's simulated outcome under the three
// schemes of Figure 6 on one machine size.
type PCLRAppResult struct {
	App   workloads.PCLRApp
	Nodes int
	Scale float64

	SeqCycles float64
	Sw        stats.Breakdown
	Hw        stats.Breakdown
	Flex      stats.Breakdown
	// HwStats carries Table 2's protocol counters from the Hw run.
	HwStats pclr.Stats

	SpeedupSw, SpeedupHw, SpeedupFlex float64
}

// pclrConfig returns the Table 1 machine scaled like the workloads: cache
// capacity shrinks with the data so displacement/flush regimes survive
// reduced-scale runs.
func pclrConfig(nodes int, scale float64) simarch.Config {
	cfg := simarch.DefaultConfig(nodes)
	cfg.L1Bytes = scaleCache(cfg.L1Bytes, scale)
	cfg.L2Bytes = scaleCache(cfg.L2Bytes, scale)
	return cfg
}

// RunPCLRApp simulates one application at the given machine size/scale.
// Applications whose loops are already small (Vml) get a floor on the
// effective scale so that fixed per-run overheads (the ConfigHardware
// call, flush tails) are not artificially magnified.
func RunPCLRApp(app workloads.PCLRApp, nodes int, scale float64) PCLRAppResult {
	if minIters := 3000.0; float64(app.Iters)*scale < minIters {
		scale = minIters / float64(app.Iters)
		if scale > 1 {
			scale = 1
		}
	}
	l := app.Generate(scale)
	cfg := pclrConfig(nodes, scale)

	seq := machine.RunSequential(cfg, l)
	sw := machine.New(cfg).RunSw(l)
	hw, err := machine.New(cfg).RunPCLR(l, simarch.Hardwired)
	if err != nil {
		panic(err) // all Table 2 apps use FP add, which PCLR supports
	}
	flex, err := machine.New(cfg).RunPCLR(l, simarch.Programmable)
	if err != nil {
		panic(err)
	}

	r := PCLRAppResult{
		App: app, Nodes: nodes, Scale: scale,
		SeqCycles: seq.Breakdown.Total(),
		Sw:        sw.Breakdown, Hw: hw.Breakdown, Flex: flex.Breakdown,
		HwStats: hw.Stats,
	}
	r.SpeedupSw = stats.Speedup(r.SeqCycles, r.Sw.Total())
	r.SpeedupHw = stats.Speedup(r.SeqCycles, r.Hw.Total())
	r.SpeedupFlex = stats.Speedup(r.SeqCycles, r.Flex.Total())
	return r
}

// RunPCLRApps simulates all five Table 2 applications on a nodes-node
// machine (16 in the paper).
func RunPCLRApps(nodes int, scale float64) []PCLRAppResult {
	apps := workloads.PCLRApps()
	out := make([]PCLRAppResult, 0, len(apps))
	for _, a := range apps {
		out = append(out, RunPCLRApp(a, nodes, scale))
	}
	return out
}

// FormatTable2 renders the application characteristics table with the
// measured lines flushed/displaced next to the paper's (16-processor
// simulation, single loop). Counts scale roughly linearly with the run
// scale, so the paper columns are shown scaled for comparison.
func FormatTable2(results []PCLRAppResult) string {
	header := []string{"Appl.", "%Tseq", "Invoc.", "Iters", "Instr/it", "RedOps/it", "ArrayKB",
		"Flushed", "(paper*s)", "Displaced", "(paper*s)"}
	rows := make([][]string, 0, len(results))
	var fl, dis, itSum, inSum, roSum, akSum float64
	for _, r := range results {
		a := r.App
		s := r.Scale
		rows = append(rows, []string{
			a.Name + "/" + a.LoopName,
			fmt.Sprintf("%.1f", a.PctTseq),
			fmt.Sprintf("%d", a.Invocations),
			fmt.Sprintf("%d", a.Iters),
			fmt.Sprintf("%.0f", a.InstrPerIter),
			fmt.Sprintf("%d", a.RedOpsPerIter),
			fmt.Sprintf("%.1f", a.ArrayKB),
			fmt.Sprintf("%d", r.HwStats.LinesFlushed),
			fmt.Sprintf("%.0f", float64(a.PaperLinesFlushed)*s),
			fmt.Sprintf("%d", r.HwStats.LinesDisplaced),
			fmt.Sprintf("%.0f", float64(a.PaperLinesDisplaced)*s),
		})
		fl += float64(r.HwStats.LinesFlushed)
		dis += float64(r.HwStats.LinesDisplaced)
		itSum += float64(a.Iters)
		inSum += a.InstrPerIter
		roSum += float64(a.RedOpsPerIter)
		akSum += a.ArrayKB
	}
	n := float64(len(results))
	rows = append(rows, []string{"Average", "", "", fmt.Sprintf("%.0f", itSum/n),
		fmt.Sprintf("%.0f", inSum/n), fmt.Sprintf("%.0f", roSum/n), fmt.Sprintf("%.1f", akSum/n),
		fmt.Sprintf("%.0f", fl/n), "", fmt.Sprintf("%.0f", dis/n), ""})
	return stats.FormatTable(header, rows)
}

// FormatFig6 renders the execution-time comparison of Figure 6: per
// application, the Sw/Hw/Flex bars broken into Init/Loop/Merge and
// normalized to Sw, with speedups vs sequential above each bar.
func FormatFig6(results []PCLRAppResult) string {
	header := []string{"Appl.", "Scheme", "Init", "Loop", "Merge", "Total(norm)", "Speedup", "PaperSpeedup"}
	rows := make([][]string, 0, 3*len(results))
	var spSw, spHw, spFlex []float64
	for _, r := range results {
		ref := r.Sw.Total()
		add := func(name string, b stats.Breakdown, sp, paper float64) {
			n := b.Normalized(ref)
			rows = append(rows, []string{
				r.App.Name, name,
				fmt.Sprintf("%.3f", n.Init), fmt.Sprintf("%.3f", n.Loop), fmt.Sprintf("%.3f", n.Merge),
				fmt.Sprintf("%.3f", n.Total()),
				fmt.Sprintf("%.1f", sp), fmt.Sprintf("%.1f", paper),
			})
		}
		add("Sw", r.Sw, r.SpeedupSw, r.App.PaperSpeedupSw)
		add("Hw", r.Hw, r.SpeedupHw, r.App.PaperSpeedupHw)
		add("Flex", r.Flex, r.SpeedupFlex, r.App.PaperSpeedupFlex)
		spSw = append(spSw, r.SpeedupSw)
		spHw = append(spHw, r.SpeedupHw)
		spFlex = append(spFlex, r.SpeedupFlex)
	}
	out := stats.FormatTable(header, rows)
	out += fmt.Sprintf("\nharmonic means: Sw=%.1f (paper 2.7)  Hw=%.1f (paper 7.6)  Flex=%.1f (paper 6.4)\n",
		stats.HarmonicMean(spSw), stats.HarmonicMean(spHw), stats.HarmonicMean(spFlex))
	return out
}

// Fig7Point is one machine size's harmonic-mean speedups.
type Fig7Point struct {
	Procs        int
	Sw, Hw, Flex float64
	PerAppSw     []float64
	PerAppHw     []float64
	PerAppFlex   []float64
}

// RunFig7 sweeps machine sizes 4, 8, 16 as the paper's Figure 7 does.
func RunFig7(scale float64) []Fig7Point {
	var points []Fig7Point
	for _, procs := range []int{4, 8, 16} {
		results := RunPCLRApps(procs, scale)
		var p Fig7Point
		p.Procs = procs
		for _, r := range results {
			p.PerAppSw = append(p.PerAppSw, r.SpeedupSw)
			p.PerAppHw = append(p.PerAppHw, r.SpeedupHw)
			p.PerAppFlex = append(p.PerAppFlex, r.SpeedupFlex)
		}
		p.Sw = stats.HarmonicMean(p.PerAppSw)
		p.Hw = stats.HarmonicMean(p.PerAppHw)
		p.Flex = stats.HarmonicMean(p.PerAppFlex)
		points = append(points, p)
	}
	return points
}

// FormatFig7 renders the scalability series of Figure 7.
func FormatFig7(points []Fig7Point) string {
	header := []string{"Procs", "Hw", "Flex", "Sw"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Procs),
			fmt.Sprintf("%.1f", p.Hw), fmt.Sprintf("%.1f", p.Flex), fmt.Sprintf("%.1f", p.Sw),
		})
	}
	out := stats.FormatTable(header, rows)
	out += "\npaper at 16 procs: Hw 7.6, Flex 6.4, Sw 2.7; Hw/Flex scale, Sw flattens (merge is Amdahl-bound)\n"
	return out
}
