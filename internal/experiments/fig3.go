// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 3 adaptive-selection table, Table 1's modeled
// architecture, Table 2's application characteristics, Figure 6's
// execution-time breakdown and Figure 7's scalability study, plus the
// Section 3 R-LRPD demonstration. Each experiment returns structured rows
// (consumed by cmd/smartapps and bench_test.go) and can run at reduced
// scale with the cache geometry scaled alongside so that every
// dimensionless regime of the paper is preserved.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adapt"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// Fig3Result is the reproduction of one row of the paper's Figure 3.
type Fig3Result struct {
	App, LoopName string
	Dim           int
	Profile       *pattern.Profile
	// Recommended is this implementation's decision-algorithm output;
	// PaperRecommend is the paper's column.
	Recommended    string
	Why            string
	PaperRecommend string
	// Ranking is the measured (virtual-time) scheme ordering, best first;
	// PaperOrder is the paper's measured ordering.
	Ranking    []adapt.Measured
	PaperOrder []string
	// RecommendMatchesPaper: our decision == paper's decision column.
	RecommendMatchesPaper bool
	// BestMatchesPaperBest: our measured winner == paper's measured
	// winner, comparing only the schemes the paper actually ran on this
	// row (Spice rows omit sel and lw in the paper).
	BestMatchesPaperBest bool
	// Hit: our recommendation == our measured winner (the paper's own
	// validation criterion for its model).
	Hit bool
}

// subsetWinner returns the best-ranked scheme among those in subset.
func subsetWinner(ranking []adapt.Measured, subset []string) string {
	in := make(map[string]bool, len(subset))
	for _, s := range subset {
		in[s] = true
	}
	for _, m := range ranking {
		if in[m.Scheme] {
			return m.Scheme
		}
	}
	return ""
}

// Fig3Scale describes how a Figure 3 run was scaled.
type Fig3Scale struct {
	// Dense is the scale factor for ordinary rows; Sparse the gentler
	// factor for very sparse rows (Spice), whose tiny touched sets
	// degenerate at aggressive scales.
	Dense, Sparse float64
	// Procs is the processor count (8 in the paper).
	Procs int
}

// DefaultFig3Scale runs at a practical fraction of the paper's sizes; the
// regime of every row (all dimensionless metrics) is preserved because the
// cache is scaled with the data.
func DefaultFig3Scale() Fig3Scale { return Fig3Scale{Dense: 0.15, Sparse: 0.4, Procs: 8} }

// FullFig3Scale runs the paper's exact input sizes.
func FullFig3Scale() Fig3Scale { return Fig3Scale{Dense: 1, Sparse: 1, Procs: 8} }

// scaleFor picks the row's scale factor.
func (s Fig3Scale) scaleFor(r workloads.Fig3Row) float64 {
	if r.Spec.SPPercent < 1 {
		return s.Sparse
	}
	return s.Dense
}

// configFor returns the Table 1 cost model with caches scaled by f. The
// TLB reach (entries x page size) scales alongside so that
// translation-footprint effects are preserved at reduced scale.
func configFor(f float64) vtime.Config {
	cfg := vtime.DefaultConfig()
	cfg.L1Bytes = scaleCache(cfg.L1Bytes, f)
	cfg.L2Bytes = scaleCache(cfg.L2Bytes, f)
	if f < 1 {
		cfg.TLBEntries = int(float64(cfg.TLBEntries) * f)
		if cfg.TLBEntries < 8 {
			cfg.TLBEntries = 8
		}
	}
	return cfg
}

func scaleCache(bytes int, f float64) int {
	v := int(float64(bytes) * f)
	// Keep geometry valid: at least one set per way at 64B lines.
	if v < 1024 {
		v = 1024
	}
	return v
}

// RunFig3 reproduces the Figure 3 table at the given scale.
func RunFig3(sc Fig3Scale) []Fig3Result {
	rows := workloads.Fig3Rows()
	results := make([]Fig3Result, 0, len(rows))
	for _, r := range rows {
		results = append(results, runFig3Row(r, sc))
	}
	return results
}

func runFig3Row(r workloads.Fig3Row, sc Fig3Scale) Fig3Result {
	f := sc.scaleFor(r)
	l := r.Generate(f)
	cfg := configFor(f)
	prof := pattern.Characterize(l, sc.Procs, cfg.L2Bytes)
	rec := adapt.Recommend(prof)
	ranking := adapt.Rank(l, sc.Procs, cfg)

	res := Fig3Result{
		App: r.App, LoopName: r.LoopName, Dim: r.Spec.Dim,
		Profile:        prof,
		Recommended:    rec.Scheme,
		Why:            rec.Why,
		PaperRecommend: r.PaperRecommend,
		Ranking:        ranking,
		PaperOrder:     r.PaperOrder,
	}
	res.RecommendMatchesPaper = res.Recommended == r.PaperRecommend
	if len(ranking) > 0 && len(r.PaperOrder) > 0 {
		res.BestMatchesPaperBest = subsetWinner(ranking, r.PaperOrder) == r.PaperOrder[0]
		res.Hit = ranking[0].Scheme == rec.Scheme
	}
	return res
}

// Fig3Summary aggregates reproduction quality over all rows.
type Fig3Summary struct {
	Rows             int
	RecommendMatches int // our decision column == paper's
	BestMatches      int // our measured winner == paper's winner
	Hits             int // our recommendation == our measured winner
	PaperHits        int // paper's recommendation == paper's winner (17/21)
}

// Summarize computes the aggregate counters.
func Summarize(results []Fig3Result) Fig3Summary {
	s := Fig3Summary{Rows: len(results)}
	for _, r := range results {
		if r.RecommendMatchesPaper {
			s.RecommendMatches++
		}
		if r.BestMatchesPaperBest {
			s.BestMatches++
		}
		if r.Hit {
			s.Hits++
		}
		if r.PaperRecommend == r.PaperOrder[0] {
			s.PaperHits++
		}
	}
	return s
}

// FormatFig3 renders the reproduction as a table shaped like the paper's
// Figure 3, with measured metrics and both orderings.
func FormatFig3(results []Fig3Result) string {
	header := []string{"APP", "MO", "INPUT", "SP%", "CON", "CHR", "Recom.", "Paper", "Measured order", "Paper order"}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.App,
			fmt.Sprintf("%.1f", r.Profile.MO),
			fmt.Sprintf("%d", r.Dim),
			fmt.Sprintf("%.3g", r.Profile.SP),
			fmt.Sprintf("%.3g", r.Profile.CON),
			fmt.Sprintf("%.2f", r.Profile.CHR),
			r.Recommended,
			r.PaperRecommend,
			orderWithSpeedups(r.Ranking),
			strings.Join(r.PaperOrder, ">"),
		})
	}
	s := Summarize(results)
	out := stats.FormatTable(header, rows)
	out += fmt.Sprintf("\nrows=%d  recommendation-matches-paper=%d/%d  measured-winner-matches-paper=%d/%d  model-hits-measured-winner=%d/%d (paper's own model: %d/%d)\n",
		s.Rows, s.RecommendMatches, s.Rows, s.BestMatches, s.Rows, s.Hits, s.Rows, s.PaperHits, s.Rows)
	return out
}

func orderWithSpeedups(ms []adapt.Measured) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%s(%.1f)", m.Scheme, m.Speedup)
	}
	return strings.Join(parts, ">")
}
