package engine

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestStatsMergeStageMismatch merges stage summaries whose histograms
// have different bucket counts — the shape that arises when one shard
// (or one remote backend) has only seen fast jobs while another has
// slower observations in higher buckets. Merge must grow to the longer
// shape in either direction and never alias the source's buckets.
func TestStatsMergeStageMismatch(t *testing.T) {
	short := Stats{Stages: []obs.StageSummary{
		{Name: "execute", Snap: obs.Snapshot{Count: 2, SumNs: 10, MaxNs: 7, Buckets: []uint64{1, 1}}},
	}}
	long := Stats{Stages: []obs.StageSummary{
		{Name: "execute", Snap: obs.Snapshot{Count: 3, SumNs: 3000, MaxNs: 2000, Buckets: []uint64{0, 1, 0, 0, 2}}},
	}}

	check := func(name string, s Stats) {
		t.Helper()
		if len(s.Stages) != 1 || s.Stages[0].Name != "execute" {
			t.Fatalf("%s: stages = %+v", name, s.Stages)
		}
		snap := s.Stages[0].Snap
		if snap.Count != 5 || snap.SumNs != 3010 || snap.MaxNs != 2000 {
			t.Fatalf("%s: merged snapshot = %+v", name, snap)
		}
		want := []uint64{1, 2, 0, 0, 2}
		if len(snap.Buckets) != len(want) {
			t.Fatalf("%s: merged buckets = %v, want %v", name, snap.Buckets, want)
		}
		for i := range want {
			if snap.Buckets[i] != want[i] {
				t.Fatalf("%s: bucket %d = %d, want %d", name, i, snap.Buckets[i], want[i])
			}
		}
	}

	a := short
	a.Stages = obs.MergeStageSummaries(nil, short.Stages) // private copy
	a.Merge(long)
	check("short into long", a)
	if long.Stages[0].Snap.Buckets[1] != 1 {
		t.Fatal("merge mutated the source stats")
	}

	b := long
	b.Stages = obs.MergeStageSummaries(nil, long.Stages)
	b.Merge(short)
	check("long into short", b)
	if short.Stages[0].Snap.Buckets[0] != 1 {
		t.Fatal("merge mutated the source stats")
	}

	// Disjoint stage names union rather than collide.
	c := Stats{Stages: []obs.StageSummary{
		{Name: "queue_wait", Snap: obs.Snapshot{Count: 1, SumNs: 5, MaxNs: 5, Buckets: []uint64{0, 0, 0, 0, 0, 1}}},
	}}
	c.Merge(long)
	if len(c.Stages) != 2 {
		t.Fatalf("disjoint merge: %d stages, want 2", len(c.Stages))
	}
}

// TestStatsConcurrentMergeLiveTraffic aggregates snapshots (the gateway's
// Stats fan-in) while the engine is executing jobs — the -race proof that
// Engine.Stats snapshots, per-shard stage histograms included, are safe
// to read and merge concurrently with the workers that write them.
func TestStatsConcurrentMergeLiveTraffic(t *testing.T) {
	loops, _ := mixedLoops()
	e := mustNew(t, Config{Workers: 4})
	defer e.Close()

	// Warm up synchronously so every merger below is guaranteed to see at
	// least one completed job regardless of scheduling.
	if _, err := e.Submit(loops[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for g := 0; g < 3; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Submit(loops[(g+i)%len(loops)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	var mergers sync.WaitGroup
	for g := 0; g < 4; g++ {
		mergers.Add(1)
		go func() {
			defer mergers.Done()
			var agg Stats
			for i := 0; i < 50; i++ {
				agg.Merge(e.Stats())
			}
			if agg.Jobs == 0 {
				t.Error("merged aggregate saw no jobs despite live traffic")
			}
			for _, st := range agg.Stages {
				if st.Snap.Count == 0 {
					t.Errorf("stage %s reported with zero observations", st.Name)
				}
			}
		}()
	}
	mergers.Wait()
	close(stop)
	traffic.Wait()

	s := e.Stats()
	var hasExec bool
	for _, st := range s.Stages {
		if st.Name == "execute" {
			hasExec = true
			if q99 := st.Snap.Quantile(0.99); q99 > st.Snap.MaxNs {
				t.Fatalf("execute p99 %d exceeds max %d", q99, st.Snap.MaxNs)
			}
		}
	}
	if !hasExec {
		t.Fatal("final stats carry no execute stage")
	}
}
