package engine

import (
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/trace"
)

// Online recalibration: the paper's claim is *continuous* adaptivity —
// the runtime keeps measuring and re-selects the reduction scheme when
// the application's access pattern shifts phase — but a decision cache
// alone decides once per fingerprint and trusts that entry forever. The
// fingerprint is a strided sample of the subscript stream, so a loop
// whose hot set drifts between the sampled positions (a neighbor-list
// rebuild, a mesh refinement) keeps mapping onto the old entry and keeps
// executing a scheme chosen for a pattern that no longer exists.
//
// Each cache entry therefore carries a lightweight drift detector and a
// revalidation state machine:
//
//   - an EWMA of the measured execution cost, compared against the cost
//     the entry stabilized at after its decision: divergence past
//     Config.DriftRatio (either direction) marks the entry stale,
//   - a sampled re-profile every Config.RecalEvery executions: when the
//     fresh profile's pattern.Distance from the decision-time profile
//     exceeds recalDistance, the entry is marked stale even if the cost
//     happens to look steady,
//   - a stale entry is re-inspected at the head of its next batch:
//     fresh characterization through internal/adapt. A recommendation
//     matching the current scheme revalidates the entry (new profile and
//     cost anchor, staleness cleared); a differing recommendation must
//     repeat — same replacement scheme — on Config.RecalConfirm
//     consecutive re-inspections before the scheme actually switches;
//     hysteresis, so measurement noise cannot thrash rep<->sel on
//     alternate batches. Re-inspections are serialized per entry so the
//     confirmations come from distinct epochs of the workload.
//
// A switch replaces the entry's scheme, profile and rationale, drops the
// feedback scheduler (the new scheme re-learns its block cuts), bumps
// the schedule generation so in-flight measurements are discarded, and
// re-seeds the cost anchor from the next executions.

// RecalSeedExecs is how many executions of an entry the cost anchor
// waits before it is recorded: the first runs pay cold buffers and
// unconverged feedback schedules, and anchoring on them would report
// drift the moment the entry warms up. Exported so harnesses that warm
// an engine before measuring drift (BenchmarkDriftRecovery) can submit
// enough executions per pattern for the anchor to exist.
const RecalSeedExecs = 3

const (
	// recalEWMAAlpha weights the newest execution cost in the EWMA.
	recalEWMAAlpha = 0.3
	// recalDistance is the pattern.Distance threshold past which a
	// periodic re-profile marks the entry stale (the paper's
	// re-characterization trigger; pattern.Tracker uses the same level).
	recalDistance = 0.25
)

// recalEnabled reports whether the recalibration subsystem runs.
func (e *Engine) recalEnabled() bool { return !e.cfg.DisableRecal }

// characterize runs the engine's standard sampled inspector pass on l.
func (e *Engine) characterize(l *trace.Loop) *pattern.Profile {
	return pattern.CharacterizeSampled(l, e.cfg.Platform.Procs, e.cfg.Platform.Cfg.L2Bytes, e.cfg.SampleStride)
}

// recordCost feeds one batch execution's measured cost into the entry's
// drift detector, and runs the periodic sampled re-profile when the
// entry's execution count comes due. Costs are per execution, not per
// member: a batch pays the scheme once regardless of how many jobs fused
// into it, so per-execution cost tracks the scheme while per-job cost
// would drift with batch occupancy alone. decSeen is the decision
// generation the batch executed under; a measurement taken under a
// decision that was switched away mid-flight is dropped.
func (e *Engine) recordCost(entry *cacheEntry, l *trace.Loop, elapsed time.Duration, decSeen uint64) {
	ns := float64(elapsed.Nanoseconds())
	entry.mu.Lock()
	if entry.hw || entry.decGen != decSeen {
		entry.mu.Unlock()
		return
	}
	if entry.ewmaNs == 0 {
		entry.ewmaNs = ns
	} else {
		entry.ewmaNs = recalEWMAAlpha*ns + (1-recalEWMAAlpha)*entry.ewmaNs
	}
	if entry.seen < RecalSeedExecs {
		entry.seen++
		if entry.seen == RecalSeedExecs {
			entry.anchorNs = entry.ewmaNs
		}
	}
	entry.execs++
	needProfile := false
	if !entry.stale {
		switch {
		case entry.anchorNs > 0 &&
			(entry.ewmaNs > entry.anchorNs*e.cfg.DriftRatio ||
				entry.anchorNs > entry.ewmaNs*e.cfg.DriftRatio):
			// Cost drifted past the ratio in either direction. A cost
			// collapse is as suspicious as a blow-up: both mean the
			// premises the scheme was chosen under no longer hold.
			entry.stale = true
		case entry.execs >= uint64(e.cfg.RecalEvery):
			entry.execs = 0
			needProfile = true
		}
	}
	baseline := entry.profile
	entry.mu.Unlock()
	if !needProfile {
		return
	}
	// The re-profile runs outside the entry lock: characterization is
	// O(refs/stride) and same-fingerprint batches on other workers should
	// not serialize behind it.
	fresh := e.characterize(l)
	if pattern.Distance(baseline, fresh) > recalDistance {
		entry.mu.Lock()
		// Only if the decision this comparison was made against still
		// stands: a concurrent re-inspection may have replaced the
		// profile (revalidation or switch), making the distance moot —
		// re-flagging the freshly recalibrated entry would buy a
		// pointless re-inspection and inflate the health counters.
		if entry.profile == baseline {
			entry.stale = true
		}
		entry.mu.Unlock()
	}
}

// maybeReinspect revalidates a stale entry before its batch executes:
// fresh characterization of the batch leader's loop through the decision
// algorithm, with hysteresis before a switch. It reports whether a
// re-inspection ran and whether it switched the scheme.
func (e *Engine) maybeReinspect(entry *cacheEntry, l *trace.Loop) (reinspected, switched bool) {
	entry.mu.Lock()
	if !entry.stale || entry.hw || entry.reinspecting {
		entry.mu.Unlock()
		return false, false
	}
	// Claim the re-inspection: concurrent batches of the same stale
	// fingerprint execute the current scheme unexamined rather than
	// characterizing the same instant several times — hysteresis must
	// count distinct batch-head epochs, or two workers sampling one
	// moment's noise could consume the whole confirmation budget at
	// once.
	entry.reinspecting = true
	entry.mu.Unlock()
	// Characterize outside the lock, like recordCost's periodic
	// re-profile: the stale entry's other batches (snapshotting the
	// decision, installing bounds, recording costs) must not serialize
	// behind an O(refs/stride) inspector pass.
	fresh := e.characterize(l)
	rec := adapt.Recommend(fresh)
	entry.mu.Lock()
	defer entry.mu.Unlock()
	entry.reinspecting = false
	if rec.Scheme == entry.name {
		// Revalidated: the decision still stands on the current pattern.
		// Re-anchor on the fresh profile and the observed cost so the
		// detector measures future drift from here, not from the old
		// phase.
		entry.profile = fresh
		entry.stale = false
		entry.confirm = 0
		entry.pending = ""
		entry.anchorNs = entry.ewmaNs
		entry.execs = 0
		return true, false
	}
	// Hysteresis counts consecutive re-inspections agreeing on the same
	// replacement; a change of mind restarts the count (the knob's
	// contract: RecalConfirm consecutive times with the same differing
	// recommendation).
	if rec.Scheme == entry.pending {
		entry.confirm++
	} else {
		entry.pending = rec.Scheme
		entry.confirm = 1
	}
	if entry.confirm < e.cfg.RecalConfirm {
		// Not yet confirmed: stay stale so the next batch re-inspects
		// again; a noise blip that recommends differently once will be
		// contradicted before the hysteresis threshold is reached.
		return true, false
	}
	conf := core.Configurer{Platform: e.cfg.Platform}.Configure(l, rec)
	entry.profile = fresh
	entry.conf = conf
	entry.install(conf)
	entry.fb = nil
	entry.fbIters = 0
	entry.gen++
	entry.decGen++
	entry.stale = false
	entry.confirm = 0
	entry.pending = ""
	entry.ewmaNs = 0
	entry.anchorNs = 0
	entry.seen = 0
	entry.execs = 0
	return true, true
}
