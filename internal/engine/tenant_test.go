package engine

import (
	"testing"

	"repro/internal/workloads"
)

func TestBuildTenantsValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfgs []TenantConfig
	}{
		{"empty name", []TenantConfig{{Name: "", Weight: 1}}},
		{"negative weight", []TenantConfig{{Name: "a", Weight: -2}}},
		{"duplicate", []TenantConfig{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}}},
	} {
		if _, _, err := buildTenants(tc.cfgs); err == nil {
			t.Errorf("%s: buildTenants accepted invalid config", tc.name)
		}
	}
}

func TestTenantIndexAndDefault(t *testing.T) {
	e := mustNew(t, Config{Workers: 1, Tenants: []TenantConfig{
		{Name: "gold", Weight: 4},
		{Name: "bronze", Weight: 1},
	}})
	defer e.Close()

	names := e.Tenants()
	if len(names) != 3 || names[0] != DefaultTenant || names[1] != "gold" || names[2] != "bronze" {
		t.Fatalf("tenant list = %v, want [default gold bronze]", names)
	}
	if i := e.TenantIndex("gold"); i != 1 {
		t.Errorf("TenantIndex(gold) = %d, want 1", i)
	}
	if i := e.TenantIndex(""); i != 0 {
		t.Errorf("TenantIndex(\"\") = %d, want 0 (default)", i)
	}
	if i := e.TenantIndex("nobody"); i != 0 {
		t.Errorf("TenantIndex(unknown) = %d, want 0 (degrade to default)", i)
	}
}

// TestTenantDefaultWeightOverride pins that a config entry named
// "default" re-weights the implicit tenant 0 instead of adding a row.
func TestTenantDefaultWeightOverride(t *testing.T) {
	e := mustNew(t, Config{Workers: 1, Tenants: []TenantConfig{
		{Name: DefaultTenant, Weight: 3},
		{Name: "gold", Weight: 4},
	}})
	defer e.Close()
	if got := e.Tenants(); len(got) != 2 {
		t.Fatalf("tenant list = %v, want 2 entries", got)
	}
	s := e.Stats()
	if len(s.Tenants) != 2 || s.Tenants[0].Name != DefaultTenant || s.Tenants[0].Weight != 3 {
		t.Fatalf("stats rows = %+v, want default with weight 3 first", s.Tenants)
	}
}

// TestTenantStatsAttribution runs real jobs under two tenants and checks
// the per-tenant rows slice the global counters correctly — and that a
// single-tenant engine emits no rows at all, keeping legacy STATS frames
// byte-identical.
func TestTenantStatsAttribution(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 2, Tenants: []TenantConfig{{Name: "gold", Weight: 4}}})
	defer e.Close()

	gold := e.TenantIndex("gold")
	const perTenant = 6
	run := func(tenant int) {
		for n := 0; n < perTenant; n++ {
			l := loops[n%len(loops)]
			h, err := e.SubmitAsyncIntoTenant(l, nil, tenant)
			if err != nil {
				t.Fatal(err)
			}
			res := h.Wait()
			assertMatches(t, l.Name, res.Values, refs[n%len(loops)])
		}
	}
	run(0)
	run(gold)

	s := e.Stats()
	if len(s.Tenants) != 2 {
		t.Fatalf("got %d tenant rows, want 2", len(s.Tenants))
	}
	var totalJobs uint64
	for _, row := range s.Tenants {
		if row.Jobs != perTenant {
			t.Errorf("tenant %s: %d jobs, want %d", row.Name, row.Jobs, perTenant)
		}
		if row.Batches == 0 || row.Batches > row.Jobs {
			t.Errorf("tenant %s: %d batches for %d jobs", row.Name, row.Batches, row.Jobs)
		}
		if row.QueueWait.Count == 0 {
			t.Errorf("tenant %s: queue-wait histogram never observed", row.Name)
		}
		totalJobs += row.Jobs
	}
	if totalJobs != s.Jobs {
		t.Errorf("tenant rows sum to %d jobs, engine counted %d", totalJobs, s.Jobs)
	}

	single := mustNew(t, Config{Workers: 1})
	defer single.Close()
	if _, err := single.Submit(loops[0]); err != nil {
		t.Fatal(err)
	}
	if rows := single.Stats().Tenants; len(rows) != 0 {
		t.Fatalf("single-tenant engine emitted %d tenant rows, want none", len(rows))
	}
}

// TestTenantStatsMerge pins the cross-node aggregation the gateway runs:
// rows merge by name, weights survive zero-valued sides, and unmatched
// rows append.
func TestTenantStatsMerge(t *testing.T) {
	a := Stats{Tenants: []TenantStats{
		{Name: "default", Weight: 1, Jobs: 10},
		{Name: "gold", Weight: 4, Jobs: 5, Busy: 2},
	}}
	b := Stats{Tenants: []TenantStats{
		{Name: "gold", Jobs: 7, Busy: 1},
		{Name: "bronze", Weight: 2, Jobs: 3},
	}}
	a.Merge(b)
	if len(a.Tenants) != 3 {
		t.Fatalf("merged to %d rows, want 3", len(a.Tenants))
	}
	byName := map[string]TenantStats{}
	for _, row := range a.Tenants {
		byName[row.Name] = row
	}
	if g := byName["gold"]; g.Jobs != 12 || g.Busy != 3 || g.Weight != 4 {
		t.Errorf("gold merged to %+v, want jobs 12, busy 3, weight 4", g)
	}
	if br := byName["bronze"]; br.Jobs != 3 || br.Weight != 2 {
		t.Errorf("bronze appended as %+v", br)
	}
}

// TestTenantFusionScoped pins that batch fusion never crosses tenants:
// the same fingerprint under two tenants opens two batches (isolation
// would leak through a shared batch — one tenant's jobs riding another's
// scheduling credit).
func TestTenantFusionScoped(t *testing.T) {
	co := newCoalescer(4, 8, false)
	l := workloads.MixedSet(0.1)[0]
	fp := l.Fingerprint()
	j0 := &job{loop: l}
	j1 := &job{loop: l}
	j2 := &job{loop: l}
	if _, isNew := co.add(fp, 0, j0); !isNew {
		t.Fatal("first add under tenant 0 did not open a batch")
	}
	if _, isNew := co.add(fp, 1, j1); !isNew {
		t.Fatal("same fingerprint under tenant 1 fused into tenant 0's batch")
	}
	if b, isNew := co.add(fp, 0, j2); isNew {
		t.Fatal("same tenant, same fingerprint did not fuse")
	} else if b.tenant != 0 {
		t.Fatalf("fused batch carries tenant %d, want 0", b.tenant)
	}
}
