package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// ErrSessionClosed reports a delta application against a session that
// was closed (or evicted by the server's session store). The caller
// never gets a stale sum — the only recovery is re-opening.
var ErrSessionClosed = errors.New("engine: session closed")

// Session is a server-resident streaming reduction: a loop registered
// once, then updated by delta batches whose rolling results recompute
// only the touched segments (reduction.DeltaState). Session executions
// ride the same worker queue as one-shot jobs but are deliberately kept
// out of the adaptive machinery: no decision cache, no coalescing, and
// — like simplified runs — no drift-detector cost samples, since an
// incremental apply's cost says nothing about the full loop's scheme.
//
// A Session serializes its own operations: concurrent Apply calls queue
// on the session mutex, and Close waits for the in-flight one, so a
// result can never mix two generations.
type Session struct {
	e      *Engine
	tenant int // scheduler index recorded at open; every apply queues under it

	mu     sync.Mutex
	st     *reduction.DeltaState
	gen    uint64
	closed bool
}

// sessionWork is one session operation riding the worker queue inside a
// batch (batch.sess). The worker computes and answers on done.
type sessionWork struct {
	s        *Session
	loop     *trace.Loop // open only: the loop to register
	segIters int         // open only: 0 picks the default width
	deltas   []reduction.RefDelta
	dst      []float64
	open     bool
	done     chan sessionOutcome
}

type sessionOutcome struct {
	res Result
	err error
}

// OpenSession registers l as a streaming session: a worker deep-copies
// the loop, computes every segment's partial sum, and combines the
// initial reduction into dst (reused when its capacity suffices, like
// SubmitInto). segIters <= 0 picks the default segment width for the
// engine's processor count. The returned Result carries SessionGen 1.
func (e *Engine) OpenSession(l *trace.Loop, segIters int, dst []float64) (*Session, Result, error) {
	return e.OpenSessionTenant(l, segIters, dst, 0)
}

// OpenSessionTenant is OpenSession on behalf of a tenant (an index from
// TenantIndex; out-of-range degrades to the default tenant). The open
// and every later Apply queue on the tenant's FIFO, so resident sessions
// are scheduled under the same weights as one-shot jobs.
func (e *Engine) OpenSessionTenant(l *trace.Loop, segIters int, dst []float64, tenant int) (*Session, Result, error) {
	if l == nil {
		return nil, Result{}, errors.New("engine: nil loop")
	}
	if l.NumElems <= 0 {
		return nil, Result{}, fmt.Errorf("engine: loop %q has non-positive NumElems", l.Name)
	}
	if tenant < 0 || tenant >= len(e.tenants) {
		tenant = 0
	}
	s := &Session{e: e, tenant: tenant}
	sw := &sessionWork{
		s:        s,
		loop:     l,
		segIters: segIters,
		dst:      sizeDst(dst, l.NumElems),
		open:     true,
		done:     make(chan sessionOutcome, 1),
	}
	if err := e.enqueueSession(sw); err != nil {
		return nil, Result{}, err
	}
	out := <-sw.done
	if out.err != nil {
		return nil, Result{}, out.err
	}
	return s, out.res, nil
}

// Apply streams one delta batch into the session and reads the rolling
// reduction into dst (reused when its capacity suffices). An empty
// batch is a pure read. Apply after Close (or eviction) returns
// ErrSessionClosed.
func (s *Session) Apply(deltas []reduction.RefDelta, dst []float64) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{}, ErrSessionClosed
	}
	sw := &sessionWork{
		s:      s,
		deltas: deltas,
		dst:    sizeDst(dst, s.st.Loop().NumElems),
		done:   make(chan sessionOutcome, 1),
	}
	if err := s.e.enqueueSession(sw); err != nil {
		return Result{}, err
	}
	out := <-sw.done
	return out.res, out.err
}

// Close retires the session and frees its resident state. It waits for
// an in-flight Apply to finish first (the session mutex serializes
// them), so a concurrent caller either completes against live state or
// observes ErrSessionClosed — never a partial teardown. Close is
// idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.st = nil
	return nil
}

// Gen returns the session's generation: 1 after open, +1 per apply.
func (s *Session) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Bytes reports the session's resident footprint (0 once closed) — the
// figure the server's session store charges against its memory budget.
func (s *Session) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		return 0
	}
	return s.st.Bytes()
}

// enqueueSession submits one session operation to the worker queue,
// mirroring SubmitAsyncInto's close handling. Session batches bypass the
// coalescer: they carry resident state, so there is nothing to fuse.
func (e *Engine) enqueueSession(sw *sessionWork) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.q.push(sw.s.tenant, &batch{sess: sw, tenant: sw.s.tenant, enq: time.Now()})
	return nil
}

// runSession executes one session operation on a worker: the open path
// builds the DeltaState (full compute), the delta path recomputes only
// touched segments. Both combine into the caller's destination and bump
// the generation. Session results never feed lookup, recordCost or the
// coalescer — the drift-detector exclusion the simplified path also has,
// here by construction.
func (e *Engine) runSession(w *workerCtx, sw *sessionWork, qw time.Duration) {
	procs := e.cfg.Platform.Procs
	start := time.Now()
	var stats reduction.SegRunStats
	var err error
	if sw.open {
		sw.s.st, err = reduction.NewDeltaState(sw.loop, sw.segIters, procs, w.ex, sw.dst)
		if err == nil {
			stats.Computed = sw.s.st.Segments()
		}
	} else {
		stats, err = sw.s.st.Apply(sw.deltas, procs, w.ex, sw.dst)
	}
	if err != nil {
		sw.done <- sessionOutcome{err: err}
		return
	}
	elapsed := time.Since(start)
	w.stats.stages.Observe(obs.StageExecute, elapsed)
	w.stats.recordSession(sw.open, stats.Computed, stats.Reused)
	// The caller holds the session mutex across the whole round trip, so
	// this generation bump never races another operation on the session.
	sw.s.gen++
	sw.done <- sessionOutcome{res: Result{
		Values:     sw.dst,
		Scheme:     "session",
		Why:        "incremental delta re-reduction over resident segments",
		BatchSize:  1,
		Elapsed:    elapsed,
		QueueWait:  qw,
		SessionGen: sw.s.gen,
	}}
}
