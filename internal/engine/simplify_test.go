package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/reduction"
	"repro/internal/trace"
)

// simpLoop builds a dense random loop sized so the simplification
// boundary accepts it: the reference stream (iters*rpi) dwarfs the
// output dimension. rpi must divide the fingerprint sample stride
// evenly for mutateKeepingFingerprint to work (any rpi does; the helper
// recomputes the stride from the loop).
func simpLoop(name string, dim, iters, rpi int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop(name, dim)
	refs := make([]int32, rpi)
	for i := 0; i < iters; i++ {
		for j := range refs {
			refs[j] = int32(rng.Intn(dim))
		}
		l.AddIter(refs...)
	}
	return l
}

// mutateKeepingFingerprint clones l and re-randomizes the subscript
// content of every segment for which keep(s) is false — except at the
// fingerprint's sample positions, which stay anchored so both loops
// carry the same fingerprint and land on the same decision-cache entry
// (the drift-stream construction).
func mutateKeepingFingerprint(t *testing.T, l *trace.Loop, segIters int, seed int64, keep func(s int) bool) *trace.Loop {
	t.Helper()
	c := l.Clone()
	offs, refs := c.Flat()
	iters := c.NumIters()
	segs := (iters + segIters - 1) / segIters
	stride := len(refs) / 256
	if stride < 1 {
		stride = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < segs; s++ {
		if keep(s) {
			continue
		}
		itHi := (s + 1) * segIters
		if itHi > iters {
			itHi = iters
		}
		for r := int(offs[s*segIters]); r < int(offs[itHi]); r++ {
			if r%stride == 0 {
				continue
			}
			refs[r] = int32(rng.Intn(c.NumElems))
		}
	}
	if c.Fingerprint() != l.Fingerprint() {
		t.Fatal("mutation broke the fingerprint anchor")
	}
	return c
}

// simpWorker builds a workerCtx over the engine's pool and stat shard 0,
// for driving runBatch directly (no queue timing involved).
func simpWorker(e *Engine) *workerCtx {
	return &workerCtx{
		ex:    &reduction.Exec{Pool: e.pool},
		times: make([]float64, e.cfg.Platform.Procs),
		stats: &e.statShards[0],
	}
}

// overlapBatch hand-builds a sealed-ready batch: one leader job plus one
// overlap job per extra loop, the shape the coalescer produces when
// distinct same-fingerprint loops fuse.
func overlapBatch(t *testing.T, e *Engine, loops []*trace.Loop) (*batch, []*job) {
	t.Helper()
	jobs := make([]*job, len(loops))
	for i, l := range loops {
		jobs[i] = &job{loop: l, dst: make([]float64, l.NumElems), done: make(chan Result, 1)}
	}
	b := &batch{fp: loops[0].Fingerprint(), allowOv: true, jobs: []*job{jobs[0]}}
	for _, j := range jobs[1:] {
		if !b.tryJoin(j, e.cfg.MaxBatch) {
			t.Fatal("overlap member failed to join")
		}
	}
	if len(b.ov) != len(loops)-1 {
		t.Fatalf("overlap members = %d, want %d", len(b.ov), len(loops)-1)
	}
	return b, jobs
}

// TestEngineSimplifiedOverlapBatch runs a full-overlap batch (leader
// plus three clones) through runBatch: it must execute as one simplified
// plan, produce correct results for every member, and seed the entry's
// segment cache so a later singleton submission reuses every segment.
func TestEngineSimplifiedOverlapBatch(t *testing.T) {
	const dim, iters, rpi = 512, 256, 16
	l := simpLoop("simp", dim, iters, rpi, 1)
	want := l.RunSequential()
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()

	loops := []*trace.Loop{l, l.Clone(), l.Clone(), l.Clone()}
	b, jobs := overlapBatch(t, e, loops)
	e.runBatch(simpWorker(e), b)
	for i, j := range jobs {
		res := <-j.done
		if res.Scheme != "simplify" {
			t.Fatalf("member %d ran %s, want simplify (%s)", i, res.Scheme, res.Why)
		}
		if res.BatchSize != len(loops) {
			t.Errorf("member %d BatchSize = %d, want %d", i, res.BatchSize, len(loops))
		}
		if i > 0 && !res.CacheHit {
			t.Errorf("member %d not reported as cache hit", i)
		}
		assertMatches(t, "overlap", res.Values, want)
	}
	s := e.Stats()
	if s.SimplifiedBatches != 1 || s.SimplifyFallbacks != 0 {
		t.Fatalf("simplified/fallbacks = %d/%d, want 1/0", s.SimplifiedBatches, s.SimplifyFallbacks)
	}
	// Full overlap: one partial sum per segment, none cached yet.
	if s.SegsComputed != 8 || s.SegsReused != 0 {
		t.Fatalf("computed/reused = %d/%d, want 8/0", s.SegsComputed, s.SegsReused)
	}
	if s.Jobs != 4 || s.Batches != 1 || s.Coalesced != 3 {
		t.Fatalf("jobs/batches/coalesced = %d/%d/%d, want 4/1/3", s.Jobs, s.Batches, s.Coalesced)
	}

	// The batch seeded the segment cache: a singleton re-submission of
	// the same content reuses every segment sum.
	res, err := e.Submit(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "simplify" {
		t.Fatalf("warm singleton ran %s, want simplify (%s)", res.Scheme, res.Why)
	}
	assertMatches(t, "warm", res.Values, want)
	s = e.Stats()
	if s.SegsReused != 8 || s.SegsComputed != 8 {
		t.Fatalf("after warm singleton computed/reused = %d/%d, want 8/8", s.SegsComputed, s.SegsReused)
	}
}

// TestEngineSimplifyIncremental is the drift-stream property at the
// engine level: a singleton stream that mutates one segment between
// submissions recomputes only that segment once its cache is seeded.
func TestEngineSimplifyIncremental(t *testing.T) {
	const dim, iters, rpi = 512, 256, 16
	segIters := reduction.DefaultSegIters(iters, 8)
	l := simpLoop("inc", dim, iters, rpi, 2)
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()

	// Submissions 1..segSeedAfter-1 run direct while segSeen climbs; the
	// seeding submission executes simplified to fill the cache.
	for n := 0; n < segSeedAfter; n++ {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		seeding := n == segSeedAfter-1
		if simplified := res.Scheme == "simplify"; simplified != seeding {
			t.Fatalf("submission %d ran %s", n, res.Scheme)
		}
	}
	base := e.Stats()
	if base.SimplifiedBatches != 1 {
		t.Fatalf("SimplifiedBatches = %d after seeding, want 1", base.SimplifiedBatches)
	}

	// Mutate only segment 3; the rest must come from the cache.
	drift := mutateKeepingFingerprint(t, l, segIters, 99, func(s int) bool { return s != 3 })
	res, err := e.Submit(drift)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "simplify" {
		t.Fatalf("drift submission ran %s, want simplify (%s)", res.Scheme, res.Why)
	}
	assertMatches(t, "drift", res.Values, drift.RunSequential())
	s := e.Stats()
	if got := s.SegsComputed - base.SegsComputed; got != 1 {
		t.Errorf("drift submission computed %d segments, want 1", got)
	}
	if got := s.SegsReused - base.SegsReused; got != 7 {
		t.Errorf("drift submission reused %d segments, want 7", got)
	}
}

// TestEngineSimplifyFallbackDisjoint fuses four same-fingerprint loops
// with (near-)fully disjoint content: the analysis finds no sharing, the
// boundary declines, and every group falls back to a correct direct
// execution under the cached decision.
func TestEngineSimplifyFallbackDisjoint(t *testing.T) {
	const dim, iters, rpi = 512, 256, 16
	segIters := reduction.DefaultSegIters(iters, 8)
	l := simpLoop("disjoint", dim, iters, rpi, 3)
	loops := []*trace.Loop{l}
	for m := 1; m < 4; m++ {
		loops = append(loops, mutateKeepingFingerprint(t, l, segIters, int64(10+m), func(int) bool { return false }))
	}
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()

	b, jobs := overlapBatch(t, e, loops)
	e.runBatch(simpWorker(e), b)
	for i, j := range jobs {
		res := <-j.done
		if res.Scheme == "simplify" {
			t.Fatalf("disjoint member %d ran simplified", i)
		}
		if i > 0 && !res.CacheHit {
			t.Errorf("overlap member %d not reported as cache hit", i)
		}
		assertMatches(t, loops[i].Name, res.Values, loops[i].RunSequential())
	}
	s := e.Stats()
	if s.SimplifyFallbacks != 1 || s.SimplifiedBatches != 0 {
		t.Fatalf("fallbacks/simplified = %d/%d, want 1/0", s.SimplifyFallbacks, s.SimplifiedBatches)
	}
	// One queue batch, four per-group executions: the occupancy ledger
	// still accounts every job exactly once.
	if s.Jobs != 4 || s.Coalesced != s.Jobs-s.Batches {
		t.Fatalf("jobs/batches/coalesced = %d/%d/%d", s.Jobs, s.Batches, s.Coalesced)
	}
}

// TestEngineSimplifyDisabled pins the opt-out: with DisableSimplify no
// batch ever runs simplified and no cache is seeded, no matter how often
// a seed-worthy pattern repeats.
func TestEngineSimplifyDisabled(t *testing.T) {
	l := simpLoop("off", 512, 256, 16, 4)
	want := l.RunSequential()
	e := mustNew(t, Config{Workers: 1, DisableSimplify: true})
	defer e.Close()
	for n := 0; n < segSeedAfter+2; n++ {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scheme == "simplify" {
			t.Fatalf("submission %d ran simplified with the layer disabled", n)
		}
		assertMatches(t, "off", res.Values, want)
	}
	s := e.Stats()
	if s.SimplifiedBatches != 0 || s.SimplifyFallbacks != 0 {
		t.Fatalf("simplify counters moved while disabled: %d/%d", s.SimplifiedBatches, s.SimplifyFallbacks)
	}
}

// TestEngineSimplifyMissShutoff drives consecutive declined analyses
// past segMissLimit: the layer must stop analyzing (fallback counter
// freezes) instead of paying the sweep on every batch forever.
func TestEngineSimplifyMissShutoff(t *testing.T) {
	const dim, iters, rpi = 512, 256, 16
	segIters := reduction.DefaultSegIters(iters, 8)
	l := simpLoop("missy", dim, iters, rpi, 5)
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()

	for n := 0; n < segMissLimit+3; n++ {
		loops := []*trace.Loop{l}
		for m := 1; m < 4; m++ {
			loops = append(loops, mutateKeepingFingerprint(t, l, segIters, int64(100*n+m), func(int) bool { return false }))
		}
		b, jobs := overlapBatch(t, e, loops)
		e.runBatch(simpWorker(e), b)
		for _, j := range jobs {
			<-j.done
		}
	}
	s := e.Stats()
	if s.SimplifyFallbacks != segMissLimit {
		t.Fatalf("fallbacks = %d, want shutoff at %d", s.SimplifyFallbacks, segMissLimit)
	}
	if s.SimplifiedBatches != 0 {
		t.Fatalf("SimplifiedBatches = %d, want 0", s.SimplifiedBatches)
	}
}

// TestEngineSimplifyValuesMatchDirect cross-checks the two execution
// paths end to end: the same overlap batch produces (tolerance-equal)
// results with the layer on and off.
func TestEngineSimplifyValuesMatchDirect(t *testing.T) {
	const dim, iters, rpi = 512, 256, 16
	segIters := reduction.DefaultSegIters(iters, 8)
	l := simpLoop("xcheck", dim, iters, rpi, 6)
	loops := []*trace.Loop{l}
	for m := 1; m < 5; m++ {
		keepUpTo := 8 - m
		loops = append(loops, mutateKeepingFingerprint(t, l, segIters, int64(40+m), func(s int) bool { return s < keepUpTo }))
	}
	for _, disable := range []bool{false, true} {
		e := mustNew(t, Config{Workers: 1, DisableSimplify: disable})
		b, jobs := overlapBatch(t, e, loops)
		e.runBatch(simpWorker(e), b)
		for i, j := range jobs {
			res := <-j.done
			assertMatches(t, loops[i].Name, res.Values, loops[i].RunSequential())
			if math.IsNaN(res.Values[0]) {
				t.Fatal("NaN result")
			}
		}
		e.Close()
	}
}
