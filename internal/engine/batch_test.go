package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/reduction"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := []Config{
		{Workers: -1},
		{Platform: core.Platform{Procs: 65}},
		{Platform: core.Platform{Procs: -2}},
		{SampleStride: -1},
		{QueueDepth: -3},
		{MaxCacheEntries: -1},
		{CacheShards: -4},
		{MaxBatch: -2},
	}
	for i, cfg := range bad {
		if e, err := New(cfg); err == nil {
			e.Close()
			t.Errorf("config %d: invalid config accepted", i)
		}
	}
	// CacheShards rounds up to a power of two.
	e := mustNew(t, Config{Workers: 1, CacheShards: 3})
	defer e.Close()
	if got := e.cfg.CacheShards; got != 4 {
		t.Errorf("CacheShards = %d, want 4", got)
	}
}

// TestSubmitIntoAliasesDst verifies the unbatched path returns the
// caller's array when its capacity suffices.
func TestSubmitIntoAliasesDst(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 1, DisableCoalesce: true})
	defer e.Close()
	for i, l := range loops {
		dst := make([]float64, l.NumElems)
		res, err := e.SubmitInto(l, dst)
		if err != nil {
			t.Fatal(err)
		}
		if &res.Values[0] != &dst[0] {
			t.Errorf("%s: result does not alias dst", l.Name)
		}
		assertMatches(t, l.Name, res.Values, refs[i])
	}
}

// TestRunBatchAliasesAndMatches drives the fused execution path directly
// (no queue timing involved): every member's result must alias its own
// destination when capacity suffices and match the sequential reference.
func TestRunBatchAliasesAndMatches(t *testing.T) {
	loops, refs := mixedLoops()
	l, want := loops[0], refs[0]
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()
	w := &workerCtx{
		ex:    &reduction.Exec{Pool: e.pool},
		times: make([]float64, e.cfg.Platform.Procs),
		stats: &e.statShards[0],
	}

	const members = 4
	fp := l.Fingerprint()
	b := &batch{fp: fp}
	jobs := make([]*job, members)
	dsts := make([][]float64, members)
	for i := range jobs {
		dsts[i] = make([]float64, l.NumElems)
		jobs[i] = &job{loop: l, dst: dsts[i], done: make(chan Result, 1)}
		if i == 0 {
			b.jobs = []*job{jobs[0]}
		} else if !b.tryJoin(jobs[i], e.cfg.MaxBatch) {
			t.Fatalf("member %d failed to join open batch", i)
		}
	}
	e.runBatch(w, b)
	for i, j := range jobs {
		res := <-j.done
		if res.BatchSize != members {
			t.Errorf("member %d: BatchSize = %d, want %d", i, res.BatchSize, members)
		}
		if &res.Values[0] != &dsts[i][0] {
			t.Errorf("member %d: result does not alias its dst", i)
		}
		if i > 0 && !res.CacheHit {
			t.Errorf("member %d: fused member not reported as cache hit", i)
		}
		assertMatches(t, l.Name, res.Values, want)
	}
	// A sealed batch refuses late joiners.
	if b.tryJoin(&job{loop: l, done: make(chan Result, 1)}, e.cfg.MaxBatch) {
		t.Error("sealed batch accepted a join")
	}
	s := e.Stats()
	if s.Jobs != members || s.Batches != 1 || s.Coalesced != members-1 {
		t.Errorf("stats jobs/batches/coalesced = %d/%d/%d, want %d/1/%d",
			s.Jobs, s.Batches, s.Coalesced, members, members-1)
	}
	if s.BatchOccupancy[members] != 1 {
		t.Errorf("occupancy[%d] = %d, want 1", members, s.BatchOccupancy[members])
	}
}

// TestEngineCoalescesUnderBacklog submits a long-running plug job to the
// single worker, then a burst of identical hot jobs: while the plug
// executes, the hot jobs must fuse into a queued batch, and every fused
// result must alias its own destination and match the reference.
func TestEngineCoalescesUnderBacklog(t *testing.T) {
	plug := workloads.Generate("plug", workloads.PatternSpec{
		Dim: 200000, SPPercent: 60, CHR: 1.0, MO: 2, Locality: 0.5, Work: 10, Seed: 7,
	}, 1)
	hot := workloads.Generate("hot", workloads.PatternSpec{
		Dim: 2000, SPPercent: 50, CHR: 0.5, MO: 2, Locality: 0.5, Work: 4, Seed: 8,
	}, 1)
	want := hot.RunSequential()

	e := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	defer e.Close()
	plugH, err := e.SubmitAsync(plug)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 6
	handles := make([]*Handle, burst)
	dsts := make([][]float64, burst)
	for i := range handles {
		dsts[i] = make([]float64, hot.NumElems)
		if handles[i], err = e.SubmitAsyncInto(hot, dsts[i]); err != nil {
			t.Fatal(err)
		}
	}
	plugH.Wait()
	for i, h := range handles {
		res := h.Wait()
		if &res.Values[0] != &dsts[i][0] {
			t.Errorf("hot %d: result does not alias its dst", i)
		}
		assertMatches(t, "hot", res.Values, want)
	}
	s := e.Stats()
	if s.Jobs != burst+1 {
		t.Errorf("jobs = %d, want %d", s.Jobs, burst+1)
	}
	if s.Coalesced != s.Jobs-s.Batches {
		t.Errorf("coalesced %d != jobs %d - batches %d", s.Coalesced, s.Jobs, s.Batches)
	}
	if s.Coalesced == 0 {
		t.Error("no jobs coalesced while the worker was plugged")
	}
	var occJobs uint64
	for k, v := range s.BatchOccupancy {
		occJobs += uint64(k) * v
	}
	if occJobs != s.Jobs {
		t.Errorf("occupancy histogram accounts %d jobs, want %d", occJobs, s.Jobs)
	}
}

// TestSubmitRacingClose hammers Submit from many goroutines while Close
// runs (exercised under -race in CI): every call must either return a
// correct result or ErrClosed, never anything else.
func TestSubmitRacingClose(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 2})
	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*64)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; ; n++ {
				i := (g + n) % len(loops)
				res, err := e.Submit(loops[i])
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errs <- "unexpected error: " + err.Error()
					}
					return
				}
				assertClose(errs, loops[i].Name, res.Values, refs[i])
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	e.Close()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if _, err := e.Submit(loops[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Submit error = %v, want ErrClosed", err)
	}
}

// assertClose reports a mismatch through the error channel (test helpers
// must not call t.Fatal off the test goroutine).
func assertClose(errs chan<- string, name string, got, want []float64) {
	if len(got) != len(want) {
		errs <- name + ": result length mismatch"
		return
	}
	for i := range want {
		diff := got[i] - want[i]
		if diff < 0 {
			diff = -diff
		}
		mag := want[i]
		if mag < 0 {
			mag = -mag
		}
		if diff > 1e-9*(1+mag) {
			errs <- name + ": result mismatch"
			return
		}
	}
}

// TestCacheEvictionCLOCK runs a deterministic reference string against a
// 2-entry single-shard cache: CLOCK must keep the repeatedly-hit pattern
// resident and evict the cold ones.
func TestCacheEvictionCLOCK(t *testing.T) {
	loops, _ := mixedLoops()
	A, B, C := loops[0], loops[1], loops[2]
	e := mustNew(t, Config{Workers: 1, CacheShards: 1, MaxCacheEntries: 2, DisableCoalesce: true})
	defer e.Close()
	for _, l := range []*trace.Loop{A, B, A, C, A, B} {
		if _, err := e.Submit(l); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	// A B A C A B: A misses once then always hits (its referenced bit
	// saves it from both sweeps); B and C evict each other.
	if s.CacheMisses != 4 || s.CacheHits != 2 {
		t.Errorf("misses/hits = %d/%d, want 4/2", s.CacheMisses, s.CacheHits)
	}
	if s.CacheEvictions != 2 {
		t.Errorf("evictions = %d, want 2", s.CacheEvictions)
	}
	if s.CacheEntries != 2 {
		t.Errorf("entries = %d, want 2", s.CacheEntries)
	}
}

// TestSubmitAsyncPipelining pipelines a stream of submissions from one
// client before collecting any result.
func TestSubmitAsyncPipelining(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 2})
	defer e.Close()
	const n = 24
	handles := make([]*Handle, n)
	var err error
	for i := range handles {
		if handles[i], err = e.SubmitAsync(loops[i%len(loops)]); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range handles {
		res := h.Wait()
		assertMatches(t, loops[i%len(loops)].Name, res.Values, refs[i%len(loops)])
		if res.BatchSize < 1 {
			t.Errorf("handle %d: BatchSize = %d", i, res.BatchSize)
		}
		// Wait is idempotent.
		if again := h.Wait(); &again.Values[0] != &res.Values[0] {
			t.Errorf("handle %d: second Wait returned a different result", i)
		}
	}
	s := e.Stats()
	if s.Jobs != n {
		t.Errorf("jobs = %d, want %d", s.Jobs, n)
	}
}
