package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// recalConfig is the deterministic recalibration shape the tests run
// under: one worker (batches execute in submission order), a huge
// DriftRatio so wall-clock noise cannot mark entries stale (only the
// periodic re-profile can), a short re-profile period and the default
// hysteresis depth of 2.
func recalConfig() Config {
	return Config{
		Workers:    1,
		Platform:   core.DefaultPlatform(8),
		DriftRatio: 1e9,
		RecalEvery: 4,
	}
}

// TestRecalSwitchesSchemeAfterDrift is the tentpole's acceptance test: a
// decision cached in one phase is re-inspected and switched once the
// same-fingerprint traffic's pattern has drifted into another scheme's
// regime — and every result stays correct throughout, because all
// library schemes compute the same reduction.
func TestRecalSwitchesSchemeAfterDrift(t *testing.T) {
	ds := workloads.NewDriftStream(1, 2, 1, 1.4, 0.5, 1)
	sparse, dense := ds.Phases[0][0], ds.Phases[1][0]
	wantSparse, wantDense := sparse.RunSequential(), dense.RunSequential()

	e := mustNew(t, recalConfig())
	defer e.Close()

	// Phase 0: the entry decides hash on the sparse pattern.
	for i := 0; i < 3; i++ {
		res, err := e.Submit(sparse)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scheme != "hash" {
			t.Fatalf("sparse phase submission %d ran %s, want hash", i, res.Scheme)
		}
		assertMatches(t, "sparse", res.Values, wantSparse)
	}

	// Phase shift: the dense variant shares the fingerprint, so every
	// submission hits the old entry. The entry has 3 executions behind
	// it, so RecalEvery=4 re-profiles on the first post-shift execution,
	// marking it stale; the two following batches re-inspect (hysteresis
	// 2) and the second one switches. From then on the entry serves ll.
	schemes := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		res, err := e.Submit(dense)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatalf("dense submission %d missed the cache: fingerprint drifted, scenario broken", i)
		}
		assertMatches(t, "dense", res.Values, wantDense)
		schemes = append(schemes, res.Scheme)
	}
	switched := -1
	for i, s := range schemes {
		if s == "ll" {
			switched = i
			break
		}
		if s != "hash" {
			t.Fatalf("submission %d ran %s, want hash (pre-switch) or ll (post)", i, s)
		}
	}
	if switched < 0 {
		t.Fatalf("entry never switched scheme across 12 drifted submissions: %v", schemes)
	}
	for i := switched; i < len(schemes); i++ {
		if schemes[i] != "ll" {
			t.Fatalf("submission %d ran %s after the switch at %d: thrashing", i, schemes[i], switched)
		}
	}
	// Re-profile on post-shift submission 0 (the entry's 4th execution),
	// then hysteresis needs 2 re-inspections: submissions 1 and 2. The
	// schedule is deterministic with one worker.
	if switched != 2 {
		t.Fatalf("switch landed at submission %d, want 2 (re-profile, then 2 hysteresis confirmations)", switched)
	}

	s := e.Stats()
	if s.SchemeSwitches != 1 {
		t.Fatalf("SchemeSwitches = %d, want 1", s.SchemeSwitches)
	}
	if s.Recalibrations < 2 {
		t.Fatalf("Recalibrations = %d, want >= 2 (hysteresis re-inspections)", s.Recalibrations)
	}
	if s.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1 (both phases share the entry)", s.CacheEntries)
	}
}

// TestRecalHysteresisDepth pins the confirmation count: with
// RecalConfirm=3, the stale entry keeps executing its old scheme through
// the first two re-inspections and switches only on the third.
func TestRecalHysteresisDepth(t *testing.T) {
	ds := workloads.NewDriftStream(1, 2, 1, 1.4, 0.5, 2)
	sparse, dense := ds.Phases[0][0], ds.Phases[1][0]

	cfg := recalConfig()
	cfg.RecalConfirm = 3
	e := mustNew(t, cfg)
	defer e.Close()

	for i := 0; i < 3; i++ {
		if _, err := e.Submit(sparse); err != nil {
			t.Fatal(err)
		}
	}
	// Post-shift: the warm phase left the entry 3 executions in, so the
	// re-profile fires on post-shift submission 1 (still hash);
	// re-inspections run on submissions 2, 3 and 4, and only the third
	// confirmation switches — submission 4 is the first on ll.
	for i := 1; i <= 12; i++ {
		res, err := e.Submit(dense)
		if err != nil {
			t.Fatal(err)
		}
		want := "hash"
		if i >= 4 {
			want = "ll"
		}
		if res.Scheme != want {
			t.Fatalf("post-shift submission %d ran %s, want %s", i, res.Scheme, want)
		}
	}
	if s := e.Stats(); s.SchemeSwitches != 1 || s.Recalibrations != 3 {
		t.Fatalf("switches/recals = %d/%d, want 1/3", s.SchemeSwitches, s.Recalibrations)
	}
}

// TestRecalNoDriftNoSwitch is the control: steady same-pattern traffic
// across many re-profile periods must never switch schemes — periodic
// re-profiles of an undrifted pattern revalidate, and hysteresis means
// even a spurious staleness could not flip the scheme without a
// genuinely changed recommendation.
func TestRecalNoDriftNoSwitch(t *testing.T) {
	ds := workloads.NewDriftStream(1, 1, 1, 1.4, 0.5, 3)
	l := ds.Phases[0][0]
	want := l.RunSequential()

	e := mustNew(t, recalConfig()) // RecalEvery=4: many periods below
	defer e.Close()

	for i := 0; i < 40; i++ {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scheme != "hash" {
			t.Fatalf("submission %d ran %s, want hash throughout", i, res.Scheme)
		}
		assertMatches(t, l.Name, res.Values, want)
	}
	s := e.Stats()
	if s.SchemeSwitches != 0 {
		t.Fatalf("SchemeSwitches = %d on undrifted traffic, want 0", s.SchemeSwitches)
	}
	if s.Recalibrations != 0 {
		t.Fatalf("Recalibrations = %d on undrifted traffic, want 0 (re-profiles must revalidate silently)", s.Recalibrations)
	}
}

// TestRecalDisabled: with DisableRecal the engine is the
// pre-recalibration engine — drifted traffic keeps the stale scheme
// forever and no counters move.
func TestRecalDisabled(t *testing.T) {
	ds := workloads.NewDriftStream(1, 2, 1, 1.4, 0.5, 4)
	sparse, dense := ds.Phases[0][0], ds.Phases[1][0]

	cfg := recalConfig()
	cfg.DisableRecal = true
	e := mustNew(t, cfg)
	defer e.Close()

	for i := 0; i < 3; i++ {
		if _, err := e.Submit(sparse); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		res, err := e.Submit(dense)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scheme != "hash" {
			t.Fatalf("recal disabled but submission %d ran %s", i, res.Scheme)
		}
	}
	if s := e.Stats(); s.Recalibrations != 0 || s.SchemeSwitches != 0 {
		t.Fatalf("recal disabled but counters moved: %d/%d", s.Recalibrations, s.SchemeSwitches)
	}
}

// TestRecalCostDriftTriggersReinspection drives the EWMA path directly:
// a synthetic cost sequence diverging past DriftRatio must mark the
// entry stale, and a stale entry whose pattern still recommends the
// same scheme must revalidate (no switch).
func TestRecalCostDriftTriggersReinspection(t *testing.T) {
	ds := workloads.NewDriftStream(1, 1, 1, 1.4, 0.5, 5)
	l := ds.Phases[0][0]
	cfg := recalConfig()
	cfg.DriftRatio = 1.5
	cfg.RecalEvery = 1 << 30 // periodic re-profile effectively off
	e := mustNew(t, cfg)
	defer e.Close()

	entry, _ := e.lookup(l, l.Fingerprint())
	// Anchor at ~1000ns over the seed executions, then feed a cost
	// plateau 10x higher: the EWMA crosses 1.5x the anchor and the entry
	// goes stale.
	for i := 0; i < RecalSeedExecs; i++ {
		e.recordCost(entry, l, 1000, 0)
	}
	for i := 0; i < 20 && !entryStale(entry); i++ {
		e.recordCost(entry, l, 10000, 0)
	}
	if !entryStale(entry) {
		t.Fatal("10x cost plateau never marked the entry stale")
	}
	// Same pattern underneath: the re-inspection must revalidate, clear
	// staleness and re-anchor, not switch.
	reinspected, switched := e.maybeReinspect(entry, l)
	if !reinspected || switched {
		t.Fatalf("reinspected/switched = %v/%v, want true/false", reinspected, switched)
	}
	if entryStale(entry) {
		t.Fatal("entry still stale after revalidation")
	}
}

func entryStale(en *cacheEntry) bool {
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.stale
}

// TestRecalConfigValidation rejects nonsense knobs.
func TestRecalConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{DriftRatio: -1},
		{DriftRatio: 0.5},
		{DriftRatio: 1},
		{RecalEvery: -1},
		{RecalConfirm: -2},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid recalibration config", cfg)
		}
	}
}
