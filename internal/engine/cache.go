package engine

import (
	"sync"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/sched"
	"repro/internal/trace"
)

// cacheEntry is one memoized adaptive decision. The decision fields
// (profile, conf, scheme, name, feedback, hw) are written under once.Do
// at first sight and thereafter only by the recalibration subsystem
// under mu; runBatch snapshots them under mu, in the same critical
// section that installs the feedback boundaries.
type cacheEntry struct {
	once    sync.Once
	profile *pattern.Profile
	conf    core.Configuration
	scheme  reduction.Scheme
	name    string
	// feedback reports whether the scheme honors Exec.IterBounds, i.e.
	// whether the entry's scheduler can steer it.
	feedback bool
	// hw marks a hardware (PCLR) configuration: the directory combine is
	// pattern-independent, so such entries are never recalibrated.
	hw bool

	// ref is the CLOCK referenced bit: set on every hit, cleared by the
	// eviction hand as it sweeps. Guarded by the owning shard's mutex.
	ref bool

	mu      sync.Mutex
	fb      *sched.FeedbackScheduler
	fbIters int
	// gen bumps whenever the schedule changes (a Record or a scheduler
	// swap); a measurement only applies to the boundaries it was taken
	// under, so jobs record only when gen is still the one they read.
	gen uint64

	// Drift-detector state (recal.go), guarded by mu. ewmaNs is the
	// running cost estimate, anchorNs the cost the entry stabilized at
	// after its decision (seeded once seen reaches RecalSeedExecs),
	// execs counts executions toward the next periodic re-profile,
	// stale flags the entry for re-inspection, reinspecting serializes
	// re-inspections (one batch-head at a time, so hysteresis counts
	// distinct epochs, not one instant sampled by several workers), and
	// confirm counts consecutive re-inspections that recommended
	// pending — a change of mind restarts the count.
	ewmaNs       float64
	anchorNs     float64
	seen         int
	execs        uint64
	stale        bool
	reinspecting bool
	confirm      int
	pending      string
	// decGen bumps only on scheme switches (unlike gen, which also
	// moves with every feedback Record): a batch snapshots it with the
	// decision, and recordCost drops measurements whose decision was
	// replaced while they executed — a straggler's old-scheme cost must
	// not seed the new scheme's freshly reset anchor.
	decGen uint64

	// Simplification-layer state (simplify.go), guarded by mu. segs is
	// the entry's cached segment partial sums, segGen the decGen the
	// current segment state was built under (a mismatch invalidates sums
	// and re-arms the counters), segBusy grants one worker exclusive use
	// of the cache per batch, segSeen counts seed-worthy singleton
	// batches toward the seeding threshold, and segMiss counts
	// consecutive declined analyses toward the shutoff limit.
	segs    *reduction.SegCache
	segGen  uint64
	segBusy bool
	segSeen int
	segMiss int
}

// install points the entry at the configuration's executable scheme,
// mirroring what lookup does at first sight. Callers hold mu (or are
// inside the entry's once.Do).
func (en *cacheEntry) install(conf core.Configuration) {
	if conf.UseHardware {
		// The directory hardware performs the combine; any correct
		// executor produces the loop's semantics (cf. core.Runtime).
		en.scheme = reduction.Rep{}
		en.name = "pclr-" + conf.Hardware.Controller.String()
		en.feedback = true
		en.hw = true
		return
	}
	en.scheme = adapt.SchemeFor(adapt.Recommendation{Scheme: conf.Scheme})
	en.name = conf.Scheme
	en.feedback = feedbackSchemes[conf.Scheme]
	en.hw = false
}

// decisionCache is the sharded decision cache: fingerprints map to shards
// by their low bits, each shard owns its own mutex, entry map and CLOCK
// eviction ring, so concurrent lookups of distinct patterns never contend
// on a global lock.
type decisionCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock domain of the decision cache. Eviction is CLOCK
// (second chance): resident fingerprints sit on a ring; a hit sets the
// entry's referenced bit; when the shard is full the hand sweeps the ring,
// clearing referenced bits until it finds an unreferenced victim. Hot
// entries survive indefinitely; an entry is evicted only after a full
// hand revolution without a hit — an LRU approximation with O(1) hits.
type cacheShard struct {
	mu        sync.Mutex
	entries   map[uint64]*cacheEntry
	ring      []uint64 // resident fingerprints in insertion order
	hand      int
	cap       int
	evictions uint64
}

// newDecisionCache builds shardCount shards (a power of two) splitting
// maxEntries between them.
func newDecisionCache(shardCount, maxEntries int) *decisionCache {
	perShard := (maxEntries + shardCount - 1) / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &decisionCache{
		shards: make([]cacheShard, shardCount),
		mask:   uint64(shardCount - 1),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*cacheEntry)
		c.shards[i].ring = make([]uint64, 0, perShard)
		c.shards[i].cap = perShard
	}
	return c
}

// get returns the entry for fp, creating (and, at capacity, evicting) as
// needed. The boolean reports whether the entry already existed.
func (c *decisionCache) get(fp uint64) (*cacheEntry, bool) {
	return c.shards[fp&c.mask].get(fp)
}

func (s *cacheShard) get(fp uint64) (*cacheEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[fp]; ok {
		e.ref = true
		return e, true
	}
	e := &cacheEntry{}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, fp)
	} else {
		// CLOCK sweep: give referenced entries a second chance, evict the
		// first unreferenced one. Terminates within two revolutions.
		for {
			victim := s.entries[s.ring[s.hand]]
			if victim.ref {
				victim.ref = false
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			delete(s.entries, s.ring[s.hand])
			s.evictions++
			s.ring[s.hand] = fp
			s.hand = (s.hand + 1) % len(s.ring)
			break
		}
	}
	s.entries[fp] = e
	return e, false
}

// len returns the shard's resident entry count.
func (s *cacheShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// counters returns the shard's entry count and eviction total.
func (c *decisionCache) counters() (entries int, evictions uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += len(s.entries)
		evictions += s.evictions
		s.mu.Unlock()
	}
	return entries, evictions
}

// feedbackSchemes are the partition-agnostic schemes that honor
// Exec.IterBounds; sel and lw fix their partitions in their inspectors.
var feedbackSchemes = map[string]bool{"rep": true, "ll": true, "hash": true}

// lookup returns the decision-cache entry for the loop's fingerprint,
// characterizing and deciding on first sight. The boolean reports a hit.
func (e *Engine) lookup(l *trace.Loop, fp uint64) (*cacheEntry, bool) {
	entry, ok := e.cache.get(fp)
	miss := false
	entry.once.Do(func() {
		miss = true
		prof := e.characterize(l)
		rec := adapt.Recommend(prof)
		conf := core.Configurer{Platform: e.cfg.Platform}.Configure(l, rec)
		entry.profile = prof
		entry.conf = conf
		entry.install(conf)
	})
	return entry, ok && !miss
}
