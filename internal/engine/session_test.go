package engine

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// sessionLoop builds a deterministic random loop for the session tests.
func sessionLoop(elems, iters int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("sess", elems)
	l.WorkPerIter = 10
	for i := 0; i < iters; i++ {
		l.AddIter(int32(rng.Intn(elems)), int32(rng.Intn(elems)))
	}
	return l
}

// sessionDeltas draws n sorted distinct-position updates.
func sessionDeltas(rng *rand.Rand, l *trace.Loop, n int) []reduction.RefDelta {
	seen := map[int32]bool{}
	var ds []reduction.RefDelta
	for len(ds) < n {
		p := int32(rng.Intn(l.TotalRefs()))
		if seen[p] {
			continue
		}
		seen[p] = true
		ds = append(ds, reduction.RefDelta{Pos: p, Ref: int32(rng.Intn(l.NumElems))})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// TestSessionMatchesFreshOpen is the engine-level metamorphic check: the
// rolling result after streaming deltas must be bit-identical to opening
// a fresh session over an identically mutated mirror loop (same segment
// association, same kernels — so any divergence is incremental-state
// rot, exactly what the session path must never produce).
func TestSessionMatchesFreshOpen(t *testing.T) {
	e := mustNew(t, Config{Workers: 2, Platform: core.DefaultPlatform(4)})
	defer e.Close()
	rng := rand.New(rand.NewSource(99))
	l := sessionLoop(80, 300, 1)
	mirror := l.Clone()

	s, res, err := e.OpenSession(l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionGen != 1 {
		t.Fatalf("open generation %d, want 1", res.SessionGen)
	}
	if res.Scheme != "session" {
		t.Fatalf("open scheme %q, want session", res.Scheme)
	}
	dst := make([]float64, l.NumElems)
	for step := 0; step < 8; step++ {
		ds := sessionDeltas(rng, l, 5)
		res, err = s.Apply(ds, dst)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if want := uint64(step + 2); res.SessionGen != want {
			t.Fatalf("step %d: generation %d, want %d", step, res.SessionGen, want)
		}
		_, refs := mirror.Flat()
		for _, d := range ds {
			refs[d.Pos] = d.Ref
		}
		fresh, fres, err := e.OpenSession(mirror, 0, nil)
		if err != nil {
			t.Fatalf("step %d: fresh open: %v", step, err)
		}
		for i := range fres.Values {
			if math.Float64bits(fres.Values[i]) != math.Float64bits(res.Values[i]) {
				t.Fatalf("step %d elem %d: session %g != fresh %g", step, i, res.Values[i], fres.Values[i])
			}
		}
		fresh.Close()
	}

	st := e.Stats()
	if st.SessionOpens != 9 { // 1 + one fresh mirror open per step
		t.Fatalf("SessionOpens %d, want 9", st.SessionOpens)
	}
	if st.SessionJobs != 8 {
		t.Fatalf("SessionJobs %d, want 8", st.SessionJobs)
	}
	if st.SessionSegsComputed == 0 {
		t.Fatal("no session segments computed")
	}
	if st.SessionSegsReused == 0 {
		t.Fatal("no session segments reused — deltas of 5 positions should not touch every segment")
	}
	// Session work must stay out of the one-shot counters (and thus out
	// of the drift detector's cost stream).
	if st.Jobs != 0 || st.Batches != 0 {
		t.Fatalf("session ops leaked into job counters: jobs %d batches %d", st.Jobs, st.Batches)
	}
}

// TestSessionDstReuse pins the SubmitInto-style destination contract.
func TestSessionDstReuse(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()
	l := sessionLoop(32, 64, 2)
	dst := make([]float64, 32)
	s, res, err := e.OpenSession(l, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if &res.Values[0] != &dst[0] {
		t.Fatal("open result does not alias the caller's destination")
	}
	res, err = s.Apply(nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &res.Values[0] != &dst[0] {
		t.Fatal("apply result does not alias the caller's destination")
	}
}

// TestSessionClose pins the teardown contract: Apply after Close answers
// ErrSessionClosed (never a stale sum), Close is idempotent, and a
// concurrent Apply either completes or observes the typed error.
func TestSessionClose(t *testing.T) {
	e := mustNew(t, Config{Workers: 2})
	defer e.Close()
	l := sessionLoop(16, 40, 3)
	s, _, err := e.OpenSession(l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Apply(nil, nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("apply after close: %v, want ErrSessionClosed", err)
	}
	if s.Bytes() != 0 {
		t.Fatalf("closed session still accounts %d bytes", s.Bytes())
	}

	// Concurrent hammer: appliers race Close; every outcome must be a
	// valid result or ErrSessionClosed. Run under -race in CI.
	s2, _, err := e.OpenSession(l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				_, err := s2.Apply(sessionDeltas(rng, l, 2), nil)
				if err != nil && !errors.Is(err, ErrSessionClosed) {
					t.Errorf("concurrent apply: %v", err)
					return
				}
			}
		}(int64(g))
	}
	s2.Close()
	wg.Wait()
}

// TestSessionAfterEngineClose pins ErrClosed once the engine is gone.
func TestSessionAfterEngineClose(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	l := sessionLoop(8, 16, 4)
	s, _, err := e.OpenSession(l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := s.Apply(nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after engine close: %v, want ErrClosed", err)
	}
	if _, _, err := e.OpenSession(l, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("open after engine close: %v, want ErrClosed", err)
	}
}

// TestOpenSessionRejectsInvalid covers the argument contract.
func TestOpenSessionRejectsInvalid(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()
	if _, _, err := e.OpenSession(nil, 0, nil); err == nil {
		t.Fatal("nil loop accepted")
	}
	bad := &trace.Loop{Name: "bad"}
	if _, _, err := e.OpenSession(bad, 0, nil); err == nil {
		t.Fatal("non-positive NumElems accepted")
	}
	// A segment width of 1 over a huge iteration count exceeds the
	// combine-tree width; the worker must answer with the error rather
	// than panic.
	wide := sessionLoop(8, 300, 5)
	if _, _, err := e.OpenSession(wide, 1, nil); err == nil {
		t.Fatal("over-wide segment plan accepted")
	}
}
