package engine

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simarch"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// mustNew builds an engine or fails the test.
func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mixedLoops returns the shared mixed workload stream (small scale, three
// regimes are enough for the tests) plus their sequential references.
func mixedLoops() ([]*trace.Loop, [][]float64) {
	loops := workloads.MixedSet(0.2)[:3]
	refs := make([][]float64, len(loops))
	for i, l := range loops {
		refs[i] = l.RunSequential()
	}
	return loops, refs
}

func assertMatches(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		tol := 1e-9 * (1 + math.Abs(want[i]))
		if diff > tol {
			t.Fatalf("%s: element %d = %g, want %g (diff %g)", name, i, got[i], want[i], diff)
		}
	}
}

func TestEngineMatchesSequential(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 2})
	defer e.Close()
	for i, l := range loops {
		for rep := 0; rep < 3; rep++ {
			res, err := e.Submit(l)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			if res.Scheme == "" {
				t.Fatalf("%s: empty scheme name", l.Name)
			}
			assertMatches(t, l.Name, res.Values, refs[i])
		}
	}
}

// TestEngineConcurrentSubmit hammers the engine from many goroutines (run
// under -race in CI) and checks every result against the sequential
// reference.
func TestEngineConcurrentSubmit(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 4, Platform: core.DefaultPlatform(4)})
	defer e.Close()

	const goroutines = 8
	const perGoroutine = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, 0)
			for n := 0; n < perGoroutine; n++ {
				i := (g + n) % len(loops)
				res, err := e.SubmitInto(loops[i], dst)
				if err != nil {
					errs <- err.Error()
					return
				}
				dst = res.Values
				want := refs[i]
				for j := range want {
					if math.Abs(res.Values[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
						errs <- loops[i].Name + ": result mismatch"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	s := e.Stats()
	if s.Jobs != goroutines*perGoroutine {
		t.Errorf("jobs = %d, want %d", s.Jobs, goroutines*perGoroutine)
	}
	// Three distinct patterns: at most 3 misses (the once-guard serializes
	// concurrent first sights of the same signature), the rest hits.
	if s.CacheMisses > uint64(len(loops)) {
		t.Errorf("cache misses = %d, want <= %d", s.CacheMisses, len(loops))
	}
	if s.CacheHits+s.CacheMisses != s.Jobs {
		t.Errorf("hits %d + misses %d != jobs %d", s.CacheHits, s.CacheMisses, s.Jobs)
	}
}

func TestEngineDecisionCacheHitsOnRepeatedPattern(t *testing.T) {
	loops, _ := mixedLoops()
	l := loops[0]
	// The test pins the direct path's decision-cache accounting (one
	// scheme, exact hit counts); the simplification layer would flip a
	// repeated dense pattern to the simplified plan partway through.
	e := mustNew(t, Config{Workers: 2, DisableSimplify: true})
	defer e.Close()

	for n := 0; n < 5; n++ {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		if wantHit := n > 0; res.CacheHit != wantHit {
			t.Errorf("submission %d: CacheHit = %v, want %v", n, res.CacheHit, wantHit)
		}
	}
	s := e.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 4 {
		t.Errorf("misses/hits = %d/%d, want 1/4", s.CacheMisses, s.CacheHits)
	}
	if s.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", s.CacheEntries)
	}
	if len(s.Schemes) != 1 {
		t.Errorf("scheme counts = %v, want a single scheme", s.Schemes)
	}

	// A structurally different loop must miss.
	res, err := e.Submit(loops[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("distinct pattern reported a cache hit")
	}
}

func TestEngineFeedbackSchedulingKeepsResultsCorrect(t *testing.T) {
	// A skewed loop exercises the feedback re-cut path: repeated
	// submissions move the iteration boundaries, and results must stay
	// exact throughout.
	l := workloads.Generate("skewed", workloads.PatternSpec{
		Dim: 3000, SPPercent: 50, CHR: 0.9, MO: 2, Locality: 0.2, Skew: 2, Work: 5, Seed: 21,
	}, 1)
	want := l.RunSequential()
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()
	sawImbalance := false
	for n := 0; n < 8; n++ {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, "skewed", res.Values, want)
		if res.Imbalance > 0 {
			sawImbalance = true
		}
	}
	if !sawImbalance {
		t.Error("no submission reported a measured imbalance; feedback path never ran")
	}
}

func TestEngineHardwarePlatform(t *testing.T) {
	loops, refs := mixedLoops()
	p := core.DefaultPlatform(4)
	p.PCLR = true
	p.PCLRController = simarch.Hardwired
	e := mustNew(t, Config{Workers: 2, Platform: p})
	defer e.Close()
	res, err := e.Submit(loops[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "pclr-Hw" && res.Scheme != "pclr-hw" {
		t.Logf("hardware scheme name: %s", res.Scheme)
		if len(res.Scheme) < 5 || res.Scheme[:5] != "pclr-" {
			t.Errorf("scheme = %q, want pclr-*", res.Scheme)
		}
	}
	assertMatches(t, "hardware", res.Values, refs[0])
}

func TestEngineSubmitAfterClose(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	e.Close()
	e.Close() // idempotent
	loops, _ := mixedLoops()
	if _, err := e.Submit(loops[0]); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestEngineRejectsInvalidLoops(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	defer e.Close()
	if _, err := e.Submit(nil); err == nil {
		t.Error("nil loop accepted")
	}
	bad := &trace.Loop{Name: "bad"}
	if _, err := e.Submit(bad); err == nil {
		t.Error("zero-element loop accepted")
	}
}

func TestEngineDisabledPoolStillCorrect(t *testing.T) {
	loops, refs := mixedLoops()
	e := mustNew(t, Config{Workers: 2, DisablePool: true, DisableFeedback: true})
	defer e.Close()
	for i, l := range loops {
		res, err := e.Submit(l)
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, l.Name, res.Values, refs[i])
	}
}

// TestCloseResolvesOutstandingHandles is the server-shutdown contract:
// SubmitAsync handles outstanding when Close runs must all resolve — the
// queue drains, no waiter blocks forever. Submitters hammer a small queue
// (so batch sends block on backpressure mid-Close) while Close races
// them; every handle that was ever returned must Wait successfully with a
// correct result.
func TestCloseResolvesOutstandingHandles(t *testing.T) {
	loops, refs := mixedLoops()
	for round := 0; round < 4; round++ {
		e := mustNew(t, Config{
			Workers:    1,
			Platform:   core.DefaultPlatform(2),
			QueueDepth: 1, // maximum backpressure: senders block in SubmitAsync
			MaxBatch:   4,
		})
		const submitters = 6
		var wg sync.WaitGroup
		handleCh := make(chan *Handle, 1024)
		idxCh := make(chan int, 1024)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					idx := (g + i) % len(loops)
					h, err := e.SubmitAsync(loops[idx])
					if err != nil {
						if err != ErrClosed {
							t.Errorf("submit: %v", err)
						}
						return
					}
					handleCh <- h
					idxCh <- idx
				}
			}(g)
		}
		// Let submissions pile up, then slam the door while senders are
		// mid-flight.
		for len(handleCh) < submitters {
			runtime.Gosched()
		}
		e.Close()
		wg.Wait()
		close(handleCh)
		close(idxCh)

		type pending struct {
			h   *Handle
			idx int
		}
		var all []pending
		for h := range handleCh {
			all = append(all, pending{h, <-idxCh})
		}
		if len(all) == 0 {
			t.Fatal("no handles issued before Close")
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, p := range all {
				res := p.h.Wait()
				assertMatches(t, loops[p.idx].Name, res.Values, refs[p.idx])
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: %d handles leaked blocked waiters after Close", round, len(all))
		}
	}
}
