package engine

import (
	"sync"

	"repro/internal/obs"
)

// Stats is a snapshot of the engine's counters, aggregated over the
// per-worker shards.
type Stats struct {
	Jobs, CacheHits, CacheMisses uint64
	// Batches is the number of executions; Coalesced counts jobs that rode
	// another job's execution (so Jobs - Batches == Coalesced).
	Batches, Coalesced uint64
	// CacheEntries is the number of distinct pattern signatures cached;
	// CacheEvictions counts CLOCK victims across all shards.
	CacheEntries   int
	CacheEvictions uint64
	// Recalibrations counts stale-entry re-inspections (fresh
	// characterization through the decision algorithm), whether they
	// revalidated the scheme or counted toward a switch; SchemeSwitches
	// counts the re-inspections that actually replaced an entry's scheme
	// after the hysteresis threshold.
	Recalibrations, SchemeSwitches uint64
	// SimplifiedBatches counts batches executed through the simplified
	// segment plan; SimplifyFallbacks counts batches whose segment
	// analysis ran but whose decision (or decomposability) sent them back
	// to the direct path. SegsComputed and SegsReused count the segment
	// partial sums simplified executions accumulated fresh vs. served
	// verified from an entry's segment cache — reuse is the incremental
	// re-reduction win.
	SimplifiedBatches, SimplifyFallbacks uint64
	SegsComputed, SegsReused             uint64
	// SessionOpens counts streaming sessions registered; SessionJobs
	// counts delta applications served through them. SessionSegsComputed
	// and SessionSegsReused split each apply's segments into recomputed
	// fresh vs. carried over intact — the per-update incremental win,
	// kept apart from the batch-simplification SegsComputed/SegsReused
	// so the two reuse stories stay separately observable.
	SessionOpens, SessionJobs              uint64
	SessionSegsComputed, SessionSegsReused uint64
	// Schemes counts executed jobs per scheme name.
	Schemes map[string]uint64
	// BatchOccupancy[k] is the number of executed batches that fused
	// exactly k jobs (index 0 is unused; the last bucket also absorbs any
	// larger size).
	BatchOccupancy []uint64
	// Stages holds the engine's per-stage latency histograms (queue_wait,
	// inspect, execute), merged across the worker shards; only stages
	// with observations appear. Snapshots decoded off the wire may carry
	// stage names this build does not know — Merge combines by name.
	Stages []obs.StageSummary
	// Tenants holds the per-tenant slices of the counters above, one row
	// per configured tenant in scheduler order. Empty in single-tenant
	// engines, so legacy deployments encode byte-identical STATS frames.
	Tenants []TenantStats
}

// TenantStats is one tenant's slice of the engine counters plus the
// admission rejections the serving tier charged against it. Rows merge
// by Name across a gateway's backends.
type TenantStats struct {
	// Name identifies the tenant; Weight is its DRR scheduling weight.
	Name   string
	Weight int
	// Jobs counts reductions executed for the tenant (session operations
	// included); Batches counts the executions that carried them.
	Jobs, Batches uint64
	// Busy counts submissions the serving tier rejected against the
	// tenant's quota or token bucket (BUSY code 5). The engine itself
	// never rejects — the server folds its counter in before encoding.
	Busy uint64
	// Recalibrations and SchemeSwitches attribute drift re-inspections to
	// the tenant whose batch triggered them.
	Recalibrations, SchemeSwitches uint64
	// QueueWait is the tenant's submission-queue residency histogram —
	// the isolation signal: a flooded tenant's queue wait grows while a
	// well-behaved tenant's stays near its solo baseline.
	QueueWait obs.Snapshot
}

// merge folds o into t (same tenant name on another backend).
func (t *TenantStats) merge(o TenantStats) {
	if t.Weight == 0 {
		t.Weight = o.Weight
	}
	t.Jobs += o.Jobs
	t.Batches += o.Batches
	t.Busy += o.Busy
	t.Recalibrations += o.Recalibrations
	t.SchemeSwitches += o.SchemeSwitches
	t.QueueWait.Merge(o.QueueWait)
}

// Merge adds o's counters into s — how a gateway aggregates the STATS
// snapshots of many backends into one cluster-wide answer. Counters and
// scheme counts sum; the occupancy histogram sums element-wise (growing
// to the longer histogram); CacheEntries sums too, so with pattern
// affinity intact the total equals the distinct-pattern count across the
// tier, and exceeds it exactly when a pattern was characterized on more
// than one backend (affinity broke).
func (s *Stats) Merge(o Stats) {
	s.Jobs += o.Jobs
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Batches += o.Batches
	s.Coalesced += o.Coalesced
	s.CacheEntries += o.CacheEntries
	s.CacheEvictions += o.CacheEvictions
	s.Recalibrations += o.Recalibrations
	s.SchemeSwitches += o.SchemeSwitches
	s.SimplifiedBatches += o.SimplifiedBatches
	s.SimplifyFallbacks += o.SimplifyFallbacks
	s.SegsComputed += o.SegsComputed
	s.SegsReused += o.SegsReused
	s.SessionOpens += o.SessionOpens
	s.SessionJobs += o.SessionJobs
	s.SessionSegsComputed += o.SessionSegsComputed
	s.SessionSegsReused += o.SessionSegsReused
	if len(o.BatchOccupancy) > len(s.BatchOccupancy) {
		grown := make([]uint64, len(o.BatchOccupancy))
		copy(grown, s.BatchOccupancy)
		s.BatchOccupancy = grown
	}
	for k, v := range o.BatchOccupancy {
		s.BatchOccupancy[k] += v
	}
	if len(o.Schemes) > 0 && s.Schemes == nil {
		s.Schemes = make(map[string]uint64, len(o.Schemes))
	}
	for k, v := range o.Schemes {
		s.Schemes[k] += v
	}
	s.Stages = obs.MergeStageSummaries(s.Stages, o.Stages)
	for _, ot := range o.Tenants {
		merged := false
		for i := range s.Tenants {
			if s.Tenants[i].Name == ot.Name {
				s.Tenants[i].merge(ot)
				merged = true
				break
			}
		}
		if !merged {
			s.Tenants = append(s.Tenants, ot)
		}
	}
}

// statShard is one worker's private counters. Every worker owns exactly
// one shard and is its only writer, so the per-batch update never contends
// with other workers — this replaces the global scheme-counter mutex the
// single-queue engine serialized every job through. Stats() takes each
// shard's mutex briefly to read a consistent snapshot.
type statShard struct {
	mu        sync.Mutex
	jobs      uint64
	hits      uint64
	misses    uint64
	batches   uint64
	coalesced uint64
	recals    uint64
	switches  uint64
	simp      uint64
	simpFalls uint64
	segsComp  uint64
	segsReuse uint64
	sessOpens uint64
	sessJobs  uint64
	sessComp  uint64
	sessReuse uint64
	schemes   map[string]uint64
	occ       []uint64
	// stages holds the shard's stage-latency histograms. It lives outside
	// the mutex: the owning worker records through lock-free atomics and
	// Stats() reads racy-but-consistent-enough snapshots, so instrumenting
	// a stage never lengthens the critical section above.
	stages obs.StageSet
}

func newStatShards(workers, maxBatch int) []statShard {
	shards := make([]statShard, workers)
	for i := range shards {
		shards[i].schemes = make(map[string]uint64)
		shards[i].occ = make([]uint64, maxBatch+1)
	}
	return shards
}

// record accounts one executed batch of size n under the given scheme.
// The leader's lookup outcome is hit; fused members always reuse the
// decision, so they count as hits.
func (s *statShard) record(scheme string, n int, hit bool) {
	s.mu.Lock()
	s.jobs += uint64(n)
	s.batches++
	s.coalesced += uint64(n - 1)
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.hits += uint64(n - 1)
	s.schemes[scheme] += uint64(n)
	bucket := n
	if bucket >= len(s.occ) {
		bucket = len(s.occ) - 1
	}
	s.occ[bucket]++
	s.mu.Unlock()
}

// recordSimplify accounts one simplification attempt that got as far as
// the segment analysis: an executed simplified batch with its computed
// and cache-reused segment counts, or a fallback to the direct path.
func (s *statShard) recordSimplify(executed bool, computed, reused int) {
	s.mu.Lock()
	if executed {
		s.simp++
		s.segsComp += uint64(computed)
		s.segsReuse += uint64(reused)
	} else {
		s.simpFalls++
	}
	s.mu.Unlock()
}

// recordSession accounts one streaming-session operation: a session
// registration (open) or a delta application with its segment
// computed/reused split. Session work stays out of the job/batch/scheme
// counters — it is a different serving mode, and folding it into the
// one-shot numbers would skew the coalescing and cache-hit stories.
func (s *statShard) recordSession(open bool, computed, reused int) {
	s.mu.Lock()
	if open {
		s.sessOpens++
	} else {
		s.sessJobs++
	}
	s.sessComp += uint64(computed)
	s.sessReuse += uint64(reused)
	s.mu.Unlock()
}

// recordRecal accounts one stale-entry re-inspection, and whether it
// switched the entry's scheme.
func (s *statShard) recordRecal(switched bool) {
	s.mu.Lock()
	s.recals++
	if switched {
		s.switches++
	}
	s.mu.Unlock()
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{Schemes: make(map[string]uint64)}
	for i := range e.statShards {
		sh := &e.statShards[i]
		sh.mu.Lock()
		s.Jobs += sh.jobs
		s.CacheHits += sh.hits
		s.CacheMisses += sh.misses
		s.Batches += sh.batches
		s.Coalesced += sh.coalesced
		s.Recalibrations += sh.recals
		s.SchemeSwitches += sh.switches
		s.SimplifiedBatches += sh.simp
		s.SimplifyFallbacks += sh.simpFalls
		s.SegsComputed += sh.segsComp
		s.SegsReused += sh.segsReuse
		s.SessionOpens += sh.sessOpens
		s.SessionJobs += sh.sessJobs
		s.SessionSegsComputed += sh.sessComp
		s.SessionSegsReused += sh.sessReuse
		for k, v := range sh.schemes {
			s.Schemes[k] += v
		}
		if s.BatchOccupancy == nil {
			s.BatchOccupancy = make([]uint64, len(sh.occ))
		}
		for k, v := range sh.occ {
			s.BatchOccupancy[k] += v
		}
		sh.mu.Unlock()
		s.Stages = obs.MergeStageSummaries(s.Stages, sh.stages.Snapshot())
	}
	s.CacheEntries, s.CacheEvictions = e.cache.counters()
	// Tenant rows only exist in multi-tenant engines, so a single-tenant
	// deployment's STATS frame stays byte-identical to the legacy layout.
	if len(e.tenants) > 1 {
		s.Tenants = make([]TenantStats, 0, len(e.tenants))
		for _, t := range e.tenants {
			s.Tenants = append(s.Tenants, t.snapshot())
		}
	}
	return s
}
