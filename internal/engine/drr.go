package engine

import "sync"

// drrQueue is the engine's submission queue: per-tenant FIFOs drained by
// weighted deficit round robin. It replaces the single buffered channel
// the pre-tenant engine used, keeping its contract — bounded depth with
// blocking enqueue (backpressure), FIFO order within a tenant, close
// drains — and adding the isolation the channel could not express: a
// tenant flooding its own FIFO cannot displace another tenant's batches,
// and under saturation each backlogged tenant receives weight/sum(weights)
// of the pops.
//
// The DRR variant is unit-cost (every batch costs one deficit credit,
// matching the scheduler's unit of work — one execution): when the round
// pointer reaches a backlogged tenant with no credit, the tenant's
// weight is added; each pop spends one credit; an emptied tenant forfeits
// its remaining credit (no banking), which is what makes the scheduler
// work-conserving and starvation-free — a backlogged weight-1 tenant is
// served at least once per round of sum(weights) pops. The scan is
// deterministic (tenant order, no randomization), which the oracle-backed
// property suite relies on.
type drrQueue struct {
	mu    sync.Mutex
	avail sync.Cond // signaled when a batch arrives or the queue closes
	space sync.Cond // broadcast when a pop frees a slot or the queue closes

	qs     []tenantFIFO
	depth  int // per-tenant capacity, in batches
	size   int // total queued batches across tenants
	cur    int // DRR round pointer
	closed bool
}

// tenantFIFO is one tenant's queue: a head-indexed slice (amortized O(1)
// pop without a ring) plus the tenant's DRR deficit counter.
type tenantFIFO struct {
	weight  int
	deficit int
	items   []*batch
	head    int
}

func (f *tenantFIFO) len() int { return len(f.items) - f.head }

func (f *tenantFIFO) popFront() *batch {
	b := f.items[f.head]
	f.items[f.head] = nil // release the batch to GC while queued slots idle
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	}
	return b
}

// newDRRQueue builds a queue with one FIFO per weight, each capped at
// depth batches.
func newDRRQueue(weights []int, depth int) *drrQueue {
	q := &drrQueue{qs: make([]tenantFIFO, len(weights)), depth: depth}
	for i, w := range weights {
		q.qs[i].weight = w
	}
	q.avail.L = &q.mu
	q.space.L = &q.mu
	return q
}

// push enqueues b on its tenant's FIFO, blocking while the FIFO is at
// depth (backpressure, exactly like the channel send it replaces). It
// reports false when the queue closed — unreachable from the engine,
// whose closeMu excludes Close while an enqueue is in flight, but kept
// so the queue is safe standalone (the property tests drive it bare).
func (q *drrQueue) push(tenant int, b *batch) bool {
	q.mu.Lock()
	for q.qs[tenant].len() >= q.depth && !q.closed {
		q.space.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.qs[tenant].items = append(q.qs[tenant].items, b)
	q.size++
	q.avail.Signal()
	q.mu.Unlock()
	return true
}

// pop dequeues the next batch under the DRR policy, blocking while the
// queue is empty and open. It returns nil once the queue is closed and
// drained — the worker-loop termination signal, mirroring a closed
// channel's zero value.
func (q *drrQueue) pop() *batch {
	q.mu.Lock()
	for q.size == 0 && !q.closed {
		q.avail.Wait()
	}
	if q.size == 0 {
		q.mu.Unlock()
		return nil
	}
	b := q.popLocked()
	// Broadcast, not signal: waiting pushers may belong to a different
	// tenant than the slot just freed, and a signaled pusher whose own
	// FIFO is still full would swallow the wakeup.
	q.space.Broadcast()
	q.mu.Unlock()
	return b
}

// popLocked runs one DRR step (mu held, size > 0): advance the round
// pointer past idle tenants (resetting their deficit — no banking),
// replenish the serving tenant's deficit from its weight when spent, and
// serve one batch for one credit.
func (q *drrQueue) popLocked() *batch {
	for {
		f := &q.qs[q.cur]
		if f.len() == 0 {
			f.deficit = 0
			q.cur = (q.cur + 1) % len(q.qs)
			continue
		}
		if f.deficit == 0 {
			f.deficit = f.weight
		}
		b := f.popFront()
		f.deficit--
		q.size--
		if f.len() == 0 {
			// Forfeit leftover credit: an idle tenant must not bank
			// service it did not use (work conservation).
			f.deficit = 0
			q.cur = (q.cur + 1) % len(q.qs)
		} else if f.deficit == 0 {
			q.cur = (q.cur + 1) % len(q.qs)
		}
		return b
	}
}

// close marks the queue closed and wakes every waiter. Queued batches
// remain poppable — close drains, it does not discard.
func (q *drrQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.avail.Broadcast()
	q.space.Broadcast()
	q.mu.Unlock()
}

// queued reports the total batches currently queued (tests only).
func (q *drrQueue) queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
