// Package engine implements a long-lived concurrent reduction service on
// top of the SmartApps adaptive pipeline. Where package core models one
// application adapting its own reduction loop, the engine is the
// production-service shape of the same idea: many clients Submit reduction
// jobs, a bounded worker pool executes them, and the adaptive machinery is
// amortized across jobs the way the paper amortizes it across invocations:
//
//   - pattern characterization (package pattern) runs once per distinct
//     access-pattern signature; a decision cache keyed by trace.Fingerprint
//     lets repeated workloads skip re-inspection entirely,
//   - scheme selection (package adapt + core.Configurer) is cached with
//     the characterization,
//   - privatization buffers are recycled through a shared
//     reduction.BufferPool, so steady-state jobs allocate ~nothing,
//   - per-pattern sched.FeedbackSchedulers re-cut iteration blocks from
//     measured per-processor times, feeding the partition-agnostic schemes
//     (rep, ll, hash) a load-balanced schedule on their next execution.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of jobs executed concurrently (the bounded
	// pool). Defaults to 4.
	Workers int
	// Platform is the machine the engine serves on: its Procs is the
	// goroutine fan-out per job, and its PCLR fields route supported loops
	// to the hardware path exactly as core.Configurer does. A zero
	// platform defaults to the software-only 8-processor machine.
	Platform core.Platform
	// SampleStride is the inspector sampling stride for pattern
	// characterization (default 8, matching core.Runtime).
	SampleStride int
	// QueueDepth is the submission queue length (default 2*Workers).
	QueueDepth int
	// MaxCacheEntries bounds the decision cache (default 1024); beyond it
	// an arbitrary entry is evicted.
	MaxCacheEntries int
	// DisablePool turns off buffer recycling, so every job allocates its
	// privatization buffers cold. It exists to measure what the pool buys.
	DisablePool bool
	// DisableFeedback turns off feedback-guided block scheduling.
	DisableFeedback bool
}

// Result is the outcome of one reduction job.
type Result struct {
	// Values is the reduction array. When SubmitInto was given a dst with
	// sufficient capacity, Values aliases it.
	Values []float64
	// Scheme is the executed implementation: a paper abbreviation, or
	// "pclr-<controller>" on the hardware path.
	Scheme string
	// Why is the selection rationale recorded in the decision cache.
	Why string
	// CacheHit reports whether the job reused a cached decision instead
	// of re-running pattern inspection.
	CacheHit bool
	// Elapsed is the job's wall-clock execution time (excluding queueing).
	Elapsed time.Duration
	// Imbalance is max/mean of the per-processor accumulation times
	// (1.0 = perfectly balanced, 0 when not measured).
	Imbalance float64
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Jobs, CacheHits, CacheMisses uint64
	// CacheEntries is the number of distinct pattern signatures cached.
	CacheEntries int
	// Schemes counts executed jobs per scheme name.
	Schemes map[string]uint64
}

// cacheEntry is one memoized adaptive decision.
type cacheEntry struct {
	once    sync.Once
	profile *pattern.Profile
	conf    core.Configuration
	scheme  reduction.Scheme
	name    string
	// feedback reports whether the scheme honors Exec.IterBounds, i.e.
	// whether the entry's scheduler can steer it.
	feedback bool

	mu      sync.Mutex
	fb      *sched.FeedbackScheduler
	fbIters int
	// gen bumps whenever the schedule changes (a Record or a scheduler
	// swap); a measurement only applies to the boundaries it was taken
	// under, so jobs record only when gen is still the one they read.
	gen uint64
}

type job struct {
	loop *trace.Loop
	dst  []float64
	done chan Result
}

// Engine is a concurrent adaptive reduction service. Create with New,
// submit with Submit/SubmitInto from any number of goroutines, and Close
// when done.
type Engine struct {
	cfg  Config
	pool *reduction.BufferPool
	jobs chan *job
	wg   sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	cacheMu sync.Mutex
	cache   map[uint64]*cacheEntry

	jobsDone    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	schemeMu     sync.Mutex
	schemeCounts map[string]uint64
}

// New starts an engine with cfg's worker pool running.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Platform.Procs == 0 {
		cfg.Platform = core.DefaultPlatform(8)
	}
	if cfg.Platform.Procs > 64 {
		panic("engine: platform exceeds the 64-processor model limit")
	}
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = 1024
	}
	e := &Engine{
		cfg:          cfg,
		jobs:         make(chan *job, cfg.QueueDepth),
		cache:        make(map[uint64]*cacheEntry),
		schemeCounts: make(map[string]uint64),
	}
	if !cfg.DisablePool {
		e.pool = reduction.NewBufferPool()
	}
	e.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go e.worker()
	}
	return e
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// Submit runs one reduction job and blocks until its result is ready.
// It is safe to call from many goroutines; the worker pool bounds how many
// jobs execute at once.
func (e *Engine) Submit(l *trace.Loop) (Result, error) {
	return e.SubmitInto(l, nil)
}

// SubmitInto is Submit with a caller-provided destination array: when dst
// has capacity for the result it is reused, making steady-state submission
// allocation-free end to end.
func (e *Engine) SubmitInto(l *trace.Loop, dst []float64) (Result, error) {
	if l == nil {
		return Result{}, errors.New("engine: nil loop")
	}
	if l.NumElems <= 0 {
		return Result{}, fmt.Errorf("engine: loop %q has non-positive NumElems", l.Name)
	}
	j := &job{loop: l, dst: dst, done: make(chan Result, 1)}
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return Result{}, ErrClosed
	}
	e.jobs <- j
	e.closeMu.RUnlock()
	return <-j.done, nil
}

// Close drains the queue, stops the workers and waits for them. Submit
// calls racing with Close either complete or return ErrClosed.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.closeMu.Unlock()
	e.wg.Wait()
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Jobs:        e.jobsDone.Load(),
		CacheHits:   e.cacheHits.Load(),
		CacheMisses: e.cacheMisses.Load(),
		Schemes:     make(map[string]uint64),
	}
	e.cacheMu.Lock()
	s.CacheEntries = len(e.cache)
	e.cacheMu.Unlock()
	e.schemeMu.Lock()
	for k, v := range e.schemeCounts {
		s.Schemes[k] = v
	}
	e.schemeMu.Unlock()
	return s
}

// workerCtx is one worker's reusable per-job scratch: the pooled
// execution context, the block-time measurement array and the feedback
// bounds snapshot.
type workerCtx struct {
	ex     *reduction.Exec
	times  []float64
	bounds []int
}

// worker owns one reusable execution context and serves jobs until the
// queue closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	w := &workerCtx{
		ex:    &reduction.Exec{Pool: e.pool},
		times: make([]float64, e.cfg.Platform.Procs),
	}
	for j := range e.jobs {
		j.done <- e.runJob(w, j)
	}
}

// feedbackSchemes are the partition-agnostic schemes that honor
// Exec.IterBounds; sel and lw fix their partitions in their inspectors.
var feedbackSchemes = map[string]bool{"rep": true, "ll": true, "hash": true}

// lookup returns the decision-cache entry for the loop's signature,
// characterizing and deciding on first sight. The boolean reports a hit.
func (e *Engine) lookup(l *trace.Loop) (*cacheEntry, bool) {
	sig := l.Fingerprint()
	e.cacheMu.Lock()
	entry, ok := e.cache[sig]
	if !ok {
		if len(e.cache) >= e.cfg.MaxCacheEntries {
			for k := range e.cache {
				delete(e.cache, k)
				break
			}
		}
		entry = &cacheEntry{}
		e.cache[sig] = entry
	}
	e.cacheMu.Unlock()

	miss := false
	entry.once.Do(func() {
		miss = true
		prof := pattern.CharacterizeSampled(l, e.cfg.Platform.Procs, e.cfg.Platform.Cfg.L2Bytes, e.cfg.SampleStride)
		rec := adapt.Recommend(prof)
		conf := core.Configurer{Platform: e.cfg.Platform}.Configure(l, rec)
		entry.profile = prof
		entry.conf = conf
		if conf.UseHardware {
			// The directory hardware performs the combine; any correct
			// executor produces the loop's semantics (cf. core.Runtime).
			entry.scheme = reduction.Rep{}
			entry.name = "pclr-" + conf.Hardware.Controller.String()
			entry.feedback = true
		} else {
			entry.scheme = adapt.SchemeFor(adapt.Recommendation{Scheme: conf.Scheme})
			entry.name = conf.Scheme
			entry.feedback = feedbackSchemes[conf.Scheme]
		}
	})
	return entry, !miss
}

// runJob executes one job through the cached adaptive path.
func (e *Engine) runJob(w *workerCtx, j *job) Result {
	l := j.loop
	entry, hit := e.lookup(l)
	if hit {
		e.cacheHits.Add(1)
	} else {
		e.cacheMisses.Add(1)
	}

	procs := e.cfg.Platform.Procs
	useFeedback := entry.feedback && !e.cfg.DisableFeedback && l.NumIters() > 0

	// Install the entry's current feedback boundaries. The scheduler is
	// created before the first run so the job executes the exact
	// partition its measurement will be attributed to.
	w.ex.IterBounds = nil
	w.ex.BlockTimes = nil
	var genSeen uint64
	if useFeedback {
		entry.mu.Lock()
		if entry.fb == nil || entry.fbIters != l.NumIters() {
			entry.fb = sched.NewFeedbackScheduler(procs, l.NumIters())
			entry.fbIters = l.NumIters()
			entry.gen++
		}
		w.bounds = entry.fb.BoundsInto(w.bounds)
		genSeen = entry.gen
		entry.mu.Unlock()
		w.ex.IterBounds = w.bounds
		w.ex.BlockTimes = w.times
	}

	start := time.Now()
	out := entry.scheme.RunInto(l, procs, w.ex, j.dst)
	elapsed := time.Since(start)

	res := Result{
		Values:   out,
		Scheme:   entry.name,
		Why:      entry.conf.Why,
		CacheHit: hit,
		Elapsed:  elapsed,
	}

	// Feed the measured per-block times back into the entry's scheduler.
	// A measurement only applies to the boundaries it was taken under, so
	// it is dropped when a concurrent job already moved them (the
	// generation changed).
	if useFeedback {
		res.Imbalance = sched.Imbalance(w.times)
		entry.mu.Lock()
		if entry.gen == genSeen && entry.fbIters == l.NumIters() {
			entry.fb.Record(w.times)
			entry.gen++
		}
		entry.mu.Unlock()
	}

	e.jobsDone.Add(1)
	e.schemeMu.Lock()
	e.schemeCounts[entry.name]++
	e.schemeMu.Unlock()
	return res
}
