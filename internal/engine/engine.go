// Package engine implements a long-lived concurrent reduction service on
// top of the SmartApps adaptive pipeline. Where package core models one
// application adapting its own reduction loop, the engine is the
// production-service shape of the same idea: many clients submit reduction
// jobs, a bounded worker pool executes them, and the adaptive machinery is
// amortized across jobs the way the paper amortizes it across invocations:
//
//   - pattern characterization (package pattern) runs once per distinct
//     access-pattern signature; a sharded decision cache keyed by
//     trace.Fingerprint — per-shard mutexes, CLOCK eviction — lets
//     repeated workloads skip re-inspection without a global lock,
//   - same-pattern jobs submitted while a batch waits in the queue are
//     coalesced: one execution pays inspection, scheme lookup, feedback
//     scheduling, privatization and accumulation for every fused member
//     (reduction.Exec.BatchOut), whose marginal cost is one result write,
//   - SubmitAsync returns a Handle so clients can pipeline submissions;
//     Submit is SubmitAsync + Wait,
//   - privatization buffers are recycled through a shared
//     reduction.BufferPool, so steady-state jobs allocate ~nothing,
//   - per-pattern sched.FeedbackSchedulers re-cut iteration blocks from
//     measured per-processor times, feeding the partition-agnostic schemes
//     (rep, ll, hash) a load-balanced schedule on their next execution,
//   - cached decisions are revalidated online (recal.go): a per-entry
//     drift detector (cost EWMA + periodic sampled re-profile) marks
//     entries whose workload shifted phase, and a hysteresis-gated
//     re-inspection switches them to the scheme the new pattern wants,
//   - counters are sharded per worker and aggregated by Stats(), so the
//     hot path never takes a global statistics lock.
package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/reduction"
	"repro/internal/trace"

	"sync"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of batches executed concurrently (the bounded
	// pool). Defaults to 4.
	Workers int
	// Platform is the machine the engine serves on: its Procs is the
	// goroutine fan-out per job, and its PCLR fields route supported loops
	// to the hardware path exactly as core.Configurer does. A zero
	// platform defaults to the software-only 8-processor machine.
	Platform core.Platform
	// SampleStride is the inspector sampling stride for pattern
	// characterization (default 8, matching core.Runtime).
	SampleStride int
	// QueueDepth is the submission queue length in batches (default
	// 2*Workers). Jobs fusing into a queued batch consume no queue slot.
	// With tenants configured the depth applies per tenant, so one
	// tenant's backlog cannot exhaust another tenant's queue slots.
	QueueDepth int
	// Tenants configures weighted multi-tenant scheduling. The default
	// tenant always exists at index 0 (weight 1 unless an entry named
	// "default" overrides it); each other entry adds a tenant whose jobs
	// queue separately and are drained by weighted deficit round robin.
	// Empty means single-tenant: one queue, stats and wire frames
	// byte-identical to the pre-tenant engine.
	Tenants []TenantConfig
	// MaxCacheEntries bounds the decision cache across all shards
	// (default 1024); beyond it the owning shard evicts by CLOCK.
	MaxCacheEntries int
	// CacheShards is the number of decision-cache and coalescer lock
	// shards, rounded up to a power of two (default 16).
	CacheShards int
	// MaxBatch caps how many same-pattern jobs fuse into one execution
	// (default 32).
	MaxBatch int
	// DriftRatio is the recalibration cost-drift trigger: when a cache
	// entry's EWMA execution cost diverges from its decision-time anchor
	// by more than this ratio (either direction), the entry is marked
	// stale and re-inspected. Must be > 1; 0 means the default 1.5.
	DriftRatio float64
	// RecalEvery is how many batch executions of one entry pass between
	// sampled re-profiles of its pattern — the backstop drift trigger
	// for shifts the cost EWMA cannot see (pattern distance past the
	// re-characterization threshold marks the entry stale even when its
	// cost looks steady). Each re-profile is an O(refs/stride) inspector
	// pass on a worker, so the default is deliberately sparse: 0 means
	// 256. Lower it (the drift benchmark uses 8) when phase shifts are
	// frequent and stale-scheme latency matters more than re-profile
	// overhead.
	RecalEvery int
	// RecalConfirm is the hysteresis depth: a stale entry must be
	// re-inspected this many consecutive times with the same differing
	// recommendation before the scheme actually switches. 0 means the
	// default 2.
	RecalConfirm int
	// DisableRecal turns the recalibration subsystem off entirely: the
	// engine decides once per fingerprint and trusts the entry until
	// CLOCK eviction, the pre-recalibration behavior.
	DisableRecal bool
	// DisableCoalesce turns off batch fusion, so every job executes
	// individually (the per-job path, kept measurable).
	DisableCoalesce bool
	// DisablePool turns off buffer recycling, so every job allocates its
	// privatization buffers cold. It exists to measure what the pool buys.
	DisablePool bool
	// DisableFeedback turns off feedback-guided block scheduling.
	DisableFeedback bool
	// DisableSimplify turns off the algebraic simplification layer:
	// batches never run as shared segment partial sums and no segment
	// caches are seeded, so every job executes its full reference stream
	// through the cached scheme (the pre-simplification behavior).
	DisableSimplify bool
}

// Result is the outcome of one reduction job.
type Result struct {
	// Values is the reduction array. When SubmitInto was given a dst with
	// sufficient capacity, Values aliases it — on the batched path too.
	Values []float64
	// Scheme is the executed implementation: a paper abbreviation, or
	// "pclr-<controller>" on the hardware path.
	Scheme string
	// Why is the selection rationale recorded in the decision cache.
	Why string
	// CacheHit reports whether the job reused a cached decision instead
	// of re-running pattern inspection.
	CacheHit bool
	// BatchSize is how many jobs were fused into the execution that
	// produced this result (1 = unfused).
	BatchSize int
	// Elapsed is the wall-clock execution time of the job's batch
	// (excluding queueing).
	Elapsed time.Duration
	// QueueWait is how long the job's batch sat in the submission queue
	// before a worker picked it up (the coalescing window).
	QueueWait time.Duration
	// Inspect is the pattern-characterization time this batch paid; zero
	// on a decision-cache hit.
	Inspect time.Duration
	// Imbalance is max/mean of the per-processor accumulation times
	// (1.0 = perfectly balanced, 0 when not measured).
	Imbalance float64
	// SessionGen is the streaming session's generation after the
	// operation that produced this result (1 at open, +1 per delta
	// apply); zero for one-shot jobs. It rides the RESULT frame as an
	// optional trailing field.
	SessionGen uint64
}

// Handle is a pending submission. It belongs to a single waiter.
type Handle struct {
	done     chan Result
	res      Result
	received bool
}

// Wait blocks until the job completes and returns its result. Jobs
// accepted before Close always complete (Close drains the queue), so Wait
// never fails. It may be called repeatedly.
func (h *Handle) Wait() Result {
	if !h.received {
		h.res = <-h.done
		h.received = true
	}
	return h.res
}

// Engine is a concurrent adaptive reduction service. Create with New,
// submit with Submit/SubmitInto/SubmitAsync from any number of goroutines,
// and Close when done.
type Engine struct {
	cfg  Config
	pool *reduction.BufferPool
	q    *drrQueue
	wg   sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	cache *decisionCache
	co    *coalescer // nil when coalescing is disabled

	tenants   []*tenantRT
	tenantIdx map[string]int

	statShards []statShard
}

// New starts an engine with cfg's worker pool running. It returns an
// error when the configuration is invalid: a platform beyond the
// 64-processor model limit, or negative Workers, QueueDepth,
// MaxCacheEntries, CacheShards, MaxBatch or SampleStride (zero always
// means "use the default").
func New(cfg Config) (*Engine, error) {
	switch {
	case cfg.Workers < 0:
		return nil, fmt.Errorf("engine: negative Workers %d", cfg.Workers)
	case cfg.Platform.Procs < 0:
		return nil, fmt.Errorf("engine: negative Platform.Procs %d", cfg.Platform.Procs)
	case cfg.Platform.Procs > 64:
		return nil, fmt.Errorf("engine: platform with %d processors exceeds the 64-processor model limit", cfg.Platform.Procs)
	case cfg.SampleStride < 0:
		return nil, fmt.Errorf("engine: negative SampleStride %d", cfg.SampleStride)
	case cfg.QueueDepth < 0:
		return nil, fmt.Errorf("engine: negative QueueDepth %d", cfg.QueueDepth)
	case cfg.MaxCacheEntries < 0:
		return nil, fmt.Errorf("engine: negative MaxCacheEntries %d", cfg.MaxCacheEntries)
	case cfg.CacheShards < 0:
		return nil, fmt.Errorf("engine: negative CacheShards %d", cfg.CacheShards)
	case cfg.MaxBatch < 0:
		return nil, fmt.Errorf("engine: negative MaxBatch %d", cfg.MaxBatch)
	case cfg.DriftRatio < 0:
		return nil, fmt.Errorf("engine: negative DriftRatio %g", cfg.DriftRatio)
	case cfg.DriftRatio > 0 && cfg.DriftRatio <= 1:
		return nil, fmt.Errorf("engine: DriftRatio %g must be > 1 (it is a divergence ratio)", cfg.DriftRatio)
	case cfg.RecalEvery < 0:
		return nil, fmt.Errorf("engine: negative RecalEvery %d", cfg.RecalEvery)
	case cfg.RecalConfirm < 0:
		return nil, fmt.Errorf("engine: negative RecalConfirm %d", cfg.RecalConfirm)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Platform.Procs == 0 {
		cfg.Platform = core.DefaultPlatform(8)
	}
	if cfg.SampleStride == 0 {
		cfg.SampleStride = 8
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = 1024
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = 16
	}
	cfg.CacheShards = ceilPow2(cfg.CacheShards)
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.DriftRatio == 0 {
		cfg.DriftRatio = 1.5
	}
	if cfg.RecalEvery == 0 {
		cfg.RecalEvery = 256
	}
	if cfg.RecalConfirm == 0 {
		cfg.RecalConfirm = 2
	}
	tenants, tenantIdx, err := buildTenants(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	weights := make([]int, len(tenants))
	for i, t := range tenants {
		weights[i] = t.weight
	}
	e := &Engine{
		cfg:        cfg,
		q:          newDRRQueue(weights, cfg.QueueDepth),
		tenants:    tenants,
		tenantIdx:  tenantIdx,
		cache:      newDecisionCache(cfg.CacheShards, cfg.MaxCacheEntries),
		statShards: newStatShards(cfg.Workers, cfg.MaxBatch),
	}
	if !cfg.DisableCoalesce && cfg.MaxBatch > 1 {
		e.co = newCoalescer(cfg.CacheShards, cfg.MaxBatch, !cfg.DisableSimplify)
	}
	if !cfg.DisablePool {
		e.pool = reduction.NewBufferPool()
	}
	e.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go e.worker(w)
	}
	return e, nil
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Procs returns the per-job goroutine fan-out the engine executes with
// (the serving platform's processor count). The network server reports it
// to clients in the HELLO frame.
func (e *Engine) Procs() int { return e.cfg.Platform.Procs }

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// Submit runs one reduction job and blocks until its result is ready.
// It is safe to call from many goroutines; the worker pool bounds how many
// batches execute at once.
func (e *Engine) Submit(l *trace.Loop) (Result, error) {
	return e.SubmitInto(l, nil)
}

// SubmitInto is Submit with a caller-provided destination array: when dst
// has capacity for the result it is reused, making steady-state submission
// allocation-free end to end.
func (e *Engine) SubmitInto(l *trace.Loop, dst []float64) (Result, error) {
	h, err := e.SubmitAsyncInto(l, dst)
	if err != nil {
		return Result{}, err
	}
	return h.Wait(), nil
}

// SubmitAsync enqueues one reduction job and returns a Handle without
// waiting for execution, so a client can pipeline many submissions before
// waiting. Jobs submitted while a same-pattern batch is queued fuse into
// it without consuming a queue slot; a job needing a fresh batch blocks
// while the queue is at QueueDepth (backpressure), until a worker frees a
// slot.
func (e *Engine) SubmitAsync(l *trace.Loop) (*Handle, error) {
	return e.SubmitAsyncInto(l, nil)
}

// SubmitAsyncInto is SubmitAsync with a caller-provided destination array.
// The destination must not be read or reused until Wait returns.
func (e *Engine) SubmitAsyncInto(l *trace.Loop, dst []float64) (*Handle, error) {
	return e.SubmitAsyncIntoTenant(l, dst, 0)
}

// SubmitAsyncIntoTenant is SubmitAsyncInto on behalf of a tenant (an
// index from TenantIndex; out-of-range degrades to the default tenant).
// The job queues on the tenant's own FIFO and fuses only with the same
// tenant's same-pattern jobs — cross-tenant fusion would let one
// tenant's traffic ride (and observe) another's scheduling share.
func (e *Engine) SubmitAsyncIntoTenant(l *trace.Loop, dst []float64, tenant int) (*Handle, error) {
	if l == nil {
		return nil, errors.New("engine: nil loop")
	}
	if l.NumElems <= 0 {
		return nil, fmt.Errorf("engine: loop %q has non-positive NumElems", l.Name)
	}
	if tenant < 0 || tenant >= len(e.tenants) {
		tenant = 0
	}
	j := &job{loop: l, dst: dst, done: make(chan Result, 1)}
	fp := l.Fingerprint()
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.co == nil {
		e.q.push(tenant, &batch{fp: fp, tenant: tenant, jobs: []*job{j}, enq: time.Now()})
	} else if b, isNew := e.co.add(fp, tenant, j); isNew {
		// The batch stays open to joiners while this send waits for a
		// queue slot and until a worker seals it — that queue residency is
		// the coalescing window.
		e.q.push(tenant, b)
	}
	return &Handle{done: j.done}, nil
}

// Close drains the queue, stops the workers and waits for them. Submit
// calls racing with Close either complete or return ErrClosed.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	e.q.close()
	e.closeMu.Unlock()
	e.wg.Wait()
}

// workerCtx is one worker's reusable per-batch scratch: the pooled
// execution context, the block-time measurement array, the feedback bounds
// snapshot, the fused-destination slice and the worker's stat shard.
type workerCtx struct {
	ex     *reduction.Exec
	times  []float64
	bounds []int
	outs   [][]float64
	stats  *statShard
}

// worker owns one reusable execution context and one stat shard, and
// serves batches until the queue closes.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	w := &workerCtx{
		ex: &reduction.Exec{
			Pool:            e.pool,
			MergeBlockElems: reduction.MergeBlockForCache(e.cfg.Platform.Cfg.L2Bytes, e.cfg.Platform.Procs),
		},
		times: make([]float64, e.cfg.Platform.Procs),
		stats: &e.statShards[id],
	}
	for b := e.q.pop(); b != nil; b = e.q.pop() {
		e.runBatch(w, b)
	}
}
