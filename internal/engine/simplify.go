package engine

import (
	"time"

	"repro/internal/adapt"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
)

// This file wires the algebraic simplification layer into the batch
// path. A sealed batch that carries overlap members — or a singleton
// whose geometry makes incremental re-reduction worthwhile — is analyzed
// into a segment decomposition (pattern.AnalyzeSegments via
// reduction.BuildSegPlan); when the decision boundary
// (adapt.RecommendSimplify) finds the shared-segment work plus the
// combine column cheaper than the members' direct executions, the batch
// runs as one set of per-segment partial sums. Segment sums are cached
// on the decision-cache entry between batches, so a stream that mutates
// one window of an otherwise-stable loop recomputes only the affected
// segments.
//
// The cache claim protocol mirrors the entry's other mutable state: all
// segment fields live under entry.mu, and segBusy grants one worker at a
// time exclusive use of the cache (a concurrent same-pattern batch falls
// back to the direct path rather than wait). A recalibration scheme
// switch bumps decGen; the claim compares it against the generation the
// cache was built under and drops stale sums, so a workload that drifted
// enough to change its scheme never reuses pre-drift partial sums.
//
// Simplified executions deliberately do not feed the drift detector's
// cost EWMA: their cost tracks overlap and cache warmth, not the cached
// scheme's fit, and one stray sample would poison the anchor the
// detector compares direct executions against. Content drift is instead
// handled inside the layer itself — every reuse is verified against the
// submitted subscripts, and repeated decision declines shut the analysis
// off (segMissLimit) until the entry's decision changes.

const (
	// segSeedAfter is how many singleton batches of a seed-worthy pattern
	// must arrive before the engine pays one simplified execution to fill
	// the entry's segment cache. The seed run costs about one direct
	// execution plus the analysis sweep; every later submission with
	// surviving content reuses its sums.
	segSeedAfter = 2
	// segMissLimit is how many consecutive declined analyses (cold or
	// drifted content) turn the layer off for an entry; a recalibration
	// scheme switch re-arms it.
	segMissLimit = 3
	// segCacheMaxBytes caps one entry's segment-cache footprint (sum
	// buffers plus retained subscript content).
	segCacheMaxBytes = 4 << 20
)

// trySimplified offers a sealed batch to the simplification layer. It
// returns true when the batch was fully executed (results delivered,
// stats recorded); false means the caller runs the direct path.
func (e *Engine) trySimplified(w *workerCtx, entry *cacheEntry, hit bool, jobs, ov []*job, qw, insp time.Duration) bool {
	if e.cfg.DisableSimplify {
		return false
	}
	l := jobs[0].loop
	if l.Op != trace.OpAdd || l.NumIters() == 0 {
		return false
	}
	procs := e.cfg.Platform.Procs
	segIters := reduction.DefaultSegIters(l.NumIters(), procs)
	segments := (l.NumIters() + segIters - 1) / segIters
	th := adapt.DefaultSimplifyThresholds()
	seedable := adapt.SimplifySeedWorthwhile(l.TotalRefs(), l.NumElems, segments, th) &&
		reduction.SegCacheBytes(l, segIters) <= segCacheMaxBytes

	ovGroups := groupByLoop(ov)
	occ := 1 + len(ovGroups)

	// Claim the entry's segment cache. Everything that can decline
	// cheaply declines here, before the analysis sweep.
	entry.mu.Lock()
	if entry.segBusy {
		entry.mu.Unlock()
		return false
	}
	if entry.segGen != entry.decGen {
		// The decision switched: the cached sums belong to a workload
		// that no longer exists, and the decline counter re-arms with it.
		entry.segs = nil
		entry.segSeen, entry.segMiss = 0, 0
		entry.segGen = entry.decGen
	}
	if entry.segMiss >= segMissLimit {
		entry.mu.Unlock()
		return false
	}
	if entry.segs != nil && !entry.segs.Matches(l, segIters) {
		// The geometry moved on under a stable decision (possible when
		// distinct same-fingerprint objects alternate): start over.
		entry.segs = nil
	}
	warm := entry.segs != nil
	if occ == 1 && !warm {
		if !seedable {
			entry.mu.Unlock()
			return false
		}
		entry.segSeen++
		if entry.segSeen < segSeedAfter {
			entry.mu.Unlock()
			return false
		}
	}
	if entry.segs == nil && seedable {
		entry.segs = reduction.NewSegCache(l, segIters)
		entry.segGen = entry.decGen
	}
	cache := entry.segs
	entry.segBusy = true
	entry.mu.Unlock()

	members := make([]*trace.Loop, 1, occ)
	members[0] = l
	for _, g := range ovGroups {
		members = append(members, g[0].loop)
	}
	plan, err := reduction.BuildSegPlanProcs(members, segIters, procs)
	if err != nil {
		// Overlap joiners passed the cheap geometry gate but not the
		// analysis's offsets check; the batch is not decomposable.
		e.releaseSeg(entry, false)
		w.stats.recordSimplify(false, 0, 0)
		return false
	}

	why := "seeding segment cache for incremental re-reduction"
	if !(occ == 1 && !warm) {
		in := adapt.SimplifyInput{
			Occupancy:     occ,
			Members:       plan.Analysis.Members,
			Segments:      plan.Analysis.Segments,
			Unique:        plan.Analysis.Unique,
			CachedTasks:   plan.CachedTasks(cache),
			RefsPerMember: l.TotalRefs(),
			NumElems:      l.NumElems,
			ConstRunFrac:  plan.Analysis.ConstRunFrac,
		}
		ok, rationale := adapt.RecommendSimplify(in, th)
		if !ok {
			e.releaseSeg(entry, false)
			w.stats.recordSimplify(false, 0, 0)
			return false
		}
		why = rationale
	}

	// One destination per distinct loop; duplicate jobs get copies below,
	// exactly like the direct path's batch fan-out.
	dsts := make([][]float64, len(members))
	dsts[0] = sizeDst(jobs[0].dst, l.NumElems)
	for gi, g := range ovGroups {
		dsts[gi+1] = sizeDst(g[0].dst, l.NumElems)
	}

	start := time.Now()
	st := plan.Run(procs, w.ex, cache, dsts)
	elapsed := time.Since(start)
	e.releaseSeg(entry, true)
	w.stats.stages.Observe(obs.StageExecute, elapsed)

	res := Result{
		Scheme:    "simplify",
		Why:       why,
		CacheHit:  true,
		Elapsed:   elapsed,
		QueueWait: qw,
		Inspect:   insp,
		BatchSize: len(jobs) + len(ov),
	}
	// Materialize every member's values before sending any result: the
	// first send wakes its client, which may legally resubmit its
	// destination array — the one later copies still read from.
	type delivery struct {
		j *job
		r Result
	}
	var out []delivery
	collect := func(g []*job, src []float64, leader bool) {
		for i, j := range g {
			r := res
			if leader && i == 0 {
				r.CacheHit = hit
			}
			if i == 0 {
				r.Values = src
			} else {
				d := sizeDst(j.dst, l.NumElems)
				copy(d, src)
				r.Values = d
			}
			out = append(out, delivery{j, r})
		}
	}
	collect(jobs, dsts[0], true)
	for gi, g := range ovGroups {
		collect(g, dsts[gi+1], false)
	}
	for _, d := range out {
		d.j.done <- d.r
	}

	w.stats.record("simplify", len(jobs)+len(ov), hit)
	w.stats.recordSimplify(true, st.Computed, st.Reused)
	return true
}

// releaseSeg returns the entry's segment-cache claim. A successful
// simplified run re-arms the decline counter; a decline counts toward
// segMissLimit and, at the limit, drops the cache so the entry stops
// paying for analyses that never win.
func (e *Engine) releaseSeg(entry *cacheEntry, success bool) {
	entry.mu.Lock()
	entry.segBusy = false
	if success {
		entry.segMiss = 0
	} else {
		entry.segMiss++
		if entry.segMiss >= segMissLimit {
			entry.segs = nil
		}
	}
	if entry.segs != nil && entry.segGen != entry.decGen {
		entry.segs = nil
	}
	entry.mu.Unlock()
}
