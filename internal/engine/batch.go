package engine

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// job is one submitted reduction with its result channel.
type job struct {
	loop *trace.Loop
	dst  []float64
	done chan Result
}

// batch is the engine's unit of execution: one or more jobs over the same
// loop, fused so that pattern lookup, feedback-schedule installation,
// privatization and accumulation are paid once for all members. jobs[0] is
// the leader whose execution produces the result; the other members
// receive it through the reduction.Exec batch fan-out.
//
// ov holds overlap joiners: same-fingerprint jobs over distinct loop
// objects with the leader's iteration geometry. They cannot share the
// leader's execution (the fingerprint samples the trace, so distinct
// objects may hold distinct content), but they are candidates for the
// simplified plan — the segment analysis finds whatever subrange content
// they do share and executes the batch as one set of partial sums.
type batch struct {
	fp uint64
	// tenant is the scheduler index of the tenant whose FIFO the batch
	// queues on; all members share it (fusion is tenant-scoped).
	tenant int
	// allowOv admits overlap joiners; set at registration when the engine
	// has simplification enabled and the leader is an add reduction.
	allowOv bool
	// enq is when the batch entered the submission queue; the dequeuing
	// worker reads it once to charge the queue_wait stage.
	enq time.Time

	mu     sync.Mutex
	sealed bool
	jobs   []*job
	ov     []*job

	// sess marks a streaming-session operation riding the queue alone:
	// the batch has no jobs and runBatch routes it to runSession before
	// any of the adaptive machinery runs.
	sess *sessionWork
}

// tryJoin appends j to the batch if it is still open, has room, and its
// leader submitted the identical loop — or, on an overlap-admitting
// batch, a distinct loop with the leader's geometry (iteration shape,
// dimension, operator), which rides as an overlap member instead.
func (b *batch) tryJoin(j *job, maxBatch int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed || len(b.jobs)+len(b.ov) >= maxBatch {
		return false
	}
	lead := b.jobs[0].loop
	switch {
	case lead == j.loop:
		b.jobs = append(b.jobs, j)
	case b.allowOv && j.loop.Op == lead.Op &&
		j.loop.NumElems == lead.NumElems &&
		j.loop.NumIters() == lead.NumIters() &&
		j.loop.TotalRefs() == lead.TotalRefs():
		b.ov = append(b.ov, j)
	default:
		return false
	}
	return true
}

// seal closes the batch to joiners and returns its members and overlap
// members.
func (b *batch) seal() ([]*job, []*job) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sealed = true
	return b.jobs, b.ov
}

// coalescer tracks open batches by fingerprint so same-pattern jobs fuse.
// The coalescing window is a batch's queue residency: a batch accepts
// joiners from the moment it is registered until a worker dequeues and
// seals it. Under backlog (the regime where fusion pays) batches fill up;
// an idle engine executes singletons with no added latency. The map is
// sharded like the decision cache so registration never takes a global
// lock.
type coalescer struct {
	maxBatch int
	// allowOv marks new batches overlap-admitting when their leader is an
	// add reduction (the simplified plan's fast path).
	allowOv bool
	shards  []coalesceShard
	mask    uint64
}

// coKey names one open batch: the pattern fingerprint scoped by tenant,
// so same-pattern jobs from different tenants never fuse — fusion would
// let one tenant's jobs ride (and leak timing through) another tenant's
// scheduling share.
type coKey struct {
	fp     uint64
	tenant int
}

type coalesceShard struct {
	mu      sync.Mutex
	pending map[coKey]*batch
}

func newCoalescer(shardCount, maxBatch int, allowOv bool) *coalescer {
	c := &coalescer{
		maxBatch: maxBatch,
		allowOv:  allowOv,
		shards:   make([]coalesceShard, shardCount),
		mask:     uint64(shardCount - 1),
	}
	for i := range c.shards {
		c.shards[i].pending = make(map[coKey]*batch)
	}
	return c
}

// add fuses j into the tenant's open batch for fp when one exists, else
// registers a new batch. The boolean reports the new-batch case, where
// the caller must enqueue the returned batch; a fused join costs no
// queue slot. Sharding stays by fingerprint — tenants share the shard
// space but never a batch.
func (c *coalescer) add(fp uint64, tenant int, j *job) (*batch, bool) {
	key := coKey{fp: fp, tenant: tenant}
	s := &c.shards[fp&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.pending[key]; ok && b.tryJoin(j, c.maxBatch) {
		return b, false
	}
	b := &batch{fp: fp, tenant: tenant, jobs: []*job{j}, allowOv: c.allowOv && j.loop.Op == trace.OpAdd, enq: time.Now()}
	s.pending[key] = b
	return b, true
}

// remove unregisters b if it is still the open batch for its key. Workers
// call it after sealing, so a later same-fingerprint job starts a fresh
// batch instead of joining one already executing.
func (c *coalescer) remove(fp uint64, b *batch) {
	key := coKey{fp: fp, tenant: b.tenant}
	s := &c.shards[fp&c.mask]
	s.mu.Lock()
	if s.pending[key] == b {
		delete(s.pending, key)
	}
	s.mu.Unlock()
}

// runBatch executes one sealed batch through the cached adaptive path:
// decision lookup, feedback-schedule installation, one scheme execution
// with the members' destinations fanned out, one measurement fed back.
// A batch carrying overlap members (or a seed-worthy singleton) first
// offers itself to the simplification layer; when that declines, the
// leader group runs the cached scheme directly and each overlap group
// runs its own direct execution over the same decision.
func (e *Engine) runBatch(w *workerCtx, b *batch) {
	t := e.tenants[0]
	if b.tenant > 0 && b.tenant < len(e.tenants) {
		t = e.tenants[b.tenant]
	}
	if b.sess != nil {
		var qw time.Duration
		if !b.enq.IsZero() {
			qw = time.Since(b.enq)
			w.stats.stages.Observe(obs.StageQueueWait, qw)
			t.queueWait.Observe(qw)
		}
		t.jobs.Add(1)
		t.batches.Add(1)
		e.runSession(w, b.sess, qw)
		return
	}
	jobs, ov := b.seal()
	if e.co != nil {
		e.co.remove(b.fp, b)
	}
	l := jobs[0].loop

	// Stage attribution: queue wait is the batch's queue residency up to
	// this seal (batches hand-built by tests carry no enqueue time and
	// charge nothing); inspect is the lookup latency when the decision
	// cache missed and characterization ran inside it.
	var qw time.Duration
	if !b.enq.IsZero() {
		qw = time.Since(b.enq)
		w.stats.stages.Observe(obs.StageQueueWait, qw)
		t.queueWait.Observe(qw)
	}
	t.jobs.Add(uint64(len(jobs) + len(ov)))
	t.batches.Add(1)
	lookupStart := time.Now()
	entry, hit := e.lookup(l, b.fp)
	var insp time.Duration
	if !hit {
		insp = time.Since(lookupStart)
		w.stats.stages.Observe(obs.StageInspect, insp)
	}

	// A stale entry revalidates before executing, so this batch already
	// runs whatever the re-inspection concluded (old scheme while
	// hysteresis holds, new scheme once confirmed).
	if e.recalEnabled() {
		if reinspected, switched := e.maybeReinspect(entry, l); reinspected {
			w.stats.recordRecal(switched)
			t.recals.Add(1)
			if switched {
				t.switches.Add(1)
			}
		}
	}

	if e.trySimplified(w, entry, hit, jobs, ov, qw, insp) {
		return
	}
	e.runDirect(w, entry, jobs, hit, true, qw, insp)
	for _, g := range groupByLoop(ov) {
		// Overlap joiners that did not simplify reuse the cached decision
		// (their fingerprint led them here) but execute per loop object.
		e.runDirect(w, entry, g, true, false, qw, 0)
	}
}

// groupByLoop partitions jobs into groups of pointer-identical loops,
// preserving arrival order.
func groupByLoop(jobs []*job) [][]*job {
	var groups [][]*job
	for _, j := range jobs {
		placed := false
		for gi := range groups {
			if groups[gi][0].loop == j.loop {
				groups[gi] = append(groups[gi], j)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []*job{j})
		}
	}
	return groups
}

// runDirect executes one pointer-identical job group through the entry's
// cached scheme. feedCost gates the drift detector: only the batch's
// primary group feeds it, so one queue batch contributes one cost sample
// regardless of how many overlap groups fell back.
func (e *Engine) runDirect(w *workerCtx, entry *cacheEntry, jobs []*job, hit bool, feedCost bool, qw, insp time.Duration) {
	l := jobs[0].loop
	procs := e.cfg.Platform.Procs

	// Snapshot the decision and install its feedback boundaries in one
	// critical section: a recalibration switch between the two would
	// otherwise recreate the scheduler the switch just dropped under the
	// old scheme, and the generation read after that recreation would
	// let the old scheme's block times pass the guard below and seed the
	// new scheme's schedule. The scheduler is created before the first
	// run so the batch executes the exact partition its measurement will
	// be attributed to.
	w.ex.IterBounds = nil
	w.ex.BlockTimes = nil
	var genSeen uint64
	entry.mu.Lock()
	scheme, name, why, decSeen := entry.scheme, entry.name, entry.conf.Why, entry.decGen
	useFeedback := entry.feedback && !e.cfg.DisableFeedback && l.NumIters() > 0
	if useFeedback {
		if entry.fb == nil || entry.fbIters != l.NumIters() {
			entry.fb = sched.NewFeedbackScheduler(procs, l.NumIters())
			entry.fbIters = l.NumIters()
			entry.gen++
		}
		w.bounds = entry.fb.BoundsInto(w.bounds)
		genSeen = entry.gen
	}
	entry.mu.Unlock()
	if useFeedback {
		w.ex.IterBounds = w.bounds
		w.ex.BlockTimes = w.times
	}

	// Size every member's destination; the scheme writes them all in one
	// execution. A caller-provided dst with sufficient capacity is reused,
	// so batched SubmitInto results alias the caller's array exactly like
	// unbatched ones.
	w.outs = w.outs[:0]
	for _, j := range jobs[1:] {
		w.outs = append(w.outs, sizeDst(j.dst, l.NumElems))
	}
	w.ex.BatchOut = w.outs

	start := time.Now()
	out := scheme.RunInto(l, procs, w.ex, jobs[0].dst)
	elapsed := time.Since(start)
	w.ex.BatchOut = nil
	w.stats.stages.Observe(obs.StageExecute, elapsed)

	res := Result{
		Scheme:    name,
		Why:       why,
		CacheHit:  hit,
		Elapsed:   elapsed,
		QueueWait: qw,
		Inspect:   insp,
		BatchSize: len(jobs),
	}

	// Feed the measured per-block times back into the entry's scheduler.
	// A measurement only applies to the boundaries it was taken under, so
	// it is dropped when a concurrent batch already moved them (the
	// generation changed).
	if useFeedback {
		res.Imbalance = sched.Imbalance(w.times)
		entry.mu.Lock()
		if entry.gen == genSeen && entry.fbIters == l.NumIters() {
			entry.fb.Record(w.times)
			entry.gen++
		}
		entry.mu.Unlock()
	}

	w.stats.record(name, len(jobs), hit)

	for i, j := range jobs {
		r := res
		if i == 0 {
			r.Values = out
		} else {
			// Members fused into another job's execution reused its cached
			// decision by construction.
			r.Values = w.outs[i-1]
			r.CacheHit = true
		}
		j.done <- r
	}
	// Drop references to member destinations so the scratch slice does not
	// pin client arrays until the next batch.
	for i := range w.outs {
		w.outs[i] = nil
	}

	// Feed the drift detector last: the periodic re-profile it may run is
	// deliberately off the members' latency path — their results are
	// already sent.
	if feedCost && e.recalEnabled() {
		e.recordCost(entry, l, elapsed, decSeen)
	}
}

// sizeDst returns dst resized to n when its capacity suffices, else a
// fresh array. Every element is written by the batch fan-out, so no
// zeroing is needed.
func sizeDst(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}
