package engine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// TenantConfig names one tenant and its share of the engine. Weights are
// relative: under saturation a tenant receives weight/sum(weights) of
// the batch executions (the DRR guarantee), and any share a tenant does
// not use flows to the backlogged ones (work conservation).
type TenantConfig struct {
	// Name identifies the tenant; clients claim it in their HELLO frame.
	Name string
	// Weight is the DRR scheduling weight. 0 means 1; negative is a
	// configuration error.
	Weight int
}

// DefaultTenant is the identity of traffic that claims no tenant: legacy
// clients, and multi-tenant configs always include it at index 0.
const DefaultTenant = "default"

// tenantRT is one tenant's runtime state: its scheduling identity plus
// the per-tenant counters runBatch records. Counters are atomics — a
// batch bumps its tenant's row exactly once, so there is nothing to
// shard.
type tenantRT struct {
	name   string
	weight int

	jobs      atomic.Uint64
	batches   atomic.Uint64
	recals    atomic.Uint64
	switches  atomic.Uint64
	queueWait obs.Histogram
}

func (t *tenantRT) snapshot() TenantStats {
	return TenantStats{
		Name:           t.name,
		Weight:         t.weight,
		Jobs:           t.jobs.Load(),
		Batches:        t.batches.Load(),
		Recalibrations: t.recals.Load(),
		SchemeSwitches: t.switches.Load(),
		QueueWait:      t.queueWait.Snapshot(),
	}
}

// buildTenants turns the configured tenant list into the runtime table.
// Index 0 is always the default tenant; a config entry named "default"
// adjusts its weight instead of adding a row. Order is preserved — it is
// the DRR round order and the index space SubmitAsyncIntoTenant uses.
func buildTenants(cfgs []TenantConfig) ([]*tenantRT, map[string]int, error) {
	tenants := []*tenantRT{{name: DefaultTenant, weight: 1}}
	idx := map[string]int{DefaultTenant: 0}
	for _, tc := range cfgs {
		if tc.Name == "" {
			return nil, nil, fmt.Errorf("engine: tenant with empty name")
		}
		if tc.Weight < 0 {
			return nil, nil, fmt.Errorf("engine: tenant %q has negative weight %d", tc.Name, tc.Weight)
		}
		w := tc.Weight
		if w == 0 {
			w = 1
		}
		if i, dup := idx[tc.Name]; dup {
			if tc.Name != DefaultTenant {
				return nil, nil, fmt.Errorf("engine: duplicate tenant %q", tc.Name)
			}
			tenants[i].weight = w
			continue
		}
		idx[tc.Name] = len(tenants)
		tenants = append(tenants, &tenantRT{name: tc.Name, weight: w})
	}
	return tenants, idx, nil
}

// TenantIndex resolves a tenant name to its scheduler index. Unknown
// names (and the empty name) map to the default tenant — an
// unrecognized HELLO claim degrades to legacy treatment rather than an
// error, so config skew between tiers cannot reject traffic.
func (e *Engine) TenantIndex(name string) int {
	if i, ok := e.tenantIdx[name]; ok {
		return i
	}
	return 0
}

// Tenants reports the configured tenant names in scheduler order.
func (e *Engine) Tenants() []string {
	names := make([]string, len(e.tenants))
	for i, t := range e.tenants {
		names[i] = t.name
	}
	return names
}
