package engine

import (
	"math/rand"
	"testing"
)

// drrOracle is a brute-force reference of the unit-cost DRR policy, built
// the way drrQueue deliberately is not: one arrival-ordered slice scanned
// linearly per pop, no per-tenant FIFOs, no head indices. The two share
// only the policy's specification — round pointer over tenants in index
// order, deficit replenished from the weight when a backlogged tenant is
// reached with none, one credit per batch, forfeiture when a tenant
// empties — so agreement on random traces pins the optimized queue
// against the spec, in the style of the DeltaState oracle suite.
type drrOracle struct {
	weights []int
	deficit []int
	cur     int
	arrived []oracleItem
}

type oracleItem struct{ tenant, id int }

func newDRROracle(weights []int) *drrOracle {
	return &drrOracle{weights: weights, deficit: make([]int, len(weights))}
}

func (o *drrOracle) push(tenant, id int) {
	o.arrived = append(o.arrived, oracleItem{tenant, id})
}

func (o *drrOracle) backlog(tenant int) int {
	n := 0
	for _, it := range o.arrived {
		if it.tenant == tenant {
			n++
		}
	}
	return n
}

func (o *drrOracle) pop() (oracleItem, bool) {
	if len(o.arrived) == 0 {
		return oracleItem{}, false
	}
	for {
		if o.backlog(o.cur) == 0 {
			o.deficit[o.cur] = 0
			o.cur = (o.cur + 1) % len(o.weights)
			continue
		}
		if o.deficit[o.cur] == 0 {
			o.deficit[o.cur] = o.weights[o.cur]
		}
		for i, it := range o.arrived {
			if it.tenant != o.cur {
				continue
			}
			o.arrived = append(o.arrived[:i], o.arrived[i+1:]...)
			o.deficit[o.cur]--
			if o.backlog(o.cur) == 0 {
				o.deficit[o.cur] = 0
				o.cur = (o.cur + 1) % len(o.weights)
			} else if o.deficit[o.cur] == 0 {
				o.cur = (o.cur + 1) % len(o.weights)
			}
			return it, true
		}
	}
}

// TestDRRMatchesOracle replays seeded random arrival/service traces —
// random tenant counts, weights, and push/pop interleavings — through
// drrQueue and the brute-force oracle, requiring the exact same batch on
// every pop. Fingerprints carry the batch identity across the queue.
func TestDRRMatchesOracle(t *testing.T) {
	const depth = 16
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ntenants := 1 + rng.Intn(4)
		weights := make([]int, ntenants)
		for i := range weights {
			weights[i] = 1 + rng.Intn(5)
		}
		q := newDRRQueue(weights, depth)
		o := newDRROracle(weights)
		queued := make([]int, ntenants) // mirror of per-tenant occupancy so pushes never block
		total, nextID := 0, 0
		for step := 0; step < 2000; step++ {
			tenant := rng.Intn(ntenants)
			if rng.Intn(3) != 0 && queued[tenant] < depth {
				b := &batch{fp: uint64(nextID), tenant: tenant}
				if !q.push(tenant, b) {
					t.Fatalf("seed %d: push on open queue refused", seed)
				}
				o.push(tenant, nextID)
				queued[tenant]++
				total++
				nextID++
			} else if total > 0 {
				got := q.pop()
				want, ok := o.pop()
				if !ok || got == nil {
					t.Fatalf("seed %d step %d: pop on non-empty queue returned nothing", seed, step)
				}
				if int(got.fp) != want.id || got.tenant != want.tenant {
					t.Fatalf("seed %d step %d: queue served batch %d (tenant %d), oracle %d (tenant %d)",
						seed, step, got.fp, got.tenant, want.id, want.tenant)
				}
				queued[got.tenant]--
				total--
			}
		}
		// Drain fully: the tail must agree too (deficit forfeiture on the
		// way down is where a banked-credit bug would surface).
		for total > 0 {
			got := q.pop()
			want, _ := o.pop()
			if int(got.fp) != want.id {
				t.Fatalf("seed %d drain: queue served %d, oracle %d", seed, got.fp, want.id)
			}
			total--
		}
		if q.queued() != 0 {
			t.Fatalf("seed %d: %d batches stranded after drain", seed, q.queued())
		}
	}
}

// TestDRRSharesUnderSaturation pins share convergence exactly: with every
// tenant continuously backlogged, each round of sum(weights) pops serves
// tenant i precisely weight_i times — the weighted-fair guarantee the
// multi-tenant engine advertises, with no tolerance band needed because
// unit-cost DRR is deterministic.
func TestDRRSharesUnderSaturation(t *testing.T) {
	weights := []int{4, 2, 1, 1}
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	const rounds = 25
	q := newDRRQueue(weights, rounds*8)
	for tenant, w := range weights {
		for j := 0; j < rounds*w; j++ {
			q.push(tenant, &batch{tenant: tenant})
		}
	}
	served := make([]int, len(weights))
	for r := 0; r < rounds; r++ {
		roundServed := make([]int, len(weights))
		for i := 0; i < sumW; i++ {
			b := q.pop()
			roundServed[b.tenant]++
			served[b.tenant]++
		}
		for tenant, w := range weights {
			if roundServed[tenant] != w {
				t.Fatalf("round %d: tenant %d served %d, want exactly weight %d", r, tenant, roundServed[tenant], w)
			}
		}
	}
	for tenant, w := range weights {
		if served[tenant] != rounds*w {
			t.Fatalf("tenant %d served %d over %d rounds, want %d", tenant, served[tenant], rounds, rounds*w)
		}
	}
}

// TestDRRWorkConservation pins that capacity never idles on an absent
// tenant: with only one tenant backlogged, every pop serves it — idle
// tenants neither receive service nor bank credit for later.
func TestDRRWorkConservation(t *testing.T) {
	weights := []int{3, 2, 5}
	q := newDRRQueue(weights, 64)
	for phase := 0; phase < len(weights)*3; phase++ {
		tenant := phase % len(weights)
		for j := 0; j < 10; j++ {
			q.push(tenant, &batch{tenant: tenant})
		}
		for j := 0; j < 10; j++ {
			if b := q.pop(); b.tenant != tenant {
				t.Fatalf("phase %d: pop served idle tenant %d while %d was the only backlog", phase, b.tenant, tenant)
			}
		}
	}
	// A tenant that sat idle through other phases must not have banked
	// service: after all phases, one round over fresh equal backlog still
	// follows the weights exactly.
	for tenant := range weights {
		for j := 0; j < 10; j++ {
			q.push(tenant, &batch{tenant: tenant})
		}
	}
	counts := make([]int, len(weights))
	for i := 0; i < 3+2+5; i++ {
		counts[q.pop().tenant]++
	}
	for tenant, w := range weights {
		if counts[tenant] != w {
			t.Fatalf("post-idle round: tenant %d served %d, want %d", tenant, counts[tenant], w)
		}
	}
}

// TestDRRStarvationFreedom bounds the service gap adversarially: however
// hard the other tenants flood, a backlogged tenant waits at most one
// round — sum of the other tenants' weights — between consecutive
// services.
func TestDRRStarvationFreedom(t *testing.T) {
	weights := []int{8, 8, 1} // tenant 2 is the weight-1 victim
	otherW := weights[0] + weights[1]
	q := newDRRQueue(weights, 4096)
	for j := 0; j < 2000; j++ {
		q.push(0, &batch{tenant: 0})
		q.push(1, &batch{tenant: 1})
	}
	const victimJobs = 100
	for j := 0; j < victimJobs; j++ {
		q.push(2, &batch{tenant: 2})
	}
	gap, victimServed := 0, 0
	for victimServed < victimJobs {
		b := q.pop()
		if b.tenant == 2 {
			victimServed++
			gap = 0
			continue
		}
		gap++
		if gap > otherW {
			t.Fatalf("victim tenant starved for %d pops (bound %d) after %d services", gap, otherW, victimServed)
		}
	}
}

// TestDRRIsolationAdversarial is the deterministic half of the isolation
// story (the wall-clock half lives in BenchmarkTenantIsolation): a hot
// tenant holding a 10x standing backlog may not stretch a background
// batch's queue residency beyond one DRR round, measured in service
// ticks. Without per-tenant queues the same batch would wait behind the
// entire hot backlog.
func TestDRRIsolationAdversarial(t *testing.T) {
	weights := []int{1, 1}
	sumW := 2
	q := newDRRQueue(weights, 8192)
	hotBacklog := 5000
	for j := 0; j < hotBacklog; j++ {
		q.push(0, &batch{tenant: 0})
	}
	for trial := 0; trial < 50; trial++ {
		q.push(1, &batch{tenant: 1})
		ticks := 0
		for {
			ticks++
			if q.pop().tenant == 1 {
				break
			}
		}
		if ticks > sumW {
			t.Fatalf("trial %d: background batch waited %d service ticks behind a hot backlog (bound %d)", trial, ticks, sumW)
		}
		// Keep the hot backlog standing at 10x-forever pressure.
		q.push(0, &batch{tenant: 0})
		q.push(0, &batch{tenant: 0})
	}
}
