// Package simcache models the per-node two-level write-back cache
// hierarchy of the simulated CC-NUMA machine, including the PCLR
// "reduction" line state of Section 5.1.1: lines holding reduction data
// are non-coherent, are filled with neutral elements on a miss by the
// local directory, and their displacement triggers a combining write-back
// at the home directory instead of an ordinary write-back.
package simcache

import "fmt"

// State is a cache line's coherence state.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Clean: present, consistent with memory.
	Clean
	// Dirty: present, modified, owned (ordinary write-back on eviction).
	Dirty
	// Reduction: the PCLR state — non-coherent private accumulation
	// storage; eviction produces a combining write-back.
	Reduction
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Clean:
		return "Clean"
	case Dirty:
		return "Dirty"
	case Reduction:
		return "Reduction"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Eviction describes a line pushed out of the hierarchy.
type Eviction struct {
	Line  int64
	State State
}

// Level is one set-associative cache level with LRU replacement.
type Level struct {
	sets, assoc int
	tags        []int64
	states      []State
}

// NewLevel builds a level from geometry in bytes.
func NewLevel(bytes, assoc, lineBytes int) *Level {
	if bytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		panic("simcache: geometry must be positive")
	}
	lines := bytes / lineBytes
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	l := &Level{sets: sets, assoc: assoc,
		tags:   make([]int64, sets*assoc),
		states: make([]State, sets*assoc),
	}
	for i := range l.tags {
		l.tags[i] = -1
	}
	return l
}

// Lookup returns the line's state without changing replacement order.
func (l *Level) Lookup(line int64) State {
	base := l.setBase(line)
	for i := 0; i < l.assoc; i++ {
		if l.tags[base+i] == line {
			return l.states[base+i]
		}
	}
	return Invalid
}

// Access touches the line, moving it to MRU. If absent it is installed in
// the given state and the previous LRU entry is returned as an eviction
// (ev.State == Invalid means nothing meaningful was evicted). If present,
// the state is upgraded to install when install > current (Clean->Dirty,
// anything->Reduction is NOT implied — callers handle state transitions
// explicitly via SetState when the protocol requires them).
func (l *Level) Access(line int64, install State) (hit bool, ev Eviction) {
	base := l.setBase(line)
	for i := 0; i < l.assoc; i++ {
		if l.tags[base+i] == line {
			st := l.states[base+i]
			if install > st {
				st = install
			}
			l.promote(base, i, st)
			return true, Eviction{Line: -1, State: Invalid}
		}
	}
	ev = Eviction{Line: l.tags[base+l.assoc-1], State: l.states[base+l.assoc-1]}
	if ev.Line < 0 {
		ev.State = Invalid
	}
	// Shift and install at MRU.
	copy(l.tags[base+1:base+l.assoc], l.tags[base:base+l.assoc-1])
	copy(l.states[base+1:base+l.assoc], l.states[base:base+l.assoc-1])
	l.tags[base] = line
	l.states[base] = install
	return false, ev
}

// SetState changes the state of a present line; it is a no-op when absent.
func (l *Level) SetState(line int64, st State) {
	base := l.setBase(line)
	for i := 0; i < l.assoc; i++ {
		if l.tags[base+i] == line {
			l.states[base+i] = st
			return
		}
	}
}

// Invalidate removes the line, returning its previous state.
func (l *Level) Invalidate(line int64) State {
	base := l.setBase(line)
	for i := 0; i < l.assoc; i++ {
		if l.tags[base+i] == line {
			st := l.states[base+i]
			copy(l.tags[base+i:base+l.assoc-1], l.tags[base+i+1:base+l.assoc])
			copy(l.states[base+i:base+l.assoc-1], l.states[base+i+1:base+l.assoc])
			l.tags[base+l.assoc-1] = -1
			l.states[base+l.assoc-1] = Invalid
			return st
		}
	}
	return Invalid
}

// FlushState removes every line in state st and returns them. This is the
// PCLR end-of-loop cache flush when st == Reduction.
func (l *Level) FlushState(st State) []int64 {
	var out []int64
	for i, tag := range l.tags {
		if tag >= 0 && l.states[i] == st {
			out = append(out, tag)
			l.tags[i] = -1
			l.states[i] = Invalid
		}
	}
	return out
}

// CountState returns how many resident lines are in state st.
func (l *Level) CountState(st State) int {
	n := 0
	for i, tag := range l.tags {
		if tag >= 0 && l.states[i] == st {
			n++
		}
	}
	return n
}

func (l *Level) setBase(line int64) int {
	set := int(line % int64(l.sets))
	if set < 0 {
		set += l.sets
	}
	return set * l.assoc
}

func (l *Level) promote(base, i int, st State) {
	line := l.tags[base+i]
	copy(l.tags[base+1:base+i+1], l.tags[base:base+i])
	copy(l.states[base+1:base+i+1], l.states[base:base+i])
	l.tags[base] = line
	l.states[base] = st
}

// Hierarchy is a two-level inclusive write-back hierarchy: every resident
// L1 line is also in L2. An L1 eviction of a modified line updates the L2
// copy's state; an L2 eviction enforces inclusion (invalidating any L1
// copy) and, if the line was Dirty or Reduction, the line leaves the node
// as a write-back.
type Hierarchy struct {
	L1, L2 *Level
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(l1Bytes, l1Assoc, l2Bytes, l2Assoc, lineBytes int) *Hierarchy {
	return &Hierarchy{
		L1: NewLevel(l1Bytes, l1Assoc, lineBytes),
		L2: NewLevel(l2Bytes, l2Assoc, lineBytes),
	}
}

// AccessResult describes where an access hit and what left the node.
type AccessResult struct {
	// LevelHit is 1 or 2 for a cache hit, 0 for a miss to memory.
	LevelHit int
	// WriteBack is the Dirty or Reduction line pushed out of the node by
	// this access, or nil.
	WriteBack *Eviction
}

// Access performs a load or store of the line, installing it in the given
// state on a miss. Reduction accesses pass Reduction; ordinary stores
// pass Dirty; ordinary loads pass Clean.
func (h *Hierarchy) Access(line int64, install State) AccessResult {
	var res AccessResult
	hit1, l1ev := h.L1.Access(line, install)
	if hit1 {
		res.LevelHit = 1
		if install >= Dirty {
			h.L2.SetState(line, install)
		}
		return res
	}
	// Spill the L1 victim's modified state into its (inclusive) L2 copy.
	if l1ev.Line >= 0 && l1ev.State >= Dirty {
		h.L2.SetState(l1ev.Line, l1ev.State)
	}
	hit2, l2ev := h.L2.Access(line, install)
	if hit2 {
		res.LevelHit = 2
		return res
	}
	res.LevelHit = 0
	if l2ev.Line >= 0 {
		// Inclusion: the L1 copy (if any) must go too; the write-back
		// carries the strongest state either level held.
		st := l2ev.State
		if st1 := h.L1.Invalidate(l2ev.Line); st1 > st {
			st = st1
		}
		if st >= Dirty {
			res.WriteBack = &Eviction{Line: l2ev.Line, State: st}
		}
	}
	return res
}

// FlushReduction removes every Reduction-state line from both levels and
// returns the distinct line set (the PCLR end-of-loop flush). The count of
// returned lines is Table 2's "Lines Flushed" contribution for this node.
func (h *Hierarchy) FlushReduction() []int64 {
	l2 := h.L2.FlushState(Reduction)
	seen := make(map[int64]struct{}, len(l2))
	for _, ln := range l2 {
		seen[ln] = struct{}{}
	}
	for _, ln := range h.L1.FlushState(Reduction) {
		if _, ok := seen[ln]; !ok {
			l2 = append(l2, ln)
			seen[ln] = struct{}{}
		}
	}
	return l2
}

// ResidentReduction returns how many distinct reduction lines are held.
func (h *Hierarchy) ResidentReduction() int {
	n := h.L2.CountState(Reduction)
	// Inclusive hierarchy: L1 reduction lines are in L2 too, except the
	// rare case where an L2 eviction raced; count L2 only.
	return n
}
