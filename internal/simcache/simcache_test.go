package simcache

import (
	"testing"
	"testing/quick"
)

func TestLevelBasicAccess(t *testing.T) {
	l := NewLevel(1024, 2, 64)
	hit, _ := l.Access(7, Clean)
	if hit {
		t.Fatal("first access must miss")
	}
	hit, _ = l.Access(7, Clean)
	if !hit {
		t.Fatal("second access must hit")
	}
	if st := l.Lookup(7); st != Clean {
		t.Errorf("state = %v, want Clean", st)
	}
}

func TestLevelStateUpgradeOnHit(t *testing.T) {
	l := NewLevel(1024, 2, 64)
	l.Access(7, Clean)
	l.Access(7, Dirty) // store upgrades
	if st := l.Lookup(7); st != Dirty {
		t.Errorf("state = %v, want Dirty after store hit", st)
	}
	// A Clean access never downgrades.
	l.Access(7, Clean)
	if st := l.Lookup(7); st != Dirty {
		t.Errorf("state = %v, Clean access must not downgrade", st)
	}
}

func TestLevelEvictionReportsState(t *testing.T) {
	l := NewLevel(128, 1, 64) // direct-mapped, 2 sets
	l.Access(0, Dirty)
	_, ev := l.Access(2, Clean) // same set
	if ev.Line != 0 || ev.State != Dirty {
		t.Errorf("eviction = %+v, want line 0 Dirty", ev)
	}
}

func TestLevelInvalidate(t *testing.T) {
	l := NewLevel(1024, 2, 64)
	l.Access(5, Reduction)
	if st := l.Invalidate(5); st != Reduction {
		t.Errorf("Invalidate returned %v, want Reduction", st)
	}
	if st := l.Lookup(5); st != Invalid {
		t.Errorf("line should be gone, state %v", st)
	}
	if st := l.Invalidate(5); st != Invalid {
		t.Errorf("double invalidate should return Invalid, got %v", st)
	}
}

func TestFlushStateSelective(t *testing.T) {
	l := NewLevel(4096, 4, 64)
	l.Access(1, Reduction)
	l.Access(2, Dirty)
	l.Access(3, Reduction)
	flushed := l.FlushState(Reduction)
	if len(flushed) != 2 {
		t.Fatalf("flushed %d lines, want 2", len(flushed))
	}
	if l.Lookup(2) != Dirty {
		t.Error("Dirty line must survive a Reduction flush")
	}
	if l.CountState(Reduction) != 0 {
		t.Error("no Reduction lines should remain")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(128, 1, 1024, 2, 64) // tiny L1 (2 lines), L2 16 lines
	res := h.Access(0, Clean)
	if res.LevelHit != 0 {
		t.Fatalf("cold access LevelHit = %d, want 0", res.LevelHit)
	}
	res = h.Access(0, Clean)
	if res.LevelHit != 1 {
		t.Fatalf("second access LevelHit = %d, want 1 (L1)", res.LevelHit)
	}
	// Evict 0 from L1 (same set: even lines), keep it in L2.
	h.Access(2, Clean)
	h.Access(4, Clean)
	res = h.Access(0, Clean)
	if res.LevelHit != 2 {
		t.Fatalf("after L1 eviction LevelHit = %d, want 2 (L2)", res.LevelHit)
	}
}

func TestHierarchyWriteBackOnL2Eviction(t *testing.T) {
	h := NewHierarchy(128, 1, 256, 1, 64) // L2 direct-mapped 4 lines
	h.Access(0, Dirty)
	// Push line 0 out of L2 (same L2 set as 0: lines 0,4,8...).
	res := h.Access(4, Clean)
	if res.WriteBack == nil || res.WriteBack.Line != 0 || res.WriteBack.State != Dirty {
		t.Fatalf("expected dirty write-back of line 0, got %+v", res.WriteBack)
	}
	// Inclusion: line 0 must also be gone from L1.
	if h.L1.Lookup(0) != Invalid {
		t.Error("L2 eviction must invalidate the L1 copy")
	}
}

func TestHierarchyReductionWriteBack(t *testing.T) {
	h := NewHierarchy(128, 1, 256, 1, 64)
	h.Access(0, Reduction)
	res := h.Access(4, Clean)
	if res.WriteBack == nil || res.WriteBack.State != Reduction {
		t.Fatalf("expected Reduction write-back, got %+v", res.WriteBack)
	}
}

func TestHierarchyCleanEvictionSilent(t *testing.T) {
	h := NewHierarchy(128, 1, 256, 1, 64)
	h.Access(0, Clean)
	res := h.Access(4, Clean)
	if res.WriteBack != nil {
		t.Errorf("clean eviction must be silent, got %+v", res.WriteBack)
	}
}

func TestHierarchyL1DirtySpillReachesWriteBack(t *testing.T) {
	// A line dirtied in L1, spilled to L2 by L1 pressure, then evicted
	// from L2 must still write back Dirty.
	h := NewHierarchy(128, 1, 256, 1, 64)
	h.Access(0, Dirty)
	h.Access(2, Clean) // L1 set 0? lines 0 and 2 map to different L1 sets (2 sets)
	h.Access(4, Clean) // evicts 0 from L1 (set 0), updating L2 state
	// Now force 0 out of L2: L2 has 4 sets (direct mapped): line 8 shares set 0 with 0,4.
	// Access 8: L2 set 0 currently holds... 4 (installed last). Actually
	// direct-mapped: Access(4) displaced 0 already.
	// Re-dirty and test the simple path instead:
	h2 := NewHierarchy(128, 1, 256, 1, 64)
	h2.Access(0, Dirty)        // in L1+L2
	h2.Access(1, Clean)        // L1 set 1; L2 set 1
	res := h2.Access(4, Clean) // L2 set 0: evicts 0
	if res.WriteBack == nil || res.WriteBack.State != Dirty {
		t.Fatalf("expected Dirty write-back, got %+v", res.WriteBack)
	}
	_ = h
}

func TestFlushReductionAcrossLevels(t *testing.T) {
	h := NewHierarchy(256, 2, 1024, 2, 64)
	h.Access(1, Reduction)
	h.Access(2, Reduction)
	h.Access(3, Dirty)
	lines := h.FlushReduction()
	if len(lines) != 2 {
		t.Fatalf("flushed %d reduction lines, want 2", len(lines))
	}
	if h.ResidentReduction() != 0 {
		t.Error("reduction lines remain after flush")
	}
	if h.L2.Lookup(3) != Dirty {
		t.Error("dirty non-reduction line must survive")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "Invalid", Clean: "Clean", Dirty: "Dirty", Reduction: "Reduction"} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q", st, st.String())
		}
	}
}

func TestQuickInclusionInvariant(t *testing.T) {
	// Property: after any access sequence, every L1-resident line is
	// L2-resident (inclusion), and no line is lost while dirty without a
	// write-back being reported.
	f := func(ops []uint8) bool {
		h := NewHierarchy(128, 1, 512, 2, 64)
		for _, op := range ops {
			line := int64(op % 32)
			st := Clean
			if op&0x40 != 0 {
				st = Dirty
			}
			if op&0x80 != 0 {
				st = Reduction
			}
			h.Access(line, st)
			// Inclusion check over all L1 lines.
			for i, tag := range h.L1.tags {
				if tag >= 0 && h.L1.states[i] != Invalid {
					if h.L2.Lookup(tag) == Invalid {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
