package client

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/reduction"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Session is a streaming reduction session: the loop ships once
// (OPEN_SESSION), then only small delta batches cross the wire
// (SUBMIT_DELTA) while the server recomputes just the touched segments.
//
// A session is pinned to the single TCP connection it was opened on —
// the server's resident state is keyed by that connection — so unlike
// one-shot submissions, its operations never fail over to another pool
// slot. If the connection dies, every later operation returns
// ErrSessionGone and the caller re-opens and replays.
//
// Delta batches may be pipelined with SubmitDeltaAsync, but the server
// applies concurrently in-flight batches in arrival order at its worker
// queue, which pipelining does not fix across batches: pipeline only
// batches that commute (touch distinct positions), or serialize with
// SubmitDelta when order matters.
type Session struct {
	s     *netSession
	id    uint64
	elems int
	gen   uint64
	done  bool
}

// OpenSession registers l as a streaming session on the server and
// blocks for the initial reduction (generation 1). The loop is the
// client's to keep: the server owns its own copy from here on, and
// subsequent SubmitDelta calls mutate only that copy.
func (c *Client) OpenSession(l *trace.Loop) (*Session, engine.Result, error) {
	if l == nil {
		return nil, engine.Result{}, errors.New("client: nil loop")
	}
	pc, err := c.pick()
	if err != nil {
		return nil, engine.Result{}, err
	}
	s, err := pc.ensure()
	if err != nil {
		return nil, engine.Result{}, err
	}
	p := &pend{done: make(chan outcome, 1)}
	id, err := s.register(p)
	if err != nil {
		return nil, engine.Result{}, err
	}
	s.pendMu.Lock()
	s.nextSID++
	sid := s.nextSID
	s.pendMu.Unlock()
	buf := wire.GetBuffer()
	buf.B = wire.AppendOpenSession(buf.B, id, sid, l)
	if err := s.write(buf); err != nil {
		return nil, engine.Result{}, err
	}
	out := <-p.done
	if out.err != nil {
		return nil, engine.Result{}, out.err
	}
	return &Session{s: s, id: sid, elems: l.NumElems, gen: out.res.SessionGen}, out.res, nil
}

// SubmitDelta streams one delta batch and blocks for the rolling
// reduction. An empty batch is a pure read of the current result.
func (s *Session) SubmitDelta(deltas []reduction.RefDelta) (engine.Result, error) {
	return s.SubmitDeltaInto(deltas, nil)
}

// SubmitDeltaInto is SubmitDelta decoding the result into dst when it
// has the capacity.
func (s *Session) SubmitDeltaInto(deltas []reduction.RefDelta, dst []float64) (engine.Result, error) {
	h, err := s.SubmitDeltaAsyncInto(deltas, dst)
	if err != nil {
		return engine.Result{}, err
	}
	res, err := h.Wait()
	if err == nil {
		s.gen = res.SessionGen
	}
	return res, err
}

// SubmitDeltaAsync enqueues one delta batch and returns a Handle without
// waiting, mirroring SubmitAsync. See the type comment for the ordering
// caveat on pipelined batches.
func (s *Session) SubmitDeltaAsync(deltas []reduction.RefDelta) (*Handle, error) {
	return s.SubmitDeltaAsyncInto(deltas, nil)
}

// SubmitDeltaAsyncInto is SubmitDeltaAsync with a caller-provided
// destination array; dst must not be touched until Wait returns.
func (s *Session) SubmitDeltaAsyncInto(deltas []reduction.RefDelta, dst []float64) (*Handle, error) {
	if s.done {
		return nil, fmt.Errorf("%w: closed by this client", ErrSessionGone)
	}
	p := &pend{done: make(chan outcome, 1), dst: dst}
	id, err := s.s.register(p)
	if err != nil {
		// The pinned connection is dead; the resident state went with it.
		return nil, fmt.Errorf("%w: %v", ErrSessionGone, err)
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendDelta(buf.B, id, s.id, deltas)
	if err := s.s.write(buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSessionGone, err)
	}
	return &Handle{done: p.done}, nil
}

// Close retires the session on the server and blocks for the
// acknowledgement, which carries the final generation. Closing an
// already-closed session is a no-op; a session whose server side is
// already gone (evicted, expired, connection lost) closes cleanly too —
// either way the state is released.
func (s *Session) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	p := &pend{done: make(chan outcome, 1)}
	id, err := s.s.register(p)
	if err != nil {
		return nil // connection gone, nothing resident to release
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendCloseSession(buf.B, id, s.id)
	if err := s.s.write(buf); err != nil {
		return nil
	}
	out := <-p.done
	if out.err != nil {
		if errors.Is(out.err, ErrSessionGone) || errors.Is(out.err, ErrConnLost) {
			return nil
		}
		return out.err
	}
	s.gen = out.res.SessionGen
	return nil
}

// Gen returns the last generation this client observed: 1 after open,
// +1 per acknowledged delta batch.
func (s *Session) Gen() uint64 { return s.gen }
