package client_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/workloads"
)

// boot starts an engine+server stack on the given address ("127.0.0.1:0"
// picks a port) and returns the bound address and a stopper (testkit
// also registers teardown with t.Cleanup; the explicit stopper exists
// for the reconnect test, which kills the server mid-test).
func boot(t *testing.T, addr string) (string, func()) {
	t.Helper()
	d := testkit.StartDaemonAt(t, addr, engine.Config{}, server.Config{})
	return d.Addr, d.Close
}

func TestDialFailsCleanly(t *testing.T) {
	// A dead address must fail Dial, not hang or panic.
	if _, err := client.Dial("127.0.0.1:1", client.Config{DialTimeout: time.Second}); err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}
}

// TestTransparentReconnect kills the server under a live client and
// brings it back on the same address: in-flight work fails with
// ErrConnLost, and the next submissions succeed again without the caller
// rebuilding the client.
func TestTransparentReconnect(t *testing.T) {
	addr, stop := boot(t, "127.0.0.1:0")
	cl, err := client.Dial(addr, client.Config{Conns: 1, DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.2)[0]
	want := l.RunSequential()
	res, err := cl.Submit(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != len(want) {
		t.Fatal("bad first result")
	}

	stop() // server gone; the client's connection dies

	// Until the server is back, submissions must fail fast with a real
	// error (either the dying connection or a refused redial).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Submit(l); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions kept succeeding after server shutdown")
		}
	}

	// Same address, fresh server: the pool slot redials transparently.
	_, stop2 := boot(t, addr)
	defer stop2()
	var got engine.Result
	for attempt := 0; ; attempt++ {
		got, err = cl.Submit(l)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("reconnect never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := range want {
		if math.Abs(got.Values[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("post-reconnect result diverged at %d", i)
		}
	}
}

// TestCloseResolvesInflight closes the client with jobs outstanding:
// every handle must resolve with an error rather than hang.
func TestCloseResolvesInflight(t *testing.T) {
	addr, stop := boot(t, "127.0.0.1:0")
	defer stop()
	cl, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}

	l := workloads.MixedSet(0.3)[0]
	handles := make([]*client.Handle, 8)
	for i := range handles {
		h, err := cl.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	cl.Close()

	resolved := make(chan struct{})
	go func() {
		defer close(resolved)
		for _, h := range handles {
			h.Wait() // result or error both fine; hanging is the failure
		}
	}()
	select {
	case <-resolved:
	case <-time.After(10 * time.Second):
		t.Fatal("handles unresolved 10s after Close")
	}
	if _, err := cl.Submit(l); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestPoolSpreadsConnections checks that a multi-connection pool really
// opens distinct connections (pipelining capacity scales with the pool).
func TestPoolSpreadsConnections(t *testing.T) {
	addr, stop := boot(t, "127.0.0.1:0")
	defer stop()
	cl, err := client.Dial(addr, client.Config{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	l := workloads.MixedSet(0.2)[0]
	for i := 0; i < 6; i++ { // round-robin touches every slot twice
		if _, err := cl.Submit(l); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 6 {
		t.Fatalf("server saw %d jobs, want 6", st.Jobs)
	}
}
