// Package client is the Go client for reduxd. It mirrors the engine API —
// Submit / SubmitInto / SubmitAsync / SubmitAsyncInto returning
// engine.Result — so code written against the in-process engine moves to
// the network with a one-line change.
//
// A Client owns a small pool of connections. Submissions round-robin
// across them and pipeline freely: each connection carries many in-flight
// jobs keyed by client-assigned IDs, and the server answers in completion
// order. Encoding uses the shared wire buffer pool and results decode
// into caller-provided destination arrays, so the steady-state submit
// path allocates almost nothing beyond the in-flight bookkeeping.
//
// Connections are established lazily and redialed transparently: a broken
// connection fails its in-flight jobs with ErrConnLost (the work may or
// may not have executed — resubmission is the caller's call, matching
// at-most-once delivery), and the next submission that lands on that pool
// slot dials afresh.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config parameterizes a Client.
type Config struct {
	// Conns is the connection pool size (default 2).
	Conns int
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// MaxFrameBytes caps one response frame (default wire.DefaultMaxFrame).
	MaxFrameBytes int
	// Tenant, when set, authenticates every pooled connection as that
	// tenant: a client HELLO carrying the name is sent right after the
	// preamble, and the server charges the connection's jobs against the
	// tenant's admission quotas and schedules them under its weight.
	// Empty means the default tenant and a wire dialogue byte-identical
	// to pre-tenant clients.
	Tenant string
}

func (c *Config) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrame
	}
}

// Client is a pooled, pipelining reduxd client. Safe for concurrent use.
type Client struct {
	addr string
	cfg  Config

	next  atomic.Uint64 // round-robin cursor over the pool
	conns []*poolConn

	closed atomic.Bool
}

// Sentinel errors.
var (
	// ErrClosed is returned by submissions after Close.
	ErrClosed = errors.New("client: closed")
	// ErrConnLost resolves jobs whose connection broke before their
	// result arrived; whether the job executed is unknown.
	ErrConnLost = errors.New("client: connection lost")
	// ErrBusy resolves jobs the server rejected under admission control;
	// back off and resubmit.
	ErrBusy = errors.New("client: server busy")
	// ErrTimeout is returned by WaitTimeout when the deadline expired
	// before the job resolved. The job stays pending — the connection is
	// unaffected and a later Wait can still collect the response.
	ErrTimeout = errors.New("client: wait timeout")
	// ErrSessionGone resolves streaming-session operations whose
	// server-side session no longer exists — evicted under memory
	// pressure, expired past its idle TTL, or lost with its connection.
	// The rolling state is unrecoverable; re-open and replay.
	ErrSessionGone = errors.New("client: session gone")
)

// Dial connects to a reduxd server. The first connection is established
// eagerly — validating address, protocol and version — and the rest of
// the pool dials lazily on first use.
func Dial(addr string, cfg Config) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg, conns: make([]*poolConn, cfg.Conns)}
	for i := range c.conns {
		c.conns[i] = &poolConn{cl: c}
	}
	if _, err := c.conns[0].ensure(); err != nil {
		return nil, err
	}
	return c, nil
}

// Hello returns the server greeting from an established connection.
func (c *Client) Hello() (wire.Hello, error) {
	pc, err := c.pick()
	if err != nil {
		return wire.Hello{}, err
	}
	s, err := pc.ensure()
	if err != nil {
		return wire.Hello{}, err
	}
	return s.hello, nil
}

// Submit runs one reduction job on the server and blocks for its result.
func (c *Client) Submit(l *trace.Loop) (engine.Result, error) {
	return c.SubmitInto(l, nil)
}

// SubmitInto is Submit decoding the result into dst when it has the
// capacity, mirroring engine.SubmitInto.
func (c *Client) SubmitInto(l *trace.Loop, dst []float64) (engine.Result, error) {
	h, err := c.SubmitAsyncInto(l, dst)
	if err != nil {
		return engine.Result{}, err
	}
	return h.Wait()
}

// SubmitAsync enqueues one job and returns a Handle without waiting, so a
// client can pipeline many submissions over one connection.
func (c *Client) SubmitAsync(l *trace.Loop) (*Handle, error) {
	return c.SubmitAsyncInto(l, nil)
}

// SubmitAsyncInto is SubmitAsync with a caller-provided destination
// array; dst must not be touched until Wait returns.
func (c *Client) SubmitAsyncInto(l *trace.Loop, dst []float64) (*Handle, error) {
	return c.SubmitAsyncIntoTraced(l, dst, 0)
}

// SubmitAsyncIntoTraced is SubmitAsyncInto carrying an end-to-end trace
// ID: the server records the job's stage timeline under it (visible at
// /tracez on every tier the job crosses). A zero ID omits the field from
// the wire — the server then assigns its own — so untraced submission
// stays byte-identical to older clients.
func (c *Client) SubmitAsyncIntoTraced(l *trace.Loop, dst []float64, traceID uint64) (*Handle, error) {
	if l == nil {
		return nil, errors.New("client: nil loop")
	}
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.submit(l, dst, traceID)
}

// Stats fetches the server engine's statistics snapshot.
func (c *Client) Stats() (engine.Stats, error) {
	pc, err := c.pick()
	if err != nil {
		return engine.Stats{}, err
	}
	return pc.stats()
}

// Close tears down the pool. In-flight jobs resolve with ErrConnLost.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, pc := range c.conns {
		pc.close()
	}
	return nil
}

// pick selects the next pool slot round-robin. Dead slots redial on use,
// which is what makes reconnection transparent.
func (c *Client) pick() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	return c.conns[c.next.Add(1)%uint64(len(c.conns))], nil
}

// outcome resolves one in-flight job (or stats request).
type outcome struct {
	res   engine.Result
	stats engine.Stats
	err   error
}

// Handle is a pending remote submission belonging to a single waiter.
type Handle struct {
	done     chan outcome
	out      outcome
	received bool
}

// Wait blocks until the job resolves: a result, a job error from the
// server, ErrBusy under admission control, or ErrConnLost if the
// connection died first. It may be called repeatedly.
func (h *Handle) Wait() (engine.Result, error) {
	if !h.received {
		h.out = <-h.done
		h.received = true
	}
	return h.out.res, h.out.err
}

// WaitTimeout is Wait bounded by d (zero or negative waits forever).
// On ErrTimeout the job is still pending: whether it executes is
// unknown, and if the connection later delivers its response, that
// response is decoded into the submission's destination array — a
// caller that gives up and resubmits the work elsewhere must therefore
// stop sharing that array. This is what lets a gateway bound its
// exposure to a half-open backend whose connection neither answers nor
// dies.
func (h *Handle) WaitTimeout(d time.Duration) (engine.Result, error) {
	if h.received {
		return h.out.res, h.out.err
	}
	if d <= 0 {
		return h.Wait()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case h.out = <-h.done:
		h.received = true
		return h.out.res, h.out.err
	case <-t.C:
		return engine.Result{}, ErrTimeout
	}
}

// pend is the read loop's record of one in-flight job.
type pend struct {
	done chan outcome
	dst  []float64
	// statsReq marks a statistics request, whose response is a STATS
	// frame rather than RESULT/ERROR/BUSY.
	statsReq bool
}

// poolConn is one pool slot: at most one live netSession at a time, redialed
// on demand after failures.
type poolConn struct {
	cl *Client
	mu sync.Mutex // guards session swap and dialing
	s  *netSession
}

// netSession is one live TCP connection with its pending-job table.
type netSession struct {
	pc    *poolConn
	nc    net.Conn
	hello wire.Hello

	writeMu sync.Mutex
	bw      *bufio.Writer

	pendMu  sync.Mutex
	pending map[uint64]*pend
	dead    bool
	nextID  uint64
	nextSID uint64 // streaming-session ids, scoped to this connection
}

// ensure returns the slot's live session, dialing if necessary.
func (pc *poolConn) ensure() (*netSession, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.s != nil {
		return pc.s, nil
	}
	if pc.cl.closed.Load() {
		return nil, ErrClosed
	}
	nc, err := net.DialTimeout("tcp", pc.cl.addr, pc.cl.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", pc.cl.addr, err)
	}
	if err := wire.WritePreamble(nc); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: preamble: %w", err)
	}
	if t := pc.cl.cfg.Tenant; t != "" {
		// Bind the connection to its tenant before any job rides it. The
		// frame is connection-scoped (job ID 0), mirroring the server's
		// own HELLO.
		if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Tenant: t})); err != nil {
			nc.Close()
			return nil, fmt.Errorf("client: tenant hello: %w", err)
		}
	}
	s := &netSession{
		pc:      pc,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*pend),
	}
	// The server speaks first: its HELLO validates version agreement
	// before any job is risked on the connection.
	hr := wire.NewReader(bufio.NewReaderSize(nc, 64<<10), pc.cl.cfg.MaxFrameBytes)
	nc.SetReadDeadline(time.Now().Add(pc.cl.cfg.DialTimeout))
	f, err := hr.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: reading hello: %w", err)
	}
	if s.hello, err = f.DecodeHello(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: %w", err)
	}
	nc.SetReadDeadline(time.Time{})
	pc.s = s
	go s.readLoop(hr)
	return s, nil
}

// close tears the slot down.
func (pc *poolConn) close() {
	pc.mu.Lock()
	s := pc.s
	pc.mu.Unlock()
	if s != nil {
		s.fail(ErrClosed)
	}
}

// submit registers a pending job on the slot's session and writes its
// SUBMIT frame. A write failure kills the session (failing its in-flight
// jobs) and leaves the slot ready to redial.
func (pc *poolConn) submit(l *trace.Loop, dst []float64, traceID uint64) (*Handle, error) {
	s, err := pc.ensure()
	if err != nil {
		return nil, err
	}
	p := &pend{done: make(chan outcome, 1), dst: dst}
	id, err := s.register(p)
	if err != nil {
		return nil, err
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendSubmitTraced(buf.B, id, l, traceID)
	if err := s.write(buf); err != nil {
		return nil, err
	}
	return &Handle{done: p.done}, nil
}

// stats issues a STATSREQ and waits for the snapshot.
func (pc *poolConn) stats() (engine.Stats, error) {
	s, err := pc.ensure()
	if err != nil {
		return engine.Stats{}, err
	}
	p := &pend{done: make(chan outcome, 1), statsReq: true}
	id, err := s.register(p)
	if err != nil {
		return engine.Stats{}, err
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendStatsReq(buf.B, id)
	if err := s.write(buf); err != nil {
		return engine.Stats{}, err
	}
	out := <-p.done
	return out.stats, out.err
}

// register assigns the next job ID on the session. IDs start at 1; 0 is
// connection-scoped on the wire.
func (s *netSession) register(p *pend) (uint64, error) {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	if s.dead {
		return 0, ErrConnLost
	}
	s.nextID++
	id := s.nextID
	s.pending[id] = p
	return id, nil
}

// write sends one encoded frame and flushes. Pipelined submitters each
// flush their own frame; the bufio layer coalesces writers that race.
func (s *netSession) write(buf *wire.Buffer) error {
	s.writeMu.Lock()
	_, err := s.bw.Write(buf.B)
	if err == nil {
		err = s.bw.Flush()
	}
	s.writeMu.Unlock()
	buf.Free()
	if err != nil {
		s.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
		return fmt.Errorf("client: write: %w", ErrConnLost)
	}
	return nil
}

// readLoop dispatches response frames to their pending jobs until the
// connection dies, then fails whatever is left.
func (s *netSession) readLoop(r *wire.Reader) {
	for {
		f, err := r.Next()
		if err != nil {
			s.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		if f.JobID == 0 {
			// Connection-scoped ERROR: the server is telling us why it is
			// about to hang up.
			if msg, err := f.DecodeError(); err == nil {
				s.fail(fmt.Errorf("%w: server: %s", ErrConnLost, msg))
			} else {
				s.fail(ErrConnLost)
			}
			return
		}
		p := s.take(f.JobID)
		if p == nil {
			s.fail(fmt.Errorf("%w: response for unknown job %d", ErrConnLost, f.JobID))
			return
		}
		p.done <- s.resolve(f, p)
	}
}

// resolve turns one response frame into the job's outcome.
func (s *netSession) resolve(f wire.Frame, p *pend) outcome {
	if p.statsReq != (f.Type == wire.FrameStats) && f.Type != wire.FrameError {
		return outcome{err: fmt.Errorf("client: unexpected %v frame for job", f.Type)}
	}
	switch f.Type {
	case wire.FrameResult:
		res, err := f.DecodeResult(p.dst)
		if err != nil {
			return outcome{err: fmt.Errorf("client: %w", err)}
		}
		return outcome{res: res}
	case wire.FrameError:
		msg, err := f.DecodeError()
		if err != nil {
			return outcome{err: fmt.Errorf("client: %w", err)}
		}
		if rest, ok := strings.CutPrefix(msg, wire.SessionGonePrefix); ok {
			// The protocol-level session-gone prefix becomes the typed
			// sentinel, so callers can distinguish "re-open and replay"
			// from a genuinely failed operation.
			return outcome{err: fmt.Errorf("%w: %s", ErrSessionGone, rest)}
		}
		return outcome{err: fmt.Errorf("client: server: %s", msg)}
	case wire.FrameBusy:
		code, err := f.DecodeBusy()
		if err != nil {
			return outcome{err: fmt.Errorf("client: %w", err)}
		}
		return outcome{err: fmt.Errorf("%w (%s)", ErrBusy, code)}
	case wire.FrameStats:
		st, err := f.DecodeStats()
		if err != nil {
			return outcome{err: fmt.Errorf("client: %w", err)}
		}
		return outcome{stats: st}
	default:
		return outcome{err: fmt.Errorf("client: unexpected %v frame", f.Type)}
	}
}

// take removes and returns the pending record for id.
func (s *netSession) take(id uint64) *pend {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	p := s.pending[id]
	delete(s.pending, id)
	return p
}

// fail kills the session exactly once: the socket closes, every in-flight
// job resolves with err, and the pool slot is cleared so the next
// submission redials.
func (s *netSession) fail(err error) {
	s.pendMu.Lock()
	if s.dead {
		s.pendMu.Unlock()
		return
	}
	s.dead = true
	pending := s.pending
	s.pending = nil
	s.pendMu.Unlock()

	s.nc.Close()
	s.pc.mu.Lock()
	if s.pc.s == s {
		s.pc.s = nil
	}
	s.pc.mu.Unlock()
	for _, p := range pending {
		p.done <- outcome{err: err}
	}
}
