package adapt

import "fmt"

// This file holds the decision boundary for the reduction-simplification
// layer (pattern.AnalyzeSegments + reduction.SegPlan): given a batch's
// measured segment-overlap structure, decide whether the simplified
// execution — per-segment partial sums computed once, combined per
// member through the pairwise tree — beats running every member's full
// reference stream directly. It is the Figure 3 idea applied one level
// up: instead of choosing *which* parallel scheme executes a loop, it
// chooses whether the batch's algebraic structure lets most of the work
// be skipped before any scheme runs at all.
//
// The rule is a cost comparison in units of one reference-stream
// element. The direct path touches Members×RefsPerMember references; the
// simplified path pays an analysis sweep over the same references, the
// accumulation of only the unique uncached segments, and a combine
// column of Segments parts per member per element. Both sides and the
// cut-points are exercised from simplify_test.go, including the batch
// geometries the engine's recalibration tests depend on staying direct.

// SimplifyInput is the per-batch evidence RecommendSimplify weighs. The
// engine fills it from pattern.SegmentAnalysis plus its own cache state.
type SimplifyInput struct {
	// Occupancy is the batch occupancy: distinct member loops sharing
	// one decision (coalesced same-fingerprint jobs, deduplicated by
	// trace identity).
	Occupancy int
	// Members, Segments and Unique come from the segment analysis:
	// analyzed members, segment count, and distinct (owner == member)
	// partial sums a simplified run would compute.
	Members  int
	Segments int
	Unique   int
	// CachedTasks is how many of those unique partial sums are already
	// verified in the engine's segment cache and cost nothing to
	// recompute.
	CachedTasks int
	// RefsPerMember is one member's reference-stream length (the direct
	// path's per-member work). NumElems is the output array dimension
	// (the combine cost scales with it).
	RefsPerMember int
	NumElems      int
	// ConstRunFrac is the leader's constant-run fraction from the
	// analysis; long runs keep the direct path's gathers cache-resident
	// and shrink the win from skipping them.
	ConstRunFrac float64
}

// SimplifyThresholds are the boundary's tunable cut-points.
type SimplifyThresholds struct {
	// MinOccupancy is the batch occupancy below which simplification is
	// not attempted cold: with too few members the shared-segment
	// discount cannot cover the analysis sweep. A warm segment cache
	// overrides this floor (incremental re-reduction pays off even for
	// singleton re-submissions).
	MinOccupancy int
	// AnalyzeCostRatio is the per-reference cost of the segment
	// analysis (hash + ownership verify) relative to the direct path's
	// per-reference cost.
	AnalyzeCostRatio float64
	// CombineCostRatio is the per-element cost of one segment-combine
	// column relative to the direct path's per-reference cost.
	CombineCostRatio float64
	// MinAdvantage is the fractional margin the simplified cost must
	// clear below the direct cost before switching: the model's
	// constants are calibrated, not measured, so the boundary keeps a
	// guard band against flapping near the break-even line.
	MinAdvantage float64
}

// DefaultSimplifyThresholds returns the calibrated boundary.
func DefaultSimplifyThresholds() SimplifyThresholds {
	return SimplifyThresholds{
		MinOccupancy:     4,
		AnalyzeCostRatio: 0.15,
		CombineCostRatio: 0.15,
		MinAdvantage:     0.2,
	}
}

// simplifyCosts evaluates both sides of the boundary in direct-path
// per-reference units.
func simplifyCosts(in SimplifyInput, t SimplifyThresholds) (direct, simplified float64) {
	r := float64(in.RefsPerMember)
	// Constant runs discount the direct path: a reference repeating its
	// predecessor hits the same cache line and store-forwarded element,
	// costing roughly half a fresh gather.
	g := 1 - 0.5*in.ConstRunFrac
	direct = float64(in.Members) * r * g

	analyze := float64(in.Members) * r * t.AnalyzeCostRatio
	fresh := in.Unique - in.CachedTasks
	if fresh < 0 {
		fresh = 0
	}
	accumulate := float64(fresh) * (r / float64(in.Segments)) * g
	combine := float64(in.Members) * float64(in.Segments) * float64(in.NumElems) * t.CombineCostRatio
	simplified = analyze + accumulate + combine
	return direct, simplified
}

// RecommendSimplify decides whether a batch executes through the
// simplified plan. It returns the decision and a one-line rationale in
// the style of Recommend.
func RecommendSimplify(in SimplifyInput, t SimplifyThresholds) (bool, string) {
	if in.Members < 1 || in.Segments < 1 || in.RefsPerMember < 1 {
		return false, "degenerate batch; direct"
	}
	if in.Occupancy < t.MinOccupancy && in.CachedTasks == 0 {
		return false, fmt.Sprintf("occupancy %d below floor %d with cold cache; direct",
			in.Occupancy, t.MinOccupancy)
	}
	direct, simplified := simplifyCosts(in, t)
	if simplified < direct*(1-t.MinAdvantage) {
		return true, fmt.Sprintf("simplified cost %.0f beats direct %.0f by >%d%% (unique %d/%d, cached %d)",
			simplified, direct, int(t.MinAdvantage*100), in.Unique, in.Members*in.Segments, in.CachedTasks)
	}
	return false, fmt.Sprintf("simplified cost %.0f within %d%% of direct %.0f; direct",
		simplified, int(t.MinAdvantage*100), direct)
}

// SimplifySeedWorthwhile gates seeding a segment cache from a singleton
// batch: worth it only when a later warm hit would actually win, i.e.
// the steady-state incremental cost (analysis of one member plus the
// combine column, with every segment served from cache) clears the
// boundary's margin below one member's direct cost. Loops whose output
// dimension is large relative to their reference stream fail this —
// their combine column alone rivals the direct pass — which keeps the
// engine from burning cache memory and analysis time where
// simplification can never pay.
func SimplifySeedWorthwhile(refsPerMember, numElems, segments int, t SimplifyThresholds) bool {
	if refsPerMember < 1 || segments < 1 {
		return false
	}
	warm := SimplifyInput{
		Occupancy:     1,
		Members:       1,
		Segments:      segments,
		Unique:        segments,
		CachedTasks:   segments,
		RefsPerMember: refsPerMember,
		NumElems:      numElems,
	}
	direct, simplified := simplifyCosts(warm, t)
	return simplified < direct*(1-t.MinAdvantage)
}
