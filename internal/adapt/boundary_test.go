package adapt

import (
	"fmt"
	"testing"

	"repro/internal/workloads"
)

// TestThresholdBoundaries pins every decision cut-point against the
// Figure 3 row nearest to it, from both sides. For each threshold the
// table names the row(s) just across the boundary, a "past" value that
// moves the cut just beyond them, and the scheme each row must flip to;
// a "short" value perturbs the threshold toward the same rows but not
// past them and must flip nothing. Together with TestThresholdStability
// (global ±4%) this pins the calibrated margins row by row: moving a
// cut past its nearest row flips exactly that row, nothing more.
func TestThresholdBoundaries(t *testing.T) {
	key := func(app string, dim int) string { return fmt.Sprintf("%s/%d", app, dim) }
	cases := []struct {
		name string
		// set installs the perturbed threshold value.
		set func(*Thresholds, float64)
		// past crosses the nearest row; short approaches it. flips maps
		// the rows expected to change under past to their new scheme.
		past, short float64
		flips       map[string]string
	}{
		{
			// Spice's 99190-element input (SP 0.20) is the hash row
			// nearest the sparsity cut: dropping the cut below it loses
			// exactly that row to sel (CHR 0.12 and DIM 1.51 reach the
			// fall-through), while its sparser siblings (SP 0.14-0.16)
			// stay hash.
			name:  "HashMaxSP",
			set:   func(th *Thresholds, v float64) { th.HashMaxSP = v },
			past:  0.19,
			short: 0.21,
			flips: map[string]string{key("Spice", 99190): "sel"},
		},
		{
			// No Figure 3 row has MO > 8 outside Spice's MO=28, so the
			// sparsity cut can rise far (to just under every non-Spice
			// SP) without admitting anyone new into hash.
			name:  "HashMaxSP-upward",
			set:   func(th *Thresholds, v float64) { th.HashMaxSP = v },
			past:  0.5,
			short: 0.37,
			flips: map[string]string{},
		},
		{
			// MO=2 is the next mobility level below the cut: admitting it
			// turns the two sub-0.5%-sparsity MO=2 rows into hash.
			name:  "HashMinMO",
			set:   func(th *Thresholds, v float64) { th.HashMinMO = v },
			past:  1.9,
			short: 2.1,
			flips: map[string]string{
				key("Irreg", 2000000): "hash",
				key("Moldyn", 87808):  "hash",
			},
		},
		{
			// Raising the mobility cut past 28 evicts all four Spice rows
			// from hash; they land in sel (low CHR, and even the smallest
			// input's DIM 0.515 just misses the dense-ll rule).
			name:  "HashMinMO-upward",
			set:   func(th *Thresholds, v float64) { th.HashMinMO = v },
			past:  29,
			short: 27,
			flips: map[string]string{
				key("Spice", 186943): "sel",
				key("Spice", 99190):  "sel",
				key("Spice", 89925):  "sel",
				key("Spice", 33725):  "sel",
			},
		},
		{
			// Moldyn's CHR 0.36 is the rep row nearest the contention
			// cut; raising the cut past it demotes exactly that row to
			// ll while the CHR 0.41 input stays rep.
			name:  "RepMinCHR",
			set:   func(th *Thresholds, v float64) { th.RepMinCHR = v },
			past:  0.37,
			short: 0.35,
			flips: map[string]string{key("Moldyn", 42592): "ll"},
		},
		{
			// And Moldyn's CHR 0.33 is the ll row nearest it from below:
			// lowering the cut past it promotes exactly that row to rep
			// (DIM 1.07 is still cache-scaled).
			name:  "RepMinCHR-downward",
			set:   func(th *Thresholds, v float64) { th.RepMinCHR = v },
			past:  0.32,
			short: 0.34,
			flips: map[string]string{key("Moldyn", 70304): "rep"},
		},
		{
			// Irreg's smallest mesh (DIM 1.53) is the rep row nearest the
			// array-size cut: shrinking the cut below it pushes exactly
			// that row to lw.
			name:  "RepMaxDIM",
			set:   func(th *Thresholds, v float64) { th.RepMaxDIM = v },
			past:  1.45,
			short: 1.6,
			flips: map[string]string{key("Irreg", 100000): "lw"},
		},
		{
			// Irreg's 500k mesh (DIM 7.63) is the lw row nearest it from
			// above: growing the cut past it pulls exactly that row into
			// rep.
			name:  "RepMaxDIM-upward",
			set:   func(th *Thresholds, v float64) { th.RepMaxDIM = v },
			past:  8.0,
			short: 7.0,
			flips: map[string]string{key("Irreg", 500000): "rep"},
		},
		{
			// Moldyn's CHR 0.29 is the ll row nearest the moderate-
			// contention cut: raising the cut past it drops exactly that
			// row to sel (its DIM 1.34 misses the dense-ll rule).
			name:  "LLMinCHR",
			set:   func(th *Thresholds, v float64) { th.LLMinCHR = v },
			past:  0.30,
			short: 0.28,
			flips: map[string]string{key("Moldyn", 87808): "sel"},
		},
		{
			// Irreg's largest mesh (CHR 0.26) sits just below the cut;
			// lowering the cut past it — but not to Nbf's 0.25 — admits
			// exactly that row into ll.
			name:  "LLMinCHR-downward",
			set:   func(th *Thresholds, v float64) { th.LLMinCHR = v },
			past:  0.255,
			short: 0.265,
			flips: map[string]string{key("Irreg", 2000000): "ll"},
		},
		{
			// Nbf's smallest input (DIM 0.391) is the dense-ll row
			// nearest the size cut: shrinking the cut below it loses
			// exactly that row to sel.
			name:  "LLMaxDIM",
			set:   func(th *Thresholds, v float64) { th.LLMaxDIM = v },
			past:  0.37,
			short: 0.41,
			flips: map[string]string{key("Nbf", 25600): "sel"},
		},
		{
			// Nbf's 128k input (DIM 1.953, SP 6.25) is the sel row
			// nearest it from above: growing the cut past it — but short
			// of Charmm's 5.07 — admits exactly that row into ll.
			name:  "LLMaxDIM-upward",
			set:   func(th *Thresholds, v float64) { th.LLMaxDIM = v },
			past:  2.0,
			short: 1.9,
			flips: map[string]string{key("Nbf", 128000): "ll"},
		},
		{
			// Spark98's SP 0.62 is the sel row nearest the density cut
			// from below: lowering the cut past it — but not to the
			// sibling's 0.60 — admits exactly the 30169-element row.
			name:  "LLMinSP",
			set:   func(th *Thresholds, v float64) { th.LLMinSP = v },
			past:  0.61,
			short: 0.63,
			flips: map[string]string{key("Spark98", 30169): "ll"},
		},
		{
			// Nbf's smallest input (SP 25) is the dense-ll row nearest
			// it from above: raising the cut past it loses exactly that
			// row to sel.
			name:  "LLMinSP-upward",
			set:   func(th *Thresholds, v float64) { th.LLMinSP = v },
			past:  26,
			short: 24,
			flips: map[string]string{key("Nbf", 25600): "sel"},
		},
	}

	rows := workloads.Fig3Rows()
	run := func(t *testing.T, th Thresholds, flips map[string]string) {
		t.Helper()
		for _, r := range rows {
			p := profileWith(float64(r.Spec.MO), r.Spec.SPPercent, r.Spec.CHR,
				float64(r.Spec.Dim*8)/float64(512<<10))
			want := r.PaperRecommend
			if s, ok := flips[key(r.App, r.Spec.Dim)]; ok {
				want = s
			}
			if got := RecommendWith(p, th); got.Scheme != want {
				t.Errorf("%s dim=%d: %s, want %s", r.App, r.Spec.Dim, got.Scheme, want)
			}
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			past := DefaultThresholds()
			c.set(&past, c.past)
			run(t, past, c.flips)
		})
		t.Run(c.name+"/inside-margin", func(t *testing.T) {
			short := DefaultThresholds()
			c.set(&short, c.short)
			run(t, short, nil)
		})
	}
}
