package adapt

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// profileWith builds a synthetic profile with the given scalar metrics.
func profileWith(mo, sp, chr, dim float64) *pattern.Profile {
	return &pattern.Profile{MO: mo, SP: sp, CHR: chr, DIM: dim}
}

func TestRecommendRules(t *testing.T) {
	cases := []struct {
		name string
		p    *pattern.Profile
		want string
	}{
		{"spice-like: very sparse, high mobility", profileWith(28, 0.15, 0.125, 2.9), "hash"},
		{"sparse but low mobility is not hash", profileWith(2, 0.25, 0.26, 31), "sel"},
		{"high CHR small array", profileWith(2, 25, 0.92, 1.5), "rep"},
		{"high CHR large array", profileWith(2, 5, 0.71, 7.6), "lw"},
		{"moderate CHR", profileWith(2, 1.69, 0.33, 1.07), "ll"},
		{"low CHR small dense array", profileWith(1, 25, 0.25, 0.39), "ll"},
		{"low CHR large array", profileWith(1, 6.25, 0.25, 1.95), "sel"},
		{"low CHR small sparse array", profileWith(1, 0.6, 0.2, 0.11), "sel"},
	}
	for _, c := range cases {
		got := Recommend(c.p)
		if got.Scheme != c.want {
			t.Errorf("%s: Recommend = %s (%s), want %s", c.name, got.Scheme, got.Why, c.want)
		}
		if got.Why == "" {
			t.Errorf("%s: missing rationale", c.name)
		}
	}
}

func TestRecommendReproducesPaperFig3Column(t *testing.T) {
	// For every Figure 3 row, the decision algorithm run on the *paper's*
	// published metrics must reproduce the paper's "Recommended scheme".
	// DIM is derived from the row's dimension and the 512 KB L2.
	for _, r := range workloads.Fig3Rows() {
		p := profileWith(float64(r.Spec.MO), r.Spec.SPPercent, r.Spec.CHR,
			float64(r.Spec.Dim*8)/float64(512<<10))
		got := Recommend(p)
		if got.Scheme != r.PaperRecommend {
			t.Errorf("%s dim=%d (MO=%d SP=%.2f CHR=%.2f DIM=%.2f): Recommend = %s, paper says %s",
				r.App, r.Spec.Dim, r.Spec.MO, r.Spec.SPPercent, r.Spec.CHR,
				float64(r.Spec.Dim*8)/float64(512<<10), got.Scheme, r.PaperRecommend)
		}
	}
}

func TestRecommendOnMeasuredProfiles(t *testing.T) {
	// Recommendations must also hold on *measured* profiles of generated
	// loops (scaled down with proportionally scaled cache), not just on
	// the published numbers.
	for _, r := range workloads.Fig3Rows() {
		// Spice's touched set is ~0.15% of the array; at tiny scales it
		// collapses to a handful of elements and MO degenerates, so the
		// sparse rows get a gentler scale (with the cache scaled alike).
		scale := 0.05
		if r.Spec.SPPercent < 1 {
			scale = 0.3
		}
		l := r.Generate(scale)
		cfgCache := int(float64(512<<10) * scale)
		p := pattern.Characterize(l, 8, cfgCache)
		got := Recommend(p)
		if got.Scheme != r.PaperRecommend {
			t.Errorf("%s dim=%d: measured profile %s -> %s, paper recommends %s",
				r.App, r.Spec.Dim, p, got.Scheme, r.PaperRecommend)
		}
	}
}

func TestSimulateSequentialPositiveAndDeterministic(t *testing.T) {
	l := workloads.Generate("t", workloads.PatternSpec{
		Dim: 2000, SPPercent: 20, CHR: 0.4, MO: 2, Work: 10, Seed: 3,
	}, 1)
	a := SimulateSequential(l, vtime.DefaultConfig())
	b := SimulateSequential(l, vtime.DefaultConfig())
	if a <= 0 || a != b {
		t.Errorf("sequential time %g / %g: want positive and deterministic", a, b)
	}
}

func TestRankOrderingAndSpeedups(t *testing.T) {
	l := workloads.Generate("t", workloads.PatternSpec{
		Dim: 4000, SPPercent: 25, CHR: 0.6, MO: 2, Locality: 0.8, Work: 20, Seed: 4,
	}, 1)
	ms := Rank(l, 8, vtime.DefaultConfig())
	if len(ms) != len(reduction.All()) {
		t.Fatalf("Rank returned %d entries, want %d", len(ms), len(reduction.All()))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Breakdown.Total() < ms[i-1].Breakdown.Total() {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	for _, m := range ms {
		if m.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup %g", m.Scheme, m.Speedup)
		}
	}
	// The best scheme on 8 processors should actually beat sequential.
	if ms[0].Speedup < 1 {
		t.Errorf("best scheme %s has speedup %.2f < 1", ms[0].Scheme, ms[0].Speedup)
	}
}

func TestOrderFormat(t *testing.T) {
	ms := []Measured{{Scheme: "rep"}, {Scheme: "ll"}, {Scheme: "sel"}}
	if got := Order(ms); got != "rep > ll > sel" {
		t.Errorf("Order = %q", got)
	}
	if got := Order(nil); got != "" {
		t.Errorf("Order(nil) = %q", got)
	}
}

func TestSelectPipeline(t *testing.T) {
	l := workloads.Generate("t", workloads.PatternSpec{
		Dim: 4000, SPPercent: 25, CHR: 0.9, MO: 2, Locality: 0.9, Work: 20, Seed: 6,
	}, 1)
	sel := Select(l, 8, vtime.Config{})
	if sel.Profile == nil || sel.Recommendation.Scheme == "" || len(sel.Ranking) == 0 {
		t.Fatalf("incomplete selection: %+v", sel)
	}
	if sel.Hit != (sel.Ranking[0].Scheme == sel.Recommendation.Scheme) {
		t.Error("Hit flag inconsistent with ranking")
	}
	// Executing the selected scheme must produce the sequential result.
	s := SchemeFor(sel.Recommendation)
	got := s.Run(l, 4)
	want := l.RunSequential()
	for i := range want {
		diff := got[i] - want[i]
		if diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("selected scheme %s wrong at %d: %g vs %g", s.Name(), i, got[i], want[i])
		}
	}
}

func TestSchemeForPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SchemeFor(Recommendation{Scheme: "bogus"})
}

func TestThresholdStability(t *testing.T) {
	// DESIGN.md D4: nudging every threshold by ±4% must not change any
	// Figure 3 recommendation. The margin cannot be wider: the paper's
	// own data places Moldyn's CHR values 0.36 and 0.33 on opposite
	// sides of the rep/ll boundary, only ~4.3% away from its center.
	base := DefaultThresholds()
	perturb := func(f float64) Thresholds {
		return Thresholds{
			HashMaxSP: base.HashMaxSP * f, HashMinMO: base.HashMinMO * f,
			RepMinCHR: base.RepMinCHR * f, RepMaxDIM: base.RepMaxDIM * f,
			LLMinCHR: base.LLMinCHR * f, LLMaxDIM: base.LLMaxDIM * f,
			LLMinSP: base.LLMinSP * f,
		}
	}
	for _, f := range []float64{0.96, 1.04} {
		th := perturb(f)
		for _, r := range workloads.Fig3Rows() {
			p := profileWith(float64(r.Spec.MO), r.Spec.SPPercent, r.Spec.CHR,
				float64(r.Spec.Dim*8)/float64(512<<10))
			got := RecommendWith(p, th)
			if got.Scheme != r.PaperRecommend {
				t.Errorf("thresholds x%.2f: %s dim=%d flips to %s (paper %s)",
					f, r.App, r.Spec.Dim, got.Scheme, r.PaperRecommend)
			}
		}
	}
}

func TestRationaleMentionsDrivingMetric(t *testing.T) {
	rec := Recommend(profileWith(28, 0.15, 0.125, 2.9))
	if !strings.Contains(rec.Why, "SP=") {
		t.Errorf("hash rationale should cite sparsity: %q", rec.Why)
	}
	rec = Recommend(profileWith(2, 25, 0.92, 1.5))
	if !strings.Contains(rec.Why, "CHR=") {
		t.Errorf("rep rationale should cite CHR: %q", rec.Why)
	}
}

func BenchmarkSelect(b *testing.B) {
	l := workloads.Generate("bench", workloads.PatternSpec{
		Dim: 2000, SPPercent: 20, CHR: 0.4, MO: 2, Locality: 0.8, Work: 20, Seed: 8,
	}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(l, 8, vtime.Config{})
	}
}

var _ = trace.OpAdd // keep the import for documentation examples
