package adapt

import "testing"

// Geometry of the shared-subrange workload (workloads.SharedSubrangeStream):
// a dense loop whose reference stream dwarfs its output array — the shape
// the simplification layer targets.
func denseInput(occ, unique, cached int) SimplifyInput {
	return SimplifyInput{
		Occupancy:     occ,
		Members:       occ,
		Segments:      8,
		Unique:        unique,
		CachedTasks:   cached,
		RefsPerMember: 32768,
		NumElems:      2048,
	}
}

func TestRecommendSimplifyOverlapWins(t *testing.T) {
	th := DefaultSimplifyThresholds()
	// Full overlap at the occupancy floor: 4 members share all 8
	// segments, so the plan computes 8 partial sums instead of 4 full
	// streams.
	ok, why := RecommendSimplify(denseInput(4, 8, 0), th)
	if !ok {
		t.Errorf("full-overlap occupancy-4 batch not simplified: %s", why)
	}
	// More members only helps.
	if ok, why := RecommendSimplify(denseInput(8, 8, 0), th); !ok {
		t.Errorf("full-overlap occupancy-8 batch not simplified: %s", why)
	}
}

func TestRecommendSimplifyOccupancyFloor(t *testing.T) {
	th := DefaultSimplifyThresholds()
	// Below the floor with a cold cache the sweep cannot amortize.
	if ok, why := RecommendSimplify(denseInput(2, 2, 0), th); ok {
		t.Errorf("occupancy-2 cold batch simplified: %s", why)
	}
	// A warm cache overrides the floor: a singleton whose segments are
	// nearly all cached is the incremental re-reduction case.
	if ok, why := RecommendSimplify(denseInput(1, 8, 7), th); !ok {
		t.Errorf("warm singleton not simplified: %s", why)
	}
}

func TestRecommendSimplifyDisjointStaysDirect(t *testing.T) {
	th := DefaultSimplifyThresholds()
	// Fully disjoint content: Unique == Members*Segments, the plan would
	// do strictly more work than the direct path.
	if ok, why := RecommendSimplify(denseInput(4, 32, 0), th); ok {
		t.Errorf("disjoint batch simplified: %s", why)
	}
}

func TestRecommendSimplifyConstRunsDiscountDirect(t *testing.T) {
	th := DefaultSimplifyThresholds()
	// A staircase batch near the boundary: 4 members, half the cells
	// shared. Without constant runs it clears the margin; with the
	// direct path discounted by near-total constant runs it no longer
	// does.
	in := denseInput(4, 16, 0)
	if ok, why := RecommendSimplify(in, th); !ok {
		t.Fatalf("half-shared batch without runs not simplified: %s", why)
	}
	in.ConstRunFrac = 0.95
	if ok, why := RecommendSimplify(in, th); ok {
		t.Errorf("constant-run batch simplified despite discounted direct cost: %s", why)
	}
}

// TestRecommendSimplifyRejectsDriftGeometry pins the property the
// engine's recalibration tests rely on: the drift workloads' loops have
// an output dimension (16000 elements) on the order of their reference
// stream (24000 refs), so the combine column alone eats the shared-work
// win and those batches must stay on the direct path — their Result
// schemes keep the Figure 3 names.
func TestRecommendSimplifyRejectsDriftGeometry(t *testing.T) {
	th := DefaultSimplifyThresholds()
	in := SimplifyInput{
		Occupancy: 4, Members: 4, Segments: 8,
		Unique: 8, CachedTasks: 0,
		RefsPerMember: 24000, NumElems: 16000,
	}
	if ok, why := RecommendSimplify(in, th); ok {
		t.Errorf("drift-geometry batch simplified: %s", why)
	}
	if SimplifySeedWorthwhile(24000, 16000, 8, th) {
		t.Error("drift-geometry singleton seeds a segment cache")
	}
}

func TestSimplifySeedWorthwhile(t *testing.T) {
	th := DefaultSimplifyThresholds()
	// Dense loop: warm incremental cost is a fraction of the direct pass.
	if !SimplifySeedWorthwhile(32768, 2048, 8, th) {
		t.Error("dense singleton does not seed")
	}
	if SimplifySeedWorthwhile(0, 2048, 8, th) || SimplifySeedWorthwhile(32768, 2048, 0, th) {
		t.Error("degenerate geometry seeds")
	}
}

func TestRecommendSimplifyDegenerate(t *testing.T) {
	th := DefaultSimplifyThresholds()
	if ok, _ := RecommendSimplify(SimplifyInput{}, th); ok {
		t.Error("zero input simplified")
	}
}
