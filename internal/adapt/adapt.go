// Package adapt implements Section 4's adaptive reduction-algorithm
// selection: a decision algorithm that maps a measured access-pattern
// profile (package pattern) to the reduction scheme that best matches it,
// and a measurement harness that ranks all library schemes by simulated
// execution time so the recommendation can be validated the way the
// paper's Figure 3 does ("Recommended scheme" column vs. the measured
// ordering in the "Experimental Result" column).
package adapt

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Thresholds are the decision algorithm's tunable cut-points. The paper
// characterizes each scheme's sweet spot qualitatively; these constants
// quantify them and are exercised by the ablation benchmarks (DESIGN.md
// D4). The defaults reproduce all twenty "Recommended scheme" entries of
// the paper's Figure 3.
type Thresholds struct {
	// HashMaxSP is the sparsity (percent) below which hash tables are
	// considered: "the very sparse nature of the references" (Spice is
	// 0.14–0.2%).
	HashMaxSP float64
	// HashMinMO is the minimum mobility for hash: very sparse patterns
	// with low mobility are served equally well by sel without hashing
	// overhead (Irreg's largest input has SP 0.25% but MO 2 and the paper
	// recommends sel there).
	HashMinMO float64
	// RepMinCHR is the contention ratio above which full replication is
	// on the table (enough references to amortize whole-array sweeps).
	RepMinCHR float64
	// RepMaxDIM is the largest array-to-cache ratio for which replicated
	// arrays stay cache-resident enough to win; above it, local write
	// avoids the private copies entirely.
	RepMaxDIM float64
	// LLMinCHR is the contention ratio above which lazy replicated
	// buffers beat selective privatization (below RepMinCHR).
	LLMinCHR float64
	// LLMaxDIM / LLMinSP admit ll in the low-CHR regime: a small array
	// densely touched (Nbf's smallest input) still favors ll over sel.
	LLMaxDIM float64
	LLMinSP  float64
}

// DefaultThresholds returns the calibrated decision points.
func DefaultThresholds() Thresholds {
	// RepMinCHR and LLMinCHR are centered between the closest Figure 3
	// rows on either side of each boundary (Moldyn's 0.36 vs 0.33 around
	// RepMinCHR; Moldyn's 0.29 vs Irreg's 0.26 around LLMinCHR), which
	// maximizes their perturbation margins (~±4–5%).
	return Thresholds{
		HashMaxSP: 0.5,
		HashMinMO: 8,
		RepMinCHR: 0.345,
		RepMaxDIM: 2.0,
		LLMinCHR:  0.275,
		LLMaxDIM:  0.5,
		LLMinSP:   5.0,
	}
}

// Recommendation is the decision algorithm's output.
type Recommendation struct {
	// Scheme is the paper abbreviation of the selected algorithm.
	Scheme string
	// Why is a one-line human-readable rationale.
	Why string
}

// Recommend runs the paper's decision algorithm on a measured profile
// using the default thresholds.
func Recommend(p *pattern.Profile) Recommendation {
	return RecommendWith(p, DefaultThresholds())
}

// RecommendWith runs the decision algorithm with explicit thresholds.
//
// The rule structure follows the paper's taxonomy: extreme sparsity with
// high mobility selects hash; high contention ratio selects a replicated
// scheme (full replication while the array is cache-scaled, local write
// once private copies would be too large); moderate contention selects
// the lazy replicated buffer; everything else — large, sparsely and
// irregularly referenced arrays — selects selective privatization.
func RecommendWith(p *pattern.Profile, t Thresholds) Recommendation {
	switch {
	case p.SP < t.HashMaxSP && p.MO > t.HashMinMO:
		return Recommendation{"hash", fmt.Sprintf("very sparse (SP=%.2f%% < %.2f%%) with high mobility (MO=%.1f): private hash tables shrink the processed space", p.SP, t.HashMaxSP, p.MO)}
	case p.CHR >= t.RepMinCHR && p.DIM <= t.RepMaxDIM:
		return Recommendation{"rep", fmt.Sprintf("high contention (CHR=%.2f) and cache-scaled array (DIM=%.2f): replicated arrays amortize their sweeps", p.CHR, p.DIM)}
	case p.CHR >= t.RepMinCHR:
		return Recommendation{"lw", fmt.Sprintf("high contention (CHR=%.2f) but large array (DIM=%.2f): owner-computes avoids private copies", p.CHR, p.DIM)}
	case p.CHR >= t.LLMinCHR:
		return Recommendation{"ll", fmt.Sprintf("moderate contention (CHR=%.2f): lazy replicated buffers skip the full-array sweeps", p.CHR)}
	case p.DIM <= t.LLMaxDIM && p.SP >= t.LLMinSP:
		return Recommendation{"ll", fmt.Sprintf("small array (DIM=%.2f) densely touched (SP=%.1f%%): lazy buffers win despite low CHR", p.DIM, p.SP)}
	default:
		return Recommendation{"sel", fmt.Sprintf("low contention (CHR=%.2f) over a large/sparse array (DIM=%.2f, SP=%.2f%%): privatize only conflicting elements", p.CHR, p.DIM, p.SP)}
	}
}

// Measured is one scheme's simulated performance on a loop instance.
type Measured struct {
	// Scheme is the paper abbreviation.
	Scheme string
	// Breakdown is the Init/Loop/Merge virtual-time split.
	Breakdown stats.Breakdown
	// Speedup is sequential virtual time / parallel virtual time.
	Speedup float64
}

// SimulateSequential charges the loop's sequential execution (direct
// updates into the shared array, no privatization) on a one-processor
// virtual machine and returns its virtual time.
func SimulateSequential(l *trace.Loop, cfg vtime.Config) float64 {
	m := vtime.NewMachine(1, cfg)
	const (
		sharedW = int64(1)<<20 + 7*64
		sharedX = int64(1)<<32 + 37*64
	)
	m.Serial(func(cpu *vtime.CPU) {
		pos := 0
		for i := 0; i < l.NumIters(); i++ {
			refs := l.Iter(i)
			cpu.Compute(l.WorkPerIter)
			for k := range refs {
				cpu.Load(sharedX + int64(pos+k)*4)
			}
			pos += len(refs)
			for _, idx := range refs {
				addr := sharedW + int64(idx)*8
				cpu.Load(addr)
				cpu.Compute(1)
				cpu.Store(addr)
			}
		}
	})
	return m.Now()
}

// Rank simulates every scheme in the library on a procs-processor virtual
// machine and returns them sorted by ascending virtual time (best first),
// with speedups relative to the sequential execution.
func Rank(l *trace.Loop, procs int, cfg vtime.Config) []Measured {
	seq := SimulateSequential(l, cfg)
	out := make([]Measured, 0, len(reduction.All()))
	for _, s := range reduction.All() {
		m := vtime.NewMachine(procs, cfg)
		m.EnableSharingTracking()
		b := s.Simulate(l, m)
		out = append(out, Measured{
			Scheme:    s.Name(),
			Breakdown: b,
			Speedup:   stats.Speedup(seq, b.Total()),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Breakdown.Total() < out[j].Breakdown.Total()
	})
	return out
}

// Order formats a ranking the way Figure 3's "Experimental Result" column
// does: scheme names in decreasing speedup order separated by " > ".
func Order(ms []Measured) string {
	s := ""
	for i, m := range ms {
		if i > 0 {
			s += " > "
		}
		s += m.Scheme
	}
	return s
}

// Selection is the full output of adaptive selection on a loop instance.
type Selection struct {
	Profile        *pattern.Profile
	Recommendation Recommendation
	Ranking        []Measured
	// Hit reports whether the recommended scheme was also the fastest in
	// the measured ranking.
	Hit bool
}

// Select characterizes the loop, runs the decision algorithm, measures
// all schemes and reports whether the recommendation hit the measured
// optimum. This is the whole Section 4 pipeline in one call, and the unit
// the SmartApps runtime (package core) invokes when a reduction loop's
// pattern changes.
func Select(l *trace.Loop, procs int, cfg vtime.Config) Selection {
	if cfg.LineBytes == 0 {
		cfg = vtime.DefaultConfig()
	}
	prof := pattern.Characterize(l, procs, cfg.L2Bytes)
	rec := Recommend(prof)
	rank := Rank(l, procs, cfg)
	return Selection{
		Profile:        prof,
		Recommendation: rec,
		Ranking:        rank,
		Hit:            len(rank) > 0 && rank[0].Scheme == rec.Scheme,
	}
}

// SchemeFor returns the runnable Scheme for a recommendation, so callers
// can execute the selected algorithm for real.
func SchemeFor(rec Recommendation) reduction.Scheme {
	s, err := reduction.ByName(rec.Scheme)
	if err != nil {
		// The decision algorithm only emits library names; reaching this
		// is a programming error.
		panic(err)
	}
	return s
}
