// Package trace defines the canonical representation of a reduction loop
// used throughout the SmartApps reproduction.
//
// The paper studies loops of the form
//
//	for i = 0 .. N-1:
//	    w[x[i]] += expression
//
// where w is the reduction array and x[i] is an input-dependent subscript.
// A trace.Loop captures exactly the information such a loop exposes at run
// time: the reduction array size, the per-iteration list of referenced
// reduction elements, the amount of non-reduction work per iteration, and
// the reduction operator. All software schemes (package reduction), the
// pattern characterizer (package pattern), the virtual-time harness
// (package vtime) and the CC-NUMA simulator (package machine) consume this
// single representation, which is how the "compiler" stage of a SmartApp
// hands a recognized reduction to the runtime.
package trace

import (
	"fmt"
	"math"
)

// Op identifies an associative and commutative reduction operator. The
// paper's applications use floating-point addition exclusively; the other
// operators exist because PCLR's directory execution units are specified to
// support an FP adder and comparator (min/max) plus an integer ALU.
type Op int

const (
	// OpAdd is floating-point addition (neutral element 0).
	OpAdd Op = iota
	// OpMul is floating-point multiplication (neutral element 1).
	OpMul
	// OpMax is floating-point maximum (neutral element -Inf).
	OpMax
	// OpMin is floating-point minimum (neutral element +Inf).
	OpMin
)

// String returns the operator's conventional name.
func (op Op) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Neutral returns the operator's neutral element — the value PCLR's
// directory controller uses to fill reduction lines on demand.
func (op Op) Neutral() float64 {
	switch op {
	case OpAdd:
		return 0
	case OpMul:
		return 1
	case OpMax:
		return math.Inf(-1)
	case OpMin:
		return math.Inf(1)
	default:
		return 0
	}
}

// Apply combines accumulator a with contribution b under the operator.
func (op Op) Apply(a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpMul:
		return a * b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		return a
	}
}

// Loop is a reduction loop instance: the unit of work a SmartApp hands to
// the adaptive reduction runtime. Iterations are stored flattened
// (offsets into a single refs slice) to keep large traces cache-friendly.
type Loop struct {
	// Name identifies the loop (e.g. "Irreg-DO100").
	Name string
	// NumElems is the reduction array dimension (number of elements of w).
	NumElems int
	// ElemBytes is the size of one reduction element; the paper's loops
	// reduce into double-precision arrays, so this defaults to 8.
	ElemBytes int
	// WorkPerIter is the average number of non-reduction instructions per
	// iteration (Table 2's "Instruc. per Iter." minus the reduction
	// operations). The virtual-time harness and the simulator charge this
	// as computation between reduction accesses.
	WorkPerIter float64
	// DataRefsPerIter is the average number of non-reduction data
	// references per iteration (reads of coordinates, matrix entries,
	// flux arrays, ...). The CC-NUMA simulator streams these through the
	// caches, where they compete with reduction lines — the effect behind
	// Table 2's displaced-lines column.
	DataRefsPerIter float64
	// Op is the reduction operator.
	Op Op
	// Invocations is how many times the enclosing program executes this
	// loop with the same access pattern (Table 2's "# of Invocations").
	// Inspector-based schemes (sel, lw) amortize their inspector cost
	// over it; a zero value means 1.
	Invocations int

	offsets []int32
	refs    []int32
}

// NewLoop returns an empty loop over numElems reduction elements.
func NewLoop(name string, numElems int) *Loop {
	return &Loop{
		Name:      name,
		NumElems:  numElems,
		ElemBytes: 8,
		Op:        OpAdd,
		offsets:   []int32{0},
	}
}

// AddIter appends one iteration that references the given reduction
// elements. Indices must be in [0, NumElems).
func (l *Loop) AddIter(refs ...int32) {
	for _, r := range refs {
		if int(r) < 0 || int(r) >= l.NumElems {
			panic(fmt.Sprintf("trace: ref %d out of range [0,%d)", r, l.NumElems))
		}
	}
	l.refs = append(l.refs, refs...)
	l.offsets = append(l.offsets, int32(len(l.refs)))
}

// NumIters returns the number of iterations in the loop.
func (l *Loop) NumIters() int { return len(l.offsets) - 1 }

// Iter returns the reduction element indices referenced by iteration i.
// The returned slice aliases internal storage and must not be modified.
func (l *Loop) Iter(i int) []int32 {
	return l.refs[l.offsets[i]:l.offsets[i+1]]
}

// TotalRefs returns the total number of reduction references in the loop
// (the sum of the CH histogram, in the paper's terminology).
func (l *Loop) TotalRefs() int { return len(l.refs) }

// RefsInRange returns the number of reduction references made by
// iterations [lo, hi). It is O(1): schedulers use it to bound the storage
// a block of iterations can touch.
func (l *Loop) RefsInRange(lo, hi int) int {
	return int(l.offsets[hi] - l.offsets[lo])
}

// ArrayBytes returns the reduction array footprint in bytes.
func (l *Loop) ArrayBytes() int { return l.NumElems * l.ElemBytes }

// Value is the deterministic contribution of the k-th reduction reference
// of iteration iter to element idx. Using a pure function instead of stored
// values keeps multi-million-reference traces compact while still letting
// every scheme's result be checked against the sequential reference
// execution bit-for-bit (all schemes apply contributions in element-local
// order, and the operators used in tests are tolerance-checked for the
// reassociation the parallel schemes perform).
func Value(iter, k int, idx int32) float64 {
	h := uint64(iter)*0x9E3779B97F4A7C15 ^ uint64(k)*0xBF58476D1CE4E5B9 ^ uint64(idx)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	// Map to (0, 1]: keep contributions positive and well-scaled so that
	// add/mul/max/min reductions all remain numerically stable.
	return float64(h>>11)/float64(1<<53) + 1e-9
}

// RunSequential executes the loop sequentially and returns the reduction
// array. This is the semantic reference every parallel scheme must match.
func (l *Loop) RunSequential() []float64 {
	w := make([]float64, l.NumElems)
	neutral := l.Op.Neutral()
	for i := range w {
		w[i] = neutral
	}
	for i := 0; i < l.NumIters(); i++ {
		for k, idx := range l.Iter(i) {
			w[idx] = l.Op.Apply(w[idx], Value(i, k, idx))
		}
	}
	return w
}

// InvocationCount returns Invocations clamped to at least 1.
func (l *Loop) InvocationCount() int {
	if l.Invocations < 1 {
		return 1
	}
	return l.Invocations
}

// TouchedElems returns how many distinct reduction elements the loop
// references (used by the sparsity and connectivity metrics).
func (l *Loop) TouchedElems() int {
	touched := make([]bool, l.NumElems)
	n := 0
	for _, r := range l.refs {
		if !touched[r] {
			touched[r] = true
			n++
		}
	}
	return n
}

// Fingerprint returns a 64-bit structural signature of the loop's access
// pattern: the dimensions, operator and a strided sample of the subscript
// stream and iteration shape. Two loops with the same fingerprint almost
// surely have the same pattern regime, which is what the adaptive engine's
// decision cache keys on — the paper's "re-characterize only when the
// pattern changed" rule turned into a hash lookup. It reads O(samples)
// references regardless of trace size.
func (l *Loop) Fingerprint() uint64 {
	const samples = 256
	h := uint64(14695981039346656037) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	mix(uint64(l.NumElems))
	mix(uint64(l.ElemBytes))
	mix(uint64(len(l.refs)))
	mix(uint64(len(l.offsets)))
	mix(uint64(l.Op))
	stride := len(l.refs) / samples
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(l.refs); i += stride {
		mix(uint64(uint32(l.refs[i])) | uint64(i)<<32)
	}
	offStride := (len(l.offsets) - 1) / samples
	if offStride < 1 {
		offStride = 1
	}
	for i := 0; i < len(l.offsets); i += offStride {
		mix(uint64(uint32(l.offsets[i])))
	}
	return h
}

// Flat exposes the loop's flattened iteration structure: offsets is the
// iteration boundary array (len NumIters+1, offsets[0] == 0) and refs the
// concatenated reduction element indices, so iteration i references
// refs[offsets[i]:offsets[i+1]]. Both slices alias internal storage and
// must not be modified; the wire protocol encodes from them directly
// instead of walking Iter per iteration.
func (l *Loop) Flat() (offsets, refs []int32) { return l.offsets, l.refs }

// SetFlat installs a flattened iteration structure built elsewhere (a
// trace loader, a test), taking ownership of both slices. It validates
// the same invariants AddIter maintains and leaves the loop unchanged on
// error.
func (l *Loop) SetFlat(offsets, refs []int32) error {
	saveOff, saveRefs := l.offsets, l.refs
	l.offsets, l.refs = offsets, refs
	if err := l.Validate(); err != nil {
		l.offsets, l.refs = saveOff, saveRefs
		return err
	}
	return nil
}

// SetFlatUnchecked is SetFlat without the O(iters + refs) re-validation,
// for callers that construct the invariants themselves — the wire
// decoder bounds-checks every offset and reference as it builds the
// arrays, and re-walking multi-million-reference traces a second time
// per network submission would double the decode cost for no added
// safety. Anything installed here that violates Validate's invariants is
// a bug in the caller.
func (l *Loop) SetFlatUnchecked(offsets, refs []int32) {
	l.offsets, l.refs = offsets, refs
}

// EqualPattern reports whether two loops are the same reduction job in
// every respect that affects its results: dimensions, operator and the
// full access pattern. Names and the characterization metadata
// (WorkPerIter, DataRefsPerIter, Invocations) are ignored — two clients
// may label or profile identical work differently, and the engine's
// decision cache already keys on Fingerprint, which excludes them too;
// a stricter predicate would only break sharing between submissions the
// engine itself treats as one pattern. The network server interns
// decoded loops under this predicate so repeated submissions of one hot
// pattern become pointer-identical, which is what lets the engine's
// batch fusion engage across the network hop (the first submission's
// metadata rides along on the canonical loop).
func (l *Loop) EqualPattern(m *Loop) bool {
	if l == m {
		return true
	}
	if l == nil || m == nil {
		return false
	}
	if l.NumElems != m.NumElems || l.ElemBytes != m.ElemBytes ||
		l.Op != m.Op ||
		len(l.offsets) != len(m.offsets) || len(l.refs) != len(m.refs) {
		return false
	}
	for i, o := range l.offsets {
		if m.offsets[i] != o {
			return false
		}
	}
	for i, r := range l.refs {
		if m.refs[i] != r {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the loop.
func (l *Loop) Clone() *Loop {
	c := *l
	c.offsets = append([]int32(nil), l.offsets...)
	c.refs = append([]int32(nil), l.refs...)
	return &c
}

// Validate checks structural invariants and returns an error describing the
// first violation, or nil.
func (l *Loop) Validate() error {
	if l.NumElems <= 0 {
		return fmt.Errorf("trace: loop %q has non-positive NumElems %d", l.Name, l.NumElems)
	}
	if len(l.offsets) == 0 || l.offsets[0] != 0 {
		return fmt.Errorf("trace: loop %q has malformed offsets", l.Name)
	}
	for i := 1; i < len(l.offsets); i++ {
		if l.offsets[i] < l.offsets[i-1] {
			return fmt.Errorf("trace: loop %q offsets not monotonic at %d", l.Name, i)
		}
	}
	if int(l.offsets[len(l.offsets)-1]) != len(l.refs) {
		return fmt.Errorf("trace: loop %q final offset %d != len(refs) %d", l.Name, l.offsets[len(l.offsets)-1], len(l.refs))
	}
	for _, r := range l.refs {
		if int(r) < 0 || int(r) >= l.NumElems {
			return fmt.Errorf("trace: loop %q ref %d out of range [0,%d)", l.Name, r, l.NumElems)
		}
	}
	return nil
}
