package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpAdd: "add", OpMul: "mul", OpMax: "max", OpMin: "min", Op(99): "Op(99)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestOpNeutral(t *testing.T) {
	if OpAdd.Neutral() != 0 {
		t.Error("add neutral should be 0")
	}
	if OpMul.Neutral() != 1 {
		t.Error("mul neutral should be 1")
	}
	if !math.IsInf(OpMax.Neutral(), -1) {
		t.Error("max neutral should be -Inf")
	}
	if !math.IsInf(OpMin.Neutral(), 1) {
		t.Error("min neutral should be +Inf")
	}
}

func TestOpApplyNeutralIsIdentity(t *testing.T) {
	// Property: applying the neutral element leaves any value unchanged.
	ops := []Op{OpAdd, OpMul, OpMax, OpMin}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		for _, op := range ops {
			if op.Apply(x, op.Neutral()) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpApplyCommutative(t *testing.T) {
	ops := []Op{OpAdd, OpMax, OpMin} // mul of arbitrary floats can overflow; add/max/min suffice
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		for _, op := range ops {
			if op.Apply(a, b) != op.Apply(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoopBuildAndAccess(t *testing.T) {
	l := NewLoop("t", 10)
	l.AddIter(0, 1, 2)
	l.AddIter(5)
	l.AddIter() // empty iteration is legal
	l.AddIter(9, 9)
	if l.NumIters() != 4 {
		t.Fatalf("NumIters = %d, want 4", l.NumIters())
	}
	if l.TotalRefs() != 6 {
		t.Fatalf("TotalRefs = %d, want 6", l.TotalRefs())
	}
	it := l.Iter(0)
	if len(it) != 3 || it[0] != 0 || it[2] != 2 {
		t.Errorf("Iter(0) = %v", it)
	}
	if len(l.Iter(2)) != 0 {
		t.Errorf("Iter(2) should be empty, got %v", l.Iter(2))
	}
	if got := l.TouchedElems(); got != 5 {
		t.Errorf("TouchedElems = %d, want 5 (0,1,2,5,9)", got)
	}
	if l.ArrayBytes() != 80 {
		t.Errorf("ArrayBytes = %d, want 80", l.ArrayBytes())
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddIterPanicsOutOfRange(t *testing.T) {
	l := NewLoop("t", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range ref")
		}
	}()
	l.AddIter(4)
}

func TestRunSequentialAdd(t *testing.T) {
	l := NewLoop("t", 3)
	l.AddIter(0, 1)
	l.AddIter(1, 2)
	w := l.RunSequential()
	want0 := Value(0, 0, 0)
	want1 := Value(0, 1, 1) + Value(1, 0, 1)
	want2 := Value(1, 1, 2)
	if math.Abs(w[0]-want0) > 1e-15 || math.Abs(w[1]-want1) > 1e-15 || math.Abs(w[2]-want2) > 1e-15 {
		t.Errorf("RunSequential = %v, want [%g %g %g]", w, want0, want1, want2)
	}
}

func TestRunSequentialMaxMin(t *testing.T) {
	for _, op := range []Op{OpMax, OpMin} {
		l := NewLoop("t", 2)
		l.Op = op
		l.AddIter(0, 0, 0)
		w := l.RunSequential()
		// Element 1 is never touched: must stay at the neutral element.
		if w[1] != op.Neutral() {
			t.Errorf("%v: untouched element = %g, want neutral %g", op, w[1], op.Neutral())
		}
		// Element 0 must equal the op over the three contributions.
		want := op.Neutral()
		for k := 0; k < 3; k++ {
			want = op.Apply(want, Value(0, k, 0))
		}
		if w[0] != want {
			t.Errorf("%v: w[0] = %g, want %g", op, w[0], want)
		}
	}
}

func TestValueDeterministicAndBounded(t *testing.T) {
	a := Value(3, 1, 42)
	b := Value(3, 1, 42)
	if a != b {
		t.Error("Value must be deterministic")
	}
	f := func(iter, k uint16, idx int16) bool {
		v := Value(int(iter), int(k), int32(idx))
		return v > 0 && v <= 1.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := NewLoop("t", 5)
	l.AddIter(1, 2)
	c := l.Clone()
	c.AddIter(3)
	if l.NumIters() != 1 {
		t.Errorf("clone mutation leaked into original: NumIters = %d", l.NumIters())
	}
	if c.NumIters() != 2 {
		t.Errorf("clone NumIters = %d, want 2", c.NumIters())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l := NewLoop("t", 5)
	l.AddIter(1)
	l.refs[0] = 17 // corrupt beyond NumElems
	if err := l.Validate(); err == nil {
		t.Error("Validate should reject out-of-range ref")
	}
	l2 := NewLoop("t2", 0)
	if err := l2.Validate(); err == nil {
		t.Error("Validate should reject NumElems == 0")
	}
}

func TestSequentialTotalMassProperty(t *testing.T) {
	// Property: for OpAdd, the sum over the result array equals the sum of
	// all contributions, regardless of the access pattern.
	f := func(pattern []uint8) bool {
		n := 16
		l := NewLoop("p", n)
		for i, p := range pattern {
			l.AddIter(int32(int(p) % n))
			_ = i
		}
		w := l.RunSequential()
		var got, want float64
		for _, v := range w {
			got += v
		}
		for i := 0; i < l.NumIters(); i++ {
			for k, idx := range l.Iter(i) {
				want += Value(i, k, idx)
			}
		}
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlatSetFlatRoundTrip(t *testing.T) {
	l := NewLoop("flat", 8)
	l.AddIter(0, 3)
	l.AddIter(7)
	l.AddIter()
	l.AddIter(2, 2, 5)

	offsets, refs := l.Flat()
	m := NewLoop("flat", 8)
	if err := m.SetFlat(append([]int32(nil), offsets...), append([]int32(nil), refs...)); err != nil {
		t.Fatalf("SetFlat: %v", err)
	}
	if m.NumIters() != l.NumIters() || m.TotalRefs() != l.TotalRefs() {
		t.Fatalf("shape mismatch: %d/%d iters, %d/%d refs",
			m.NumIters(), l.NumIters(), m.TotalRefs(), l.TotalRefs())
	}
	if !l.EqualPattern(m) {
		t.Fatal("EqualPattern false after Flat/SetFlat round trip")
	}
	for i := 0; i < l.NumIters(); i++ {
		a, b := l.Iter(i), m.Iter(i)
		if len(a) != len(b) {
			t.Fatalf("iter %d length mismatch", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("iter %d ref %d: %d != %d", i, k, a[k], b[k])
			}
		}
	}
}

func TestSetFlatRejectsMalformed(t *testing.T) {
	l := NewLoop("bad", 4)
	l.AddIter(1)
	cases := []struct {
		name    string
		offsets []int32
		refs    []int32
	}{
		{"nil offsets", nil, nil},
		{"nonzero first offset", []int32{1, 2}, []int32{0}},
		{"non-monotonic", []int32{0, 2, 1}, []int32{0, 1}},
		{"final offset mismatch", []int32{0, 1}, []int32{0, 1}},
		{"ref out of range", []int32{0, 1}, []int32{9}},
		{"negative ref", []int32{0, 1}, []int32{-1}},
	}
	for _, c := range cases {
		if err := l.SetFlat(c.offsets, c.refs); err == nil {
			t.Errorf("%s: SetFlat accepted malformed input", c.name)
		}
	}
	// The failed installs must leave the loop intact.
	if l.NumIters() != 1 || l.TotalRefs() != 1 || l.Iter(0)[0] != 1 {
		t.Fatal("loop mutated by rejected SetFlat")
	}
}

func TestEqualPattern(t *testing.T) {
	build := func() *Loop {
		l := NewLoop("a", 16)
		l.WorkPerIter = 3
		l.DataRefsPerIter = 1.5
		l.AddIter(0, 1)
		l.AddIter(15)
		return l
	}
	a, b := build(), build()
	b.Name = "b" // names are ignored
	if !a.EqualPattern(b) {
		t.Fatal("identical patterns compare unequal")
	}
	c := build()
	c.AddIter(2)
	if a.EqualPattern(c) {
		t.Fatal("different iteration counts compare equal")
	}
	d := build()
	do, dr := d.Flat()
	dr[0] = 1
	_ = do
	if a.EqualPattern(d) {
		t.Fatal("different refs compare equal")
	}
	e := build()
	e.Op = OpMax
	if a.EqualPattern(e) {
		t.Fatal("different operators compare equal")
	}
	// Characterization metadata is advisory, not result-affecting: loops
	// differing only there must still intern onto one canonical object
	// (the engine's decision cache ignores it too).
	f := build()
	f.WorkPerIter = 4
	f.DataRefsPerIter = 9
	f.Invocations = 7
	if !a.EqualPattern(f) {
		t.Fatal("metadata-only difference broke pattern equality")
	}
	if a.EqualPattern(nil) || !a.EqualPattern(a) {
		t.Fatal("nil/self EqualPattern misbehaves")
	}
}
