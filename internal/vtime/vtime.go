// Package vtime provides a deterministic virtual-time execution substrate.
//
// The paper's Figure 3 study measures the five software reduction schemes
// on a real 8-processor shared-memory machine. This reproduction runs on a
// host whose parallelism is not guaranteed (possibly a single core), so
// wall-clock speedups are meaningless. Instead, each virtual processor
// replays the memory accesses its scheme actually performs through a
// private two-level cache model and is charged deterministic cycle costs
// (Table 1's latencies); the time of a parallel phase is the maximum charge
// across processors, and serial phases are charged directly. This preserves
// exactly the effects that differentiate the schemes — initialization and
// merge volume, loop-body locality, contention on shared lines — which is
// what the paper's measured ordering reflects.
package vtime

import (
	"fmt"
)

// Config holds the cost model parameters. Defaults mirror the paper's
// Table 1 memory hierarchy.
type Config struct {
	// L1Bytes, L1Assoc describe the first-level cache (32 KB, 2-way).
	L1Bytes, L1Assoc int
	// L2Bytes, L2Assoc describe the second-level cache (512 KB, 4-way).
	L2Bytes, L2Assoc int
	// LineBytes is the cache line size in bytes (64 B at both levels).
	LineBytes int

	// L1HitCycles, L2HitCycles, MemCycles are contention-free round-trip
	// latencies in processor cycles (2, 10, 104 in Table 1).
	L1HitCycles  float64
	L2HitCycles  float64
	MemCycles    float64
	RemoteCycles float64 // 2-hop latency (297 in Table 1)

	// CPI is the cycle charge per non-memory instruction. The paper's
	// processor is 4-issue dynamic; sustained non-memory IPC near 2 is
	// typical for these irregular codes, so the default CPI is 0.5.
	CPI float64

	// CoherencePenalty is the extra cycle charge for an access that misses
	// because another virtual processor holds the line modified
	// (invalidation + cache-to-cache transfer). Charged only when sharing
	// tracking is enabled on the machine.
	CoherencePenalty float64

	// StreamOverlap is the memory-level-parallelism factor for
	// sequential sweep accesses (StreamLoad/StreamStore): the modeled
	// processor has 8 pending loads and 16 pending stores (Table 1), so
	// independent sequential misses overlap and each one is charged only
	// 1/StreamOverlap of the miss latency. Dependent random accesses
	// (Load/Store) always pay the full latency.
	StreamOverlap float64

	// TLBEntries, PageBytes and TLBMissCycles model the translation
	// lookaside buffer. The paper's explanation of why hash reductions
	// win on very sparse patterns — "the hash table reduces the allocated
	// and processed space to such an extent that ... the performance
	// improves dramatically" — is an address-translation-footprint
	// effect: schemes whose private structures span the whole reduction
	// array touch hundreds of pages, while a compact hash table lives on
	// a few. TLBEntries == 0 disables the model.
	TLBEntries    int
	PageBytes     int
	TLBMissCycles float64
}

// DefaultConfig returns the Table 1 cost model.
func DefaultConfig() Config {
	return Config{
		L1Bytes: 32 << 10, L1Assoc: 2,
		L2Bytes: 512 << 10, L2Assoc: 4,
		LineBytes:   64,
		L1HitCycles: 2, L2HitCycles: 10, MemCycles: 104, RemoteCycles: 297,
		CPI:              0.5,
		CoherencePenalty: 193, // RemoteCycles - MemCycles: a dirty remote hit costs a 2-hop trip
		StreamOverlap:    8,
		TLBEntries:       64,
		PageBytes:        8 << 10,
		TLBMissCycles:    50,
	}
}

// cache is a set-associative LRU cache tracking line tags only.
type cache struct {
	sets     int
	assoc    int
	lineBits uint
	tags     []int64 // sets*assoc entries; -1 = invalid; LRU order within set (index 0 = MRU)
}

func newCache(bytes, assoc, lineBytes int) *cache {
	if bytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		panic("vtime: cache geometry must be positive")
	}
	lines := bytes / lineBytes
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	c := &cache{sets: sets, assoc: assoc, lineBits: lineBits, tags: make([]int64, sets*assoc)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// access looks up the line containing addr, returns whether it hit, and
// installs the line (LRU replacement) on a miss. evicted is the line
// address pushed out, or -1.
func (c *cache) access(line int64) (hit bool, evicted int64) {
	set := int(line % int64(c.sets))
	if set < 0 {
		set += c.sets
	}
	base := set * c.assoc
	ways := c.tags[base : base+c.assoc]
	for i, t := range ways {
		if t == line {
			// Move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true, -1
		}
	}
	evicted = ways[c.assoc-1]
	copy(ways[1:], ways[:c.assoc-1])
	ways[0] = line
	return false, evicted
}

// invalidate removes line from the cache if present; reports whether it
// was held.
func (c *cache) invalidate(line int64) bool {
	set := int(line % int64(c.sets))
	if set < 0 {
		set += c.sets
	}
	base := set * c.assoc
	ways := c.tags[base : base+c.assoc]
	for i, t := range ways {
		if t == line {
			// Shift the remaining MRU entries up and vacate the LRU slot.
			copy(ways[i:], ways[i+1:])
			ways[c.assoc-1] = -1
			return true
		}
	}
	return false
}

// flush invalidates every line and returns how many valid lines were held.
func (c *cache) flush() int {
	n := 0
	for i, t := range c.tags {
		if t >= 0 {
			n++
			c.tags[i] = -1
		}
	}
	return n
}

// CPU is one virtual processor: a private two-level cache plus a cycle
// accumulator. Addresses are abstract byte addresses in a flat address
// space managed by the caller (see Machine.PrivateBase / SharedBase).
type CPU struct {
	id     int
	cfg    *Config
	l1, l2 *cache
	tlb    *cache // fully associative, line == page; nil when disabled
	cycles float64

	loads, stores, l1Misses, l2Misses, tlbMisses int64

	m *Machine
}

// ID returns the processor index.
func (c *CPU) ID() int { return c.id }

// Cycles returns the cycles accumulated since the CPU was last reset.
func (c *CPU) Cycles() float64 { return c.cycles }

// Compute charges instr non-memory instructions.
func (c *CPU) Compute(instr float64) {
	c.cycles += instr * c.cfg.CPI
}

// Stall charges raw cycles (used for fixed overheads such as system calls).
func (c *CPU) Stall(cycles float64) { c.cycles += cycles }

// Load charges one read of the 8-byte word at addr.
func (c *CPU) Load(addr int64) { c.memAccess(addr, false, 1) }

// Store charges one write of the 8-byte word at addr.
func (c *CPU) Store(addr int64) { c.memAccess(addr, true, 1) }

// StreamLoad charges a read that is part of a sequential sweep: misses
// overlap under the processor's non-blocking memory system, so the miss
// penalty is divided by Config.StreamOverlap.
func (c *CPU) StreamLoad(addr int64) { c.memAccess(addr, false, c.streamOverlap()) }

// StreamStore charges a write that is part of a sequential sweep.
func (c *CPU) StreamStore(addr int64) { c.memAccess(addr, true, c.streamOverlap()) }

func (c *CPU) streamOverlap() float64 {
	if c.cfg.StreamOverlap <= 1 {
		return 1
	}
	return c.cfg.StreamOverlap
}

func (c *CPU) memAccess(addr int64, write bool, overlap float64) {
	if write {
		c.stores++
	} else {
		c.loads++
	}
	line := addr >> c.cfg.lineBits()
	tracking := c.m != nil && c.m.trackSharing

	if c.tlb != nil {
		if hit, _ := c.tlb.access(addr / int64(c.cfg.PageBytes)); !hit {
			c.tlbMisses++
			// Page-table walks are dependent loads; they do not overlap
			// the way streaming data misses do, but a sequential sweep
			// amortizes one walk over a whole page.
			c.cycles += c.cfg.TLBMissCycles
		}
	}

	// Phase-concurrent sharing. Per-CPU replay within a phase is
	// sequential, so ping-ponging of lines written by several processors
	// cannot emerge from the cache state; it is charged analytically
	// instead: if o other processors write this line during the phase,
	// an access is invalidated-under-us with expected frequency o/(o+1)
	// and pays that fraction of the coherence penalty.
	chargedShare := false
	if tracking {
		if w := c.m.phaseWriters[line]; w&^(1<<uint(c.id)) != 0 {
			o := onesCount64(w &^ (1 << uint(c.id)))
			c.cycles += c.cfg.CoherencePenalty * float64(o) / float64(o+1)
			chargedShare = true
		}
	}

	if hit, _ := c.l1.access(line); hit {
		c.cycles += c.cfg.L1HitCycles
		if write && tracking {
			c.m.noteWrite(c.id, line)
		}
		return
	}
	c.l1Misses++
	if hit, _ := c.l2.access(line); hit {
		c.cycles += c.cfg.L2HitCycles / overlap
		if write && tracking {
			c.m.noteWrite(c.id, line)
		}
		return
	}
	c.l2Misses++
	cost := c.cfg.MemCycles
	if tracking {
		// A miss to a line dirtied by another processor in an earlier
		// phase is a cache-to-cache transfer (2-hop cost). Skipped when
		// the phase-concurrent charge above already covered the line.
		if owner, dirty := c.m.lineOwner(line); dirty && owner != c.id && !chargedShare {
			cost += c.cfg.CoherencePenalty
		}
		if write {
			c.m.noteWrite(c.id, line)
		}
	}
	c.cycles += cost / overlap
}

// onesCount64 is bits.OnesCount64 (kept local to avoid importing math/bits
// in multiple spots).
func onesCount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// FlushCaches invalidates both cache levels and charges the write-back
// cost of the dirty reduction lines: count lines, each costing a memory
// round trip amortized by pipelining (half MemCycles each). Returns the
// number of lines that were flushed.
func (c *CPU) FlushCaches() int {
	n := c.l1.flush() + c.l2.flush()
	c.cycles += float64(n) * c.cfg.MemCycles / 2
	return n
}

// Counters returns the CPU's access statistics.
func (c *CPU) Counters() (loads, stores, l1Misses, l2Misses int64) {
	return c.loads, c.stores, c.l1Misses, c.l2Misses
}

// TLBMisses returns the number of TLB misses charged so far.
func (c *CPU) TLBMisses() int64 { return c.tlbMisses }

func (cfg *Config) lineBits() uint {
	b := uint(0)
	for 1<<b < cfg.LineBytes {
		b++
	}
	return b
}

// Machine is a set of virtual CPUs sharing a flat address space and a
// global virtual clock. Phases advance the clock: a Parallel phase by the
// maximum per-CPU charge, a Serial phase by CPU 0's charge.
type Machine struct {
	cfg  Config
	cpus []*CPU
	now  float64

	trackSharing bool
	owners       map[int64]int32  // line -> last writing CPU (dirty), persistent
	phaseWriters map[int64]uint64 // line -> bitmap of CPUs that wrote it this phase
}

// NewMachine builds a machine with procs virtual processors.
func NewMachine(procs int, cfg Config) *Machine {
	if procs < 1 {
		panic(fmt.Sprintf("vtime: invalid processor count %d", procs))
	}
	if cfg.LineBytes == 0 {
		cfg = DefaultConfig()
	}
	if procs > 64 {
		panic(fmt.Sprintf("vtime: at most 64 virtual processors supported, got %d", procs))
	}
	m := &Machine{cfg: cfg, owners: make(map[int64]int32), phaseWriters: make(map[int64]uint64)}
	for i := 0; i < procs; i++ {
		cpu := &CPU{
			id:  i,
			cfg: &m.cfg,
			l1:  newCache(cfg.L1Bytes, cfg.L1Assoc, cfg.LineBytes),
			l2:  newCache(cfg.L2Bytes, cfg.L2Assoc, cfg.LineBytes),
			m:   m,
		}
		if cfg.TLBEntries > 0 {
			// One set of TLBEntries ways over page-sized "lines".
			cpu.tlb = newCache(cfg.TLBEntries*cfg.PageBytes, cfg.TLBEntries, cfg.PageBytes)
		}
		m.cpus = append(m.cpus, cpu)
	}
	return m
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return len(m.cpus) }

// Config returns the machine's cost model.
func (m *Machine) Config() Config { return m.cfg }

// EnableSharingTracking turns on dirty-line ownership tracking so that
// misses to lines last written by another CPU pay the coherence penalty.
func (m *Machine) EnableSharingTracking() { m.trackSharing = true }

func (m *Machine) noteWrite(cpu int, line int64) {
	// An invalidation-based protocol: gaining write ownership of a line
	// removes every other processor's copy, so a later access by them
	// misses (and, via the owners map, pays the cache-to-cache transfer
	// cost). Invalidation is unconditional because the model does not
	// track read-sharer sets; invalidating an uncached line is harmless.
	for _, other := range m.cpus {
		if other.id == cpu {
			continue
		}
		other.l1.invalidate(line)
		other.l2.invalidate(line)
	}
	m.owners[line] = int32(cpu)
	m.phaseWriters[line] |= 1 << uint(cpu)
}

func (m *Machine) lineOwner(line int64) (owner int, dirty bool) {
	o, ok := m.owners[line]
	return int(o), ok
}

// Now returns the machine's virtual time in cycles.
func (m *Machine) Now() float64 { return m.now }

// Parallel runs body once per CPU (deterministically, in CPU order) and
// advances the clock by the maximum per-CPU charge. It returns that
// maximum (the phase's virtual duration).
func (m *Machine) Parallel(body func(cpu *CPU)) float64 {
	return m.ParallelScaled(1, body)
}

// ParallelScaled runs a parallel phase whose cycle charge is multiplied
// by scale. It models amortization: a phase whose result is reused across
// K invocations of a loop (an inspector pass) costs 1/K per invocation,
// while its cache side effects still occur. scale must be in (0, 1].
func (m *Machine) ParallelScaled(scale float64, body func(cpu *CPU)) float64 {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("vtime: phase scale %g outside (0,1]", scale))
	}
	m.beginPhase()
	if m.trackSharing && len(m.cpus) > 1 {
		// Replay is sequential per CPU, so a single pass would let later
		// CPUs see earlier CPUs' writes but not vice versa. Run the phase
		// once to collect the full writer sets, roll everything back, and
		// charge the real pass against the complete sets. Phase bodies
		// must therefore be idempotent in their effects outside the CPU.
		snap := m.snapshot()
		for _, c := range m.cpus {
			body(c)
		}
		writers := m.phaseWriters
		m.restore(snap)
		m.phaseWriters = writers
	}
	var maxDelta float64
	for _, c := range m.cpus {
		start := c.cycles
		body(c)
		d := (c.cycles - start) * scale
		c.cycles = start + d
		if d > maxDelta {
			maxDelta = d
		}
	}
	m.now += maxDelta
	return maxDelta
}

// machineSnapshot captures the mutable simulation state of a machine.
type machineSnapshot struct {
	cycles      []float64
	counters    [][5]int64
	l1, l2, tlb [][]int64
	owners      map[int64]int32
}

func (m *Machine) snapshot() machineSnapshot {
	s := machineSnapshot{owners: make(map[int64]int32, len(m.owners))}
	for _, c := range m.cpus {
		s.cycles = append(s.cycles, c.cycles)
		s.counters = append(s.counters, [5]int64{c.loads, c.stores, c.l1Misses, c.l2Misses, c.tlbMisses})
		s.l1 = append(s.l1, append([]int64(nil), c.l1.tags...))
		s.l2 = append(s.l2, append([]int64(nil), c.l2.tags...))
		if c.tlb != nil {
			s.tlb = append(s.tlb, append([]int64(nil), c.tlb.tags...))
		} else {
			s.tlb = append(s.tlb, nil)
		}
	}
	for k, v := range m.owners {
		s.owners[k] = v
	}
	return s
}

func (m *Machine) restore(s machineSnapshot) {
	for i, c := range m.cpus {
		c.cycles = s.cycles[i]
		c.loads, c.stores, c.l1Misses, c.l2Misses, c.tlbMisses =
			s.counters[i][0], s.counters[i][1], s.counters[i][2], s.counters[i][3], s.counters[i][4]
		copy(c.l1.tags, s.l1[i])
		copy(c.l2.tags, s.l2[i])
		if c.tlb != nil {
			copy(c.tlb.tags, s.tlb[i])
		}
	}
	m.owners = s.owners
}

// beginPhase clears the phase-concurrent writer sets (a phase boundary is
// a barrier: lines settle into their last writer's cache).
func (m *Machine) beginPhase() {
	if len(m.phaseWriters) > 0 {
		m.phaseWriters = make(map[int64]uint64)
	}
}

// Serial runs body on CPU 0 and advances the clock by its charge.
func (m *Machine) Serial(body func(cpu *CPU)) float64 {
	m.beginPhase()
	c := m.cpus[0]
	start := c.cycles
	body(c)
	d := c.cycles - start
	m.now += d
	return d
}

// CPU returns processor i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// AddressSpace carves abstract addresses. Shared data lives at low
// addresses; each CPU's private heap starts at PrivateBase(id).
const privateRegion = int64(1) << 40

// SharedAddr returns the address of the i-th 8-byte word of the shared
// array identified by arrayBase (caller-chosen, must be line-aligned and
// non-overlapping).
func SharedAddr(arrayBase int64, i int) int64 { return arrayBase + int64(i)*8 }

// PrivateBase returns the base address of CPU id's private region.
// Private regions never collide with shared arrays or each other. Bases
// are staggered by a per-CPU line offset so that the same logical index in
// different regions does not map to the same cache set — power-of-two
// aligned heaps would turn every cross-region sweep into single-set
// thrashing, an artifact no real allocator exhibits.
func PrivateBase(id int) int64 {
	return privateRegion*int64(id+1) + int64(id)*101*64
}
