package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(1024, 2, 64)
	if hit, _ := c.access(7); hit {
		t.Fatal("first access must miss")
	}
	if hit, _ := c.access(7); !hit {
		t.Fatal("second access must hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways: lines with the same parity map to the same set.
	c := newCache(256, 2, 64) // 4 lines total, 2 sets
	c.access(0)               // set 0
	c.access(2)               // set 0
	c.access(4)               // set 0 -> evicts line 0 (LRU)
	if hit, _ := c.access(2); !hit {
		t.Error("line 2 should still be cached")
	}
	if hit, _ := c.access(0); hit {
		t.Error("line 0 should have been evicted")
	}
}

func TestCacheEvictedLineReported(t *testing.T) {
	c := newCache(128, 1, 64) // direct-mapped, 2 sets
	c.access(0)
	_, ev := c.access(2) // same set as 0
	if ev != 0 {
		t.Errorf("evicted = %d, want 0", ev)
	}
}

func TestCacheFlushCounts(t *testing.T) {
	c := newCache(1024, 2, 64)
	c.access(1)
	c.access(2)
	c.access(3)
	if n := c.flush(); n != 3 {
		t.Errorf("flush returned %d, want 3", n)
	}
	if hit, _ := c.access(1); hit {
		t.Error("cache should be empty after flush")
	}
}

func TestCPUCostLadder(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(1, cfg)
	c := m.CPU(0)

	c.Load(0) // cold: TLB miss, L1 miss, L2 miss
	if want := cfg.MemCycles + cfg.TLBMissCycles; c.Cycles() != want {
		t.Errorf("cold load cost %g, want %g", c.Cycles(), want)
	}
	before := c.Cycles()
	c.Load(8) // same line -> L1 hit
	if got := c.Cycles() - before; got != cfg.L1HitCycles {
		t.Errorf("L1 hit cost %g, want %g", got, cfg.L1HitCycles)
	}
}

func TestCPUL2Hit(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(1, cfg)
	c := m.CPU(0)
	// Touch enough distinct lines to overflow L1 (32KB/64B = 512 lines)
	// but stay within L2 (8192 lines); then re-touch the first line.
	for i := 0; i < 2048; i++ {
		c.Load(int64(i) * 64)
	}
	before := c.Cycles()
	c.Load(0)
	if got := c.Cycles() - before; got != cfg.L2HitCycles {
		t.Errorf("expected L2 hit cost %g, got %g", cfg.L2HitCycles, got)
	}
}

func TestComputeAndStall(t *testing.T) {
	m := NewMachine(1, DefaultConfig())
	c := m.CPU(0)
	c.Compute(100) // 100 instructions at CPI 0.5 = 50 cycles
	if c.Cycles() != 50 {
		t.Errorf("Compute(100) = %g cycles, want 50", c.Cycles())
	}
	c.Stall(7)
	if c.Cycles() != 57 {
		t.Errorf("after Stall(7): %g, want 57", c.Cycles())
	}
}

func TestParallelAdvancesByMax(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	d := m.Parallel(func(c *CPU) {
		c.Stall(float64(10 * (c.ID() + 1)))
	})
	if d != 40 {
		t.Errorf("parallel phase duration %g, want 40 (max across CPUs)", d)
	}
	if m.Now() != 40 {
		t.Errorf("Now = %g, want 40", m.Now())
	}
}

func TestSerialAdvancesByCPU0(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	d := m.Serial(func(c *CPU) { c.Stall(13) })
	if d != 13 || m.Now() != 13 {
		t.Errorf("serial duration %g now %g, want 13", d, m.Now())
	}
}

func TestSharingPhaseConcurrentCharge(t *testing.T) {
	// Accesses to a line written by another CPU in the same phase pay the
	// expected invalidation fraction o/(o+1) of the coherence penalty on
	// every access (even would-be hits).
	cfg := DefaultConfig()
	m := NewMachine(2, cfg)
	m.EnableSharingTracking()
	m.CPU(0).Store(0) // CPU0 dirties line 0 (same implicit phase)
	r := m.CPU(1)
	before := r.Cycles()
	r.Load(0)
	got := r.Cycles() - before
	want := cfg.MemCycles + cfg.TLBMissCycles + cfg.CoherencePenalty/2
	if got != want {
		t.Errorf("phase-concurrent miss cost %g, want %g", got, want)
	}
	before = r.Cycles()
	r.Load(0) // hits in cache, but the line is still contended this phase
	if got := r.Cycles() - before; got != cfg.L1HitCycles+cfg.CoherencePenalty/2 {
		t.Errorf("contended hit cost %g, want %g", got, cfg.L1HitCycles+cfg.CoherencePenalty/2)
	}
}

func TestSharingCrossPhaseDirtyMiss(t *testing.T) {
	// After a phase boundary, a miss to a line another CPU dirtied pays
	// the full cache-to-cache transfer once, then plain hits.
	cfg := DefaultConfig()
	m := NewMachine(2, cfg)
	m.EnableSharingTracking()
	m.Parallel(func(c *CPU) {
		if c.ID() == 0 {
			c.Store(0)
		}
	})
	// The next phase clears the concurrent writer sets; CPU1's miss pays
	// the full cache-to-cache transfer once, then plain hits.
	var missCost, hitCost float64
	m.Parallel(func(c *CPU) {
		if c.ID() != 1 {
			return
		}
		before := c.Cycles()
		c.Load(0)
		missCost = c.Cycles() - before
		before = c.Cycles()
		c.Load(0)
		hitCost = c.Cycles() - before
	})
	if want := cfg.MemCycles + cfg.TLBMissCycles + cfg.CoherencePenalty; missCost != want {
		t.Errorf("cross-phase dirty miss cost %g, want %g", missCost, want)
	}
	if hitCost != cfg.L1HitCycles {
		t.Errorf("subsequent hit cost %g, want %g", hitCost, cfg.L1HitCycles)
	}
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(2, cfg)
	m.EnableSharingTracking()
	a, b := m.CPU(0), m.CPU(1)
	a.Load(0) // CPU0 caches line 0
	m.Parallel(func(c *CPU) {
		if c.ID() == 1 {
			c.Store(0) // CPU1 takes ownership; CPU0's copy must die
		}
	})
	var got float64
	m.Parallel(func(c *CPU) { // fresh phase: no phase-concurrent writers
		if c.ID() == 0 {
			before := c.Cycles()
			c.Load(0)
			got = c.Cycles() - before
		}
	})
	want := cfg.MemCycles + cfg.CoherencePenalty // miss + transfer from CPU1
	if got != want {
		t.Errorf("post-invalidation load cost %g, want %g", got, want)
	}
	_, _ = a, b
}

func TestNoCoherenceChargeWithoutTracking(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(2, cfg)
	m.CPU(0).Store(0)
	before := m.CPU(1).Cycles()
	m.CPU(1).Load(0)
	if got := m.CPU(1).Cycles() - before; got != cfg.MemCycles+cfg.TLBMissCycles {
		t.Errorf("without tracking, miss cost %g, want %g", got, cfg.MemCycles+cfg.TLBMissCycles)
	}
}

func TestFlushCachesChargesAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(1, cfg)
	c := m.CPU(0)
	for i := 0; i < 10; i++ {
		c.Load(int64(i) * 64)
	}
	before := c.Cycles()
	// 10 lines in L1 and the same 10 in L2 => flush reports 20 entries.
	n := c.FlushCaches()
	if n != 20 {
		t.Errorf("FlushCaches flushed %d entries, want 20", n)
	}
	want := float64(n) * cfg.MemCycles / 2
	if got := c.Cycles() - before; got != want {
		t.Errorf("flush cost %g, want %g", got, want)
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := NewMachine(1, DefaultConfig())
	c := m.CPU(0)
	c.Load(0)
	c.Store(0)
	c.Load(64 * 10000)
	loads, stores, l1m, l2m := c.Counters()
	if loads != 2 || stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 2/1", loads, stores)
	}
	if l1m != 2 || l2m != 2 {
		t.Errorf("l1/l2 misses = %d/%d, want 2/2", l1m, l2m)
	}
}

func TestPrivateBasesDisjoint(t *testing.T) {
	f := func(a, b uint8) bool {
		if a == b {
			return true
		}
		// Regions are ~2^40 bytes apart (modulo the anti-aliasing
		// stagger); no private heap of realistic size can overlap another.
		return PrivateBase(int(a)) != PrivateBase(int(b)) &&
			int64Abs(PrivateBase(int(a))-PrivateBase(int(b))) >= privateRegion/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func int64Abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSharedAddr(t *testing.T) {
	if got := SharedAddr(1024, 3); got != 1048 {
		t.Errorf("SharedAddr(1024,3) = %d, want 1048", got)
	}
}

func TestNewMachinePanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0, DefaultConfig())
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	m := NewMachine(1, Config{})
	if m.Config().MemCycles != DefaultConfig().MemCycles {
		t.Error("zero config should be replaced by defaults")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m := NewMachine(4, DefaultConfig())
		m.EnableSharingTracking()
		m.Parallel(func(c *CPU) {
			for i := 0; i < 1000; i++ {
				c.Load(int64((i*7+c.ID()*13)%512) * 64)
				c.Store(int64(i%64) * 64)
			}
			c.Compute(5000)
		})
		m.Serial(func(c *CPU) { c.FlushCaches() })
		return m.Now()
	}
	a, b := run(), run()
	if a != b || math.IsNaN(a) {
		t.Errorf("virtual time must be deterministic: %g vs %g", a, b)
	}
}
