// Package metrics maps the runtime's statistics structs onto Prometheus
// series for the /metrics endpoint. It is the one place where struct
// fields become series names: WriteEngineStats must cover every
// engine.Stats field (a reflection test enforces it), so a counter added
// to the engine cannot silently vanish from the scrape.
//
// Naming follows the Prometheus conventions: counters end in _total,
// gauges are bare nouns, histograms are _seconds families with stage
// labels. Every family is emitted even when zero — a series that
// disappears when idle breaks rate() dashboards.
package metrics

import (
	"io"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// WriteEngineStats renders one engine.Stats snapshot. On a gateway the
// snapshot is the Merge of every backend's STATS answer, so the same
// series names describe one backend or the whole tier.
func WriteEngineStats(w io.Writer, s engine.Stats) error {
	m := obs.NewMetricWriter(w)

	counter := func(name, help string, v uint64) {
		m.Family(name, "counter", help)
		m.Sample(name, float64(v))
	}
	counter("redux_engine_jobs_total", "Reduction jobs executed.", s.Jobs)
	counter("redux_engine_cache_hits_total", "Scheme decisions served from the pattern cache.", s.CacheHits)
	counter("redux_engine_cache_misses_total", "Scheme decisions that required a fresh inspection.", s.CacheMisses)
	counter("redux_engine_batches_total", "Batch executions (fused jobs share one).", s.Batches)
	counter("redux_engine_coalesced_jobs_total", "Jobs that rode another job's execution.", s.Coalesced)
	counter("redux_engine_cache_evictions_total", "Pattern cache CLOCK evictions.", s.CacheEvictions)
	counter("redux_engine_recalibrations_total", "Stale-entry re-inspections through the decision algorithm.", s.Recalibrations)
	counter("redux_engine_scheme_switches_total", "Recalibrations that replaced a cached scheme.", s.SchemeSwitches)
	counter("redux_engine_simplified_batches_total", "Batches executed through the simplified segment plan.", s.SimplifiedBatches)
	counter("redux_engine_simplify_fallbacks_total", "Segment analyses that fell back to the direct path.", s.SimplifyFallbacks)
	counter("redux_engine_segments_computed_total", "Segment partial sums accumulated fresh.", s.SegsComputed)
	counter("redux_engine_segments_reused_total", "Segment partial sums served from an entry's segment cache.", s.SegsReused)
	counter("redux_engine_session_opens_total", "Streaming sessions registered.", s.SessionOpens)
	counter("redux_engine_session_jobs_total", "Delta batches applied through streaming sessions.", s.SessionJobs)
	counter("redux_engine_session_segments_computed_total", "Session segments recomputed because a delta touched them.", s.SessionSegsComputed)
	counter("redux_engine_session_segments_reused_total", "Session segments reused intact across a delta apply.", s.SessionSegsReused)

	m.Family("redux_engine_cache_entries", "gauge", "Distinct pattern signatures currently cached.")
	m.Sample("redux_engine_cache_entries", float64(s.CacheEntries))

	m.MapCounter("redux_engine_scheme_jobs_total",
		"Jobs executed per reduction scheme.", "scheme", s.Schemes)

	m.Family("redux_engine_batch_occupancy_total", "counter",
		"Executed batches by fused-job count (last bucket absorbs larger).")
	for k, v := range s.BatchOccupancy {
		if k == 0 {
			continue // index 0 is unused by construction
		}
		m.Sample("redux_engine_batch_occupancy_total", float64(v), "size", strconv.Itoa(k))
	}

	m.StageSet("redux_engine_stage_latency_seconds",
		"Engine-side per-stage job latency (queue_wait, inspect, execute).", s.Stages)

	// Per-tenant slices, labeled by tenant name. Families are declared
	// even when no tenants are configured (s.Tenants empty) so dashboards
	// keyed on them never see the series vanish.
	tc := func(name, help string, get func(t engine.TenantStats) uint64) {
		m.Family(name, "counter", help)
		for _, t := range s.Tenants {
			m.Sample(name, float64(get(t)), "tenant", t.Name)
		}
	}
	tc("redux_engine_tenant_jobs_total", "Reduction jobs executed per tenant.",
		func(t engine.TenantStats) uint64 { return t.Jobs })
	tc("redux_engine_tenant_batches_total", "Batch executions per tenant.",
		func(t engine.TenantStats) uint64 { return t.Batches })
	tc("redux_engine_tenant_busy_total", "Jobs rejected by the tenant's admission quotas (BUSY tenant answers).",
		func(t engine.TenantStats) uint64 { return t.Busy })
	tc("redux_engine_tenant_recalibrations_total", "Stale-entry re-inspections triggered by the tenant's batches.",
		func(t engine.TenantStats) uint64 { return t.Recalibrations })
	tc("redux_engine_tenant_scheme_switches_total", "Recalibrations by the tenant's batches that replaced a cached scheme.",
		func(t engine.TenantStats) uint64 { return t.SchemeSwitches })
	m.Family("redux_engine_tenant_weight", "gauge", "Configured DRR scheduling weight per tenant.")
	for _, t := range s.Tenants {
		m.Sample("redux_engine_tenant_weight", float64(t.Weight), "tenant", t.Name)
	}
	m.Family("redux_engine_tenant_queue_wait_seconds", "histogram", "Batch queue wait per tenant.")
	for _, t := range s.Tenants {
		m.Histogram("redux_engine_tenant_queue_wait_seconds", t.QueueWait, "tenant", t.Name)
	}
	return m.Err()
}

// ServerView is the slice of *server.Server that /metrics scrapes —
// narrow so tests can fake it.
type ServerView interface {
	// Stats snapshots the server counters.
	Stats() server.Stats
	// StageStats snapshots the per-stage latency histograms.
	StageStats() []obs.StageSummary
	// Inflight reports the jobs currently in flight (queue depth).
	Inflight() int64
}

// WriteServerStats renders the serving tier's counters and stage
// histograms (which include the engine stages copied onto each job's
// timeline, so one family shows the full pipeline).
func WriteServerStats(w io.Writer, sv ServerView) error {
	m := obs.NewMetricWriter(w)
	st := sv.Stats()

	m.Family("redux_server_busy_total", "counter", "Submissions rejected by admission control (BUSY answers).")
	m.Sample("redux_server_busy_total", float64(st.Busy))
	m.Family("redux_server_intern_hits_total", "counter", "Submissions that mapped onto an already-interned canonical loop.")
	m.Sample("redux_server_intern_hits_total", float64(st.InternHits))
	m.Family("redux_server_interned_loops", "gauge", "Canonical loops currently interned.")
	m.Sample("redux_server_interned_loops", float64(st.InternedLoops))
	m.Family("redux_server_inflight_jobs", "gauge", "Jobs currently in flight across all connections (queue depth).")
	m.Sample("redux_server_inflight_jobs", float64(sv.Inflight()))
	m.Family("redux_server_sessions", "gauge", "Streaming sessions currently resident.")
	m.Sample("redux_server_sessions", float64(st.Sessions))
	m.Family("redux_server_session_opens_total", "counter", "Streaming sessions admitted (OPEN_SESSION accepted).")
	m.Sample("redux_server_session_opens_total", float64(st.SessionOpens))
	m.Family("redux_server_session_evictions_total", "counter", "Sessions evicted by TTL expiry or the CLOCK sweep.")
	m.Sample("redux_server_session_evictions_total", float64(st.SessionEvictions))

	m.StageSet("redux_server_stage_latency_seconds",
		"Per-stage job latency as the server saw it, end to end.", sv.StageStats())
	return m.Err()
}

// WritePoolStats renders the gateway's routing counters and per-backend
// health.
func WritePoolStats(w io.Writer, ps cluster.PoolStats) error {
	m := obs.NewMetricWriter(w)

	counter := func(name, help string, v uint64) {
		m.Family(name, "counter", help)
		m.Sample(name, float64(v))
	}
	counter("redux_cluster_rerouted_total", "Jobs re-placed after their backend's connection died.", ps.Rerouted)
	counter("redux_cluster_timedout_total", "Jobs re-placed after a backend sat silent past the leg timeout.", ps.TimedOut)
	counter("redux_cluster_busy_retries_total", "Same-backend resubmissions after BUSY answers.", ps.BusyRetries)
	counter("redux_cluster_busy_spills_total", "Jobs that left their affinity backend after the BUSY retry budget.", ps.BusySpills)
	counter("redux_cluster_exhausted_total", "Jobs that ran out of backends (answered BUSY upstream).", ps.Exhausted)

	m.Family("redux_cluster_backend_up", "gauge", "Backend health by address (1 healthy, 0 down).")
	for _, b := range ps.Backends {
		up := 0.0
		if b.Healthy {
			up = 1
		}
		m.Sample("redux_cluster_backend_up", up, "backend", b.Addr)
	}
	m.Family("redux_cluster_backend_jobs_total", "counter", "Jobs placed per backend.")
	for _, b := range ps.Backends {
		m.Sample("redux_cluster_backend_jobs_total", float64(b.Jobs), "backend", b.Addr)
	}
	return m.Err()
}
