package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// statsSeries maps every engine.Stats field to the series (or series
// family) that carries it. The reflection test below fails when a field
// is added to engine.Stats without a row here, and the row is then
// checked against the actual /metrics output — the two together make
// "every engine counter is scrapeable" a compile-adjacent guarantee.
var statsSeries = map[string]string{
	"Jobs":                "redux_engine_jobs_total",
	"CacheHits":           "redux_engine_cache_hits_total",
	"CacheMisses":         "redux_engine_cache_misses_total",
	"Batches":             "redux_engine_batches_total",
	"Coalesced":           "redux_engine_coalesced_jobs_total",
	"CacheEntries":        "redux_engine_cache_entries",
	"CacheEvictions":      "redux_engine_cache_evictions_total",
	"Recalibrations":      "redux_engine_recalibrations_total",
	"SchemeSwitches":      "redux_engine_scheme_switches_total",
	"SimplifiedBatches":   "redux_engine_simplified_batches_total",
	"SimplifyFallbacks":   "redux_engine_simplify_fallbacks_total",
	"SegsComputed":        "redux_engine_segments_computed_total",
	"SegsReused":          "redux_engine_segments_reused_total",
	"SessionOpens":        "redux_engine_session_opens_total",
	"SessionJobs":         "redux_engine_session_jobs_total",
	"SessionSegsComputed": "redux_engine_session_segments_computed_total",
	"SessionSegsReused":   "redux_engine_session_segments_reused_total",
	"Schemes":             "redux_engine_scheme_jobs_total",
	"BatchOccupancy":      "redux_engine_batch_occupancy_total",
	"Stages":              "redux_engine_stage_latency_seconds",
	"Tenants":             "redux_engine_tenant_jobs_total",
}

// tenantSeries lists the rest of the per-tenant families (the coverage
// map above can carry only one series per struct field); each must be
// declared even when idle and sampled per tenant when rows exist.
var tenantSeries = []string{
	"redux_engine_tenant_jobs_total",
	"redux_engine_tenant_batches_total",
	"redux_engine_tenant_busy_total",
	"redux_engine_tenant_recalibrations_total",
	"redux_engine_tenant_scheme_switches_total",
	"redux_engine_tenant_weight",
	"redux_engine_tenant_queue_wait_seconds",
}

func sampleStats() engine.Stats {
	return engine.Stats{
		Jobs: 100, CacheHits: 80, CacheMisses: 20,
		Batches: 40, Coalesced: 60,
		CacheEntries: 7, CacheEvictions: 2,
		Recalibrations: 9, SchemeSwitches: 4,
		SimplifiedBatches: 12, SimplifyFallbacks: 1,
		SegsComputed: 30, SegsReused: 18,
		SessionOpens: 3, SessionJobs: 25,
		SessionSegsComputed: 40, SessionSegsReused: 160,
		Schemes:        map[string]uint64{"rep": 60, "ll": 40},
		BatchOccupancy: []uint64{0, 10, 15},
		Stages: []obs.StageSummary{
			{Name: "execute", Snap: obs.Snapshot{Count: 100, SumNs: 2_500_000, MaxNs: 90_000, Buckets: []uint64{0, 1, 4, 95}}},
		},
		Tenants: []engine.TenantStats{
			{Name: "default", Weight: 1, Jobs: 30, Batches: 12,
				QueueWait: obs.Snapshot{Count: 12, SumNs: 9000, MaxNs: 1100, Buckets: []uint64{2, 10}}},
			{Name: "acme", Weight: 4, Jobs: 70, Batches: 28, Busy: 5, Recalibrations: 6, SchemeSwitches: 3,
				QueueWait: obs.Snapshot{Count: 28, SumNs: 21000, MaxNs: 2500, Buckets: []uint64{3, 25}}},
		},
	}
}

// TestEngineTenantSeries pins the per-tenant families: every one is
// declared even on a tenantless snapshot, and a multi-tenant snapshot
// samples each with a tenant label plus a complete histogram.
func TestEngineTenantSeries(t *testing.T) {
	var idle bytes.Buffer
	if err := WriteEngineStats(&idle, engine.Stats{}); err != nil {
		t.Fatal(err)
	}
	for _, series := range tenantSeries {
		if !strings.Contains(idle.String(), "# TYPE "+series+" ") {
			t.Errorf("tenant family %s disappears when no tenants are configured", series)
		}
	}

	var buf bytes.Buffer
	if err := WriteEngineStats(&buf, sampleStats()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`redux_engine_tenant_jobs_total{tenant="default"} 30`,
		`redux_engine_tenant_jobs_total{tenant="acme"} 70`,
		`redux_engine_tenant_batches_total{tenant="acme"} 28`,
		`redux_engine_tenant_busy_total{tenant="acme"} 5`,
		`redux_engine_tenant_recalibrations_total{tenant="acme"} 6`,
		`redux_engine_tenant_scheme_switches_total{tenant="acme"} 3`,
		`redux_engine_tenant_weight{tenant="acme"} 4`,
		`redux_engine_tenant_queue_wait_seconds_count{tenant="acme"} 28`,
		`redux_engine_tenant_queue_wait_seconds_bucket{tenant="acme",le="+Inf"} 28`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tenant metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestEngineStatsCoverage walks engine.Stats by reflection: every field
// must have a series mapping, and every mapped series must appear in the
// rendered output with a HELP and TYPE header.
func TestEngineStatsCoverage(t *testing.T) {
	typ := reflect.TypeOf(engine.Stats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := statsSeries[name]; !ok {
			t.Errorf("engine.Stats.%s has no series mapping — add it to WriteEngineStats and statsSeries", name)
		}
	}
	for field := range statsSeries {
		if _, ok := typ.FieldByName(field); !ok {
			t.Errorf("statsSeries maps %q which engine.Stats no longer has", field)
		}
	}

	var buf bytes.Buffer
	if err := WriteEngineStats(&buf, sampleStats()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for field, series := range statsSeries {
		if !strings.Contains(out, "# HELP "+series+" ") {
			t.Errorf("engine.Stats.%s: series %s missing HELP header", field, series)
		}
		if !strings.Contains(out, "# TYPE "+series+" ") {
			t.Errorf("engine.Stats.%s: series %s missing TYPE header", field, series)
		}
		if !strings.Contains(out, "\n"+series) {
			t.Errorf("engine.Stats.%s: series %s has no samples", field, series)
		}
	}
}

// TestEngineStatsIdleFamilies renders a zero snapshot: every family must
// still be declared (HELP/TYPE) so idle processes don't drop series.
func TestEngineStatsIdleFamilies(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEngineStats(&buf, engine.Stats{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for field, series := range statsSeries {
		if !strings.Contains(out, "# TYPE "+series+" ") {
			t.Errorf("engine.Stats.%s: family %s disappears when idle", field, series)
		}
	}
}

type fakeServer struct{}

func (fakeServer) Stats() server.Stats {
	return server.Stats{Busy: 3, InternHits: 42, InternedLoops: 5}
}
func (fakeServer) StageStats() []obs.StageSummary {
	return []obs.StageSummary{
		{Name: "decode", Snap: obs.Snapshot{Count: 10, SumNs: 5000, MaxNs: 900, Buckets: []uint64{0, 10}}},
	}
}
func (fakeServer) Inflight() int64 { return 2 }

func TestWriteServerStats(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteServerStats(&buf, fakeServer{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"redux_server_busy_total 3",
		"redux_server_intern_hits_total 42",
		"redux_server_interned_loops 5",
		"redux_server_inflight_jobs 2",
		`redux_server_stage_latency_seconds_count{stage="decode"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("server metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePoolStats(t *testing.T) {
	ps := cluster.PoolStats{
		Backends: []cluster.BackendStatus{
			{Addr: "a:1", Healthy: true, Jobs: 9},
			{Addr: "b:2", Healthy: false, Jobs: 4},
		},
		Rerouted: 1, TimedOut: 2, BusyRetries: 3, BusySpills: 4, Exhausted: 5,
	}
	var buf bytes.Buffer
	if err := WritePoolStats(&buf, ps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"redux_cluster_rerouted_total 1",
		"redux_cluster_timedout_total 2",
		"redux_cluster_busy_retries_total 3",
		"redux_cluster_busy_spills_total 4",
		"redux_cluster_exhausted_total 5",
		`redux_cluster_backend_up{backend="a:1"} 1`,
		`redux_cluster_backend_up{backend="b:2"} 0`,
		`redux_cluster_backend_jobs_total{backend="a:1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pool metrics missing %q in:\n%s", want, out)
		}
	}
}
