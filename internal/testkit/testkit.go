// Package testkit consolidates the network-stack boot/teardown
// boilerplate the server, client and cluster tests share: an engine
// behind a reduxd-shaped server on a loopback listener, a gateway pool
// over backends, and a pooled client — each wired to t.Cleanup so a
// failing test still drains its listeners, connections and engines in
// the right order (cleanups run LIFO, so build stacks bottom-up and the
// client closes before the gateway, the gateway before the backends).
//
// All helpers are -race safe: teardown joins every goroutine it started
// (Serve loops, engine workers) before returning.
package testkit

import (
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/trace"
)

// shutdownTimeout bounds one component's graceful drain in teardown.
const shutdownTimeout = 10 * time.Second

// Daemon is one booted engine + server stack, the reduxd shape.
type Daemon struct {
	// Eng is the daemon's engine, owned by the stack (closed by Close).
	Eng *engine.Engine
	// Srv is the wire-protocol front end over Eng.
	Srv *server.Server
	// Addr is the daemon's dial address.
	Addr string

	t       testing.TB
	done    chan error
	closed  bool
	unclean bool
}

// ExpectUncleanServe marks the daemon's listener as externally killed (a
// failure-injection test cut it): Close then accepts any Serve error,
// where it normally requires server.ErrServerClosed.
func (d *Daemon) ExpectUncleanServe() { d.unclean = true }

// StartDaemon boots an engine and a server on a random loopback port.
// Zero-value configs get the small test defaults (2 workers, 4 procs).
// Teardown is registered with t.Cleanup; call Close earlier to take the
// daemon down mid-test (e.g. to exercise reconnects).
func StartDaemon(t testing.TB, ecfg engine.Config, scfg server.Config) *Daemon {
	t.Helper()
	return StartDaemonAt(t, "127.0.0.1:0", ecfg, scfg)
}

// StartDaemonAt is StartDaemon on an explicit listen address — how a
// restart-on-the-same-port scenario boots its second daemon.
func StartDaemonAt(t testing.TB, addr string, ecfg engine.Config, scfg server.Config) *Daemon {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return StartDaemonOn(t, ln, ecfg, scfg)
}

// StartDaemonOn is StartDaemon over a caller-built listener — how a
// failure-injection test wraps the listener to cut live sockets.
func StartDaemonOn(t testing.TB, ln net.Listener, ecfg engine.Config, scfg server.Config) *Daemon {
	t.Helper()
	if ecfg.Workers == 0 {
		ecfg.Workers = 2
	}
	if ecfg.Platform.Procs == 0 {
		ecfg.Platform = core.DefaultPlatform(4)
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	d := &Daemon{
		Eng:  eng,
		Srv:  server.New(eng, scfg),
		Addr: ln.Addr().String(),
		t:    t,
		done: make(chan error, 1),
	}
	go func() { d.done <- d.Srv.Serve(ln) }()
	t.Cleanup(d.Close)
	return d
}

// Close drains the daemon: server shutdown, serve loop joined, engine
// closed. It is idempotent, so tests may call it mid-run and the
// registered cleanup becomes a no-op.
func (d *Daemon) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if err := d.Srv.Shutdown(shutdownTimeout); err != nil {
		d.t.Errorf("testkit: daemon shutdown: %v", err)
	}
	if err := <-d.done; err != server.ErrServerClosed && !d.unclean {
		d.t.Errorf("testkit: daemon Serve returned %v, want ErrServerClosed", err)
	}
	d.Eng.Close()
}

// Gateway is a booted cluster pool behind a wire-protocol front end,
// the reduxgw shape.
type Gateway struct {
	// Pool is the gateway's backend pool, owned by the stack.
	Pool *cluster.Pool
	// Srv is the wire-protocol front end over Pool.
	Srv *server.Server
	// Addr is the gateway's dial address.
	Addr string

	t      testing.TB
	done   chan error
	closed bool
}

// StartGateway boots a pattern-routing gateway over the given backend
// addresses on a random loopback port, teardown via t.Cleanup. Start the
// backends first (with StartDaemon) so the LIFO cleanup order drains the
// gateway before them.
func StartGateway(t testing.TB, ccfg cluster.Config, scfg server.Config, backends ...string) *Gateway {
	t.Helper()
	ccfg.Backends = backends
	pool, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	g := &Gateway{
		Pool: pool,
		Srv:  server.NewWithDispatcher(pool, scfg),
		Addr: ln.Addr().String(),
		t:    t,
		done: make(chan error, 1),
	}
	go func() { g.done <- g.Srv.Serve(ln) }()
	t.Cleanup(g.Close)
	return g
}

// Close drains the gateway front end, joins its serve loop and closes
// the pool. Idempotent, like Daemon.Close.
func (g *Gateway) Close() {
	if g.closed {
		return
	}
	g.closed = true
	if err := g.Srv.Shutdown(shutdownTimeout); err != nil {
		g.t.Errorf("testkit: gateway shutdown: %v", err)
	}
	if err := <-g.done; err != server.ErrServerClosed {
		g.t.Errorf("testkit: gateway Serve returned %v, want ErrServerClosed", err)
	}
	g.Pool.Close()
}

// DialPool connects a pooled pipelining client to addr and registers its
// Close with t.Cleanup (safe next to an explicit mid-test Close — the
// client's Close is idempotent).
func DialPool(t testing.TB, addr string, ccfg client.Config) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// StartSession opens a streaming session over cl and registers its Close
// with t.Cleanup (harmless next to an explicit close, or when the server
// evicted the session mid-test — Session.Close is a no-op both times).
// The returned result is the initial reduction at generation 1.
func StartSession(t testing.TB, cl *client.Client, l *trace.Loop) (*client.Session, engine.Result) {
	t.Helper()
	sess, res, err := cl.OpenSession(l)
	if err != nil {
		t.Fatalf("testkit: open session: %v", err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess, res
}
