package sched

import (
	"math"
	"testing"
)

// measure simulates executing the blocks of a loop whose iteration i
// costs cost(i), returning per-block times.
func measure(blocks [][2]int, cost func(int) float64) []float64 {
	out := make([]float64, len(blocks))
	for p, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			out[p] += cost(i)
		}
	}
	return out
}

func TestBoundsIntoMatchesBlocks(t *testing.T) {
	s := NewFeedbackScheduler(4, 103)
	s.Record([]float64{1, 5, 2, 9})
	var scratch []int
	scratch = s.BoundsInto(scratch)
	blocks := s.Blocks()
	if len(scratch) != 5 {
		t.Fatalf("bounds length = %d, want 5", len(scratch))
	}
	for p, b := range blocks {
		if scratch[p] != b[0] || scratch[p+1] != b[1] {
			t.Fatalf("bounds %v disagree with blocks %v", scratch, blocks)
		}
	}
	// Reuse must not allocate a new backing array.
	again := s.BoundsInto(scratch)
	if &again[0] != &scratch[0] {
		t.Error("BoundsInto reallocated despite sufficient capacity")
	}
}

func TestInitialBlocksCoverAll(t *testing.T) {
	s := NewFeedbackScheduler(4, 103)
	blocks := s.Blocks()
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	prev := 0
	total := 0
	for _, b := range blocks {
		if b[0] != prev {
			t.Errorf("gap at %d", b[0])
		}
		total += b[1] - b[0]
		prev = b[1]
	}
	if total != 103 || prev != 103 {
		t.Errorf("blocks cover %d iterations ending at %d, want 103", total, prev)
	}
}

func TestFeedbackConvergesOnSkewedLoop(t *testing.T) {
	// A triangular loop: iteration i costs i+1 (classic imbalance for
	// block scheduling).
	cost := func(i int) float64 { return float64(i + 1) }
	s := NewFeedbackScheduler(8, 1000)

	first := Imbalance(measure(s.Blocks(), cost))
	var last float64
	for round := 0; round < 5; round++ {
		times := measure(s.Blocks(), cost)
		last = Imbalance(times)
		s.Record(times)
	}
	times := measure(s.Blocks(), cost)
	last = Imbalance(times)
	if first < 1.5 {
		t.Fatalf("triangular loop should start imbalanced, got %.2f", first)
	}
	if last > 1.1 {
		t.Errorf("imbalance after feedback %.3f, want <= 1.1 (started at %.2f)", last, first)
	}
}

func TestFeedbackHandlesSpike(t *testing.T) {
	// All cost concentrated in a narrow region.
	cost := func(i int) float64 {
		if i >= 500 && i < 520 {
			return 100
		}
		return 1
	}
	s := NewFeedbackScheduler(4, 1000)
	for round := 0; round < 6; round++ {
		s.Record(measure(s.Blocks(), cost))
	}
	if imb := Imbalance(measure(s.Blocks(), cost)); imb > 1.6 {
		t.Errorf("spike imbalance after feedback = %.2f", imb)
	}
}

func TestPredictTimesMatchesDensity(t *testing.T) {
	cost := func(i int) float64 { return float64(i%5) + 1 }
	s := NewFeedbackScheduler(4, 400)
	if s.PredictTimes() != nil {
		t.Error("no prediction before any measurement")
	}
	meas := measure(s.Blocks(), cost)
	s.Record(meas)
	pred := s.PredictTimes()
	var predSum, measSum float64
	for i := range pred {
		predSum += pred[i]
		measSum += meas[i]
	}
	if math.Abs(predSum-measSum) > 1e-9 {
		t.Errorf("predicted total %g != measured total %g", predSum, measSum)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Error("empty imbalance should be 1")
	}
	if Imbalance([]float64{0, 0}) != 1 {
		t.Error("all-zero imbalance should be 1")
	}
	if got := Imbalance([]float64{1, 1, 1, 5}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Imbalance = %g, want 2.5", got)
	}
}

func TestRecordPanicsOnWrongLength(t *testing.T) {
	s := NewFeedbackScheduler(4, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Record([]float64{1, 2})
}

func TestZeroIterationLoop(t *testing.T) {
	s := NewFeedbackScheduler(3, 0)
	s.Record([]float64{0, 0, 0})
	for _, b := range s.Blocks() {
		if b[0] != 0 || b[1] != 0 {
			t.Errorf("empty loop block %v", b)
		}
	}
}

func TestInvocationsCounter(t *testing.T) {
	s := NewFeedbackScheduler(2, 10)
	s.Record([]float64{1, 1})
	s.Record([]float64{1, 1})
	if s.Invocations() != 2 {
		t.Errorf("Invocations = %d, want 2", s.Invocations())
	}
}
