// Package sched implements the load-balancing support of Section 3:
// feedback-guided block scheduling, "which allows highly imbalanced loops
// to be block scheduled by predicting a good work distribution from
// previous measured execution times of iteration blocks". Each invocation
// measures per-block times; since block times are exact integrals of the
// iteration-cost profile between boundaries, every boundary ever used
// becomes an exact knot of the cumulative cost function. The scheduler
// interpolates that function and re-cuts the boundaries at equal
// cumulative cost, so a cost spike narrower than a block is bracketed
// more tightly each round instead of sloshing between blocks.
package sched

import (
	"fmt"
	"sort"
)

// FeedbackScheduler maintains block boundaries for a loop executed
// repeatedly with a slowly changing (but possibly very skewed) iteration
// cost profile.
type FeedbackScheduler struct {
	procs int
	iters int
	// bounds has procs+1 entries; block p is [bounds[p], bounds[p+1]).
	bounds []int
	// knots maps an iteration index to the measured cumulative cost of
	// all iterations before it. knots[0] == 0 always; knots[iters] is the
	// total. Re-measured knots are exponentially averaged so the
	// scheduler tracks slowly drifting profiles.
	knots map[int]float64

	invocations int
}

// NewFeedbackScheduler starts with an equal-size block partition.
func NewFeedbackScheduler(procs, iters int) *FeedbackScheduler {
	if procs < 1 || iters < 0 {
		panic(fmt.Sprintf("sched: invalid procs=%d iters=%d", procs, iters))
	}
	s := &FeedbackScheduler{procs: procs, iters: iters, knots: map[int]float64{0: 0}}
	s.bounds = make([]int, procs+1)
	for p := 0; p <= procs; p++ {
		s.bounds[p] = p * iters / procs
	}
	return s
}

// Blocks returns the current block ranges: procs pairs [lo, hi).
func (s *FeedbackScheduler) Blocks() [][2]int {
	out := make([][2]int, s.procs)
	for p := 0; p < s.procs; p++ {
		out[p] = [2]int{s.bounds[p], s.bounds[p+1]}
	}
	return out
}

// BoundsInto copies the current boundaries (procs+1 ascending iteration
// offsets; block p is [bounds[p], bounds[p+1])) into dst, reusing its
// capacity. Callers on hot paths keep one dst per worker so reading the
// schedule allocates nothing.
func (s *FeedbackScheduler) BoundsInto(dst []int) []int {
	return append(dst[:0], s.bounds...)
}

// Record feeds the measured execution time of each block from the last
// invocation and recomputes the boundaries for the next one.
func (s *FeedbackScheduler) Record(times []float64) {
	if len(times) != s.procs {
		panic(fmt.Sprintf("sched: %d block times for %d blocks", len(times), s.procs))
	}
	s.invocations++
	if s.iters == 0 {
		return
	}

	// Update the cumulative-cost knots at the boundaries just used.
	acc := 0.0
	for p := 0; p < s.procs; p++ {
		acc += times[p]
		b := s.bounds[p+1]
		if old, ok := s.knots[b]; ok {
			s.knots[b] = 0.5*old + 0.5*acc
		} else {
			s.knots[b] = acc
		}
	}
	total := s.knots[s.iters]
	if total <= 0 {
		return
	}
	// Enforce monotonicity over the knot set (measurement noise or a
	// drifting profile can locally violate it).
	keys := s.sortedKnots()
	prev := 0.0
	for _, k := range keys {
		if s.knots[k] < prev {
			s.knots[k] = prev
		}
		prev = s.knots[k]
	}
	total = s.knots[s.iters]

	// Cut at equal cumulative cost by linear interpolation between knots.
	newBounds := make([]int, s.procs+1)
	newBounds[s.procs] = s.iters
	for p := 1; p < s.procs; p++ {
		target := total * float64(p) / float64(s.procs)
		newBounds[p] = s.invertCum(keys, target)
	}
	for p := 1; p <= s.procs; p++ {
		if newBounds[p] < newBounds[p-1] {
			newBounds[p] = newBounds[p-1]
		}
	}
	s.bounds = newBounds
}

func (s *FeedbackScheduler) sortedKnots() []int {
	keys := make([]int, 0, len(s.knots))
	for k := range s.knots {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// invertCum returns the iteration at which the interpolated cumulative
// cost reaches target.
func (s *FeedbackScheduler) invertCum(keys []int, target float64) int {
	for j := 1; j < len(keys); j++ {
		k1, k2 := keys[j-1], keys[j]
		c1, c2 := s.knots[k1], s.knots[k2]
		if target > c2 {
			continue
		}
		if c2 == c1 {
			return k1
		}
		frac := (target - c1) / (c2 - c1)
		b := k1 + int(frac*float64(k2-k1)+0.5)
		if b < k1 {
			b = k1
		}
		if b > k2 {
			b = k2
		}
		return b
	}
	return s.iters
}

// Imbalance returns max(times)/mean(times) for a measurement; 1.0 is
// perfectly balanced.
func Imbalance(times []float64) float64 {
	if len(times) == 0 {
		return 1
	}
	var sum, max float64
	for _, t := range times {
		sum += t
		if t > max {
			max = t
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(times)))
}

// PredictTimes returns the scheduler's predicted per-block times for its
// current boundaries from the interpolated cumulative cost (nil before
// any Record).
func (s *FeedbackScheduler) PredictTimes() []float64 {
	if s.invocations == 0 {
		return nil
	}
	keys := s.sortedKnots()
	out := make([]float64, s.procs)
	for p := 0; p < s.procs; p++ {
		out[p] = s.cumAt(keys, s.bounds[p+1]) - s.cumAt(keys, s.bounds[p])
	}
	return out
}

func (s *FeedbackScheduler) cumAt(keys []int, i int) float64 {
	if c, ok := s.knots[i]; ok {
		return c
	}
	for j := 1; j < len(keys); j++ {
		if keys[j] >= i {
			k1, k2 := keys[j-1], keys[j]
			c1, c2 := s.knots[k1], s.knots[k2]
			if k2 == k1 {
				return c1
			}
			return c1 + (c2-c1)*float64(i-k1)/float64(k2-k1)
		}
	}
	if len(keys) > 0 {
		return s.knots[keys[len(keys)-1]]
	}
	return 0
}

// Invocations returns how many measurements have been recorded.
func (s *FeedbackScheduler) Invocations() int { return s.invocations }
