package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
)

// SessionDispatcher is the optional capability a Dispatcher implements
// when it can host streaming sessions. The daemon's engine dispatcher
// does; the gateway's routing dispatcher does not (a session's resident
// state is pinned to one engine, which cuts across fingerprint routing),
// so its connections answer OPEN_SESSION with a job-scoped ERROR.
type SessionDispatcher interface {
	// OpenSession registers l (cloned by the callee — the session
	// mutates its loop) and returns the live session with its initial
	// reduction. tenant is the owning connection's HELLO-bound tenant
	// name: the open and every later apply are scheduled under that
	// tenant's weighted queue.
	OpenSession(l *trace.Loop, segIters int, dst []float64, tenant string) (*engine.Session, engine.Result, error)
}

func (d engineDispatcher) OpenSession(l *trace.Loop, segIters int, dst []float64, tenant string) (*engine.Session, engine.Result, error) {
	return d.eng.OpenSessionTenant(l, segIters, dst, d.eng.TenantIndex(tenant))
}

// errSessionBudget reports that admission could not make room for a new
// session even after eviction — the connection answers BUSY(BusySession).
var errSessionBudget = errors.New("server: session budget exhausted")

// sessKey names one session: sessions are connection-scoped (ids are
// client-assigned), so the owning connection's id disambiguates equal
// sids from different clients.
type sessKey struct{ conn, sid uint64 }

// serverSession is one resident streaming session plus the bookkeeping
// the store's TTL and CLOCK eviction run on.
type serverSession struct {
	key   sessKey
	es    *engine.Session
	elems int
	bytes int64

	lastUsed atomic.Int64 // unix nanos of the last touch (TTL)
	ref      atomic.Bool  // CLOCK second-chance bit, set on every touch
}

// sessionStore is the server's session table: the intern table's CLOCK
// eviction story extended with a TTL and a resident-byte budget, both
// enforced at OPEN_SESSION admission. One mutex guards the table —
// session operations are orders of magnitude heavier than the lookups
// the sharded intern table serves, so sharding buys nothing here.
type sessionStore struct {
	maxSessions int
	ttl         time.Duration
	maxBytes    int64

	mu       sync.Mutex
	m        map[sessKey]*serverSession
	ring     []*serverSession // CLOCK ring with nil holes, compacted lazily
	hand     int
	reserved int   // admissions between reserve and commit
	bytes    int64 // resident + reserved bytes

	opens     atomic.Uint64
	evictions atomic.Uint64
}

func newSessionStore(maxSessions int, ttl time.Duration, maxBytes int64) *sessionStore {
	return &sessionStore{
		maxSessions: maxSessions,
		ttl:         ttl,
		maxBytes:    maxBytes,
		m:           make(map[sessKey]*serverSession),
	}
}

// reserve admits one prospective session of estimated size est, evicting
// expired then idle sessions until both the count and byte budgets have
// room. The reservation holds the budget until commit or abort, so two
// racing opens cannot both squeeze through the same headroom. The
// estimate is checked before any state is built — a loop whose resident
// footprint could never fit is rejected for the price of a BUSY frame.
func (st *sessionStore) reserve(est int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.expireLocked(time.Now().UnixNano())
	for len(st.m)+st.reserved >= st.maxSessions || st.bytes+est > st.maxBytes {
		if !st.evictLocked() {
			return errSessionBudget
		}
	}
	st.reserved++
	st.bytes += est
	return nil
}

// commit installs the opened session under its reservation, adjusting
// the byte account from the estimate to the session's actual footprint.
// Uniqueness is enforced here, where installation is atomic: two
// pipelined opens with the same sid both pass the read loop's lookup,
// and the second to commit must fail rather than overwrite the first
// (orphaning it in the ring until eviction tears down the live entry).
// On failure the reservation is released and the caller owns teardown.
func (st *sessionStore) commit(ss *serverSession, est int64) bool {
	ss.lastUsed.Store(time.Now().UnixNano())
	ss.ref.Store(true)
	st.mu.Lock()
	st.reserved--
	if _, dup := st.m[ss.key]; dup {
		st.bytes -= est
		st.mu.Unlock()
		return false
	}
	st.bytes += ss.bytes - est
	st.m[ss.key] = ss
	st.ring = append(st.ring, ss)
	st.mu.Unlock()
	st.opens.Add(1)
	return true
}

// abort releases a reservation whose open failed.
func (st *sessionStore) abort(est int64) {
	st.mu.Lock()
	st.reserved--
	st.bytes -= est
	st.mu.Unlock()
}

// get returns the live session for key, touching its TTL clock and
// CLOCK bit — or nil when the key is unknown, expired or evicted. An
// expired session is torn down here, so a delta racing the TTL boundary
// gets the typed session-gone answer, never a stale sum.
func (st *sessionStore) get(key sessKey) *serverSession {
	now := time.Now().UnixNano()
	st.mu.Lock()
	ss := st.m[key]
	if ss == nil {
		st.mu.Unlock()
		return nil
	}
	if now-ss.lastUsed.Load() > int64(st.ttl) {
		st.removeLocked(ss)
		st.evictions.Add(1)
		st.mu.Unlock()
		ss.es.Close()
		return nil
	}
	ss.lastUsed.Store(now)
	ss.ref.Store(true)
	st.mu.Unlock()
	return ss
}

// close removes and tears down the session for key, reporting whether it
// was resident.
func (st *sessionStore) close(key sessKey) (*serverSession, bool) {
	st.mu.Lock()
	ss := st.m[key]
	if ss == nil {
		st.mu.Unlock()
		return nil, false
	}
	st.removeLocked(ss)
	st.mu.Unlock()
	ss.es.Close()
	return ss, true
}

// dropConn tears down every session the finished connection owned.
func (st *sessionStore) dropConn(connID uint64) {
	var dead []*serverSession
	st.mu.Lock()
	for key, ss := range st.m {
		if key.conn == connID {
			dead = append(dead, ss)
			st.removeLocked(ss)
		}
	}
	st.mu.Unlock()
	for _, ss := range dead {
		ss.es.Close()
	}
}

// len reports resident sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// expireLocked sweeps TTL-expired sessions out (mu held). Expiry counts
// as eviction for the stats — either way the client's next delta draws
// the typed session-gone error.
func (st *sessionStore) expireLocked(now int64) {
	// Collect first, remove after: removeLocked may compact the ring in
	// place, which would leave an in-flight range over it reading a stale
	// tail — expired sessions removed twice, shifted live ones skipped.
	var dead []*serverSession
	for _, ss := range st.ring {
		if ss != nil && now-ss.lastUsed.Load() > int64(st.ttl) {
			dead = append(dead, ss)
		}
	}
	for _, ss := range dead {
		st.removeLocked(ss)
		st.evictions.Add(1)
		// Closing under mu is fine: Close only takes the session's own
		// mutex, which no store path holds.
		ss.es.Close()
	}
}

// evictLocked runs one CLOCK pass (mu held): the hand walks the ring
// clearing second-chance bits until it finds a session not touched since
// its last pass, and tears it down. Returns false when nothing is
// resident to evict.
func (st *sessionStore) evictLocked() bool {
	if len(st.m) == 0 {
		return false
	}
	for sweep := 0; sweep < 2*len(st.ring); sweep++ {
		if st.hand >= len(st.ring) {
			st.hand = 0
		}
		ss := st.ring[st.hand]
		st.hand++
		if ss == nil {
			continue
		}
		if ss.ref.CompareAndSwap(true, false) {
			continue
		}
		st.removeLocked(ss)
		st.evictions.Add(1)
		ss.es.Close()
		return true
	}
	return false
}

// removeLocked unlinks ss from the table, ring and byte account (mu
// held). The caller closes the engine session. Removing a session that
// is no longer resident (or whose key a newer session now owns) is a
// no-op, so the byte account is debited exactly once per session.
func (st *sessionStore) removeLocked(ss *serverSession) {
	if st.m[ss.key] != ss {
		return
	}
	delete(st.m, ss.key)
	st.bytes -= ss.bytes
	for i, r := range st.ring {
		if r == ss {
			st.ring[i] = nil
			break
		}
	}
	// Compact once holes dominate, so the CLOCK hand's walk stays
	// proportional to residency.
	if len(st.ring) > 16 && len(st.ring) > 2*len(st.m) {
		live := st.ring[:0]
		for _, r := range st.ring {
			if r != nil {
				live = append(live, r)
			}
		}
		st.ring = live
		st.hand = 0
	}
}
