// Package server implements reduxd: a TCP front end that multiplexes many
// client connections onto one shared engine.Engine. It is the network
// shape of the paper's runtime — the adaptive machinery (pattern
// characterization, decision cache, feedback schedules, buffer pools) is
// amortized across every connected client, not just one process.
//
// The dataflow per connection is two goroutines around the shared engine:
//
//	read loop:  frame → admission → decode → intern → engine.SubmitAsync
//	                                                        │ (per-job waiter)
//	write loop: pooled response buffers ← encode ← Handle.Wait
//
// Three properties carry the engine's performance across the network hop:
//
//   - Pipelining: responses are keyed by client-assigned job IDs and sent
//     as jobs finish, out of order, so one connection can keep many jobs
//     in flight and the queue deep enough for batch fusion to engage.
//   - Interning: the engine fuses only pointer-identical loops, so the
//     server interns decoded submissions by fingerprint + full pattern
//     equality. Repeats of a hot pattern — the Zipf traffic a production
//     service sees — collapse onto one canonical *trace.Loop and coalesce
//     exactly as if a single process had submitted them.
//   - Admission control: in-flight jobs are bounded per connection and
//     globally. Beyond either bound the server answers BUSY immediately
//     instead of queueing without limit, keeping tail latency and memory
//     bounded under overload (the client backs off and retries).
//
// Shutdown drains: listeners close, connections stop reading, every
// in-flight job's response is written, then connections close.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// MaxInflightPerConn bounds jobs in flight per connection (default
	// 64). Submissions beyond it draw BUSY(BusyConn).
	MaxInflightPerConn int
	// MaxInflightGlobal bounds jobs in flight across all connections
	// (default 1024). Submissions beyond it draw BUSY(BusyGlobal).
	MaxInflightGlobal int
	// MaxFrameBytes caps one request frame (default wire.DefaultMaxFrame).
	MaxFrameBytes int
	// MaxElems caps a submitted loop's reduction array dimension (default
	// wire.DefaultMaxElems).
	MaxElems int
	// MaxInternedLoops bounds the canonical-loop intern table (default
	// 4096 across all shards); beyond it the owning shard evicts by CLOCK.
	MaxInternedLoops int
	// TraceSlow is the end-to-end latency threshold at which a job's
	// stage timeline is recorded in the trace ring served at /tracez.
	// 0 means the 10ms default; negative records every job (what tests
	// and short debugging sessions use).
	TraceSlow time.Duration
	// TraceRingSize is the slow-job trace ring capacity (default 64).
	TraceRingSize int
	// MaxSessions bounds resident streaming sessions across all
	// connections (default 256); past it OPEN_SESSION evicts the
	// coldest session by CLOCK, and answers BUSY(BusySession) only when
	// nothing is evictable.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (default 2m). An
	// evicted session's next delta draws the typed session-gone ERROR.
	SessionTTL time.Duration
	// MaxSessionBytes bounds the summed resident footprint of all
	// sessions (default 64 MiB), enforced at OPEN_SESSION admission
	// alongside MaxSessions.
	MaxSessionBytes int64
	// Tenants declares the multi-tenant admission contracts (rate, burst,
	// in-flight quota per tenant). Clients bind to a tenant with the HELLO
	// tenant field; unidentified or unknown clients land on the default
	// tenant. Empty means single-tenant: no per-tenant gates, and STATS
	// frames stay byte-identical to the pre-tenant protocol.
	Tenants []TenantSpec
}

func (c *Config) fill() {
	if c.MaxInflightPerConn <= 0 {
		c.MaxInflightPerConn = 64
	}
	if c.MaxInflightGlobal <= 0 {
		c.MaxInflightGlobal = 1024
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if c.MaxElems <= 0 {
		c.MaxElems = wire.DefaultMaxElems
	}
	if c.MaxInternedLoops <= 0 {
		c.MaxInternedLoops = 4096
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = 10 * time.Millisecond
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Minute
	}
	if c.MaxSessionBytes <= 0 {
		c.MaxSessionBytes = 64 << 20
	}
}

// Server serves the wire protocol over one Dispatcher — the local shared
// engine for reduxd (New), a routed backend pool for reduxgw
// (NewWithDispatcher). Feed it listeners via Serve, stop with Shutdown.
type Server struct {
	disp     Dispatcher
	cfg      Config
	intern   *internTable
	sessions *sessionStore
	connIDs  atomic.Uint64 // distinguishes session owners across connections

	inflight atomic.Int64 // global in-flight jobs (admission control)
	dstPool  sync.Pool    // recycled result destination arrays

	// tenants is the admission table keyed by HELLO tenant name;
	// tenantList preserves configuration order (default first) for
	// deterministic stats merges.
	tenants    map[string]*tenantState
	tenantList []*tenantState

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // accept loops + connections

	// Busy counts submissions rejected by admission control; Interned
	// counts submissions that mapped onto an already-canonical loop.
	busy     atomic.Uint64
	interned atomic.Uint64

	// stages aggregates every served job's stage timeline; ring keeps the
	// timelines of jobs slower than cfg.TraceSlow for /tracez.
	stages obs.StageSet
	ring   *obs.TraceRing
}

// New returns a server front end for eng. The engine is borrowed: the
// caller closes it after Shutdown returns.
func New(eng *engine.Engine, cfg Config) *Server {
	return NewWithDispatcher(engineDispatcher{eng}, cfg)
}

// NewWithDispatcher returns a server front end over an arbitrary
// Dispatcher — how the gateway reuses this package's connection
// machinery with routing instead of a local engine. The dispatcher is
// borrowed: the caller tears it down after Shutdown returns.
func NewWithDispatcher(d Dispatcher, cfg Config) *Server {
	cfg.fill()
	tenants, tenantList := buildTenantTable(cfg.Tenants, nil)
	return &Server{
		disp:       d,
		cfg:        cfg,
		intern:     newInternTable(16, cfg.MaxInternedLoops),
		sessions:   newSessionStore(cfg.MaxSessions, cfg.SessionTTL, cfg.MaxSessionBytes),
		tenants:    tenants,
		tenantList: tenantList,
		lns:        make(map[net.Listener]struct{}),
		conns:      make(map[*conn]struct{}),
		ring:       obs.NewTraceRing(cfg.TraceRingSize),
	}
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			delete(s.lns, ln)
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// Shutdown drains the server gracefully: listeners close, every
// connection stops accepting new submissions, all in-flight jobs complete
// and their responses flush, then connections close. It returns once all
// of that is done (or the timeout elapses, after which connections are
// cut; timeout 0 means wait forever). The engine itself is left running.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for ln := range s.lns {
			ln.Close()
		}
		for c := range s.conns {
			c.beginDrain()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain timed out after %v, connections cut", timeout)
	}
}

// removeConn unregisters a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Stats reports the server-level counters next to the engine's own.
type Stats struct {
	// Busy is how many submissions admission control rejected.
	Busy uint64
	// InternHits is how many submissions mapped onto an already-interned
	// canonical loop (the precondition for cross-client batch fusion).
	InternHits uint64
	// InternedLoops is the current canonical-loop residency.
	InternedLoops int
	// Sessions is the current resident streaming-session count.
	Sessions int
	// SessionOpens counts sessions admitted over the server's lifetime.
	SessionOpens uint64
	// SessionEvictions counts sessions torn down by TTL expiry or CLOCK
	// pressure (explicit CLOSE_SESSION is neither).
	SessionEvictions uint64
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Busy:             s.busy.Load(),
		InternHits:       s.interned.Load(),
		InternedLoops:    s.intern.len(),
		Sessions:         s.sessions.len(),
		SessionOpens:     s.sessions.opens.Load(),
		SessionEvictions: s.sessions.evictions.Load(),
	}
}

// StageStats snapshots the per-stage latency histograms of every job the
// server finished, in pipeline order, stages without observations
// omitted. The engine's own stages (queue_wait, inspect, execute) appear
// here too — the dispatch waiter copies them onto each job's timeline.
func (s *Server) StageStats() []obs.StageSummary { return s.stages.Snapshot() }

// Traces snapshots the slow-job trace ring, newest first (the /tracez
// payload).
func (s *Server) Traces() []obs.JobTrace { return s.ring.Snapshot() }

// Inflight reports the jobs currently in flight across all connections —
// the live queue-depth signal /metrics exports.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// observe folds one finished job's timeline into the server's stage
// histograms and, when the job was slow (or TraceSlow is negative,
// meaning trace everything), into the trace ring.
func (s *Server) observe(tl *obs.Timeline, total time.Duration) {
	s.stages.ObserveTimeline(tl)
	if s.cfg.TraceSlow < 0 || total >= s.cfg.TraceSlow {
		s.ring.Add(tl.Trace(total))
	}
}
