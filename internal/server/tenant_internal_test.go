package server

import (
	"testing"
	"time"

	"repro/internal/engine"
)

// TestTokenBucketFakeClock pins the refill arithmetic against a fake
// clock: bursts spend down to zero, elapsed time refills at the
// configured rate, and the level never exceeds the burst cap — so a
// tenant's admission schedule is a deterministic function of arrival
// times, not of scheduler jitter.
func TestTokenBucketFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newTokenBucket(10, 3, clock)

	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	if b.take() {
		t.Fatal("take past burst admitted with no time elapsed")
	}

	now = now.Add(100 * time.Millisecond) // 10/s * 0.1s = exactly 1 token
	if !b.take() {
		t.Fatal("refilled token refused")
	}
	if b.take() {
		t.Fatal("second take admitted after a one-token refill")
	}

	now = now.Add(time.Hour) // refill far past the cap
	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d after long idle refused — burst cap lost", i)
		}
	}
	if b.take() {
		t.Fatal("long idle banked more than the burst cap")
	}

	// Refund restores exactly what was charged, still capped at burst.
	b.refund()
	if !b.take() {
		t.Fatal("refunded token refused")
	}
	for i := 0; i < 10; i++ {
		b.refund()
	}
	taken := 0
	for b.take() {
		taken++
	}
	if taken != 3 {
		t.Fatalf("over-refunding yielded %d tokens, burst cap is 3", taken)
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	// Zero burst defaults to max(1, rate).
	b := newTokenBucket(5, 0, func() time.Time { return time.Unix(0, 0) })
	taken := 0
	for b.take() {
		taken++
	}
	if taken != 5 {
		t.Fatalf("default burst = %d, want rate 5", taken)
	}
	b = newTokenBucket(0.5, 0, func() time.Time { return time.Unix(0, 0) })
	if !b.take() {
		t.Fatal("sub-1 rate must still default to a burst of 1")
	}
}

func TestParseTenantSpecs(t *testing.T) {
	specs, err := ParseTenantSpecs("gold:4:500:64:128, bronze:1, capped:2::16, limited:1:200")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantSpec{
		{Name: "gold", Weight: 4, Rate: 500, Burst: 64, MaxInflight: 128},
		{Name: "bronze", Weight: 1},
		{Name: "capped", Weight: 2, Burst: 16},
		{Name: "limited", Weight: 1, Rate: 200},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		if specs[i] != w {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], w)
		}
	}

	for _, bad := range []string{
		":4",          // empty name
		"a:zero",      // non-numeric weight
		"a:0",         // weight below 1
		"a:1:-5",      // negative rate
		"a:1:1:1:1:1", // too many fields
	} {
		if _, err := ParseTenantSpecs(bad); err == nil {
			t.Errorf("ParseTenantSpecs(%q) accepted invalid input", bad)
		}
	}
}

func TestBuildTenantTableDefault(t *testing.T) {
	byName, list := buildTenantTable(nil, nil)
	if len(list) != 1 || list[0].name != engine.DefaultTenant {
		t.Fatalf("empty config built %d tenants, want the bare default", len(list))
	}
	if byName[engine.DefaultTenant].maxInflight != 0 || byName[engine.DefaultTenant].bucket != nil {
		t.Fatal("bare default tenant must be unlimited")
	}

	byName, list = buildTenantTable([]TenantSpec{
		{Name: engine.DefaultTenant, Weight: 2, MaxInflight: 8},
		{Name: "gold", Weight: 4, Rate: 100},
	}, nil)
	if len(list) != 2 {
		t.Fatalf("built %d tenants, want 2 (default overridden in place)", len(list))
	}
	if d := byName[engine.DefaultTenant]; d.weight != 2 || d.maxInflight != 8 {
		t.Fatalf("default override lost: %+v", d)
	}
	if g := byName["gold"]; g.bucket == nil {
		t.Fatal("gold's rate limit missing")
	}
}

func TestMergeTenantBusy(t *testing.T) {
	// Single-tenant server: strictly a no-op so legacy frames stay
	// byte-identical.
	s := NewWithDispatcher(nil, Config{})
	st := engine.Stats{}
	s.MergeTenantBusy(&st)
	if len(st.Tenants) != 0 {
		t.Fatalf("single-tenant merge added %d rows", len(st.Tenants))
	}

	s = NewWithDispatcher(nil, Config{Tenants: []TenantSpec{{Name: "gold", Weight: 4}}})
	s.tenants["gold"].busy.Store(7)
	s.tenants[engine.DefaultTenant].busy.Store(2)
	st = engine.Stats{Tenants: []engine.TenantStats{{Name: "gold", Weight: 4, Jobs: 11}}}
	s.MergeTenantBusy(&st)
	if len(st.Tenants) != 2 {
		t.Fatalf("merged to %d rows, want gold matched + default appended", len(st.Tenants))
	}
	if st.Tenants[0].Busy != 7 || st.Tenants[0].Jobs != 11 {
		t.Errorf("gold row = %+v, want busy 7 folded into jobs 11", st.Tenants[0])
	}
	if st.Tenants[1].Name != engine.DefaultTenant || st.Tenants[1].Busy != 2 {
		t.Errorf("appended row = %+v, want default with busy 2", st.Tenants[1])
	}
	if got := s.TenantBusy("gold"); got != 7 {
		t.Errorf("TenantBusy(gold) = %d, want 7", got)
	}
}
