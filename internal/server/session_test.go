package server_test

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/reduction"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// mkSessLoop builds a deterministic random add-reduction for the session
// tests.
func mkSessLoop(elems, iters int, seed int64) *trace.Loop {
	rng := rand.New(rand.NewSource(seed))
	l := trace.NewLoop("net-sess", elems)
	l.WorkPerIter = 8
	for i := 0; i < iters; i++ {
		l.AddIter(int32(rng.Intn(elems)), int32(rng.Intn(elems)))
	}
	return l
}

// mkDeltas draws n sorted distinct-position reference updates, the shape
// the wire encoding requires.
func mkDeltas(rng *rand.Rand, l *trace.Loop, n int) []reduction.RefDelta {
	seen := map[int32]bool{}
	var ds []reduction.RefDelta
	for len(ds) < n {
		p := int32(rng.Intn(l.TotalRefs()))
		if seen[p] {
			continue
		}
		seen[p] = true
		ds = append(ds, reduction.RefDelta{Pos: p, Ref: int32(rng.Intn(l.NumElems))})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// applyToMirror replays a delta batch onto the client's mirror loop.
func applyToMirror(m *trace.Loop, ds []reduction.RefDelta) {
	_, refs := m.Flat()
	for _, d := range ds {
		refs[d.Pos] = d.Ref
	}
}

// TestSessionStreamsOverWire drives the full streaming path — open,
// deltas, rolling reads, close — and holds each rolling result to the
// bit-for-bit oracle: a fresh session opened over an identically mutated
// mirror loop (same segment association, so any divergence is
// incremental-state rot crossing the wire).
func TestSessionStreamsOverWire(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 2}, server.Config{})
	cl := testkit.DialPool(t, d.Addr, client.Config{Conns: 1})

	rng := rand.New(rand.NewSource(42))
	l := mkSessLoop(64, 240, 1)
	mirror := l.Clone()
	sess, res := testkit.StartSession(t, cl, l)
	if res.SessionGen != 1 {
		t.Fatalf("open generation %d, want 1", res.SessionGen)
	}
	assertMatches(t, "open", res.Values, mirror.RunSequential())

	const steps = 6
	var dst []float64
	for step := 0; step < steps; step++ {
		ds := mkDeltas(rng, mirror, 4)
		res, err := sess.SubmitDeltaInto(ds, dst)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if want := uint64(step + 2); res.SessionGen != want {
			t.Fatalf("step %d: generation %d, want %d", step, res.SessionGen, want)
		}
		applyToMirror(mirror, ds)
		fresh, fres, err := cl.OpenSession(mirror)
		if err != nil {
			t.Fatalf("step %d: fresh open: %v", step, err)
		}
		for i := range fres.Values {
			if math.Float64bits(fres.Values[i]) != math.Float64bits(res.Values[i]) {
				t.Fatalf("step %d elem %d: rolling %g != fresh %g", step, i, res.Values[i], fres.Values[i])
			}
		}
		if err := fresh.Close(); err != nil {
			t.Fatalf("step %d: close fresh: %v", step, err)
		}
		dst = res.Values
	}

	// The session counters must survive the STATS round trip (fourth
	// optional tail) and the server must still be holding exactly the one
	// open session.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SessionOpens != steps+1 {
		t.Fatalf("SessionOpens %d, want %d", stats.SessionOpens, steps+1)
	}
	if stats.SessionJobs != steps {
		t.Fatalf("SessionJobs %d, want %d", stats.SessionJobs, steps)
	}
	if stats.SessionSegsComputed == 0 || stats.SessionSegsReused == 0 {
		t.Fatalf("segment split computed=%d reused=%d, want both nonzero",
			stats.SessionSegsComputed, stats.SessionSegsReused)
	}
	ss := d.Srv.Stats()
	if ss.Sessions != 1 {
		t.Fatalf("server residency %d, want 1", ss.Sessions)
	}
	if ss.SessionOpens != steps+1 {
		t.Fatalf("server SessionOpens %d, want %d", ss.SessionOpens, steps+1)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := sess.SubmitDelta(nil); !errors.Is(err, client.ErrSessionGone) {
		t.Fatalf("delta after close: %v, want ErrSessionGone", err)
	}
	if got := d.Srv.Stats().Sessions; got != 0 {
		t.Fatalf("server residency after close %d, want 0", got)
	}
}

// TestSessionTTLExpiry pins the idle-expiry contract: a delta arriving
// past the TTL draws the typed session-gone error — never a stale sum —
// and the expiry counts as an eviction.
func TestSessionTTLExpiry(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 1},
		server.Config{SessionTTL: 30 * time.Millisecond})
	cl := testkit.DialPool(t, d.Addr, client.Config{Conns: 1})

	l := mkSessLoop(16, 32, 2)
	sess, _ := testkit.StartSession(t, cl, l)
	time.Sleep(120 * time.Millisecond)
	if _, err := sess.SubmitDelta(nil); !errors.Is(err, client.ErrSessionGone) {
		t.Fatalf("delta past TTL: %v, want ErrSessionGone", err)
	}
	ss := d.Srv.Stats()
	if ss.Sessions != 0 || ss.SessionEvictions != 1 {
		t.Fatalf("after expiry: residency %d evictions %d, want 0 and 1", ss.Sessions, ss.SessionEvictions)
	}
	// The session is re-openable immediately; the client recovery story
	// is open-and-replay.
	sess2, res := testkit.StartSession(t, cl, l)
	assertMatches(t, "reopen", res.Values, l.RunSequential())
	if _, err := sess2.SubmitDelta(nil); err != nil {
		t.Fatalf("delta on reopened session: %v", err)
	}
}

// TestSessionClockEviction fills the residency budget and opens one
// more: CLOCK must evict the coldest session, whose owner then gets the
// typed error, while the survivors keep streaming.
func TestSessionClockEviction(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 1},
		server.Config{MaxSessions: 2})
	cl := testkit.DialPool(t, d.Addr, client.Config{Conns: 1})

	rng := rand.New(rand.NewSource(3))
	la, lb, lc := mkSessLoop(16, 32, 3), mkSessLoop(16, 32, 4), mkSessLoop(16, 32, 5)
	sa, _ := testkit.StartSession(t, cl, la)
	sb, _ := testkit.StartSession(t, cl, lb)
	// Touch B so the CLOCK hand, which clears second-chance bits in open
	// order, lands its eviction on A.
	if _, err := sb.SubmitDelta(mkDeltas(rng, lb, 2)); err != nil {
		t.Fatal(err)
	}
	sc, _ := testkit.StartSession(t, cl, lc)

	if _, err := sa.SubmitDelta(nil); !errors.Is(err, client.ErrSessionGone) {
		t.Fatalf("delta on evicted session: %v, want ErrSessionGone", err)
	}
	if _, err := sb.SubmitDelta(mkDeltas(rng, lb, 2)); err != nil {
		t.Fatalf("survivor B: %v", err)
	}
	if _, err := sc.SubmitDelta(mkDeltas(rng, lc, 2)); err != nil {
		t.Fatalf("survivor C: %v", err)
	}
	ss := d.Srv.Stats()
	if ss.Sessions != 2 || ss.SessionEvictions != 1 {
		t.Fatalf("residency %d evictions %d, want 2 and 1", ss.Sessions, ss.SessionEvictions)
	}
}

// TestSessionByteBudgetBusy pins the third admission gate: a loop whose
// estimated resident footprint cannot ever fit draws BUSY(BusySession)
// before any state is built.
func TestSessionByteBudgetBusy(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 1},
		server.Config{MaxSessionBytes: 1})
	cl := testkit.DialPool(t, d.Addr, client.Config{Conns: 1})

	_, _, err := cl.OpenSession(mkSessLoop(16, 32, 6))
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("open past byte budget: %v, want ErrBusy", err)
	}
	if !strings.Contains(err.Error(), "session budget exhausted") {
		t.Fatalf("busy error %q does not carry the session budget code", err)
	}
	if got := d.Srv.Stats().SessionOpens; got != 0 {
		t.Fatalf("rejected open counted as admitted (%d)", got)
	}
}

// TestSessionUnsupportedOnGateway pins the capability seam: the
// gateway's routed dispatcher cannot pin resident state to one backend,
// so OPEN_SESSION draws a job-scoped refusal (not session-gone, not a
// dropped connection) and one-shot submissions keep working.
func TestSessionUnsupportedOnGateway(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 1}, server.Config{})
	g := testkit.StartGateway(t, cluster.Config{}, server.Config{}, d.Addr)
	cl := testkit.DialPool(t, g.Addr, client.Config{Conns: 1})

	l := mkSessLoop(16, 32, 7)
	_, _, err := cl.OpenSession(l)
	if err == nil || errors.Is(err, client.ErrSessionGone) || !strings.Contains(err.Error(), "sessions unsupported") {
		t.Fatalf("gateway open: %v, want job-scoped unsupported error", err)
	}
	res, err := cl.Submit(l)
	if err != nil {
		t.Fatalf("one-shot after refused open: %v", err)
	}
	assertMatches(t, "gateway submit", res.Values, l.RunSequential())
}

// TestSessionEvictionRace hammers deltas against constant eviction
// pressure (run under -race in CI): with residency capped at one, a
// churning opener keeps evicting the streamer's session. Every delta
// must resolve as a correct rolling result or the typed session-gone
// error — never anything else, and never a sum that ignores an applied
// batch — and the streamer recovers by re-opening from its mirror.
func TestSessionEvictionRace(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{Workers: 2},
		server.Config{MaxSessions: 1})
	cl := testkit.DialPool(t, d.Addr, client.Config{Conns: 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		churn := mkSessLoop(8, 16, 8)
		for i := 0; i < 40; i++ {
			s, _, err := cl.OpenSession(churn)
			if err != nil && !errors.Is(err, client.ErrBusy) {
				t.Errorf("churn open %d: %v", i, err)
				return
			}
			if err == nil && i%2 == 0 {
				s.Close()
			}
		}
	}()

	rng := rand.New(rand.NewSource(9))
	mirror := mkSessLoop(48, 160, 10)
	sess, _, err := cl.OpenSession(mirror)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	reopens := 0
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		ds := mkDeltas(rng, mirror, 3)
		res, err := sess.SubmitDelta(ds)
		switch {
		case err == nil:
			applyToMirror(mirror, ds)
			assertMatches(t, "rolling", res.Values, mirror.RunSequential())
		case errors.Is(err, client.ErrSessionGone):
			// The batch was not applied; recover by re-opening over the
			// mirror, whose open result must reflect exactly the batches
			// acknowledged so far.
			fresh, fres, err := cl.OpenSession(mirror)
			if err != nil {
				if errors.Is(err, client.ErrBusy) {
					continue
				}
				t.Fatalf("reopen: %v", err)
			}
			sess = fresh
			reopens++
			assertMatches(t, "reopen", fres.Values, mirror.RunSequential())
		case errors.Is(err, client.ErrBusy):
			// Admission pressure from the churner; back off and retry.
		default:
			t.Fatalf("unexpected delta outcome: %v", err)
		}
	}
	wg.Wait()
	if reopens == 0 {
		t.Log("note: no eviction hit the streamer this run (timing-dependent)")
	}
}
