package server

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Dispatcher is where the connection loop sends decoded, interned
// submissions. It is the seam that lets reduxd and reduxgw share one
// front end: the daemon's dispatcher is the local engine, the gateway's
// routes onward to a pool of reduxd backends (internal/cluster). Either
// way the connection machinery — preamble, HELLO, admission control,
// interning, pipelined out-of-order responses, graceful drain — is this
// package's, written once.
type Dispatcher interface {
	// Dispatch starts one reduction job and returns a Waiter for its
	// result. The loop is canonical (interned) and must not be mutated;
	// dst, when non-nil, should receive the result values if it has the
	// capacity. Dispatch must not block on job completion — the read loop
	// calls it inline and pipelining depends on it returning promptly.
	// tl, when non-nil, is the job's stage timeline: the dispatcher
	// attributes its legs to it (engine stages for the daemon, routing
	// legs for the gateway) and forwards tl.TraceID across tiers. The
	// timeline is handed off, not shared — only the dispatch path and,
	// after Wait returns, the caller touch it.
	// tenant is the connection's HELLO-bound tenant name: the daemon
	// schedules the job under that tenant's weighted queue; a dispatcher
	// without per-tenant scheduling may ignore it.
	Dispatch(l *trace.Loop, dst []float64, tl *obs.Timeline, tenant string) (Waiter, error)
	// Stats snapshots the engine counters this dispatcher serves from (a
	// gateway returns the aggregate over its backends).
	Stats() (engine.Stats, error)
	// Procs is the per-job goroutine fan-out advertised in HELLO.
	Procs() int
	// HelloFlags returns the capability bits advertised in HELLO
	// (wire.HelloFlagGateway for a gateway, 0 for a daemon).
	HelloFlags() uint64
}

// Waiter resolves one dispatched job.
type Waiter interface {
	// Wait blocks until the job resolves, returning its result or the
	// error that ended it. It may be called from a goroutine other than
	// the dispatcher's.
	Wait() (engine.Result, error)
}

// ErrOverloaded marks a dispatch failure caused by exhaustion rather
// than a broken job: every avenue of execution was at capacity. The
// connection loop surfaces it to the client as BUSY(BusyUpstream) — a
// back-off-and-retry signal — instead of a job ERROR. Dispatchers wrap
// it (errors.Is) around capacity-exhaustion failures.
var ErrOverloaded = errors.New("server: overloaded")

// engineDispatcher is the daemon's dispatcher: submissions go straight
// into the local shared engine.
type engineDispatcher struct{ eng *engine.Engine }

func (d engineDispatcher) Dispatch(l *trace.Loop, dst []float64, tl *obs.Timeline, tenant string) (Waiter, error) {
	h, err := d.eng.SubmitAsyncIntoTenant(l, dst, d.eng.TenantIndex(tenant))
	if err != nil {
		return nil, err
	}
	return engineWaiter{h, tl}, nil
}

func (d engineDispatcher) Stats() (engine.Stats, error) { return d.eng.Stats(), nil }
func (d engineDispatcher) Procs() int                   { return d.eng.Procs() }
func (d engineDispatcher) HelloFlags() uint64           { return 0 }

// engineWaiter adapts engine.Handle (whose Wait cannot fail once the
// submission was accepted) to the Waiter interface, copying the
// engine-attributed stage durations onto the job's timeline.
type engineWaiter struct {
	h  *engine.Handle
	tl *obs.Timeline
}

func (w engineWaiter) Wait() (engine.Result, error) {
	res := w.h.Wait()
	w.tl.Add(obs.StageQueueWait, res.QueueWait)
	w.tl.Add(obs.StageInspect, res.Inspect)
	w.tl.Add(obs.StageExecute, res.Elapsed)
	return res, nil
}
