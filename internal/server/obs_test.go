package server_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/workloads"
)

// TestServerStageTimelines drives jobs through the wire path with
// TraceSlow negative (trace everything) and checks the observability
// contract: every job lands in the trace ring, client-assigned trace IDs
// survive the round trip, server-generated IDs are unique and non-zero,
// stage histograms cover the serving pipeline, and each trace's stage
// durations sum to its recorded total (the merge residual guarantees it
// by construction — this pins that the construction holds).
func TestServerStageTimelines(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{}, server.Config{TraceSlow: -1, TraceRingSize: 128})
	defer d.Close()

	cl, err := client.Dial(d.Addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loops := workloads.MixedSet(0.2)[:2]
	const wantID = uint64(0xabcdef0123)
	h, err := cl.SubmitAsyncIntoTraced(loops[0], nil, wantID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(loops[i%len(loops)]); err != nil {
			t.Fatal(err)
		}
	}

	traces := d.Srv.Traces()
	if len(traces) != 6 {
		t.Fatalf("trace ring holds %d traces, want 6", len(traces))
	}
	seen := map[uint64]bool{}
	var foundAssigned bool
	for _, tr := range traces {
		if tr.TraceID == 0 {
			t.Fatal("trace recorded with zero ID")
		}
		if seen[tr.TraceID] {
			t.Fatalf("duplicate trace ID %#x", tr.TraceID)
		}
		seen[tr.TraceID] = true
		if tr.TraceID == wantID {
			foundAssigned = true
		}
		var sum int64
		for _, st := range tr.Stages {
			if st.Ns <= 0 {
				t.Fatalf("trace %#x stage %s has non-positive duration %d", tr.TraceID, st.Stage, st.Ns)
			}
			sum += st.Ns
		}
		if tr.TotalNs <= 0 || sum != tr.TotalNs {
			t.Fatalf("trace %#x stages sum to %dns, total %dns", tr.TraceID, sum, tr.TotalNs)
		}
	}
	if !foundAssigned {
		t.Fatalf("client-assigned trace ID %#x not in ring", wantID)
	}

	stages := d.Srv.StageStats()
	byName := map[string]uint64{}
	for _, s := range stages {
		byName[s.Name] = s.Snap.Count
	}
	// decode, intern and execute happen on every job; queue_wait and
	// inspect depend on engine timing, merge on whether the residual was
	// non-zero — only the unconditional ones are asserted.
	for _, name := range []string{"decode", "intern", "execute"} {
		if byName[name] != 6 {
			t.Fatalf("stage %s observed %d times, want 6 (have %v)", name, byName[name], byName)
		}
	}
	if d.Srv.Inflight() != 0 {
		t.Fatalf("inflight gauge %d after all jobs resolved", d.Srv.Inflight())
	}
}

// TestServerTraceSlowThreshold checks the positive-threshold path: with
// an unreachable threshold nothing is traced, while stage histograms
// still accumulate.
func TestServerTraceSlowThreshold(t *testing.T) {
	d := testkit.StartDaemon(t, engine.Config{}, server.Config{TraceSlow: time.Hour})
	defer d.Close()

	cl, err := client.Dial(d.Addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.2)[0]
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(l); err != nil {
			t.Fatal(err)
		}
	}
	if traces := d.Srv.Traces(); len(traces) != 0 {
		t.Fatalf("hour-threshold ring holds %d traces, want 0", len(traces))
	}
	if len(d.Srv.StageStats()) == 0 {
		t.Fatal("stage histograms empty despite served jobs")
	}
}
