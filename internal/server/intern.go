package server

import (
	"sync"

	"repro/internal/trace"
)

// internTable maps decoded submissions onto canonical *trace.Loop objects.
// The engine's batch fusion requires pointer-identical loops (fingerprints
// sample the trace, so equality of fingerprints alone is not enough to
// share an execution); without interning, every network submission would
// decode to a distinct object and coalescing would never engage across
// the wire. The table is sharded by fingerprint low bits with per-shard
// CLOCK eviction, the same structure as the engine's decision cache.
type internTable struct {
	shards []internShard
	mask   uint64
}

type internEntry struct {
	loop *trace.Loop
	ref  bool // CLOCK referenced bit, guarded by the shard mutex
}

type internShard struct {
	mu      sync.Mutex
	entries map[uint64]*internEntry
	ring    []uint64
	hand    int
	cap     int
}

// newInternTable builds shardCount shards (rounded up to a power of two)
// splitting maxLoops between them.
func newInternTable(shardCount, maxLoops int) *internTable {
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := (maxLoops + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	t := &internTable{shards: make([]internShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].entries = make(map[uint64]*internEntry)
		t.shards[i].ring = make([]uint64, 0, perShard)
		t.shards[i].cap = perShard
	}
	return t
}

// canonical returns the canonical loop for l: the resident loop when one
// with the same fingerprint and pattern exists (hit=true), else a deep
// copy of l installed as the new canonical object. l itself is never
// retained, so callers may decode into reused scratch storage.
//
// The O(refs) pattern comparison runs outside the shard mutex (canonical
// loops are immutable once installed); the lock covers only map and ring
// surgery. Otherwise every connection submitting the same hot pattern —
// the Zipf regime the server exists for — would serialize its read loop
// behind one mutex doing a full trace walk.
func (t *internTable) canonical(fp uint64, l *trace.Loop) (canon *trace.Loop, hit bool) {
	s := &t.shards[fp&t.mask]
	s.mu.Lock()
	var resident *trace.Loop
	if e, ok := s.entries[fp]; ok {
		e.ref = true
		resident = e.loop
	}
	s.mu.Unlock()

	if resident != nil && resident.EqualPattern(l) {
		return resident, true
	}
	clone := l.Clone()

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[fp]; ok {
		// Either the fingerprint collides between distinct patterns, or a
		// racing submission installed an entry since the unlocked check.
		// In the race case share the winner when it matches; in the
		// collision case take over the slot — the displaced pattern loses
		// sharing, not correctness (in-flight batches keep their pointer).
		if e.loop != resident && e.loop.EqualPattern(l) {
			e.ref = true
			return e.loop, true
		}
		e.loop = clone
		e.ref = true
		return clone, false
	}
	e := &internEntry{loop: clone, ref: true}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, fp)
	} else {
		// CLOCK sweep: clear referenced bits until an unreferenced victim
		// turns up; terminates within two revolutions.
		for {
			victim := s.entries[s.ring[s.hand]]
			if victim.ref {
				victim.ref = false
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			delete(s.entries, s.ring[s.hand])
			s.ring[s.hand] = fp
			s.hand = (s.hand + 1) % len(s.ring)
			break
		}
	}
	s.entries[fp] = e
	return clone, false
}

// len returns the resident canonical-loop count.
func (t *internTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
